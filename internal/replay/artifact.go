package replay

// Per-module artifact cache. Every Recording embeds the module's
// canonical printed text plus its hash, and a sweep builds one recording
// per job — thousands of jobs over the same handful of modules. Printing
// and hashing a module is by far the most expensive part of building a
// recording (profiles of a flight-recorded sweep showed mir.Print at
// ~60% of CPU), so the text/hash pair is computed once per module and
// reused. Correctness rests on the same invariant the interpreter
// already requires: a module is immutable once runs of it have started.
//
// The cache is keyed by pointer identity and bounded: generator-driven
// soaks mint a fresh module per seed, and an unbounded map would pin
// every one of them (plus its printed text) for the life of the process.
// On overflow the whole map is dropped — the steady-state workloads
// either reuse few modules (benchmark tables, far below the cap) or
// never repeat one (generator soaks, where caching can't help anyway),
// so eviction precision is worthless and clearing is the cheapest
// correct policy.

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"conair/internal/mir"
)

type moduleArtifact struct {
	text string
	hash string
}

const artifactCacheCap = 128

var (
	artifactMu    sync.Mutex
	artifactCache = make(map[*mir.Module]moduleArtifact)
)

// artifactOf returns mod's canonical printed text and hex sha256 hash,
// memoized per module pointer. The module must not be mutated after the
// first call.
func artifactOf(mod *mir.Module) (text, hash string) {
	artifactMu.Lock()
	a, ok := artifactCache[mod]
	artifactMu.Unlock()
	if !ok {
		a.text = mir.Print(mod)
		sum := sha256.Sum256([]byte(a.text))
		a.hash = hex.EncodeToString(sum[:])
		artifactMu.Lock()
		if len(artifactCache) >= artifactCacheCap {
			clear(artifactCache)
		}
		artifactCache[mod] = a
		artifactMu.Unlock()
	}
	return a.text, a.hash
}
