package replay

// AutoRecorder is the always-on forensics hook: the runner attaches one
// to its engine and every failing job's recording lands on disk as a
// replayable .cnr artifact, named and numbered deterministically. It is
// safe for concurrent use by the runner's worker pool.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"conair/internal/interp"
)

// AutoRecorder writes recordings of failing runs into a directory.
type AutoRecorder struct {
	// Dir is the output directory; created on first write.
	Dir string
	// All also records completed (non-failing) runs. Default: failures only.
	All bool

	mu      sync.Mutex
	seq     int
	written []string
	errs    []error
}

// NewAutoRecorder returns a recorder writing into dir.
func NewAutoRecorder(dir string) *AutoRecorder { return &AutoRecorder{Dir: dir} }

// sanitize maps a free-form label into a filesystem-safe token.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteRune('-')
		}
	}
	if b.Len() == 0 {
		return "run"
	}
	return b.String()
}

// Save writes the recording if its run qualifies (failed, or All is set).
// It returns the written path, or "" when the run was skipped. Write
// errors are retained (see Err) rather than propagated, so a full disk
// never aborts a sweep mid-flight.
func (a *AutoRecorder) Save(rec *Recording, r *interp.Result) string {
	if r.Failure == nil && !a.All {
		return ""
	}
	kind := "ok"
	if r.Failure != nil {
		kind = r.Failure.Kind.String()
	}
	name := rec.Label
	if name == "" {
		name = rec.ModuleName
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	path := filepath.Join(a.Dir, fmt.Sprintf("%s-%04d-%s.cnr", sanitize(name), a.seq, sanitize(kind)))
	if err := os.MkdirAll(a.Dir, 0o755); err != nil {
		a.errs = append(a.errs, err)
		return ""
	}
	if err := WriteFile(path, rec); err != nil {
		a.errs = append(a.errs, err)
		return ""
	}
	a.written = append(a.written, path)
	if reg := metricsRegistry.Load(); reg != nil {
		reg.Counter("replay_recordings_written_total").Inc()
	}
	return path
}

// Written returns the paths written so far, in write order.
func (a *AutoRecorder) Written() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.written...)
}

// Err returns the first retained write error, or nil.
func (a *AutoRecorder) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.errs) == 0 {
		return nil
	}
	return a.errs[0]
}
