package replay

import (
	"bytes"
	"reflect"
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

// FuzzDecodeRecording pins the decoder's two safety properties on
// arbitrary input:
//
//  1. totality — Decode never panics, whatever the bytes;
//  2. decode∘encode is a fixed point — any input Decode accepts
//     re-encodes to an artifact that decodes to the same Recording, and
//     re-encoding the re-decode is byte-stable.
//
// Truncated, corrupted and version-bumped variants of valid artifacts are
// seeded so the fuzzer starts at the interesting boundaries.
func FuzzDecodeRecording(f *testing.F) {
	seedRec := &Recording{
		ModuleName: "fuzz-seed",
		ModuleHash: "feed",
		ModuleText: "module fuzz-seed\n",
		SchedName:  "random",
		Seed:       3,
		MaxSteps:   1000,
		Fingerprint: Fingerprint{
			Failed: true, FailKind: mir.FailAssert,
			FailPos: mir.Pos{Fn: 1}, FailStep: 42, FailMsg: "boom",
		},
		Segments: []sched.Segment{{TID: 0, N: 20}, {TID: 1, N: 5}},
		Intns:    []int64{1, 2},
	}
	valid := Encode(seedRec)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:4])
	f.Add([]byte{})
	f.Add([]byte("CNR\x01"))
	mut := append([]byte{}, valid...)
	mut[7] ^= 0xFF
	f.Add(mut)
	ver := append([]byte{}, valid[:len(valid)-4]...)
	ver[4] = FormatVersion + 1
	f.Add(appendCRC(ver))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data) // must never panic
		if err != nil {
			if rec != nil {
				t.Fatal("Decode returned a recording alongside an error")
			}
			return
		}
		enc := Encode(rec)
		rec2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded artifact failed: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("decode/encode not a fixed point\n got %+v\nwant %+v", rec2, rec)
		}
		if enc2 := Encode(rec2); !bytes.Equal(enc, enc2) {
			t.Fatal("encode not byte-stable across a decode cycle")
		}
	})
}
