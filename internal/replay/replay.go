// Package replay is the record-and-replay failure-forensics layer: it
// captures the scheduler decision stream of an interpreter run as a
// compact, versioned artifact, replays such artifacts bit-identically,
// and shrinks failing schedules to minimal interleavings with
// delta-debugging (see minimize.go).
//
// The interpreter is deterministic given its scheduler's decisions, so a
// recording needs only the per-pick thread choices (run-length encoded as
// sched.Segments), the sleeprand draw values, and the handful of config
// knobs that affect execution. Replaying the stream through a
// sched.SegmentReplay reproduces the whole run — every step count,
// rollback, episode and the failure itself — which Verify checks against
// the result fingerprint stored in the artifact (the same fields the
// golden-fingerprint determinism tests pin).
//
// Artifacts embed the program's canonical MIR text by default, so a
// recording is a self-contained postmortem: `conair -replay rec.cnr`
// needs no other input, and the module hash guards against replaying a
// schedule over the wrong program.
package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sched"
)

// FormatVersion is the wire-format version Encode writes and Decode
// accepts. Bump it on any incompatible layout change; Decode rejects
// unknown versions with ErrVersion rather than misparsing.
const FormatVersion = 1

// Fingerprint condenses one interpreter Result into the fields that a
// bit-identical replay must reproduce exactly — the same cut the
// golden-fingerprint machinery in internal/experiments pins across
// interpreter changes, plus the precise failure identity.
type Fingerprint struct {
	Completed      bool
	ExitCode       mir.Word
	Steps          int64
	Checkpoints    int64
	Rollbacks      int64
	CompFrees      int64
	CompUnlocks    int64
	Episodes       int
	EpisodeRetries int64
	EpisodeSteps   int64
	ThreadsSpawned int

	Failed     bool
	FailKind   mir.FailKind
	FailPos    mir.Pos
	FailSite   int
	FailThread int
	FailStep   int64
	FailMsg    string
}

// FingerprintOf summarizes a Result.
func FingerprintOf(r *interp.Result) Fingerprint {
	fp := Fingerprint{
		Completed:      r.Completed,
		ExitCode:       r.ExitCode,
		Steps:          r.Stats.Steps,
		Checkpoints:    r.Stats.Checkpoints,
		Rollbacks:      r.Stats.Rollbacks,
		CompFrees:      r.Stats.CompFrees,
		CompUnlocks:    r.Stats.CompUnlocks,
		Episodes:       len(r.Stats.Episodes),
		ThreadsSpawned: r.Stats.ThreadsSpawned,
	}
	for _, e := range r.Stats.Episodes {
		fp.EpisodeRetries += e.Retries
		if e.Recovered {
			fp.EpisodeSteps += e.Duration()
		}
	}
	if f := r.Failure; f != nil {
		fp.Failed = true
		fp.FailKind = f.Kind
		fp.FailPos = f.Pos
		fp.FailSite = f.Site
		fp.FailThread = f.Thread
		fp.FailStep = f.Step
		fp.FailMsg = f.Msg
	}
	return fp
}

// FailureKey is the schedule-independent identity of a failure: its kind,
// static position and failure site. It is the ddmin oracle — a minimized
// schedule "still fails" when it produces the same key — deliberately
// excluding the step and thread, which legitimately shift as the
// schedule shrinks.
func (fp Fingerprint) FailureKey() string {
	if !fp.Failed {
		return "completed"
	}
	return fmt.Sprintf("%s@%s#%d", fp.FailKind, fp.FailPos, fp.FailSite)
}

// SameFailure reports whether two fingerprints denote the same failure
// identity (see FailureKey).
func (fp Fingerprint) SameFailure(other Fingerprint) bool {
	return fp.Failed && other.Failed &&
		fp.FailKind == other.FailKind &&
		fp.FailPos == other.FailPos &&
		fp.FailSite == other.FailSite
}

// Recording is one captured run: the program's identity (and usually its
// full text), the interpreter knobs that affect execution, the scheduler
// decision stream, and the result fingerprint the stream reproduces.
type Recording struct {
	ModuleName string
	// ModuleHash is the sha256 of the canonical module text (mir.Print).
	ModuleHash string
	// ModuleText embeds the program source; "" when the artifact was
	// written without it (replay then needs the module supplied).
	ModuleText string
	// SchedName names the recorded run's original scheduler ("random",
	// "pct", ...) for provenance; replay never constructs it.
	SchedName string
	// Seed is the original scheduler seed when the producer knew it
	// (provenance only; the decision stream is self-sufficient).
	Seed int64
	// Label is free-form provenance ("sanitize", "bench", a bug name...).
	Label string
	// Minimized marks artifacts produced by Minimize.
	Minimized bool

	// Interpreter configuration the run executed under.
	MaxSteps         int64
	MaxThreads       int
	CollectOutput    bool
	NoDeadlockCycles bool

	// Fingerprint is the recorded run's result summary; Verify checks a
	// replay against it field by field.
	Fingerprint Fingerprint

	// Segments is the run-length-encoded pick stream; Intns the sleeprand
	// draw values in draw order.
	Segments []sched.Segment
	Intns    []int64
}

// Picks returns the total number of scheduling decisions recorded.
func (r *Recording) Picks() int64 {
	var n int64
	for _, s := range r.Segments {
		n += s.N
	}
	return n
}

// Switches returns the number of context switches in the recording.
func (r *Recording) Switches() int { return sched.Switches(r.Segments) }

// HashModule returns the artifact hash of a module: hex sha256 of its
// canonical printed text.
func HashModule(mod *mir.Module) string {
	sum := sha256.Sum256([]byte(mir.Print(mod)))
	return hex.EncodeToString(sum[:])
}

// Module materializes the embedded program, verifying it against the
// stored hash.
func (r *Recording) Module() (*mir.Module, error) {
	if r.ModuleText == "" {
		return nil, fmt.Errorf("replay: recording of %q has no embedded module text", r.ModuleName)
	}
	sum := sha256.Sum256([]byte(r.ModuleText))
	if got := hex.EncodeToString(sum[:]); got != r.ModuleHash {
		return nil, fmt.Errorf("replay: embedded module hash %s does not match recorded %s", got[:12], r.ModuleHash[:12])
	}
	m, err := mir.Parse(r.ModuleText)
	if err != nil {
		return nil, fmt.Errorf("replay: embedded module: %w", err)
	}
	return m, nil
}

// CheckModule verifies that mod is the program this recording was
// captured from.
func (r *Recording) CheckModule(mod *mir.Module) error {
	if got := HashModule(mod); got != r.ModuleHash {
		return fmt.Errorf("replay: module hash %s does not match recording %s (program changed?)",
			got[:12], r.ModuleHash[:12])
	}
	return nil
}

// Meta is producer-side provenance attached at capture time.
type Meta struct {
	Seed  int64
	Label string
	// OmitModule leaves the program text out of the artifact (smaller,
	// but replay then requires the module be supplied out of band).
	OmitModule bool
}

// Capture wraps cfg's scheduler in a recorder and returns the adjusted
// config plus a finish function that builds the Recording from the run's
// Result. The wrapped run is bit-identical to the unwrapped one (the
// recorder is purely observational); cost when recording is the loss of
// the interpreter's devirtualized scheduler fast path, and zero when not
// capturing at all.
func Capture(mod *mir.Module, cfg interp.Config, meta Meta) (interp.Config, func(*interp.Result) *Recording) {
	if cfg.Sched == nil {
		cfg.Sched = sched.NewRandom(1)
	}
	rec := sched.NewRecorder(cfg.Sched)
	inner := cfg.Sched.Name()
	cfg.Sched = rec
	knobs := cfg
	finish := func(r *interp.Result) *Recording {
		text, hash := artifactOf(mod)
		out := &Recording{
			ModuleName:       mod.Name,
			ModuleHash:       hash,
			SchedName:        inner,
			Seed:             meta.Seed,
			Label:            meta.Label,
			MaxSteps:         knobs.MaxSteps,
			MaxThreads:       knobs.MaxThreads,
			CollectOutput:    knobs.CollectOutput,
			NoDeadlockCycles: knobs.NoDeadlockCycles,
			Fingerprint:      FingerprintOf(r),
			Segments:         append([]sched.Segment(nil), rec.Segments()...),
			Intns:            append([]int64(nil), rec.Intns()...),
		}
		if !meta.OmitModule {
			out.ModuleText = text
		}
		return out
	}
	return cfg, finish
}

// Record runs mod once under cfg with recording attached and returns the
// result together with its recording.
func Record(mod *mir.Module, cfg interp.Config, meta Meta) (*interp.Result, *Recording) {
	cfg, finish := Capture(mod, cfg, meta)
	r := interp.RunModule(mod, cfg)
	return r, finish(r)
}

// RunOptions adjusts a replay run.
type RunOptions struct {
	// MaxSteps overrides the recording's step budget (0 keeps it). The
	// minimizer uses it as the probe watchdog.
	MaxSteps int64
	// Sink attaches a trace sink to the replay (for Chrome-trace export
	// of a minimized schedule).
	Sink *obs.Tracer
}

// Run replays the recording's decision stream over mod and returns the
// result plus the replay scheduler (whose divergence counters distinguish
// faithful replays from tolerant probe runs). It does not check the
// module hash — callers that need that guarantee use Verify or
// CheckModule first.
func Run(mod *mir.Module, rec *Recording, opt RunOptions) (*interp.Result, *sched.SegmentReplay) {
	sr := sched.NewSegmentReplay(rec.Segments, rec.Intns)
	cfg := interp.Config{
		Sched:            sr,
		MaxSteps:         rec.MaxSteps,
		MaxThreads:       rec.MaxThreads,
		CollectOutput:    rec.CollectOutput,
		NoDeadlockCycles: rec.NoDeadlockCycles,
		Sink:             opt.Sink,
	}
	if opt.MaxSteps > 0 {
		cfg.MaxSteps = opt.MaxSteps
	}
	r := interp.RunModule(mod, cfg)
	if reg := metricsRegistry.Load(); reg != nil {
		reg.Counter("replay_runs_total").Inc()
	}
	return r, sr
}

// Verify replays the recording against mod and checks bit-identity: the
// module hash matches, the replayed result's fingerprint equals the
// recorded one field for field, and — for raw recordings — the replay
// consumed the stream with zero divergences. Minimized artifacts are
// edited streams that lean on the replay scheduler's deterministic
// fallbacks by design, so for them divergences are expected and only the
// fingerprint must match (the fallbacks are deterministic, hence the
// replay is still exactly reproducible). A nil error means the artifact
// reproduces its run exactly.
func Verify(mod *mir.Module, rec *Recording) error {
	if err := rec.CheckModule(mod); err != nil {
		return err
	}
	r, sr := Run(mod, rec, RunOptions{})
	if d := sr.Diverged(); d > 0 && !rec.Minimized {
		return fmt.Errorf("replay: %d decisions diverged from the recording", d)
	}
	got := FingerprintOf(r)
	if got != rec.Fingerprint {
		return fmt.Errorf("replay: fingerprint mismatch\n got %+v\nwant %+v", got, rec.Fingerprint)
	}
	return nil
}

// metricsRegistry mirrors interp's pattern: when set, replay runs,
// written recordings and minimization probes report process-wide
// counters (replay_runs_total, replay_recordings_written_total,
// minimize_probes_total).
var metricsRegistry atomic.Pointer[obs.Registry]

// SetMetricsRegistry installs (or, with nil, removes) the metrics
// registry the replay layer reports into.
func SetMetricsRegistry(r *obs.Registry) { metricsRegistry.Store(r) }
