package replay

// Binary artifact format (.cnr). The layout is deliberately simple and
// versioned:
//
//	magic "CNR\x01" | uvarint version | body | crc32(IEEE) of magic..body
//
// where the body is a flat sequence of varint/uvarint/length-prefixed
// fields in the order written by Encode. Decode is strict and total: any
// truncation, trailing garbage, length lying beyond the input, checksum
// mismatch or unknown version yields an error, never a panic or an
// attacker-controlled allocation (declared lengths are checked against
// the bytes actually remaining before allocating). FuzzDecodeRecording
// pins both properties plus the decode∘encode fixed point.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"conair/internal/mir"
	"conair/internal/sched"
)

// magic identifies a ConAir recording artifact.
var magic = [4]byte{'C', 'N', 'R', 0x01}

// Decode error categories. Errors returned by Decode wrap one of these,
// so callers can errors.Is-classify without string matching.
var (
	ErrMagic    = errors.New("replay: not a ConAir recording (bad magic)")
	ErrVersion  = errors.New("replay: unsupported recording version")
	ErrCorrupt  = errors.New("replay: corrupt recording")
	ErrChecksum = errors.New("replay: recording checksum mismatch")
)

// Encode serializes the recording into a self-contained artifact.
func Encode(r *Recording) []byte {
	var b []byte
	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, FormatVersion)

	putStr := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	putI := func(v int64) { b = binary.AppendVarint(b, v) }

	putStr(r.ModuleName)
	putStr(r.ModuleHash)
	putStr(r.ModuleText)
	putStr(r.SchedName)
	putI(r.Seed)
	putStr(r.Label)

	var flags uint64
	set := func(bit int, on bool) {
		if on {
			flags |= 1 << bit
		}
	}
	set(0, r.Minimized)
	set(1, r.CollectOutput)
	set(2, r.NoDeadlockCycles)
	set(3, r.Fingerprint.Completed)
	set(4, r.Fingerprint.Failed)
	b = binary.AppendUvarint(b, flags)

	putI(r.MaxSteps)
	putI(int64(r.MaxThreads))

	fp := &r.Fingerprint
	putI(fp.ExitCode)
	putI(fp.Steps)
	putI(fp.Checkpoints)
	putI(fp.Rollbacks)
	putI(fp.CompFrees)
	putI(fp.CompUnlocks)
	putI(int64(fp.Episodes))
	putI(fp.EpisodeRetries)
	putI(fp.EpisodeSteps)
	putI(int64(fp.ThreadsSpawned))
	putI(int64(fp.FailKind))
	putI(int64(fp.FailPos.Fn))
	putI(int64(fp.FailPos.Block))
	putI(int64(fp.FailPos.Index))
	putI(int64(fp.FailSite))
	putI(int64(fp.FailThread))
	putI(fp.FailStep)
	putStr(fp.FailMsg)

	b = binary.AppendUvarint(b, uint64(len(r.Segments)))
	for _, s := range r.Segments {
		putI(int64(s.TID))
		putI(s.N)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Intns)))
	for _, v := range r.Intns {
		putI(v)
	}

	return appendCRC(b)
}

// appendCRC appends the artifact checksum over b.
func appendCRC(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decoder is a bounds-checked cursor over the artifact body.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint " + what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint " + what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	// The length is attacker-controlled; admit only what is actually
	// present so corrupt input can't drive a huge allocation.
	if n > uint64(len(d.data)-d.off) {
		d.fail(what + " length exceeds input")
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) intRange(v int64, lo, hi int64, what string) int {
	if d.err == nil && (v < lo || v > hi) {
		d.fail(what + " out of range")
	}
	return int(v)
}

// Decode parses an artifact produced by Encode. It never panics on
// malformed input: every structural defect maps to an error wrapping
// ErrMagic, ErrVersion, ErrCorrupt or ErrChecksum.
func Decode(data []byte) (*Recording, error) {
	if len(data) < len(magic)+4 || [4]byte(data[:4]) != magic {
		return nil, ErrMagic
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}

	d := &decoder{data: body, off: len(magic)}
	if v := d.uvarint("version"); d.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, FormatVersion)
	}

	r := &Recording{}
	r.ModuleName = d.str("module name")
	r.ModuleHash = d.str("module hash")
	r.ModuleText = d.str("module text")
	r.SchedName = d.str("sched name")
	r.Seed = d.varint("seed")
	r.Label = d.str("label")

	flags := d.uvarint("flags")
	r.Minimized = flags&(1<<0) != 0
	r.CollectOutput = flags&(1<<1) != 0
	r.NoDeadlockCycles = flags&(1<<2) != 0
	r.Fingerprint.Completed = flags&(1<<3) != 0
	r.Fingerprint.Failed = flags&(1<<4) != 0

	r.MaxSteps = d.varint("max steps")
	r.MaxThreads = d.intRange(d.varint("max threads"), 0, 1<<20, "max threads")

	fp := &r.Fingerprint
	fp.ExitCode = d.varint("exit code")
	fp.Steps = d.varint("steps")
	fp.Checkpoints = d.varint("checkpoints")
	fp.Rollbacks = d.varint("rollbacks")
	fp.CompFrees = d.varint("comp frees")
	fp.CompUnlocks = d.varint("comp unlocks")
	fp.Episodes = d.intRange(d.varint("episodes"), 0, 1<<32, "episodes")
	fp.EpisodeRetries = d.varint("episode retries")
	fp.EpisodeSteps = d.varint("episode steps")
	fp.ThreadsSpawned = d.intRange(d.varint("threads spawned"), 0, 1<<32, "threads spawned")
	fp.FailKind = mir.FailKind(d.intRange(d.varint("fail kind"), 0, 255, "fail kind"))
	fp.FailPos.Fn = d.intRange(d.varint("fail pos fn"), -1<<31, 1<<31, "fail pos fn")
	fp.FailPos.Block = d.intRange(d.varint("fail pos block"), -1<<31, 1<<31, "fail pos block")
	fp.FailPos.Index = d.intRange(d.varint("fail pos index"), -1<<31, 1<<31, "fail pos index")
	fp.FailSite = d.intRange(d.varint("fail site"), -1<<31, 1<<31, "fail site")
	fp.FailThread = d.intRange(d.varint("fail thread"), -1<<31, 1<<31, "fail thread")
	fp.FailStep = d.varint("fail step")
	fp.FailMsg = d.str("fail msg")

	nseg := d.uvarint("segment count")
	if d.err == nil {
		// Each segment costs at least two bytes on the wire.
		if nseg > uint64(len(body)-d.off)/2+1 {
			d.fail("segment count exceeds input")
		} else {
			r.Segments = make([]sched.Segment, 0, nseg)
			for i := uint64(0); i < nseg && d.err == nil; i++ {
				tid := d.varint("segment tid")
				n := d.varint("segment length")
				if d.err == nil && (tid < 0 || tid > 1<<31-1 || n <= 0) {
					d.fail("segment out of range")
				}
				r.Segments = append(r.Segments, sched.Segment{TID: int32(tid), N: n})
			}
		}
	}

	nint := d.uvarint("intn count")
	if d.err == nil {
		if nint > uint64(len(body)-d.off)+1 {
			d.fail("intn count exceeds input")
		} else {
			r.Intns = make([]int64, 0, nint)
			for i := uint64(0); i < nint && d.err == nil; i++ {
				r.Intns = append(r.Intns, d.varint("intn draw"))
			}
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	if len(r.Segments) == 0 {
		r.Segments = nil
	}
	if len(r.Intns) == 0 {
		r.Intns = nil
	}
	return r, nil
}

// WriteFile encodes the recording and writes it atomically-enough for a
// forensics artifact (temp file then rename would be overkill here; the
// write is a single syscall for typical sizes).
func WriteFile(path string, r *Recording) error {
	return os.WriteFile(path, Encode(r), 0o644)
}

// ReadFile loads and decodes a recording artifact.
func ReadFile(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
