package replay

// Schedule minimization: ddmin delta-debugging over the recorded segment
// stream. The insight that makes this work is that the tolerant
// SegmentReplay scheduler makes *every* edited stream a runnable,
// deterministic schedule — removing segments never wedges a probe, it
// just changes the interleaving — so the classic ddmin loop applies
// directly, with "the failure fingerprint key still matches" as the
// oracle. The result is the small set of context switches that actually
// matter for the bug, which is what a human reads in a postmortem.

import (
	"fmt"

	"conair/internal/mir"
	"conair/internal/sched"
)

// MinimizeOptions bounds a minimization run.
type MinimizeOptions struct {
	// ProbeBudget caps the number of probe replays (0 = DefaultProbeBudget).
	// When the budget runs out minimization stops early and returns the
	// best stream found so far, with OneMinimal=false.
	ProbeBudget int
	// ProbeSteps is the per-probe step watchdog (0 = 4x the recorded run's
	// steps, at least MinProbeSteps). Edited schedules can run arbitrarily
	// longer than the original — e.g. when a removed switch breaks the
	// failure and the program spins — so every probe is step-bounded.
	ProbeSteps int64
}

// Defaults for MinimizeOptions zero values.
const (
	DefaultProbeBudget = 2000
	MinProbeSteps      = int64(100_000)
)

// Minimized is the outcome of a minimization.
type Minimized struct {
	// Rec is the minimized, replayable artifact (Minimized=true, same
	// module and knobs as the input, fingerprint of the minimized run).
	Rec *Recording
	// Probes is how many probe replays were spent.
	Probes int
	// OneMinimal reports that the singles pass completed within budget:
	// removing any single remaining segment loses the failure.
	OneMinimal bool

	SwitchesBefore, SwitchesAfter int
	SegmentsBefore, SegmentsAfter int
	PicksBefore, PicksAfter       int64
}

func (m *Minimized) String() string {
	return fmt.Sprintf("minimize: switches %d -> %d, segments %d -> %d, picks %d -> %d (%d probes, 1-minimal=%v)",
		m.SwitchesBefore, m.SwitchesAfter, m.SegmentsBefore, m.SegmentsAfter,
		m.PicksBefore, m.PicksAfter, m.Probes, m.OneMinimal)
}

func sumPicks(segs []sched.Segment) int64 {
	var n int64
	for _, s := range segs {
		n += s.N
	}
	return n
}

// cut returns segs with [start,end) removed, merged. It always allocates.
func cut(segs []sched.Segment, start, end int) []sched.Segment {
	out := make([]sched.Segment, 0, len(segs)-(end-start))
	out = append(out, segs[:start]...)
	out = append(out, segs[end:]...)
	return sched.MergeSegments(out)
}

// Minimize shrinks the recording's segment stream to a (locally) minimal
// schedule that still produces the same failure key. The input recording
// must be of a failed run. mod must match the recording's module hash.
func Minimize(mod *mir.Module, rec *Recording, opt MinimizeOptions) (*Minimized, error) {
	if !rec.Fingerprint.Failed {
		return nil, fmt.Errorf("replay: cannot minimize a recording of a completed run (nothing to reproduce)")
	}
	if err := rec.CheckModule(mod); err != nil {
		return nil, err
	}

	budget := opt.ProbeBudget
	if budget <= 0 {
		budget = DefaultProbeBudget
	}
	probeSteps := opt.ProbeSteps
	if probeSteps <= 0 {
		probeSteps = 4 * rec.Fingerprint.Steps
		if probeSteps < MinProbeSteps {
			probeSteps = MinProbeSteps
		}
	}

	m := &Minimized{
		SwitchesBefore: sched.Switches(rec.Segments),
		SegmentsBefore: len(sched.MergeSegments(rec.Segments)),
		PicksBefore:    rec.Picks(),
	}

	// probe replays a candidate stream under the step watchdog and reports
	// whether the original failure key reproduces.
	probe := func(segs []sched.Segment) bool {
		m.Probes++
		if reg := metricsRegistry.Load(); reg != nil {
			reg.Counter("minimize_probes_total").Inc()
		}
		cand := *rec
		cand.Segments = segs
		r, _ := Run(mod, &cand, RunOptions{MaxSteps: probeSteps})
		return FingerprintOf(r).SameFailure(rec.Fingerprint)
	}

	cur := sched.MergeSegments(rec.Segments)
	if !probe(cur) {
		return nil, fmt.Errorf("replay: recording does not reproduce its failure %s under replay; refusing to minimize",
			rec.Fingerprint.FailureKey())
	}

	// ddmin over segments, removing complements: delete ever-smaller chunks
	// of the stream as long as the failure survives.
	n := 2
	for len(cur) >= 2 && m.Probes < budget {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur) && m.Probes < budget; start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := cut(cur, start, end)
			if len(cand) == 0 {
				continue
			}
			if probe(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}

	// Singles pass: re-try every single-segment removal until none helps.
	// On clean completion the result is 1-minimal by construction.
	for m.Probes < budget {
		reduced := false
		for i := 0; i < len(cur) && m.Probes < budget; i++ {
			if len(cur) == 1 {
				break
			}
			cand := cut(cur, i, i+1)
			if probe(cand) {
				cur = cand
				reduced = true
				i-- // the merged stream shifted left; retry this index
			}
		}
		if !reduced {
			m.OneMinimal = m.Probes < budget
			break
		}
	}

	// Final authoritative run under the recording's own step budget (not
	// the probe watchdog) to stamp the minimized artifact's fingerprint.
	out := *rec
	out.Segments = cur
	out.Minimized = true
	r, _ := Run(mod, &out, RunOptions{})
	out.Fingerprint = FingerprintOf(r)
	if !out.Fingerprint.SameFailure(rec.Fingerprint) {
		// The watchdogged probe accepted a stream whose failure only
		// manifests under the tighter step bound (possible only when the
		// original failure was itself a step-limit hang). Keep the artifact
		// honest by pinning the probe budget into it.
		out.MaxSteps = probeSteps
		r, _ = Run(mod, &out, RunOptions{})
		out.Fingerprint = FingerprintOf(r)
	}

	m.Rec = &out
	m.SwitchesAfter = sched.Switches(cur)
	m.SegmentsAfter = len(cur)
	m.PicksAfter = sumPicks(cur)
	return m, nil
}
