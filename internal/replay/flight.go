package replay

// Flight capture is the always-on counterpart of Capture: every job runs
// under a bounded sched.FlightRecorder ring, so a failing run — even one
// nobody asked to record — still yields a replayable artifact, while long
// healthy runs cost only the ring. The runner attaches one per job when
// Engine.FlightLimit is set; the telemetry server (internal/obs/serve)
// retains the resulting recordings in its run registry and serves them at
// /runs/{id}/recording.

import (
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// FlightCapture is one job's armed flight recorder; Finish turns it into
// a Recording once the run's Result is known.
type FlightCapture struct {
	mod   *mir.Module
	rec   *sched.FlightRecorder
	inner string
	meta  Meta
	knobs interp.Config
}

// CaptureFlight wraps cfg's scheduler in a bounded flight recorder
// keeping at most limit segments (sched.DefaultFlightSegments if
// limit <= 0) and returns the adjusted config plus the capture handle.
// Like Capture, the wrapped run is bit-identical to the unwrapped one;
// unlike Capture, memory is bounded regardless of run length.
func CaptureFlight(mod *mir.Module, cfg interp.Config, meta Meta, limit int) (interp.Config, *FlightCapture) {
	if cfg.Sched == nil {
		cfg.Sched = sched.NewRandom(1)
	}
	fc := &FlightCapture{
		mod:   mod,
		rec:   sched.NewFlightRecorder(cfg.Sched, limit),
		inner: cfg.Sched.Name(),
		meta:  meta,
	}
	cfg.Sched = fc.rec
	fc.knobs = cfg
	return cfg, fc
}

// Truncated reports whether the ring wrapped: the retained stream is then
// only the schedule's tail and Finish returns nil.
func (fc *FlightCapture) Truncated() bool { return fc.rec.Truncated() }

// Picks returns the total number of scheduling decisions the run made.
func (fc *FlightCapture) Picks() int64 { return fc.rec.Picks() }

// Finish builds the Recording from the run's Result. It returns nil when
// the ring wrapped: a truncated stream replays from the wrong state, so
// it must never be passed off as a reproducer. (Callers that want the
// partial tail for timeline display can read the recorder directly.)
func (fc *FlightCapture) Finish(r *interp.Result) *Recording {
	if fc.rec.Truncated() {
		return nil
	}
	text, hash := artifactOf(fc.mod)
	out := &Recording{
		ModuleName:       fc.mod.Name,
		ModuleHash:       hash,
		SchedName:        fc.inner,
		Seed:             fc.meta.Seed,
		Label:            fc.meta.Label,
		MaxSteps:         fc.knobs.MaxSteps,
		MaxThreads:       fc.knobs.MaxThreads,
		CollectOutput:    fc.knobs.CollectOutput,
		NoDeadlockCycles: fc.knobs.NoDeadlockCycles,
		Fingerprint:      FingerprintOf(r),
		Segments:         fc.rec.Segments(),
		Intns:            fc.rec.Intns(),
	}
	if !fc.meta.OmitModule {
		out.ModuleText = text
	}
	return out
}
