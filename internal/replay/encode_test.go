package replay

import (
	"errors"
	"reflect"
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

// sample builds a representative recording exercising every field.
func sample() *Recording {
	return &Recording{
		ModuleName:       "mod-x",
		ModuleHash:       "0123456789abcdef",
		ModuleText:       "module mod-x\nfunc main() {\nentry:\n  ret\n}\n",
		SchedName:        "pct(3,64)",
		Seed:             -42,
		Label:            "unit",
		Minimized:        true,
		MaxSteps:         1 << 40,
		MaxThreads:       12,
		CollectOutput:    true,
		NoDeadlockCycles: true,
		Fingerprint: Fingerprint{
			Completed: false, ExitCode: -1, Steps: 123456,
			Checkpoints: 7, Rollbacks: 3, CompFrees: 1, CompUnlocks: 2,
			Episodes: 2, EpisodeRetries: 9, EpisodeSteps: 400, ThreadsSpawned: 4,
			Failed: true, FailKind: mir.FailDeadlock,
			FailPos: mir.Pos{Fn: 2, Block: 1, Index: 3},
			FailSite: 5, FailThread: 2, FailStep: 99999, FailMsg: "lock cycle",
		},
		Segments: []sched.Segment{{TID: 0, N: 100}, {TID: 2, N: 1}, {TID: 0, N: 50}},
		Intns:    []int64{0, 3, 17, 2},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range []*Recording{sample(), {ModuleName: "empty"}, {}} {
		got, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip mismatch\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(sample())

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrMagic},
		{"short", valid[:3], ErrMagic},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), ErrMagic},
		{"truncated", valid[:len(valid)/2], ErrChecksum},
		{"trailing garbage", append(append([]byte{}, valid...), 0xEE), ErrChecksum},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	// Flipping any single byte must be caught by the checksum (or, for the
	// trailing checksum bytes themselves, by the mismatch).
	for i := range valid {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	// Rebuild a structurally valid artifact with a bumped version and a
	// recomputed checksum: only ErrVersion distinguishes it.
	valid := Encode(sample())
	body := append([]byte{}, valid[:len(valid)-4]...)
	if body[4] != FormatVersion {
		t.Fatalf("version byte layout changed; update this test")
	}
	body[4] = FormatVersion + 1
	data := appendCRC(body)
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsLyingLengths(t *testing.T) {
	// A declared string length far beyond the input must error without
	// allocating; build it by hand with a valid checksum.
	body := append([]byte{}, magic[:]...)
	body = append(body, FormatVersion)
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // module-name length ~4GiB
	data := appendCRC(body)
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
