package replay_test

import (
	"reflect"
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/replay"
	"conair/internal/sched"
)

const testMaxSteps = 20_000_000

func pctCfg(seed int64) interp.Config {
	return interp.Config{Sched: sched.NewPCT(seed, 3, 64), MaxSteps: testMaxSteps}
}

func randCfg(seed int64) interp.Config {
	return interp.Config{Sched: sched.NewRandom(seed), MaxSteps: testMaxSteps}
}

// normalize strips nil-vs-empty encoding details before DeepEqual.
func normalize(r *interp.Result) *interp.Result {
	cp := *r
	if len(cp.Stats.CheckpointExecs) == 0 {
		cp.Stats.CheckpointExecs = nil
	}
	return &cp
}

// roundTrip records one run of mod under cfg, replays it through an
// encode/decode cycle, and requires the replayed Result to DeepEqual the
// recorded one with an identical fingerprint and zero divergences.
func roundTrip(t *testing.T, mod *mir.Module, cfg interp.Config, label string) *replay.Recording {
	t.Helper()
	orig, rec := replay.Record(mod, cfg, replay.Meta{Label: label})

	decoded, err := replay.Decode(replay.Encode(rec))
	if err != nil {
		t.Fatalf("%s: decode(encode): %v", label, err)
	}
	m2, err := decoded.Module()
	if err != nil {
		t.Fatalf("%s: embedded module: %v", label, err)
	}
	got, sr := replay.Run(m2, decoded, replay.RunOptions{})
	if d := sr.Diverged(); d > 0 {
		t.Fatalf("%s: replay diverged on %d decisions", label, d)
	}
	if !reflect.DeepEqual(normalize(got), normalize(orig)) {
		t.Fatalf("%s: replayed Result differs from recorded run\n got %+v\nwant %+v",
			label, got, orig)
	}
	if fp := replay.FingerprintOf(got); fp != rec.Fingerprint {
		t.Fatalf("%s: fingerprint mismatch\n got %+v\nwant %+v", label, fp, rec.Fingerprint)
	}
	if err := replay.Verify(mod, decoded); err != nil {
		t.Fatalf("%s: Verify: %v", label, err)
	}
	return rec
}

// TestPaperBugsRoundTrip records every paper benchmark bug — raw forced
// program and survival-hardened variant — under PCT search schedules and
// requires each recording to replay bit-identically.
func TestPaperBugsRoundTrip(t *testing.T) {
	for _, b := range bugs.All() {
		raw := b.Program(bugs.Config{Light: true, ForceBug: true})
		h, err := core.Harden(raw, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: harden: %v", b.Name, err)
		}
		failed := false
		for seed := int64(0); seed < 3; seed++ {
			rec := roundTrip(t, raw, pctCfg(seed), b.Name+"-raw")
			failed = failed || rec.Fingerprint.Failed
			roundTrip(t, h.Module, pctCfg(seed), b.Name+"-hardened")
		}
		if !failed {
			t.Errorf("%s: no PCT seed in the search failed on the raw forced program", b.Name)
		}
	}
}

// templateConfigs yields the 50 mirgen bug-template generator seeds the
// replay and minimization tests sweep, cycling all seven template kinds.
func templateConfigs() []mirgen.Config {
	kinds := []mirgen.BugKind{mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock, mirgen.BugCASABA}
	cfgs := make([]mirgen.Config, 0, 50)
	for i := 0; i < 50; i++ {
		cfgs = append(cfgs, mirgen.Config{Seed: int64(i), Threads: 2, Bug: kinds[i%len(kinds)]})
	}
	return cfgs
}

// TestMirgenTemplatesRoundTrip records 50 generated bug templates under
// PCT search schedules; every recording — failing or not — must replay to
// a DeepEqual Result and identical fingerprint.
func TestMirgenTemplatesRoundTrip(t *testing.T) {
	for _, gc := range templateConfigs() {
		mod, info := mirgen.GenWithInfo(gc)
		if info == nil {
			t.Fatalf("seed %d: no injected bug", gc.Seed)
		}
		label := info.Kind.String()
		for seed := int64(0); seed < 2; seed++ {
			roundTrip(t, mod, pctCfg(seed), label)
		}
	}
}

// recordFailure searches scheduler seeds for a failing run of mod and
// returns its recording, or nil when the budget stays clean.
func recordFailure(mod *mir.Module, budget int64, cfg func(int64) interp.Config) *replay.Recording {
	for seed := int64(0); seed < budget; seed++ {
		_, rec := replay.Record(mod, cfg(seed), replay.Meta{Seed: seed})
		if rec.Fingerprint.Failed {
			return rec
		}
	}
	return nil
}

// TestMinimizeMirgenTemplates is the ddmin property test: for every
// mirgen bug template whose failure a random-schedule search finds, the
// minimized stream must still fail with the same failure key, be
// 1-minimal within the probe budget, and cut the context-switch count of
// the recorded schedule by at least 5x.
func TestMinimizeMirgenTemplates(t *testing.T) {
	minimized := 0
	for _, gc := range templateConfigs() {
		mod, info := mirgen.GenWithInfo(gc)
		rec := recordFailure(mod, 10, randCfg)
		if rec == nil {
			// Not every template fails under every schedule (atomicity and
			// lock-inversion bugs are schedule-dependent); the ones that do
			// carry the assertions.
			continue
		}
		label := info.Kind.String()
		min, err := replay.Minimize(mod, rec, replay.MinimizeOptions{})
		if err != nil {
			t.Fatalf("%s seed %d: minimize: %v", label, gc.Seed, err)
		}

		// Property 1: the minimized stream still produces the same failure.
		if !min.Rec.Fingerprint.SameFailure(rec.Fingerprint) {
			t.Fatalf("%s seed %d: minimized failure %s, want %s",
				label, gc.Seed, min.Rec.Fingerprint.FailureKey(), rec.Fingerprint.FailureKey())
		}
		// Property 2: 1-minimality — removing any single remaining segment
		// loses the failure. Minimize already verified this via its singles
		// pass; re-check independently on the final stream.
		if !min.OneMinimal {
			t.Errorf("%s seed %d: minimization did not reach 1-minimality within %d probes",
				label, gc.Seed, min.Probes)
		} else {
			for i := range min.Rec.Segments {
				if len(min.Rec.Segments) == 1 {
					break
				}
				cand := *min.Rec
				cand.Segments = sched.MergeSegments(
					append(append([]sched.Segment{}, min.Rec.Segments[:i]...), min.Rec.Segments[i+1:]...))
				r, _ := replay.Run(mod, &cand, replay.RunOptions{MaxSteps: 4 * rec.Fingerprint.Steps})
				if replay.FingerprintOf(r).SameFailure(rec.Fingerprint) {
					t.Fatalf("%s seed %d: not 1-minimal: segment %d/%d is removable",
						label, gc.Seed, i, len(min.Rec.Segments))
				}
			}
		}
		// Property 3: >=5x context-switch reduction on the recorded schedule.
		if min.SwitchesAfter*5 > min.SwitchesBefore {
			t.Errorf("%s seed %d: switches %d -> %d, want >=5x reduction",
				label, gc.Seed, min.SwitchesBefore, min.SwitchesAfter)
		}
		// The minimized artifact must itself survive an encode/decode/verify
		// round trip.
		dec, err := replay.Decode(replay.Encode(min.Rec))
		if err != nil {
			t.Fatalf("%s seed %d: decode minimized: %v", label, gc.Seed, err)
		}
		if err := replay.Verify(mod, dec); err != nil {
			t.Fatalf("%s seed %d: verify minimized: %v", label, gc.Seed, err)
		}
		minimized++
	}
	if minimized < 20 {
		t.Fatalf("only %d/50 templates produced a failing recording to minimize; the search is broken", minimized)
	}
	t.Logf("minimized %d/50 template failures", minimized)
}

// TestMinimizeRejectsCompletedRun pins the minimizer's precondition.
func TestMinimizeRejectsCompletedRun(t *testing.T) {
	mod := mirgen.Gen(mirgen.Config{Seed: 1})
	_, rec := replay.Record(mod, randCfg(1), replay.Meta{})
	if rec.Fingerprint.Failed {
		t.Fatal("failure-free generated program failed")
	}
	if _, err := replay.Minimize(mod, rec, replay.MinimizeOptions{}); err == nil {
		t.Fatal("Minimize accepted a recording of a completed run")
	}
}

// TestVerifyDetectsWrongModule pins the module-hash guard.
func TestVerifyDetectsWrongModule(t *testing.T) {
	modA := mirgen.Gen(mirgen.Config{Seed: 1})
	modB := mirgen.Gen(mirgen.Config{Seed: 2})
	_, rec := replay.Record(modA, randCfg(1), replay.Meta{})
	if err := replay.Verify(modB, rec); err == nil {
		t.Fatal("Verify accepted a recording against the wrong module")
	}
}
