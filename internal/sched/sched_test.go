package sched

import (
	"math/rand"
	"testing"
)

// TestRandomIntnMatchesMathRand pins Random.Intn's fast path to
// math/rand.(*Rand).Intn: same values AND the same number of draws consumed
// from the source, across power-of-two and rejection-loop bounds. The whole
// determinism story (golden experiment fingerprints) rides on this.
func TestRandomIntnMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 7, 42, 1 << 40} {
		got := NewRandom(seed)
		want := rand.New(rand.NewSource(seed))
		// Interleave bounds so a draw-count mismatch desynchronizes the
		// streams and shows up as a value mismatch on a later bound.
		bounds := []int{1, 2, 3, 1, 5, 7, 8, 100, 1, 6, 1 << 20, 2, 9, 1<<31 - 1}
		for round := 0; round < 200; round++ {
			for _, n := range bounds {
				g, w := got.Intn(n), want.Intn(n)
				if g != w {
					t.Fatalf("seed %d round %d Intn(%d) = %d, math/rand = %d",
						seed, round, n, g, w)
				}
			}
		}
	}
}

// TestRandomPickMatchesMathRand pins the Pick stream (the per-instruction
// scheduling decisions) the same way.
func TestRandomPickMatchesMathRand(t *testing.T) {
	got := NewRandom(3)
	want := rand.New(rand.NewSource(3))
	run := [][]int{{0}, {0, 1}, {0, 1, 2}, {0, 2, 5, 9}, {1, 2, 3, 4, 5, 6, 7}}
	for i := int64(0); i < 1000; i++ {
		r := run[i%int64(len(run))]
		g, w := got.Pick(r, i), r[want.Intn(len(r))]
		if g != w {
			t.Fatalf("step %d Pick(%v) = %d, math/rand picks %d", i, r, g, w)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	run := []int{3, 7, 9}
	for i := int64(0); i < 100; i++ {
		if a.Pick(run, i) != b.Pick(run, i) {
			t.Fatal("same seed must give same picks")
		}
	}
	if a.Name() != "random" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestRandomPicksFromRunnable(t *testing.T) {
	s := NewRandom(1)
	run := []int{4, 8}
	seen := map[int]bool{}
	for i := int64(0); i < 200; i++ {
		p := s.Pick(run, i)
		if p != 4 && p != 8 {
			t.Fatalf("picked %d not in runnable", p)
		}
		seen[p] = true
	}
	if !seen[4] || !seen[8] {
		t.Error("random scheduler never picked one of the threads")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := NewRoundRobin(1, 0)
	run := []int{1, 2}
	got := []int{
		s.Pick(run, 0), s.Pick(run, 1), s.Pick(run, 2), s.Pick(run, 3),
	}
	want := []int{1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinQuantum(t *testing.T) {
	s := NewRoundRobin(3, 0)
	run := []int{5, 6}
	for i := int64(0); i < 3; i++ {
		if p := s.Pick(run, i); p != 5 {
			t.Fatalf("step %d: got %d, want 5", i, p)
		}
	}
	if p := s.Pick(run, 3); p != 6 {
		t.Fatalf("after quantum: got %d, want 6", p)
	}
}

func TestScriptedPrefix(t *testing.T) {
	s := NewScripted([]int{2, 2, 1}, 0)
	run := []int{1, 2}
	if p := s.Pick(run, 0); p != 2 {
		t.Fatalf("scripted pick 0 = %d", p)
	}
	if p := s.Pick(run, 1); p != 2 {
		t.Fatalf("scripted pick 1 = %d", p)
	}
	if p := s.Pick(run, 2); p != 1 {
		t.Fatalf("scripted pick 2 = %d", p)
	}
	// Script exhausted: falls back to random but stays within runnable.
	for i := int64(3); i < 50; i++ {
		p := s.Pick(run, i)
		if p != 1 && p != 2 {
			t.Fatalf("fallback picked %d", p)
		}
	}
}

func TestScriptedSkipsBlockedWithoutConsuming(t *testing.T) {
	s := NewScripted([]int{3}, 0)
	// Thread 3 not runnable yet: entry must not be consumed.
	if p := s.Pick([]int{1}, 0); p != 1 {
		t.Fatalf("pick = %d", p)
	}
	if p := s.Pick([]int{1, 3}, 1); p != 3 {
		t.Fatalf("scripted entry should still apply, got %d", p)
	}
}

func TestIntnInRange(t *testing.T) {
	for _, s := range []Scheduler{NewRandom(2), NewRoundRobin(1, 2), NewScripted(nil, 2)} {
		for i := 0; i < 100; i++ {
			if v := s.Intn(7); v < 0 || v >= 7 {
				t.Fatalf("%s.Intn out of range: %d", s.Name(), v)
			}
		}
	}
}
