package sched

// This file is the always-on half of record-and-replay: a FlightRecorder
// is a Recorder with a bounded memory footprint. Where Recorder keeps the
// whole decision stream (right for deliberate -record captures, wrong for
// "record every job of a multi-hour sweep"), FlightRecorder keeps a ring
// of the most recent segments and Intn draws — aviation-style: always
// writing, bounded tape, and the tape only matters when something goes
// wrong.
//
// The payoff is the common forensic case: failing runs die young. A
// forced-failure run's whole schedule fits in a small ring, so for
// exactly the runs worth keeping the recording is complete and replayable
// bit-identically; long healthy runs wrap the ring and their (useless)
// recording is marked truncated instead of eating memory proportional to
// their step count.

// FlightRecorder wraps an inner scheduler and records the tail of its
// decision stream into bounded rings. Like Recorder it is purely
// observational: Pick and Intn return exactly what the inner scheduler
// returns, so an attached flight recorder never changes a run.
type FlightRecorder struct {
	inner Scheduler
	limit int // ring capacity, in segments (and in Intn draws)

	segs  []Segment // ring; logical order starts at segStart once full
	start int       // index of the oldest segment when len(segs) == limit

	intns     []int64 // ring of Intn draws
	intnStart int

	picks        int64
	droppedSegs  int64 // segments evicted from the ring
	droppedPicks int64 // picks inside evicted segments
	droppedIntns int64
}

// DefaultFlightSegments is the ring capacity used when limit <= 0: deep
// enough that every forced-failure benchmark run fits with a wide margin
// (their full schedules run to a few thousand segments), small enough
// that a worker pool of flight-recorded jobs stays in the megabytes.
const DefaultFlightSegments = 1 << 14

// NewFlightRecorder returns a flight recorder around inner keeping at
// most limit segments (DefaultFlightSegments if limit <= 0).
func NewFlightRecorder(inner Scheduler, limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightSegments
	}
	return &FlightRecorder{inner: inner, limit: limit}
}

// lastIdx returns the ring index of the newest segment; only valid when
// len(f.segs) > 0.
func (f *FlightRecorder) lastIdx() int {
	if len(f.segs) < f.limit || f.start == 0 {
		return len(f.segs) - 1
	}
	return f.start - 1
}

// Pick implements Scheduler, recording the chosen thread in the ring.
func (f *FlightRecorder) Pick(runnable []int, step int64) int {
	t := f.inner.Pick(runnable, step)
	f.Note(int32(t))
	return t
}

// Note records one pick of tid without consulting the inner scheduler.
// The interpreter's devirtualized fast path draws from the inner
// *Random directly (bit-identical arithmetic to Random.Pick) and reports
// each resulting decision here, so the recorded stream is exactly what
// routing every pick through Pick would produce. The common same-thread
// case is one compare and one increment.
func (f *FlightRecorder) Note(tid int32) {
	f.picks++
	if len(f.segs) > 0 {
		if last := f.lastIdx(); f.segs[last].TID == tid {
			f.segs[last].N++
			return
		}
	}
	f.push(tid, 1)
}

// NoteRun records n consecutive picks of tid — a superblock quantum's
// worth — in one ring update. n <= 0 is a no-op.
func (f *FlightRecorder) NoteRun(tid int32, n int64) {
	if n <= 0 {
		return
	}
	f.picks += n
	if len(f.segs) > 0 {
		if last := f.lastIdx(); f.segs[last].TID == tid {
			f.segs[last].N += n
			return
		}
	}
	f.push(tid, n)
}

// push starts a new segment, evicting the oldest slot when the ring is
// full (the slot after it then becomes the oldest).
func (f *FlightRecorder) push(tid int32, n int64) {
	if len(f.segs) < f.limit {
		f.segs = append(f.segs, Segment{TID: tid, N: n})
		return
	}
	f.droppedSegs++
	f.droppedPicks += f.segs[f.start].N
	f.segs[f.start] = Segment{TID: tid, N: n}
	f.start++
	if f.start == f.limit {
		f.start = 0
	}
}

// Intn implements Scheduler, recording the drawn value in the ring.
func (f *FlightRecorder) Intn(n int) int {
	v := f.inner.Intn(n)
	if len(f.intns) < f.limit {
		f.intns = append(f.intns, int64(v))
		return v
	}
	f.droppedIntns++
	f.intns[f.intnStart] = int64(v)
	f.intnStart++
	if f.intnStart == f.limit {
		f.intnStart = 0
	}
	return v
}

// Name implements Scheduler.
func (f *FlightRecorder) Name() string { return "flight(" + f.inner.Name() + ")" }

// Inner returns the wrapped scheduler.
func (f *FlightRecorder) Inner() Scheduler { return f.inner }

// Segments returns a copy of the retained pick stream, oldest first.
func (f *FlightRecorder) Segments() []Segment {
	out := make([]Segment, 0, len(f.segs))
	out = append(out, f.segs[f.start:]...)
	out = append(out, f.segs[:f.start]...)
	return out
}

// Intns returns a copy of the retained Intn draws, oldest first.
func (f *FlightRecorder) Intns() []int64 {
	out := make([]int64, 0, len(f.intns))
	out = append(out, f.intns[f.intnStart:]...)
	out = append(out, f.intns[:f.intnStart]...)
	return out
}

// Picks returns the total number of scheduling decisions observed
// (including ones whose segments have been evicted).
func (f *FlightRecorder) Picks() int64 { return f.picks }

// Truncated reports whether the ring wrapped: the retained stream is then
// a strict suffix of the run's schedule and cannot replay the run from
// the start.
func (f *FlightRecorder) Truncated() bool { return f.droppedSegs > 0 || f.droppedIntns > 0 }

// Dropped returns the eviction counters: whole segments evicted, picks
// inside them, and Intn draws evicted.
func (f *FlightRecorder) Dropped() (segs, picks, intns int64) {
	return f.droppedSegs, f.droppedPicks, f.droppedIntns
}
