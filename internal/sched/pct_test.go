package sched

import "testing"

func TestPCTDeterministicPerSeed(t *testing.T) {
	a := NewPCT(3, 3, 1000)
	b := NewPCT(3, 3, 1000)
	run := []int{1, 2, 3}
	for i := int64(0); i < 200; i++ {
		if a.Pick(run, i) != b.Pick(run, i) {
			t.Fatal("same seed must give the same schedule")
		}
	}
	if a.Name() != "pct" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestPCTPicksFromRunnable(t *testing.T) {
	s := NewPCT(1, 4, 500)
	for i := int64(0); i < 500; i++ {
		run := []int{int(i % 3), 3 + int(i%2)}
		p := s.Pick(run, i)
		ok := false
		for _, r := range run {
			if r == p {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("step %d: picked %d not in %v", i, p, run)
		}
	}
}

func TestPCTPrioritiesAreStableBetweenChangePoints(t *testing.T) {
	// With d=1 there are no change points: the highest-priority runnable
	// thread runs every step, so picks over a fixed runnable set are
	// constant.
	s := NewPCT(7, 1, 1000)
	run := []int{4, 5, 6}
	first := s.Pick(run, 0)
	for i := int64(1); i < 100; i++ {
		if got := s.Pick(run, i); got != first {
			t.Fatalf("step %d: pick changed from %d to %d without a change point", i, first, got)
		}
	}
}

func TestPCTDemotionChangesChoice(t *testing.T) {
	// With many change points over a short horizon, demotions must cause
	// at least one switch among always-runnable threads.
	s := NewPCT(11, 8, 64)
	run := []int{1, 2}
	seen := map[int]bool{}
	for i := int64(0); i < 64; i++ {
		seen[s.Pick(run, i)] = true
	}
	if len(seen) < 2 {
		t.Error("expected at least one priority demotion to switch threads")
	}
}
