// Package sched provides the thread schedulers used by the MIR interpreter.
//
// ConAir's evaluation methodology depends on controlling interleavings: the
// paper injects sleeps into buggy regions so the failure-inducing
// interleaving occurs with ~100% probability, then repeats runs 1000 times.
// The interpreter reproduces that with deterministic, seeded schedulers:
// the same (program, scheduler, seed) triple always yields the same
// interleaving, so experiments are exactly repeatable.
package sched

import "math/rand"

// Scheduler picks which runnable thread executes the next instruction. A
// scheduler is also the interpreter's source of randomness (for the
// sleeprand livelock-avoidance instruction), keeping whole runs
// reproducible from one seed.
type Scheduler interface {
	// Pick returns an element of runnable. runnable is never empty and is
	// sorted by thread id.
	Pick(runnable []int, step int64) int
	// Intn returns a uniform value in [0, n); n > 0.
	Intn(n int) int
	// Name identifies the scheduler in reports.
	Name() string
}

// Random schedules uniformly at random among runnable threads.
type Random struct {
	rng *rand.Rand
	// src is the same source rng wraps. The interpreter consumes one draw
	// per executed instruction, so Intn below re-derives math/rand's Intn
	// arithmetic directly over the source — one interface call per draw
	// instead of the Rand.Intn→Int31n→Int31→Int63 wrapper chain — while
	// producing the bit-identical value stream (pinned by TestRandomIntn
	// MatchesMathRand and the golden experiment fingerprints).
	src rand.Source
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	src := rand.NewSource(seed)
	return &Random{rng: rand.New(src), src: src}
}

// Pick implements Scheduler.
func (r *Random) Pick(runnable []int, _ int64) int {
	return runnable[r.Intn(len(runnable))]
}

// Intn implements Scheduler. The value (and the number of draws consumed
// from the source) is exactly what math/rand.(*Rand).Intn would produce:
// one Int31 draw, masked when n is a power of two, otherwise the standard
// modulo-rejection loop.
func (r *Random) Intn(n int) int {
	if n <= 0 || n > 1<<31-1 {
		return r.rng.Intn(n) // out of the fast range; also panics on n <= 0
	}
	n32 := int32(n)
	return int(r.ReduceDraw(r.Int31(), n32))
}

// ReduceDraw reduces a raw Int31 draw v to a uniform index in [0, n),
// consuming further draws only in math/rand's modulo-rejection case. It is
// the shared tail of Intn: hot schedulers (the interpreter's dispatch and
// superblock loops) call Int31 + ReduceDraw inline and get the
// bit-identical value stream — and draw count — Intn would produce.
func (r *Random) ReduceDraw(v, n int32) int32 {
	if n&(n-1) == 0 {
		return v & (n - 1)
	}
	return r.IntnTail(v, n)
}

// Int31 returns the next raw draw, identical to math/rand.(*Rand).Int31.
// It is small enough to inline, so hot callers (the interpreter's
// scheduling loop) can split Intn into an inlined draw plus a rarely
// needed IntnTail call instead of paying a full call per instruction.
func (r *Random) Int31() int32 { return int32(r.src.Int63() >> 32) }

// IntnTail completes a non-power-of-two Intn given the first draw v from
// Int31: math/rand's modulo-rejection arithmetic, consuming further draws
// only in the (rare) rejection case.
func (r *Random) IntnTail(v, n int32) int32 {
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	for v > max {
		v = int32(r.src.Int63() >> 32)
	}
	return v % n
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// RoundRobin rotates through runnable threads, switching after quantum
// instructions (quantum 1 interleaves maximally; a large quantum
// approximates run-to-block).
type RoundRobin struct {
	quantum int64
	rng     *rand.Rand
}

// NewRoundRobin returns a round-robin scheduler with the given quantum.
// The seed only feeds Intn (used by sleeprand).
func NewRoundRobin(quantum int64, seed int64) *RoundRobin {
	if quantum < 1 {
		quantum = 1
	}
	return &RoundRobin{quantum: quantum, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (r *RoundRobin) Pick(runnable []int, step int64) int {
	return runnable[int(step/r.quantum)%len(runnable)]
}

// Intn implements Scheduler.
func (r *RoundRobin) Intn(n int) int { return r.rng.Intn(n) }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Scripted replays a fixed prefix of thread choices, then falls back to a
// seeded random scheduler. It pins down one exact interleaving prefix —
// the forced buggy interleaving — while letting the rest of the run proceed
// normally.
type Scripted struct {
	script []int
	pos    int
	fall   *Random
}

// NewScripted returns a scheduler that prefers the scripted thread ids in
// order; when the scripted thread is not runnable the entry is retried at
// the next step (the scripted thread may be sleeping deliberately).
func NewScripted(script []int, seed int64) *Scripted {
	return &Scripted{script: script, fall: NewRandom(seed)}
}

// Pick implements Scheduler.
func (s *Scripted) Pick(runnable []int, step int64) int {
	if s.pos < len(s.script) {
		want := s.script[s.pos]
		for _, t := range runnable {
			if t == want {
				s.pos++
				return t
			}
		}
		// The wanted thread is blocked or sleeping: let someone else run
		// without consuming the script entry.
	}
	return s.fall.Pick(runnable, step)
}

// Intn implements Scheduler.
func (s *Scripted) Intn(n int) int { return s.fall.Intn(n) }

// Name implements Scheduler.
func (s *Scripted) Name() string { return "scripted" }
