// Package sched provides the thread schedulers used by the MIR interpreter.
//
// ConAir's evaluation methodology depends on controlling interleavings: the
// paper injects sleeps into buggy regions so the failure-inducing
// interleaving occurs with ~100% probability, then repeats runs 1000 times.
// The interpreter reproduces that with deterministic, seeded schedulers:
// the same (program, scheduler, seed) triple always yields the same
// interleaving, so experiments are exactly repeatable.
package sched

import "math/rand"

// Scheduler picks which runnable thread executes the next instruction. A
// scheduler is also the interpreter's source of randomness (for the
// sleeprand livelock-avoidance instruction), keeping whole runs
// reproducible from one seed.
type Scheduler interface {
	// Pick returns an element of runnable. runnable is never empty and is
	// sorted by thread id.
	Pick(runnable []int, step int64) int
	// Intn returns a uniform value in [0, n); n > 0.
	Intn(n int) int
	// Name identifies the scheduler in reports.
	Name() string
}

// Random schedules uniformly at random among runnable threads.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (r *Random) Pick(runnable []int, _ int64) int {
	return runnable[r.rng.Intn(len(runnable))]
}

// Intn implements Scheduler.
func (r *Random) Intn(n int) int { return r.rng.Intn(n) }

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// RoundRobin rotates through runnable threads, switching after quantum
// instructions (quantum 1 interleaves maximally; a large quantum
// approximates run-to-block).
type RoundRobin struct {
	quantum int64
	rng     *rand.Rand
}

// NewRoundRobin returns a round-robin scheduler with the given quantum.
// The seed only feeds Intn (used by sleeprand).
func NewRoundRobin(quantum int64, seed int64) *RoundRobin {
	if quantum < 1 {
		quantum = 1
	}
	return &RoundRobin{quantum: quantum, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (r *RoundRobin) Pick(runnable []int, step int64) int {
	return runnable[int(step/r.quantum)%len(runnable)]
}

// Intn implements Scheduler.
func (r *RoundRobin) Intn(n int) int { return r.rng.Intn(n) }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Scripted replays a fixed prefix of thread choices, then falls back to a
// seeded random scheduler. It pins down one exact interleaving prefix —
// the forced buggy interleaving — while letting the rest of the run proceed
// normally.
type Scripted struct {
	script []int
	pos    int
	fall   *Random
}

// NewScripted returns a scheduler that prefers the scripted thread ids in
// order; when the scripted thread is not runnable the entry is retried at
// the next step (the scripted thread may be sleeping deliberately).
func NewScripted(script []int, seed int64) *Scripted {
	return &Scripted{script: script, fall: NewRandom(seed)}
}

// Pick implements Scheduler.
func (s *Scripted) Pick(runnable []int, step int64) int {
	if s.pos < len(s.script) {
		want := s.script[s.pos]
		for _, t := range runnable {
			if t == want {
				s.pos++
				return t
			}
		}
		// The wanted thread is blocked or sleeping: let someone else run
		// without consuming the script entry.
	}
	return s.fall.Pick(runnable, step)
}

// Intn implements Scheduler.
func (s *Scripted) Intn(n int) int { return s.fall.Intn(n) }

// Name implements Scheduler.
func (s *Scripted) Name() string { return "scripted" }
