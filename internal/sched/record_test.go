package sched

import (
	"reflect"
	"testing"
)

// TestRecorderTransparent pins the recording contract: a Recorder-wrapped
// scheduler returns exactly the decisions the unwrapped scheduler would,
// for both Pick and Intn.
func TestRecorderTransparent(t *testing.T) {
	plain := NewRandom(42)
	rec := NewRecorder(NewRandom(42))

	runnable := [][]int{
		{0}, {0, 1}, {0, 1, 2}, {1, 2}, {0, 2, 5, 9}, {3}, {0, 1, 2, 3, 4},
	}
	var picks int64
	for step := int64(0); step < 10_000; step++ {
		r := runnable[int(step)%len(runnable)]
		want := plain.Pick(r, step)
		got := rec.Pick(r, step)
		if got != want {
			t.Fatalf("step %d: wrapped pick %d, plain pick %d", step, got, want)
		}
		picks++
		if step%97 == 0 {
			n := int(step%7) + 2
			if got, want := rec.Intn(n), plain.Intn(n); got != want {
				t.Fatalf("step %d: wrapped Intn %d, plain %d", step, got, want)
			}
		}
	}
	if rec.Picks() != picks {
		t.Fatalf("Picks() = %d, want %d", rec.Picks(), picks)
	}
	var total int64
	for _, s := range rec.Segments() {
		if s.N <= 0 {
			t.Fatalf("segment with non-positive length: %+v", s)
		}
		total += s.N
	}
	if total != picks {
		t.Fatalf("segment lengths sum to %d, want %d picks", total, picks)
	}
	for i := 1; i < len(rec.Segments()); i++ {
		if rec.Segments()[i].TID == rec.Segments()[i-1].TID {
			t.Fatalf("adjacent segments %d and %d share tid %d (not run-length-maximal)",
				i-1, i, rec.Segments()[i].TID)
		}
	}
}

// TestSegmentReplayFaithful replays a recorded stream against the same
// pick sequence and checks every decision matches with zero divergences.
func TestSegmentReplayFaithful(t *testing.T) {
	rec := NewRecorder(NewRandom(7))
	runnable := [][]int{{0, 1, 2}, {0, 2}, {1, 2, 3}, {2}}
	var picks []int
	var draws []int
	for step := int64(0); step < 5_000; step++ {
		r := runnable[int(step)%len(runnable)]
		picks = append(picks, rec.Pick(r, step))
		if step%13 == 0 {
			draws = append(draws, rec.Intn(5))
		}
	}

	rep := NewSegmentReplay(rec.Segments(), rec.Intns())
	di := 0
	for step := int64(0); step < 5_000; step++ {
		r := runnable[int(step)%len(runnable)]
		if got := rep.Pick(r, step); got != picks[step] {
			t.Fatalf("step %d: replay pick %d, recorded %d", step, got, picks[step])
		}
		if step%13 == 0 {
			if got := rep.Intn(5); got != draws[di] {
				t.Fatalf("step %d: replay Intn %d, recorded %d", step, got, draws[di])
			}
			di++
		}
	}
	if rep.Diverged() != 0 {
		t.Fatalf("faithful replay diverged %d times", rep.Diverged())
	}
	if !rep.Exhausted() {
		t.Fatal("replay did not consume the whole stream")
	}
	if rep.TailPicks() != 0 {
		t.Fatalf("faithful replay made %d tail picks", rep.TailPicks())
	}
}

// TestSegmentReplayTolerant exercises the edited-stream paths: skipped
// segments when the recorded thread is not runnable, lowest-id fallback
// after exhaustion, and deterministic Intn reduction.
func TestSegmentReplayTolerant(t *testing.T) {
	segs := []Segment{{TID: 5, N: 2}, {TID: 1, N: 1}}
	rep := NewSegmentReplay(segs, []int64{9})

	// Thread 5 is never runnable: its segment is abandoned, thread 1's
	// segment replays, then fallback returns the lowest runnable id.
	if got := rep.Pick([]int{0, 1, 2}, 0); got != 1 {
		t.Fatalf("pick = %d, want 1 (skip unrunnable segment)", got)
	}
	if got := rep.Pick([]int{0, 2}, 1); got != 0 {
		t.Fatalf("pick = %d, want 0 (exhausted fallback)", got)
	}
	if rep.Diverged() != 1 {
		t.Fatalf("diverged = %d, want 1", rep.Diverged())
	}
	if rep.TailPicks() != 1 {
		t.Fatalf("tailPicks = %d, want 1", rep.TailPicks())
	}
	// Recorded draw 9 is out of range for n=4: reduced deterministically.
	if got := rep.Intn(4); got != 1 {
		t.Fatalf("Intn(4) = %d, want 1 (9 mod 4)", got)
	}
	// Exhausted draws return 0.
	if got := rep.Intn(4); got != 0 {
		t.Fatalf("tail Intn(4) = %d, want 0", got)
	}
}

func TestMergeSegments(t *testing.T) {
	in := []Segment{{1, 2}, {1, 3}, {0, 0}, {2, 1}, {2, 4}, {1, 1}}
	want := []Segment{{1, 5}, {2, 5}, {1, 1}}
	if got := MergeSegments(in); !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSegments = %+v, want %+v", got, want)
	}
	if got := Switches(want); got != 2 {
		t.Fatalf("Switches = %d, want 2", got)
	}
	if got := Switches(nil); got != 0 {
		t.Fatalf("Switches(nil) = %d, want 0", got)
	}
}
