package sched

// This file is the sched-level record-and-replay hook. A Recorder wraps
// any Scheduler and transcribes its decision stream — every Pick (as a
// run-length-encoded segment stream) and every Intn draw — while
// delegating the decisions themselves unchanged, so a recorded run is
// bit-identical to an unrecorded one under the same inner scheduler and
// seed. A SegmentReplay consumes a previously recorded stream and
// reproduces the exact same interleaving: because the interpreter is
// deterministic given its scheduler decisions, replaying the stream
// replays the whole run, failure and all.
//
// The decision stream deliberately records *chosen thread ids*, not RNG
// state: it is scheduler-agnostic (Random, PCT, round-robin and scripted
// schedulers all record the same way) and it is the representation that
// schedule minimization (internal/replay's ddmin) edits directly.

// Segment is one maximal run of consecutive scheduling decisions for the
// same thread: the scheduler picked thread TID for N consecutive executed
// instructions. A schedule's context switches are exactly the boundaries
// between adjacent segments with different TIDs.
type Segment struct {
	TID int32
	N   int64
}

// Switches counts the context switches in a segment stream: boundaries
// between adjacent segments whose thread ids differ.
func Switches(segs []Segment) int {
	n := 0
	for i := 1; i < len(segs); i++ {
		if segs[i].TID != segs[i-1].TID {
			n++
		}
	}
	return n
}

// MergeSegments normalizes a segment stream: adjacent segments with the
// same thread id coalesce and empty segments vanish. Replay semantics are
// unchanged; minimization uses it so switch counts are meaningful.
func MergeSegments(segs []Segment) []Segment {
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.N <= 0 {
			continue
		}
		if k := len(out); k > 0 && out[k-1].TID == s.TID {
			out[k-1].N += s.N
			continue
		}
		out = append(out, s)
	}
	return out
}

// Recorder wraps an inner scheduler and records its decision stream. It
// is purely observational: Pick and Intn return exactly what the inner
// scheduler returns, so wrapping never changes a run — only the
// interpreter's devirtualized *Random fast path is bypassed, which is
// decision-equivalent by construction (pinned by TestRecorderTransparent).
type Recorder struct {
	inner Scheduler
	segs  []Segment
	intns []int64
	picks int64
}

// NewRecorder returns a recorder around inner.
func NewRecorder(inner Scheduler) *Recorder {
	return &Recorder{inner: inner}
}

// Pick implements Scheduler, recording the chosen thread.
func (r *Recorder) Pick(runnable []int, step int64) int {
	t := r.inner.Pick(runnable, step)
	r.picks++
	if k := len(r.segs); k > 0 && r.segs[k-1].TID == int32(t) {
		r.segs[k-1].N++
	} else {
		r.segs = append(r.segs, Segment{TID: int32(t), N: 1})
	}
	return t
}

// Intn implements Scheduler, recording the drawn value.
func (r *Recorder) Intn(n int) int {
	v := r.inner.Intn(n)
	r.intns = append(r.intns, int64(v))
	return v
}

// Name implements Scheduler.
func (r *Recorder) Name() string { return "record(" + r.inner.Name() + ")" }

// Inner returns the wrapped scheduler.
func (r *Recorder) Inner() Scheduler { return r.inner }

// Segments returns the recorded pick stream. The slice aliases the
// recorder's buffer; callers that outlive the recorder should copy it.
func (r *Recorder) Segments() []Segment { return r.segs }

// Intns returns the recorded Intn draw values in draw order.
func (r *Recorder) Intns() []int64 { return r.intns }

// Picks returns the number of scheduling decisions recorded.
func (r *Recorder) Picks() int64 { return r.picks }

// SegmentReplay replays a recorded decision stream. While the stream
// holds, every Pick returns the recorded thread and every Intn the
// recorded draw — reproducing the recorded run bit-identically. The
// scheduler is also total: when a recorded thread is not runnable (which
// happens only on edited streams, e.g. ddmin probes) the remainder of
// that segment is skipped and the divergence counted; when the stream is
// exhausted it falls back to the lowest-id runnable thread and zero
// draws, both deterministic, so probe runs remain exactly repeatable.
type SegmentReplay struct {
	segs []Segment
	si   int   // current segment
	used int64 // picks consumed from the current segment

	intns []int64
	ii    int

	diverged  int64 // recorded thread not runnable: segment abandoned
	tailPicks int64 // picks after the segment stream ran out
	tailIntns int64 // draws after the recorded draws ran out
}

// NewSegmentReplay returns a replay scheduler over the given streams.
// The slices are read, never written.
func NewSegmentReplay(segs []Segment, intns []int64) *SegmentReplay {
	return &SegmentReplay{segs: segs, intns: intns}
}

// Pick implements Scheduler.
func (s *SegmentReplay) Pick(runnable []int, step int64) int {
	for s.si < len(s.segs) {
		seg := &s.segs[s.si]
		if s.used >= seg.N {
			s.si++
			s.used = 0
			continue
		}
		want := int(seg.TID)
		for _, t := range runnable {
			if t == want {
				s.used++
				if s.used >= seg.N {
					s.si++
					s.used = 0
				}
				return t
			}
		}
		// The recorded thread cannot run here: the stream was edited (a
		// minimization probe) and this segment no longer applies. Abandon
		// it deterministically rather than stalling the run.
		s.diverged++
		s.si++
		s.used = 0
	}
	s.tailPicks++
	return runnable[0]
}

// Intn implements Scheduler.
func (s *SegmentReplay) Intn(n int) int {
	if s.ii < len(s.intns) {
		v := s.intns[s.ii]
		s.ii++
		if v >= 0 && v < int64(n) {
			return int(v)
		}
		// Out-of-range draw for this call site: the streams desynced on an
		// edited schedule. Reduce deterministically.
		s.diverged++
		return int(((v % int64(n)) + int64(n)) % int64(n))
	}
	s.tailIntns++
	return 0
}

// Name implements Scheduler.
func (s *SegmentReplay) Name() string { return "segment-replay" }

// Diverged reports how many decisions could not be replayed as recorded
// (thread not runnable, or draw out of range). A faithful replay of an
// unedited recording has zero divergences; minimization probes routinely
// diverge.
func (s *SegmentReplay) Diverged() int64 { return s.diverged }

// TailPicks reports how many scheduling decisions were made after the
// recorded stream was exhausted (lowest-id fallback).
func (s *SegmentReplay) TailPicks() int64 { return s.tailPicks }

// Exhausted reports whether the whole recorded pick stream was consumed
// or abandoned.
func (s *SegmentReplay) Exhausted() bool { return s.si >= len(s.segs) }
