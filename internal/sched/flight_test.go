package sched

import (
	"reflect"
	"testing"
)

// TestFlightRecorderTransparent pins the flight recorder's observational
// contract: a wrapped scheduler returns exactly the decisions the
// unwrapped one would, for Pick and Intn, even while the ring wraps.
func TestFlightRecorderTransparent(t *testing.T) {
	plain := NewRandom(42)
	fr := NewFlightRecorder(NewRandom(42), 8) // tiny ring: wraps constantly

	runnable := [][]int{
		{0}, {0, 1}, {0, 1, 2}, {1, 2}, {0, 2, 5, 9}, {3}, {0, 1, 2, 3, 4},
	}
	var picks int64
	for step := int64(0); step < 10_000; step++ {
		r := runnable[int(step)%len(runnable)]
		if got, want := fr.Pick(r, step), plain.Pick(r, step); got != want {
			t.Fatalf("step %d: flight pick %d, plain pick %d", step, got, want)
		}
		picks++
		if step%97 == 0 {
			n := int(step%7) + 2
			if got, want := fr.Intn(n), plain.Intn(n); got != want {
				t.Fatalf("step %d: flight Intn %d, plain %d", step, got, want)
			}
		}
	}
	if fr.Picks() != picks {
		t.Fatalf("Picks() = %d, want %d", fr.Picks(), picks)
	}
	if !fr.Truncated() {
		t.Fatal("10k picks through an 8-segment ring did not truncate")
	}
	segs, dropped, _ := fr.Dropped()
	var retained int64
	for _, s := range fr.Segments() {
		retained += s.N
	}
	if dropped+retained != picks {
		t.Fatalf("dropped %d + retained %d picks != %d observed (%d segments evicted)",
			dropped, retained, picks, segs)
	}
}

// TestFlightRecorderMatchesRecorder checks that an un-wrapped (never
// truncated) flight recording is segment-for-segment identical to a full
// Recorder capture of the same run — the property that makes a failing
// run's flight tape a complete, bit-identical replayable artifact.
func TestFlightRecorderMatchesRecorder(t *testing.T) {
	full := NewRecorder(NewRandom(9))
	fr := NewFlightRecorder(NewRandom(9), 1<<16)

	runnable := [][]int{{0, 1, 2, 3}, {1, 3}, {0, 2}, {2, 3, 4}}
	for step := int64(0); step < 20_000; step++ {
		r := runnable[int(step)%len(runnable)]
		full.Pick(r, step)
		fr.Pick(r, step)
		if step%11 == 0 {
			full.Intn(6)
			fr.Intn(6)
		}
	}
	if fr.Truncated() {
		t.Fatal("ring truncated below its capacity")
	}
	if !reflect.DeepEqual(fr.Segments(), full.Segments()) {
		t.Fatalf("flight segments diverge from full recorder:\n flight %d segs\n full %d segs",
			len(fr.Segments()), len(full.Segments()))
	}
	if !reflect.DeepEqual(fr.Intns(), full.Intns()) {
		t.Fatal("flight Intn stream diverges from full recorder")
	}
}

// TestFlightRecorderRingOrder drives a deterministic pick pattern through
// a tiny ring and checks the retained segments are exactly the newest
// ones, oldest first.
func TestFlightRecorderRingOrder(t *testing.T) {
	fr := NewFlightRecorder(NewScripted([]int{1, 2, 3, 4, 5, 6, 7}, 1), 3)
	for step := int64(0); step < 7; step++ {
		// Only the scripted thread is runnable, so each pick is a new
		// single-pick segment.
		fr.Pick([]int{1, 2, 3, 4, 5, 6, 7}, step)
	}
	want := []Segment{{TID: 5, N: 1}, {TID: 6, N: 1}, {TID: 7, N: 1}}
	if got := fr.Segments(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring retained %+v, want %+v", got, want)
	}
	segs, picks, _ := fr.Dropped()
	if segs != 4 || picks != 4 {
		t.Fatalf("Dropped() = (%d segs, %d picks), want (4, 4)", segs, picks)
	}
}

// TestFlightRecorderLastSegmentExtends pins the RLE boundary case around
// eviction: a repeated pick extends the newest segment in place rather
// than evicting another slot.
func TestFlightRecorderLastSegmentExtends(t *testing.T) {
	fr := NewFlightRecorder(NewScripted([]int{1, 2, 3, 4, 4, 4}, 1), 3)
	for step := int64(0); step < 6; step++ {
		fr.Pick([]int{1, 2, 3, 4}, step)
	}
	want := []Segment{{TID: 2, N: 1}, {TID: 3, N: 1}, {TID: 4, N: 3}}
	if got := fr.Segments(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring retained %+v, want %+v", got, want)
	}
}
