package sched

import "math/rand"

// PCT is a randomized priority scheduler in the style of probabilistic
// concurrency testing (Burckhardt et al.): each thread gets a random
// priority when first seen, the runnable thread with the highest priority
// always runs, and at d-1 random step counts the running thread's priority
// is demoted below everything else. Small d values find rare interleavings
// (like the unserializable interleavings behind atomicity violations) with
// provable probability — a useful complement to the forced-sleep
// methodology when hunting for bugs the test author has not located yet.
type PCT struct {
	rng    *rand.Rand
	prio   map[int]int
	next   int
	change map[int64]bool
	floor  int
}

// NewPCT returns a PCT scheduler with depth d (the number of priority
// change points) spread over an expected run of maxSteps steps.
func NewPCT(seed int64, d int, maxSteps int64) *PCT {
	rng := rand.New(rand.NewSource(seed))
	change := map[int64]bool{}
	if maxSteps < 1 {
		maxSteps = 1
	}
	for i := 0; i < d-1; i++ {
		change[rng.Int63n(maxSteps)] = true
	}
	return &PCT{
		rng:    rng,
		prio:   map[int]int{},
		change: change,
	}
}

// Pick implements Scheduler.
func (p *PCT) Pick(runnable []int, step int64) int {
	best, bestPrio := runnable[0], -1<<30
	for _, t := range runnable {
		pr, ok := p.prio[t]
		if !ok {
			// Random initial priority, distinct per thread.
			pr = p.rng.Intn(1 << 16)
			p.prio[t] = pr
		}
		if pr > bestPrio {
			best, bestPrio = t, pr
		}
	}
	if p.change[step] {
		// Demote the chosen thread below everything seen so far.
		p.floor--
		p.prio[best] = p.floor
		// Re-pick under the new priorities.
		delete(p.change, step)
		return p.Pick(runnable, step)
	}
	return best
}

// Intn implements Scheduler.
func (p *PCT) Intn(n int) int { return p.rng.Intn(n) }

// Name implements Scheduler.
func (p *PCT) Name() string { return "pct" }
