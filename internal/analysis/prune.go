package analysis

import "conair/internal/mir"

// PruneVerdict says whether the recovery code at a site survives the
// optimization pass (paper §4.2) and, when it does not, why.
type PruneVerdict uint8

// Prune verdicts.
const (
	// KeepSite: recovery code stays.
	KeepSite PruneVerdict = iota
	// PruneNoLockInRegion: a deadlock site whose reexecution regions
	// acquire no lock — rolling back releases nothing, so other deadlocked
	// threads can never make progress (Figure 7a).
	PruneNoLockInRegion
	// PruneNoSharedRead: a non-deadlock site whose region contains no
	// shared read on the site's backward slice — reexecution is guaranteed
	// to reproduce the same failure (Figure 7c).
	PruneNoSharedRead
	// PruneNoRecovery: a wrong-output site without an oracle — there is no
	// condition to check, so no recovery code exists to keep.
	PruneNoRecovery
)

// String names the verdict for reports.
func (v PruneVerdict) String() string {
	switch v {
	case KeepSite:
		return "keep"
	case PruneNoLockInRegion:
		return "pruned(no-lock-in-region)"
	case PruneNoSharedRead:
		return "pruned(no-shared-read-on-slice)"
	case PruneNoRecovery:
		return "pruned(no-oracle)"
	}
	return "pruned(?)"
}

// Pruned reports whether the verdict removes recovery code.
func (v PruneVerdict) Pruned() bool { return v != KeepSite }

// PruneSite decides the verdict for one analyzed site:
//
//   - deadlock sites need a lock acquisition inside at least one
//     reexecution region (so the rollback releases a resource, Figure 7b);
//   - non-deadlock sites need at least one shared read on the backward
//     slice inside the region (so reexecution can observe a different
//     value, Figure 7d) — except segmentation-fault sites, whose failing
//     dereference is itself a read of shared state and which are therefore
//     never optimizable (§6.2);
//   - wrong-output sites without an oracle have no recovery code at all.
func PruneSite(site Site, region *Region, slice *Slice) PruneVerdict {
	if !site.Recoverable() {
		return PruneNoRecovery
	}
	switch site.Kind {
	case SiteDeadlock:
		if site.Op == mir.OpWait || site.Op == mir.OpChSend {
			// A timed-out wait or send re-reads its blocking condition on
			// reexecution — the signalled predicate, the channel's
			// occupancy — the way a segfault site re-reads its pointer,
			// so the no-lock-in-region rule does not apply: rolling back
			// helps even when nothing is released (the peer may have set
			// the predicate or drained the channel in the meantime).
			return KeepSite
		}
		if !region.HasLockAcquire {
			return PruneNoLockInRegion
		}
	case SiteSegfault:
		// The dereference re-reads the pointer target on reexecution;
		// ConAir considers these un-optimizable.
		return KeepSite
	default:
		if !slice.HasSharedRead() {
			return PruneNoSharedRead
		}
	}
	return KeepSite
}

// OrphanPoints returns the reexecution points that serve no surviving
// failure site, given the per-site point lists and verdicts; the
// transformation skips those checkpoints (§4.2's final step). Points are
// compared positionally: a point shared between a pruned and a kept site
// is retained.
func OrphanPoints(regions []Region, verdicts []PruneVerdict) map[mir.Pos]bool {
	kept := map[mir.Pos]bool{}
	all := map[mir.Pos]bool{}
	for i := range regions {
		for _, p := range regions[i].Points {
			all[p] = true
			if !verdicts[i].Pruned() {
				kept[p] = true
			}
		}
	}
	orphans := map[mir.Pos]bool{}
	for p := range all {
		if !kept[p] {
			orphans[p] = true
		}
	}
	return orphans
}
