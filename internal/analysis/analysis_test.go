package analysis

import (
	"testing"

	"conair/internal/mir"
)

// --- Failure-site identification (§3.1) ---

func TestIdentifySurvivalCensus(t *testing.T) {
	m := mir.MustParse(`
global g = 0
global mtx = 0
func main() {
entry:
  %x = loadg @g
  assert %x, "a1"
  oracle %x, "o1"
  output "v", %x
  %p = addrg @g
  %v = load %p
  store %p, 1
  %pm = addrg @mtx
  lock %pm
  unlock %pm
  ret
}`)
	sites := IdentifySurvival(m)
	var c Census
	for _, s := range sites {
		c.Add(s.Kind)
	}
	if c.Assert != 1 {
		t.Errorf("assert sites = %d, want 1", c.Assert)
	}
	if c.WrongOutput != 2 { // one oracle + one plain output
		t.Errorf("wrong-output sites = %d, want 2", c.WrongOutput)
	}
	if c.Segfault != 2 { // load + store
		t.Errorf("segfault sites = %d, want 2", c.Segfault)
	}
	if c.Deadlock != 1 {
		t.Errorf("deadlock sites = %d, want 1", c.Deadlock)
	}
	if c.Total() != 6 || c.Total() != len(sites) {
		t.Errorf("total = %d, len = %d", c.Total(), len(sites))
	}
	// IDs dense from 1 in position order.
	for i, s := range sites {
		if s.ID != i+1 {
			t.Errorf("site %d has ID %d", i, s.ID)
		}
		if i > 0 && !sites[i-1].Pos.Less(s.Pos) {
			t.Errorf("sites not position-ordered at %d", i)
		}
	}
}

func TestOracleRecoverability(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %x = const 1
  oracle %x, "o"
  output "v", %x
  ret
}`)
	sites := IdentifySurvival(m)
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	if !sites[0].HasOracle || !sites[0].Recoverable() {
		t.Error("oracle site should be recoverable")
	}
	if sites[1].HasOracle || sites[1].Recoverable() {
		t.Error("plain output site should not be recoverable")
	}
}

func TestIdentifyFix(t *testing.T) {
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %p = addrg @g
  %v = load %p
  assert %v, "a"
  ret
}`)
	pos, err := FindSite(m, "main", mir.OpLoad, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := IdentifyFix(m, pos)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != SiteSegfault || s.ID != 1 {
		t.Errorf("fix site = %+v", s)
	}

	if _, err := IdentifyFix(m, mir.Pos{Fn: 0, Block: 0, Index: 0}); err == nil {
		t.Error("addrg is not a failure site; expected error")
	}
	if _, err := IdentifyFix(m, mir.Pos{Fn: 9, Block: 0, Index: 0}); err == nil {
		t.Error("out-of-range function; expected error")
	}
	if _, err := FindSite(m, "main", mir.OpLoad, 3); err == nil {
		t.Error("no 4th load; expected error")
	}
	if _, err := FindSite(m, "nope", mir.OpLoad, 0); err == nil {
		t.Error("no such function; expected error")
	}
}

// --- Region identification (§3.2, Figure 3) ---

// Figure 3a: y=x+1; z=x+y is idempotent — the whole straight-line prefix
// is one region reaching function entry.
func TestFigure3aIdempotentRegion(t *testing.T) {
	m := mir.MustParse(`
global gx = 0
func main() {
entry:
  %x = loadg @gx
  %y = add %x, 1
  %z = add %x, %y
  assert %z, "z"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	if !r.OnlyEntryPoint {
		t.Errorf("expected region to reach entry only, points = %v", r.Points)
	}
	if len(r.Members) != 3 {
		t.Errorf("members = %v, want the 3 register instructions", r.Members)
	}
}

// Figure 3b's non-idempotent x=x+1 is expressed in MIR as a stack-slot
// update (registers are checkpoint-restored, memory locals are not): the
// region must stop right after the store.
func TestFigure3bLocalWriteEndsRegion(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %x0 = loads $x
  %x1 = add %x0, 1
  stores $x, %x1
  %z = add %x1, 1
  assert %z, "z"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	if len(r.Points) != 1 {
		t.Fatalf("points = %v", r.Points)
	}
	want := mir.Pos{Fn: 0, Block: 0, Index: 3} // right after stores
	if r.Points[0] != want {
		t.Errorf("point = %v, want %v", r.Points[0], want)
	}
	if r.OnlyEntryPoint {
		t.Error("region must not reach entry")
	}
}

func TestRegionStopsAtEachDestroyerKind(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"shared write", "storeg @g, 1"},
		{"pointer write", "store %p, 1"},
		{"io", `output "x", 1`},
		{"free", "free %p"},
		{"unlock", "unlock %p"},
		{"call", "call idle()"},
	}
	for _, c := range cases {
		src := `
global g = 0
func idle() {
entry:
  ret
}
func main() {
entry:
  %p = addrg @g
  ` + c.line + `
  %v = loadg @g
  assert %v, "v"
  ret
}`
		m := mir.MustParse(src)
		s := mustSite(t, m, "main", mir.OpAssert, 0)
		r := IdentifyRegion(m, s, mir.PolicyExtended)
		if r.OnlyEntryPoint {
			t.Errorf("%s: region should not reach entry", c.name)
			continue
		}
		if len(r.Points) != 1 || r.Points[0].Index != 2 {
			t.Errorf("%s: points = %v, want index 2 (after the destroyer)", c.name, r.Points)
		}
	}
}

func TestExtendedPolicyAdmitsAllocAndLock(t *testing.T) {
	src := `
global g = 0
func main() {
entry:
  %p = addrg @g
  lock %p
  %h = alloc 4
  %v = loadg @g
  assert %v, "v"
  unlock %p
  ret
}`
	m := mir.MustParse(src)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	if !r.OnlyEntryPoint {
		t.Errorf("extended region should reach entry, points = %v", r.Points)
	}
	if !r.HasLockAcquire {
		t.Error("lock acquisition should be recorded")
	}
	rb := IdentifyRegion(m, s, mir.PolicyBasic)
	if rb.OnlyEntryPoint {
		t.Error("basic region must stop at alloc/lock")
	}
}

func TestRegionMultiplePathsMultiplePoints(t *testing.T) {
	// Two paths converge on the assert; one path has a shared write, the
	// other is clean all the way to entry — one point after the write and
	// one at entry.
	m := mir.MustParse(`
global g = 0
global c = 0
func main() {
entry:
  %cv = loadg @c
  br %cv, dirty, clean
dirty:
  storeg @g, 1
  %a = loadg @g
  jmp check
clean:
  %a = loadg @g
  jmp check
check:
  assert %a, "a"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	if len(r.Points) != 2 {
		t.Fatalf("points = %v, want 2", r.Points)
	}
	entry := mir.Pos{Fn: 0, Block: 0, Index: 0}
	afterStore := mir.Pos{Fn: 0, Block: m.Functions[0].BlockIndex("dirty"), Index: 1}
	if r.Points[0] != entry || r.Points[1] != afterStore {
		t.Errorf("points = %v, want [%v %v]", r.Points, entry, afterStore)
	}
}

func TestRegionLoopRescansSiteBlock(t *testing.T) {
	// The site sits in a loop body containing a shared write after the
	// site: looping paths must yield a point after that write.
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %v = loadg @g
  jmp loop
loop:
  %a = loadg @g
  assert %a, "a"
  storeg @g, 0
  %c = loadg @g
  br %c, loop, out
out:
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	loop := m.Functions[0].BlockIndex("loop")
	foundAfterStore := false
	for _, p := range r.Points {
		if p.Block == loop && p.Index == 3 {
			foundAfterStore = true
		}
	}
	if !foundAfterStore {
		t.Errorf("points = %v, want one after the loop's storeg", r.Points)
	}
}

// --- Slicing (§4.2, Figure 8) ---

func TestFigure8Slicing(t *testing.T) {
	// global_z = 1; stack_x = *global_p; assert(stack_x): in MIR the
	// stack_x write is a register def, and the slice finds the two shared
	// reads (load of @global_p and the dereference) without alias
	// analysis.
	m := mir.MustParse(`
global global_z = 0
global global_p = 0
func main() {
entry:
  storeg @global_z, 1
  %r0 = loadg @global_p
  %r1 = load %r0
  assert %r1, "a"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if len(sl.SharedReads) != 2 {
		t.Fatalf("shared reads = %v, want 2 (loadg + load)", sl.SharedReads)
	}
	// The region stops after storeg, so the store is outside the slice.
	for _, p := range sl.OnSlice {
		if m.At(p).Op == mir.OpStoreG {
			t.Error("storeg must be outside the region/slice")
		}
	}
}

func TestSliceStopsAtStackSlotRead(t *testing.T) {
	// Figure 8's rule: a def that reads a non-register location ends the
	// chain. The loadg feeding the slot is NOT on the slice.
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %a = loads $x
  %b = add %a, 1
  assert %b, "b"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if sl.HasSharedRead() {
		t.Errorf("no shared read should be on the slice, got %v", sl.SharedReads)
	}
	// loads itself is on the slice (it defines %a) but tracking stops.
	found := false
	for _, p := range sl.OnSlice {
		if m.At(p).Op == mir.OpLoadS {
			found = true
		}
	}
	if !found {
		t.Error("the loads def should be on the slice")
	}
}

func TestSliceIgnoresUnrelatedSharedReads(t *testing.T) {
	// A shared read whose value does not feed the assert is not on the
	// data slice; with no in-region branches it must not be reported.
	m := mir.MustParse(`
global g = 0
global h = 0
func main() {
entry:
  %unrelated = loadg @h
  %a = loadg @g
  assert %a, "a"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if len(sl.SharedReads) != 1 {
		t.Fatalf("shared reads = %v, want only the @g load", sl.SharedReads)
	}
	if m.At(sl.SharedReads[0]).Global != m.GlobalIndex("g") {
		t.Error("wrong shared read on slice")
	}
}

func TestSliceControlDependence(t *testing.T) {
	// The branch condition feeds reaching the site: its shared read must
	// be on the slice even though the assert's value is a constant.
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %c = loadg @g
  br %c, yes, no
yes:
  %k = const 0
  assert %k, "k"
  ret
no:
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if len(sl.SharedReads) != 1 {
		t.Fatalf("control-dependent shared read missing: %v", sl.SharedReads)
	}
}

func TestSliceCriticalParams(t *testing.T) {
	// GetState(thd): the dereferenced pointer is the parameter — the
	// MozillaXP shape. The parameter must be a critical parameter.
	m := mir.MustParse(`
func getstate(%thd) {
entry:
  %v = load %thd
  ret %v
}
func main() {
entry:
  ret
}`)
	s := mustSite(t, m, "getstate", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	f := &m.Functions[s.Pos.Fn]
	crit := sl.CriticalParams(f)
	if len(crit) != 1 || crit[0] != 0 {
		t.Errorf("critical params = %v, want [0]", crit)
	}
}

// --- Pruning (§4.2, Figure 7) ---

// Figure 7a: a lone lock with nothing before it — unrecoverable.
func TestFigure7aDeadlockPruned(t *testing.T) {
	m := mir.MustParse(`
global L = 0
func main() {
entry:
  %p = addrg @L
  lock %p
  unlock %p
  ret
}`)
	s := mustSite(t, m, "main", mir.OpLock, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if v := PruneSite(s, &r, &sl); v != PruneNoLockInRegion {
		t.Errorf("verdict = %v, want no-lock-in-region", v)
	}
}

// Figure 7b: lock(&L0); lock(&L) — recoverable because rolling back
// releases L0.
func TestFigure7bDeadlockKept(t *testing.T) {
	m := mir.MustParse(`
global L0 = 0
global L = 0
func main() {
entry:
  %p0 = addrg @L0
  lock %p0
  %p = addrg @L
  lock %p
  unlock %p
  unlock %p0
  ret
}`)
	s := mustSite(t, m, "main", mir.OpLock, 1)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if v := PruneSite(s, &r, &sl); v != KeepSite {
		t.Errorf("verdict = %v, want keep", v)
	}
	if !r.HasLockAcquire {
		t.Error("region should contain the first lock")
	}
}

// Figure 7c: tmp=tmp+1; assert(tmp) with no shared read — unrecoverable.
func TestFigure7cAssertPruned(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %tmp = loads $t
  %tmp2 = add %tmp, 1
  assert %tmp2, "tmp"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if v := PruneSite(s, &r, &sl); v != PruneNoSharedRead {
		t.Errorf("verdict = %v, want no-shared-read", v)
	}
}

// Figure 7d: tmp=global_x; assert(tmp) — recoverable.
func TestFigure7dAssertKept(t *testing.T) {
	m := mir.MustParse(`
global global_x = 0
func main() {
entry:
  %tmp = loadg @global_x
  assert %tmp, "tmp"
  ret
}`)
	s := mustSite(t, m, "main", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if v := PruneSite(s, &r, &sl); v != KeepSite {
		t.Errorf("verdict = %v, want keep", v)
	}
}

func TestSegfaultSitesNeverPruned(t *testing.T) {
	// Even with an empty slice shared-read set, dereference sites stay
	// (§6.2: the dereference itself re-reads shared state).
	m := mir.MustParse(`
func main() {
entry:
  %p = loads $p
  %v = load %p
  ret
}`)
	s := mustSite(t, m, "main", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if v := PruneSite(s, &r, &sl); v != KeepSite {
		t.Errorf("verdict = %v, want keep for segfault site", v)
	}
}

func TestOrphanPoints(t *testing.T) {
	shared := mir.Pos{Fn: 0, Block: 0, Index: 0}
	only := mir.Pos{Fn: 0, Block: 1, Index: 2}
	regions := []Region{
		{Points: []mir.Pos{shared, only}},
		{Points: []mir.Pos{shared}},
	}
	verdicts := []PruneVerdict{PruneNoSharedRead, KeepSite}
	orphans := OrphanPoints(regions, verdicts)
	if !orphans[only] {
		t.Error("point serving only the pruned site should be orphaned")
	}
	if orphans[shared] {
		t.Error("point shared with a kept site must survive")
	}
}

// --- Inter-procedural recovery (§4.3) ---

const mozillaShape = `
global mThd = 0
func getstate(%thd) {
entry:
  %v = load %thd
  ret %v
}
func get() {
entry:
  storeg @mThd, 0
  %p = loadg @mThd
  %tmp = call getstate(%p)
  ret
}
func main() {
entry:
  call get()
  ret
}
`

func TestInterprocSelectedForMozillaShape(t *testing.T) {
	m := mir.MustParse(mozillaShape)
	s := mustSite(t, m, "getstate", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	if !r.OnlyEntryPoint {
		t.Fatalf("condition 1 should hold, points = %v", r.Points)
	}
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if !ip.Selected {
		t.Fatalf("interproc should be selected: %+v", ip)
	}
	// The caller-side point must be after get's storeg, right before the
	// loadg that feeds the critical parameter.
	gi := m.FuncIndex("get")
	want := mir.Pos{Fn: gi, Block: 0, Index: 1}
	if len(ip.Points) != 1 || ip.Points[0] != want {
		t.Errorf("caller points = %v, want [%v]", ip.Points, want)
	}
}

func TestInterprocRejectedWithoutCriticalParam(t *testing.T) {
	// The callee's failure does not depend on any parameter: no point in
	// inter-procedural recovery for a non-deadlock site.
	m := mir.MustParse(`
global g = 0
func check(%unused) {
entry:
  %v = loads $t
  assert %v, "v"
  ret
}
func main() {
entry:
  call check(1)
  ret
}`)
	s := mustSite(t, m, "check", mir.OpAssert, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if ip.Selected {
		t.Errorf("interproc selected without critical parameter: %+v", ip)
	}
}

func TestInterprocRejectedWhenRegionDoesNotReachEntry(t *testing.T) {
	m := mir.MustParse(`
global g = 0
func check(%p) {
entry:
  storeg @g, 1
  %v = load %p
  ret %v
}
func main() {
entry:
  %x = call check(20000)
  ret
}`)
	s := mustSite(t, m, "check", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if ip.Selected {
		t.Errorf("interproc selected despite destroying op before site: %+v", ip)
	}
}

func TestInterprocRejectedWhenEveryPathRecoverable(t *testing.T) {
	// The pointer is loaded from a global inside the region on the only
	// path: reexecution can already observe a new value, so condition 3
	// fails.
	m := mir.MustParse(`
global gp = 0
func deref(%extra) {
entry:
  %p = loadg @gp
  %q = add %p, %extra
  %v = load %q
  ret %v
}
func main() {
entry:
  %x = call deref(0)
  ret
}`)
	s := mustSite(t, m, "deref", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if ip.Selected {
		t.Errorf("interproc selected although every path has a shared read: %+v", ip)
	}
}

func TestInterprocDepthLimitGivesUp(t *testing.T) {
	// A chain of clean wrappers deeper than the limit: ConAir gives up
	// and keeps the intra-procedural entry point.
	m := mir.MustParse(`
func leaf(%p) {
entry:
  %v = load %p
  ret %v
}
func w1(%p) {
entry:
  %v = call leaf(%p)
  ret %v
}
func w2(%p) {
entry:
  %v = call w1(%p)
  ret %v
}
func w3(%p) {
entry:
  %v = call w2(%p)
  ret %v
}
func main() {
entry:
  %x = call w3(20000)
  ret
}`)
	s := mustSite(t, m, "leaf", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if ip.Selected || !ip.GaveUp {
		t.Errorf("expected give-up at depth limit: %+v", ip)
	}
	// With a deeper limit, selection succeeds and lands in main.
	ip = SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 5)
	if !ip.Selected {
		t.Fatalf("expected selection with deeper limit: %+v", ip)
	}
	if len(ip.Points) != 1 || ip.Points[0].Fn != m.FuncIndex("main") {
		t.Errorf("points = %v, want one in main", ip.Points)
	}
}

func TestInterprocStopsAtSpawn(t *testing.T) {
	// The failing function is a thread entry: rollback cannot cross the
	// spawn, so no caller-side points exist and selection fails.
	m := mir.MustParse(`
func worker(%p) {
entry:
  %v = load %p
  ret %v
}
func main() {
entry:
  %t = spawn worker(20000)
  join %t
  ret
}`)
	s := mustSite(t, m, "worker", mir.OpLoad, 0)
	r := IdentifyRegion(m, s, mir.PolicyExtended)
	sl := ComputeSlice(m, &r, nil)
	ip := SelectInterproc(m, s, &r, &sl, mir.PolicyExtended, 3)
	if ip.Selected {
		t.Errorf("interproc must not cross spawn: %+v", ip)
	}
}

// --- Full analysis orchestration ---

func TestAnalyzeSurvivalEndToEnd(t *testing.T) {
	m := mir.MustParse(mozillaShape)
	res, err := Analyze(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Census.Segfault != 1 || res.Census.WrongOutput != 0 {
		t.Errorf("census = %+v", res.Census)
	}
	if res.InterprocSites != 1 {
		t.Errorf("interproc sites = %d, want 1", res.InterprocSites)
	}
	if res.StaticReexecPoints() == 0 {
		t.Error("no checkpoints planted")
	}
	// The entry point of getstate must have been replaced by the caller
	// point inside get.
	entry := mir.Pos{Fn: m.FuncIndex("getstate"), Block: 0, Index: 0}
	if res.CheckpointAt(entry) != nil {
		t.Error("REintra should have been removed for the interproc site")
	}
	gi := m.FuncIndex("get")
	if res.CheckpointAt(mir.Pos{Fn: gi, Block: 0, Index: 1}) == nil {
		t.Error("caller-side checkpoint missing")
	}
}

func TestAnalyzeFixMode(t *testing.T) {
	m := mir.MustParse(mozillaShape)
	pos, err := FindSite(m, "getstate", mir.OpLoad, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Mode = Fix
	opts.FixSite = pos
	res, err := Analyze(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 || res.Sites[0].Site.Kind != SiteSegfault {
		t.Fatalf("fix analysis sites = %+v", res.Sites)
	}
	if res.Census.Total() != 1 {
		t.Errorf("census total = %d, want 1", res.Census.Total())
	}
}

func TestAnalyzeOptimizeToggle(t *testing.T) {
	// A module with a prunable assert: optimization must remove its
	// checkpoint; without optimization the checkpoint stays.
	src := `
func main() {
entry:
  %tmp = loads $t
  %tmp2 = add %tmp, 1
  assert %tmp2, "tmp"
  ret
}`
	m := mir.MustParse(src)
	on := DefaultOptions()
	resOn, err := Analyze(m, on)
	if err != nil {
		t.Fatal(err)
	}
	off := DefaultOptions()
	off.Optimize = false
	resOff, err := Analyze(m, off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.StaticReexecPoints() != 0 {
		t.Errorf("optimized points = %d, want 0", resOn.StaticReexecPoints())
	}
	if resOff.StaticReexecPoints() != 1 {
		t.Errorf("unoptimized points = %d, want 1", resOff.StaticReexecPoints())
	}
	if resOn.PrunedSites != 1 || resOff.PrunedSites != 0 {
		t.Errorf("pruned: on=%d off=%d", resOn.PrunedSites, resOff.PrunedSites)
	}
}

func TestCheckpointSharing(t *testing.T) {
	// Two asserts back-to-back share the entry reexecution point: exactly
	// one checkpoint is planted (§3.3).
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %a = loadg @g
  assert %a, "a1"
  assert %a, "a2"
  ret
}`)
	res, err := Analyze(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticReexecPoints() != 1 {
		t.Fatalf("checkpoints = %d, want 1 shared", res.StaticReexecPoints())
	}
	cp := res.Checkpoints[0]
	if len(cp.SiteIDs) != 2 || !cp.ServesNonDeadlock || cp.ServesDeadlock {
		t.Errorf("checkpoint = %+v", cp)
	}
}

func mustSite(t *testing.T, m *mir.Module, fn string, op mir.Op, nth int) Site {
	t.Helper()
	pos, err := FindSite(m, fn, op, nth)
	if err != nil {
		t.Fatal(err)
	}
	s, err := IdentifyFix(m, pos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
