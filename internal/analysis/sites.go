// Package analysis implements ConAir's static analyses: failure-site
// identification (paper §3.1), idempotent reexecution-region and
// reexecution-point identification (§3.2), the simplified backward slicing
// (§4.2, Figure 8), the pruning of statically-unrecoverable failure sites
// (§4.2), and inter-procedural recovery selection (§4.3).
package analysis

import (
	"fmt"
	"sort"

	"conair/internal/mir"
)

// SiteKind classifies failure sites by the failure symptom they guard
// (paper Figure 5 a–d).
type SiteKind uint8

// Failure-site kinds.
const (
	SiteAssert SiteKind = iota
	SiteWrongOutput
	SiteSegfault
	SiteDeadlock
)

var siteKindNames = [...]string{
	SiteAssert:      "assertion-violation",
	SiteWrongOutput: "wrong-output",
	SiteSegfault:    "segmentation-fault",
	SiteDeadlock:    "deadlock",
}

// String names the kind as used in Table 4.
func (k SiteKind) String() string {
	if int(k) < len(siteKindNames) {
		return siteKindNames[k]
	}
	return fmt.Sprintf("sitekind(%d)", uint8(k))
}

// IsDeadlock reports whether the site uses the deadlock recovery rule.
func (k SiteKind) IsDeadlock() bool { return k == SiteDeadlock }

// Site is one (potential) failure site.
type Site struct {
	// ID is assigned densely from 1 in identification order; 0 is never a
	// valid site id (the interpreter uses 0 for "untagged").
	ID   int
	Kind SiteKind
	Pos  mir.Pos
	// Op is the opcode of the instruction at Pos. Sites of one kind can
	// come from different instructions (a deadlock site is a lock, a wait
	// or a chsend; a segfault site is a load, a store or a cas), and both
	// the pruning rules and the hardening rewrite dispatch on it.
	Op mir.Op
	// HasOracle is set on wrong-output sites that carry a developer
	// output-correctness condition (an oracle assert). Only those can be
	// recovered (§6.5); plain output sites are counted in the census and
	// get reexecution points, modeling the paper's worst-case overhead
	// measurement, but no recovery branch can be planted.
	HasOracle bool
}

// Recoverable reports whether recovery code can be planted at the site at
// all (before any pruning): wrong-output sites need an oracle.
func (s *Site) Recoverable() bool {
	return s.Kind != SiteWrongOutput || s.HasOracle
}

// Census counts sites by kind — one row of Table 4.
type Census struct {
	Assert, WrongOutput, Segfault, Deadlock int
}

// Total sums the census.
func (c Census) Total() int {
	return c.Assert + c.WrongOutput + c.Segfault + c.Deadlock
}

// Add counts a site.
func (c *Census) Add(k SiteKind) {
	switch k {
	case SiteAssert:
		c.Assert++
	case SiteWrongOutput:
		c.WrongOutput++
	case SiteSegfault:
		c.Segfault++
	case SiteDeadlock:
		c.Deadlock++
	}
}

// IdentifySurvival scans the module for every potential failure site, the
// way survival mode does (§3.1.1):
//
//   - every plain assert is an assertion-violation site;
//   - every oracle assert is a wrong-output site with an oracle, and every
//     output instruction is a wrong-output site without one;
//   - every load or store through a pointer is a potential
//     segmentation-fault site (the dereference of a heap/global pointer);
//   - every lock acquisition is a potential deadlock site (to be converted
//     to a timed lock).
//
// Sites are returned in deterministic position order.
func IdentifySurvival(m *mir.Module) []Site {
	var sites []Site
	for fi := range m.Functions {
		f := &m.Functions[fi]
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				pos := mir.Pos{Fn: fi, Block: bi, Index: ii}
				switch in.Op {
				case mir.OpAssert:
					if in.AssertKind == mir.AssertOracle {
						sites = append(sites, Site{Kind: SiteWrongOutput, Pos: pos, Op: in.Op, HasOracle: true})
					} else {
						sites = append(sites, Site{Kind: SiteAssert, Pos: pos, Op: in.Op})
					}
				case mir.OpOutput:
					sites = append(sites, Site{Kind: SiteWrongOutput, Pos: pos, Op: in.Op})
				case mir.OpLoad, mir.OpStore:
					sites = append(sites, Site{Kind: SiteSegfault, Pos: pos, Op: in.Op})
				case mir.OpLock:
					sites = append(sites, Site{Kind: SiteDeadlock, Pos: pos, Op: in.Op})
				case mir.OpWait, mir.OpChSend:
					// A wait can miss its signal forever (lost signal/missed
					// broadcast) and a send can block forever on a full
					// channel — hang symptoms recovered by the timed-form
					// rewrite, exactly like lock → timedlock.
					sites = append(sites, Site{Kind: SiteDeadlock, Pos: pos, Op: in.Op})
				case mir.OpCAS:
					// A cas dereferences its address operand: a potential
					// segmentation-fault site like any load/store.
					sites = append(sites, Site{Kind: SiteSegfault, Pos: pos, Op: in.Op})
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos.Less(sites[j].Pos) })
	for i := range sites {
		sites[i].ID = i + 1
	}
	return sites
}

// IdentifyFix returns the single failure site at the given position, the
// way fix mode does (§3.1.2): the user names the failing statement — a
// violated assert, a blocking lock, a faulting dereference, or an output
// producing wrong results — and ConAir classifies it.
func IdentifyFix(m *mir.Module, pos mir.Pos) (Site, error) {
	if pos.Fn < 0 || pos.Fn >= len(m.Functions) {
		return Site{}, fmt.Errorf("fix mode: function index %d out of range", pos.Fn)
	}
	f := &m.Functions[pos.Fn]
	if pos.Block < 0 || pos.Block >= len(f.Blocks) {
		return Site{}, fmt.Errorf("fix mode: block index %d out of range in %s", pos.Block, f.Name)
	}
	blk := &f.Blocks[pos.Block]
	if pos.Index < 0 || pos.Index >= len(blk.Instrs) {
		return Site{}, fmt.Errorf("fix mode: instruction index %d out of range in %s/%s", pos.Index, f.Name, blk.Name)
	}
	in := &blk.Instrs[pos.Index]
	s := Site{ID: 1, Pos: pos, Op: in.Op}
	switch in.Op {
	case mir.OpAssert:
		if in.AssertKind == mir.AssertOracle {
			s.Kind, s.HasOracle = SiteWrongOutput, true
		} else {
			s.Kind = SiteAssert
		}
	case mir.OpOutput:
		s.Kind = SiteWrongOutput
	case mir.OpLoad, mir.OpStore, mir.OpCAS:
		s.Kind = SiteSegfault
	case mir.OpLock, mir.OpWait, mir.OpChSend:
		s.Kind = SiteDeadlock
	default:
		return Site{}, fmt.Errorf("fix mode: instruction %s at %s is not a failure site", in.Op, pos)
	}
	return s, nil
}

// FindSite locates a failure-site position by a human-friendly handle:
// function name plus the n-th instruction of a given opcode (0-based).
// Fix-mode users of the CLI and the bug benchmarks name sites this way.
func FindSite(m *mir.Module, funcName string, op mir.Op, nth int) (mir.Pos, error) {
	fi := m.FuncIndex(funcName)
	if fi < 0 {
		return mir.Pos{}, fmt.Errorf("no function %q", funcName)
	}
	f := &m.Functions[fi]
	seen := 0
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			if f.Blocks[bi].Instrs[ii].Op == op {
				if seen == nth {
					return mir.Pos{Fn: fi, Block: bi, Index: ii}, nil
				}
				seen++
			}
		}
	}
	return mir.Pos{}, fmt.Errorf("%s: no %s instruction #%d (found %d)", funcName, op, nth, seen)
}
