package analysis

import "conair/internal/mir"

// Provably-safe failure-site pruning — the paper's §3.4 extension: "Some
// potential failure sites could be pruned, if we can statically prove that
// failures can never occur there. For example, analysis could know that
// NULL-pointer dereference may never occur at some places."
//
// The prover is a conservative intra-block reaching-definition walk: a
// dereference is provably safe when its address register's most recent
// definition chain bottoms out in
//
//   - the address of a global (addrg), with zero offset (globals are
//     single cells), or
//   - a fresh allocation (alloc) with a constant size, with a constant
//     non-negative offset below that size, provided the block is not
//     freed in between (no free instruction appears in the chain's
//     scope).
//
// Anything else — values loaded from memory, parameters, cross-block
// definitions — stays a potential segmentation-fault site.

// ProvablySafeDeref reports whether the Load/Store at pos provably cannot
// fault.
func ProvablySafeDeref(m *mir.Module, pos mir.Pos) bool {
	f := &m.Functions[pos.Fn]
	blk := &f.Blocks[pos.Block]
	site := &blk.Instrs[pos.Index]
	if site.Op != mir.OpLoad && site.Op != mir.OpStore {
		return false
	}
	if site.A.Kind != mir.OperandReg {
		return false // constant addresses are never provably mapped
	}
	// A free anywhere earlier in the block could invalidate an alloc-based
	// proof; globals are unaffected. Track whether one was seen between
	// the definition and the use during the walk.
	return safeAddr(blk, site.A.Reg, pos.Index-1, 0)
}

// safeAddr walks backward from index from for the most recent definition
// of register reg, accumulating a constant offset.
func safeAddr(blk *mir.Block, reg int, from int, offset mir.Word) bool {
	if offset < 0 {
		return false
	}
	for i := from; i >= 0; i-- {
		in := &blk.Instrs[i]
		if !in.HasDst() || in.Dst != reg {
			// A free between definition and use defeats alloc proofs;
			// handled when the defining alloc is found (see below) by
			// rejecting any free encountered on the way.
			if in.Op == mir.OpFree {
				return false
			}
			continue
		}
		switch in.Op {
		case mir.OpAddrG:
			return offset == 0
		case mir.OpAlloc:
			return in.A.Kind == mir.OperandImm && offset < max(in.A.Imm, 1)
		case mir.OpBin:
			if in.Bin != mir.BinAdd {
				return false
			}
			// addr = base + imm (either operand order).
			switch {
			case in.A.Kind == mir.OperandReg && in.B.Kind == mir.OperandImm:
				return safeAddr(blk, in.A.Reg, i-1, offset+in.B.Imm)
			case in.A.Kind == mir.OperandImm && in.B.Kind == mir.OperandReg:
				return safeAddr(blk, in.B.Reg, i-1, offset+in.A.Imm)
			}
			return false
		default:
			return false
		}
	}
	return false // defined in another block (or a parameter): unknown
}
