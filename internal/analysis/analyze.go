package analysis

import (
	"fmt"
	"sort"
	"time"

	"conair/internal/mir"
)

// Mode selects how failure sites are identified (paper §3.1).
type Mode uint8

// Modes.
const (
	// Survival hardens every statically identified potential failure site.
	Survival Mode = iota
	// Fix hardens exactly one developer-named failure site.
	Fix
)

// String names the mode.
func (m Mode) String() string {
	if m == Fix {
		return "fix"
	}
	return "survival"
}

// Options configures an analysis run.
type Options struct {
	Mode Mode
	// FixSite is the failing statement's position (Fix mode only).
	FixSite mir.Pos
	// Policy selects the basic (§3.2) or extended (§4.1) region rules.
	// The default is PolicyExtended, the paper's evaluated configuration.
	Policy mir.RegionPolicy
	// Optimize enables the §4.2 pruning of unrecoverable sites
	// (default on; Table 6 measures its effect by toggling it).
	Optimize bool
	// Interproc enables §4.3 inter-procedural recovery (default on; the
	// paper notes it dominates analysis time and can be disabled).
	Interproc bool
	// InterprocDepth bounds caller levels (default 3).
	InterprocDepth int
	// PruneSafeSites skips segmentation-fault sites whose dereference is
	// statically proven valid (the §3.4 extension); they then carry no
	// guard and no reexecution point. Off by default, matching the
	// evaluated prototype.
	PruneSafeSites bool
}

// DefaultOptions returns the paper's evaluated configuration.
func DefaultOptions() Options {
	return Options{
		Mode:           Survival,
		Policy:         mir.PolicyExtended,
		Optimize:       true,
		Interproc:      true,
		InterprocDepth: DefaultInterprocDepth,
	}
}

// SiteAnalysis bundles everything the analyses concluded about one site.
type SiteAnalysis struct {
	Site      Site
	Region    Region
	Slice     Slice
	Verdict   PruneVerdict
	Interproc InterprocResult
	// Points are the site's final reexecution points after the
	// inter-procedural adjustment; they may live in caller functions.
	Points []mir.Pos
}

// Recovers reports whether recovery code is planted for this site.
func (sa *SiteAnalysis) Recovers() bool {
	return sa.Site.Recoverable() && !sa.Verdict.Pruned()
}

// Checkpoint describes one planted reexecution point.
type Checkpoint struct {
	// ID is assigned densely from 1 in position order.
	ID  int
	Pos mir.Pos
	// ServesDeadlock / ServesNonDeadlock classify the sites sharing this
	// point (Table 6 reports optimization effect per class).
	ServesDeadlock    bool
	ServesNonDeadlock bool
	SiteIDs           []int
}

// Result is a complete analysis of one module.
type Result struct {
	Mode   Mode
	Sites  []SiteAnalysis
	Census Census
	// Checkpoints is the deduplicated final set of reexecution points
	// (multiple failure sites sharing a point get a single checkpoint,
	// §3.3).
	Checkpoints []Checkpoint
	// InterprocSites counts sites selected for inter-procedural recovery.
	InterprocSites int
	// PrunedSites counts sites whose recovery was removed by §4.2.
	PrunedSites int
	// SafePrunedSites counts dereferences dropped from the census by the
	// provably-safe prover (Options.PruneSafeSites).
	SafePrunedSites int
	// Duration is the wall-clock analysis time (§6.4).
	Duration time.Duration
}

// CheckpointAt returns the checkpoint planted at pos, or nil.
func (r *Result) CheckpointAt(pos mir.Pos) *Checkpoint {
	for i := range r.Checkpoints {
		if r.Checkpoints[i].Pos == pos {
			return &r.Checkpoints[i]
		}
	}
	return nil
}

// StaticReexecPoints counts planted checkpoints (Table 5 "Static").
func (r *Result) StaticReexecPoints() int { return len(r.Checkpoints) }

// Analyze runs the full ConAir static analysis over m.
func Analyze(m *mir.Module, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{Mode: opts.Mode}
	if opts.InterprocDepth <= 0 {
		opts.InterprocDepth = DefaultInterprocDepth
	}

	var sites []Site
	switch opts.Mode {
	case Survival:
		sites = IdentifySurvival(m)
	case Fix:
		s, err := IdentifyFix(m, opts.FixSite)
		if err != nil {
			return nil, err
		}
		sites = []Site{s}
	default:
		return nil, fmt.Errorf("analysis: unknown mode %d", opts.Mode)
	}

	res.Sites = make([]SiteAnalysis, 0, len(sites))
	for _, s := range sites {
		if opts.PruneSafeSites && s.Kind == SiteSegfault && ProvablySafeDeref(m, s.Pos) {
			res.SafePrunedSites++
			continue
		}
		res.Census.Add(s.Kind)
		sa := SiteAnalysis{Site: s}

		// §3.2: intra-procedural region and reexecution points.
		sa.Region = IdentifyRegion(m, s, opts.Policy)
		// Figure 8 slicing (used by §4.2 and §4.3).
		sa.Slice = ComputeSlice(m, &sa.Region, nil)

		sa.Points = sa.Region.Points

		// §4.3: inter-procedural recovery, considered before the
		// optimization pass ("ConAir first conducts intra-procedural
		// analysis... then inter-procedural... finally optimization,
		// applied only to intra-procedural sites").
		if opts.Interproc && s.Recoverable() {
			sa.Interproc = SelectInterproc(m, s, &sa.Region, &sa.Slice,
				opts.Policy, opts.InterprocDepth)
			if sa.Interproc.Selected {
				// Replace REintra (the entry point of the site's own
				// function) with the caller-side points.
				entry := mir.Pos{Fn: s.Pos.Fn, Block: 0, Index: 0}
				var pts []mir.Pos
				for _, p := range sa.Points {
					if p != entry {
						pts = append(pts, p)
					}
				}
				pts = append(pts, sa.Interproc.Points...)
				sa.Points = dedupPositions(pts)
				res.InterprocSites++
			}
		}

		// §4.2: pruning, only for sites recovering intra-procedurally.
		sa.Verdict = KeepSite
		if !s.Recoverable() {
			sa.Verdict = PruneNoRecovery
		} else if opts.Optimize && !sa.Interproc.Selected {
			sa.Verdict = PruneSite(s, &sa.Region, &sa.Slice)
			if sa.Verdict.Pruned() {
				res.PrunedSites++
			}
		}

		res.Sites = append(res.Sites, sa)
	}

	res.Checkpoints = collectCheckpoints(res.Sites)
	res.Duration = time.Since(start)
	return res, nil
}

// collectCheckpoints dedupes the final reexecution points across sites.
// Points that serve only §4.2-pruned sites are dropped (the optimization's
// final step); points serving oracle-less wrong-output sites are kept so
// survival mode still measures the paper's worst-case overhead.
func collectCheckpoints(sites []SiteAnalysis) []Checkpoint {
	type agg struct {
		deadlock, nondeadlock bool
		ids                   []int
	}
	byPos := map[mir.Pos]*agg{}
	for i := range sites {
		sa := &sites[i]
		switch sa.Verdict {
		case PruneNoLockInRegion, PruneNoSharedRead:
			// Recovery removed; its points plant no checkpoints (unless
			// shared with a surviving site, which the aggregation below
			// handles naturally by simply not adding them here).
			continue
		}
		for _, p := range sa.Points {
			a := byPos[p]
			if a == nil {
				a = &agg{}
				byPos[p] = a
			}
			if sa.Site.Kind == SiteDeadlock {
				a.deadlock = true
			} else {
				a.nondeadlock = true
			}
			a.ids = append(a.ids, sa.Site.ID)
		}
	}
	positions := make([]mir.Pos, 0, len(byPos))
	for p := range byPos {
		positions = append(positions, p)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i].Less(positions[j]) })
	out := make([]Checkpoint, len(positions))
	for i, p := range positions {
		a := byPos[p]
		sort.Ints(a.ids)
		out[i] = Checkpoint{
			ID: i + 1, Pos: p,
			ServesDeadlock: a.deadlock, ServesNonDeadlock: a.nondeadlock,
			SiteIDs: a.ids,
		}
	}
	return out
}
