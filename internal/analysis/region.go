package analysis

import (
	"sort"

	"conair/internal/mir"
)

// Region is the result of the reexecution-region identification for one
// failure site (paper §3.2.2): the set of reexecution points — positions
// where a checkpoint must be planted — plus the facts the pruning and
// inter-procedural analyses need about the region's contents.
type Region struct {
	Site Site
	// Points are checkpoint insertion positions within the site's function:
	// a checkpoint goes immediately BEFORE the instruction at each point.
	// Function entry is point (fn, 0, 0).
	Points []mir.Pos
	// Members are the instruction positions lying on some
	// idempotency-destroying-free backward path from the site (the site
	// itself excluded).
	Members []mir.Pos
	// HasLockAcquire reports a lock acquisition among Members — the
	// deadlock recoverability requirement (§4.2).
	HasLockAcquire bool
	// OnlyEntryPoint reports that the backward walk produced exactly one
	// reexecution point, the function entry: no path from entry to the
	// site crosses an idempotency-destroying instruction. This is
	// condition (1) for inter-procedural recovery (§4.3).
	OnlyEntryPoint bool
}

// memberSet returns Members as a set for O(1) lookups.
func (r *Region) memberSet() map[mir.Pos]bool {
	s := make(map[mir.Pos]bool, len(r.Members))
	for _, p := range r.Members {
		s[p] = true
	}
	return s
}

// IdentifyRegion performs the backward depth-first search from the failure
// site at sitePos, stopping each path at the first idempotency-destroying
// instruction (under the given region policy) or at function entry:
//
//   - hitting a destroying instruction s yields a reexecution point right
//     after s;
//   - hitting the entry of the function yields the entry point;
//   - blocks already scanned are not rescanned (the paper's work-list
//     visited rule), so the walk is linear in function size.
//
// The walk is at instruction granularity: the site's own block is scanned
// upward from just above the site, and — if reached again around a loop —
// rescanned from its end like any predecessor block.
func IdentifyRegion(m *mir.Module, site Site, policy mir.RegionPolicy) Region {
	f := &m.Functions[site.Pos.Fn]
	cfg := mir.BuildCFG(f)
	r := Region{Site: site}

	pointSet := map[mir.Pos]bool{}
	memberSet := map[mir.Pos]bool{}
	// visited marks blocks whose full scan (from their last instruction)
	// has been performed or queued.
	visited := make([]bool, len(f.Blocks))
	// worklist of blocks to scan from the end.
	var work []int

	entryPoint := mir.Pos{Fn: site.Pos.Fn, Block: 0, Index: 0}

	// scan walks block bi backward from index from (inclusive) and either
	// stops at a destroying instruction (adding a point after it) or falls
	// off the block start (queueing predecessors, or adding the entry
	// point for the entry block).
	scan := func(bi, from int) {
		blk := &f.Blocks[bi]
		for idx := from; idx >= 0; idx-- {
			in := &blk.Instrs[idx]
			if mir.Destroys(in, policy) {
				pointSet[mir.Pos{Fn: site.Pos.Fn, Block: bi, Index: idx + 1}] = true
				return
			}
			p := mir.Pos{Fn: site.Pos.Fn, Block: bi, Index: idx}
			if p != site.Pos {
				memberSet[p] = true
				if mir.IsLockAcquire(in) {
					r.HasLockAcquire = true
				}
			}
		}
		if bi == 0 {
			// Reached the entrance of the function containing the site.
			pointSet[entryPoint] = true
			return
		}
		preds := cfg.Preds[bi]
		if len(preds) == 0 {
			// Unreachable block: treat its start as a boundary point so a
			// checkpoint still dominates the site in degenerate modules.
			pointSet[mir.Pos{Fn: site.Pos.Fn, Block: bi, Index: 0}] = true
			return
		}
		for _, pb := range preds {
			if !visited[pb] {
				visited[pb] = true
				work = append(work, pb)
			}
		}
	}

	// First leg: from just above the site within its own block. The
	// site's block is NOT marked visited by this partial scan — a loop
	// path may reenter it from the end, which is a different scan.
	scan(site.Pos.Block, site.Pos.Index-1)

	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		scan(bi, len(f.Blocks[bi].Instrs)-1)
	}

	r.Points = sortedPositions(pointSet)
	r.Members = sortedPositions(memberSet)
	r.OnlyEntryPoint = len(r.Points) == 1 && r.Points[0] == entryPoint
	return r
}

func sortedPositions(set map[mir.Pos]bool) []mir.Pos {
	out := make([]mir.Pos, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IdentifyRegionAt is IdentifyRegion for a walk starting at an arbitrary
// position rather than a failure site — the inter-procedural analysis
// walks backward from call sites in caller functions (§4.3). The returned
// Region has the pseudo-site's position but inherits the identity of the
// original site.
func IdentifyRegionAt(m *mir.Module, origin Site, startPos mir.Pos, policy mir.RegionPolicy) Region {
	pseudo := origin
	pseudo.Pos = startPos
	return IdentifyRegion(m, pseudo, policy)
}
