package analysis

import (
	"testing"

	"conair/internal/mir"
	"conair/internal/mirgen"
)

// Structural properties of the reexecution-region identification (§3.2.2),
// checked across randomly generated programs and every failure site:
//
//  1. every reexecution point is the function entry or sits immediately
//     after an idempotency-destroying instruction;
//  2. no region member is idempotency-destroying;
//  3. the site itself is never a member of its own region;
//  4. OnlyEntryPoint holds exactly when the point set is {entry}.
func TestRegionPropertiesOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := mirgen.Gen(mirgen.Config{Seed: seed, Funcs: 4, StmtsPerFunc: 16})
		sites := IdentifySurvival(m)
		for _, s := range sites {
			for _, policy := range []mir.RegionPolicy{mir.PolicyBasic, mir.PolicyExtended} {
				r := IdentifyRegion(m, s, policy)
				entry := mir.Pos{Fn: s.Pos.Fn, Block: 0, Index: 0}
				for _, p := range r.Points {
					if p == entry {
						continue
					}
					if p.Index == 0 {
						t.Fatalf("seed %d site %v: point %v at block start is not after a destroyer",
							seed, s.Pos, p)
					}
					prev := m.At(mir.Pos{Fn: p.Fn, Block: p.Block, Index: p.Index - 1})
					if !mir.Destroys(prev, policy) {
						t.Fatalf("seed %d site %v: point %v not preceded by a destroyer (%v)",
							seed, s.Pos, p, prev.Op)
					}
				}
				for _, mem := range r.Members {
					if mir.Destroys(m.At(mem), policy) {
						t.Fatalf("seed %d site %v: member %v is destroying (%v)",
							seed, s.Pos, mem, m.At(mem).Op)
					}
					if mem == s.Pos {
						t.Fatalf("seed %d: site %v is a member of its own region", seed, s.Pos)
					}
				}
				wantOnly := len(r.Points) == 1 && r.Points[0] == entry
				if r.OnlyEntryPoint != wantOnly {
					t.Fatalf("seed %d site %v: OnlyEntryPoint=%v, points=%v",
						seed, s.Pos, r.OnlyEntryPoint, r.Points)
				}
			}
		}
	}
}

// The slice is always a subset of the region plus the site's block
// context, and every reported shared read really is a shared read inside
// the region.
func TestSlicePropertiesOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := mirgen.Gen(mirgen.Config{Seed: seed, Funcs: 3, StmtsPerFunc: 14})
		for _, s := range IdentifySurvival(m) {
			r := IdentifyRegion(m, s, mir.PolicyExtended)
			sl := ComputeSlice(m, &r, nil)
			members := map[mir.Pos]bool{}
			for _, p := range r.Members {
				members[p] = true
			}
			for _, p := range sl.SharedReads {
				if !members[p] {
					t.Fatalf("seed %d site %v: shared read %v outside region", seed, s.Pos, p)
				}
				if !mir.IsSharedRead(m.At(p)) {
					t.Fatalf("seed %d site %v: %v reported as shared read but is %v",
						seed, s.Pos, p, m.At(p).Op)
				}
			}
			for _, p := range sl.OnSlice {
				if !members[p] {
					t.Fatalf("seed %d site %v: slice position %v outside region", seed, s.Pos, p)
				}
			}
			f := &m.Functions[s.Pos.Fn]
			for _, reg := range sl.NeededAtEntry {
				if reg < 0 || reg >= f.NumRegs() {
					t.Fatalf("seed %d: needed-at-entry register %d out of range", seed, reg)
				}
			}
		}
	}
}

// Analyzing a module never mutates it, and analysis is deterministic.
func TestAnalyzeIsPureOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := mirgen.Gen(mirgen.Config{Seed: seed})
		before := mir.Print(m)
		r1, err := Analyze(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Analyze(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if mir.Print(m) != before {
			t.Fatalf("seed %d: Analyze mutated the module", seed)
		}
		if len(r1.Checkpoints) != len(r2.Checkpoints) || r1.Census != r2.Census {
			t.Fatalf("seed %d: analysis not deterministic", seed)
		}
		for i := range r1.Checkpoints {
			if r1.Checkpoints[i].Pos != r2.Checkpoints[i].Pos {
				t.Fatalf("seed %d: checkpoint positions differ", seed)
			}
		}
	}
}

// Checkpoint ids are dense and position-sorted; every checkpoint serves at
// least one site and classifies as deadlock and/or non-deadlock.
func TestCheckpointCollectionProperties(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := mirgen.Gen(mirgen.Config{Seed: seed, StmtsPerFunc: 18})
		res, err := Analyze(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, cp := range res.Checkpoints {
			if cp.ID != i+1 {
				t.Fatalf("seed %d: checkpoint ids not dense: %d at index %d", seed, cp.ID, i)
			}
			if i > 0 && !res.Checkpoints[i-1].Pos.Less(cp.Pos) {
				t.Fatalf("seed %d: checkpoints not position-sorted", seed)
			}
			if len(cp.SiteIDs) == 0 {
				t.Fatalf("seed %d: checkpoint %d serves no site", seed, cp.ID)
			}
			if !cp.ServesDeadlock && !cp.ServesNonDeadlock {
				t.Fatalf("seed %d: checkpoint %d has no class", seed, cp.ID)
			}
		}
	}
}
