package analysis

import (
	"sort"

	"conair/internal/mir"
)

// Slice is the result of ConAir's simplified intra-procedural backward
// slicing for one failure site (paper §4.2, Figure 8). The slice is
// computed only over the site's reexecution region: because region members
// only write virtual registers, data dependence never has to be traced
// through memory — when a needed register is defined by a read of a
// non-register location (a stack slot), tracking simply stops, and a read
// of a global or of the heap is exactly the kind of shared read whose
// reexecution can change the failure outcome.
type Slice struct {
	// SharedReads are the in-region global/heap read positions on the
	// slice. A non-deadlock site with no shared read in any region is
	// statically unrecoverable (§4.2).
	SharedReads []mir.Pos
	// OnSlice is every region member on the slice (data dependence plus
	// the conservative control-dependence approximation: in-region
	// branches are always on the slice).
	OnSlice []mir.Pos
	// NeededAtEntry holds the register indices still needed (and not yet
	// defined) when the slice reaches the entry point of the function.
	// A parameter register here is a "critical parameter" for
	// inter-procedural recovery (§4.3).
	NeededAtEntry []int
}

// HasSharedRead reports a shared read on the slice within the region.
func (s *Slice) HasSharedRead() bool { return len(s.SharedReads) > 0 }

// CriticalParams filters NeededAtEntry down to parameter registers of f.
func (s *Slice) CriticalParams(f *mir.Function) []int {
	var out []int
	for _, r := range s.NeededAtEntry {
		if r < f.NumParams {
			out = append(out, r)
		}
	}
	return out
}

// regSet is a small register-index set.
type regSet map[int]bool

func (s regSet) clone() regSet {
	c := make(regSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s regSet) addAll(o regSet) bool {
	changed := false
	for k := range o {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// ComputeSlice runs the backward slice for the site of region r, seeded by
// seedRegs (defaults to the registers the site instruction uses when nil).
//
// The dataflow runs at instruction granularity over the region sub-graph:
// need(p) is the set of registers needed immediately BEFORE executing the
// instruction at p. Transfer for an instruction d defining register x with
// uses U:
//
//	on slice  ⇔ x ∈ need-after, or the instruction is an in-region branch
//	need-before = need-after  \ {x}  ∪ U     (if on slice and tracking)
//	need-before = need-after  \ {x}          (if on slice but the def reads
//	                                          a stack slot: tracking stops,
//	                                          per Figure 8)
//
// Shared reads (loadg, load) on the slice are recorded; their uses (the
// address registers) remain tracked, following pointer chains backward.
func ComputeSlice(m *mir.Module, r *Region, seedRegs []int) Slice {
	f := &m.Functions[r.Site.Pos.Fn]
	members := r.memberSet()

	// need[pos] = registers needed before executing pos.
	need := map[mir.Pos]regSet{}
	onSlice := map[mir.Pos]bool{}
	sharedReads := map[mir.Pos]bool{}

	seed := regSet{}
	if seedRegs == nil {
		site := m.At(r.Site.Pos)
		for _, u := range site.Uses(nil) {
			seed[u] = true
		}
	} else {
		for _, u := range seedRegs {
			seed[u] = true
		}
	}

	// Region-successor need: for a member position p, the need-after set
	// is the union of need(q) over the positions q that execute right
	// after p and are in the region (or are the site itself).
	siteNeed := seed

	needAfter := func(p mir.Pos) regSet {
		out := regSet{}
		blk := &f.Blocks[p.Block]
		collect := func(q mir.Pos) {
			if q == r.Site.Pos {
				out.addAll(siteNeed)
				return
			}
			if members[q] {
				out.addAll(need[q])
			}
		}
		if p.Index+1 < len(blk.Instrs) {
			collect(mir.Pos{Fn: p.Fn, Block: p.Block, Index: p.Index + 1})
			return out
		}
		return out
	}

	// Iterate to fixpoint. Regions are small, so a simple round-robin
	// sweep in reverse position order converges quickly.
	ordered := append([]mir.Pos(nil), r.Members...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[j].Less(ordered[i]) })

	for changed := true; changed; {
		changed = false
		for _, p := range ordered {
			in := m.At(p)
			var after regSet
			if in.Op.IsTerminator() {
				// Successors are the first positions of successor blocks.
				after = regSet{}
				switch in.Op {
				case mir.OpBr:
					for _, nb := range []int{in.Then, in.Else} {
						q := mir.Pos{Fn: p.Fn, Block: nb, Index: 0}
						if q == r.Site.Pos {
							after.addAll(siteNeed)
						} else if members[q] {
							after.addAll(need[q])
						}
					}
				case mir.OpJmp:
					q := mir.Pos{Fn: p.Fn, Block: in.Then, Index: 0}
					if q == r.Site.Pos {
						after.addAll(siteNeed)
					} else if members[q] {
						after.addAll(need[q])
					}
				}
			} else {
				after = needAfter(p)
			}

			before := after.clone()
			sliced := false
			if in.HasDst() && after[in.Dst] {
				sliced = true
				delete(before, in.Dst)
				switch in.Op {
				case mir.OpLoadS:
					// Definition reads a non-register location: stop
					// tracking this chain (Figure 8).
				case mir.OpLoadG, mir.OpLoad:
					sharedReads[p] = true
					for _, u := range in.Uses(nil) {
						before[u] = true
					}
				default:
					for _, u := range in.Uses(nil) {
						before[u] = true
					}
				}
			}
			if in.Op == mir.OpBr {
				// Conservative control dependence: in-region branches can
				// steer execution to the site, so their conditions are
				// always needed.
				sliced = true
				for _, u := range in.Uses(nil) {
					before[u] = true
				}
			}
			if sliced && !onSlice[p] {
				onSlice[p] = true
				changed = true
			}
			old := need[p]
			if old == nil {
				need[p] = before
				if len(before) > 0 {
					changed = true
				}
			} else if old.addAll(before) {
				changed = true
			}
		}
	}

	var sl Slice
	sl.SharedReads = sortedPositions(sharedReads)
	sl.OnSlice = sortedPositions(onSlice)

	// Registers needed at the entry point: the need set right before the
	// first region instruction of the entry block — i.e. need at position
	// (fn, 0, 0) if it is a member, or the site's own seed when the site
	// sits at the very top of the function.
	entryPos := mir.Pos{Fn: r.Site.Pos.Fn, Block: 0, Index: 0}
	var entryNeed regSet
	switch {
	case entryPos == r.Site.Pos:
		entryNeed = siteNeed
	case members[entryPos]:
		entryNeed = need[entryPos]
	}
	for reg := range entryNeed {
		sl.NeededAtEntry = append(sl.NeededAtEntry, reg)
	}
	sort.Ints(sl.NeededAtEntry)
	return sl
}
