package analysis

import (
	"math/bits"
	"sort"

	"conair/internal/mir"
)

// Slice is the result of ConAir's simplified intra-procedural backward
// slicing for one failure site (paper §4.2, Figure 8). The slice is
// computed only over the site's reexecution region: because region members
// only write virtual registers, data dependence never has to be traced
// through memory — when a needed register is defined by a read of a
// non-register location (a stack slot), tracking simply stops, and a read
// of a global or of the heap is exactly the kind of shared read whose
// reexecution can change the failure outcome.
type Slice struct {
	// SharedReads are the in-region global/heap read positions on the
	// slice. A non-deadlock site with no shared read in any region is
	// statically unrecoverable (§4.2).
	SharedReads []mir.Pos
	// OnSlice is every region member on the slice (data dependence plus
	// the conservative control-dependence approximation: in-region
	// branches are always on the slice).
	OnSlice []mir.Pos
	// NeededAtEntry holds the register indices still needed (and not yet
	// defined) when the slice reaches the entry point of the function.
	// A parameter register here is a "critical parameter" for
	// inter-procedural recovery (§4.3).
	NeededAtEntry []int
}

// HasSharedRead reports a shared read on the slice within the region.
func (s *Slice) HasSharedRead() bool { return len(s.SharedReads) > 0 }

// CriticalParams filters NeededAtEntry down to parameter registers of f.
func (s *Slice) CriticalParams(f *mir.Function) []int {
	var out []int
	for _, r := range s.NeededAtEntry {
		if r < f.NumParams {
			out = append(out, r)
		}
	}
	return out
}

// regSet is a register-index bitset. Register indices are bounded by the
// owning function's NumRegs, so one or two machine words cover typical
// functions and every set operation is a handful of word ops — ComputeSlice
// clones and unions these per instruction per fixpoint sweep, which made
// the previous map-based representation the hottest allocation site in
// whole-module hardening.
type regSet []uint64

func newRegSet(nregs int) regSet { return make(regSet, (nregs+64)/64) }

func (s regSet) has(k int) bool {
	w := k >> 6
	return w < len(s) && s[w]&(1<<uint(k&63)) != 0
}

func (s *regSet) add(k int) {
	w := k >> 6
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << uint(k&63)
}

func (s regSet) remove(k int) {
	if w := k >> 6; w < len(s) {
		s[w] &^= 1 << uint(k&63)
	}
}

// reset clears the set in place, keeping its capacity.
func (s regSet) reset() {
	for i := range s {
		s[i] = 0
	}
}

// copyFrom makes s an exact copy of o (s must be at least as wide).
func (s regSet) copyFrom(o regSet) {
	n := copy(s, o)
	for i := n; i < len(s); i++ {
		s[i] = 0
	}
}

// addAll unions o into s, reporting whether s gained any element.
func (s *regSet) addAll(o regSet) bool {
	for len(*s) < len(o) {
		*s = append(*s, 0)
	}
	changed := false
	for i, w := range o {
		if nw := (*s)[i] | w; nw != (*s)[i] {
			(*s)[i] = nw
			changed = true
		}
	}
	return changed
}

// elems returns the set's elements in ascending order.
func (s regSet) elems() []int {
	var out []int
	for i, w := range s {
		for w != 0 {
			out = append(out, i*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// ComputeSlice runs the backward slice for the site of region r, seeded by
// seedRegs (defaults to the registers the site instruction uses when nil).
//
// The dataflow runs at instruction granularity over the region sub-graph:
// need(p) is the set of registers needed immediately BEFORE executing the
// instruction at p. Transfer for an instruction d defining register x with
// uses U:
//
//	on slice  ⇔ x ∈ need-after, or the instruction is an in-region branch
//	need-before = need-after  \ {x}  ∪ U     (if on slice and tracking)
//	need-before = need-after  \ {x}          (if on slice but the def reads
//	                                          a stack slot: tracking stops,
//	                                          per Figure 8)
//
// Shared reads (loadg, load) on the slice are recorded; their uses (the
// address registers) remain tracked, following pointer chains backward.
func ComputeSlice(m *mir.Module, r *Region, seedRegs []int) Slice {
	f := &m.Functions[r.Site.Pos.Fn]

	// All dataflow state is indexed by a member's rank in position order:
	// the region is a small subset of one function, so sets sized by the
	// member count (not the function's instruction count) keep ComputeSlice
	// allocation-light — it runs once per site per harden. Membership tests
	// binary-search the sorted flat pcs.
	offs := f.BlockOffsets()
	flat := func(p mir.Pos) int { return int(offs[p.Block]) + p.Index }

	asc := append([]mir.Pos(nil), r.Members...)
	sort.Slice(asc, func(i, j int) bool { return asc[i].Less(asc[j]) })
	pcs := make([]int32, len(asc))
	for i, p := range asc {
		pcs[i] = int32(flat(p))
	}
	// idxOf returns the member rank of the instruction at flat pc, or -1.
	idxOf := func(pc int) int {
		lo, hi := 0, len(pcs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int(pcs[mid]) < pc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(pcs) && int(pcs[lo]) == pc {
			return lo
		}
		return -1
	}

	seed := newRegSet(f.NumRegs())
	if seedRegs == nil {
		site := m.At(r.Site.Pos)
		for _, u := range site.Uses(nil) {
			seed.add(u)
		}
	} else {
		for _, u := range seedRegs {
			seed.add(u)
		}
	}
	siteNeed := seed

	// The fixpoint sweeps members in reverse position order — regions are
	// small, so a simple round-robin sweep converges quickly. Successors
	// never change across sweeps: precompute, per member, the member ranks
	// whose need sets feed its need-after union (the site's seed is flagged
	// separately since siteNeed is not stored in need[]).
	type succInfo struct {
		in   *mir.Instr
		idx  int     // this member's rank
		site bool    // some successor is the site itself
		sidx []int32 // member ranks of in-region successors
	}
	succs := make([]succInfo, len(asc))
	for k := range succs {
		idx := len(asc) - 1 - k // sweep order: highest position first
		p := asc[idx]
		si := &succs[k]
		si.in = m.At(p)
		si.idx = idx
		collect := func(q mir.Pos) {
			if q == r.Site.Pos {
				si.site = true
			} else if qi := idxOf(flat(q)); qi >= 0 {
				si.sidx = append(si.sidx, int32(qi))
			}
		}
		if si.in.Op.IsTerminator() {
			// Successors are the first positions of successor blocks.
			switch si.in.Op {
			case mir.OpBr:
				collect(mir.Pos{Fn: p.Fn, Block: si.in.Then, Index: 0})
				collect(mir.Pos{Fn: p.Fn, Block: si.in.Else, Index: 0})
			case mir.OpJmp:
				collect(mir.Pos{Fn: p.Fn, Block: si.in.Then, Index: 0})
			}
		} else if p.Index+1 < len(f.Blocks[p.Block].Instrs) {
			collect(mir.Pos{Fn: p.Fn, Block: p.Block, Index: p.Index + 1})
		}
	}

	// need[i] = registers needed before executing member i. All member
	// sets share one backing array (full-length three-index slices, so a
	// set that ever needs to grow detaches instead of clobbering its
	// neighbor).
	nw := len(seed)
	backing := make(regSet, nw*len(asc))
	need := make([]regSet, len(asc))
	for i := range need {
		need[i] = backing[i*nw : (i+1)*nw : (i+1)*nw]
	}
	onSlice := make([]bool, len(asc))
	sharedReads := make([]bool, len(asc))

	after := newRegSet(f.NumRegs()) // scratch, rebuilt per instruction
	before := newRegSet(f.NumRegs())
	var usesBuf []int

	for changed := true; changed; {
		changed = false
		for i := range succs {
			si := &succs[i]
			in := si.in

			// Need-after: union of need at every region successor (or the
			// site's seed when the site executes next).
			after.reset()
			if si.site {
				after.addAll(siteNeed)
			}
			for _, qi := range si.sidx {
				after.addAll(need[qi])
			}

			if len(before) < len(after) {
				before = append(before, make(regSet, len(after)-len(before))...)
			}
			before.copyFrom(after)
			sliced := false
			if in.HasDst() && after.has(in.Dst) {
				sliced = true
				before.remove(in.Dst)
				switch in.Op {
				case mir.OpLoadS:
					// Definition reads a non-register location: stop
					// tracking this chain (Figure 8).
				case mir.OpLoadG, mir.OpLoad:
					sharedReads[si.idx] = true
					usesBuf = in.Uses(usesBuf[:0])
					for _, u := range usesBuf {
						before.add(u)
					}
				default:
					usesBuf = in.Uses(usesBuf[:0])
					for _, u := range usesBuf {
						before.add(u)
					}
				}
			}
			if in.Op == mir.OpBr {
				// Conservative control dependence: in-region branches can
				// steer execution to the site, so their conditions are
				// always needed.
				sliced = true
				usesBuf = in.Uses(usesBuf[:0])
				for _, u := range usesBuf {
					before.add(u)
				}
			}
			if sliced && !onSlice[si.idx] {
				onSlice[si.idx] = true
				changed = true
			}
			if (&need[si.idx]).addAll(before) {
				changed = true
			}
		}
	}

	var sl Slice
	// Walk members in ascending position order so the output lists stay
	// sorted, as the map-keyed representation guaranteed via
	// sortedPositions.
	for i, p := range asc {
		if sharedReads[i] {
			sl.SharedReads = append(sl.SharedReads, p)
		}
		if onSlice[i] {
			sl.OnSlice = append(sl.OnSlice, p)
		}
	}

	// Registers needed at the entry point: the need set right before the
	// first region instruction of the entry block — i.e. need at position
	// (fn, 0, 0) if it is a member, or the site's own seed when the site
	// sits at the very top of the function.
	entryPos := mir.Pos{Fn: r.Site.Pos.Fn, Block: 0, Index: 0}
	var entryNeed regSet
	switch {
	case entryPos == r.Site.Pos:
		entryNeed = siteNeed
	default:
		if ei := idxOf(flat(entryPos)); ei >= 0 {
			entryNeed = need[ei]
		}
	}
	sl.NeededAtEntry = entryNeed.elems()
	return sl
}
