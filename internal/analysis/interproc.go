package analysis

import (
	"conair/internal/mir"
)

// DefaultInterprocDepth is the paper's default bound on how many caller
// levels an inter-procedural recovery may unwind (§4.3: "the default
// setting is 3").
const DefaultInterprocDepth = 3

// InterprocResult describes the inter-procedural recovery decision for one
// failure site.
type InterprocResult struct {
	// Selected reports that the site satisfies all three §4.3 conditions
	// and its recovery crosses into caller functions.
	Selected bool
	// Points are the final reexecution points: the caller-side points of
	// every analyzed caller when Selected, otherwise nil. These replace
	// the entry point REintra of the site's own function.
	Points []mir.Pos
	// Levels is the deepest caller level actually used (1 = immediate
	// caller).
	Levels int
	// GaveUp reports the rare case (§4.3) where the caller chain still
	// reached a clean function entry at the depth limit; ConAir then
	// abandons inter-procedural recovery for the site and puts the point
	// back at the function entry.
	GaveUp bool
}

// SelectInterproc decides inter-procedural recovery for a site, given its
// intra-procedural region and slice. The three conditions (§4.3):
//
//  1. no idempotency-destroying operation on any path between the entry of
//     the site's function and the site (the region's only point is the
//     entry);
//  2. for non-deadlock sites, at least one parameter of the function is on
//     the site's backward slice (a critical parameter) — parameters are
//     the only way a caller can influence the failure outcome, because
//     regions cannot contain shared writes;
//  3. at least one path between entry and the site is unrecoverable —
//     contains no slice shared read (non-deadlock) or no lock acquisition
//     (deadlock) — which is when pushing the reexecution point into the
//     caller is most needed.
//
// When selected, the caller-side walk starts just before each call site
// (the instruction pushing the critical parameter in the paper's stack
// model; in MIR arguments are operands of the call itself) and reexecution
// points are identified by the ordinary backward walk. A caller whose walk
// reaches its own entry cleanly recurses, up to maxDepth levels.
func SelectInterproc(m *mir.Module, site Site, region *Region, slice *Slice,
	policy mir.RegionPolicy, maxDepth int) InterprocResult {

	if maxDepth <= 0 {
		maxDepth = DefaultInterprocDepth
	}
	var res InterprocResult

	// Condition (1).
	if !region.OnlyEntryPoint {
		return res
	}
	f := &m.Functions[site.Pos.Fn]
	// Condition (2).
	if site.Kind != SiteDeadlock && len(slice.CriticalParams(f)) == 0 {
		return res
	}
	// Condition (3).
	if !hasUnrecoverablePath(m, site, region, slice) {
		return res
	}

	points, levels, gaveUp := callerPoints(m, site, policy, site.Pos.Fn, 1, maxDepth)
	if gaveUp {
		// Keep REintra at the function entry (the paper's fallback).
		res.GaveUp = true
		return res
	}
	if len(points) == 0 {
		// No callers at all (e.g. only a thread entry function): the
		// entry of the function is where the thread starts, so the
		// intra-procedural entry point stands.
		return res
	}
	res.Selected = true
	res.Points = points
	res.Levels = levels
	return res
}

// callerPoints walks every caller of function fi backward from its call
// sites and accumulates reexecution points. A caller whose own walk comes
// back clean to its entry is recursed into; past maxDepth the whole
// selection gives up (the paper's rare fallback case).
func callerPoints(m *mir.Module, origin Site, policy mir.RegionPolicy,
	fi, depth, maxDepth int) (points []mir.Pos, levels int, gaveUp bool) {

	calls := mir.CallSites(m, fi)
	levels = depth
	for _, cs := range calls {
		if m.At(cs).Op == mir.OpSpawn {
			// A spawn is a thread start, not a frame on the failing
			// thread's stack: rollback cannot cross it. The spawned
			// function's entry remains the boundary, so this call site
			// contributes no caller-side point.
			continue
		}
		r := IdentifyRegionAt(m, origin, cs, policy)
		if r.OnlyEntryPoint {
			if depth >= maxDepth {
				// Still clean at the depth limit: §4.3's give-up case.
				return nil, depth, true
			}
			ps, lv, up := callerPoints(m, origin, policy, cs.Fn, depth+1, maxDepth)
			if up {
				return nil, depth, true
			}
			if lv > levels {
				levels = lv
			}
			if len(ps) == 0 {
				// The caller itself has no callers: its entry is the
				// reexecution point.
				ps = []mir.Pos{{Fn: cs.Fn, Block: 0, Index: 0}}
			}
			points = append(points, ps...)
			continue
		}
		points = append(points, r.Points...)
	}
	return dedupPositions(points), levels, false
}

func dedupPositions(ps []mir.Pos) []mir.Pos {
	set := map[mir.Pos]bool{}
	for _, p := range ps {
		set[p] = true
	}
	return sortedPositions(set)
}

// hasUnrecoverablePath implements condition (3): is there a path from the
// function entry to the site that avoids every "helpful" position — the
// slice's shared reads for non-deadlock sites, lock acquisitions in the
// region for deadlock sites?
//
// The check is block-granular and conservative in the right direction: a
// path is only declared unrecoverable when it provably avoids all helpful
// blocks; helpful instructions in the site's own block before the site, or
// in the entry block, make every path recoverable.
func hasUnrecoverablePath(m *mir.Module, site Site, region *Region, slice *Slice) bool {
	f := &m.Functions[site.Pos.Fn]
	cfg := mir.BuildCFG(f)

	helpful := map[mir.Pos]bool{}
	if site.Kind == SiteDeadlock {
		for _, p := range region.Members {
			if mir.IsLockAcquire(m.At(p)) {
				helpful[p] = true
			}
		}
	} else {
		for _, p := range slice.SharedReads {
			helpful[p] = true
		}
	}
	if len(helpful) == 0 {
		// Nothing helpful anywhere: every path is unrecoverable.
		return true
	}

	// Blocks that contain a helpful instruction act as barriers — except
	// the site's own block, where only instructions before the site count,
	// and the entry block, where every helpful instruction lies on every
	// path anyway.
	barrier := map[int]bool{}
	siteBlockHelps := false
	entryBlockHelps := false
	for p := range helpful {
		switch p.Block {
		case site.Pos.Block:
			if p.Index < site.Pos.Index {
				siteBlockHelps = true
			}
		default:
			barrier[p.Block] = true
		}
		if p.Block == 0 {
			entryBlockHelps = true
		}
	}
	if siteBlockHelps && site.Pos.Block != 0 {
		// Every path ends by running the site block's prefix, which is
		// helpful; no unrecoverable path exists.
		return false
	}
	if entryBlockHelps {
		// Every path starts at entry, which is helpful.
		return false
	}
	return cfg.ReachesWithout(0, site.Pos.Block, barrier)
}
