package analysis

import (
	"testing"

	"conair/internal/mir"
)

func derefPos(t *testing.T, m *mir.Module, nth int) mir.Pos {
	t.Helper()
	pos, err := FindSite(m, "main", mir.OpLoad, nth)
	if err != nil {
		pos, err = FindSite(m, "main", mir.OpStore, nth)
	}
	if err != nil {
		t.Fatal(err)
	}
	return pos
}

func TestProvablySafeAddrG(t *testing.T) {
	m := mir.MustParse(`
global g = 5
func main() {
entry:
  %p = addrg @g
  %v = load %p
  ret %v
}`)
	if !ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("addrg dereference must be provably safe")
	}
}

func TestProvablySafeAllocInBounds(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %h = alloc 4
  %p = add %h, 3
  %v = load %p
  ret %v
}`)
	if !ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("in-bounds alloc dereference must be provably safe")
	}
}

func TestNotProvableOutOfBounds(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %h = alloc 4
  %p = add %h, 4
  %v = load %p
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("one-past-the-end must not be provable")
	}
}

func TestNotProvableAfterFree(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %h = alloc 4
  free %h
  %v = load %h
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("use-after-free must not be provable")
	}
}

func TestNotProvableFromSharedLoad(t *testing.T) {
	m := mir.MustParse(`
global gp = 0
func main() {
entry:
  %p = loadg @gp
  %v = load %p
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("pointer loaded from shared memory must not be provable")
	}
}

func TestNotProvableCrossBlock(t *testing.T) {
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %p = addrg @g
  jmp next
next:
  %v = load %p
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("cross-block definitions are out of scope for the prover")
	}
}

func TestNotProvableAfterRedefinition(t *testing.T) {
	m := mir.MustParse(`
global g = 0
global gp = 0
func main() {
entry:
  %p = addrg @g
  %p = loadg @gp
  %v = load %p
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("the most recent definition (a shared load) must win")
	}
}

func TestNotProvableGlobalWithOffset(t *testing.T) {
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %p = addrg @g
  %q = add %p, 1
  %v = load %q
  ret %v
}`)
	if ProvablySafeDeref(m, derefPos(t, m, 0)) {
		t.Error("globals are single cells; offsets must not be provable")
	}
}

func TestAnalyzeWithSafePruning(t *testing.T) {
	m := mir.MustParse(`
global g = 5
global gp = 0
func main() {
entry:
  %safe = addrg @g
  %a = load %safe
  %unsafe = loadg @gp
  %b = load %unsafe
  ret %b
}`)
	opts := DefaultOptions()
	opts.PruneSafeSites = true
	res, err := Analyze(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SafePrunedSites != 1 {
		t.Errorf("safe-pruned = %d, want 1", res.SafePrunedSites)
	}
	if res.Census.Segfault != 1 {
		t.Errorf("census segfault = %d, want only the unprovable one", res.Census.Segfault)
	}

	// Default configuration keeps both (the evaluated prototype).
	res2, err := Analyze(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Census.Segfault != 2 || res2.SafePrunedSites != 0 {
		t.Errorf("default config should keep both sites: %+v", res2.Census)
	}
}
