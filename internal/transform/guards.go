package transform

import "conair/internal/mir"

// GuardOutputs inserts a developer-style output-correctness oracle before
// every output instruction whose operand is a register: the paper's
// automatic specification for output functions ("ConAir currently inserts
// an assertion before every fputs function call to check whether the
// parameter of fputs is NULL or not", §3.4). In MIR the analogue asserts
// that the emitted value is non-zero — the shape of the reconstructed
// wrong-output bugs, where a racy read yields the uninitialized zero.
//
// The returned module is a guarded clone; the input is untouched. Running
// the ConAir pipeline on the result makes every guarded output a
// recoverable wrong-output site instead of an unrecoverable one.
func GuardOutputs(m *mir.Module) *mir.Module {
	out := m.Clone()
	for fi := range out.Functions {
		f := &out.Functions[fi]
		for bi := range f.Blocks {
			src := f.Blocks[bi].Instrs
			guarded := make([]mir.Instr, 0, len(src))
			for _, in := range src {
				if in.Op == mir.OpOutput && in.A.Kind == mir.OperandReg {
					guarded = append(guarded, mir.Instr{
						Op: mir.OpAssert, Dst: -1, A: in.A,
						AssertKind: mir.AssertOracle,
						Text:       "auto-guard: output value must be initialized (non-zero)",
					})
				}
				guarded = append(guarded, in)
			}
			f.Blocks[bi].Instrs = guarded
		}
	}
	return out
}
