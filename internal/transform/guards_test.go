package transform

import (
	"strings"
	"testing"

	"conair/internal/analysis"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

func TestGuardOutputsInsertsOracles(t *testing.T) {
	m := mir.MustParse(`
global g = 0
func main() {
entry:
  %v = loadg @g
  output "v", %v
  output "const", 7
  ret
}`)
	g := GuardOutputs(m)
	text := mir.Print(g)
	if strings.Count(text, "oracle") != 1 {
		t.Fatalf("want exactly one oracle (register outputs only):\n%s", text)
	}
	if mir.Print(m) == text {
		t.Fatal("input must be untouched, clone must differ")
	}
	// The guarded module is still valid and the census now has a
	// recoverable wrong-output site.
	res, err := analysis.Analyze(g, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	recoverable := 0
	for i := range res.Sites {
		if res.Sites[i].Site.Kind == analysis.SiteWrongOutput && res.Sites[i].Site.HasOracle {
			recoverable++
		}
	}
	if recoverable != 1 {
		t.Errorf("recoverable wrong-output sites = %d, want 1", recoverable)
	}
}

// With automatic guards, a wrong-output bug becomes recoverable with NO
// developer annotation — the §3.4 extension closing the paper's §6.5
// limitation for zero-is-uninitialized outputs.
func TestGuardOutputsMakesWrongOutputRecoverable(t *testing.T) {
	src := `
global result = 0
func reporter() {
entry:
  %v = loadg @result
  output "result", %v
  ret
}
func compute() {
entry:
  sleep 150
  storeg @result, 99
  ret
}
func main() {
entry:
  %t = spawn compute()
  %r = spawn reporter()
  join %r
  join %t
  ret 0
}`
	m := mir.MustParse(src)

	// Unguarded + hardened: completes but emits the uninitialized zero.
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	unguarded := Apply(m, res, Options{})
	r := interp.RunModule(unguarded, interp.Config{Sched: sched.NewRandom(1), CollectOutput: true})
	if !r.Completed || r.Output[0].Value != 0 {
		t.Fatalf("unguarded run should emit the wrong output: %+v", r)
	}

	// Guarded + hardened: recovers and emits the computed value.
	g := GuardOutputs(m)
	res2, err := analysis.Analyze(g, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hardened := Apply(g, res2, Options{})
	r2 := interp.RunModule(hardened, interp.Config{Sched: sched.NewRandom(1), CollectOutput: true})
	if !r2.Completed {
		t.Fatalf("guarded run failed: %v", r2.Failure)
	}
	if len(r2.Output) != 1 || r2.Output[0].Value != 99 {
		t.Fatalf("guarded output = %+v, want result=99", r2.Output)
	}
	if r2.Stats.Rollbacks == 0 {
		t.Error("recovery should have rolled back")
	}
}
