package transform

import (
	"strings"
	"testing"

	"conair/internal/analysis"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

func harden(t *testing.T, src string, aopts analysis.Options, topts Options) (*mir.Module, *analysis.Result) {
	t.Helper()
	m := mir.MustParse(src)
	res, err := analysis.Analyze(m, aopts)
	if err != nil {
		t.Fatal(err)
	}
	out := Apply(m, res, topts)
	if err := mir.Verify(out); err != nil {
		t.Fatalf("transformed module invalid: %v\n%s", err, mir.Print(out))
	}
	if err := CheckInvariants(out, res); err != nil {
		t.Fatalf("recovery invariants violated: %v\n%s", err, mir.Print(out))
	}
	return out, res
}

func defaults() analysis.Options { return analysis.DefaultOptions() }

// Figure 6: the assert transformation plants a checkpoint (setjmp), a
// branch to a recovery block with a bounded rollback, and the real failure
// after exhaustion.
func TestFigure6AssertTransformShape(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  %e = loadg @flag
  assert %e, "e must hold"
  ret
}`
	out, res := harden(t, src, defaults(), Options{})
	text := mir.Print(out)
	for _, want := range []string{"checkpoint", "rollback 1, 1000000", `fail assert, "e must hold"`} {
		if !strings.Contains(text, want) {
			t.Errorf("transformed module missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "assert %e") {
		t.Errorf("original assert should have been rewritten:\n%s", text)
	}
	if res.StaticReexecPoints() != 1 {
		t.Errorf("checkpoints = %d, want 1", res.StaticReexecPoints())
	}
	// Original block indices must be preserved: block 0 is still entry.
	if out.Functions[0].Blocks[0].Name != "entry" {
		t.Errorf("entry block displaced: %v", out.Functions[0].Blocks[0].Name)
	}
}

// Figure 5c: the segfault transformation plants the LowerBound sanity
// check and falls back into the real dereference after exhaustion.
func TestFigure5cSegfaultTransformShape(t *testing.T) {
	src := `
global gp = 0
func main() {
entry:
  %p = loadg @gp
  %v = load %p
  ret %v
}`
	out, _ := harden(t, src, defaults(), Options{})
	text := mir.Print(out)
	if !strings.Contains(text, "gt %p, 10000") {
		t.Errorf("missing LowerBound pointer sanity check:\n%s", text)
	}
	if !strings.Contains(text, "%v = load %p") {
		t.Errorf("real dereference must remain:\n%s", text)
	}
	if !strings.Contains(text, "rollback") {
		t.Errorf("missing rollback:\n%s", text)
	}
}

// Figure 5d: lock → timedlock with recovery and livelock backoff.
func TestFigure5dDeadlockTransformShape(t *testing.T) {
	src := `
global L0 = 0
global L = 0
func main() {
entry:
  %p0 = addrg @L0
  lock %p0
  %p = addrg @L
  lock %p
  unlock %p
  unlock %p0
  ret
}`
	out, res := harden(t, src, defaults(), Options{})
	text := mir.Print(out)
	if !strings.Contains(text, "timedlock %p, 400") {
		t.Errorf("second lock should become timedlock:\n%s", text)
	}
	if !strings.Contains(text, "sleeprand") {
		t.Errorf("missing livelock backoff:\n%s", text)
	}
	if !strings.Contains(text, "fail deadlock") {
		t.Errorf("missing deadlock failure after exhaustion:\n%s", text)
	}
	// The first lock has no lock acquisition in its region: pruned, stays
	// a plain lock (§4.2).
	if !strings.Contains(text, "lock %p0") {
		t.Errorf("first lock should stay plain:\n%s", text)
	}
	if res.PrunedSites == 0 {
		t.Error("expected the first lock site to be pruned")
	}
}

func TestOutputWithoutOracleGetsCheckpointOnly(t *testing.T) {
	src := `
global g = 0
func main() {
entry:
  %v = loadg @g
  output "v", %v
  ret
}`
	out, res := harden(t, src, defaults(), Options{})
	text := mir.Print(out)
	if !strings.Contains(text, "checkpoint") {
		t.Errorf("worst-case overhead modeling requires a checkpoint:\n%s", text)
	}
	if strings.Contains(text, "rollback") {
		t.Errorf("no recovery without an oracle:\n%s", text)
	}
	if res.StaticReexecPoints() != 1 {
		t.Errorf("points = %d, want 1", res.StaticReexecPoints())
	}
}

func TestTransformOptionsApplied(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  %e = loadg @flag
  assert %e, "e"
  ret
}`
	out, _ := harden(t, src, defaults(), Options{MaxRetry: 7})
	if !strings.Contains(mir.Print(out), "rollback 1, 7") {
		t.Errorf("MaxRetry not honored:\n%s", mir.Print(out))
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  %e = loadg @flag
  assert %e, "e"
  ret
}`
	m := mir.MustParse(src)
	before := mir.Print(m)
	res, err := analysis.Analyze(m, defaults())
	if err != nil {
		t.Fatal(err)
	}
	_ = Apply(m, res, Options{})
	if mir.Print(m) != before {
		t.Error("Apply mutated the input module")
	}
}

// --- End-to-end recovery through the interpreter ---

// Order violation (the paper's most common recovery case): a reader thread
// asserts on a flag another thread sets late. Unhardened it fails;
// hardened it must recover in every seed.
func TestEndToEndAssertRecovery(t *testing.T) {
	src := `
global flag = 0
func reader() {
entry:
  %v = loadg @flag
  assert %v, "flag read too early"
  ret
}
func main() {
entry:
  %t = spawn reader()
  sleep 150
  storeg @flag, 1
  join %t
  ret 0
}`
	m := mir.MustParse(src)
	plain := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed || plain.Failure.Kind != mir.FailAssert {
		t.Fatalf("unhardened run should fail with assert: %+v", plain)
	}

	out, _ := harden(t, src, defaults(), Options{})
	for seed := int64(0); seed < 25; seed++ {
		r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(seed)})
		if !r.Completed {
			t.Fatalf("seed %d: hardened run failed: %v", seed, r.Failure)
		}
		if r.Stats.Rollbacks == 0 {
			t.Fatalf("seed %d: recovery should have used rollbacks", seed)
		}
	}
}

// Segfault recovery: dereference of a shared pointer before initialization
// (HTTrack/MozillaXP root cause).
func TestEndToEndSegfaultRecovery(t *testing.T) {
	src := `
global gp = 0
func reader() {
entry:
  %p = loadg @gp
  %v = load %p
  output "got", %v
  ret
}
func main() {
entry:
  %t = spawn reader()
  sleep 150
  %h = alloc 2
  store %h, 77
  storeg @gp, %h
  join %t
  ret 0
}`
	m := mir.MustParse(src)
	plain := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed || plain.Failure.Kind != mir.FailSegfault {
		t.Fatalf("unhardened run should segfault: %+v", plain)
	}

	out, _ := harden(t, src, defaults(), Options{})
	r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(2), CollectOutput: true})
	if !r.Completed {
		t.Fatalf("hardened run failed: %v", r.Failure)
	}
	if len(r.Output) != 1 || r.Output[0].Value != 77 {
		t.Errorf("output = %+v, want got=77", r.Output)
	}
}

// Deadlock recovery: HawkNL's reversed lock order (Figure 11). One thread
// times out, rolls back (releasing its first lock via compensation) and
// reexecutes; both threads then finish.
func TestEndToEndDeadlockRecovery(t *testing.T) {
	src := `
global nlock = 0
global slock = 0
global nSockets = 1
func close() {
entry:
  %pn = addrg @nlock
  lock %pn
  call driverclose()
  %ps = addrg @slock
  lock %ps
  unlock %ps
  unlock %pn
  ret
}
func driverclose() {
entry:
  sleep 60
  ret
}
func shutdown() {
entry:
  %ps = addrg @slock
  lock %ps
  %ns = loadg @nSockets
  br %ns, inner, out
inner:
  %pn = addrg @nlock
  lock %pn
  unlock %pn
  jmp out
out:
  unlock %ps
  ret
}
func main() {
entry:
  %t1 = spawn close()
  %t2 = spawn shutdown()
  join %t1
  join %t2
  ret 0
}`
	m := mir.MustParse(src)
	// Unhardened: deadlock manifests as a hang under interleavings where
	// each thread takes its first lock. Force it: thread close grabs
	// nlock then sleeps inside driverclose; shutdown grabs slock, then
	// blocks on nlock; close wakes and blocks on slock.
	var sawHang bool
	for seed := int64(0); seed < 40; seed++ {
		r := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(seed), MaxSteps: 200_000})
		if !r.Completed && r.Failure.Kind == mir.FailHang {
			sawHang = true
			break
		}
	}
	if !sawHang {
		t.Fatal("unhardened program never deadlocked; the forcing sleep is wrong")
	}

	out, _ := harden(t, src, defaults(), Options{LockTimeout: 100})
	for seed := int64(0); seed < 25; seed++ {
		r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(seed), MaxSteps: 500_000})
		if !r.Completed {
			t.Fatalf("seed %d: hardened run failed: %v", seed, r.Failure)
		}
	}
}

// Wrong-output recovery with an oracle (FFT, Figure 9).
func TestEndToEndOracleRecovery(t *testing.T) {
	src := `
global End = 0
func reporter() {
entry:
  %tmp = loadg @End
  oracle %tmp, "End must be positive"
  output "stop", %tmp
  ret
}
func main() {
entry:
  %t = spawn reporter()
  sleep 120
  storeg @End, 42
  join %t
  ret 0
}`
	m := mir.MustParse(src)
	plain := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed || plain.Failure.Kind != mir.FailWrongOutput {
		t.Fatalf("unhardened run should produce wrong output: %+v", plain)
	}
	out, _ := harden(t, src, defaults(), Options{})
	r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(3), CollectOutput: true})
	if !r.Completed {
		t.Fatalf("hardened run failed: %v", r.Failure)
	}
	if len(r.Output) != 1 || r.Output[0].Value != 42 {
		t.Errorf("output = %+v, want stop=42", r.Output)
	}
}

// Inter-procedural recovery end-to-end (MozillaXP, Figure 10): the
// checkpoint lives in the caller; the rollback unwinds the callee frame.
func TestEndToEndInterprocRecovery(t *testing.T) {
	src := `
global mThd = 0
func getstate(%thd) {
entry:
  %v = load %thd
  ret %v
}
func get() {
entry:
  %p = loadg @mThd
  %tmp = call getstate(%p)
  output "state", %tmp
  ret
}
func initthd() {
entry:
  sleep 200
  %h = alloc 2
  store %h, 9
  storeg @mThd, %h
  ret
}
func main() {
entry:
  %t = spawn initthd()
  call get()
  join %t
  ret 0
}`
	m := mir.MustParse(src)
	plain := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed || plain.Failure.Kind != mir.FailSegfault {
		t.Fatalf("unhardened run should segfault: %+v", plain)
	}

	out, res := harden(t, src, defaults(), Options{})
	if res.InterprocSites == 0 {
		t.Fatal("expected inter-procedural selection for getstate's dereference")
	}
	r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(5), CollectOutput: true})
	if !r.Completed {
		t.Fatalf("hardened run failed: %v", r.Failure)
	}
	if len(r.Output) != 1 || r.Output[0].Value != 9 {
		t.Errorf("output = %+v, want state=9", r.Output)
	}
	if r.Stats.Rollbacks == 0 {
		t.Error("expected rollbacks during recovery")
	}
}

// Fix mode hardens exactly one site.
func TestFixModeSingleSite(t *testing.T) {
	src := `
global flag = 0
global other = 0
func main() {
entry:
  %a = loadg @other
  output "a", %a
  %v = loadg @flag
  assert %v, "flag"
  ret
}`
	m := mir.MustParse(src)
	pos, err := analysis.FindSite(m, "main", mir.OpAssert, 0)
	if err != nil {
		t.Fatal(err)
	}
	aopts := defaults()
	aopts.Mode = analysis.Fix
	aopts.FixSite = pos
	out, res := harden(t, src, aopts, Options{})
	if res.Census.Total() != 1 || res.StaticReexecPoints() != 1 {
		t.Errorf("fix mode: census=%d points=%d, want 1 and 1",
			res.Census.Total(), res.StaticReexecPoints())
	}
	text := mir.Print(out)
	if strings.Count(text, "checkpoint") != 1 {
		t.Errorf("fix mode should plant exactly one checkpoint:\n%s", text)
	}
	// The output instruction must be untouched in fix mode.
	if !strings.Contains(text, `output "a", %a`) {
		t.Errorf("unrelated output should be untouched:\n%s", text)
	}
}

// Multiple sites in one block keep their relative order and the block
// split chain stays executable.
func TestMultipleSitesInOneBlock(t *testing.T) {
	src := `
global a = 1
global b = 1
func main() {
entry:
  %x = loadg @a
  assert %x, "x"
  %y = loadg @b
  assert %y, "y"
  output "done", %y
  ret 0
}`
	out, res := harden(t, src, defaults(), Options{})
	nRecover := 0
	for i := range res.Sites {
		if res.Sites[i].Recovers() {
			nRecover++
		}
	}
	if nRecover != 2 {
		t.Fatalf("recovery sites = %d, want 2", nRecover)
	}
	r := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(1), CollectOutput: true})
	if !r.Completed || len(r.Output) != 1 {
		t.Fatalf("run = %+v", r)
	}
}

// Hardened programs must behave identically to the original on failure-free
// runs (correctness property: semantics unchanged).
func TestSemanticsPreservedWhenNoFailure(t *testing.T) {
	src := `
global g = 5
global mtx = 0
func work(%n) {
entry:
  %p = addrg @mtx
  lock %p
  %v = loadg @g
  %v2 = add %v, %n
  storeg @g, %v2
  unlock %p
  ret %v2
}
func main() {
entry:
  %a = call work(1)
  %b = call work(2)
  %p = addrg @g
  %c = load %p
  output "final", %c
  ret %c
}`
	m := mir.MustParse(src)
	orig := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1), CollectOutput: true})
	out, _ := harden(t, src, defaults(), Options{})
	hard := interp.RunModule(out, interp.Config{Sched: sched.NewRandom(1), CollectOutput: true})
	if !orig.Completed || !hard.Completed {
		t.Fatalf("orig=%+v hard=%+v", orig.Failure, hard.Failure)
	}
	if orig.ExitCode != hard.ExitCode {
		t.Errorf("exit codes differ: %d vs %d", orig.ExitCode, hard.ExitCode)
	}
	if len(orig.Output) != len(hard.Output) || orig.Output[0].Value != hard.Output[0].Value {
		t.Errorf("outputs differ: %+v vs %+v", orig.Output, hard.Output)
	}
	if hard.Stats.Rollbacks != 0 {
		t.Errorf("failure-free run should not roll back, did %d times", hard.Stats.Rollbacks)
	}
}
