package transform

import (
	"fmt"

	"conair/internal/analysis"
	"conair/internal/mir"
)

// CheckInvariants validates the structural guarantees the transformation
// must establish in a hardened module. It is used by the test suite and
// the differential fuzzer as an executable specification of §3.3:
//
//  1. every rollback names a failure site, has a positive retry bound,
//     and is followed by either the real failure (fail) or the real
//     operation (a jump back to the continuation) — the Figure 6 shape;
//  2. every site-tagged failure-check branch sends its failing edge into
//     a block that performs a rollback (possibly after the deadlock
//     backoff);
//  3. checkpoint ids are dense, unique, and placed exactly at the
//     positions the analysis chose;
//  4. for every site recovering intra-procedurally, at least one of its
//     checkpoints dominates the site's failure check, so the most-recent
//     jump buffer is always valid when the rollback runs (the
//     most-recent-checkpoint argument of §3.3); inter-procedural sites
//     are checked for having caller-side checkpoints instead.
func CheckInvariants(m *mir.Module, res *analysis.Result) error {
	// Collect checkpoint positions by id, and rollback/site-branch
	// positions by site.
	cpPos := map[int][]mir.Pos{}
	branchPos := map[int][]mir.Pos{}
	for fi := range m.Functions {
		f := &m.Functions[fi]
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				pos := mir.Pos{Fn: fi, Block: bi, Index: ii}
				switch in.Op {
				case mir.OpCheckpoint:
					cpPos[in.Site] = append(cpPos[in.Site], pos)
				case mir.OpRollback:
					if in.Site <= 0 {
						return fmt.Errorf("rollback at %v without a site id", pos)
					}
					if in.MaxRetry <= 0 {
						return fmt.Errorf("rollback at %v without a retry bound", pos)
					}
					if ii+1 >= len(f.Blocks[bi].Instrs) {
						return fmt.Errorf("rollback at %v is a block terminator", pos)
					}
					next := &f.Blocks[bi].Instrs[ii+1]
					if next.Op != mir.OpFail && next.Op != mir.OpJmp {
						return fmt.Errorf("rollback at %v followed by %v, want fail or jmp", pos, next.Op)
					}
				case mir.OpBr:
					if in.Site > 0 {
						branchPos[in.Site] = append(branchPos[in.Site], pos)
						els := &f.Blocks[in.Else]
						if len(els.Instrs) == 0 {
							return fmt.Errorf("site %d recovery block empty", in.Site)
						}
						first := els.Instrs[0].Op
						if first != mir.OpRollback && first != mir.OpSleepRand {
							return fmt.Errorf("site %d failing edge enters %v, want rollback/sleeprand", in.Site, first)
						}
					}
				}
			}
		}
	}

	// Checkpoint ids dense and unique.
	for id := 1; id <= len(res.Checkpoints); id++ {
		ps := cpPos[id]
		if len(ps) == 0 {
			return fmt.Errorf("checkpoint id %d missing from the module", id)
		}
		if len(ps) > 1 {
			return fmt.Errorf("checkpoint id %d planted %d times", id, len(ps))
		}
	}
	if len(cpPos) != len(res.Checkpoints) {
		return fmt.Errorf("module has %d checkpoints, analysis chose %d", len(cpPos), len(res.Checkpoints))
	}

	// Per-site coverage: the site's checkpoints must form a cut on every
	// path from the function entry to the failure check, so the thread's
	// jump buffer is always set when the rollback can run. (A single
	// checkpoint need not dominate — one point per incoming path is the
	// normal multi-path shape of §3.2.2.)
	cfgCache := map[int]*mir.CFG{}
	cfgOf := func(fi int) *mir.CFG {
		if c, ok := cfgCache[fi]; ok {
			return c
		}
		c := mir.BuildCFG(&m.Functions[fi])
		cfgCache[fi] = c
		return c
	}
	for i := range res.Sites {
		sa := &res.Sites[i]
		if !sa.Recovers() {
			continue
		}
		checks := branchPos[sa.Site.ID]
		if len(checks) == 0 {
			return fmt.Errorf("site %d (%v) recovers but has no failure check", sa.Site.ID, sa.Site.Kind)
		}
		if sa.Interproc.Selected {
			// The site's checkpoints live in callers; require that every
			// final point is outside the site's own function.
			for _, p := range sa.Points {
				if p.Fn == sa.Site.Pos.Fn {
					return fmt.Errorf("site %d is inter-procedural but keeps point %v in its own function", sa.Site.ID, p)
				}
			}
			continue
		}
		// Owning-checkpoint positions in the site's (transformed) function.
		var owned []mir.Pos
		for _, cp := range res.Checkpoints {
			if serves(cp, sa.Site.ID) {
				if ps := cpPos[cp.ID]; len(ps) == 1 && ps[0].Fn == sa.Site.Pos.Fn {
					owned = append(owned, ps[0])
				}
			}
		}
		for _, chk := range checks {
			if uncoveredPathExists(cfgOf(chk.Fn), owned, chk) {
				return fmt.Errorf("site %d: a path from entry reaches its failure check at %v without crossing any of its checkpoints", sa.Site.ID, chk)
			}
		}
	}
	return nil
}

// uncoveredPathExists reports whether some CFG path from the function
// entry reaches the check position without executing any of the given
// checkpoint positions first.
func uncoveredPathExists(cfg *mir.CFG, cps []mir.Pos, chk mir.Pos) bool {
	cpBefore := func(block, limit int) bool {
		for _, p := range cps {
			if p.Block == block && p.Index < limit {
				return true
			}
		}
		return false
	}
	cpAny := func(block int) bool { return cpBefore(block, int(^uint(0)>>1)) }

	// DFS over blocks; a block is traversable when it contains no owning
	// checkpoint (entering at index 0 and leaving via its terminator).
	seen := make([]bool, len(cfg.Succs))
	var stack []int
	visit := func(b int) bool {
		// Arriving at the start of block b: does the check sit here,
		// reachable before any checkpoint in this block?
		if b == chk.Block {
			if !cpBefore(b, chk.Index) {
				return true
			}
			// The check is shielded within this block; the path ends.
			return false
		}
		if !cpAny(b) && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
		return false
	}
	if visit(0) {
		return true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Succs[b] {
			if visit(s) {
				return true
			}
		}
	}
	return false
}

func serves(cp analysis.Checkpoint, siteID int) bool {
	for _, id := range cp.SiteIDs {
		if id == siteID {
			return true
		}
	}
	return false
}
