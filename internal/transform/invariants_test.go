package transform

import (
	"strings"
	"testing"

	"conair/internal/analysis"
	"conair/internal/mir"
)

// Every benchmark-scale transformed module must satisfy the recovery
// invariants; the per-case transform tests cover small shapes, this one
// exercises a multi-path module with shared and per-path checkpoints.
func TestInvariantsMultiPath(t *testing.T) {
	src := `
global g = 0
global c = 0
func main() {
entry:
  %cv = loadg @c
  br %cv, dirty, clean
dirty:
  storeg @g, 1
  %a = loadg @g
  jmp check
clean:
  %a = loadg @g
  jmp check
check:
  assert %a, "a"
  ret
}`
	out, res := harden(t, src, defaults(), Options{})
	if err := CheckInvariants(out, res); err != nil {
		t.Fatalf("multi-path invariants: %v", err)
	}
	// The site has two reexecution points (entry + after the store);
	// neither alone dominates the check, but together they form a cut.
	if res.StaticReexecPoints() != 2 {
		t.Fatalf("points = %d, want 2", res.StaticReexecPoints())
	}
}

func TestInvariantsCatchMissingCheckpoint(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  %e = loadg @flag
  assert %e, "e"
  ret
}`
	m := mir.MustParse(src)
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := Apply(m, res, Options{})
	// Sabotage: strip the checkpoint.
	f := &out.Functions[0]
	for bi := range f.Blocks {
		var kept []mir.Instr
		for _, in := range f.Blocks[bi].Instrs {
			if in.Op != mir.OpCheckpoint {
				kept = append(kept, in)
			}
		}
		f.Blocks[bi].Instrs = kept
	}
	if err := CheckInvariants(out, res); err == nil {
		t.Fatal("missing checkpoint must fail the invariant check")
	}
}

func TestInvariantsCatchBrokenRecoveryBlock(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  %e = loadg @flag
  assert %e, "e"
  ret
}`
	m := mir.MustParse(src)
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := Apply(m, res, Options{})
	// Sabotage: turn the rollback into a nop, leaving a recovery block
	// whose first instruction is wrong.
	found := false
	f := &out.Functions[0]
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			if f.Blocks[bi].Instrs[ii].Op == mir.OpRollback {
				f.Blocks[bi].Instrs[ii] = mir.Instr{Op: mir.OpNop, Dst: -1}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no rollback to sabotage")
	}
	if err := CheckInvariants(out, res); err == nil {
		t.Fatal("broken recovery block must fail the invariant check")
	}
}

func TestInvariantsOnEveryFailureKind(t *testing.T) {
	src := `
global g = 1
global L0 = 0
global L = 0
global gp = 0
func main() {
entry:
  %a = loadg @g
  assert %a, "a"
  oracle %a, "o"
  output "v", %a
  %p = loadg @gp
  %v = load %p
  store %p, %v
  %p0 = addrg @L0
  lock %p0
  %p1 = addrg @L
  lock %p1
  unlock %p1
  unlock %p0
  ret
}`
	out, res := harden(t, src, defaults(), Options{})
	if err := CheckInvariants(out, res); err != nil {
		t.Fatalf("mixed-kind invariants: %v", err)
	}
	text := mir.Print(out)
	if !strings.Contains(text, "timedlock") {
		t.Error("expected a converted deadlock site")
	}
}
