package transform

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"conair/internal/analysis"
	"conair/internal/mir"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// The transformed output for a representative program is pinned as a
// golden file, so unintended changes to the emitted recovery code show up
// as a readable diff. Regenerate deliberately with:
//
//	go test ./internal/transform -run Golden -update-golden
func TestGoldenTransform(t *testing.T) {
	src := `
module golden
global flag = 0
global gp = 0
global L0 = 0
global L = 0

func main() {
entry:
  %e = loadg @flag
  assert %e, "flag"
  %p = loadg @gp
  %v = load %p
  %p0 = addrg @L0
  lock %p0
  %p1 = addrg @L
  lock %p1
  unlock %p1
  unlock %p0
  output "v", %v
  ret 0
}
`
	m := mir.MustParse(src)
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := mir.Print(Apply(m, res, Options{}))

	path := filepath.Join("testdata", "golden_transform.mir")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("transformed output changed; diff against %s:\n--- got ---\n%s", path, got)
	}
}
