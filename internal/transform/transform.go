// Package transform implements ConAir's code transformation (paper §3.3
// and §4.1): it rewrites an analyzed MIR module so that the hardened
// program recovers from concurrency-bug failures by single-threaded
// idempotent reexecution.
//
// At every reexecution point a checkpoint instruction is planted (the
// setjmp plus thread-local region counter of Figure 6). At every surviving
// failure site the failing operation is turned into an explicit check that
// branches to a recovery block containing a bounded rollback (the
// longjmp retry loop of Figure 6):
//
//   - assert %e           →  br %e, cont, recover;
//     recover: rollback; fail assert
//   - oracle %e           →  same, failing as wrong-output
//   - %v = load %p        →  %ok = gt %p, LowerBound; br %ok, cont, recover;
//     recover: rollback; jmp cont   (exhausted retries
//     fall into the real dereference, Figure 5c)
//   - lock %m             →  %r = timedlock %m; br %r, cont, recover;
//     recover: sleeprand; rollback; fail deadlock
//     (the sleeprand is the livelock-avoidance random
//     backoff of §3.3)
//
// The transformation is purely IR→IR: the input module is cloned, blocks
// are rebuilt with checkpoints and guards, and recovery blocks are
// appended. Branch targets stay valid because block indices never shift.
// Compensation for allocations and lock acquisitions inside reexecution
// regions (§4.1) is performed by the interpreter at rollback, driven by
// the checkpoints' region counters, so no extra instrumentation is needed
// here.
package transform

import (
	"fmt"
	"sort"

	"conair/internal/analysis"
	"conair/internal/interp"
	"conair/internal/mir"
)

// Options tunes the planted recovery code.
type Options struct {
	// MaxRetry bounds recovery attempts per failure site (the paper's
	// maxRetryNum, default one million).
	MaxRetry int64
	// LockTimeout is the timed-lock timeout in interpreter steps for
	// converted deadlock sites.
	LockTimeout int
	// LivelockBackoff is the bound of the random sleep planted at
	// deadlock failure sites.
	LivelockBackoff int64
}

// Defaults mirror the paper's configuration.
const (
	DefaultMaxRetry        = int64(1_000_000)
	DefaultLockTimeout     = 400
	DefaultLivelockBackoff = int64(32)
)

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxRetry <= 0 {
		out.MaxRetry = DefaultMaxRetry
	}
	if out.LockTimeout <= 0 {
		out.LockTimeout = DefaultLockTimeout
	}
	if out.LivelockBackoff <= 0 {
		out.LivelockBackoff = DefaultLivelockBackoff
	}
	return out
}

// Apply rewrites module m according to the analysis result, returning the
// hardened clone. The input module is left untouched.
func Apply(m *mir.Module, res *analysis.Result, opts Options) *mir.Module {
	opts = opts.withDefaults()
	out := m.Clone()

	// Group checkpoint plants and site rewrites by function.
	type siteRewrite struct {
		sa *analysis.SiteAnalysis
	}
	checkpointsByFn := map[int][]analysis.Checkpoint{}
	for _, cp := range res.Checkpoints {
		checkpointsByFn[cp.Pos.Fn] = append(checkpointsByFn[cp.Pos.Fn], cp)
	}
	rewritesByFn := map[int][]*analysis.SiteAnalysis{}
	for i := range res.Sites {
		sa := &res.Sites[i]
		if sa.Recovers() {
			rewritesByFn[sa.Site.Pos.Fn] = append(rewritesByFn[sa.Site.Pos.Fn], sa)
		}
	}

	for fi := range out.Functions {
		cps := checkpointsByFn[fi]
		rws := rewritesByFn[fi]
		if len(cps) == 0 && len(rws) == 0 {
			continue
		}
		rewriteFunction(&out.Functions[fi], cps, rws, opts)
	}
	return out
}

// rewriteFunction rebuilds every block of f, planting checkpoints and
// rewriting failure sites. New recovery and continuation blocks are
// appended after the original blocks so original block indices (and hence
// branch targets) stay valid.
func rewriteFunction(f *mir.Function, cps []analysis.Checkpoint,
	rws []*analysis.SiteAnalysis, opts Options) {

	// Per original (block, index): checkpoints to plant before it and the
	// site rewrite to apply to it.
	cpAt := map[[2]int][]int{} // (block, index) -> checkpoint IDs
	for _, cp := range cps {
		key := [2]int{cp.Pos.Block, cp.Pos.Index}
		cpAt[key] = append(cpAt[key], cp.ID)
	}
	for k := range cpAt {
		sort.Ints(cpAt[k])
	}
	rwAt := map[[2]int]*analysis.SiteAnalysis{}
	for _, sa := range rws {
		rwAt[[2]int{sa.Site.Pos.Block, sa.Site.Pos.Index}] = sa
	}

	nOrig := len(f.Blocks)
	newBlocks := make([]mir.Block, nOrig, nOrig+2*len(rws))

	// Blocks with no checkpoint plant and no site rewrite carry over
	// verbatim; only touched blocks pay the instruction-by-instruction
	// rebuild below. Hardened modules touch a handful of blocks, so this
	// skips the bulk of the copy work.
	touched := make([]bool, nOrig)
	for k := range cpAt {
		touched[k[0]] = true
	}
	for k := range rwAt {
		touched[k[0]] = true
	}

	// newReg appends a fresh compiler temporary.
	newReg := func(name string) int {
		f.RegNames = append(f.RegNames, name)
		return len(f.RegNames) - 1
	}
	// appendBlock adds a block after the originals and returns its index.
	// Deliberately no capacity pre-sizing: a block split by several sites
	// would over-allocate the full remainder per split, which costs more
	// than incremental append growth.
	appendBlock := func(name string) int {
		newBlocks = append(newBlocks, mir.Block{Name: name})
		return len(newBlocks) - 1
	}

	for bi := 0; bi < nOrig; bi++ {
		if !touched[bi] {
			// The function was cloned by Apply, so reusing the block (and
			// its instruction slice) wholesale is safe.
			newBlocks[bi] = f.Blocks[bi]
			continue
		}
		src := f.Blocks[bi].Instrs
		curName := f.Blocks[bi].Name
		newBlocks[bi].Name = curName

		// Everything emitted while rebuilding this block lands in one
		// shared buffer; a site rewrite redirects subsequent emits into its
		// continuation block by starting a new segment. The buffer is
		// sliced into the per-block instruction lists only once it is
		// complete, so one allocation (plus rare growth) replaces the
		// per-block append churn this loop used to pay.
		type segment struct{ block, start int }
		buf := make([]mir.Instr, 0, len(src)+8)
		segs := []segment{{bi, 0}}
		emit := func(in mir.Instr) {
			buf = append(buf, in)
		}
		startSegment := func(block int) {
			segs = append(segs, segment{block, len(buf)})
		}

		for ii := 0; ii < len(src); ii++ {
			for _, cpID := range cpAt[[2]int{bi, ii}] {
				emit(mir.Instr{Op: mir.OpCheckpoint, Dst: -1, Site: cpID})
			}
			sa := rwAt[[2]int{bi, ii}]
			if sa == nil {
				emit(src[ii])
				continue
			}

			site := sa.Site
			in := src[ii]
			label := fmt.Sprintf("%s.s%d", curName, site.ID)
			switch site.Kind {
			case analysis.SiteAssert, analysis.SiteWrongOutput:
				// Figure 6: the assert's condition becomes a branch; the
				// recovery block retries, then really fails.
				failKind := mir.FailAssert
				if site.Kind == analysis.SiteWrongOutput {
					failKind = mir.FailWrongOutput
				}
				recover := appendBlock(label + ".recover")
				cont := appendBlock(label + ".cont")
				emit(mir.Instr{
					Op: mir.OpBr, Dst: -1, A: in.A,
					Then: cont, Else: recover, Site: site.ID,
				})
				newBlocks[recover].Instrs = []mir.Instr{
					{Op: mir.OpRollback, Dst: -1, Site: site.ID, MaxRetry: opts.MaxRetry},
					{Op: mir.OpFail, Dst: -1, FailKind: failKind, Site: site.ID, Text: in.Text},
				}
				startSegment(cont)

			case analysis.SiteSegfault:
				// Figure 5c: pointer sanity check; exhausted retries fall
				// into the real dereference.
				ok := newReg(fmt.Sprintf(".ok%d", site.ID))
				recover := appendBlock(label + ".recover")
				cont := appendBlock(label + ".cont")
				emit(mir.Instr{
					Op: mir.OpBin, Bin: mir.BinGt, Dst: ok,
					A: in.A, B: mir.Imm(interp.LowerBound),
				})
				emit(mir.Instr{
					Op: mir.OpBr, Dst: -1, A: mir.Reg(ok),
					Then: cont, Else: recover, Site: site.ID,
				})
				newBlocks[recover].Instrs = []mir.Instr{
					{Op: mir.OpRollback, Dst: -1, Site: site.ID, MaxRetry: opts.MaxRetry},
					{Op: mir.OpJmp, Dst: -1, Then: cont},
				}
				startSegment(cont)
				deref := in
				deref.Site = site.ID
				emit(deref)

			case analysis.SiteDeadlock:
				// Figure 5d: the blocking acquisition becomes its timed
				// form — lock → timedlock, wait → timed wait, chsend →
				// timed chsend — and a timeout enters recovery with random
				// backoff against livelock. The timed wait leaves its mutex
				// released on timeout, so the rollback re-executes the
				// (compensated) lock, the predicate check and the wait from
				// scratch; the timed send re-checks whatever shared
				// condition stopped the peer from receiving.
				got := newReg(fmt.Sprintf(".lk%d", site.ID))
				recover := appendBlock(label + ".recover")
				cont := appendBlock(label + ".cont")
				timed := mir.Instr{
					Op: mir.OpTimedLock, Dst: got, A: in.A,
					Timeout: opts.LockTimeout, Site: site.ID,
				}
				switch in.Op {
				case mir.OpWait, mir.OpChSend:
					timed.Op = in.Op
					timed.B = in.B
				}
				emit(timed)
				failText := "lock acquisition timed out after exhausted recovery"
				switch in.Op {
				case mir.OpWait:
					failText = "condition wait timed out after exhausted recovery"
				case mir.OpChSend:
					failText = "channel send timed out after exhausted recovery"
				}
				emit(mir.Instr{
					Op: mir.OpBr, Dst: -1, A: mir.Reg(got),
					Then: cont, Else: recover, Site: site.ID,
				})
				newBlocks[recover].Instrs = []mir.Instr{
					{Op: mir.OpSleepRand, Dst: -1, A: mir.Imm(opts.LivelockBackoff)},
					{Op: mir.OpRollback, Dst: -1, Site: site.ID, MaxRetry: opts.MaxRetry},
					{Op: mir.OpFail, Dst: -1, FailKind: mir.FailDeadlock, Site: site.ID,
						Text: failText},
				}
				startSegment(cont)
			}
		}
		// A checkpoint may be addressed at one past the last position of a
		// block only if the block's terminator was a destroyer, which
		// terminators never are; nothing to flush.

		// Slice the finished buffer into the rebuilt blocks. Three-index
		// expressions keep the segments from ever sharing append capacity.
		for k, s := range segs {
			end := len(buf)
			if k+1 < len(segs) {
				end = segs[k+1].start
			}
			newBlocks[s.block].Instrs = buf[s.start:end:end]
		}
	}
	f.Blocks = newBlocks
}
