package baseline

import (
	"testing"

	"conair/internal/bugs"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

func TestRestartRecoversForcedBug(t *testing.T) {
	b := bugs.ByName("ZSNES")
	failing := b.Program(bugs.Config{Light: true, ForceBug: true})
	clean := b.Program(bugs.Config{Light: true})
	r := Restart(failing, clean, 3, 5_000_000)
	if !r.Recovered {
		t.Fatal("restart rerun should complete")
	}
	if r.StepsToFailure <= 0 || r.RerunSteps <= 0 {
		t.Errorf("degenerate measurement: %+v", r)
	}
	if r.TotalSteps != r.StepsToFailure+r.RerunSteps {
		t.Errorf("total mismatch: %+v", r)
	}
}

func TestCheckpointBaselineCompletesCleanRun(t *testing.T) {
	src := `
global g = 0
func main() {
entry:
  %i = const 0
  jmp loop
loop:
  %v = loadg @g
  %v1 = add %v, 1
  storeg @g, %v1
  %i1 = add %i, 1
  %i = add %i1, 0
  %c = lt %i, 2000
  br %c, loop, out
out:
  %r = loadg @g
  ret %r
}`
	m := mir.MustParse(src)
	r := RunCheckpointed(m, CheckpointConfig{Interval: 1000, Seed: 1})
	if !r.Completed {
		t.Fatal("clean run should complete under the checkpoint baseline")
	}
	if r.Snapshots < 2 {
		t.Errorf("snapshots = %d, want several", r.Snapshots)
	}
	if r.SnapshotStepCost <= 0 {
		t.Error("snapshot cost should be charged")
	}
	if r.Rollbacks != 0 {
		t.Errorf("clean run rolled back %d times", r.Rollbacks)
	}
	// Overhead must grow as the interval shrinks (Figure 4's trade-off).
	r2 := RunCheckpointed(m, CheckpointConfig{Interval: 100, Seed: 1})
	if r2.SnapshotStepCost <= r.SnapshotStepCost {
		t.Errorf("denser checkpoints should cost more: %d vs %d",
			r2.SnapshotStepCost, r.SnapshotStepCost)
	}
}

func TestCheckpointBaselineRecoversOrderViolation(t *testing.T) {
	// An order violation the baseline can survive: the failing thread
	// read too early; after rollback + perturbation the initializer wins
	// the race.
	src := `
global flag = 0
func reader() {
entry:
  %v = loadg @flag
  assert %v, "read too early"
  ret
}
func initf() {
entry:
  sleep 400
  storeg @flag, 1
  ret
}
func main() {
entry:
  %ti = spawn initf()
  %tr = spawn reader()
  join %tr
  join %ti
  ret 0
}`
	m := mir.MustParse(src)
	// Unprotected, it fails.
	plain := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed {
		t.Fatal("unprotected run should fail")
	}
	r := RunCheckpointed(m, CheckpointConfig{Interval: 50, Seed: 1, PerturbBound: 600})
	if !r.Completed {
		t.Fatalf("checkpoint baseline failed to recover: %+v", r)
	}
	if r.Rollbacks == 0 {
		t.Error("expected at least one rollback")
	}
	if r.RecoverySteps <= 0 {
		t.Errorf("recovery steps = %d, want > 0", r.RecoverySteps)
	}
}

func TestCheckpointBaselineRecoversDeadlock(t *testing.T) {
	b := bugs.ByName("SQLite")
	m := b.Program(bugs.Config{Light: true, ForceBug: true})
	r := RunCheckpointed(m, CheckpointConfig{
		Interval: 400, Seed: 2, PerturbBound: 800, MaxSteps: 10_000_000,
	})
	if !r.Completed {
		t.Fatalf("checkpoint baseline failed on deadlock: %+v", r)
	}
	if r.Rollbacks == 0 {
		t.Error("deadlock recovery requires rollbacks")
	}
}

func TestCheckpointGivesUpAfterMaxRecoveries(t *testing.T) {
	// A deterministic failure: no perturbation can help.
	src := `
func main() {
entry:
  %z = const 0
  assert %z, "always fails"
  ret
}`
	m := mir.MustParse(src)
	r := RunCheckpointed(m, CheckpointConfig{Interval: 10, MaxRecoveries: 3, Seed: 1})
	if r.Completed {
		t.Fatal("deterministic failure must not be recoverable")
	}
	if r.Rollbacks != 3 {
		t.Errorf("rollbacks = %d, want 3", r.Rollbacks)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := `
global g = 1
func main() {
entry:
  storeg @g, 2
  %h = alloc 4
  store %h, 42
  storeg @g, 3
  %v = load %h
  ret %v
}`
	m := mir.MustParse(src)
	vm := interp.New(m, interp.Config{Sched: sched.NewRandom(1)})
	// Run two steps, snapshot, run to completion, restore, rerun.
	vm.StepOnce()
	vm.StepOnce()
	snap := vm.TakeSnapshot()
	if snap.Words <= 0 {
		t.Error("snapshot should report copied words")
	}
	for vm.StepOnce() {
	}
	first := vm.Finish()
	if !first.Completed || first.ExitCode != 42 {
		t.Fatalf("first finish: %+v", first)
	}
	vm.RestoreSnapshot(snap)
	for vm.StepOnce() {
	}
	second := vm.Finish()
	if !second.Completed || second.ExitCode != 42 {
		t.Fatalf("replay after restore: %+v", second)
	}
}
