// Package baseline implements the traditional recovery techniques ConAir
// is compared against:
//
//   - whole-program RESTART (Table 7's comparison column): when the
//     program fails, run it again from the beginning;
//   - whole-program CHECKPOINT/ROLLBACK (the Rx/ASSURE/Frost family the
//     introduction discusses, and the right-hand end of Figure 4's
//     reexecution-region design spectrum): periodically snapshot the
//     entire memory state of all threads, and on failure restore the
//     latest snapshot and reexecute with perturbed timing.
//
// Both run on the same interpreter as ConAir, so costs are directly
// comparable: restart pays the whole execution again; checkpointing pays a
// copy of the whole mutable state every interval (charged in virtual steps
// at a configurable words-per-step rate, since copying state is not free
// on any real system) plus multi-thread rollback on failure; ConAir pays a
// register-image save per reexecution point and rolls back one thread.
package baseline

import (
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// RestartResult reports a restart-recovery measurement.
type RestartResult struct {
	// StepsToFailure is the forced run's cost until the failure was
	// detected (work lost by restarting).
	StepsToFailure int64
	// RerunSteps is the cost of the full fresh execution.
	RerunSteps int64
	// TotalSteps is the end-to-end cost of recovering by restart.
	TotalSteps int64
	// Recovered reports that the rerun completed.
	Recovered bool
}

// Restart measures recovery-by-restart: run the failing program until it
// fails, then run the clean program from scratch (the restarted execution,
// in which the non-deterministic interleaving does not recur). Seeds make
// the measurement reproducible.
func Restart(failing, clean *mir.Module, seed int64, maxSteps int64) RestartResult {
	var out RestartResult
	r1 := interp.RunModule(failing, interp.Config{
		Sched: sched.NewRandom(seed), MaxSteps: maxSteps,
	})
	out.StepsToFailure = r1.Stats.Steps
	r2 := interp.RunModule(clean, interp.Config{
		Sched: sched.NewRandom(seed + 1), MaxSteps: maxSteps,
	})
	out.RerunSteps = r2.Stats.Steps
	out.TotalSteps = out.StepsToFailure + out.RerunSteps
	out.Recovered = r2.Completed
	return out
}

// CheckpointConfig tunes the whole-program checkpoint/rollback baseline.
type CheckpointConfig struct {
	// Interval is the distance between snapshots in steps.
	Interval int64
	// CostWordsPerStep converts copied state words into charged virtual
	// steps (higher = cheaper checkpoints). Default 8.
	CostWordsPerStep int64
	// KeepSnapshots is how many recent snapshots are retained; repeated
	// failures restore progressively older ones (escaping states that
	// already committed to the failure). Default 4.
	KeepSnapshots int
	// MaxRecoveries bounds rollback attempts. Default 64.
	MaxRecoveries int
	// PerturbBound is the maximum timing perturbation injected into the
	// failing thread after a rollback (Rx-style environment change).
	// Default 512 steps.
	PerturbBound int64
	// Seed drives the scheduler and perturbation.
	Seed int64
	// MaxSteps bounds the whole attempt.
	MaxSteps int64
}

func (c *CheckpointConfig) withDefaults() CheckpointConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 10_000
	}
	if out.CostWordsPerStep <= 0 {
		out.CostWordsPerStep = 8
	}
	if out.KeepSnapshots <= 0 {
		out.KeepSnapshots = 4
	}
	if out.MaxRecoveries <= 0 {
		out.MaxRecoveries = 64
	}
	if out.PerturbBound <= 0 {
		out.PerturbBound = 512
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = 50_000_000
	}
	return out
}

// CheckpointResult reports a whole-program checkpoint/rollback run.
type CheckpointResult struct {
	// Completed reports eventual success.
	Completed bool
	// Steps is the total virtual time, including charged checkpoint cost.
	Steps int64
	// Snapshots is how many whole-state snapshots were taken.
	Snapshots int64
	// SnapshotStepCost is the virtual time charged for copying state.
	SnapshotStepCost int64
	// Rollbacks is how many failures were recovered by restoring.
	Rollbacks int64
	// RecoverySteps is the virtual time between the first failure and
	// final success (0 when no failure occurred).
	RecoverySteps int64
}

// RunCheckpointed executes m under the whole-program checkpoint/rollback
// baseline.
func RunCheckpointed(m *mir.Module, cfg CheckpointConfig) CheckpointResult {
	cfg = cfg.withDefaults()
	var out CheckpointResult

	sch := sched.NewRandom(cfg.Seed)
	vm := interp.New(m, interp.Config{Sched: sch, MaxSteps: cfg.MaxSteps})

	var snaps []*interp.Snapshot
	take := func() {
		s := vm.TakeSnapshot()
		out.Snapshots++
		cost := s.Words / cfg.CostWordsPerStep
		if cost < 1 {
			cost = 1
		}
		vm.AdvanceSteps(cost)
		out.SnapshotStepCost += cost
		snaps = append(snaps, s)
		if len(snaps) > cfg.KeepSnapshots {
			// Keep the initial snapshot forever: it is the only state
			// guaranteed to predate whatever committed to the failure;
			// rotate the rest.
			snaps = append(snaps[:1], snaps[2:]...)
		}
	}

	take() // initial checkpoint, so rollback is always possible
	nextAt := vm.Steps() + cfg.Interval
	recoveries := 0
	var firstFailureStep int64 = -1

	// A perturbation may target a thread that does not exist yet after the
	// rollback (the snapshot can predate its spawn); keep it pending and
	// apply it once the thread is runnable.
	pendTID, pendDelay := -1, int64(0)

	for {
		if pendTID >= 0 && vm.PerturbThread(pendTID, pendDelay) {
			pendTID = -1
		}
		if !vm.StepOnce() {
			f := vm.CurrentFailure()
			if f == nil {
				break // completed
			}
			if recoveries >= cfg.MaxRecoveries || len(snaps) == 0 {
				break // give up: report the failure
			}
			if firstFailureStep < 0 {
				firstFailureStep = f.Step
			}
			// Restore: first retries use the newest snapshot; repeated
			// failures walk back to older ones.
			idx := len(snaps) - 1 - (recoveries % len(snaps))
			snap := snaps[idx]
			// Rx-style timing perturbation so the reexecution diverges.
			// A hang implicates no single thread, so perturb a random
			// participant.
			failTID := f.Thread
			if failTID < 0 {
				failTID = sch.Intn(max(vm.NumThreads(), 1))
			}
			vm.RestoreSnapshot(snap)
			// Restoring state costs a copy too.
			cost := snap.Words / cfg.CostWordsPerStep
			if cost < 1 {
				cost = 1
			}
			vm.AdvanceSteps(cost)
			out.SnapshotStepCost += cost
			pendTID = failTID
			pendDelay = 1 + int64(sch.Intn(int(cfg.PerturbBound)))
			recoveries++
			out.Rollbacks++
			nextAt = vm.Steps() + cfg.Interval
			continue
		}
		if vm.Steps() >= nextAt {
			take()
			nextAt = vm.Steps() + cfg.Interval
		}
	}

	res := vm.Finish()
	out.Completed = res.Completed
	out.Steps = vm.Steps()
	if firstFailureStep >= 0 && out.Completed {
		out.RecoverySteps = out.Steps - firstFailureStep
	}
	return out
}
