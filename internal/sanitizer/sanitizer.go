// Package sanitizer implements dynamic concurrency-bug detection over the
// interpreter's sanitizer hook (interp.Config.Sanitizer):
//
//   - a happens-before data-race detector: per-thread vector clocks
//     advanced on spawn, join and lock release→acquire edges, checked
//     against per-location read/write shadow state covering globals and
//     heap words;
//   - a lock-order deadlock predictor (Goodlock-style): lock-order edges
//     "held A while acquiring B" collected per thread, with inverted
//     pairs reported when the two acquisitions are concurrent under the
//     fork/join-only happens-before relation and share no gate lock.
//
// Detection is entirely passive: the sanitizer never mutates interpreter
// state, so a sanitized run is bit-identical to an unsanitized one.
//
// Race reports are sound for the observed schedule (no false positives on
// correctly synchronized programs); which races are observed depends on
// the schedule, which is why the experiment harness searches over PCT
// schedules. Deadlock reports are predictive: a lock-order inversion is
// reported even when the observed run did not actually deadlock, as long
// as fork/join ordering (the only ordering hardening preserves) does not
// rule the interleaving out. Cycles through timed acquisitions are not
// reported — a timed lock self-resolves, which is exactly how ConAir's
// hardening neutralizes a deadlock site.
//
// Sanitizer is the production detector, organized FastTrack-style for
// speed: shadow state for globals lives in a flat array indexed by global
// slot (the map survives only for heap addresses), owned-cell accesses
// resolve against the last-access epoch without touching any other
// thread's clock, release clocks live in one grow-only arena, and
// Reset(mod) recycles the whole structure across runs with zero
// steady-state allocation. Reference is the original map-based detector,
// kept as the differential-testing oracle; the two must produce identical
// reports on every trace.
package sanitizer

import (
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
)

// DefaultMaxReports bounds the report list; detection state keeps updating
// after the cap so clocks stay correct, but further reports are counted
// rather than stored.
const DefaultMaxReports = 100

// Sanitizer is the detector state for one interpreter run. Create with
// New, pass as interp.Config.Sanitizer, then call Finish (or Reports)
// after the run; Reset makes it reusable for the next run. Not safe for
// concurrent use; the interpreter is a single-goroutine VM, so the hooks
// are naturally serialized.
type Sanitizer struct {
	reporter

	// clocks is the full happens-before vector clock per thread id
	// (spawn, join, and lock release→acquire edges). fclocks tracks only
	// fork/join edges — the ordering that is schedule-independent — and
	// drives deadlock prediction. A zero-length clock marks a thread id
	// not yet announced this run; capacity persists across Reset.
	clocks  [][]int64
	fclocks [][]int64

	// rel holds the release clocks for the four publish/join channels
	// (lock release→acquire, condvar signal→wake, channel send→recv,
	// cas→cas). Each class splits global addresses into a flat
	// slot-indexed slice and keeps a map only for heap addresses; the
	// clock words themselves live in the shared arena.
	rel   [relClasses]relClass
	arena []int64

	// held is each thread's current lock set in acquisition order,
	// indexed by tid (grown alongside clocks).
	held [][]heldLock

	// gshadow is the flat per-global shadow state, indexed by global
	// slot; hshadow covers heap addresses. freeCells recycles heap cells
	// across Reset so a steady-state run allocates nothing.
	gshadow   []cell
	globalEnd mir.Word
	hshadow   map[mir.Word]*cell
	freeCells []*cell

	edges    []lockEdge
	edgeSeen map[edgeKey]struct{}

	// dlHead/dlNext index edges by (from,to) for Finish: dlHead holds the
	// first edge index+1 per pair, dlNext chains the rest in ascending
	// edge order (0 terminates).
	dlHead map[[2]mir.Word]int32
	dlNext []int32

	accesses int64
	syncOps  int64
	fastHits int64
	vcJoins  int64
	finished bool
}

// New returns a sanitizer for a run of mod; the module is used only to
// resolve global names and positions in reports.
func New(mod *mir.Module) *Sanitizer {
	s := &Sanitizer{}
	s.MaxReports = DefaultMaxReports
	s.Reset(mod)
	return s
}

var _ interp.Sanitizer = (*Sanitizer)(nil)

// relClass indices into Sanitizer.rel.
const (
	relLock = iota
	relCond
	relChan
	relCAS
	relClasses
)

// relRef locates one address's release clock inside the arena. n is the
// live clock length (0 = never published); cap is the region size, with
// slack so a republish after a few thread spawns stays in place.
type relRef struct {
	off, n, cap int32
}

// relClass is one publish/join channel's release-clock directory.
type relClass struct {
	glob []relRef // by global slot
	heap map[mir.Word]relRef
}

func (c *relClass) reset(nglobals int) {
	if cap(c.glob) < nglobals {
		c.glob = make([]relRef, nglobals)
	} else {
		c.glob = c.glob[:nglobals]
		for i := range c.glob {
			c.glob[i] = relRef{}
		}
	}
	if c.heap == nil {
		c.heap = map[mir.Word]relRef{}
	} else {
		clear(c.heap)
	}
}

type heldLock struct {
	addr  mir.Word
	timed bool
	pos   mir.Pos
}

// epoch is one access in shadow state: the acquiring thread's own clock
// component at access time, plus the position for reporting.
type epoch struct {
	tid int
	clk int64
	pos mir.Pos
}

// cell is the per-address shadow state: the last write plus one read entry
// per thread (same-thread reads replace, bounding growth at thread count).
type cell struct {
	w     epoch
	reads []epoch
	hasW  bool
}

// lockEdge records "tid held from while acquiring to". fvc snapshots the
// thread's fork/join clock and heldAt its lock set at that moment.
type lockEdge struct {
	from, to       mir.Word
	tid            int
	timed          bool
	fvc            []int64
	heldAt         []mir.Word
	fromPos, toPos mir.Pos
}

type edgeKey struct {
	from, to mir.Word
	tid      int
}

// Reset clears the sanitizer for a fresh run of mod, reusing every slice
// capacity, map bucket, arena region and recycled heap cell from previous
// runs. After the first run of a program shape, subsequent Reset+run
// cycles are allocation-free, which is what lets SanitizeSearch drive one
// pooled sanitizer across an entire seed sweep.
func (s *Sanitizer) Reset(mod *mir.Module) {
	nglobals := 0
	if mod != nil {
		nglobals = len(mod.Globals)
	}
	s.resetReports(mod)
	s.globalEnd = interp.GlobalBase + mir.Word(nglobals)

	for i := range s.clocks {
		s.clocks[i] = s.clocks[i][:0]
		s.fclocks[i] = s.fclocks[i][:0]
		s.held[i] = s.held[i][:0]
	}

	if cap(s.gshadow) < nglobals {
		s.gshadow = make([]cell, nglobals)
	} else {
		s.gshadow = s.gshadow[:nglobals]
		for i := range s.gshadow {
			s.gshadow[i].hasW = false
			s.gshadow[i].reads = s.gshadow[i].reads[:0]
		}
	}
	if s.hshadow == nil {
		s.hshadow = map[mir.Word]*cell{}
	} else {
		for _, c := range s.hshadow {
			c.hasW = false
			c.reads = c.reads[:0]
			s.freeCells = append(s.freeCells, c)
		}
		clear(s.hshadow)
	}

	s.arena = s.arena[:0]
	for i := range s.rel {
		s.rel[i].reset(nglobals)
	}

	s.edges = s.edges[:0]
	if s.edgeSeen == nil {
		s.edgeSeen = map[edgeKey]struct{}{}
	} else {
		clear(s.edgeSeen)
	}
	clear(s.dlHead)
	s.dlNext = s.dlNext[:0]

	s.accesses, s.syncOps = 0, 0
	s.fastHits, s.vcJoins = 0, 0
	s.finished = false
}

// ---------------------------------------------------------------- clocks

func (s *Sanitizer) thread(tid int) {
	for tid >= len(s.clocks) {
		s.clocks = append(s.clocks, nil)
		s.fclocks = append(s.fclocks, nil)
		s.held = append(s.held, nil)
	}
	if len(s.clocks[tid]) == 0 {
		s.clocks[tid] = initClock(s.clocks[tid], tid)
		s.fclocks[tid] = initClock(s.fclocks[tid], tid)
	}
}

// initClock reuses vc's capacity for a fresh clock with vc[tid] = 1.
func initClock(vc []int64, tid int) []int64 {
	if cap(vc) < tid+1 {
		vc = make([]int64, tid+1)
	} else {
		vc = vc[:tid+1]
		for i := range vc {
			vc[i] = 0
		}
	}
	vc[tid] = 1
	return vc
}

// joinVC merges src into *dst pointwise (dst grows as needed).
func joinVC(dst *[]int64, src []int64) {
	d := *dst
	for len(d) < len(src) {
		d = append(d, 0)
	}
	for i, v := range src {
		if v > d[i] {
			d[i] = v
		}
	}
	*dst = d
}

func at(vc []int64, tid int) int64 {
	if tid < len(vc) {
		return vc[tid]
	}
	return 0
}

// leq reports a ≤ b pointwise.
func leq(a, b []int64) bool {
	for i, v := range a {
		if v > at(b, i) {
			return false
		}
	}
	return true
}

// concurrent reports that neither clock happens-before the other.
func concurrent(a, b []int64) bool { return !leq(a, b) && !leq(b, a) }

// ------------------------------------------------------- release clocks

// store copies vc into ref's arena region, moving to a fresh tail region
// only when the clock outgrew it (threads spawned since the last publish).
// Republishing in place is what makes steady-state release tracking
// allocation-free where the reference copies a slice per publish.
func (s *Sanitizer) store(ref relRef, vc []int64) relRef {
	n := int32(len(vc))
	if n > ref.cap {
		ref.off = int32(len(s.arena))
		ref.cap = n + 8 // slack so a few late spawns don't force a move
		if need := len(s.arena) + int(ref.cap); need <= cap(s.arena) {
			s.arena = s.arena[:need]
		} else {
			s.arena = append(s.arena, make([]int64, ref.cap)...)
		}
	}
	ref.n = n
	copy(s.arena[ref.off:int(ref.off)+int(n)], vc)
	return ref
}

func (s *Sanitizer) publish(class int, addr mir.Word, vc []int64) {
	c := &s.rel[class]
	if addr >= interp.GlobalBase && addr < s.globalEnd {
		gi := int(addr - interp.GlobalBase)
		c.glob[gi] = s.store(c.glob[gi], vc)
		return
	}
	c.heap[addr] = s.store(c.heap[addr], vc)
}

// relClock returns the published release clock for addr, or nil.
func (s *Sanitizer) relClock(class int, addr mir.Word) []int64 {
	c := &s.rel[class]
	var ref relRef
	if addr >= interp.GlobalBase && addr < s.globalEnd {
		ref = c.glob[addr-interp.GlobalBase]
	} else {
		ref = c.heap[addr]
	}
	if ref.n == 0 {
		return nil
	}
	return s.arena[ref.off : ref.off+ref.n]
}

// acquireRel joins addr's release clock (if any) into tid's clock.
func (s *Sanitizer) acquireRel(class int, tid int, addr mir.Word) {
	if rel := s.relClock(class, addr); rel != nil {
		s.vcJoins++
		joinVC(&s.clocks[tid], rel)
	}
}

// ------------------------------------------------------------------ hooks

// ThreadSpawn implements interp.Sanitizer.
func (s *Sanitizer) ThreadSpawn(parent, child int) {
	s.syncOps++
	s.thread(child)
	if parent < 0 {
		return
	}
	s.thread(parent)
	s.vcJoins += 2
	joinVC(&s.clocks[child], s.clocks[parent])
	joinVC(&s.fclocks[child], s.fclocks[parent])
	// Advance the parent past the fork so the child is ordered after the
	// parent's pre-fork effects but concurrent with its post-fork ones.
	s.clocks[parent][parent]++
	s.fclocks[parent][parent]++
}

// ThreadJoin implements interp.Sanitizer.
func (s *Sanitizer) ThreadJoin(waiter, target int) {
	s.syncOps++
	s.thread(waiter)
	s.thread(target)
	s.vcJoins += 2
	joinVC(&s.clocks[waiter], s.clocks[target])
	joinVC(&s.fclocks[waiter], s.fclocks[target])
}

// LockRequest implements interp.Sanitizer: a blocking acquisition attempt.
// Lock-order edges are recorded here as well as on success so that a run
// dying inside an actual deadlock still carries both cycle edges.
func (s *Sanitizer) LockRequest(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.recordEdges(tid, addr, timed, pos)
}

// LockAcquire implements interp.Sanitizer.
func (s *Sanitizer) LockAcquire(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.acquireRel(relLock, tid, addr)
	s.recordEdges(tid, addr, timed, pos)
	s.held[tid] = append(s.held[tid], heldLock{addr: addr, timed: timed, pos: pos})
}

// LockRelease implements interp.Sanitizer. Covers both regular unlocks and
// rollback's compensation releases.
func (s *Sanitizer) LockRelease(tid int, addr mir.Word) {
	s.syncOps++
	s.thread(tid)
	s.publish(relLock, addr, s.clocks[tid])
	s.clocks[tid][tid]++
	hs := s.held[tid]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].addr == addr {
			s.held[tid] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
}

func (s *Sanitizer) recordEdges(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	hs := s.held[tid]
	if len(hs) == 0 {
		return
	}
	for _, h := range hs {
		if h.addr == addr {
			continue
		}
		k := edgeKey{from: h.addr, to: addr, tid: tid}
		if _, dup := s.edgeSeen[k]; dup {
			continue
		}
		s.edgeSeen[k] = struct{}{}
		e := s.newEdge()
		e.from, e.to, e.tid = h.addr, addr, tid
		e.timed = timed || h.timed
		e.fvc = append(e.fvc[:0], s.fclocks[tid]...)
		e.heldAt = e.heldAt[:0]
		for _, hh := range hs {
			e.heldAt = append(e.heldAt, hh.addr)
		}
		e.fromPos, e.toPos = h.pos, pos
	}
}

// newEdge appends an edge slot, recycling the fvc/heldAt capacity of a
// slot retired by an earlier Reset when one is available.
func (s *Sanitizer) newEdge() *lockEdge {
	n := len(s.edges)
	if n < cap(s.edges) {
		s.edges = s.edges[:n+1]
	} else {
		s.edges = append(s.edges, lockEdge{})
	}
	return &s.edges[n]
}

// CondSignal implements interp.Sanitizer: a signal or broadcast publishes
// the signaller's clock on the condvar. The clock is stored even when no
// waiter consumes it (the interpreter cannot know which wait will), a
// deliberate over-approximation: a wait-return may join the clock of a
// signal it did not consume, which can only add ordering — fewer false
// positives, never more.
func (s *Sanitizer) CondSignal(tid int, cv mir.Word, broadcast bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.publish(relCond, cv, s.clocks[tid])
	s.clocks[tid][tid]++
}

// CondWake implements interp.Sanitizer: a wait that consumed a signal is
// ordered after the signaller — the signal→wait-return edge.
func (s *Sanitizer) CondWake(tid int, cv mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.acquireRel(relCond, tid, cv)
}

// ChanSend implements interp.Sanitizer: a completed send publishes the
// sender's clock on the channel (the send→recv edge's release half).
func (s *Sanitizer) ChanSend(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.publish(relChan, ch, s.clocks[tid])
	s.clocks[tid][tid]++
}

// ChanRecv implements interp.Sanitizer: a completed receive joins the
// channel's release clock — including a zero-value receive from a closed,
// drained channel, which is ordered after the close.
func (s *Sanitizer) ChanRecv(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.acquireRel(relChan, tid, ch)
}

// ChanClose implements interp.Sanitizer: close publishes like a send.
func (s *Sanitizer) ChanClose(tid int, ch mir.Word, pos mir.Pos) {
	s.ChanSend(tid, ch, pos)
}

// AtomicCAS implements interp.Sanitizer. The acquire half joins the
// address's CAS release clock BEFORE the shadow check, so two cas
// operations on the same word are always ordered (atomics never race with
// atomics); the shadow check then still catches a plain load or store
// racing the cas. Failed cas operations publish too — they are atomic
// loads, and ordering atomics totally costs nothing in precision.
func (s *Sanitizer) AtomicCAS(tid int, addr mir.Word, success bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.acquireRel(relCAS, tid, addr)
	s.Access(tid, addr, false, pos)
	if success {
		s.Access(tid, addr, true, pos)
	}
	s.publish(relCAS, addr, s.clocks[tid])
	s.clocks[tid][tid]++
}

// cellFor returns addr's shadow cell: globals resolve to the flat array
// by slot, heap addresses through the map (recycling retired cells).
func (s *Sanitizer) cellFor(addr mir.Word) *cell {
	if addr >= interp.GlobalBase && addr < s.globalEnd {
		return &s.gshadow[addr-interp.GlobalBase]
	}
	c := s.hshadow[addr]
	if c == nil {
		if n := len(s.freeCells); n > 0 {
			c = s.freeCells[n-1]
			s.freeCells = s.freeCells[:n-1]
		} else {
			c = &cell{}
		}
		s.hshadow[addr] = c
	}
	return c
}

// Access implements interp.Sanitizer. The fast path is FastTrack's
// same-epoch/owned-cell case: when the cell's prior write (and for writes,
// its read set) belongs to the accessing thread, no other thread's clock
// entry is consulted — the access resolves against the stored epoch in
// O(1). Cross-thread state falls through to the full happens-before
// comparison, which emits exactly the reports the Reference detector
// would.
func (s *Sanitizer) Access(tid int, addr mir.Word, write bool, pos mir.Pos) {
	s.accesses++
	if tid >= len(s.clocks) || len(s.clocks[tid]) == 0 {
		s.thread(tid)
	}
	c := s.cellFor(addr)
	vc := s.clocks[tid]
	clk := vc[tid]
	if write {
		fast := true
		if c.hasW && c.w.tid != tid {
			fast = false
			if c.w.clk > at(vc, c.w.tid) {
				s.race(KindWriteWrite, addr, c.w, true, epoch{tid: tid, clk: clk, pos: pos}, true)
			}
		}
		switch {
		case len(c.reads) == 0:
			// no reads to check
		case len(c.reads) == 1 && c.reads[0].tid == tid:
			c.reads = c.reads[:0]
		default:
			fast = false
			for _, r := range c.reads {
				if r.tid != tid && r.clk > at(vc, r.tid) {
					s.race(KindReadWrite, addr, r, false, epoch{tid: tid, clk: clk, pos: pos}, true)
				}
			}
			c.reads = c.reads[:0]
		}
		if fast {
			s.fastHits++
		}
		c.w = epoch{tid: tid, clk: clk, pos: pos}
		c.hasW = true
		return
	}
	if c.hasW && c.w.tid != tid {
		if c.w.clk > at(vc, c.w.tid) {
			s.race(KindReadWrite, addr, c.w, true, epoch{tid: tid, clk: clk, pos: pos}, false)
		}
	} else {
		s.fastHits++
	}
	for i := range c.reads {
		if c.reads[i].tid == tid {
			c.reads[i] = epoch{tid: tid, clk: clk, pos: pos}
			return
		}
	}
	c.reads = append(c.reads, epoch{tid: tid, clk: clk, pos: pos})
}

// ----------------------------------------------------------------- finish

// Finish runs end-of-trace analyses (the deadlock predictor) and freezes
// the report list. Reports calls it implicitly; calling it twice is a
// no-op.
//
// Candidate partners are indexed by (to,from): an edge pair can only form
// an inversion when e2's lock pair is e1's reversed, so each edge scans
// just the edges sharing its reversed key instead of the whole list —
// linear in edges plus inspected pairs where the reference is O(E²). The
// chains preserve ascending edge order, so the surviving (i,j) pairs are
// enumerated in exactly the reference's order and report dedup picks the
// same winners.
func (s *Sanitizer) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	if len(s.edges) == 0 {
		return
	}
	if s.dlHead == nil {
		s.dlHead = map[[2]mir.Word]int32{}
	}
	if cap(s.dlNext) < len(s.edges) {
		s.dlNext = make([]int32, len(s.edges))
	} else {
		s.dlNext = s.dlNext[:len(s.edges)]
	}
	// Prepend in reverse so each (from,to) chain lists edge indices
	// ascending; entries store index+1 with 0 terminating.
	for i := len(s.edges) - 1; i >= 0; i-- {
		k := [2]mir.Word{s.edges[i].from, s.edges[i].to}
		s.dlNext[i] = s.dlHead[k]
		s.dlHead[k] = int32(i + 1)
	}
	for i := range s.edges {
		e1 := &s.edges[i]
		for j := s.dlHead[[2]mir.Word{e1.to, e1.from}]; j != 0; j = s.dlNext[j-1] {
			if int(j-1) <= i {
				continue
			}
			e2 := &s.edges[j-1]
			if e1.tid == e2.tid {
				continue
			}
			if e1.timed || e2.timed {
				continue // a timed acquisition self-resolves; no deadlock
			}
			// Fork/join ordering is schedule-independent: if one edge
			// must happen before the other, no schedule interleaves them.
			if !concurrent(e1.fvc, e2.fvc) {
				continue
			}
			if gated(e1, e2) {
				continue
			}
			s.deadlock(e1, e2)
		}
	}
}

// gated reports whether a common gate lock (held by both threads, distinct
// from the inverted pair) serializes the two acquisition sequences.
func gated(e1, e2 *lockEdge) bool {
	for _, a := range e1.heldAt {
		if a == e1.from || a == e1.to {
			continue
		}
		for _, b := range e2.heldAt {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Reports returns the report list, finishing the analysis first.
func (s *Sanitizer) Reports() []Report {
	s.Finish()
	return s.reports
}

// Accesses returns the number of shadow-checked memory accesses.
func (s *Sanitizer) Accesses() int64 { return s.accesses }

// SyncOps returns the number of synchronization events observed.
func (s *Sanitizer) SyncOps() int64 { return s.syncOps }

// FastPathHits returns how many accesses resolved on the owned-cell epoch
// fast path (no other thread's clock entry consulted).
func (s *Sanitizer) FastPathHits() int64 { return s.fastHits }

// VCJoins returns how many full vector-clock join operations the run
// performed (spawn/join edges plus release-clock acquisitions).
func (s *Sanitizer) VCJoins() int64 { return s.vcJoins }

// RecordMetrics adds this run's sanitizer counters to reg, for the
// -metrics exposition and the experiment registry.
func (s *Sanitizer) RecordMetrics(reg *obs.Registry) {
	s.Finish()
	var races, deadlocks int64
	for _, r := range s.reports {
		if r.Kind == KindDeadlock {
			deadlocks++
		} else {
			races++
		}
	}
	reg.Counter("sanitizer_runs_total").Inc()
	reg.Counter("sanitizer_reports_total").Add(races + deadlocks + s.truncated)
	reg.Counter("sanitizer_races_total").Add(races)
	reg.Counter("sanitizer_deadlocks_total").Add(deadlocks)
	reg.Counter("sanitizer_accesses_total").Add(s.accesses)
	reg.Counter("sanitizer_sync_ops_total").Add(s.syncOps)
	reg.Counter("sanitizer_fastpath_hits_total").Add(s.fastHits)
	reg.Counter("sanitizer_vc_joins_total").Add(s.vcJoins)
}
