// Package sanitizer implements dynamic concurrency-bug detection over the
// interpreter's sanitizer hook (interp.Config.Sanitizer):
//
//   - a happens-before data-race detector: per-thread vector clocks
//     advanced on spawn, join and lock release→acquire edges, checked
//     against per-location read/write shadow state covering globals and
//     heap words;
//   - a lock-order deadlock predictor (Goodlock-style): lock-order edges
//     "held A while acquiring B" collected per thread, with inverted
//     pairs reported when the two acquisitions are concurrent under the
//     fork/join-only happens-before relation and share no gate lock.
//
// Detection is entirely passive: the sanitizer never mutates interpreter
// state, so a sanitized run is bit-identical to an unsanitized one.
//
// Race reports are sound for the observed schedule (no false positives on
// correctly synchronized programs); which races are observed depends on
// the schedule, which is why the experiment harness searches over PCT
// schedules. Deadlock reports are predictive: a lock-order inversion is
// reported even when the observed run did not actually deadlock, as long
// as fork/join ordering (the only ordering hardening preserves) does not
// rule the interleaving out. Cycles through timed acquisitions are not
// reported — a timed lock self-resolves, which is exactly how ConAir's
// hardening neutralizes a deadlock site.
package sanitizer

import (
	"conair/internal/interp"
	"conair/internal/mir"
)

// DefaultMaxReports bounds the report list; detection state keeps updating
// after the cap so clocks stay correct, but further reports are counted
// rather than stored.
const DefaultMaxReports = 100

// Sanitizer is the detector state for one interpreter run. Create with
// New, pass as interp.Config.Sanitizer, then call Finish (or Reports)
// after the run. Not safe for concurrent use; the interpreter is a
// single-goroutine VM, so the hooks are naturally serialized.
type Sanitizer struct {
	// MaxReports caps stored reports (default DefaultMaxReports).
	MaxReports int

	mod *mir.Module

	// clocks is the full happens-before vector clock per thread id
	// (spawn, join, and lock release→acquire edges). fclocks tracks only
	// fork/join edges — the ordering that is schedule-independent — and
	// drives deadlock prediction.
	clocks  [][]int64
	fclocks [][]int64

	// lockRel holds each lock's release clock (the releasing thread's
	// clock at its latest unlock), joined into acquirers. cvRel, chRel and
	// casRel are the same mechanism for the synchronization extensions:
	// signal/broadcast publish on the condvar and a signalled wait-return
	// joins; send/close publish on the channel and a receive joins; a cas
	// publishes on its address and every later cas there joins first — so
	// cas-vs-cas on one word never races while plain-vs-cas still does.
	lockRel map[mir.Word][]int64
	cvRel   map[mir.Word][]int64
	chRel   map[mir.Word][]int64
	casRel  map[mir.Word][]int64

	// held is each thread's current lock set in acquisition order.
	held map[int][]heldLock

	shadow map[mir.Word]*cell

	edges    []lockEdge
	edgeSeen map[edgeKey]struct{}

	reports   []Report
	raceSeen  map[raceKey]struct{}
	dlSeen    map[[2]mir.Word]struct{}
	truncated int64

	accesses int64
	syncOps  int64
	finished bool
}

// New returns a sanitizer for a run of mod; the module is used only to
// resolve global names and positions in reports.
func New(mod *mir.Module) *Sanitizer {
	return &Sanitizer{
		MaxReports: DefaultMaxReports,
		mod:        mod,
		lockRel:    map[mir.Word][]int64{},
		cvRel:      map[mir.Word][]int64{},
		chRel:      map[mir.Word][]int64{},
		casRel:     map[mir.Word][]int64{},
		held:       map[int][]heldLock{},
		shadow:     map[mir.Word]*cell{},
		edgeSeen:   map[edgeKey]struct{}{},
		raceSeen:   map[raceKey]struct{}{},
		dlSeen:     map[[2]mir.Word]struct{}{},
	}
}

var _ interp.Sanitizer = (*Sanitizer)(nil)

type heldLock struct {
	addr  mir.Word
	timed bool
	pos   mir.Pos
}

// epoch is one access in shadow state: the acquiring thread's own clock
// component at access time, plus the position for reporting.
type epoch struct {
	tid int
	clk int64
	pos mir.Pos
}

// cell is the per-address shadow state: the last write plus one read entry
// per thread (same-thread reads replace, bounding growth at thread count).
type cell struct {
	w     epoch // w.tid < 0 means no write seen
	reads []epoch
	hasW  bool
}

// lockEdge records "tid held from while acquiring to". fvc snapshots the
// thread's fork/join clock and heldAt its lock set at that moment.
type lockEdge struct {
	from, to       mir.Word
	tid            int
	timed          bool
	fvc            []int64
	heldAt         []mir.Word
	fromPos, toPos mir.Pos
}

type edgeKey struct {
	from, to mir.Word
	tid      int
}

type raceKey struct {
	kind       Kind
	addr       mir.Word
	prior, cur mir.Pos
}

// ---------------------------------------------------------------- clocks

func (s *Sanitizer) thread(tid int) {
	for tid >= len(s.clocks) {
		s.clocks = append(s.clocks, nil)
		s.fclocks = append(s.fclocks, nil)
	}
	if s.clocks[tid] == nil {
		vc := make([]int64, tid+1)
		vc[tid] = 1
		s.clocks[tid] = vc
		fc := make([]int64, tid+1)
		fc[tid] = 1
		s.fclocks[tid] = fc
	}
}

// joinVC merges src into *dst pointwise (dst grows as needed).
func joinVC(dst *[]int64, src []int64) {
	d := *dst
	for len(d) < len(src) {
		d = append(d, 0)
	}
	for i, v := range src {
		if v > d[i] {
			d[i] = v
		}
	}
	*dst = d
}

func at(vc []int64, tid int) int64 {
	if tid < len(vc) {
		return vc[tid]
	}
	return 0
}

// leq reports a ≤ b pointwise.
func leq(a, b []int64) bool {
	for i, v := range a {
		if v > at(b, i) {
			return false
		}
	}
	return true
}

// concurrent reports that neither clock happens-before the other.
func concurrent(a, b []int64) bool { return !leq(a, b) && !leq(b, a) }

// ------------------------------------------------------------------ hooks

// ThreadSpawn implements interp.Sanitizer.
func (s *Sanitizer) ThreadSpawn(parent, child int) {
	s.syncOps++
	s.thread(child)
	if parent < 0 {
		return
	}
	s.thread(parent)
	joinVC(&s.clocks[child], s.clocks[parent])
	joinVC(&s.fclocks[child], s.fclocks[parent])
	// Advance the parent past the fork so the child is ordered after the
	// parent's pre-fork effects but concurrent with its post-fork ones.
	s.clocks[parent][parent]++
	s.fclocks[parent][parent]++
}

// ThreadJoin implements interp.Sanitizer.
func (s *Sanitizer) ThreadJoin(waiter, target int) {
	s.syncOps++
	s.thread(waiter)
	s.thread(target)
	joinVC(&s.clocks[waiter], s.clocks[target])
	joinVC(&s.fclocks[waiter], s.fclocks[target])
}

// LockRequest implements interp.Sanitizer: a blocking acquisition attempt.
// Lock-order edges are recorded here as well as on success so that a run
// dying inside an actual deadlock still carries both cycle edges.
func (s *Sanitizer) LockRequest(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.recordEdges(tid, addr, timed, pos)
}

// LockAcquire implements interp.Sanitizer.
func (s *Sanitizer) LockAcquire(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.lockRel[addr]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
	s.recordEdges(tid, addr, timed, pos)
	s.held[tid] = append(s.held[tid], heldLock{addr: addr, timed: timed, pos: pos})
}

// LockRelease implements interp.Sanitizer. Covers both regular unlocks and
// rollback's compensation releases.
func (s *Sanitizer) LockRelease(tid int, addr mir.Word) {
	s.syncOps++
	s.thread(tid)
	s.lockRel[addr] = append(s.lockRel[addr][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
	hs := s.held[tid]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].addr == addr {
			s.held[tid] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
}

func (s *Sanitizer) recordEdges(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	hs := s.held[tid]
	if len(hs) == 0 {
		return
	}
	for _, h := range hs {
		if h.addr == addr {
			continue
		}
		k := edgeKey{from: h.addr, to: addr, tid: tid}
		if _, dup := s.edgeSeen[k]; dup {
			continue
		}
		s.edgeSeen[k] = struct{}{}
		heldAt := make([]mir.Word, len(hs))
		for i, hh := range hs {
			heldAt[i] = hh.addr
		}
		s.edges = append(s.edges, lockEdge{
			from: h.addr, to: addr, tid: tid,
			timed:   timed || h.timed,
			fvc:     append([]int64(nil), s.fclocks[tid]...),
			heldAt:  heldAt,
			fromPos: h.pos, toPos: pos,
		})
	}
}

// CondSignal implements interp.Sanitizer: a signal or broadcast publishes
// the signaller's clock on the condvar. The clock is stored even when no
// waiter consumes it (the interpreter cannot know which wait will), a
// deliberate over-approximation: a wait-return may join the clock of a
// signal it did not consume, which can only add ordering — fewer false
// positives, never more.
func (s *Sanitizer) CondSignal(tid int, cv mir.Word, broadcast bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.cvRel[cv] = append(s.cvRel[cv][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// CondWake implements interp.Sanitizer: a wait that consumed a signal is
// ordered after the signaller — the signal→wait-return edge.
func (s *Sanitizer) CondWake(tid int, cv mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.cvRel[cv]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
}

// ChanSend implements interp.Sanitizer: a completed send publishes the
// sender's clock on the channel (the send→recv edge's release half).
func (s *Sanitizer) ChanSend(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.chRel[ch] = append(s.chRel[ch][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// ChanRecv implements interp.Sanitizer: a completed receive joins the
// channel's release clock — including a zero-value receive from a closed,
// drained channel, which is ordered after the close.
func (s *Sanitizer) ChanRecv(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.chRel[ch]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
}

// ChanClose implements interp.Sanitizer: close publishes like a send.
func (s *Sanitizer) ChanClose(tid int, ch mir.Word, pos mir.Pos) {
	s.ChanSend(tid, ch, pos)
}

// AtomicCAS implements interp.Sanitizer. The acquire half joins the
// address's CAS release clock BEFORE the shadow check, so two cas
// operations on the same word are always ordered (atomics never race with
// atomics); the shadow check then still catches a plain load or store
// racing the cas. Failed cas operations publish too — they are atomic
// loads, and ordering atomics totally costs nothing in precision.
func (s *Sanitizer) AtomicCAS(tid int, addr mir.Word, success bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.casRel[addr]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
	s.Access(tid, addr, false, pos)
	if success {
		s.Access(tid, addr, true, pos)
	}
	s.casRel[addr] = append(s.casRel[addr][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// Access implements interp.Sanitizer.
func (s *Sanitizer) Access(tid int, addr mir.Word, write bool, pos mir.Pos) {
	s.accesses++
	s.thread(tid)
	c := s.shadow[addr]
	if c == nil {
		c = &cell{}
		s.shadow[addr] = c
	}
	vc := s.clocks[tid]
	if write {
		if c.hasW && c.w.tid != tid && c.w.clk > at(vc, c.w.tid) {
			s.race(KindWriteWrite, addr, c.w, true, epoch{tid: tid, clk: vc[tid], pos: pos}, true)
		}
		for _, r := range c.reads {
			if r.tid != tid && r.clk > at(vc, r.tid) {
				s.race(KindReadWrite, addr, r, false, epoch{tid: tid, clk: vc[tid], pos: pos}, true)
			}
		}
		c.w = epoch{tid: tid, clk: vc[tid], pos: pos}
		c.hasW = true
		c.reads = c.reads[:0]
		return
	}
	if c.hasW && c.w.tid != tid && c.w.clk > at(vc, c.w.tid) {
		s.race(KindReadWrite, addr, c.w, true, epoch{tid: tid, clk: vc[tid], pos: pos}, false)
	}
	for i := range c.reads {
		if c.reads[i].tid == tid {
			c.reads[i] = epoch{tid: tid, clk: vc[tid], pos: pos}
			return
		}
	}
	c.reads = append(c.reads, epoch{tid: tid, clk: vc[tid], pos: pos})
}

// ----------------------------------------------------------------- finish

// Finish runs end-of-trace analyses (the deadlock predictor) and freezes
// the report list. Reports calls it implicitly; calling it twice is a
// no-op.
func (s *Sanitizer) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	for i := range s.edges {
		for j := i + 1; j < len(s.edges); j++ {
			e1, e2 := &s.edges[i], &s.edges[j]
			if e1.to != e2.from || e2.to != e1.from || e1.tid == e2.tid {
				continue
			}
			if e1.timed || e2.timed {
				continue // a timed acquisition self-resolves; no deadlock
			}
			// Fork/join ordering is schedule-independent: if one edge
			// must happen before the other, no schedule interleaves them.
			if !concurrent(e1.fvc, e2.fvc) {
				continue
			}
			if gated(e1, e2) {
				continue
			}
			s.deadlock(e1, e2)
		}
	}
}

// gated reports whether a common gate lock (held by both threads, distinct
// from the inverted pair) serializes the two acquisition sequences.
func gated(e1, e2 *lockEdge) bool {
	for _, a := range e1.heldAt {
		if a == e1.from || a == e1.to {
			continue
		}
		for _, b := range e2.heldAt {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Reports returns the report list, finishing the analysis first.
func (s *Sanitizer) Reports() []Report {
	s.Finish()
	return s.reports
}

// Truncated reports how many reports were dropped past MaxReports.
func (s *Sanitizer) Truncated() int64 { return s.truncated }

// Accesses returns the number of shadow-checked memory accesses.
func (s *Sanitizer) Accesses() int64 { return s.accesses }

// SyncOps returns the number of synchronization events observed.
func (s *Sanitizer) SyncOps() int64 { return s.syncOps }
