package sanitizer

import (
	"strings"
	"testing"

	"conair/internal/mir"
)

func pos(fn, blk, idx int) mir.Pos { return mir.Pos{Fn: fn, Block: blk, Index: idx} }

// boot announces main and spawns n workers off it, returning their tids
// (main is tid 0, workers 1..n).
func boot(s *Sanitizer, n int) []int {
	s.ThreadSpawn(-1, 0)
	tids := make([]int, n)
	for i := range tids {
		tids[i] = i + 1
		s.ThreadSpawn(0, tids[i])
	}
	return tids
}

func TestUnorderedWritesRace(t *testing.T) {
	s := New(nil)
	boot(s, 2)
	s.Access(1, 100, true, pos(1, 0, 0))
	s.Access(2, 100, true, pos(2, 0, 0))
	rs := s.Reports()
	if len(rs) != 1 || rs[0].Kind != KindWriteWrite {
		t.Fatalf("want one write-write race, got %v", rs)
	}
	if rs[0].First.Thread != 1 || rs[0].Second.Thread != 2 {
		t.Fatalf("wrong threads in %v", rs[0])
	}
}

func TestReadWriteRaceBothDirections(t *testing.T) {
	// write-then-read by another thread
	s := New(nil)
	boot(s, 2)
	s.Access(1, 100, true, pos(1, 0, 0))
	s.Access(2, 100, false, pos(2, 0, 0))
	if rs := s.Reports(); len(rs) != 1 || rs[0].Kind != KindReadWrite {
		t.Fatalf("write/read: want one read-write race, got %v", rs)
	}
	// read-then-write by another thread
	s = New(nil)
	boot(s, 2)
	s.Access(1, 100, false, pos(1, 0, 0))
	s.Access(2, 100, true, pos(2, 0, 0))
	if rs := s.Reports(); len(rs) != 1 || rs[0].Kind != KindReadWrite {
		t.Fatalf("read/write: want one read-write race, got %v", rs)
	}
}

func TestConcurrentReadsDoNotRace(t *testing.T) {
	s := New(nil)
	boot(s, 2)
	s.Access(1, 100, false, pos(1, 0, 0))
	s.Access(2, 100, false, pos(2, 0, 0))
	if rs := s.Reports(); len(rs) != 0 {
		t.Fatalf("reads should not race, got %v", rs)
	}
}

func TestLockOrdersAccesses(t *testing.T) {
	const lk = mir.Word(500)
	s := New(nil)
	boot(s, 2)
	s.LockAcquire(1, lk, false, pos(1, 0, 0))
	s.Access(1, 100, true, pos(1, 0, 1))
	s.LockRelease(1, lk)
	s.LockAcquire(2, lk, false, pos(2, 0, 0))
	s.Access(2, 100, true, pos(2, 0, 1))
	s.LockRelease(2, lk)
	if rs := s.Reports(); len(rs) != 0 {
		t.Fatalf("lock-protected writes should not race, got %v", rs)
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	s := New(nil)
	boot(s, 2)
	s.LockAcquire(1, 500, false, pos(1, 0, 0))
	s.Access(1, 100, true, pos(1, 0, 1))
	s.LockRelease(1, 500)
	s.LockAcquire(2, 501, false, pos(2, 0, 0))
	s.Access(2, 100, true, pos(2, 0, 1))
	s.LockRelease(2, 501)
	if rs := s.Reports(); len(rs) != 1 {
		t.Fatalf("distinct locks must not order accesses, got %v", rs)
	}
}

func TestSpawnEdgeOrders(t *testing.T) {
	s := New(nil)
	s.ThreadSpawn(-1, 0)
	s.Access(0, 100, true, pos(0, 0, 0)) // parent writes pre-fork
	s.ThreadSpawn(0, 1)
	s.Access(1, 100, false, pos(1, 0, 0)) // child reads: ordered
	if rs := s.Reports(); len(rs) != 0 {
		t.Fatalf("pre-fork write vs child read should not race, got %v", rs)
	}
}

func TestPostForkParentAccessRaces(t *testing.T) {
	s := New(nil)
	s.ThreadSpawn(-1, 0)
	s.ThreadSpawn(0, 1)
	s.Access(0, 100, true, pos(0, 0, 1)) // parent writes post-fork
	s.Access(1, 100, true, pos(1, 0, 0)) // child concurrent
	if rs := s.Reports(); len(rs) != 1 {
		t.Fatalf("post-fork parent write vs child should race, got %v", rs)
	}
}

func TestJoinEdgeOrders(t *testing.T) {
	s := New(nil)
	s.ThreadSpawn(-1, 0)
	s.ThreadSpawn(0, 1)
	s.Access(1, 100, true, pos(1, 0, 0)) // child writes
	s.ThreadJoin(0, 1)
	s.Access(0, 100, false, pos(0, 0, 1)) // parent reads after join
	if rs := s.Reports(); len(rs) != 0 {
		t.Fatalf("join-ordered accesses should not race, got %v", rs)
	}
}

func TestRaceDeduped(t *testing.T) {
	s := New(nil)
	boot(s, 2)
	for i := 0; i < 5; i++ {
		s.Access(1, 100, true, pos(1, 0, 0))
		s.Access(2, 100, true, pos(2, 0, 0))
	}
	if rs := s.Reports(); len(rs) != 1 {
		t.Fatalf("repeated identical race should be one report, got %d", len(rs))
	}
}

func TestMaxReportsTruncates(t *testing.T) {
	s := New(nil)
	s.MaxReports = 2
	boot(s, 2)
	for i := 0; i < 5; i++ {
		s.Access(1, mir.Word(100+i), true, pos(1, 0, i))
		s.Access(2, mir.Word(100+i), true, pos(2, 0, i))
	}
	if rs := s.Reports(); len(rs) != 2 {
		t.Fatalf("want 2 stored reports, got %d", len(rs))
	}
	if s.Truncated() != 3 {
		t.Fatalf("want 3 truncated, got %d", s.Truncated())
	}
}

// inversion drives a plain A→B / B→A inversion on top of s; the inner
// acquisitions use timed2 for thread 2's second lock when asked.
func inversion(s *Sanitizer, timed2 bool) {
	const A, B = mir.Word(500), mir.Word(501)
	boot(s, 2)
	s.LockAcquire(1, A, false, pos(1, 0, 0))
	s.LockAcquire(1, B, false, pos(1, 0, 1))
	s.LockRelease(1, B)
	s.LockRelease(1, A)
	s.LockAcquire(2, B, false, pos(2, 0, 0))
	s.LockAcquire(2, A, timed2, pos(2, 0, 1))
	s.LockRelease(2, A)
	s.LockRelease(2, B)
}

func TestDeadlockInversionFlagged(t *testing.T) {
	s := New(nil)
	inversion(s, false)
	rs := s.Deadlocks()
	if len(rs) != 1 {
		t.Fatalf("want one deadlock report, got %v", s.Reports())
	}
	if rs[0].ThreadA == rs[0].ThreadB {
		t.Fatalf("deadlock threads must differ: %v", rs[0])
	}
}

func TestTimedEdgeSuppressesDeadlock(t *testing.T) {
	s := New(nil)
	inversion(s, true)
	if rs := s.Deadlocks(); len(rs) != 0 {
		t.Fatalf("timed acquisition must suppress the cycle, got %v", rs)
	}
}

func TestBlockedRequestStillFormsCycle(t *testing.T) {
	// Thread 2 blocks on A while holding B (an actual deadlock: the run
	// dies before the acquire succeeds). LockRequest alone must carry the
	// second edge.
	const A, B = mir.Word(500), mir.Word(501)
	s := New(nil)
	boot(s, 2)
	s.LockAcquire(1, A, false, pos(1, 0, 0))
	s.LockAcquire(2, B, false, pos(2, 0, 0))
	s.LockRequest(1, B, false, pos(1, 0, 1))
	s.LockRequest(2, A, false, pos(2, 0, 1))
	if rs := s.Deadlocks(); len(rs) != 1 {
		t.Fatalf("blocked requests must form the cycle, got %v", s.Reports())
	}
}

func TestGateLockSuppressesDeadlock(t *testing.T) {
	const G, A, B = mir.Word(499), mir.Word(500), mir.Word(501)
	s := New(nil)
	boot(s, 2)
	s.LockAcquire(1, G, false, pos(1, 0, 0))
	s.LockAcquire(1, A, false, pos(1, 0, 1))
	s.LockAcquire(1, B, false, pos(1, 0, 2))
	s.LockRelease(1, B)
	s.LockRelease(1, A)
	s.LockRelease(1, G)
	s.LockAcquire(2, G, false, pos(2, 0, 0))
	s.LockAcquire(2, B, false, pos(2, 0, 1))
	s.LockAcquire(2, A, false, pos(2, 0, 2))
	s.LockRelease(2, A)
	s.LockRelease(2, B)
	s.LockRelease(2, G)
	if rs := s.Deadlocks(); len(rs) != 0 {
		t.Fatalf("common gate lock must suppress the cycle, got %v", rs)
	}
}

func TestJoinSequencedInversionSuppressed(t *testing.T) {
	// t1 runs A→B, main joins it, then spawns t2 running B→A: no schedule
	// interleaves the two regions, so no deadlock is possible.
	const A, B = mir.Word(500), mir.Word(501)
	s := New(nil)
	s.ThreadSpawn(-1, 0)
	s.ThreadSpawn(0, 1)
	s.LockAcquire(1, A, false, pos(1, 0, 0))
	s.LockAcquire(1, B, false, pos(1, 0, 1))
	s.LockRelease(1, B)
	s.LockRelease(1, A)
	s.ThreadJoin(0, 1)
	s.ThreadSpawn(0, 2)
	s.LockAcquire(2, B, false, pos(2, 0, 0))
	s.LockAcquire(2, A, false, pos(2, 0, 1))
	s.LockRelease(2, A)
	s.LockRelease(2, B)
	if rs := s.Deadlocks(); len(rs) != 0 {
		t.Fatalf("join-sequenced inversion must be suppressed, got %v", rs)
	}
}

func TestLockEdgesDoNotSuppressDeadlockConcurrency(t *testing.T) {
	// The two inversion threads synchronize through the very locks in the
	// cycle; those release→acquire edges order the race clocks but must
	// NOT order the deadlock (fork/join) clocks, or every true inversion
	// observed under a serializing schedule would be missed. inversion()
	// above is exactly that shape — t2's acquires happen after t1's
	// releases — so this re-checks the property explicitly.
	s := New(nil)
	inversion(s, false)
	if rs := s.Deadlocks(); len(rs) != 1 {
		t.Fatalf("lock-serialized inversion must still be predicted, got %v", s.Reports())
	}
}

func TestGlobalNamesInReports(t *testing.T) {
	mod := &mir.Module{
		Globals: []mir.Global{{Name: "counter"}, {Name: "flag"}},
		Functions: []mir.Function{
			{Name: "main"}, {Name: "worker"},
		},
	}
	s := New(mod)
	boot(s, 2)
	gaddr := mir.Word(1<<20) + 1 // interp.GlobalBase + index 1
	s.Access(1, gaddr, true, pos(1, 0, 0))
	s.Access(2, gaddr, true, pos(0, 0, 0))
	rs := s.Reports()
	if len(rs) != 1 {
		t.Fatalf("want one race, got %v", rs)
	}
	if rs[0].Global != "flag" || rs[0].Location() != "flag" {
		t.Fatalf("want global name flag, got %q", rs[0].Global)
	}
	str := rs[0].String()
	if !strings.Contains(str, "worker:0:0") || !strings.Contains(str, "main:0:0") {
		t.Fatalf("sites not resolved in %q", str)
	}
}

func TestVerdict(t *testing.T) {
	if v := Verdict(nil); v != "none" {
		t.Fatalf("empty verdict = %q", v)
	}
	race := Report{Kind: KindWriteWrite, Global: "counter"}
	dl := Report{Kind: KindDeadlock, LockA: "la", LockB: "lb"}
	if v := Verdict([]Report{race}); v != "race(counter)" {
		t.Fatalf("race verdict = %q", v)
	}
	if v := Verdict([]Report{race, dl}); v != "deadlock(la,lb)[+1]" {
		t.Fatalf("mixed verdict = %q", v)
	}
}
