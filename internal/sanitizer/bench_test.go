package sanitizer

import (
	"testing"

	"conair/internal/interp"
	"conair/internal/mir"
)

// benchModule gives the detectors a module with enough globals that the
// flat global shadow path is exercised alongside the heap map path.
func benchModule() *mir.Module {
	m := &mir.Module{Functions: []mir.Function{{Name: "main"}}}
	for i := 0; i < 32; i++ {
		m.Globals = append(m.Globals, mir.Global{Name: "g"})
	}
	return m
}

// driveHooks replays a synthetic three-thread trace: per-thread lock
// regions with a mix of global and heap accesses, all thread-owned (no
// races, no inversions), plus a cross-thread handoff per round. This is
// the detector's steady-state diet — the shape the epoch fast path and
// the release-clock arena are built for.
func driveHooks(s interp.Sanitizer, rounds int) {
	p := mir.Pos{Fn: 0}
	s.ThreadSpawn(-1, 0)
	s.ThreadSpawn(0, 1)
	s.ThreadSpawn(0, 2)
	for r := 0; r < rounds; r++ {
		for tid := 1; tid <= 2; tid++ {
			lk := interp.GlobalBase + mir.Word(30+tid)
			s.LockAcquire(tid, lk, false, p)
			for k := 0; k < 8; k++ {
				gaddr := interp.GlobalBase + mir.Word((tid-1)*8+k)
				s.Access(tid, gaddr, k%3 == 0, p)
				haddr := mir.Word(50000 + (tid-1)*16 + k)
				s.Access(tid, haddr, k%4 == 0, p)
			}
			s.LockRelease(tid, lk)
		}
	}
	s.ThreadJoin(0, 1)
	s.ThreadJoin(0, 2)
}

// BenchmarkSanitizerAccess drives the identical hook trace through the
// epoch Sanitizer and the Reference detector. The epoch leg reuses one
// instance via Reset, which is how SanitizeSearch runs it.
func BenchmarkSanitizerAccess(b *testing.B) {
	mod := benchModule()
	const rounds = 100
	b.Run("epoch", func(b *testing.B) {
		s := New(mod)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset(mod)
			driveHooks(s, rounds)
			s.Finish()
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := NewReference(mod)
			driveHooks(s, rounds)
			s.Finish()
		}
	})
}

// TestAccessFastPathZeroAllocs is the steady-state allocation guard: once
// a sanitizer has seen a program shape, Reset plus a full replay of the
// trace must not allocate at all — clocks, shadow cells, release-clock
// arena regions, edges and report state are all recycled in place.
func TestAccessFastPathZeroAllocs(t *testing.T) {
	mod := benchModule()
	s := New(mod)
	run := func() {
		s.Reset(mod)
		driveHooks(s, 20)
		s.Finish()
	}
	run() // warm: first pass sizes every structure
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("steady-state Reset+replay allocated %.1f times per run, want 0", avg)
	}
	if s.FastPathHits() == 0 {
		t.Fatal("owned-cell trace produced no fast-path hits")
	}
	if got := len(s.Reports()); got != 0 {
		t.Fatalf("race-free trace produced %d reports", got)
	}
}
