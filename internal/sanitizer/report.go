package sanitizer

import (
	"fmt"
	"strings"

	"conair/internal/interp"
	"conair/internal/mir"
)

// Kind classifies a sanitizer report.
type Kind int

const (
	// KindWriteWrite is a write-write data race: two unordered writes to
	// the same location from different threads.
	KindWriteWrite Kind = iota
	// KindReadWrite is a read-write data race: an unordered read/write
	// pair on the same location from different threads.
	KindReadWrite
	// KindDeadlock is a predicted lock-order inversion: two threads
	// acquire the same pair of locks in opposite order with no
	// fork/join ordering or gate lock ruling the interleaving out.
	KindDeadlock
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWriteWrite:
		return "write-write race"
	case KindReadWrite:
		return "read-write race"
	case KindDeadlock:
		return "deadlock inversion"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Access is one side of a race report.
type Access struct {
	Thread int
	Write  bool
	Pos    mir.Pos
	// Site is the human-readable position "func:block:index".
	Site string
}

// Report is one sanitizer finding.
type Report struct {
	Kind Kind

	// Race fields (KindWriteWrite, KindReadWrite).
	Addr   mir.Word
	Global string // global name when Addr is a global, else ""
	First  Access // earlier access in trace order
	Second Access

	// Deadlock fields (KindDeadlock). LockA/LockB name the inverted pair
	// (global name or address); ThreadA acquired A then B, ThreadB the
	// reverse. PosA/PosB are the inner (second) acquisition sites.
	LockA, LockB     string
	ThreadA, ThreadB int
	PosA, PosB       mir.Pos
	SiteA, SiteB     string
}

// Location names the racy address: the global's name, or "heap@addr".
func (r Report) Location() string {
	if r.Global != "" {
		return r.Global
	}
	return fmt.Sprintf("heap@%d", r.Addr)
}

// String renders the report on one line.
func (r Report) String() string {
	if r.Kind == KindDeadlock {
		return fmt.Sprintf("%s: thread %d takes %s then %s at %s; thread %d takes %s then %s at %s",
			r.Kind, r.ThreadA, r.LockA, r.LockB, r.SiteA,
			r.ThreadB, r.LockB, r.LockA, r.SiteB)
	}
	return fmt.Sprintf("%s on %s: %s by thread %d at %s vs %s by thread %d at %s",
		r.Kind, r.Location(),
		rw(r.First.Write), r.First.Thread, r.First.Site,
		rw(r.Second.Write), r.Second.Thread, r.Second.Site)
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// reporter is the report-emission state shared by the epoch Sanitizer and
// the Reference detector: dedup sets, the capped report list, and the
// module used to resolve names and positions. Both detectors emit through
// the same code so that report equality in the differential sweep compares
// detection logic, not formatting.
type reporter struct {
	// MaxReports caps stored reports (default DefaultMaxReports).
	MaxReports int

	mod *mir.Module

	reports   []Report
	raceSeen  map[raceKey]struct{}
	dlSeen    map[[2]mir.Word]struct{}
	truncated int64
}

type raceKey struct {
	kind       Kind
	addr       mir.Word
	prior, cur mir.Pos
}

// resetReports clears the emission state in place, keeping map buckets and
// slice capacity for reuse.
func (s *reporter) resetReports(mod *mir.Module) {
	s.mod = mod
	s.reports = s.reports[:0]
	if s.raceSeen == nil {
		s.raceSeen = map[raceKey]struct{}{}
	} else {
		clear(s.raceSeen)
	}
	if s.dlSeen == nil {
		s.dlSeen = map[[2]mir.Word]struct{}{}
	} else {
		clear(s.dlSeen)
	}
	s.truncated = 0
}

// site renders pos as func:block:index using the module's function names.
func (s *reporter) site(pos mir.Pos) string {
	if s.mod != nil && pos.Fn >= 0 && pos.Fn < len(s.mod.Functions) {
		return fmt.Sprintf("%s:%d:%d", s.mod.Functions[pos.Fn].Name, pos.Block, pos.Index)
	}
	return pos.String()
}

// lockName names a lock address for reports.
func (s *reporter) lockName(addr mir.Word) string {
	if g := s.globalName(addr); g != "" {
		return g
	}
	return fmt.Sprintf("lock@%d", addr)
}

func (s *reporter) globalName(addr mir.Word) string {
	if s.mod == nil || addr < interp.GlobalBase {
		return ""
	}
	gi := int(addr - interp.GlobalBase)
	if gi < len(s.mod.Globals) {
		return s.mod.Globals[gi].Name
	}
	return ""
}

func (s *reporter) race(kind Kind, addr mir.Word, prior epoch, priorWrite bool, cur epoch, curWrite bool) {
	// Normalize the position pair so the same racy pair discovered in
	// either order dedupes to one report.
	p1, p2 := prior.pos, cur.pos
	if p2.Less(p1) {
		p1, p2 = p2, p1
	}
	k := raceKey{kind: kind, addr: addr, prior: p1, cur: p2}
	if _, dup := s.raceSeen[k]; dup {
		return
	}
	s.raceSeen[k] = struct{}{}
	if len(s.reports) >= s.maxReports() {
		s.truncated++
		return
	}
	s.reports = append(s.reports, Report{
		Kind:   kind,
		Addr:   addr,
		Global: s.globalName(addr),
		First: Access{Thread: prior.tid, Write: priorWrite,
			Pos: prior.pos, Site: s.site(prior.pos)},
		Second: Access{Thread: cur.tid, Write: curWrite,
			Pos: cur.pos, Site: s.site(cur.pos)},
	})
}

func (s *reporter) deadlock(e1, e2 *lockEdge) {
	// Normalize the pair so each inverted lock pair is reported once no
	// matter how many threads exhibit it.
	pair := [2]mir.Word{e1.from, e1.to}
	if pair[0] > pair[1] {
		pair[0], pair[1] = pair[1], pair[0]
	}
	if _, dup := s.dlSeen[pair]; dup {
		return
	}
	s.dlSeen[pair] = struct{}{}
	if len(s.reports) >= s.maxReports() {
		s.truncated++
		return
	}
	// Order the pair by lock name so the same inversion reports the same
	// way no matter which thread's edge was recorded first. Swapping the
	// edges keeps the report consistent: ThreadA is always the thread that
	// acquired LockA before LockB.
	if s.lockName(e2.from) < s.lockName(e1.from) {
		e1, e2 = e2, e1
	}
	s.reports = append(s.reports, Report{
		Kind:    KindDeadlock,
		LockA:   s.lockName(e1.from),
		LockB:   s.lockName(e1.to),
		ThreadA: e1.tid, ThreadB: e2.tid,
		PosA: e1.toPos, PosB: e2.toPos,
		SiteA: s.site(e1.toPos), SiteB: s.site(e2.toPos),
	})
}

func (s *reporter) maxReports() int {
	if s.MaxReports > 0 {
		return s.MaxReports
	}
	return DefaultMaxReports
}

// Truncated reports how many reports were dropped past MaxReports.
func (s *reporter) Truncated() int64 { return s.truncated }

// splitKind filters a finished report list by race/deadlock.
func splitKind(reports []Report, deadlocks bool) []Report {
	var out []Report
	for _, r := range reports {
		if (r.Kind == KindDeadlock) == deadlocks {
			out = append(out, r)
		}
	}
	return out
}

// Races returns the race reports (finishing the analysis).
func (s *Sanitizer) Races() []Report { return splitKind(s.Reports(), false) }

// Deadlocks returns the deadlock reports (finishing the analysis).
func (s *Sanitizer) Deadlocks() []Report { return splitKind(s.Reports(), true) }

// Races returns the race reports (finishing the analysis).
func (s *Reference) Races() []Report { return splitKind(s.Reports(), false) }

// Deadlocks returns the deadlock reports (finishing the analysis).
func (s *Reference) Deadlocks() []Report { return splitKind(s.Reports(), true) }

// Verdict summarizes a report set as a compact cell for tables:
// "none", "race(counter)", "deadlock(la,lb)", with "[+N]" appended when
// further reports exist beyond the one shown. Deadlocks take precedence
// over races since they name the bug class ConAir treats specially.
func Verdict(reports []Report) string {
	if len(reports) == 0 {
		return "none"
	}
	var pick Report
	found := false
	for _, r := range reports {
		if r.Kind == KindDeadlock {
			pick, found = r, true
			break
		}
	}
	if !found {
		pick = reports[0]
	}
	var b strings.Builder
	if pick.Kind == KindDeadlock {
		fmt.Fprintf(&b, "deadlock(%s,%s)", pick.LockA, pick.LockB)
	} else {
		fmt.Fprintf(&b, "race(%s)", pick.Location())
	}
	if len(reports) > 1 {
		fmt.Fprintf(&b, "[+%d]", len(reports)-1)
	}
	return b.String()
}
