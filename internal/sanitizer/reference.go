package sanitizer

import (
	"conair/internal/interp"
	"conair/internal/mir"
)

// Reference is the original PR-3 detector, preserved verbatim as the
// trusted oracle for the epoch Sanitizer (the interp.RunReference
// pattern): per-address shadow state and release clocks in maps, a fresh
// copy of the releasing thread's clock per publish, and the quadratic
// deadlock pair scan in Finish. It is deliberately simple rather than
// fast; the differential sweep pins the production Sanitizer's reports,
// truncation and access/sync counters to it on every trace.
type Reference struct {
	reporter

	// clocks is the full happens-before vector clock per thread id;
	// fclocks tracks only fork/join edges and drives deadlock prediction.
	clocks  [][]int64
	fclocks [][]int64

	// lockRel holds each lock's release clock (the releasing thread's
	// clock at its latest unlock), joined into acquirers. cvRel, chRel and
	// casRel are the same mechanism for condvars, channels and cas words.
	lockRel map[mir.Word][]int64
	cvRel   map[mir.Word][]int64
	chRel   map[mir.Word][]int64
	casRel  map[mir.Word][]int64

	// held is each thread's current lock set in acquisition order.
	held map[int][]heldLock

	shadow map[mir.Word]*cell

	edges    []lockEdge
	edgeSeen map[edgeKey]struct{}

	accesses int64
	syncOps  int64
	finished bool
}

// NewReference returns the reference detector for a run of mod.
func NewReference(mod *mir.Module) *Reference {
	s := &Reference{
		lockRel:  map[mir.Word][]int64{},
		cvRel:    map[mir.Word][]int64{},
		chRel:    map[mir.Word][]int64{},
		casRel:   map[mir.Word][]int64{},
		held:     map[int][]heldLock{},
		shadow:   map[mir.Word]*cell{},
		edgeSeen: map[edgeKey]struct{}{},
	}
	s.MaxReports = DefaultMaxReports
	s.resetReports(mod)
	return s
}

var _ interp.Sanitizer = (*Reference)(nil)

func (s *Reference) thread(tid int) {
	for tid >= len(s.clocks) {
		s.clocks = append(s.clocks, nil)
		s.fclocks = append(s.fclocks, nil)
	}
	if s.clocks[tid] == nil {
		vc := make([]int64, tid+1)
		vc[tid] = 1
		s.clocks[tid] = vc
		fc := make([]int64, tid+1)
		fc[tid] = 1
		s.fclocks[tid] = fc
	}
}

// ThreadSpawn implements interp.Sanitizer.
func (s *Reference) ThreadSpawn(parent, child int) {
	s.syncOps++
	s.thread(child)
	if parent < 0 {
		return
	}
	s.thread(parent)
	joinVC(&s.clocks[child], s.clocks[parent])
	joinVC(&s.fclocks[child], s.fclocks[parent])
	s.clocks[parent][parent]++
	s.fclocks[parent][parent]++
}

// ThreadJoin implements interp.Sanitizer.
func (s *Reference) ThreadJoin(waiter, target int) {
	s.syncOps++
	s.thread(waiter)
	s.thread(target)
	joinVC(&s.clocks[waiter], s.clocks[target])
	joinVC(&s.fclocks[waiter], s.fclocks[target])
}

// LockRequest implements interp.Sanitizer.
func (s *Reference) LockRequest(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.recordEdges(tid, addr, timed, pos)
}

// LockAcquire implements interp.Sanitizer.
func (s *Reference) LockAcquire(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.lockRel[addr]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
	s.recordEdges(tid, addr, timed, pos)
	s.held[tid] = append(s.held[tid], heldLock{addr: addr, timed: timed, pos: pos})
}

// LockRelease implements interp.Sanitizer.
func (s *Reference) LockRelease(tid int, addr mir.Word) {
	s.syncOps++
	s.thread(tid)
	s.lockRel[addr] = append(s.lockRel[addr][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
	hs := s.held[tid]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].addr == addr {
			s.held[tid] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
}

func (s *Reference) recordEdges(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	hs := s.held[tid]
	if len(hs) == 0 {
		return
	}
	for _, h := range hs {
		if h.addr == addr {
			continue
		}
		k := edgeKey{from: h.addr, to: addr, tid: tid}
		if _, dup := s.edgeSeen[k]; dup {
			continue
		}
		s.edgeSeen[k] = struct{}{}
		heldAt := make([]mir.Word, len(hs))
		for i, hh := range hs {
			heldAt[i] = hh.addr
		}
		s.edges = append(s.edges, lockEdge{
			from: h.addr, to: addr, tid: tid,
			timed:   timed || h.timed,
			fvc:     append([]int64(nil), s.fclocks[tid]...),
			heldAt:  heldAt,
			fromPos: h.pos, toPos: pos,
		})
	}
}

// CondSignal implements interp.Sanitizer.
func (s *Reference) CondSignal(tid int, cv mir.Word, broadcast bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.cvRel[cv] = append(s.cvRel[cv][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// CondWake implements interp.Sanitizer.
func (s *Reference) CondWake(tid int, cv mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.cvRel[cv]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
}

// ChanSend implements interp.Sanitizer.
func (s *Reference) ChanSend(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	s.chRel[ch] = append(s.chRel[ch][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// ChanRecv implements interp.Sanitizer.
func (s *Reference) ChanRecv(tid int, ch mir.Word, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.chRel[ch]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
}

// ChanClose implements interp.Sanitizer.
func (s *Reference) ChanClose(tid int, ch mir.Word, pos mir.Pos) {
	s.ChanSend(tid, ch, pos)
}

// AtomicCAS implements interp.Sanitizer.
func (s *Reference) AtomicCAS(tid int, addr mir.Word, success bool, pos mir.Pos) {
	s.syncOps++
	s.thread(tid)
	if rel := s.casRel[addr]; rel != nil {
		joinVC(&s.clocks[tid], rel)
	}
	s.Access(tid, addr, false, pos)
	if success {
		s.Access(tid, addr, true, pos)
	}
	s.casRel[addr] = append(s.casRel[addr][:0], s.clocks[tid]...)
	s.clocks[tid][tid]++
}

// Access implements interp.Sanitizer.
func (s *Reference) Access(tid int, addr mir.Word, write bool, pos mir.Pos) {
	s.accesses++
	s.thread(tid)
	c := s.shadow[addr]
	if c == nil {
		c = &cell{}
		s.shadow[addr] = c
	}
	vc := s.clocks[tid]
	if write {
		if c.hasW && c.w.tid != tid && c.w.clk > at(vc, c.w.tid) {
			s.race(KindWriteWrite, addr, c.w, true, epoch{tid: tid, clk: vc[tid], pos: pos}, true)
		}
		for _, r := range c.reads {
			if r.tid != tid && r.clk > at(vc, r.tid) {
				s.race(KindReadWrite, addr, r, false, epoch{tid: tid, clk: vc[tid], pos: pos}, true)
			}
		}
		c.w = epoch{tid: tid, clk: vc[tid], pos: pos}
		c.hasW = true
		c.reads = c.reads[:0]
		return
	}
	if c.hasW && c.w.tid != tid && c.w.clk > at(vc, c.w.tid) {
		s.race(KindReadWrite, addr, c.w, true, epoch{tid: tid, clk: vc[tid], pos: pos}, false)
	}
	for i := range c.reads {
		if c.reads[i].tid == tid {
			c.reads[i] = epoch{tid: tid, clk: vc[tid], pos: pos}
			return
		}
	}
	c.reads = append(c.reads, epoch{tid: tid, clk: vc[tid], pos: pos})
}

// Finish runs the quadratic deadlock pair scan and freezes the report
// list; calling it twice is a no-op.
func (s *Reference) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	for i := range s.edges {
		for j := i + 1; j < len(s.edges); j++ {
			e1, e2 := &s.edges[i], &s.edges[j]
			if e1.to != e2.from || e2.to != e1.from || e1.tid == e2.tid {
				continue
			}
			if e1.timed || e2.timed {
				continue
			}
			if !concurrent(e1.fvc, e2.fvc) {
				continue
			}
			if gated(e1, e2) {
				continue
			}
			s.deadlock(e1, e2)
		}
	}
}

// Reports returns the report list, finishing the analysis first.
func (s *Reference) Reports() []Report {
	s.Finish()
	return s.reports
}

// Accesses returns the number of shadow-checked memory accesses.
func (s *Reference) Accesses() int64 { return s.accesses }

// SyncOps returns the number of synchronization events observed.
func (s *Reference) SyncOps() int64 { return s.syncOps }
