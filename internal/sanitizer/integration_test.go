package sanitizer_test

import (
	"os"
	"strings"
	"testing"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

// runSanitized executes src under a random schedule with the sanitizer
// attached and returns the sanitizer plus the run result.
func runSanitized(t *testing.T, src string, seed int64) (*sanitizer.Sanitizer, *interp.Result) {
	t.Helper()
	mod := mir.MustParse(src)
	if err := mir.Verify(mod); err != nil {
		t.Fatalf("verify: %v", err)
	}
	san := sanitizer.New(mod)
	vm := interp.New(mod, interp.Config{
		Sched:     sched.NewRandom(seed),
		MaxSteps:  1_000_000,
		Sanitizer: san,
	})
	return san, vm.Run()
}

const racySrc = `
module racy
global g = 0

func writer() {
entry:
  storeg @g, 1
  ret
}

func reader() {
entry:
  %v = loadg @g
  storeg @g, %v
  ret
}

func main() {
entry:
  %a = spawn writer()
  %b = spawn reader()
  join %a
  join %b
  ret 0
}
`

func TestInterpRacyProgramFlagged(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		san, res := runSanitized(t, racySrc, seed)
		if res.Failure != nil {
			t.Fatalf("seed %d: unexpected failure %v", seed, res.Failure)
		}
		rs := san.Races()
		if len(rs) == 0 {
			t.Fatalf("seed %d: unsynchronized writer/reader not flagged", seed)
		}
		for _, r := range rs {
			if r.Global != "g" {
				t.Fatalf("seed %d: race on %q, want g: %v", seed, r.Global, r)
			}
		}
	}
}

const lockedSrc = `
module locked
global g = 0
global lk = 0

func worker() {
entry:
  %p = addrg @lk
  lock %p
  %v = loadg @g
  %v1 = add %v, 1
  storeg @g, %v1
  unlock %p
  ret
}

func main() {
entry:
  %a = spawn worker()
  %b = spawn worker()
  join %a
  join %b
  %v = loadg @g
  assert %v, "g == 2"
  ret 0
}
`

func TestInterpLockedProgramClean(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		san, res := runSanitized(t, lockedSrc, seed)
		if res.Failure != nil {
			t.Fatalf("seed %d: unexpected failure %v", seed, res.Failure)
		}
		if rs := san.Reports(); len(rs) != 0 {
			t.Fatalf("seed %d: lock-protected counter flagged: %v", seed, rs)
		}
	}
}

const heapRacySrc = `
module heapracy
global p = 0

func worker() {
entry:
  %a = loadg @p
  store %a, 7
  ret
}

func main() {
entry:
  %b = alloc 1
  storeg @p, %b
  %t1 = spawn worker()
  %t2 = spawn worker()
  join %t1
  join %t2
  ret 0
}
`

func TestInterpHeapRaceFlagged(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		san, res := runSanitized(t, heapRacySrc, seed)
		if res.Failure != nil {
			t.Fatalf("seed %d: unexpected failure %v", seed, res.Failure)
		}
		rs := san.Races()
		if len(rs) != 1 {
			t.Fatalf("seed %d: want exactly the heap store race, got %v", seed, rs)
		}
		if rs[0].Kind != sanitizer.KindWriteWrite ||
			!strings.HasPrefix(rs[0].Location(), "heap@") {
			t.Fatalf("seed %d: want write-write heap race, got %v", seed, rs[0])
		}
	}
}

func TestInterpDeadlockPredictedFromTestdata(t *testing.T) {
	src, err := os.ReadFile("../../testdata/deadlock.mir")
	if err != nil {
		t.Fatal(err)
	}
	// The inversion must be predicted whether or not the schedule actually
	// deadlocks: serialized runs keep both lock-order edges, deadlocked
	// runs carry the second edge from the blocked LockRequest.
	sawFailure, sawClean := false, false
	for seed := int64(0); seed < 20; seed++ {
		san, res := runSanitized(t, string(src), seed)
		if res.Failure != nil {
			sawFailure = true
		} else {
			sawClean = true
		}
		dl := san.Deadlocks()
		if len(dl) != 1 {
			t.Fatalf("seed %d (failure=%v): want one deadlock prediction, got %v",
				seed, res.Failure, san.Reports())
		}
		r := dl[0]
		locks := r.LockA + "," + r.LockB
		if locks != "A,B" && locks != "B,A" {
			t.Fatalf("seed %d: wrong lock pair %q", seed, locks)
		}
	}
	if !sawFailure && !sawClean {
		t.Fatal("unreachable")
	}
}

// TestSanitizerPassive verifies the passivity contract directly: the same
// seed with and without the sanitizer attached produces identical results.
func TestSanitizerPassive(t *testing.T) {
	for _, src := range []string{racySrc, lockedSrc, heapRacySrc} {
		mod := mir.MustParse(src)
		for seed := int64(0); seed < 5; seed++ {
			run := func(san interp.Sanitizer) *interp.Result {
				vm := interp.New(mod, interp.Config{
					Sched:         sched.NewRandom(seed),
					MaxSteps:      1_000_000,
					CollectOutput: true,
					Sanitizer:     san,
				})
				return vm.Run()
			}
			plain := run(nil)
			sanitized := run(sanitizer.New(mod))
			if plain.Completed != sanitized.Completed ||
				plain.ExitCode != sanitized.ExitCode ||
				plain.Stats.Steps != sanitized.Stats.Steps {
				t.Fatalf("%s seed %d: sanitized run diverged: %+v vs %+v",
					mod.Name, seed, plain, sanitized)
			}
		}
	}
}
