package interp

import "conair/internal/mir"

// This file holds the interpreter state behind the synchronization
// extensions: condition variables and bounded channels. Both are keyed by
// flat address exactly like mutexes (memory.go) — the address IS the
// object's identity — and both are created lazily at first use.

// condvar is the state attached to an address used by wait/signal/
// broadcast: a FIFO queue of parked thread ids. Signal wakes the
// longest-parked waiter; the FIFO order makes the choice deterministic
// without consuming scheduler randomness.
type condvar struct {
	waiters []int
}

// remove deletes tid from the waiter queue (timed-wait timeout path).
func (cv *condvar) remove(tid int) {
	for i, w := range cv.waiters {
		if w == tid {
			cv.waiters = append(cv.waiters[:i], cv.waiters[i+1:]...)
			return
		}
	}
}

// condvars tracks every address used as a condition variable.
type condvars struct {
	byAddr map[mir.Word]*condvar
}

func newCondvars() *condvars { return &condvars{byAddr: map[mir.Word]*condvar{}} }

func (c *condvars) get(addr mir.Word) *condvar {
	cv := c.byAddr[addr]
	if cv == nil {
		cv = &condvar{}
		c.byAddr[addr] = cv
	}
	return cv
}

// snapshot deep-copies condvar state for whole-state snapshots.
func (c *condvars) snapshot() *condvars {
	cp := newCondvars()
	for a, cv := range c.byAddr {
		cp.byAddr[a] = &condvar{waiters: append([]int(nil), cv.waiters...)}
	}
	return cp
}

// channel is a bounded FIFO channel. Capacity is fixed at creation: the
// value stored in the addressed memory cell at the first channel
// operation, clamped to >= 1 (a degenerate or zero declared capacity
// still yields a usable one-slot channel; rendezvous channels are out of
// scope — every MIR channel is buffered).
type channel struct {
	cap    int
	buf    []mir.Word
	closed bool
}

func (ch *channel) full() bool  { return len(ch.buf) >= ch.cap }
func (ch *channel) empty() bool { return len(ch.buf) == 0 }

// channels tracks every address used as a channel.
type channels struct {
	byAddr map[mir.Word]*channel
}

func newChannels() *channels { return &channels{byAddr: map[mir.Word]*channel{}} }

// get returns the channel at addr, creating it with capacity capHint
// (clamped to >= 1) on first use.
func (c *channels) get(addr mir.Word, capHint mir.Word) *channel {
	ch := c.byAddr[addr]
	if ch == nil {
		n := int(capHint)
		if n < 1 {
			n = 1
		}
		ch = &channel{cap: n}
		c.byAddr[addr] = ch
	}
	return ch
}

// peek returns the channel at addr without creating it, or nil.
func (c *channels) peek(addr mir.Word) *channel { return c.byAddr[addr] }

// snapshot deep-copies channel state for whole-state snapshots.
func (c *channels) snapshot() *channels {
	cp := newChannels()
	for a, ch := range c.byAddr {
		cp.byAddr[a] = &channel{
			cap:    ch.cap,
			buf:    append([]mir.Word(nil), ch.buf...),
			closed: ch.closed,
		}
	}
	return cp
}
