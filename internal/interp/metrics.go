package interp

import (
	"fmt"
	"sync/atomic"

	"conair/internal/obs"
)

// metricsRegistry, when set, receives per-run aggregates (run/step
// counters, rollbacks per site, retry and episode-duration histograms)
// every time a run finishes. The hook fires once per run — never per
// step — so its cost is a handful of atomic adds per completed run.
var metricsRegistry atomic.Pointer[obs.Registry]

// SetMetricsRegistry installs (or, with nil, removes) the process-wide
// metrics registry finished runs report into.
func SetMetricsRegistry(r *obs.Registry) { metricsRegistry.Store(r) }

// Histogram bucket layouts for run-level metrics. Steps per run span six
// orders of magnitude across the workloads; episode durations and retry
// counts are small but heavy-tailed.
var (
	stepsBuckets   = obs.ExpBuckets(1_000, 10, 6) // 1e3 .. 1e8
	episodeBuckets = obs.ExpBuckets(4, 4, 8)      // 4 .. 65536
	retryBuckets   = obs.ExpBuckets(1, 2, 10)     // 1 .. 512
)

func recordRunMetrics(reg *obs.Registry, r *Result) {
	reg.Counter("interp_runs_total").Inc()
	reg.Counter("interp_steps_total").Add(r.Stats.Steps)
	reg.Counter("interp_checkpoints_total").Add(r.Stats.Checkpoints)
	reg.Counter("interp_rollbacks_total").Add(r.Stats.Rollbacks)
	reg.Counter("interp_comp_frees_total").Add(r.Stats.CompFrees)
	reg.Counter("interp_comp_unlocks_total").Add(r.Stats.CompUnlocks)
	if r.Completed {
		reg.Counter("interp_runs_completed_total").Inc()
	} else {
		reg.Counter("interp_runs_failed_total").Inc()
	}
	reg.Histogram("interp_steps_per_run", stepsBuckets).Observe(r.Stats.Steps)
	for i := range r.Stats.Episodes {
		e := &r.Stats.Episodes[i]
		reg.Counter(fmt.Sprintf("interp_rollbacks_site_%d_total", e.Site)).Add(e.Retries)
		reg.Histogram("interp_episode_retries", retryBuckets).Observe(e.Retries)
		if e.Recovered {
			reg.Counter("interp_episodes_recovered_total").Inc()
			reg.Histogram("interp_episode_duration_steps", episodeBuckets).Observe(e.Duration())
		} else {
			reg.Counter("interp_episodes_unrecovered_total").Inc()
		}
	}
}

// recordSuperblockMetrics reports one run's superblock batching activity:
// quanta entered, and the dispatch round-trips saved (instructions retired
// inside quanta minus quanta — the scheduler consumed one decision per
// instruction regardless, so this is pure dispatch overhead removed, never
// a schedule change). Superblock counters are deliberately kept out of
// Stats/Result: results must stay bit-identical between the batched run
// loop and the tree-walking reference interpreter, which has no quanta.
func recordSuperblockMetrics(reg *obs.Registry, quanta, instrs int64) {
	if quanta == 0 {
		return
	}
	reg.Counter("interp_superblocks_executed_total").Add(quanta)
	reg.Counter("interp_quanta_saved_total").Add(instrs - quanta)
}
