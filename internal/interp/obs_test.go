package interp

import (
	"testing"

	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sched"
)

// spinSrc is a register-only infinite loop: the steady-state dispatch
// path with no memory growth, so any per-step allocation is the
// interpreter's own fault.
const spinSrc = `
func main() {
entry:
  %x = const 0
  jmp loop
loop:
  %x = add %x, 1
  jmp loop
}`

func newSpinVM(tb testing.TB) *VM {
	tb.Helper()
	m, err := mir.Parse(spinSrc)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	return New(m, Config{Sched: sched.NewRandom(1), MaxSteps: 1 << 40})
}

// TestDisabledTracingZeroAllocs guards the nil-sink fast path: with no
// tracer attached, steady-state dispatch must not allocate at all.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	vm := newSpinVM(t)
	for i := 0; i < 1000; i++ { // reach steady state first
		if !vm.StepOnce() {
			t.Fatal("spin loop ended early")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			vm.StepOnce()
		}
	})
	if allocs != 0 {
		t.Errorf("dispatch with tracing disabled allocates %.1f allocs per 100 steps, want 0", allocs)
	}
}

// TestTotalsReset exercises the process-wide counters: runs advance them,
// ResetTotals zeroes them so tests never see a previous test's runs.
func TestTotalsReset(t *testing.T) {
	ResetTotals()
	m, err := mir.Parse(`
func main() {
entry:
  %a = const 1
  ret %a
}`)
	if err != nil {
		t.Fatal(err)
	}
	r := RunModule(m, Config{Sched: sched.NewRandom(3)})
	if !r.Completed {
		t.Fatalf("run failed: %+v", r.Failure)
	}
	runs, steps := Totals()
	if runs != 1 {
		t.Errorf("runs = %d, want 1", runs)
	}
	if steps != r.Stats.Steps {
		t.Errorf("steps = %d, want %d", steps, r.Stats.Steps)
	}
	ResetTotals()
	if runs, steps := Totals(); runs != 0 || steps != 0 {
		t.Errorf("after reset: runs=%d steps=%d, want 0/0", runs, steps)
	}
}

// BenchmarkDispatchNoSink measures the per-step cost of the dispatch loop
// with tracing disabled — the configuration every experiment runs in. It
// reports allocations; the acceptance bar is 0 allocs/op and, against the
// pre-observability baseline, <2% regression.
func BenchmarkDispatchNoSink(b *testing.B) {
	vm := newSpinVM(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.StepOnce()
	}
}

// BenchmarkDispatchWithSink is the same loop with a ring tracer attached,
// to quantify the cost of tracing when it is switched on.
func BenchmarkDispatchWithSink(b *testing.B) {
	m, err := mir.Parse(spinSrc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Sched: sched.NewRandom(1), MaxSteps: 1 << 40}
	cfg.Sink = obs.NewTracer(1 << 16)
	vm := New(m, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.StepOnce()
	}
}
