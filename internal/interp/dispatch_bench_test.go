package interp_test

import (
	"runtime"
	"testing"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// Micro-benchmarks for the compiled dispatch loop. Each benchmark executes
// one full run of a fixed-work program per iteration, so ns/op tracks the
// end-to-end per-run cost (compile is cached after the first iteration)
// and the reported steps/op stays constant across changes — regressions
// show up purely in time, not in work.

// dispatchSrc is a tight arithmetic countdown: the loop body is exactly
// the fusion-dominant shape (bin, bin, cmp+br) the sweep hot path runs.
const dispatchSrc = `
func main() {
entry:
  %i = const 100000
  jmp loop
loop:
  %i2 = sub %i, 1
  %i = add %i2, 0
  %c = gt %i, 0
  br %c, loop, done
done:
  ret 0
}`

// callHeavySrc pays a call+ret per loop iteration — the frame push/pop and
// code-pointer refetch path.
const callHeavySrc = `
func work(%x) {
entry:
  %y = add %x, 1
  ret %y
}

func main() {
entry:
  %i = const 40000
  jmp loop
loop:
  %j = call work(%i)
  %i = sub %j, 2
  %c = gt %i, 0
  br %c, loop, done
done:
  ret 0
}`

// heapLoadStoreSrc hammers the flat heap: a store+load pair per iteration.
const heapLoadStoreSrc = `
func main() {
entry:
  %i = const 40000
  %p = alloc 4
  jmp loop
loop:
  store %p, %i
  %v = load %p
  %i = sub %v, 1
  %c = gt %i, 0
  br %c, loop, done
done:
  free %p
  ret 0
}`

func benchModule(b *testing.B, src string) *mir.Module {
	b.Helper()
	m, err := mir.Parse(src)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	return m
}

func benchRun(b *testing.B, src string, cfg func(seed int64) interp.Config) {
	b.Helper()
	m := benchModule(b, src)
	// Hoist program preparation out of the timed loop: the first RunModule
	// call would otherwise pay the one-time compile inside the measurement,
	// skewing low-N runs.
	interp.Compile(m)
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := interp.RunModule(m, cfg(1))
		if !r.Completed {
			b.Fatalf("run failed: %+v", r.Failure)
		}
		steps = r.Stats.Steps
	}
	b.ReportMetric(float64(steps), "steps/op")
}

func defaultCfg(seed int64) interp.Config {
	return interp.Config{Sched: sched.NewRandom(seed), MaxSteps: 10_000_000}
}

func noBatchCfg(seed int64) interp.Config {
	cfg := defaultCfg(seed)
	cfg.NoSuperblocks = true
	return cfg
}

func BenchmarkDispatch(b *testing.B)      { benchRun(b, dispatchSrc, defaultCfg) }
func BenchmarkCallHeavy(b *testing.B)     { benchRun(b, callHeavySrc, defaultCfg) }
func BenchmarkHeapLoadStore(b *testing.B) { benchRun(b, heapLoadStoreSrc, defaultCfg) }

// superblockSrc is the batching-dominant shape: a long straight-line run
// of thread-local arithmetic per loop iteration, so nearly every
// instruction rides the closure chain inside one superblock quantum.
const superblockSrc = `
func main() {
entry:
  %i = const 12000
  jmp loop
loop:
  %a = add %i, 3
  %b = sub %a, 1
  %c = mul %b, 2
  %d = add %c, 5
  %e = sub %d, %c
  %f = add %e, %b
  %i = sub %i, 1
  %more = gt %i, 0
  br %more, loop, done
done:
  ret 0
}`

// BenchmarkSuperblockDispatch measures the closure-chain fast path; the
// NoBatch variant forces the same program through the central dispatch
// switch (one pickThread round-trip per instruction) and the Reference
// variant tree-walks the original mir.Instr stream, so the two speedup
// tiers — AOT compilation and superblock batching — are separable from
// one binary:
//
//	go test ./internal/interp -bench SuperblockDispatch
func BenchmarkSuperblockDispatch(b *testing.B)        { benchRun(b, superblockSrc, defaultCfg) }
func BenchmarkSuperblockDispatchNoBatch(b *testing.B) { benchRun(b, superblockSrc, noBatchCfg) }
func BenchmarkSuperblockDispatchReference(b *testing.B) {
	benchRunRef(b, superblockSrc)
}

// The Reference variants run the same programs through RunReference — the
// pre-compilation execution path kept for differential testing — so the
// compiled loop's speedup is measurable from one binary:
//
//	go test ./internal/interp -bench 'Dispatch|CallHeavy|HeapLoadStore'
func benchRunRef(b *testing.B, src string) {
	b.Helper()
	m := benchModule(b, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := interp.RunReference(m, interp.Config{
			Sched: sched.NewRandom(1), MaxSteps: 10_000_000,
		})
		if !r.Completed {
			b.Fatalf("run failed: %+v", r.Failure)
		}
	}
}

func BenchmarkDispatchReference(b *testing.B)      { benchRunRef(b, dispatchSrc) }
func BenchmarkCallHeavyReference(b *testing.B)     { benchRunRef(b, callHeavySrc) }
func BenchmarkHeapLoadStoreReference(b *testing.B) { benchRunRef(b, heapLoadStoreSrc) }

// runMallocs returns the number of heap allocations one run of m with the
// given step budget performs.
func runMallocs(m *mir.Module, maxSteps int64) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1), MaxSteps: maxSteps})
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestDispatchSteadyStateZeroAllocs is the allocation-regression guard for
// the hot loop: the marginal allocation cost of executing more steps must
// be zero. Each run pays a constant setup (VM, threads, result); comparing
// a short and a long run of the same non-terminating program cancels that
// constant, so any per-step allocation — however small — fails the guard.
func TestDispatchSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"arithmetic", `
func main() {
entry:
  %i = const 1
  jmp loop
loop:
  %j = add %i, 1
  %i = sub %j, 1
  %c = gt %i, 0
  br %c, loop, loop
}`},
		// Calls recycle frames through the freelist, so even the
		// call-heavy loop must reach a zero-allocation steady state.
		{"call-heavy", `
func work(%x) {
entry:
  %y = add %x, 1
  ret %y
}

func main() {
entry:
  %i = const 1
  jmp loop
loop:
  %j = call work(%i)
  %i = sub %j, 1
  %c = gt %i, 0
  br %c, loop, loop
}`},
		// The closure-chain (superblock) path: a long straight-line run of
		// eligible instructions per iteration, so almost every step executes
		// inside a batched quantum rather than the dispatch switch.
		{"superblock", `
func main() {
entry:
  %i = const 1
  jmp loop
loop:
  %a = add %i, 3
  %b = sub %a, 1
  %c = mul %b, 2
  %d = add %c, 5
  %e = sub %d, %c
  %i = add %e, 0
  %i = sub %i, %b
  %k = gt %i, -1000000000
  br %k, loop, loop
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := mir.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			interp.Compile(m) // warm the program cache outside the measurement

			short := runMallocs(m, 100_000)
			long := runMallocs(m, 400_000)
			// Identical setup on both runs; 300k extra steps must allocate
			// nothing. A little slack absorbs runtime-internal noise (GC
			// bookkeeping in ReadMemStats itself).
			const slack = 8
			if long > short+slack {
				t.Fatalf("dispatch loop allocates in steady state: %d mallocs for 100k steps, %d for 400k (marginal %d)",
					short, long, long-short)
			}
		})
	}
}
