package interp

import (
	"fmt"
	"strings"
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

// recSan records every sanitizer callback as one line, to pin the hook
// placement contract documented on the Sanitizer interface.
type recSan struct {
	events []string
}

func (r *recSan) add(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recSan) ThreadSpawn(parent, child int) { r.add("spawn %d->%d", parent, child) }
func (r *recSan) ThreadJoin(waiter, target int) { r.add("join %d<-%d", waiter, target) }
func (r *recSan) LockRequest(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	r.add("request t%d %s timed=%v", tid, lockLabel(addr), timed)
}
func (r *recSan) LockAcquire(tid int, addr mir.Word, timed bool, pos mir.Pos) {
	r.add("acquire t%d %s timed=%v", tid, lockLabel(addr), timed)
}
func (r *recSan) LockRelease(tid int, addr mir.Word) {
	r.add("release t%d %s", tid, lockLabel(addr))
}
func (r *recSan) Access(tid int, addr mir.Word, write bool, pos mir.Pos) {
	r.add("access t%d g%d write=%v", tid, addr-GlobalBase, write)
}
func (r *recSan) CondSignal(tid int, cv mir.Word, broadcast bool, pos mir.Pos) {
	r.add("signal t%d %s broadcast=%v", tid, lockLabel(cv), broadcast)
}
func (r *recSan) CondWake(tid int, cv mir.Word, pos mir.Pos) {
	r.add("condwake t%d %s", tid, lockLabel(cv))
}
func (r *recSan) ChanSend(tid int, ch mir.Word, pos mir.Pos) {
	r.add("chsend t%d %s", tid, lockLabel(ch))
}
func (r *recSan) ChanRecv(tid int, ch mir.Word, pos mir.Pos) {
	r.add("chrecv t%d %s", tid, lockLabel(ch))
}
func (r *recSan) ChanClose(tid int, ch mir.Word, pos mir.Pos) {
	r.add("chclose t%d %s", tid, lockLabel(ch))
}
func (r *recSan) AtomicCAS(tid int, addr mir.Word, success bool, pos mir.Pos) {
	r.add("cas t%d %s success=%v", tid, lockLabel(addr), success)
}

func lockLabel(addr mir.Word) string { return fmt.Sprintf("g%d", addr-GlobalBase) }

// The child's work is strictly serialized against main by the join, so the
// full event sequence is schedule-independent.
const sanHookSrc = `
module hooks
global g = 0
global lk = 0

func child() {
entry:
  %p = addrg @lk
  lock %p
  %v = loadg @g
  %v1 = add %v, 1
  storeg @g, %v1
  unlock %p
  %t = timedlock %p, 50
  unlock %p
  ret
}

func main() {
entry:
  %c = spawn child()
  join %c
  %v = loadg @g
  ret %v
}
`

func TestSanitizerHookSequence(t *testing.T) {
	mod := mir.MustParse(sanHookSrc)
	want := []string{
		"spawn -1->0",
		"spawn 0->1",
		"acquire t1 g1 timed=false",
		"access t1 g0 write=false",
		"access t1 g0 write=true",
		"release t1 g1",
		"acquire t1 g1 timed=true",
		"release t1 g1",
		"join 0<-1",
		"access t0 g0 write=false",
	}
	for seed := int64(0); seed < 5; seed++ {
		rec := &recSan{}
		vm := New(mod, Config{Sched: sched.NewRandom(seed), Sanitizer: rec})
		res := vm.Run()
		if !res.Completed || res.ExitCode != 1 {
			t.Fatalf("seed %d: run failed: %+v", seed, res)
		}
		got := strings.Join(rec.events, "\n")
		if got != strings.Join(want, "\n") {
			t.Fatalf("seed %d: event sequence mismatch:\ngot:\n%s\nwant:\n%s",
				seed, got, strings.Join(want, "\n"))
		}
	}
}

// TestSanitizerLockRequestOnBlock checks that a blocking acquisition fires
// LockRequest exactly once even across repeated scheduling of the blocked
// thread, and that the eventual success still fires LockAcquire.
func TestSanitizerLockRequestOnBlock(t *testing.T) {
	const src = `
module blockreq
global lk = 0

func child() {
entry:
  %p = addrg @lk
  lock %p
  unlock %p
  ret
}

func main() {
entry:
  %p = addrg @lk
  lock %p
  %c = spawn child()
  sleep 200
  unlock %p
  join %c
  ret 0
}
`
	mod := mir.MustParse(src)
	blockedSeen := false
	for seed := int64(0); seed < 20; seed++ {
		rec := &recSan{}
		vm := New(mod, Config{Sched: sched.NewRandom(seed), Sanitizer: rec})
		if res := vm.Run(); !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		var requests, acquires int
		for _, e := range rec.events {
			if strings.HasPrefix(e, "request t1") {
				requests++
			}
			if strings.HasPrefix(e, "acquire t1") {
				acquires++
			}
		}
		if acquires != 1 {
			t.Fatalf("seed %d: child must acquire exactly once, got %d", seed, acquires)
		}
		if requests > 1 {
			t.Fatalf("seed %d: blocked request fired %d times", seed, requests)
		}
		if requests == 1 {
			blockedSeen = true
		}
	}
	if !blockedSeen {
		t.Fatal("no seed exercised the blocking path; main's sleep should force it")
	}
}
