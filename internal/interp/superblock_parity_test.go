package interp_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/obs"
	"conair/internal/sched"
)

// The superblock-parity tests pin the batching contract stated in
// config.go: a run with superblock quantum batching enabled (the default)
// is observation-equivalent to the same run with NoSuperblocks — identical
// Result (completion, failure, exit code, outputs, step counts, recovery
// stats) AND an identical schedule-decision stream, decision by decision.
// The second half is the stronger claim: batching may only change how many
// times the dispatch switch runs, never which thread is picked at which
// virtual-time step, because the future record-and-replay work keys off
// that stream.

const (
	parityMaxSteps = 150_000
	// Ring capacity sized so no event is ever dropped at parityMaxSteps:
	// one KindSchedPick per executed instruction plus lifecycle, lock and
	// output events, which the corpus keeps well under 2x the pick count.
	parityTracerCap = 1 << 19
)

// schedPick is one scheduling decision: thread tid was chosen at virtual
// time step.
type schedPick struct {
	step int64
	tid  int32
}

// runTraced executes m once with a dedicated tracer and returns the
// Result plus the full schedule-decision stream.
func runTraced(t *testing.T, m *mir.Module, seed int64, noSuperblocks bool) (*interp.Result, []schedPick) {
	t.Helper()
	tr := obs.NewTracer(parityTracerCap)
	r := interp.RunModule(m, interp.Config{
		Sched:         sched.NewRandom(seed),
		MaxSteps:      parityMaxSteps,
		CollectOutput: true,
		Sink:          tr,
		NoSuperblocks: noSuperblocks,
	})
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("tracer dropped %d events; raise parityTracerCap", d)
	}
	var picks []schedPick
	for _, e := range tr.Events() {
		if e.Kind == obs.KindSchedPick {
			picks = append(picks, schedPick{e.Step, e.TID})
		}
	}
	return r, picks
}

// parityCompare runs m under both dispatch modes across seeds and fails on
// any divergence.
func parityCompare(t *testing.T, name string, m *mir.Module, seeds []int64) {
	t.Helper()
	for _, seed := range seeds {
		batched, batchedPicks := runTraced(t, m, seed, false)
		plain, plainPicks := runTraced(t, m, seed, true)

		if !reflect.DeepEqual(batched, plain) {
			t.Errorf("%s seed %d: batched and unbatched results differ\nbatched:   %+v\nunbatched: %+v",
				name, seed, batched, plain)
			if batched.Failure != nil || plain.Failure != nil {
				t.Errorf("failures: batched=%+v unbatched=%+v", batched.Failure, plain.Failure)
			}
			return
		}
		if len(batchedPicks) != len(plainPicks) {
			t.Errorf("%s seed %d: schedule streams differ in length: batched=%d unbatched=%d",
				name, seed, len(batchedPicks), len(plainPicks))
			return
		}
		for i := range batchedPicks {
			if batchedPicks[i] != plainPicks[i] {
				t.Errorf("%s seed %d: schedule streams diverge at decision %d: batched=%+v unbatched=%+v",
					name, seed, i, batchedPicks[i], plainPicks[i])
				return
			}
		}
	}
}

// TestSuperblockParityTestdata runs every checked-in .mir program — raw
// and hardened — batched against unbatched across several seeds.
func TestSuperblockParityTestdata(t *testing.T) {
	files := testdataPrograms(t)
	seeds := []int64{0, 1, 7, 42, 12345}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mir.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := filepath.Base(path)
		parityCompare(t, name, m, seeds)

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: harden: %v", path, err)
		}
		parityCompare(t, name+"+hardened", h.Module, seeds)
	}
}

// TestSuperblockParityMirgen sweeps 50 generated programs — cycling
// thread counts and all bug templates, each raw AND hardened — batched
// against unbatched. Hardened programs are the leg that matters most
// here: checkpoints, site branches and recovery blocks are exactly the
// scheduling-relevant instructions that must break superblocks.
func TestSuperblockParityMirgen(t *testing.T) {
	bugs := []mirgen.BugKind{
		mirgen.BugNone, mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock,
		mirgen.BugCASABA,
	}
	seeds := []int64{0, 3}
	for i := 0; i < 50; i++ {
		cfg := mirgen.Config{
			Seed:    int64(i),
			Threads: i % 4,
			Bug:     bugs[i%len(bugs)],
		}
		m := mirgen.Gen(cfg)
		name := cfg.Bug.String()
		parityCompare(t, name, m, seeds)

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: harden: %v", i, err)
		}
		parityCompare(t, name+"+hardened", h.Module, seeds)
	}
}
