package interp

import (
	"testing"

	"conair/internal/mir"
	"conair/internal/mirgen"
)

// compileSrc is a small module exercising every lowering shape the unit
// tests below pin down: multiple functions, multiple blocks, branches,
// immediate and register operands, and the three fusion patterns.
const compileSrc = `
module compiletest
global flag = 0

func helper(%x) {
entry:
  %a = loads $tmp
  %b = add %a, 1
  %c = add 20, 22
  ret %c
}

func main() {
entry:
  %i = const 0
  %n = const 3
  jmp loop
loop:
  %i2 = add %i, 1
  %i = add %i2, 0
  %more = lt %i, %n
  br %more, loop, done
done:
  %f = loadg @flag
  br %f, yes, no
yes:
  %r = call helper(%i)
  ret %r
no:
  ret 0
}
`

func compileTestModule(t *testing.T) *mir.Module {
	t.Helper()
	m, err := mir.Parse(compileSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// TestCompilePositions pins the 1:1 slot mapping: the compiled stream of
// every function has exactly NumInstrs slots, blockStart matches
// BlockOffsets, and each slot's precomputed pos round-trips through
// FlatPos. Positions must survive fusion (heads keep the head's pos).
func TestCompilePositions(t *testing.T) {
	mods := []*mir.Module{
		compileTestModule(t),
		mirgen.Gen(mirgen.Config{Seed: 1, Threads: 2}),
		mirgen.Gen(mirgen.Config{Seed: 2, Bug: mirgen.BugOrder}),
	}
	for mi, m := range mods {
		p := Compile(m)
		if len(p.funcs) != len(m.Functions) {
			t.Fatalf("module %d: %d compiled funcs for %d source funcs",
				mi, len(p.funcs), len(m.Functions))
		}
		for fi := range m.Functions {
			f := &m.Functions[fi]
			fc := &p.funcs[fi]
			if got, want := len(fc.code), f.NumInstrs(); got != want {
				t.Fatalf("module %d func %d: %d slots, want %d", mi, fi, got, want)
			}
			offs := f.BlockOffsets()
			for b, off := range offs {
				if fc.blockStart[b] != off {
					t.Fatalf("module %d func %d block %d: start %d, want %d",
						mi, fi, b, fc.blockStart[b], off)
				}
			}
			for b := range f.Blocks {
				for i := range f.Blocks[b].Instrs {
					pc := int(offs[b]) + i
					want := mir.Pos{Fn: fi, Block: b, Index: i}
					if fc.code[pc].pos != want {
						t.Fatalf("module %d func %d pc %d: pos %v, want %v",
							mi, fi, pc, fc.code[pc].pos, want)
					}
					if got := f.FlatPos(fi, pc); got != want {
						t.Fatalf("FlatPos(%d) = %v, want %v", pc, got, want)
					}
				}
			}
		}
	}
}

// TestCompileBranchTargets checks that br/jmp lower to absolute flat pcs:
// blockStart of the source target block. Branch slots are never fusion
// heads, so they can be checked in compiled form directly; fused heads
// that absorb a branch must carry the same targets.
func TestCompileBranchTargets(t *testing.T) {
	m := compileTestModule(t)
	p := Compile(m)
	for fi := range m.Functions {
		f := &m.Functions[fi]
		fc := &p.funcs[fi]
		offs := f.BlockOffsets()
		for b := range f.Blocks {
			for i := range f.Blocks[b].Instrs {
				in := &f.Blocks[b].Instrs[i]
				c := &fc.code[int(offs[b])+i]
				switch in.Op {
				case mir.OpBr:
					if c.op != cBr {
						t.Fatalf("func %d br at %d:%d compiled to op %d", fi, b, i, c.op)
					}
					if c.thenPC != offs[in.Then] || c.elsePC != offs[in.Else] {
						t.Fatalf("br targets (%d,%d), want (%d,%d)",
							c.thenPC, c.elsePC, offs[in.Then], offs[in.Else])
					}
				case mir.OpJmp:
					if c.op != cJmp || c.thenPC != offs[in.Then] {
						t.Fatalf("jmp target %d, want %d", c.thenPC, offs[in.Then])
					}
				}
				switch c.op {
				case cFusedBinBr, cFusedLoadGBr:
					br := &f.Blocks[b].Instrs[i+1]
					if c.thenPC != offs[br.Then] || c.elsePC != offs[br.Else] {
						t.Fatalf("fused br targets (%d,%d), want (%d,%d)",
							c.thenPC, c.elsePC, offs[br.Then], offs[br.Else])
					}
				}
			}
		}
	}
}

// findInstr returns the compiled slot for the first source instruction in
// fn satisfying pred, or -1.
func findSlot(t *testing.T, p *Program, fi int, pred func(c *cinstr) bool) int {
	t.Helper()
	for pc := range p.funcs[fi].code {
		if pred(&p.funcs[fi].code[pc]) {
			return pc
		}
	}
	return -1
}

// TestCompileOperandBinding pins the operand pre-binding rules: register
// operands carry their slot, immediates carry -1 plus the value, and a bin
// with two immediates constant-folds to cConst at compile time.
func TestCompileOperandBinding(t *testing.T) {
	m := compileTestModule(t)
	p := Compile(m)

	// helper: %b = add %a, 1 → cBinRI (fused into cFusedConstBin? no —
	// its head is loads, not const; the slot stays plain or is a BinBr
	// head; here the next instr is another bin, so it stays cBinRI).
	ri := findSlot(t, p, 0, func(c *cinstr) bool { return c.op == cBinRI })
	if ri < 0 {
		t.Fatal("no cBinRI slot in helper")
	}
	c := &p.funcs[0].code[ri]
	if c.aReg < 0 || c.bReg >= 0 || c.bImm != 1 {
		t.Fatalf("cBinRI binding: aReg=%d bReg=%d bImm=%d", c.aReg, c.bReg, c.bImm)
	}

	// helper: %c = add 20, 22 → folded to cConst 42. The fold leaves it a
	// const head, so it may be refused with the following ret? ret is not
	// a bin — the slot stays cConst.
	fold := findSlot(t, p, 0, func(c *cinstr) bool {
		return c.op == cConst && c.aImm == 42
	})
	if fold < 0 {
		t.Fatal("add 20, 22 did not constant-fold to cConst 42")
	}
}

// TestCompileFusion checks the super-instruction patterns appear exactly
// where their source pairs warrant them under the superblock split: pairs
// with a scheduling-relevant side still fuse (bin + site-tagged br, loadg +
// br), pairs of scheduling-irrelevant instructions do not — they ride the
// superblock closure chain instead. Only the head slot of a fused pair is
// rewritten; the tail keeps its unfused form as the mid-pair bail-out
// target.
func TestCompileFusion(t *testing.T) {
	m := compileTestModule(t)
	p := Compile(m)
	mainFn := 1

	// loop: %more = lt %i, %n ; br %more — a plain (site-0) branch and its
	// bin are both scheduling-irrelevant, so the pair must NOT fuse: both
	// slots stay closure-backed in one superblock.
	if bb := findSlot(t, p, mainFn, func(c *cinstr) bool { return c.op == cFusedBinBr }); bb >= 0 {
		t.Fatalf("site-0 bin+br fused at pc %d; should ride the superblock path", bb)
	}

	// done: %f = loadg @flag ; br %f → cFusedLoadGBr (the global load is
	// scheduling-relevant, so the pair cannot batch and fusion still pays).
	lb := findSlot(t, p, mainFn, func(c *cinstr) bool { return c.op == cFusedLoadGBr })
	if lb < 0 {
		t.Fatal("no cFusedLoadGBr in main")
	}
	lhead := &p.funcs[mainFn].code[lb]
	ltail := &p.funcs[mainFn].code[lb+1]
	if ltail.op != cBr {
		t.Fatalf("loadg+br tail not left unfused: op %d", ltail.op)
	}
	if lhead.x2 != ltail.aReg || lhead.thenPC != ltail.thenPC || lhead.elsePC != ltail.elsePC {
		t.Fatalf("fused payload (x2=%d then=%d else=%d) != tail (%d,%d,%d)",
			lhead.x2, lhead.thenPC, lhead.elsePC, ltail.aReg, ltail.thenPC, ltail.elsePC)
	}
	// The head absorbs the global load and must stay on the dispatch
	// switch; the tail is a plain site-0 br, which legitimately keeps its
	// closure for the mid-pair bail-out path.
	if lhead.run != nil {
		t.Fatal("fused head must stay off the superblock closure path")
	}
	if ltail.run == nil {
		t.Fatal("plain br tail should stay closure-backed")
	}

	// A bin feeding a site-tagged branch — the transformed failure-check
	// shape — must still fuse: the branch closes recovery episodes, so the
	// superblock path cannot absorb it. Sites on branches are only ever set
	// programmatically (by the transform pass); mark the loop branch as a
	// failure site before compiling a fresh module.
	m2 := compileTestModule(t)
	mf := &m2.Functions[1]
	tagged := false
	for b := range mf.Blocks {
		for i := 1; i < len(mf.Blocks[b].Instrs); i++ {
			in := &mf.Blocks[b].Instrs[i]
			if in.Op == mir.OpBr && in.A.Kind == mir.OperandReg &&
				mf.Blocks[b].Instrs[i-1].Op == mir.OpBin {
				in.Site = 7
				tagged = true
			}
		}
	}
	if !tagged {
		t.Fatal("no bin+br pair found to tag")
	}
	p2 := Compile(m2)
	bb := findSlot(t, p2, 1, func(c *cinstr) bool { return c.op == cFusedBinBr })
	if bb < 0 {
		t.Fatal("no cFusedBinBr for site-tagged bin+br")
	}
	head := &p2.funcs[1].code[bb]
	tail := &p2.funcs[1].code[bb+1]
	if tail.op != cBr {
		t.Fatalf("fused tail not left unfused: op %d", tail.op)
	}
	if head.site != 7 {
		t.Fatalf("fused head site = %d, want the branch's 7", head.site)
	}
	if head.x2 != tail.aReg || head.thenPC != tail.thenPC || head.elsePC != tail.elsePC {
		t.Fatalf("fused payload (x2=%d then=%d else=%d) != tail (%d,%d,%d)",
			head.x2, head.thenPC, head.elsePC, tail.aReg, tail.thenPC, tail.elsePC)
	}

	// const+bin — the pattern the retired cFusedConstBin covered — now
	// compiles to two closure-backed slots in one superblock.
	m3, err := mir.Parse(`
func main() {
entry:
  %a = const 5
  %b = add %a, 2
  ret %b
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p3 := Compile(m3)
	h, tl := &p3.funcs[0].code[0], &p3.funcs[0].code[1]
	if h.op != cConst || tl.op != cBinRI {
		t.Fatalf("const+bin ops = (%d,%d), want plain (cConst,cBinRI)", h.op, tl.op)
	}
	if h.run == nil || tl.run == nil {
		t.Fatal("const+bin pair must be closure-backed")
	}
	if got := p3.funcs[0].sbLen[0]; got != 2 {
		t.Fatalf("const+bin superblock length = %d, want 2", got)
	}
}

// TestCompileCache pins the memoization contract: same module pointer,
// same Program; a distinct module (even with identical source) compiles
// separately.
func TestCompileCache(t *testing.T) {
	m := compileTestModule(t)
	if Compile(m) != Compile(m) {
		t.Fatal("Compile not memoized by module pointer")
	}
	if Compile(compileTestModule(t)) == Compile(m) {
		t.Fatal("distinct modules share a Program")
	}
}
