// Package interp executes MIR modules under a controllable multi-threaded
// virtual machine. It is the substrate standing in for pthreads, the OS
// scheduler and setjmp/longjmp in the ConAir reproduction:
//
//   - threads run MIR functions over a shared flat address space of
//     globals and heap blocks, with per-frame virtual registers and stack
//     slots;
//   - a pluggable, seeded scheduler decides which thread steps next, so
//     failure-inducing interleavings are forcible and runs are repeatable;
//   - locks support acquisition timeouts (pthread_mutex_timedlock);
//   - the ConAir recovery instructions (checkpoint, rollback) implement
//     single-threaded idempotent reexecution: checkpoint snapshots the
//     current frame's register image and program counter, rollback
//     compensates region-acquired resources and longjmps back;
//   - failures (assert violations, wrong outputs, segfaults, deadlocks,
//     hangs) are detected and reported with their site and position.
package interp

import (
	"io"
	"sync/atomic"

	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sched"
)

// Address-space layout. Addresses at or below LowerBound are invalid to
// dereference; ConAir's transformed pointer sanity check tests p >
// LowerBound exactly as in Figure 5c of the paper.
const (
	// LowerBound is the paper's default invalid-pointer boundary (10,000).
	LowerBound mir.Word = 10000
	// GlobalBase is the address of global index 0.
	GlobalBase mir.Word = 1 << 20
	// HeapBase is the first heap address.
	HeapBase mir.Word = 1 << 30
)

// Config controls one interpreter run.
type Config struct {
	// Sched picks the next thread; required. Use sched.NewRandom(seed)
	// for the repeated-run experiments.
	Sched sched.Scheduler
	// MaxSteps aborts the run with a hang failure after this many executed
	// instructions (0 means the DefaultMaxSteps cutoff). It is the
	// stand-in for "the program stopped responding".
	MaxSteps int64
	// CollectOutput retains output events in the result (on by default in
	// Run helpers; costs memory on long runs).
	CollectOutput bool
	// MaxThreads bounds thread creation (default DefaultMaxThreads).
	MaxThreads int
	// NoDeadlockCycles disables wait-for-graph deadlock detection on
	// untimed lock acquisitions; the deadlock then manifests only once no
	// thread can run, or at the step limit. Hardened programs are
	// unaffected either way: their kept lock sites use timed locks, whose
	// self-resolving edges never form a reportable cycle.
	NoDeadlockCycles bool
	// Trace, when non-nil, receives one line per executed instruction:
	// "step=N tid=T pos=F:B:I op". It slows execution by an order of
	// magnitude; use for debugging.
	Trace io.Writer
	// Sink, when non-nil, receives structured trace events (scheduling
	// decisions, checkpoints, rollbacks, recovery episodes, lock and
	// thread lifecycle events, failures, outputs). Recording is passive:
	// a traced run is bit-identical to an untraced one. When nil — the
	// default — the dispatch loop pays only a pointer check per event
	// site and allocates nothing.
	Sink *obs.Tracer
	// NoSuperblocks disables superblock quantum batching, forcing every
	// instruction through the central dispatch switch. Batching is
	// observation-equivalent by construction — one scheduler decision per
	// instruction either way — so this exists for the parity tests (which
	// compare batched against unbatched runs) and for debugging, not as a
	// semantic knob.
	NoSuperblocks bool
	// Sanitizer, when non-nil, receives synchronization and shared-memory
	// events for dynamic race and deadlock detection (see the Sanitizer
	// interface). It has the same contract as Sink: observation is
	// passive — a sanitized run is bit-identical to an unsanitized one —
	// and the nil default costs one pointer check per hook site with zero
	// allocations.
	Sanitizer Sanitizer
	// Interrupt, when non-nil, is a cooperative cancellation flag: the run
	// loop polls it every interruptPeriod steps and aborts the run with a
	// hang failure ("interrupted") once it reads true. It is the runner's
	// wall-clock watchdog hook; unlike MaxSteps the abort point is
	// timing-dependent, so interrupted runs are not deterministic. When
	// nil — the default — the loop pays one pointer compare per poll site
	// and nothing else.
	Interrupt *atomic.Bool
}

// Defaults for Config zero values.
const (
	DefaultMaxSteps   = int64(50_000_000)
	DefaultMaxThreads = 256
)

func (c *Config) maxSteps() int64 {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return DefaultMaxSteps
}

func (c *Config) maxThreads() int {
	if c.MaxThreads > 0 {
		return c.MaxThreads
	}
	return DefaultMaxThreads
}
