package interp_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/sched"
)

// The differential tests pin the ahead-of-time compiled execution path
// (interp.Run) against the reference interpreter (interp.RunReference),
// which still walks the original mir.Instr stream through eval(). Any
// divergence in Results — completion, failure kind/position/message, exit
// code, outputs, step counts, checkpoint/rollback stats, recovery
// episodes — is a compiler bug.

const diffMaxSteps = 2_000_000

func diffCompare(t *testing.T, name string, m *mir.Module, seeds []int64) {
	t.Helper()
	for _, seed := range seeds {
		cfgA := interp.Config{
			Sched: sched.NewRandom(seed), MaxSteps: diffMaxSteps, CollectOutput: true,
		}
		cfgB := interp.Config{
			Sched: sched.NewRandom(seed), MaxSteps: diffMaxSteps, CollectOutput: true,
		}
		got := interp.RunModule(m, cfgA)
		want := interp.RunReference(m, cfgB)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s seed %d: compiled and reference results differ\ncompiled:  %+v\nreference: %+v",
				name, seed, got, want)
			if got.Failure != nil || want.Failure != nil {
				t.Errorf("failures: compiled=%+v reference=%+v", got.Failure, want.Failure)
			}
			return
		}
	}
}

// testdataPrograms globs every checked-in .mir program: the top-level
// exemplars and the real-bug corpus models (which exercise the condvar,
// channel and cas instructions on realistic programs).
func testdataPrograms(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pattern := range []string{"../../testdata/*.mir", "../bugs/testdata/*.mir"} {
		fs, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	return files
}

// TestDifferentialTestdata runs every checked-in .mir program — raw and
// hardened — under both interpreters across several seeds.
func TestDifferentialTestdata(t *testing.T) {
	files := testdataPrograms(t)
	seeds := []int64{0, 1, 7, 42, 12345}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mir.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := filepath.Base(path)
		diffCompare(t, name, m, seeds)

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: harden: %v", path, err)
		}
		diffCompare(t, name+"+hardened", h.Module, seeds)
	}
}

// TestDifferentialMirgen sweeps 50 generated programs — cycling thread
// counts and all bug templates, raw and hardened — under both
// interpreters. This is the broad-coverage leg: generated programs hit
// operand shapes, fusion pairs, checkpoint/rollback, lock and thread
// interleavings that the handwritten programs do not.
func TestDifferentialMirgen(t *testing.T) {
	bugs := []mirgen.BugKind{
		mirgen.BugNone, mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock,
		mirgen.BugCASABA,
	}
	seeds := []int64{0, 3}
	for i := 0; i < 50; i++ {
		cfg := mirgen.Config{
			Seed:    int64(i),
			Threads: i % 4,
			Bug:     bugs[i%len(bugs)],
		}
		m := mirgen.Gen(cfg)
		name := cfg.Bug.String()
		diffCompare(t, name, m, seeds)

		if i%5 == 0 { // hardened leg on a subset: Harden dominates runtime
			h, err := core.Harden(m, core.DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: harden: %v", i, err)
			}
			diffCompare(t, name+"+hardened", h.Module, seeds)
		}
	}
}
