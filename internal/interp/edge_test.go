package interp

import (
	"strings"
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

func TestThreadLimitEnforced(t *testing.T) {
	src := `
func w() {
entry:
  sleep 100000
  ret
}
func main() {
entry:
  %i = const 0
  jmp loop
loop:
  %t = spawn w()
  %i2 = add %i, 1
  %i = add %i2, 0
  %c = lt %i, 1000
  br %c, loop, out
out:
  ret
}`
	m := mir.MustParse(src)
	r := RunModule(m, Config{Sched: sched.NewRandom(1), MaxThreads: 8})
	if r.Completed || r.Failure == nil {
		t.Fatal("expected thread-limit failure")
	}
	if !strings.Contains(r.Failure.Msg, "thread limit") {
		t.Errorf("failure = %q", r.Failure.Msg)
	}
}

func TestOutputNotCollectedByDefault(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  output "x", 1
  ret
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || len(r.Output) != 0 {
		t.Fatalf("output should not be collected: %+v", r.Output)
	}
}

func TestJoinOnFinishedAndInvalidThread(t *testing.T) {
	src := `
func w() {
entry:
  ret
}
func main() {
entry:
  %t = spawn w()
  sleep 50
  join %t
  %bogus = const 999
  join %bogus
  ret 7
}`
	m := mir.MustParse(src)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 7 {
		t.Fatalf("join semantics: %+v", r)
	}
}

func TestSelfDeadlockOnPlainLock(t *testing.T) {
	m := mir.MustParse(`
global L = 0
func main() {
entry:
  %p = addrg @L
  lock %p
  lock %p
  ret
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if r.Completed || r.Failure.Kind != mir.FailHang {
		t.Fatalf("self-deadlock: %+v", r)
	}
	if !strings.Contains(r.Failure.Msg, "self-deadlock") {
		t.Errorf("msg = %q", r.Failure.Msg)
	}
}

func TestSelfTimedLockTimesOutImmediately(t *testing.T) {
	m := mir.MustParse(`
global L = 0
func main() {
entry:
  %p = addrg @L
  lock %p
  %got = timedlock %p, 100
  unlock %p
  ret %got
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 0 {
		t.Fatalf("self timed-lock should report timeout: %+v", r)
	}
	if r.Stats.Steps > 50 {
		t.Errorf("self timed-lock should not wait out the timeout (%d steps)", r.Stats.Steps)
	}
}

func TestUnlockNotHeldIsIgnored(t *testing.T) {
	m := mir.MustParse(`
global L = 0
func other() {
entry:
  %p = addrg @L
  lock %p
  sleep 100
  unlock %p
  ret
}
func main() {
entry:
  %t = spawn other()
  sleep 20
  %p = addrg @L
  unlock %p
  join %t
  ret 3
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 3 {
		t.Fatalf("foreign unlock must be a no-op: %+v", r)
	}
}

func TestAllocSizeFromRegisterAndZero(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %n = const 0
  %p = alloc %n
  store %p, 5
  %v = load %p
  ret %v
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 5 {
		t.Fatalf("zero-size alloc rounds up to one word: %+v", r)
	}
}

func TestSleepZeroAndNegativeAreNoops(t *testing.T) {
	m := mir.MustParse(`
func main() {
entry:
  %z = const 0
  sleep %z
  %n = const -5
  sleep %n
  ret 1
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 1 {
		t.Fatalf("degenerate sleeps: %+v", r)
	}
	if r.Stats.Steps > 10 {
		t.Errorf("sleeps should not consume time: %d steps", r.Stats.Steps)
	}
}

func TestCallIsolatesRegisters(t *testing.T) {
	// Callee register writes must not leak into the caller's registers,
	// and arguments are copied by value.
	m := mir.MustParse(`
func clobber(%x) {
entry:
  %x = add %x, 100
  %y = const 999
  ret %y
}
func main() {
entry:
  %x = const 1
  %y = const 2
  %r = call clobber(%x)
  %sum = add %x, %y
  %tot = add %sum, %r
  ret %tot
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 1002 {
		t.Fatalf("register isolation: got %d, want 1002", r.ExitCode)
	}
}

func TestSpawnArgumentsCopied(t *testing.T) {
	m := mir.MustParse(`
global out = 0
func w(%a, %b) {
entry:
  %s = mul %a, %b
  storeg @out, %s
  ret
}
func main() {
entry:
  %x = const 6
  %t = spawn w(%x, 7)
  %x = const 0
  join %t
  %v = loadg @out
  ret %v
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1)})
	if !r.Completed || r.ExitCode != 42 {
		t.Fatalf("spawn args: got %d, want 42", r.ExitCode)
	}
}

func TestRollbackRestoresRegisterImage(t *testing.T) {
	// Registers mutated inside the region must be restored by the
	// rollback: the second attempt must observe the checkpointed values,
	// not the first attempt's leftovers.
	m := mir.MustParse(`
global flag = 0
func waiter() {
entry:
  %acc = const 10
  checkpoint 1
  %acc = add %acc, 1
  %v = loadg @flag
  br %v, pass, recover
recover:
  rollback 1, 1000000
  fail assert, "never set"
pass:
  ret %acc
}
func main() {
entry:
  %t = spawn waiter()
  sleep 60
  storeg @flag, 1
  join %t
  ret
}`)
	vm := New(m, Config{Sched: sched.NewRandom(1)})
	r := vm.Run()
	if !r.Completed {
		t.Fatalf("run failed: %v", r.Failure)
	}
	// acc must be 11 on every attempt (10 restored + 1), never 12+.
	// waiter's return value is discarded; rerun single-threadedly to
	// observe it via the thread result: instead check via rollbacks>0 and
	// a variant returning through a global.
	if r.Stats.Rollbacks == 0 {
		t.Fatal("expected rollbacks")
	}

	m2 := mir.MustParse(`
global flag = 0
global result = 0
func waiter() {
entry:
  %acc = const 10
  checkpoint 1
  %acc = add %acc, 1
  %v = loadg @flag
  br %v, pass, recover
recover:
  rollback 1, 1000000
  fail assert, "never set"
pass:
  storeg @result, %acc
  ret
}
func main() {
entry:
  %t = spawn waiter()
  sleep 60
  storeg @flag, 1
  join %t
  %r = loadg @result
  ret %r
}`)
	r2 := RunModule(m2, Config{Sched: sched.NewRandom(1)})
	if !r2.Completed || r2.ExitCode != 11 {
		t.Fatalf("register image not restored: acc = %d, want 11", r2.ExitCode)
	}
}

func TestRoundRobinAndScriptedEndToEnd(t *testing.T) {
	src := `
global c = 0
func w() {
entry:
  %v = loadg @c
  %v1 = add %v, 1
  storeg @c, %v1
  ret
}
func main() {
entry:
  %a = spawn w()
  %b = spawn w()
  join %a
  join %b
  %v = loadg @c
  ret %v
}`
	m := mir.MustParse(src)
	for _, s := range []sched.Scheduler{
		sched.NewRoundRobin(3, 1),
		sched.NewScripted([]int{0, 0, 1, 2, 1, 2}, 1),
		sched.NewPCT(1, 3, 100),
	} {
		r := RunModule(m, Config{Sched: s})
		if !r.Completed {
			t.Fatalf("%s: %v", s.Name(), r.Failure)
		}
	}
}
