package interp

import (
	"bytes"
	"strings"
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

// A two-lock inversion deadlock among workers must be reported promptly
// via the wait-for cycle even though main keeps spinning.
const partialDeadlockSrc = `
global a = 0
global b = 0
global spin = 0
func t1() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pa
  sleep 50
  lock %pb
  unlock %pb
  unlock %pa
  ret
}
func t2() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pb
  sleep 50
  lock %pa
  unlock %pa
  unlock %pb
  ret
}
func main() {
entry:
  %x = spawn t1()
  %y = spawn t2()
  %i = const 0
  jmp spinloop
spinloop:
  %v = loadg @spin
  %v1 = add %v, 1
  storeg @spin, %v1
  %i1 = add %i, 1
  %i = add %i1, 0
  %c = lt %i, 1000000
  br %c, spinloop, out
out:
  join %x
  join %y
  ret
}`

func TestWaitForCycleDetectedWhileOthersRun(t *testing.T) {
	m := mir.MustParse(partialDeadlockSrc)
	r := RunModule(m, Config{Sched: sched.NewRandom(1), MaxSteps: 2_000_000})
	if r.Completed || r.Failure.Kind != mir.FailHang {
		t.Fatalf("expected hang, got %+v", r)
	}
	if !strings.Contains(r.Failure.Msg, "wait-for cycle") {
		t.Errorf("expected cycle detection, got %q", r.Failure.Msg)
	}
	// Detection must happen long before the spinner finishes, let alone
	// the step limit.
	if r.Failure.Step > 10_000 {
		t.Errorf("cycle detected only at step %d", r.Failure.Step)
	}
}

func TestWaitForCycleCanBeDisabled(t *testing.T) {
	m := mir.MustParse(partialDeadlockSrc)
	r := RunModule(m, Config{
		Sched: sched.NewRandom(1), MaxSteps: 100_000, NoDeadlockCycles: true,
	})
	if r.Completed || r.Failure.Kind != mir.FailHang {
		t.Fatalf("expected hang, got %+v", r)
	}
	if strings.Contains(r.Failure.Msg, "wait-for cycle") {
		t.Errorf("cycle detection should be off, got %q", r.Failure.Msg)
	}
}

func TestTimedEdgeBreaksCycleReport(t *testing.T) {
	// The same inversion, but one side acquires with a timeout: the cycle
	// is self-resolving, must not be reported, and the run completes once
	// the timed side gives up and releases.
	src := `
global a = 0
global b = 0
func t1() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pa
  sleep 50
  lock %pb
  unlock %pb
  unlock %pa
  ret
}
func t2() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pb
  sleep 50
  %got = timedlock %pa, 200
  unlock %pb
  ret
}
func main() {
entry:
  %x = spawn t1()
  %y = spawn t2()
  join %x
  join %y
  ret 0
}`
	m := mir.MustParse(src)
	r := RunModule(m, Config{Sched: sched.NewRandom(1), MaxSteps: 100_000})
	if !r.Completed {
		t.Fatalf("timed edge should resolve the deadlock: %+v", r.Failure)
	}
}

func TestThreeThreadCycle(t *testing.T) {
	src := `
global a = 0
global b = 0
global c = 0
func w(%first, %second) {
entry:
  lock %first
  sleep 60
  lock %second
  unlock %second
  unlock %first
  ret
}
func main() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  %pc = addrg @c
  %x = spawn w(%pa, %pb)
  %y = spawn w(%pb, %pc)
  %z = spawn w(%pc, %pa)
  join %x
  join %y
  join %z
  ret
}`
	m := mir.MustParse(src)
	r := RunModule(m, Config{Sched: sched.NewRandom(1), MaxSteps: 1_000_000})
	if r.Completed || r.Failure.Kind != mir.FailHang {
		t.Fatalf("expected three-way deadlock, got %+v", r)
	}
	if !strings.Contains(r.Failure.Msg, "wait-for cycle") {
		t.Errorf("expected cycle report, got %q", r.Failure.Msg)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	m := mir.MustParse(`
func main() {
entry:
  %x = const 41
  %y = add %x, 1
  ret %y
}`)
	r := RunModule(m, Config{Sched: sched.NewRandom(1), Trace: &buf})
	if !r.Completed || r.ExitCode != 42 {
		t.Fatalf("run = %+v", r)
	}
	out := buf.String()
	for _, want := range []string{"step=0", "tid=0", "%x = const 41", "add %x, 1", "ret %y"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("trace lines = %d, want 3", got)
	}
}
