package interp

import (
	"fmt"

	"conair/internal/mir"
	"conair/internal/obs"
)

// This file preserves the pre-compilation execution path: a switch over the
// original mir.Instr structs with per-step operand resolution through eval,
// exactly as the interpreter worked before the ahead-of-time compile stage.
// It exists for differential testing — RunReference must produce results
// bit-identical to Run on every module — and uses the compiled stream only
// for what lowering is trusted least about: the pc↔position mapping
// (cinstr.pos) and the flat branch targets (fcode.blockStart), both of
// which the differential sweep therefore exercises against the original
// instruction semantics.

// RunReference executes the module with the reference (pre-compilation)
// interpreter. It is deliberately slow; production callers use Run.
func RunReference(mod *mir.Module, cfg Config) *Result {
	vm := New(mod, cfg)
	max := vm.cfg.maxSteps()
	for !vm.done && vm.failure == nil {
		if vm.step >= max {
			vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
			break
		}
		tid, ok := vm.pickThread()
		if !ok {
			break
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindSchedPick, TID: int32(tid),
			})
		}
		vm.refExec(vm.threads[tid])
		vm.step++
	}
	return vm.result()
}

// eval resolves an operand against the current frame.
func eval(fr *frame, o mir.Operand) mir.Word {
	switch o.Kind {
	case mir.OperandReg:
		return fr.regs[o.Reg]
	case mir.OperandImm:
		return o.Imm
	}
	return 0
}

// refExec runs exactly one instruction of t, dispatching on the original
// source instruction. Branch targets go through blockStart; everything
// else is the historical exec body unchanged.
func (vm *VM) refExec(t *thread) {
	fr := t.top()
	fc := &vm.prog.funcs[fr.fn]
	pos := fc.code[fr.pc].pos
	f := &vm.mod.Functions[pos.Fn]
	in := &f.Blocks[pos.Block].Instrs[pos.Index]
	advance := true

	if vm.cfg.Trace != nil {
		fmt.Fprintf(vm.cfg.Trace, "step=%d tid=%d pos=%s %s\n",
			vm.step, t.id, pos, mir.FormatInstr(vm.mod, f, in))
	}

	switch in.Op {
	case mir.OpConst:
		fr.regs[in.Dst] = in.Imm

	case mir.OpBin:
		fr.regs[in.Dst] = in.Bin.Eval(eval(fr, in.A), eval(fr, in.B))
		// A site-tagged comparison is the transformed failure check; its
		// outcome is observed at the branch, handled under OpBr.

	case mir.OpLoadG:
		fr.regs[in.Dst] = vm.mem.globals[in.Global]
		if vm.san != nil {
			vm.san.Access(t.id, globalAddr(in.Global), false, pos)
		}

	case mir.OpStoreG:
		vm.mem.globals[in.Global] = eval(fr, in.A)
		if vm.san != nil {
			vm.san.Access(t.id, globalAddr(in.Global), true, pos)
		}

	case mir.OpAddrG:
		fr.regs[in.Dst] = globalAddr(in.Global)

	case mir.OpLoad:
		addr := eval(fr, in.A)
		v, ok := vm.mem.load(addr)
		if !ok {
			vm.fail(mir.FailSegfault, pos, in.Site, t.id,
				fmt.Sprintf("invalid read at address %d", addr))
			return
		}
		fr.regs[in.Dst] = v
		if vm.san != nil {
			vm.san.Access(t.id, addr, false, pos)
		}

	case mir.OpStore:
		addr := eval(fr, in.A)
		if !vm.mem.store(addr, eval(fr, in.B)) {
			vm.fail(mir.FailSegfault, pos, in.Site, t.id,
				fmt.Sprintf("invalid write at address %d", addr))
			return
		}
		if vm.san != nil {
			vm.san.Access(t.id, addr, true, pos)
		}

	case mir.OpLoadS:
		fr.regs[in.Dst] = fr.slots[in.Slot]

	case mir.OpStoreS:
		fr.slots[in.Slot] = eval(fr, in.A)

	case mir.OpAlloc:
		addr := vm.mem.alloc(eval(fr, in.A))
		fr.regs[in.Dst] = addr
		if t.jmp != nil {
			t.pushComp(compAlloc, addr)
		}

	case mir.OpFree:
		vm.mem.free(eval(fr, in.A))

	case mir.OpLock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		switch {
		case !mu.held:
			mu.held, mu.holder = true, t.id
			vm.setStatus(t, statusRunnable)
			if t.jmp != nil {
				t.pushComp(compLock, addr)
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockAcquire,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
			if vm.san != nil {
				vm.san.LockAcquire(t.id, addr, false, pos)
			}
		case mu.holder == t.id && t.status != statusBlockedLock:
			vm.fail(mir.FailHang, pos, in.Site, t.id,
				fmt.Sprintf("self-deadlock on lock %d", addr))
			return
		default:
			if t.status != statusBlockedLock {
				if vm.san != nil {
					vm.san.LockRequest(t.id, addr, false, pos)
				}
				vm.setStatus(t, statusBlockedLock)
				t.blockAddr = addr
				t.blockedSince = vm.step
				t.blockTimeout = 0
				if !vm.cfg.NoDeadlockCycles {
					if cycle := vm.deadlockCycle(t); cycle != nil {
						vm.fail(mir.FailHang, pos, in.Site, t.id,
							fmt.Sprintf("deadlock: wait-for cycle among threads %v", cycle))
						return
					}
				}
			}
			advance = false
		}

	case mir.OpTimedLock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		selfHeld := mu.held && mu.holder == t.id && t.status != statusBlockedLock
		waiting := t.status == statusBlockedLock
		expired := waiting && vm.step-t.blockedSince >= t.blockTimeout
		switch {
		case !mu.held:
			mu.held, mu.holder = true, t.id
			vm.setStatus(t, statusRunnable)
			fr.regs[in.Dst] = 1
			if t.jmp != nil {
				t.pushComp(compLock, addr)
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockAcquire,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
			if vm.san != nil {
				vm.san.LockAcquire(t.id, addr, true, pos)
			}
			if in.Site > 0 {
				vm.closeEpisode(t, in.Site)
			}
		case selfHeld || expired:
			vm.setStatus(t, statusRunnable)
			fr.regs[in.Dst] = 0
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockTimeout,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
		default:
			if !waiting {
				if vm.san != nil {
					vm.san.LockRequest(t.id, addr, true, pos)
				}
				vm.setStatus(t, statusBlockedLock)
				t.blockAddr = addr
				t.blockedSince = vm.step
				t.blockTimeout = int64(in.Timeout)
			}
			advance = false
		}

	case mir.OpUnlock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		if mu.held && mu.holder == t.id {
			mu.held = false
			if vm.san != nil {
				vm.san.LockRelease(t.id, addr)
			}
		}

	case mir.OpWait:
		advance = vm.execWait(t, fr, eval(fr, in.A), eval(fr, in.B),
			int64(in.Timeout), in.Dst, in.Site, pos)

	case mir.OpSignal:
		vm.execSignal(t, eval(fr, in.A), false, pos)

	case mir.OpBroadcast:
		vm.execSignal(t, eval(fr, in.A), true, pos)

	case mir.OpChSend:
		advance = vm.execChSend(t, fr, eval(fr, in.A), eval(fr, in.B),
			int64(in.Timeout), in.Dst, in.Site, pos)

	case mir.OpChRecv:
		advance = vm.execChRecv(t, fr, eval(fr, in.A), in.Dst, pos)

	case mir.OpChClose:
		advance = vm.execChClose(t, eval(fr, in.A), in.Site, pos)

	case mir.OpCAS:
		advance = vm.execCAS(t, fr, eval(fr, in.A), eval(fr, in.B),
			eval(fr, in.Args[0]), in.Dst, in.Site, pos)

	case mir.OpCall:
		nfr := vm.newFrame(in.Callee, in.Dst)
		for i, a := range in.Args {
			nfr.regs[i] = eval(fr, a)
		}
		fr.pc++
		t.frames = append(t.frames, nfr)
		return

	case mir.OpSpawn:
		if len(vm.threads) >= vm.cfg.maxThreads() {
			vm.fail(mir.FailHang, pos, 0, t.id, "thread limit exceeded")
			return
		}
		args := make([]mir.Word, len(in.Args))
		for i, a := range in.Args {
			args[i] = eval(fr, a)
		}
		fr.regs[in.Dst] = mir.Word(vm.spawn(in.Callee, args))
		if vm.san != nil {
			vm.san.ThreadSpawn(t.id, int(fr.regs[in.Dst]))
		}

	case mir.OpJoin:
		target := int(eval(fr, in.A))
		tt := vm.threadByID(target)
		if tt != nil && tt.status != statusDone {
			vm.setStatus(t, statusBlockedJoin)
			t.joinTarget = target
			advance = false
		} else if vm.san != nil {
			vm.san.ThreadJoin(t.id, target)
		}

	case mir.OpOutput:
		if vm.cfg.CollectOutput {
			vm.output = append(vm.output, OutputEvent{
				Text: in.Text, Value: eval(fr, in.A), Thread: t.id, Step: vm.step,
			})
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindOutput,
				TID: int32(t.id), Arg: int64(eval(fr, in.A)), Text: in.Text,
			})
		}

	case mir.OpAssert:
		if eval(fr, in.A) == 0 {
			kind := mir.FailAssert
			if in.AssertKind == mir.AssertOracle {
				kind = mir.FailWrongOutput
			}
			vm.fail(kind, pos, in.Site, t.id, in.Text)
			return
		}

	case mir.OpYield:

	case mir.OpSleep:
		d := eval(fr, in.A)
		if d > 0 {
			vm.setStatus(t, statusSleeping)
			t.wakeAt = vm.step + d
		}

	case mir.OpSleepRand:
		n := eval(fr, in.A)
		if n > 0 {
			d := mir.Word(vm.cfg.Sched.Intn(int(n) + 1))
			if d > 0 {
				vm.setStatus(t, statusSleeping)
				t.wakeAt = vm.step + d
			}
		}

	case mir.OpNop:

	case mir.OpCheckpoint:
		t.regionCtr++
		jb := t.jmp
		if jb == nil || cap(jb.regs) < len(fr.regs) {
			jb = &jmpbuf{regs: make([]mir.Word, len(fr.regs))}
			t.jmp = jb
		}
		jb.regs = jb.regs[:len(fr.regs)]
		copy(jb.regs, fr.regs)
		jb.frameDepth = len(t.frames) - 1
		jb.pc = fr.pc + 1
		jb.regionCtr = t.regionCtr
		vm.stats.Checkpoints++
		if vm.stats.CheckpointExecs == nil {
			vm.stats.CheckpointExecs = map[int]int64{}
		}
		vm.stats.CheckpointExecs[in.Site]++
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindCheckpoint,
				TID: int32(t.id), Site: int32(in.Site),
			})
		}

	case mir.OpRollback:
		site := in.Site
		if t.jmp != nil && t.jmp.frameDepth < len(t.frames) &&
			t.retryCount(site) < in.MaxRetry {
			t.bumpRetry(site)
			e := t.beginEpisode(site, vm.step)
			if vm.sink != nil {
				if e.Retries == 1 {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindEpisodeBegin,
						TID: int32(t.id), Site: int32(site),
					})
				}
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindRollback,
					TID: int32(t.id), Site: int32(site), Arg: e.Retries,
				})
			}
			vm.rollback(t)
			vm.stats.Rollbacks++
			return
		}

	case mir.OpFail:
		vm.fail(in.FailKind, pos, in.Site, t.id, in.Text)
		return

	case mir.OpBr:
		c := eval(fr, in.A)
		if in.Site > 0 && c != 0 {
			vm.closeEpisode(t, in.Site)
		}
		if c != 0 {
			fr.pc = int(fc.blockStart[in.Then])
		} else {
			fr.pc = int(fc.blockStart[in.Else])
		}
		return

	case mir.OpJmp:
		fr.pc = int(fc.blockStart[in.Then])
		return

	case mir.OpRet:
		ret := eval(fr, in.A)
		t.frames = t.frames[:len(t.frames)-1]
		vm.recycleFrame(fr)
		if t.jmp != nil && t.jmp.frameDepth >= len(t.frames) {
			t.jmp = nil
		}
		if len(t.frames) == 0 {
			vm.setStatus(t, statusDone)
			t.result = ret
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindThreadExit,
					TID: int32(t.id), Arg: int64(ret),
				})
			}
			if t.id == vm.mainTID {
				vm.done = true
				vm.exit = ret
			}
			return
		}
		caller := t.top()
		if fr.retDst >= 0 {
			caller.regs[fr.retDst] = ret
		}
		return

	default:
		vm.fail(mir.FailHang, pos, 0, t.id, fmt.Sprintf("unimplemented op %v", in.Op))
		return
	}

	if advance {
		fr.pc++
	}
}
