package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"conair/internal/mir"
)

// Model-based test of the flat memory: a random sequence of alloc, store,
// load and free operations must agree with a map-backed reference model,
// including fault behaviour.
func TestMemoryAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mem := newMemory(&mir.Module{Globals: []mir.Global{{Name: "g", Init: 5}}})

		type block struct {
			base  mir.Word
			size  mir.Word
			freed bool
		}
		var blocks []block
		model := map[mir.Word]mir.Word{} // valid addr -> value
		model[globalAddr(0)] = 5

		randAddr := func() mir.Word {
			switch rng.Intn(5) {
			case 0:
				return 0 // null
			case 1:
				return mir.Word(rng.Intn(int(LowerBound) + 100)) // low / barely invalid
			case 2:
				return globalAddr(0)
			default:
				if len(blocks) == 0 {
					return HeapBase + mir.Word(rng.Intn(50))
				}
				b := blocks[rng.Intn(len(blocks))]
				// In-bounds or slightly out.
				return b.base + mir.Word(rng.Intn(int(b.size)+2)) - 1
			}
		}

		for op := 0; op < 2000; op++ {
			switch rng.Intn(10) {
			case 0, 1: // alloc
				size := mir.Word(1 + rng.Intn(6))
				base := mem.alloc(size)
				blocks = append(blocks, block{base: base, size: size})
				for i := mir.Word(0); i < size; i++ {
					model[base+i] = 0
				}
			case 2: // free a known block (possibly double-free)
				if len(blocks) == 0 {
					continue
				}
				b := &blocks[rng.Intn(len(blocks))]
				ok := mem.free(b.base)
				if ok == b.freed {
					t.Fatalf("seed %d op %d: free(%d) ok=%v, model freed=%v",
						seed, op, b.base, ok, b.freed)
				}
				if ok {
					b.freed = true
					for i := mir.Word(0); i < b.size; i++ {
						delete(model, b.base+i)
					}
				}
			case 3: // free a garbage address
				addr := randAddr()
				isBase := false
				for _, b := range blocks {
					if b.base == addr && !b.freed {
						isBase = true
					}
				}
				if got := mem.free(addr); got != isBase {
					t.Fatalf("seed %d op %d: free(%d) = %v, want %v", seed, op, addr, got, isBase)
				}
				if isBase {
					for i := range blocks {
						if blocks[i].base == addr {
							blocks[i].freed = true
							for j := mir.Word(0); j < blocks[i].size; j++ {
								delete(model, addr+j)
							}
						}
					}
				}
			case 4, 5, 6: // load
				addr := randAddr()
				want, valid := model[addr]
				got, ok := mem.load(addr)
				if ok != valid {
					t.Fatalf("seed %d op %d: load(%d) ok=%v, model valid=%v",
						seed, op, addr, ok, valid)
				}
				if ok && got != want {
					t.Fatalf("seed %d op %d: load(%d) = %d, want %d",
						seed, op, addr, got, want)
				}
			default: // store
				addr := randAddr()
				v := mir.Word(rng.Intn(1000))
				_, valid := model[addr]
				ok := mem.store(addr, v)
				if ok != valid {
					t.Fatalf("seed %d op %d: store(%d) ok=%v, model valid=%v",
						seed, op, addr, ok, valid)
				}
				if ok {
					model[addr] = v
				}
			}
		}
	}
}

// quick-check: a fresh allocation is zeroed, in bounds, above LowerBound,
// and adjacent allocations never overlap.
func TestQuickAllocProperties(t *testing.T) {
	mem := newMemory(&mir.Module{})
	var lastEnd mir.Word
	prop := func(rawSize uint8) bool {
		size := mir.Word(rawSize % 16)
		base := mem.alloc(size)
		if size < 1 {
			size = 1
		}
		if base <= LowerBound || base < lastEnd {
			return false
		}
		for i := mir.Word(0); i < size; i++ {
			v, ok := mem.load(base + i)
			if !ok || v != 0 {
				return false
			}
		}
		if _, ok := mem.load(base + size); ok {
			return false // guard word must not be readable
		}
		lastEnd = base + size
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quick-check: snapshots are isolated from subsequent mutation.
func TestQuickSnapshotIsolation(t *testing.T) {
	prop := func(vals []int64) bool {
		if len(vals) == 0 {
			vals = []int64{1}
		}
		mem := newMemory(&mir.Module{Globals: []mir.Global{{Name: "g"}}})
		base := mem.alloc(mir.Word(len(vals)))
		for i, v := range vals {
			mem.store(base+mir.Word(i), v)
		}
		snap := mem.snapshot()
		for i := range vals {
			mem.store(base+mir.Word(i), -1)
		}
		mem.globals[0] = 99
		for i, v := range vals {
			got, ok := snap.load(base + mir.Word(i))
			if !ok || got != v {
				return false
			}
		}
		return snap.globals[0] == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
