package interp

import (
	"fmt"
	"sort"

	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sched"
)

// VM executes one MIR module run. Create with New, drive with Run.
type VM struct {
	mod  *mir.Module
	cfg  Config
	mem  *memory
	lcks *locks

	threads []*thread
	nextTID int

	step    int64
	stats   Stats
	output  []OutputEvent
	failure *Failure
	done    bool
	mainTID int
	exit    mir.Word
	counted bool

	runnableBuf []int

	// sink mirrors cfg.Sink; every emit site guards on one nil check so
	// the disabled path costs a pointer compare and zero allocations.
	sink *obs.Tracer

	// san mirrors cfg.Sanitizer under the same nil-check contract as sink.
	san Sanitizer

	// live lists the ids of non-done threads in ascending id order, and
	// waiting counts how many of them are not statusRunnable. Together they
	// replace the per-step all-threads rescan in pickThread: when waiting
	// is zero the live list IS the runnable list (the overwhelmingly common
	// case), and otherwise only live threads are scanned. Every status
	// transition must go through setStatus to keep both consistent.
	live    []int
	liveT   []*thread // same order as live; lets the scan path range pointers
	waiting int

	// pools recycles frame register/slot arrays per function, so the call
	// hot path reuses zeroed arrays instead of allocating. Indexed by
	// function; each entry stacks {regs, slots} pairs of retired frames.
	pools [][][2][]mir.Word
}

// New prepares a VM for the module. The module must contain a main
// function with no parameters; New panics otherwise (the verifier enforces
// the signature, so this indicates misuse rather than bad input).
func New(mod *mir.Module, cfg Config) *VM {
	if cfg.Sched == nil {
		cfg.Sched = sched.NewRandom(1)
	}
	mi := mod.Main()
	if mi < 0 {
		panic(mir.ErrNoMain)
	}
	vm := &VM{
		mod:   mod,
		cfg:   cfg,
		mem:   newMemory(mod),
		lcks:  newLocks(),
		pools: make([][][2][]mir.Word, len(mod.Functions)),
		sink:  cfg.Sink,
		san:   cfg.Sanitizer,
	}
	vm.mainTID = vm.spawn(mi, nil)
	if vm.san != nil {
		vm.san.ThreadSpawn(-1, vm.mainTID)
	}
	return vm
}

// waits reports whether a status keeps a live thread out of the runnable
// fast path.
func waits(s threadStatus) bool {
	return s == statusSleeping || s == statusBlockedLock || s == statusBlockedJoin
}

// setStatus transitions t to s, maintaining the live list and the waiting
// counter. All status writes after spawn must go through here.
func (vm *VM) setStatus(t *thread, s threadStatus) {
	old := t.status
	if old == s {
		return
	}
	t.status = s
	if waits(old) {
		vm.waiting--
	}
	switch {
	case waits(s):
		vm.waiting++
		if vm.sink != nil {
			reason := obs.BlockSleep
			switch s {
			case statusBlockedLock:
				reason = obs.BlockLock
			case statusBlockedJoin:
				reason = obs.BlockJoin
			}
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindThreadBlock,
				TID: int32(t.id), Arg: reason,
			})
		}
	case s == statusDone:
		vm.removeLive(t.id)
	}
}

// removeLive deletes id from the (ascending) live list.
func (vm *VM) removeLive(id int) {
	i := sort.SearchInts(vm.live, id)
	if i < len(vm.live) && vm.live[i] == id {
		vm.live = append(vm.live[:i], vm.live[i+1:]...)
		vm.liveT = append(vm.liveT[:i], vm.liveT[i+1:]...)
	}
}

// rebuildLive reconstructs the live list and waiting counter from thread
// statuses; snapshot restore replaces the thread set wholesale and calls
// this instead of replaying transitions.
func (vm *VM) rebuildLive() {
	vm.live = vm.live[:0]
	vm.liveT = vm.liveT[:0]
	vm.waiting = 0
	for _, t := range vm.threads {
		if t.status == statusDone {
			continue
		}
		vm.live = append(vm.live, t.id)
		vm.liveT = append(vm.liveT, t)
		if t.status != statusRunnable {
			vm.waiting++
		}
	}
}

// newFrame builds an activation record for function fi, reusing a pooled
// register/slot pair when one is free. Reused arrays are zeroed, so a
// pooled frame is indistinguishable from a fresh one.
func (vm *VM) newFrame(fi, retDst int) frame {
	f := &vm.mod.Functions[fi]
	var regs, slots []mir.Word
	if pool := vm.pools[fi]; len(pool) > 0 {
		pair := pool[len(pool)-1]
		vm.pools[fi] = pool[:len(pool)-1]
		regs, slots = pair[0], pair[1]
		clear(regs)
		clear(slots)
	} else {
		nr := f.NumRegs()
		buf := make([]mir.Word, nr+len(f.SlotNames))
		regs, slots = buf[:nr:nr], buf[nr:]
	}
	return frame{fn: fi, regs: regs, slots: slots, retDst: retDst}
}

// recycleFrame returns a retired frame's arrays to the per-function pool.
func (vm *VM) recycleFrame(fr *frame) {
	vm.pools[fr.fn] = append(vm.pools[fr.fn], [2][]mir.Word{fr.regs, fr.slots})
	fr.regs, fr.slots = nil, nil
}

// posOf names the instruction fr is about to execute. It exists so the
// failure and trace paths can build a mir.Pos on demand instead of exec
// materializing one on every step.
func posOf(fr *frame) mir.Pos {
	return mir.Pos{Fn: fr.fn, Block: fr.block, Index: fr.index}
}

// Run executes the module to completion, failure, or the step cutoff.
func (vm *VM) Run() *Result {
	max := vm.cfg.maxSteps()
	for !vm.done && vm.failure == nil {
		if vm.step >= max {
			vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
			break
		}
		tid, ok := vm.pickThread()
		if !ok {
			break // deadlock already reported, or everything exited
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindSchedPick, TID: int32(tid),
			})
		}
		vm.exec(vm.threads[tid])
		vm.step++
	}
	return vm.result()
}

// RunModule is a convenience one-shot runner.
func RunModule(mod *mir.Module, cfg Config) *Result {
	return New(mod, cfg).Run()
}

func (vm *VM) result() *Result {
	r := &Result{
		Completed: vm.done && vm.failure == nil,
		Failure:   vm.failure,
		ExitCode:  vm.exit,
		Output:    vm.output,
		Stats:     vm.stats,
	}
	r.Stats.Steps = vm.step
	// Surface episodes still open at program end as unrecovered.
	for _, t := range vm.threads {
		for _, e := range t.episodes {
			r.Stats.Episodes = append(r.Stats.Episodes, *e)
		}
	}
	sort.Slice(r.Stats.Episodes, func(i, j int) bool {
		return r.Stats.Episodes[i].Start < r.Stats.Episodes[j].Start
	})
	if !vm.counted {
		// Count each run once even if result() is built repeatedly
		// (Finish may be called more than once on a StepOnce-driven VM).
		vm.counted = true
		totalRuns.Add(1)
		totalSteps.Add(vm.step)
		if reg := metricsRegistry.Load(); reg != nil {
			recordRunMetrics(reg, r)
		}
	}
	return r
}

// spawn creates a thread running function fi with the given arguments.
func (vm *VM) spawn(fi int, args []mir.Word) int {
	t := &thread{id: vm.nextTID}
	vm.nextTID++
	fr := vm.newFrame(fi, -1)
	copy(fr.regs, args)
	t.frames = append(t.frames, fr)
	vm.threads = append(vm.threads, t)
	vm.live = append(vm.live, t.id) // ids ascend, so append keeps order
	vm.liveT = append(vm.liveT, t)
	vm.stats.ThreadsSpawned++
	if vm.sink != nil {
		vm.sink.Record(obs.Event{
			Step: vm.step, Kind: obs.KindThreadSpawn, TID: int32(t.id),
		})
	}
	return t.id
}

// pickThread collects runnable threads (waking sleepers and expiring lock
// timeouts) and asks the scheduler to choose. When nothing can run it
// reports a deadlock or ends the program.
//
// The live list is maintained incrementally by setStatus, so when no live
// thread waits the list is handed to the scheduler as-is — no scan at all.
// Only when some thread sleeps or blocks does the (live-only) scan run to
// wake sleepers, expire lock timeouts and resolve joins. Both paths
// produce exactly the runnable set the historical all-threads rescan did:
// membership and (ascending id) order are identical, so seeded schedules
// are unchanged.
func (vm *VM) pickThread() (int, bool) {
	for {
		if vm.waiting == 0 {
			if len(vm.live) == 0 {
				// Every thread is done but main never returned? (Cannot
				// happen: main returning sets vm.done.) Treat as end.
				return 0, false
			}
			return vm.cfg.Sched.Pick(vm.live, vm.step), true
		}
		runnable := vm.runnableBuf[:0]
		var minWake int64 = -1
		anyLive := false
		for _, t := range vm.liveT {
			switch t.status {
			case statusRunnable:
				runnable = append(runnable, t.id)
			case statusSleeping:
				anyLive = true
				if t.wakeAt <= vm.step {
					vm.setStatus(t, statusRunnable)
					runnable = append(runnable, t.id)
				} else if minWake < 0 || t.wakeAt < minWake {
					minWake = t.wakeAt
				}
			case statusBlockedLock:
				anyLive = true
				mu := vm.lcks.get(t.blockAddr)
				waited := vm.step - t.blockedSince
				switch {
				case !mu.held:
					// Lock available: the thread is schedulable; it
					// acquires when picked.
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0 && waited >= t.blockTimeout:
					// Timed lock expired: schedulable to observe timeout.
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0:
					// A pending timeout is a future wake event; without
					// this, a system quiesced behind a timed lock would be
					// misreported as deadlocked.
					if wake := t.blockedSince + t.blockTimeout; minWake < 0 || wake < minWake {
						minWake = wake
					}
				}
			case statusBlockedJoin:
				anyLive = true
				if vm.threadByID(t.joinTarget) == nil ||
					vm.threadByID(t.joinTarget).status == statusDone {
					vm.setStatus(t, statusRunnable)
					runnable = append(runnable, t.id)
				}
			}
		}
		vm.runnableBuf = runnable
		if len(runnable) > 0 {
			return vm.cfg.Sched.Pick(runnable, vm.step), true
		}
		if !anyLive {
			return 0, false
		}
		if minWake > vm.step {
			// Only sleepers: advance virtual time to the next wake.
			vm.step = minWake
			continue
		}
		// Threads exist but none can ever run: all blocked on held locks
		// or joins — a deadlock, observed as a hang by the user.
		vm.fail(mir.FailHang, mir.Pos{}, 0, -1,
			fmt.Sprintf("no runnable threads at step %d (deadlock)", vm.step))
		return 0, false
	}
}

func (vm *VM) threadByID(id int) *thread {
	if id < 0 || id >= len(vm.threads) {
		return nil
	}
	return vm.threads[id]
}

func (vm *VM) fail(kind mir.FailKind, pos mir.Pos, site, tid int, msg string) {
	vm.failure = &Failure{
		Kind: kind, Pos: pos, Site: site, Thread: tid, Step: vm.step, Msg: msg,
	}
	if vm.sink != nil {
		vm.sink.Record(obs.Event{
			Step: vm.step, Kind: obs.KindFailure,
			TID: int32(tid), Site: int32(site), Text: msg,
		})
	}
}

// eval resolves an operand against the current frame.
func eval(fr *frame, o mir.Operand) mir.Word {
	switch o.Kind {
	case mir.OperandReg:
		return fr.regs[o.Reg]
	case mir.OperandImm:
		return o.Imm
	}
	return 0
}

// exec runs exactly one instruction of t.
func (vm *VM) exec(t *thread) {
	fr := t.top()
	f := &vm.mod.Functions[fr.fn]
	in := &f.Blocks[fr.block].Instrs[fr.index]
	advance := true

	if vm.cfg.Trace != nil {
		fmt.Fprintf(vm.cfg.Trace, "step=%d tid=%d pos=%s %s\n",
			vm.step, t.id, posOf(fr), mir.FormatInstr(vm.mod, f, in))
	}

	switch in.Op {
	case mir.OpConst:
		fr.regs[in.Dst] = in.Imm

	case mir.OpBin:
		fr.regs[in.Dst] = in.Bin.Eval(eval(fr, in.A), eval(fr, in.B))
		// A site-tagged comparison is the transformed failure check; its
		// outcome is observed at the branch, handled under OpBr.

	case mir.OpLoadG:
		fr.regs[in.Dst] = vm.mem.globals[in.Global]
		if vm.san != nil {
			vm.san.Access(t.id, globalAddr(in.Global), false, posOf(fr))
		}

	case mir.OpStoreG:
		vm.mem.globals[in.Global] = eval(fr, in.A)
		if vm.san != nil {
			vm.san.Access(t.id, globalAddr(in.Global), true, posOf(fr))
		}

	case mir.OpAddrG:
		fr.regs[in.Dst] = globalAddr(in.Global)

	case mir.OpLoad:
		addr := eval(fr, in.A)
		v, ok := vm.mem.load(addr)
		if !ok {
			vm.fail(mir.FailSegfault, posOf(fr), in.Site, t.id,
				fmt.Sprintf("invalid read at address %d", addr))
			return
		}
		fr.regs[in.Dst] = v
		if vm.san != nil {
			vm.san.Access(t.id, addr, false, posOf(fr))
		}

	case mir.OpStore:
		addr := eval(fr, in.A)
		if !vm.mem.store(addr, eval(fr, in.B)) {
			vm.fail(mir.FailSegfault, posOf(fr), in.Site, t.id,
				fmt.Sprintf("invalid write at address %d", addr))
			return
		}
		if vm.san != nil {
			vm.san.Access(t.id, addr, true, posOf(fr))
		}

	case mir.OpLoadS:
		fr.regs[in.Dst] = fr.slots[in.Slot]

	case mir.OpStoreS:
		fr.slots[in.Slot] = eval(fr, in.A)

	case mir.OpAlloc:
		addr := vm.mem.alloc(eval(fr, in.A))
		fr.regs[in.Dst] = addr
		if t.jmp != nil {
			t.pushComp(compAlloc, addr)
		}

	case mir.OpFree:
		vm.mem.free(eval(fr, in.A))

	case mir.OpLock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		switch {
		case !mu.held:
			mu.held, mu.holder = true, t.id
			vm.setStatus(t, statusRunnable)
			if t.jmp != nil {
				t.pushComp(compLock, addr)
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockAcquire,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
			if vm.san != nil {
				vm.san.LockAcquire(t.id, addr, false, posOf(fr))
			}
		case mu.holder == t.id && t.status != statusBlockedLock:
			vm.fail(mir.FailHang, posOf(fr), in.Site, t.id,
				fmt.Sprintf("self-deadlock on lock %d", addr))
			return
		default:
			if t.status != statusBlockedLock {
				if vm.san != nil {
					// Record the lock request before the wait-for-cycle
					// check below: an actual deadlock fails the run right
					// here, and the predictor needs this edge.
					vm.san.LockRequest(t.id, addr, false, posOf(fr))
				}
				vm.setStatus(t, statusBlockedLock)
				t.blockAddr = addr
				t.blockedSince = vm.step
				t.blockTimeout = 0
				if !vm.cfg.NoDeadlockCycles {
					if cycle := vm.deadlockCycle(t); cycle != nil {
						vm.fail(mir.FailHang, posOf(fr), in.Site, t.id,
							fmt.Sprintf("deadlock: wait-for cycle among threads %v", cycle))
						return
					}
				}
			}
			advance = false
		}

	case mir.OpTimedLock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		selfHeld := mu.held && mu.holder == t.id && t.status != statusBlockedLock
		waiting := t.status == statusBlockedLock
		expired := waiting && vm.step-t.blockedSince >= t.blockTimeout
		switch {
		case !mu.held:
			mu.held, mu.holder = true, t.id
			vm.setStatus(t, statusRunnable)
			fr.regs[in.Dst] = 1
			if t.jmp != nil {
				t.pushComp(compLock, addr)
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockAcquire,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
			if vm.san != nil {
				vm.san.LockAcquire(t.id, addr, true, posOf(fr))
			}
			if in.Site > 0 {
				if e := t.endEpisode(in.Site, vm.step); e != nil {
					vm.stats.Episodes = append(vm.stats.Episodes, *e)
					if vm.sink != nil {
						vm.sink.Record(obs.Event{
							Step: vm.step, Kind: obs.KindEpisodeEnd,
							TID: int32(t.id), Site: int32(in.Site), Arg: e.Retries,
						})
					}
				}
			}
		case selfHeld || expired:
			// Self-acquisition would never succeed; treat it as an
			// immediate timeout. An expired wait reports timeout too.
			vm.setStatus(t, statusRunnable)
			fr.regs[in.Dst] = 0
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindLockTimeout,
					TID: int32(t.id), Site: int32(in.Site), Arg: int64(addr),
				})
			}
		default:
			if !waiting {
				if vm.san != nil {
					vm.san.LockRequest(t.id, addr, true, posOf(fr))
				}
				vm.setStatus(t, statusBlockedLock)
				t.blockAddr = addr
				t.blockedSince = vm.step
				t.blockTimeout = int64(in.Timeout)
			}
			advance = false
		}

	case mir.OpUnlock:
		addr := eval(fr, in.A)
		mu := vm.lcks.get(addr)
		if mu.held && mu.holder == t.id {
			mu.held = false
			if vm.san != nil {
				vm.san.LockRelease(t.id, addr)
			}
		}
		// Unlocking a lock we do not hold is undefined in pthreads; the
		// interpreter ignores it, as the analyses never generate it.

	case mir.OpCall:
		nfr := vm.newFrame(in.Callee, in.Dst)
		for i, a := range in.Args {
			nfr.regs[i] = eval(fr, a)
		}
		// Advance the caller past the call before pushing, so the return
		// resumes at the next instruction.
		fr.index++
		t.frames = append(t.frames, nfr)
		return

	case mir.OpSpawn:
		if len(vm.threads) >= vm.cfg.maxThreads() {
			vm.fail(mir.FailHang, posOf(fr), 0, t.id, "thread limit exceeded")
			return
		}
		args := make([]mir.Word, len(in.Args))
		for i, a := range in.Args {
			args[i] = eval(fr, a)
		}
		fr.regs[in.Dst] = mir.Word(vm.spawn(in.Callee, args))
		if vm.san != nil {
			vm.san.ThreadSpawn(t.id, int(fr.regs[in.Dst]))
		}

	case mir.OpJoin:
		target := int(eval(fr, in.A))
		tt := vm.threadByID(target)
		if tt != nil && tt.status != statusDone {
			vm.setStatus(t, statusBlockedJoin)
			t.joinTarget = target
			advance = false
		} else if vm.san != nil {
			// The waiter proceeds past the join: the target's effects now
			// happen-before everything the waiter does next.
			vm.san.ThreadJoin(t.id, target)
		}

	case mir.OpOutput:
		if vm.cfg.CollectOutput {
			vm.output = append(vm.output, OutputEvent{
				Text: in.Text, Value: eval(fr, in.A), Thread: t.id, Step: vm.step,
			})
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindOutput,
				TID: int32(t.id), Arg: int64(eval(fr, in.A)), Text: in.Text,
			})
		}

	case mir.OpAssert:
		if eval(fr, in.A) == 0 {
			kind := mir.FailAssert
			if in.AssertKind == mir.AssertOracle {
				kind = mir.FailWrongOutput
			}
			vm.fail(kind, posOf(fr), in.Site, t.id, in.Text)
			return
		}

	case mir.OpYield:
		// Scheduler hint only; costs one step.

	case mir.OpSleep:
		d := eval(fr, in.A)
		if d > 0 {
			vm.setStatus(t, statusSleeping)
			t.wakeAt = vm.step + d
		}

	case mir.OpSleepRand:
		n := eval(fr, in.A)
		if n > 0 {
			d := mir.Word(vm.cfg.Sched.Intn(int(n) + 1))
			if d > 0 {
				vm.setStatus(t, statusSleeping)
				t.wakeAt = vm.step + d
			}
		}

	case mir.OpNop:

	case mir.OpCheckpoint:
		t.regionCtr++
		jb := t.jmp
		if jb == nil || cap(jb.regs) < len(fr.regs) {
			jb = &jmpbuf{regs: make([]mir.Word, len(fr.regs))}
			t.jmp = jb
		}
		jb.regs = jb.regs[:len(fr.regs)]
		copy(jb.regs, fr.regs)
		jb.frameDepth = len(t.frames) - 1
		jb.block = fr.block
		jb.index = fr.index + 1
		jb.regionCtr = t.regionCtr
		vm.stats.Checkpoints++
		if vm.stats.CheckpointExecs == nil {
			vm.stats.CheckpointExecs = map[int]int64{}
		}
		vm.stats.CheckpointExecs[in.Site]++
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindCheckpoint,
				TID: int32(t.id), Site: int32(in.Site),
			})
		}

	case mir.OpRollback:
		site := in.Site
		if t.jmp != nil && t.jmp.frameDepth < len(t.frames) &&
			t.retryCount(site) < in.MaxRetry {
			t.bumpRetry(site)
			e := t.beginEpisode(site, vm.step)
			if vm.sink != nil {
				if e.Retries == 1 {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindEpisodeBegin,
						TID: int32(t.id), Site: int32(site),
					})
				}
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindRollback,
					TID: int32(t.id), Site: int32(site), Arg: e.Retries,
				})
			}
			vm.rollback(t)
			vm.stats.Rollbacks++
			return
		}
		// No active checkpoint or retries exhausted: fall through to the
		// real failure (the instruction after the rollback).

	case mir.OpFail:
		vm.fail(in.FailKind, posOf(fr), in.Site, t.id, in.Text)
		return

	case mir.OpBr:
		c := eval(fr, in.A)
		if in.Site > 0 && c != 0 {
			// Site-tagged branches are transformed failure checks with the
			// convention Then = pass, Else = recover. Passing closes any
			// open recovery episode for the site.
			if e := t.endEpisode(in.Site, vm.step); e != nil {
				vm.stats.Episodes = append(vm.stats.Episodes, *e)
				if vm.sink != nil {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindEpisodeEnd,
						TID: int32(t.id), Site: int32(in.Site), Arg: e.Retries,
					})
				}
			}
		}
		if c != 0 {
			fr.block, fr.index = in.Then, 0
		} else {
			fr.block, fr.index = in.Else, 0
		}
		return

	case mir.OpJmp:
		fr.block, fr.index = in.Then, 0
		return

	case mir.OpRet:
		ret := eval(fr, in.A)
		t.frames = t.frames[:len(t.frames)-1]
		vm.recycleFrame(fr)
		// Returning out of the checkpoint's frame invalidates it, exactly
		// like returning from the function that called setjmp.
		if t.jmp != nil && t.jmp.frameDepth >= len(t.frames) {
			t.jmp = nil
		}
		if len(t.frames) == 0 {
			vm.setStatus(t, statusDone)
			t.result = ret
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindThreadExit,
					TID: int32(t.id), Arg: int64(ret),
				})
			}
			if t.id == vm.mainTID {
				vm.done = true
				vm.exit = ret
			}
			return
		}
		caller := t.top()
		if fr.retDst >= 0 {
			caller.regs[fr.retDst] = ret
		}
		return

	default:
		vm.fail(mir.FailHang, posOf(fr), 0, t.id, fmt.Sprintf("unimplemented op %v", in.Op))
		return
	}

	if advance {
		fr.index++
	}
}

// rollback performs the longjmp: compensate region acquisitions, unwind
// callee frames, restore the checkpoint frame's register image and jump to
// the instruction after the checkpoint.
func (vm *VM) rollback(t *thread) {
	for _, ce := range t.takeComp() {
		switch ce.kind {
		case compAlloc:
			vm.mem.free(ce.addr)
			vm.stats.CompFrees++
		case compLock:
			mu := vm.lcks.get(ce.addr)
			if mu.held && mu.holder == t.id {
				mu.held = false
				if vm.san != nil {
					vm.san.LockRelease(t.id, ce.addr)
				}
			}
			vm.stats.CompUnlocks++
		}
	}
	jb := t.jmp
	for i := jb.frameDepth + 1; i < len(t.frames); i++ {
		vm.recycleFrame(&t.frames[i])
	}
	t.frames = t.frames[:jb.frameDepth+1]
	fr := t.top()
	copy(fr.regs, jb.regs)
	fr.block, fr.index = jb.block, jb.index
}
