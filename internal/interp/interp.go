package interp

import (
	"fmt"
	"sort"
	"sync/atomic"

	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sched"
)

// interruptMask throttles Config.Interrupt polling: the flag is consulted
// only on steps where step&interruptMask == 0, so an enabled watchdog
// costs one atomic load per 64K instructions, and a disabled one a single
// pointer compare at those steps.
const interruptMask = 1<<16 - 1

// interrupted reports whether the watchdog flag fired for this step.
func (vm *VM) interrupted(step int64) bool {
	return vm.intr != nil && step&interruptMask == 0 && vm.intr.Load()
}

// VM executes one MIR module run. Create with New, drive with Run.
type VM struct {
	mod   *mir.Module
	prog  *Program
	cfg   Config
	mem   *memory
	lcks  *locks
	conds *condvars
	chans *channels

	threads []*thread
	nextTID int

	step    int64
	stats   Stats
	output  []OutputEvent
	failure *Failure
	done    bool
	mainTID int
	exit    mir.Word
	counted bool

	runnableBuf []int

	// sink mirrors cfg.Sink; every emit site guards on one nil check so
	// the disabled path costs a pointer compare and zero allocations.
	sink *obs.Tracer

	// san mirrors cfg.Sanitizer under the same nil-check contract as sink.
	san Sanitizer

	// intr mirrors cfg.Interrupt; the run loop polls it every
	// interruptPeriod steps (a mask check plus one atomic load) and aborts
	// with a hang failure when it reads true.
	intr *atomic.Bool

	// rnd is cfg.Sched devirtualized: non-nil when the scheduler is the
	// default *sched.Random, letting the per-step pick call the concrete
	// Intn (which draws bit-identically to Pick — see sched.Random) instead
	// of dispatching through the Scheduler interface.
	rnd *sched.Random

	// flight is set (alongside rnd) when cfg.Sched is a
	// *sched.FlightRecorder wrapping a *sched.Random: the pick fast path
	// then draws from the inner Random and reports each decision to the
	// ring via Note/NoteRun, keeping the always-on flight recorder off the
	// interface-dispatch slow path. Every vm.rnd pick site must pair its
	// draw with a note, or the recorded stream would miss picks.
	flight *sched.FlightRecorder

	// live lists the ids of non-done threads in ascending id order, and
	// waiting counts how many of them are not statusRunnable. Together they
	// replace the per-step all-threads rescan in pickThread: when waiting
	// is zero the live list IS the runnable list (the overwhelmingly common
	// case), and otherwise only live threads are scanned. Every status
	// transition must go through setStatus to keep both consistent.
	live    []int
	liveT   []*thread // same order as live; lets the scan path range pointers
	waiting int

	// pools recycles frame register/slot arrays per function, so the call
	// hot path reuses zeroed arrays instead of allocating. Indexed by
	// function; each entry stacks {regs, slots} pairs of retired frames.
	pools [][][2][]mir.Word

	// arena is the VM's frame backing store: pool misses carve register/slot
	// arrays out of one chunked allocation instead of calling make per
	// frame, so a run's allocation count is O(arena chunks), not O(calls).
	arena    []mir.Word
	arenaOff int

	// sbQuanta counts superblock quanta entered and sbInstrs the
	// instructions retired inside them; their difference is the number of
	// full dispatch round-trips the batching saved. Flushed to the metrics
	// registry once per run by result().
	sbQuanta int64
	sbInstrs int64
}

// New prepares a VM for the module, compiling it to the flat code stream
// (memoized per module — see Compile). The module must contain a main
// function with no parameters; New panics otherwise (the verifier enforces
// the signature, so this indicates misuse rather than bad input).
func New(mod *mir.Module, cfg Config) *VM {
	if cfg.Sched == nil {
		cfg.Sched = sched.NewRandom(1)
	}
	mi := mod.Main()
	if mi < 0 {
		panic(mir.ErrNoMain)
	}
	vm := &VM{
		mod:   mod,
		prog:  Compile(mod),
		cfg:   cfg,
		mem:   newMemory(mod),
		lcks:  newLocks(),
		conds: newCondvars(),
		chans: newChannels(),
		pools: make([][][2][]mir.Word, len(mod.Functions)),
		sink:  cfg.Sink,
		san:   cfg.Sanitizer,
		intr:  cfg.Interrupt,
	}
	vm.rnd, _ = cfg.Sched.(*sched.Random)
	if fr, ok := cfg.Sched.(*sched.FlightRecorder); ok {
		if inner, ok := fr.Inner().(*sched.Random); ok {
			vm.rnd, vm.flight = inner, fr
		}
	}
	vm.mainTID = vm.spawn(mi, nil)
	if vm.san != nil {
		vm.san.ThreadSpawn(-1, vm.mainTID)
	}
	return vm
}

// waits reports whether a status keeps a live thread out of the runnable
// fast path.
func waits(s threadStatus) bool {
	return s == statusSleeping || s == statusBlockedLock || s == statusBlockedJoin ||
		s == statusBlockedCond || s == statusBlockedSend || s == statusBlockedRecv
}

// setStatus transitions t to s, maintaining the live list and the waiting
// counter. All status writes after spawn must go through here.
func (vm *VM) setStatus(t *thread, s threadStatus) {
	old := t.status
	if old == s {
		return
	}
	t.status = s
	if waits(old) {
		vm.waiting--
	}
	switch {
	case waits(s):
		vm.waiting++
		if vm.sink != nil {
			reason := obs.BlockSleep
			switch s {
			case statusBlockedLock:
				reason = obs.BlockLock
			case statusBlockedJoin:
				reason = obs.BlockJoin
			case statusBlockedCond:
				reason = obs.BlockCond
			case statusBlockedSend:
				reason = obs.BlockChanSend
			case statusBlockedRecv:
				reason = obs.BlockChanRecv
			}
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindThreadBlock,
				TID: int32(t.id), Arg: reason,
			})
		}
	case s == statusDone:
		vm.removeLive(t.id)
	}
}

// removeLive deletes id from the (ascending) live list.
func (vm *VM) removeLive(id int) {
	i := sort.SearchInts(vm.live, id)
	if i < len(vm.live) && vm.live[i] == id {
		vm.live = append(vm.live[:i], vm.live[i+1:]...)
		vm.liveT = append(vm.liveT[:i], vm.liveT[i+1:]...)
	}
}

// rebuildLive reconstructs the live list and waiting counter from thread
// statuses; snapshot restore replaces the thread set wholesale and calls
// this instead of replaying transitions.
func (vm *VM) rebuildLive() {
	vm.live = vm.live[:0]
	vm.liveT = vm.liveT[:0]
	vm.waiting = 0
	for _, t := range vm.threads {
		if t.status == statusDone {
			continue
		}
		vm.live = append(vm.live, t.id)
		vm.liveT = append(vm.liveT, t)
		if t.status != statusRunnable {
			vm.waiting++
		}
	}
}

// newFrame builds an activation record for function fi, reusing a pooled
// register/slot pair when one is free. Reused arrays are zeroed, so a
// pooled frame is indistinguishable from a fresh one.
func (vm *VM) newFrame(fi, retDst int) frame {
	f := &vm.mod.Functions[fi]
	var regs, slots []mir.Word
	if pool := vm.pools[fi]; len(pool) > 0 {
		pair := pool[len(pool)-1]
		vm.pools[fi] = pool[:len(pool)-1]
		regs, slots = pair[0], pair[1]
		clear(regs)
		clear(slots)
	} else {
		nr := f.NumRegs()
		buf := vm.arenaAlloc(nr + len(f.SlotNames))
		regs, slots = buf[:nr:nr], buf[nr:]
	}
	return frame{fn: fi, regs: regs, slots: slots, retDst: retDst}
}

// arenaAlloc carves an n-word array out of the VM's frame arena, growing it
// by fixed chunks. Fresh chunks are zeroed by make, and every span is
// handed out exactly once (recycling goes through the per-function pools,
// which zero on reuse), so callers always see zeroed memory.
func (vm *VM) arenaAlloc(n int) []mir.Word {
	if vm.arenaOff+n > len(vm.arena) {
		c := arenaChunk
		if n > c {
			c = n
		}
		vm.arena = make([]mir.Word, c)
		vm.arenaOff = 0
	}
	buf := vm.arena[vm.arenaOff : vm.arenaOff+n : vm.arenaOff+n]
	vm.arenaOff += n
	return buf
}

// arenaChunk is the frame-arena growth unit, in words.
const arenaChunk = 1024

// recycleFrame returns a retired frame's arrays to the per-function pool.
func (vm *VM) recycleFrame(fr *frame) {
	vm.pools[fr.fn] = append(vm.pools[fr.fn], [2][]mir.Word{fr.regs, fr.slots})
	fr.regs, fr.slots = nil, nil
}

// Run executes the module to completion, failure, or the step cutoff.
func (vm *VM) Run() *Result {
	vm.runLoop(vm.cfg.maxSteps(), false)
	return vm.result()
}

// RunModule is a convenience one-shot runner.
func RunModule(mod *mir.Module, cfg Config) *Result {
	return New(mod, cfg).Run()
}

// closeEpisode closes any open recovery episode for site on t — the
// site's failure check passed (or its timed lock was acquired).
func (vm *VM) closeEpisode(t *thread, site int) {
	if e := t.endEpisode(site, vm.step); e != nil {
		vm.stats.Episodes = append(vm.stats.Episodes, *e)
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindEpisodeEnd,
				TID: int32(t.id), Site: int32(site), Arg: e.Retries,
			})
		}
	}
}

// runLoop is the dispatch loop over the compiled code stream: a tight
// program-counter walk, with the current thread's frame and code array
// cached across steps and refreshed only on thread switch, call, return
// and rollback. It executes until the run ends or (in single mode) one
// instruction retires, and reports whether any instruction executed.
//
// Determinism contract: exactly one scheduler Pick (and one KindSchedPick
// sink event) precedes every executed instruction — sched.Random consumes
// an RNG draw per Pick, so schedules would shift if fusion elided one.
// Fused super-instructions therefore run the full inter-instruction
// sequence (step++, limit check, Pick, sink) between their two micro-ops,
// and jump back to dispatch when the scheduler picks another thread: the
// unfused tail at pc+1 executes later, exactly as if never fused. Fusion
// is disabled in single mode (StepOnce means one instruction) and under
// Trace (one trace line per instruction).
//
// Superblock quanta obey the same contract. When the current instruction
// is scheduling-irrelevant (in.run != nil — see sbEligible), the loop
// enters a quantum: it chains the compiled closures directly, performing
// the identical step++/limit/Pick/sink sequence between instructions but
// never re-entering the dispatch switch until it reaches a scheduling-
// relevant instruction or the scheduler picks another thread. Because
// eligible instructions cannot fail, block, wake, spawn or finish threads,
// the runnable set — and with it every scheduler decision and its RNG draw
// — is bit-identical to unbatched execution; batching changes only how
// many times the dispatch switch runs. Superblocks are disabled in single
// mode, under Trace, and by Config.NoSuperblocks (the parity tests'
// reference).
func (vm *VM) runLoop(max int64, single bool) bool {
	fuse := !single && vm.cfg.Trace == nil
	batch := fuse && !vm.cfg.NoSuperblocks
	executed := false
	tid := -1
	var (
		t    *thread
		fr   *frame
		code []cinstr
	)
	for {
		if vm.done || vm.failure != nil {
			return executed
		}
		if vm.step >= max {
			vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
			return executed
		}
		if vm.interrupted(vm.step) {
			vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "interrupted by watchdog")
			return executed
		}
		// Inlined pick fast path: every thread runnable under the default
		// random scheduler. Same draw arithmetic (and draw count) as
		// pickThread → Intn, minus two call frames per instruction.
		var ntid int
		if vm.rnd != nil && vm.waiting == 0 && len(vm.live) > 0 {
			ntid = vm.live[vm.rnd.ReduceDraw(vm.rnd.Int31(), int32(len(vm.live)))]
			vm.noteFlight(ntid)
		} else {
			var ok bool
			ntid, ok = vm.pickThread()
			if !ok {
				return executed // deadlock already reported, or everything exited
			}
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindSchedPick, TID: int32(ntid),
			})
		}
		if ntid != tid {
			tid = ntid
			t = vm.threads[tid]
			fr = t.top()
			code = vm.prog.funcs[fr.fn].code
		}

	dispatch:
		in := &code[fr.pc]

		if batch && in.run != nil {
			// Superblock quantum: chain closures until the superblock ends or
			// the scheduler switches threads. The pick for the current
			// instruction was already consumed (and sink-recorded) above; the
			// loop consumes exactly one further pick per retired instruction,
			// so the RNG stream is positioned exactly as unbatched execution
			// would leave it.
			executed = true
			vm.sbQuanta++
			if vm.rnd != nil && vm.waiting == 0 {
				// No eligible instruction can change the live set or wake a
				// waiter, so the runnable count n — and the fast-pick
				// precondition itself — is invariant across the quantum. The
				// step counters stay in locals for the quantum's duration
				// (closures never read them) and are flushed back on every
				// exit path.
				n := int32(len(vm.live))
				rnd, live := vm.rnd, vm.live
				step, instrs := vm.step, vm.sbInstrs
				// Flight picks inside the quantum are all of the current
				// thread until the exit draw; count them in a register and
				// flush one RLE note per quantum instead of one per step.
				var stay int64
				for {
					in.run(fr)
					step++
					instrs++
					if step >= max {
						vm.step, vm.sbInstrs = step, instrs
						vm.noteFlightRun(tid, stay)
						vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
						return true
					}
					if vm.interrupted(step) {
						vm.step, vm.sbInstrs = step, instrs
						vm.noteFlightRun(tid, stay)
						vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "interrupted by watchdog")
						return true
					}
					nt := live[rnd.ReduceDraw(rnd.Int31(), n)]
					if vm.sink != nil {
						vm.sink.Record(obs.Event{
							Step: step, Kind: obs.KindSchedPick, TID: int32(nt),
						})
					}
					if nt != tid {
						vm.step, vm.sbInstrs = step, instrs
						vm.noteFlightRun(tid, stay)
						vm.noteFlight(nt)
						tid = nt
						t = vm.threads[tid]
						fr = t.top()
						code = vm.prog.funcs[fr.fn].code
						goto dispatch
					}
					stay++
					in = &code[fr.pc]
					if in.run == nil {
						vm.step, vm.sbInstrs = step, instrs
						vm.noteFlightRun(tid, stay)
						break
					}
				}
			} else {
				// Non-Random scheduler (PCT, round-robin, scripted) or some
				// thread waiting: take the full pickThread per instruction so
				// wake-ups, timeouts and scheduler state advance exactly as
				// they would unbatched.
				for {
					in.run(fr)
					vm.step++
					vm.sbInstrs++
					if vm.step >= max {
						vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
						return true
					}
					if vm.interrupted(vm.step) {
						vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "interrupted by watchdog")
						return true
					}
					nt, ok := vm.pickThread()
					if !ok {
						return true
					}
					if vm.sink != nil {
						vm.sink.Record(obs.Event{
							Step: vm.step, Kind: obs.KindSchedPick, TID: int32(nt),
						})
					}
					if nt != tid {
						tid = nt
						t = vm.threads[tid]
						fr = t.top()
						code = vm.prog.funcs[fr.fn].code
						goto dispatch
					}
					in = &code[fr.pc]
					if in.run == nil {
						break
					}
				}
			}
			// in is scheduling-relevant and its pick is already consumed:
			// fall through to the dispatch switch below.
		}

		if vm.cfg.Trace != nil {
			// The precomputed in.pos addresses the source instruction
			// directly: no per-step position reconstruction.
			fmt.Fprintf(vm.cfg.Trace, "step=%d tid=%d pos=%s %s\n",
				vm.step, t.id, in.pos,
				mir.FormatInstr(vm.mod, &vm.mod.Functions[in.pos.Fn], vm.mod.At(in.pos)))
		}

		switch in.op {
		case cConst:
			fr.regs[in.dst] = in.aImm
			fr.pc++

		case cBinRR:
			fr.regs[in.dst] = in.bin.Eval(fr.regs[in.aReg], fr.regs[in.bReg])
			fr.pc++

		case cBinRI:
			fr.regs[in.dst] = in.bin.Eval(fr.regs[in.aReg], in.bImm)
			fr.pc++

		case cBinIR:
			fr.regs[in.dst] = in.bin.Eval(in.aImm, fr.regs[in.bReg])
			fr.pc++

		case cLoadG:
			fr.regs[in.dst] = vm.mem.globals[in.aux]
			if vm.san != nil {
				vm.san.Access(t.id, globalAddr(int(in.aux)), false, in.pos)
			}
			fr.pc++

		case cStoreG:
			vm.mem.globals[in.aux] = in.a(fr)
			if vm.san != nil {
				vm.san.Access(t.id, globalAddr(int(in.aux)), true, in.pos)
			}
			fr.pc++

		case cAddrG:
			fr.regs[in.dst] = globalAddr(int(in.aux))
			fr.pc++

		case cLoad:
			addr := in.a(fr)
			v, ok := vm.mem.load(addr)
			if !ok {
				vm.fail(mir.FailSegfault, in.pos, int(in.site), t.id,
					fmt.Sprintf("invalid read at address %d", addr))
				break
			}
			fr.regs[in.dst] = v
			if vm.san != nil {
				vm.san.Access(t.id, addr, false, in.pos)
			}
			fr.pc++

		case cStore:
			addr := in.a(fr)
			if !vm.mem.store(addr, in.b(fr)) {
				vm.fail(mir.FailSegfault, in.pos, int(in.site), t.id,
					fmt.Sprintf("invalid write at address %d", addr))
				break
			}
			if vm.san != nil {
				vm.san.Access(t.id, addr, true, in.pos)
			}
			fr.pc++

		case cLoadS:
			fr.regs[in.dst] = fr.slots[in.aux]
			fr.pc++

		case cStoreS:
			fr.slots[in.aux] = in.a(fr)
			fr.pc++

		case cAlloc:
			addr := vm.mem.alloc(in.a(fr))
			fr.regs[in.dst] = addr
			if t.jmp != nil {
				t.pushComp(compAlloc, addr)
			}
			fr.pc++

		case cFree:
			vm.mem.free(in.a(fr))
			fr.pc++

		case cLock:
			addr := in.a(fr)
			mu := vm.lcks.get(addr)
			switch {
			case !mu.held:
				mu.held, mu.holder = true, t.id
				vm.setStatus(t, statusRunnable)
				if t.jmp != nil {
					t.pushComp(compLock, addr)
				}
				if vm.sink != nil {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindLockAcquire,
						TID: int32(t.id), Site: in.site, Arg: int64(addr),
					})
				}
				if vm.san != nil {
					vm.san.LockAcquire(t.id, addr, false, in.pos)
				}
				fr.pc++
			case mu.holder == t.id && t.status != statusBlockedLock:
				vm.fail(mir.FailHang, in.pos, int(in.site), t.id,
					fmt.Sprintf("self-deadlock on lock %d", addr))
			default:
				if t.status != statusBlockedLock {
					if vm.san != nil {
						// Record the lock request before the wait-for-cycle
						// check below: an actual deadlock fails the run right
						// here, and the predictor needs this edge.
						vm.san.LockRequest(t.id, addr, false, in.pos)
					}
					vm.setStatus(t, statusBlockedLock)
					t.blockAddr = addr
					t.blockedSince = vm.step
					t.blockTimeout = 0
					if !vm.cfg.NoDeadlockCycles {
						if cycle := vm.deadlockCycle(t); cycle != nil {
							vm.fail(mir.FailHang, in.pos, int(in.site), t.id,
								fmt.Sprintf("deadlock: wait-for cycle among threads %v", cycle))
						}
					}
				}
			}

		case cTimedLock:
			addr := in.a(fr)
			mu := vm.lcks.get(addr)
			selfHeld := mu.held && mu.holder == t.id && t.status != statusBlockedLock
			waiting := t.status == statusBlockedLock
			expired := waiting && vm.step-t.blockedSince >= t.blockTimeout
			switch {
			case !mu.held:
				mu.held, mu.holder = true, t.id
				vm.setStatus(t, statusRunnable)
				fr.regs[in.dst] = 1
				if t.jmp != nil {
					t.pushComp(compLock, addr)
				}
				if vm.sink != nil {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindLockAcquire,
						TID: int32(t.id), Site: in.site, Arg: int64(addr),
					})
				}
				if vm.san != nil {
					vm.san.LockAcquire(t.id, addr, true, in.pos)
				}
				if in.site > 0 {
					vm.closeEpisode(t, int(in.site))
				}
				fr.pc++
			case selfHeld || expired:
				// Self-acquisition would never succeed; treat it as an
				// immediate timeout. An expired wait reports timeout too.
				vm.setStatus(t, statusRunnable)
				fr.regs[in.dst] = 0
				if vm.sink != nil {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindLockTimeout,
						TID: int32(t.id), Site: in.site, Arg: int64(addr),
					})
				}
				fr.pc++
			default:
				if !waiting {
					if vm.san != nil {
						vm.san.LockRequest(t.id, addr, true, in.pos)
					}
					vm.setStatus(t, statusBlockedLock)
					t.blockAddr = addr
					t.blockedSince = vm.step
					t.blockTimeout = in.bImm
				}
			}

		case cUnlock:
			addr := in.a(fr)
			mu := vm.lcks.get(addr)
			if mu.held && mu.holder == t.id {
				mu.held = false
				if vm.san != nil {
					vm.san.LockRelease(t.id, addr)
				}
			}
			// Unlocking a lock we do not hold is undefined in pthreads; the
			// interpreter ignores it, as the analyses never generate it.
			fr.pc++

		case cWait:
			if vm.execWait(t, fr, in.a(fr), in.b(fr), int64(in.aux),
				int(in.dst), int(in.site), in.pos) {
				fr.pc++
			}

		case cSignal:
			vm.execSignal(t, in.a(fr), false, in.pos)
			fr.pc++

		case cBroadcast:
			vm.execSignal(t, in.a(fr), true, in.pos)
			fr.pc++

		case cChSend:
			if vm.execChSend(t, fr, in.a(fr), in.b(fr), int64(in.aux),
				int(in.dst), int(in.site), in.pos) {
				fr.pc++
			}

		case cChRecv:
			if vm.execChRecv(t, fr, in.a(fr), int(in.dst), in.pos) {
				fr.pc++
			}

		case cChClose:
			if vm.execChClose(t, in.a(fr), int(in.site), in.pos) {
				fr.pc++
			}

		case cCAS:
			if vm.execCAS(t, fr, in.a(fr), in.b(fr), in.arg0(fr),
				int(in.dst), int(in.site), in.pos) {
				fr.pc++
			}

		case cCall:
			nfr := vm.newFrame(int(in.aux), int(in.dst))
			for i := range in.args {
				a := &in.args[i]
				if a.reg >= 0 {
					nfr.regs[i] = fr.regs[a.reg]
				} else {
					nfr.regs[i] = a.imm
				}
			}
			// Advance the caller past the call before pushing, so the return
			// resumes at the next instruction.
			fr.pc++
			t.frames = append(t.frames, nfr)
			fr = t.top()
			code = vm.prog.funcs[fr.fn].code

		case cSpawn:
			if len(vm.threads) >= vm.cfg.maxThreads() {
				vm.fail(mir.FailHang, in.pos, 0, t.id, "thread limit exceeded")
				break
			}
			args := make([]mir.Word, len(in.args))
			for i := range in.args {
				a := &in.args[i]
				if a.reg >= 0 {
					args[i] = fr.regs[a.reg]
				} else {
					args[i] = a.imm
				}
			}
			fr.regs[in.dst] = mir.Word(vm.spawn(int(in.aux), args))
			if vm.san != nil {
				vm.san.ThreadSpawn(t.id, int(fr.regs[in.dst]))
			}
			fr.pc++

		case cJoin:
			target := int(in.a(fr))
			tt := vm.threadByID(target)
			if tt != nil && tt.status != statusDone {
				vm.setStatus(t, statusBlockedJoin)
				t.joinTarget = target
			} else {
				if vm.san != nil {
					// The waiter proceeds past the join: the target's effects
					// now happen-before everything the waiter does next.
					vm.san.ThreadJoin(t.id, target)
				}
				fr.pc++
			}

		case cOutput:
			if vm.cfg.CollectOutput {
				vm.output = append(vm.output, OutputEvent{
					Text: in.text, Value: in.a(fr), Thread: t.id, Step: vm.step,
				})
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindOutput,
					TID: int32(t.id), Arg: int64(in.a(fr)), Text: in.text,
				})
			}
			fr.pc++

		case cAssert:
			if in.a(fr) == 0 {
				kind := mir.FailAssert
				if in.akind == mir.AssertOracle {
					kind = mir.FailWrongOutput
				}
				vm.fail(kind, in.pos, int(in.site), t.id, in.text)
				break
			}
			fr.pc++

		case cYield:
			// Scheduler hint only; costs one step.
			fr.pc++

		case cSleep:
			d := in.a(fr)
			if d > 0 {
				vm.setStatus(t, statusSleeping)
				t.wakeAt = vm.step + d
			}
			fr.pc++

		case cSleepRand:
			n := in.a(fr)
			if n > 0 {
				d := mir.Word(vm.cfg.Sched.Intn(int(n) + 1))
				if d > 0 {
					vm.setStatus(t, statusSleeping)
					t.wakeAt = vm.step + d
				}
			}
			fr.pc++

		case cNop:
			fr.pc++

		case cCheckpoint:
			t.regionCtr++
			jb := t.jmp
			if jb == nil || cap(jb.regs) < len(fr.regs) {
				jb = &jmpbuf{regs: make([]mir.Word, len(fr.regs))}
				t.jmp = jb
			}
			jb.regs = jb.regs[:len(fr.regs)]
			copy(jb.regs, fr.regs)
			jb.frameDepth = len(t.frames) - 1
			jb.pc = fr.pc + 1
			jb.regionCtr = t.regionCtr
			vm.stats.Checkpoints++
			if vm.stats.CheckpointExecs == nil {
				vm.stats.CheckpointExecs = map[int]int64{}
			}
			vm.stats.CheckpointExecs[int(in.site)]++
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindCheckpoint,
					TID: int32(t.id), Site: in.site,
				})
			}
			fr.pc++

		case cRollback:
			site := int(in.site)
			if t.jmp != nil && t.jmp.frameDepth < len(t.frames) &&
				t.retryCount(site) < in.aImm {
				t.bumpRetry(site)
				e := t.beginEpisode(site, vm.step)
				if vm.sink != nil {
					if e.Retries == 1 {
						vm.sink.Record(obs.Event{
							Step: vm.step, Kind: obs.KindEpisodeBegin,
							TID: int32(t.id), Site: in.site,
						})
					}
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindRollback,
						TID: int32(t.id), Site: in.site, Arg: e.Retries,
					})
				}
				vm.rollback(t)
				vm.stats.Rollbacks++
				fr = t.top()
				code = vm.prog.funcs[fr.fn].code
				break
			}
			// No active checkpoint or retries exhausted: fall through to the
			// real failure (the instruction after the rollback).
			fr.pc++

		case cFail:
			vm.fail(in.fkind, in.pos, int(in.site), t.id, in.text)

		case cBr:
			c := in.a(fr)
			if in.site > 0 && c != 0 {
				// Site-tagged branches are transformed failure checks with
				// the convention Then = pass, Else = recover. Passing closes
				// any open recovery episode for the site.
				vm.closeEpisode(t, int(in.site))
			}
			if c != 0 {
				fr.pc = int(in.thenPC)
			} else {
				fr.pc = int(in.elsePC)
			}

		case cJmp:
			fr.pc = int(in.thenPC)

		case cRet:
			ret := in.a(fr)
			t.frames = t.frames[:len(t.frames)-1]
			vm.recycleFrame(fr)
			// Returning out of the checkpoint's frame invalidates it, exactly
			// like returning from the function that called setjmp.
			if t.jmp != nil && t.jmp.frameDepth >= len(t.frames) {
				t.jmp = nil
			}
			if len(t.frames) == 0 {
				vm.setStatus(t, statusDone)
				t.result = ret
				if vm.sink != nil {
					vm.sink.Record(obs.Event{
						Step: vm.step, Kind: obs.KindThreadExit,
						TID: int32(t.id), Arg: int64(ret),
					})
				}
				if t.id == vm.mainTID {
					vm.done = true
					vm.exit = ret
				}
				tid = -1 // no frame to resume; force a refetch next pick
				break
			}
			caller := t.top()
			if fr.retDst >= 0 {
				caller.regs[fr.retDst] = ret
			}
			fr = caller
			code = vm.prog.funcs[fr.fn].code

		case cFusedBinBr:
			var bx, by mir.Word
			if in.aReg >= 0 {
				bx = fr.regs[in.aReg]
			} else {
				bx = in.aImm
			}
			if in.bReg >= 0 {
				by = fr.regs[in.bReg]
			} else {
				by = in.bImm
			}
			fr.regs[in.dst] = in.bin.Eval(bx, by)
			fr.pc++
			if !fuse {
				break
			}
			// Inter-instruction scheduling step (see the runLoop comment).
			vm.step++
			executed = true
			if vm.step >= max {
				vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
				return true
			}
			var ntid3 int
			if vm.rnd != nil && vm.waiting == 0 && len(vm.live) > 0 {
				ntid3 = vm.live[vm.rnd.ReduceDraw(vm.rnd.Int31(), int32(len(vm.live)))]
				vm.noteFlight(ntid3)
			} else {
				var ok bool
				ntid3, ok = vm.pickThread()
				if !ok {
					return true
				}
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindSchedPick, TID: int32(ntid3),
				})
			}
			if ntid3 != tid {
				tid = ntid3
				t = vm.threads[tid]
				fr = t.top()
				code = vm.prog.funcs[fr.fn].code
				goto dispatch
			}
			c := fr.regs[in.x2]
			if in.site > 0 && c != 0 {
				vm.closeEpisode(t, int(in.site))
			}
			if c != 0 {
				fr.pc = int(in.thenPC)
			} else {
				fr.pc = int(in.elsePC)
			}

		case cFusedLoadGBr:
			fr.regs[in.dst] = vm.mem.globals[in.aux]
			if vm.san != nil {
				vm.san.Access(t.id, globalAddr(int(in.aux)), false, in.pos)
			}
			fr.pc++
			if !fuse {
				break
			}
			vm.step++
			executed = true
			if vm.step >= max {
				vm.fail(mir.FailHang, mir.Pos{}, 0, -1, "step limit exceeded (hang)")
				return true
			}
			var ntid4 int
			if vm.rnd != nil && vm.waiting == 0 && len(vm.live) > 0 {
				ntid4 = vm.live[vm.rnd.ReduceDraw(vm.rnd.Int31(), int32(len(vm.live)))]
				vm.noteFlight(ntid4)
			} else {
				var ok bool
				ntid4, ok = vm.pickThread()
				if !ok {
					return true
				}
			}
			if vm.sink != nil {
				vm.sink.Record(obs.Event{
					Step: vm.step, Kind: obs.KindSchedPick, TID: int32(ntid4),
				})
			}
			if ntid4 != tid {
				tid = ntid4
				t = vm.threads[tid]
				fr = t.top()
				code = vm.prog.funcs[fr.fn].code
				goto dispatch
			}
			c := fr.regs[in.x2]
			if in.site > 0 && c != 0 {
				vm.closeEpisode(t, int(in.site))
			}
			if c != 0 {
				fr.pc = int(in.thenPC)
			} else {
				fr.pc = int(in.elsePC)
			}

		default: // cUnimpl
			vm.fail(mir.FailHang, in.pos, 0, t.id, in.text)
		}

		vm.step++
		executed = true
		if single {
			return true
		}
	}
}

func (vm *VM) result() *Result {
	r := &Result{
		Completed: vm.done && vm.failure == nil,
		Failure:   vm.failure,
		ExitCode:  vm.exit,
		Output:    vm.output,
		Stats:     vm.stats,
	}
	r.Stats.Steps = vm.step
	// Surface episodes still open at program end as unrecovered.
	for _, t := range vm.threads {
		for _, e := range t.episodes {
			r.Stats.Episodes = append(r.Stats.Episodes, *e)
		}
	}
	sort.Slice(r.Stats.Episodes, func(i, j int) bool {
		return r.Stats.Episodes[i].Start < r.Stats.Episodes[j].Start
	})
	if !vm.counted {
		// Count each run once even if result() is built repeatedly
		// (Finish may be called more than once on a StepOnce-driven VM).
		vm.counted = true
		totalRuns.Add(1)
		totalSteps.Add(vm.step)
		totalSBQuanta.Add(vm.sbQuanta)
		totalSBSaved.Add(vm.sbInstrs - vm.sbQuanta)
		if reg := metricsRegistry.Load(); reg != nil {
			recordRunMetrics(reg, r)
			recordSuperblockMetrics(reg, vm.sbQuanta, vm.sbInstrs)
		}
	}
	return r
}

// spawn creates a thread running function fi with the given arguments.
func (vm *VM) spawn(fi int, args []mir.Word) int {
	t := &thread{id: vm.nextTID}
	vm.nextTID++
	fr := vm.newFrame(fi, -1)
	copy(fr.regs, args)
	t.frames = append(t.frames, fr)
	vm.threads = append(vm.threads, t)
	vm.live = append(vm.live, t.id) // ids ascend, so append keeps order
	vm.liveT = append(vm.liveT, t)
	vm.stats.ThreadsSpawned++
	if vm.sink != nil {
		vm.sink.Record(obs.Event{
			Step: vm.step, Kind: obs.KindThreadSpawn, TID: int32(t.id),
		})
	}
	return t.id
}

// noteFlight reports one devirtualized-fast-path pick to the flight ring;
// the disabled path is one nil check (same contract as sink/san).
func (vm *VM) noteFlight(tid int) {
	if vm.flight != nil {
		vm.flight.Note(int32(tid))
	}
}

// noteFlightRun reports n consecutive picks of tid (a superblock
// quantum's stay) to the flight ring in one RLE update.
func (vm *VM) noteFlightRun(tid int, n int64) {
	if vm.flight != nil {
		vm.flight.NoteRun(int32(tid), n)
	}
}

// pickThread collects runnable threads (waking sleepers and expiring lock
// timeouts) and asks the scheduler to choose. When nothing can run it
// reports a deadlock or ends the program.
//
// The live list is maintained incrementally by setStatus, so when no live
// thread waits the list is handed to the scheduler as-is — no scan at all.
// Only when some thread sleeps or blocks does the (live-only) scan run to
// wake sleepers, expire lock timeouts and resolve joins. Both paths
// produce exactly the runnable set the historical all-threads rescan did:
// membership and (ascending id) order are identical, so seeded schedules
// are unchanged.
func (vm *VM) pickThread() (int, bool) {
	for {
		if vm.waiting == 0 {
			if len(vm.live) == 0 {
				// Every thread is done but main never returned? (Cannot
				// happen: main returning sets vm.done.) Treat as end.
				return 0, false
			}
			if vm.rnd != nil {
				nt := vm.live[vm.rnd.Intn(len(vm.live))]
				vm.noteFlight(nt)
				return nt, true
			}
			return vm.cfg.Sched.Pick(vm.live, vm.step), true
		}
		runnable := vm.runnableBuf[:0]
		var minWake int64 = -1
		anyLive := false
		for _, t := range vm.liveT {
			switch t.status {
			case statusRunnable:
				runnable = append(runnable, t.id)
			case statusSleeping:
				anyLive = true
				if t.wakeAt <= vm.step {
					vm.setStatus(t, statusRunnable)
					runnable = append(runnable, t.id)
				} else if minWake < 0 || t.wakeAt < minWake {
					minWake = t.wakeAt
				}
			case statusBlockedLock:
				anyLive = true
				mu := vm.lcks.get(t.blockAddr)
				waited := vm.step - t.blockedSince
				switch {
				case !mu.held:
					// Lock available: the thread is schedulable; it
					// acquires when picked.
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0 && waited >= t.blockTimeout:
					// Timed lock expired: schedulable to observe timeout.
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0:
					// A pending timeout is a future wake event; without
					// this, a system quiesced behind a timed lock would be
					// misreported as deadlocked.
					if wake := t.blockedSince + t.blockTimeout; minWake < 0 || wake < minWake {
						minWake = wake
					}
				}
			case statusBlockedJoin:
				anyLive = true
				if vm.threadByID(t.joinTarget) == nil ||
					vm.threadByID(t.joinTarget).status == statusDone {
					vm.setStatus(t, statusRunnable)
					runnable = append(runnable, t.id)
				}
			case statusBlockedCond:
				// An armed waiter is woken directly by signal/broadcast
				// (execSignal moves it to statusBlockedLock); the scan only
				// has to expire timed waits.
				anyLive = true
				if t.blockTimeout > 0 {
					if vm.step-t.blockedSince >= t.blockTimeout {
						runnable = append(runnable, t.id)
					} else if wake := t.blockedSince + t.blockTimeout; minWake < 0 || wake < minWake {
						minWake = wake
					}
				}
			case statusBlockedSend:
				anyLive = true
				ch := vm.chans.peek(t.blockAddr)
				waited := vm.step - t.blockedSince
				switch {
				case ch == nil || !ch.full() || ch.closed:
					// Room appeared (or a close makes the send fail): the
					// send is schedulable; it completes when picked.
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0 && waited >= t.blockTimeout:
					runnable = append(runnable, t.id)
				case t.blockTimeout > 0:
					if wake := t.blockedSince + t.blockTimeout; minWake < 0 || wake < minWake {
						minWake = wake
					}
				}
			case statusBlockedRecv:
				anyLive = true
				ch := vm.chans.peek(t.blockAddr)
				if ch == nil || !ch.empty() || ch.closed {
					runnable = append(runnable, t.id)
				}
			}
		}
		vm.runnableBuf = runnable
		if len(runnable) > 0 {
			if vm.rnd != nil {
				nt := runnable[vm.rnd.Intn(len(runnable))]
				vm.noteFlight(nt)
				return nt, true
			}
			return vm.cfg.Sched.Pick(runnable, vm.step), true
		}
		if !anyLive {
			return 0, false
		}
		if minWake > vm.step {
			// Only sleepers: advance virtual time to the next wake.
			vm.step = minWake
			continue
		}
		// Threads exist but none can ever run: all blocked on held locks,
		// joins, un-signalled condvars or full/empty channels — a
		// deadlock, observed as a hang by the user.
		vm.fail(mir.FailHang, mir.Pos{}, 0, -1,
			fmt.Sprintf("no runnable threads at step %d (deadlock)", vm.step))
		return 0, false
	}
}

func (vm *VM) threadByID(id int) *thread {
	if id < 0 || id >= len(vm.threads) {
		return nil
	}
	return vm.threads[id]
}

func (vm *VM) fail(kind mir.FailKind, pos mir.Pos, site, tid int, msg string) {
	vm.failure = &Failure{
		Kind: kind, Pos: pos, Site: site, Thread: tid, Step: vm.step, Msg: msg,
	}
	if vm.sink != nil {
		vm.sink.Record(obs.Event{
			Step: vm.step, Kind: obs.KindFailure,
			TID: int32(tid), Site: int32(site), Text: msg,
		})
	}
}

// rollback performs the longjmp: compensate region acquisitions, unwind
// callee frames, restore the checkpoint frame's register image and jump to
// the instruction after the checkpoint.
func (vm *VM) rollback(t *thread) {
	for _, ce := range t.takeComp() {
		switch ce.kind {
		case compAlloc:
			vm.mem.free(ce.addr)
			vm.stats.CompFrees++
		case compLock:
			mu := vm.lcks.get(ce.addr)
			if mu.held && mu.holder == t.id {
				mu.held = false
				if vm.san != nil {
					vm.san.LockRelease(t.id, ce.addr)
				}
			}
			vm.stats.CompUnlocks++
		}
	}
	jb := t.jmp
	for i := jb.frameDepth + 1; i < len(t.frames); i++ {
		vm.recycleFrame(&t.frames[i])
	}
	t.frames = t.frames[:jb.frameDepth+1]
	fr := t.top()
	copy(fr.regs, jb.regs)
	fr.pc = jb.pc
}
