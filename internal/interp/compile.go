package interp

import (
	"fmt"
	"sync"

	"conair/internal/mir"
)

// This file is the ahead-of-time compilation stage between mir.Module and
// the VM. Each function is lowered exactly once into a flat code array of
// pre-resolved instructions (cinstr):
//
//   - jump targets are absolute flat indices ("pc") instead of
//     (block, index) pairs, so branches are a single assignment;
//   - operands are pre-bound to a register slot or an immediate, removing
//     the per-step eval() kind switch (OperandNone lowers to immediate 0,
//     matching eval's historical behaviour);
//   - every cinstr carries its precomputed mir.Pos, so the failure,
//     sanitizer and trace paths never reconstruct positions;
//   - scheduling-irrelevant instructions are additionally lowered to direct
//     Go closures (cinstr.run), so the run loop can execute a whole
//     superblock — a maximal straight-line run of such instructions — as
//     one scheduler quantum without re-entering the central dispatch
//     switch (see superblocks below);
//   - the scheduling-relevant instruction pairs observed in the golden
//     sweep are fused into super-instructions (bin+br-at-site, loadg+br)
//     that the run loop executes without re-entering the dispatch path.
//
// Fusion never changes observable behaviour: the scheduler consumes one
// decision per executed instruction (sched.Random draws its RNG on every
// Pick), so a fused pair still performs the full inter-instruction
// scheduling step between its two micro-ops, and bails out to the unfused
// second instruction — which always exists at pc+1, because lowering maps
// source instructions 1:1 onto code slots and fusion only rewrites the
// first slot of a pair — whenever the scheduler picks another thread.

// cop enumerates compiled opcodes. cBin* split by operand shape so the hot
// arithmetic path loads registers without per-operand branches; a bin with
// two immediate operands is constant-folded to cConst at compile time.
type cop uint8

const (
	cConst cop = iota
	cBinRR     // dst = regs[a] <bin> regs[b]
	cBinRI     // dst = regs[a] <bin> bImm
	cBinIR     // dst = aImm <bin> regs[b]
	cLoadG
	cStoreG
	cAddrG
	cLoad
	cStore
	cLoadS
	cStoreS
	cAlloc
	cFree
	cLock
	cTimedLock
	cUnlock
	cCall
	cSpawn
	cJoin
	cOutput
	cAssert
	cYield
	cSleep
	cSleepRand
	cNop
	cCheckpoint
	cRollback
	cFail
	cBr
	cJmp
	cRet
	// Synchronization extensions: all scheduling-relevant (they block,
	// wake threads, fail, or touch shared state), so none are superblock-
	// eligible and all dispatch through the central switch.
	cWait    // a=condvar, b=mutex, aux=timeout (0 = untimed)
	cSignal  // a=condvar
	cBroadcast
	cChSend  // a=channel, b=value, aux=timeout (0 = untimed)
	cChRecv  // a=channel
	cChClose // a=channel
	cCAS     // a=address, b=expected, args[0]=replacement
	cUnimpl  // unknown source opcode; fails at execution time like exec did

	// Fused super-instructions. Each occupies the first slot of its source
	// pair; the second slot keeps the unfused tail as the bail-out target.
	// Only pairs whose head or tail is scheduling-relevant are fused —
	// pairs of scheduling-irrelevant instructions are covered by the
	// superblock closure path instead.
	cFusedBinBr   // bin (generic operands) ; then br (site > 0) on regs[x2] to thenPC/elsePC
	cFusedLoadGBr // loadg dst,aux ; then br on regs[x2] to thenPC/elsePC
)

// carg is a pre-resolved call/spawn argument: a register slot, or an
// immediate when reg is negative.
type carg struct {
	reg int32
	imm mir.Word
}

// cinstr is one compiled instruction. Which fields are meaningful depends
// on op; field use mirrors mir.Instr with operands pre-bound:
//
//	aReg/aImm, bReg/bImm — generic operands (reg slot, or imm when reg < 0);
//	                       aImm doubles as the const value (cConst), the
//	                       rollback retry bound (cRollback); bImm doubles as
//	                       the timedlock timeout (cTimedLock);
//	aux                  — global, slot or callee index; doubles as the
//	                       wait/chsend timeout (their b slot is occupied);
//	thenPC/elsePC        — absolute flat branch targets;
//	site                 — failure-site id (for fused ops: the branch's);
//	x2/y2/z2, bin        — fused-tail payload (see the cop comments);
//	pos                  — this instruction's source position, precomputed.
type cinstr struct {
	op    cop
	bin   mir.BinOp
	akind mir.AssertKind
	fkind mir.FailKind

	dst    int32
	aReg   int32
	bReg   int32
	aux    int32
	thenPC int32
	elsePC int32
	site   int32
	x2     int32
	y2     int32
	z2     int32

	aImm mir.Word
	bImm mir.Word

	pos  mir.Pos
	args []carg
	text string

	// run is the direct-threaded form: non-nil exactly when the instruction
	// is scheduling-irrelevant (sbEligible), in which case calling run(fr)
	// performs the instruction's full effect — registers, slots, and pc —
	// with no possible failure, no thread-state change, no sink event and no
	// sanitizer hook. The run loop chains these closures inside a superblock
	// quantum, bypassing the central dispatch switch.
	run func(fr *frame)
}

// a resolves the first generic operand against fr.
func (in *cinstr) a(fr *frame) mir.Word {
	if in.aReg >= 0 {
		return fr.regs[in.aReg]
	}
	return in.aImm
}

// b resolves the second generic operand against fr.
func (in *cinstr) b(fr *frame) mir.Word {
	if in.bReg >= 0 {
		return fr.regs[in.bReg]
	}
	return in.bImm
}

// arg0 resolves the first pre-bound argument (the cas replacement value).
func (in *cinstr) arg0(fr *frame) mir.Word {
	a := &in.args[0]
	if a.reg >= 0 {
		return fr.regs[a.reg]
	}
	return a.imm
}

// fcode is one compiled function: its flat code stream plus the flat offset
// of each source block (blockStart[b] is the pc of block b's first
// instruction), plus the superblock partition.
type fcode struct {
	code       []cinstr
	blockStart []int32
	// sbLen[pc] is the length of the maximal run of scheduling-irrelevant
	// instructions starting at pc (0 when code[pc] is scheduling-relevant).
	// Runs never span a basic-block boundary or a scheduling-relevant
	// instruction; the run loop itself gates batching on code[pc].run !=
	// nil, so sbLen is partition metadata for tests and tooling.
	sbLen []int32
}

// Program is a compiled module: one fcode per function, in function order.
// A Program is immutable after Compile and safe to share across VMs.
type Program struct {
	mod   *mir.Module
	funcs []fcode
}

var (
	progMu    sync.Mutex
	progCache = map[*mir.Module]*Program{}
)

// progCacheMax bounds the compiled-program cache. Eviction clears the whole
// cache: entries are keyed by module pointer, so there is no meaningful
// recency order to preserve, and steady-state workloads (the prepared-bug
// cache, mirgen sweeps) stay far below the bound anyway.
const progCacheMax = 1024

// Compile lowers the module to its flat compiled form, memoizing by module
// pointer. Callers must treat a module as immutable once it has been
// compiled or run — the rest of the repository already does (transform
// Clones before rewriting; bugs and mirgen build fresh modules).
func Compile(mod *mir.Module) *Program {
	progMu.Lock()
	p := progCache[mod]
	if p == nil {
		if len(progCache) >= progCacheMax {
			clear(progCache)
		}
		p = compileModule(mod)
		progCache[mod] = p
	}
	progMu.Unlock()
	return p
}

func compileModule(mod *mir.Module) *Program {
	p := &Program{mod: mod, funcs: make([]fcode, len(mod.Functions))}
	for fi := range mod.Functions {
		p.funcs[fi] = compileFunc(mod, fi)
	}
	return p
}

// lowerOperand pre-binds one operand: a register slot index, or -1 plus an
// immediate. OperandNone becomes immediate 0, exactly what eval returned.
func lowerOperand(o mir.Operand) (int32, mir.Word) {
	switch o.Kind {
	case mir.OperandReg:
		return int32(o.Reg), 0
	case mir.OperandImm:
		return -1, o.Imm
	}
	return -1, 0
}

func compileFunc(mod *mir.Module, fi int) fcode {
	f := &mod.Functions[fi]
	offs := f.BlockOffsets()
	code := make([]cinstr, 0, f.NumInstrs())
	for b := range f.Blocks {
		for i := range f.Blocks[b].Instrs {
			code = append(code, lower(&f.Blocks[b].Instrs[i],
				mir.Pos{Fn: fi, Block: b, Index: i}, offs))
		}
	}
	fc := fcode{code: code, blockStart: offs}
	fuseFunc(&fc, f)
	closeFunc(&fc)
	superblocks(&fc)
	return fc
}

// lower translates one source instruction at pos into its compiled form.
func lower(in *mir.Instr, pos mir.Pos, offs []int32) cinstr {
	c := cinstr{
		dst:  int32(in.Dst),
		site: int32(in.Site),
		pos:  pos,
		text: in.Text,
	}
	c.aReg, c.aImm = lowerOperand(in.A)
	c.bReg, c.bImm = lowerOperand(in.B)

	switch in.Op {
	case mir.OpConst:
		c.op, c.aImm, c.aReg = cConst, in.Imm, -1
	case mir.OpBin:
		c.bin = in.Bin
		switch {
		case c.aReg >= 0 && c.bReg >= 0:
			c.op = cBinRR
		case c.aReg >= 0:
			c.op = cBinRI
		case c.bReg >= 0:
			c.op = cBinIR
		default:
			// Both operands immediate: fold at compile time.
			c.op, c.aImm, c.bImm = cConst, in.Bin.Eval(c.aImm, c.bImm), 0
		}
	case mir.OpLoadG:
		c.op, c.aux = cLoadG, int32(in.Global)
	case mir.OpStoreG:
		c.op, c.aux = cStoreG, int32(in.Global)
	case mir.OpAddrG:
		c.op, c.aux = cAddrG, int32(in.Global)
	case mir.OpLoad:
		c.op = cLoad
	case mir.OpStore:
		c.op = cStore
	case mir.OpLoadS:
		c.op, c.aux = cLoadS, int32(in.Slot)
	case mir.OpStoreS:
		c.op, c.aux = cStoreS, int32(in.Slot)
	case mir.OpAlloc:
		c.op = cAlloc
	case mir.OpFree:
		c.op = cFree
	case mir.OpLock:
		c.op = cLock
	case mir.OpTimedLock:
		c.op, c.bReg, c.bImm = cTimedLock, -1, mir.Word(in.Timeout)
	case mir.OpUnlock:
		c.op = cUnlock
	case mir.OpCall:
		c.op, c.aux, c.args = cCall, int32(in.Callee), lowerArgs(in.Args)
	case mir.OpSpawn:
		c.op, c.aux, c.args = cSpawn, int32(in.Callee), lowerArgs(in.Args)
	case mir.OpJoin:
		c.op = cJoin
	case mir.OpOutput:
		c.op = cOutput
	case mir.OpAssert:
		c.op, c.akind = cAssert, in.AssertKind
	case mir.OpYield:
		c.op = cYield
	case mir.OpSleep:
		c.op = cSleep
	case mir.OpSleepRand:
		c.op = cSleepRand
	case mir.OpNop:
		c.op = cNop
	case mir.OpCheckpoint:
		c.op = cCheckpoint
	case mir.OpRollback:
		c.op, c.aImm, c.aReg = cRollback, in.MaxRetry, -1
	case mir.OpFail:
		c.op, c.fkind = cFail, in.FailKind
	case mir.OpBr:
		c.op, c.thenPC, c.elsePC = cBr, offs[in.Then], offs[in.Else]
	case mir.OpJmp:
		c.op, c.thenPC = cJmp, offs[in.Then]
	case mir.OpRet:
		c.op = cRet
	case mir.OpWait:
		c.op, c.aux = cWait, int32(in.Timeout)
	case mir.OpSignal:
		c.op = cSignal
	case mir.OpBroadcast:
		c.op = cBroadcast
	case mir.OpChSend:
		c.op, c.aux = cChSend, int32(in.Timeout)
	case mir.OpChRecv:
		c.op = cChRecv
	case mir.OpChClose:
		c.op = cChClose
	case mir.OpCAS:
		c.op, c.args = cCAS, lowerArgs(in.Args)
	default:
		c.op = cUnimpl
		c.text = fmt.Sprintf("unimplemented op %v", in.Op)
	}
	return c
}

func lowerArgs(args []mir.Operand) []carg {
	if len(args) == 0 {
		return nil
	}
	out := make([]carg, len(args))
	for i, a := range args {
		out[i].reg, out[i].imm = lowerOperand(a)
	}
	return out
}

// fuseFunc rewrites the dominant instruction pairs into super-instructions.
// Pairs are matched left-to-right within each source block (a fused pair
// never spans a block boundary: control can enter the tail slot directly).
// Only the head slot is rewritten; the tail keeps its unfused form so a
// mid-pair thread switch, single-stepping or tracing can execute it alone.
// Left-to-right rewriting over still-plain tails makes chains consistent:
// every head leaves the pc at the next source slot, where the (possibly
// itself fused) successor executes normally.
//
// Fusion only targets pairs the superblock path cannot batch: a bin feeding
// a failure-site branch (the branch closes recovery episodes, so it is
// scheduling-relevant), and a global load feeding any branch. Pairs of
// scheduling-irrelevant instructions — including the const+bin pairs fused
// before superblocks existed — execute on the closure chain instead, which
// already avoids the dispatch switch.
func fuseFunc(fc *fcode, f *mir.Function) {
	for b := range f.Blocks {
		start := int(fc.blockStart[b])
		n := len(f.Blocks[b].Instrs)
		for i := start; i < start+n-1; i++ {
			head := fc.code[i] // copy: the rewrite reads the plain head
			tail := &fc.code[i+1]
			switch {
			case (head.op == cBinRR || head.op == cBinRI || head.op == cBinIR) &&
				tail.op == cBr && tail.aReg >= 0 && tail.site > 0:
				head.op = cFusedBinBr
				head.x2 = tail.aReg
				head.thenPC, head.elsePC = tail.thenPC, tail.elsePC
				head.site = tail.site // the branch's failure site, not the bin's
				fc.code[i] = head
			case head.op == cLoadG && tail.op == cBr && tail.aReg >= 0:
				head.op = cFusedLoadGBr
				head.x2 = tail.aReg
				head.thenPC, head.elsePC = tail.thenPC, tail.elsePC
				head.site = tail.site
				fc.code[i] = head
			}
		}
	}
}

// sbEligible reports whether a compiled instruction is scheduling-
// irrelevant: it cannot fail, cannot change any thread's status (and so
// cannot change the runnable set), touches no shared state (globals, heap,
// locks), emits no sink event, triggers no sanitizer hook, produces no
// output and consumes no scheduler randomness beyond the one decision every
// instruction costs. Executing a run of such instructions as one quantum is
// observably identical to stepping them individually, provided the
// scheduler's random stream still consumes one decision per instruction —
// which the run loop guarantees.
func sbEligible(c *cinstr) bool {
	switch c.op {
	case cConst, cBinRR, cBinRI, cBinIR, cLoadS, cStoreS, cAddrG, cNop,
		cYield, cJmp:
		return true
	case cBr:
		// A branch at a failure site closes recovery episodes and is
		// therefore scheduling-relevant; a plain branch only moves the pc.
		return c.site == 0
	}
	return false
}

// closeFunc lowers every eligible instruction to its direct-threaded
// closure. Shapes are specialized so the hot arithmetic ops run without a
// BinOp dispatch; everything else falls back to the (never-panicking)
// mir.BinOp.Eval. Fused heads stay on the switch path (run == nil).
func closeFunc(fc *fcode) {
	for i := range fc.code {
		fc.code[i].run = closureFor(&fc.code[i])
	}
}

// advance is the shared closure for instructions with no effect but pc++.
func advance(fr *frame) { fr.pc++ }

func closureFor(c *cinstr) func(*frame) {
	if !sbEligible(c) {
		return nil
	}
	switch c.op {
	case cConst:
		dst, imm := c.dst, c.aImm
		return func(fr *frame) { fr.regs[dst] = imm; fr.pc++ }
	case cBinRR:
		dst, a, b := c.dst, c.aReg, c.bReg
		switch c.bin {
		case mir.BinAdd:
			return func(fr *frame) { fr.regs[dst] = fr.regs[a] + fr.regs[b]; fr.pc++ }
		case mir.BinSub:
			return func(fr *frame) { fr.regs[dst] = fr.regs[a] - fr.regs[b]; fr.pc++ }
		case mir.BinMul:
			return func(fr *frame) { fr.regs[dst] = fr.regs[a] * fr.regs[b]; fr.pc++ }
		}
		bin := c.bin
		return func(fr *frame) { fr.regs[dst] = bin.Eval(fr.regs[a], fr.regs[b]); fr.pc++ }
	case cBinRI:
		dst, a, imm := c.dst, c.aReg, c.bImm
		switch c.bin {
		case mir.BinAdd:
			return func(fr *frame) { fr.regs[dst] = fr.regs[a] + imm; fr.pc++ }
		case mir.BinSub:
			return func(fr *frame) { fr.regs[dst] = fr.regs[a] - imm; fr.pc++ }
		case mir.BinLt:
			return func(fr *frame) {
				if fr.regs[a] < imm {
					fr.regs[dst] = 1
				} else {
					fr.regs[dst] = 0
				}
				fr.pc++
			}
		case mir.BinEq:
			return func(fr *frame) {
				if fr.regs[a] == imm {
					fr.regs[dst] = 1
				} else {
					fr.regs[dst] = 0
				}
				fr.pc++
			}
		}
		bin := c.bin
		return func(fr *frame) { fr.regs[dst] = bin.Eval(fr.regs[a], imm); fr.pc++ }
	case cBinIR:
		dst, imm, b, bin := c.dst, c.aImm, c.bReg, c.bin
		return func(fr *frame) { fr.regs[dst] = bin.Eval(imm, fr.regs[b]); fr.pc++ }
	case cLoadS:
		dst, slot := c.dst, c.aux
		return func(fr *frame) { fr.regs[dst] = fr.slots[slot]; fr.pc++ }
	case cStoreS:
		slot := c.aux
		if c.aReg >= 0 {
			a := c.aReg
			return func(fr *frame) { fr.slots[slot] = fr.regs[a]; fr.pc++ }
		}
		imm := c.aImm
		return func(fr *frame) { fr.slots[slot] = imm; fr.pc++ }
	case cAddrG:
		dst, v := c.dst, globalAddr(int(c.aux))
		return func(fr *frame) { fr.regs[dst] = v; fr.pc++ }
	case cNop, cYield:
		return advance
	case cJmp:
		tgt := int(c.thenPC)
		return func(fr *frame) { fr.pc = tgt }
	case cBr:
		tp, ep := int(c.thenPC), int(c.elsePC)
		if c.aReg >= 0 {
			a := c.aReg
			return func(fr *frame) {
				if fr.regs[a] != 0 {
					fr.pc = tp
				} else {
					fr.pc = ep
				}
			}
		}
		// Constant condition: the target is fixed at compile time.
		if c.aImm != 0 {
			return func(fr *frame) { fr.pc = tp }
		}
		return func(fr *frame) { fr.pc = ep }
	}
	return nil
}

// superblocks computes the superblock partition: for each pc, the length of
// the maximal closure-backed run starting there. Runs are bounded by basic
// blocks (control can enter a block head directly, and blocks are the unit
// the compiler laid code out in) and by scheduling-relevant instructions.
func superblocks(fc *fcode) {
	fc.sbLen = make([]int32, len(fc.code))
	nb := len(fc.blockStart)
	for b := 0; b < nb; b++ {
		start := int(fc.blockStart[b])
		end := len(fc.code)
		if b+1 < nb {
			end = int(fc.blockStart[b+1])
		}
		for i := start; i < end; {
			if fc.code[i].run == nil {
				i++
				continue
			}
			j := i
			for j < end && fc.code[j].run != nil {
				j++
			}
			for k := i; k < j; k++ {
				fc.sbLen[k] = int32(j - k)
			}
			i = j
		}
	}
}
