package interp

import (
	"fmt"

	"conair/internal/mir"
	"conair/internal/obs"
)

// This file implements the execution semantics of the synchronization
// extensions — condition variables (wait/signal/broadcast), bounded
// channels (chsend/chrecv/chclose) and atomic compare-and-swap — shared
// verbatim by the compiled dispatch loop (interp.go) and the reference
// interpreter (ref.go), so the two execution paths cannot drift.
//
// Blocking follows the lock protocol: a thread that cannot complete stays
// at the same pc in a blocked status and re-executes the instruction when
// the scheduler picks it again; pickThread lists it as runnable only when
// the operation may complete (or a timeout expired). Each helper returns
// whether the pc should advance — false means the instruction is either
// still blocked or the run just failed.

// execWait executes one step of a wait instruction. The wait's phases are
// tracked on the thread (condArmed/condSignaled):
//
//  1. arm — release the mutex, enter the condvar's FIFO waiter queue and
//     park (statusBlockedCond). Timed waits record the deadline.
//  2. signalled — execSignal moved the thread to statusBlockedLock on
//     waitMutex with the timeout disabled: once a signal is consumed the
//     wait can no longer time out, so a timed out-then-rolled-back wait
//     can never have swallowed a signal. Re-executions acquire the mutex
//     when free; success writes 1 (timed form) and completes the wait.
//  3. timeout — timed form, still armed past the deadline: leave the
//     waiter queue and return 0 with the mutex deliberately LEFT
//     RELEASED. The hardened recovery path rolls back to a checkpoint
//     planted before the (compensated) mutex acquisition and re-executes
//     lock + predicate check + wait from scratch — the wait re-arms (see
//     the wait-rollback rule on mir.Classify).
func (vm *VM) execWait(t *thread, fr *frame, cvAddr, mtxAddr mir.Word, timeout int64, dst, site int, pos mir.Pos) bool {
	switch {
	case t.condSignaled:
		// Phase 2: re-acquire the wait's mutex.
		mu := vm.lcks.get(t.waitMutex)
		if mu.held {
			return false // still contended; pickThread re-wakes us
		}
		mu.held, mu.holder = true, t.id
		t.condSignaled = false
		vm.setStatus(t, statusRunnable)
		if t.jmp != nil {
			t.pushComp(compLock, t.waitMutex)
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindLockAcquire,
				TID: int32(t.id), Site: int32(site), Arg: int64(t.waitMutex),
			})
		}
		if vm.san != nil {
			vm.san.LockAcquire(t.id, t.waitMutex, timeout > 0, pos)
			vm.san.CondWake(t.id, cvAddr, pos)
		}
		if dst >= 0 {
			fr.regs[dst] = 1
		}
		if site > 0 {
			vm.closeEpisode(t, site)
		}
		return true
	case t.condArmed:
		// Phase 3: still parked, so the only way to be scheduled is an
		// expired timed wait (pickThread wakes armed waiters on deadline
		// only). Give up without re-acquiring the mutex.
		vm.conds.get(cvAddr).remove(t.id)
		t.condArmed = false
		vm.setStatus(t, statusRunnable)
		if dst >= 0 {
			fr.regs[dst] = 0
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindLockTimeout,
				TID: int32(t.id), Site: int32(site), Arg: int64(cvAddr),
			})
		}
		return true
	default:
		// Phase 1: arm. Release the mutex — waiting on a mutex the thread
		// does not hold is undefined in pthreads; here the release is then
		// simply a no-op — and park in FIFO order.
		mu := vm.lcks.get(mtxAddr)
		if mu.held && mu.holder == t.id {
			mu.held = false
			if vm.san != nil {
				vm.san.LockRelease(t.id, mtxAddr)
			}
		}
		cv := vm.conds.get(cvAddr)
		cv.waiters = append(cv.waiters, t.id)
		t.condArmed = true
		t.waitMutex = mtxAddr
		vm.setStatus(t, statusBlockedCond)
		t.blockAddr = cvAddr
		t.blockedSince = vm.step
		t.blockTimeout = timeout
		return false
	}
}

// execSignal wakes the longest-parked waiter (or, for broadcast, every
// waiter) of the condvar at cvAddr: each leaves the armed state and moves
// to statusBlockedLock on its wait's mutex — the re-acquire phase — with
// the timeout disabled. The FIFO order makes the wake choice deterministic
// without consuming scheduler randomness. A signal with no waiters is
// lost; that is precisely the lost-signal bug class the corpus models.
func (vm *VM) execSignal(t *thread, cvAddr mir.Word, broadcast bool, pos mir.Pos) {
	cv := vm.conds.get(cvAddr)
	n := len(cv.waiters)
	if n > 1 && !broadcast {
		n = 1
	}
	for _, wid := range cv.waiters[:n] {
		w := vm.threads[wid]
		w.condArmed = false
		w.condSignaled = true
		vm.setStatus(w, statusBlockedLock)
		w.blockAddr = w.waitMutex
		w.blockedSince = vm.step
		w.blockTimeout = 0
	}
	cv.waiters = cv.waiters[n:]
	if vm.san != nil {
		vm.san.CondSignal(t.id, cvAddr, broadcast, pos)
	}
}

// chanCap reads the declared capacity of the channel at addr: the value
// currently stored in the addressed memory cell. channels.get consults the
// hint only at the channel's first operation (capacity is fixed at
// creation); an unreadable address yields the minimum capacity of one.
func (vm *VM) chanCap(addr mir.Word) mir.Word {
	v, _ := vm.mem.load(addr)
	return v
}

// execChSend executes one step of a chsend instruction: append to the
// buffer when there is room, otherwise block (statusBlockedSend) until a
// receive frees a slot, the channel closes (a failure — sending on a
// closed channel is a program error, as in Go), or the timed form's
// deadline expires (writes 0; the hardened recovery path re-checks the
// shared condition that made the peer stop receiving).
func (vm *VM) execChSend(t *thread, fr *frame, chAddr, val mir.Word, timeout int64, dst, site int, pos mir.Pos) bool {
	ch := vm.chans.get(chAddr, vm.chanCap(chAddr))
	blocked := t.status == statusBlockedSend
	switch {
	case ch.closed:
		vm.fail(mir.FailAssert, pos, site, t.id,
			fmt.Sprintf("send on closed channel %d", chAddr))
		return false
	case !ch.full():
		ch.buf = append(ch.buf, val)
		vm.setStatus(t, statusRunnable)
		if dst >= 0 {
			fr.regs[dst] = 1
		}
		if vm.san != nil {
			vm.san.ChanSend(t.id, chAddr, pos)
		}
		if site > 0 {
			vm.closeEpisode(t, site)
		}
		return true
	case blocked && timeout > 0 && vm.step-t.blockedSince >= timeout:
		vm.setStatus(t, statusRunnable)
		if dst >= 0 {
			fr.regs[dst] = 0
		}
		if vm.sink != nil {
			vm.sink.Record(obs.Event{
				Step: vm.step, Kind: obs.KindLockTimeout,
				TID: int32(t.id), Site: int32(site), Arg: int64(chAddr),
			})
		}
		return true
	default:
		if !blocked {
			vm.setStatus(t, statusBlockedSend)
			t.blockAddr = chAddr
			t.blockedSince = vm.step
			t.blockTimeout = timeout
		}
		return false
	}
}

// execChRecv executes one step of a chrecv instruction: pop the oldest
// buffered value, or yield 0 without blocking once the channel is closed
// and drained (Go semantics — the receive is still ordered after the
// close), otherwise block (statusBlockedRecv) until a value or a close
// arrives.
func (vm *VM) execChRecv(t *thread, fr *frame, chAddr mir.Word, dst int, pos mir.Pos) bool {
	ch := vm.chans.get(chAddr, vm.chanCap(chAddr))
	switch {
	case !ch.empty():
		fr.regs[dst] = ch.buf[0]
		ch.buf = ch.buf[1:]
		vm.setStatus(t, statusRunnable)
		if vm.san != nil {
			vm.san.ChanRecv(t.id, chAddr, pos)
		}
		return true
	case ch.closed:
		fr.regs[dst] = 0
		vm.setStatus(t, statusRunnable)
		if vm.san != nil {
			vm.san.ChanRecv(t.id, chAddr, pos)
		}
		return true
	default:
		if t.status != statusBlockedRecv {
			vm.setStatus(t, statusBlockedRecv)
			t.blockAddr = chAddr
			t.blockedSince = vm.step
			t.blockTimeout = 0
		}
		return false
	}
}

// execChClose closes the channel at chAddr. Closing twice is a program
// error (as in Go). Blocked senders and receivers are woken lazily by
// pickThread's scan: a closed channel makes receivers runnable (they
// drain, then read zeros) and senders runnable (they fail).
func (vm *VM) execChClose(t *thread, chAddr mir.Word, site int, pos mir.Pos) bool {
	ch := vm.chans.get(chAddr, vm.chanCap(chAddr))
	if ch.closed {
		vm.fail(mir.FailAssert, pos, site, t.id,
			fmt.Sprintf("close of closed channel %d", chAddr))
		return false
	}
	ch.closed = true
	if vm.san != nil {
		vm.san.ChanClose(t.id, chAddr, pos)
	}
	return true
}

// execCAS performs an atomic compare-and-swap on the word at addr: one
// scheduling step covers the load, the comparison against expect and (on
// equality) the store of repl; dst receives 1 on success, 0 on failure.
// An unmapped address faults exactly like a plain load.
func (vm *VM) execCAS(t *thread, fr *frame, addr, expect, repl mir.Word, dst, site int, pos mir.Pos) bool {
	cur, ok := vm.mem.load(addr)
	if !ok {
		vm.fail(mir.FailSegfault, pos, site, t.id,
			fmt.Sprintf("invalid cas at address %d", addr))
		return false
	}
	success := cur == expect
	if success {
		vm.mem.store(addr, repl)
		fr.regs[dst] = 1
	} else {
		fr.regs[dst] = 0
	}
	if vm.san != nil {
		vm.san.AtomicCAS(t.id, addr, success, pos)
	}
	return true
}
