package interp

import (
	"testing"

	"conair/internal/mir"
	"conair/internal/sched"
)

func run(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	m, err := mir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.Sched == nil {
		cfg.Sched = sched.NewRandom(42)
	}
	cfg.CollectOutput = true
	return RunModule(m, cfg)
}

func TestStraightLineArithmetic(t *testing.T) {
	r := run(t, `
func main() {
entry:
  %a = const 20
  %b = const 22
  %c = add %a, %b
  output "sum", %c
  ret %c
}`, Config{})
	if !r.Completed {
		t.Fatalf("run failed: %v", r.Failure)
	}
	if r.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", r.ExitCode)
	}
	if len(r.Output) != 1 || r.Output[0].Value != 42 || r.Output[0].Text != "sum" {
		t.Errorf("output = %+v", r.Output)
	}
}

func TestGlobalsAndBranches(t *testing.T) {
	r := run(t, `
global g = 10
func main() {
entry:
  %x = loadg @g
  %big = gt %x, 5
  br %big, yes, no
yes:
  storeg @g, 1
  ret 1
no:
  storeg @g, 0
  ret 0
}`, Config{})
	if !r.Completed || r.ExitCode != 1 {
		t.Fatalf("result = %+v", r)
	}
}

func TestLoopAndStackSlots(t *testing.T) {
	// Sum 1..10 via a stack slot accumulator.
	r := run(t, `
func main() {
entry:
  stores $acc, 0
  %i = const 1
  jmp loop
loop:
  %a = loads $acc
  %a2 = add %a, %i
  stores $acc, %a2
  %i2 = add %i, 1
  %i = add %i2, 0
  %done = gt %i, 10
  br %done, out, loop
out:
  %r = loads $acc
  ret %r
}`, Config{})
	if !r.Completed || r.ExitCode != 55 {
		t.Fatalf("sum = %d (completed=%v failure=%v)", r.ExitCode, r.Completed, r.Failure)
	}
}

func TestCallsAndReturns(t *testing.T) {
	r := run(t, `
func add3(%a, %b, %c) {
entry:
  %s = add %a, %b
  %s2 = add %s, %c
  ret %s2
}
func main() {
entry:
  %r = call add3(1, 2, 3)
  %r2 = call add3(%r, %r, %r)
  ret %r2
}`, Config{})
	if !r.Completed || r.ExitCode != 18 {
		t.Fatalf("result = %+v", r)
	}
}

func TestHeapAllocFreeAndSegfaults(t *testing.T) {
	r := run(t, `
func main() {
entry:
  %p = alloc 4
  %p1 = add %p, 3
  store %p1, 99
  %v = load %p1
  free %p
  ret %v
}`, Config{})
	if !r.Completed || r.ExitCode != 99 {
		t.Fatalf("heap result = %+v", r)
	}

	// Null dereference faults.
	r = run(t, `
func main() {
entry:
  %p = const 0
  %v = load %p
  ret %v
}`, Config{})
	if r.Completed || r.Failure == nil || r.Failure.Kind != mir.FailSegfault {
		t.Fatalf("null deref should segfault: %+v", r)
	}

	// Use-after-free faults.
	r = run(t, `
func main() {
entry:
  %p = alloc 2
  free %p
  %v = load %p
  ret %v
}`, Config{})
	if r.Completed || r.Failure.Kind != mir.FailSegfault {
		t.Fatalf("use-after-free should segfault: %+v", r)
	}

	// One-past-the-end faults (guard word).
	r = run(t, `
func main() {
entry:
  %p = alloc 2
  %q = add %p, 2
  %v = load %q
  ret %v
}`, Config{})
	if r.Completed || r.Failure.Kind != mir.FailSegfault {
		t.Fatalf("out-of-bounds should segfault: %+v", r)
	}
}

func TestGlobalAddressDeref(t *testing.T) {
	r := run(t, `
global g = 7
func main() {
entry:
  %p = addrg @g
  %v = load %p
  store %p, 9
  %w = loadg @g
  %s = add %v, %w
  ret %s
}`, Config{})
	if !r.Completed || r.ExitCode != 16 {
		t.Fatalf("result = %+v", r)
	}
}

func TestAssertFailure(t *testing.T) {
	r := run(t, `
func main() {
entry:
  %x = const 0
  assert %x, "x must be nonzero"
  ret
}`, Config{})
	if r.Completed || r.Failure.Kind != mir.FailAssert || r.Failure.Msg != "x must be nonzero" {
		t.Fatalf("assert result = %+v", r)
	}

	r = run(t, `
func main() {
entry:
  %x = const 0
  oracle %x, "output must be positive"
  ret
}`, Config{})
	if r.Completed || r.Failure.Kind != mir.FailWrongOutput {
		t.Fatalf("oracle result = %+v", r)
	}
}

func TestSpawnJoin(t *testing.T) {
	r := run(t, `
global sum = 0
func worker(%n) {
entry:
  %x = loadg @sum
  %y = add %x, %n
  storeg @sum, %y
  ret
}
func main() {
entry:
  %t1 = spawn worker(10)
  join %t1
  %t2 = spawn worker(32)
  join %t2
  %v = loadg @sum
  ret %v
}`, Config{})
	if !r.Completed || r.ExitCode != 42 {
		t.Fatalf("result = %+v", r)
	}
	if r.Stats.ThreadsSpawned != 3 {
		t.Errorf("threads spawned = %d, want 3", r.Stats.ThreadsSpawned)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two workers each increment a counter 100 times under a lock;
	// with quantum-1 round-robin scheduling the increments would race
	// without the lock, losing updates. With the lock the total is exact.
	src := `
global counter = 0
global mtx = 0
func worker() {
entry:
  %i = const 0
  jmp loop
loop:
  %p = addrg @mtx
  lock %p
  %v = loadg @counter
  yield
  %v2 = add %v, 1
  storeg @counter, %v2
  unlock %p
  %i2 = add %i, 1
  %i = add %i2, 0
  %done = ge %i, 100
  br %done, out, loop
out:
  ret
}
func main() {
entry:
  %t1 = spawn worker()
  %t2 = spawn worker()
  join %t1
  join %t2
  %v = loadg @counter
  ret %v
}`
	r := run(t, src, Config{Sched: sched.NewRoundRobin(1, 7)})
	if !r.Completed || r.ExitCode != 200 {
		t.Fatalf("locked counter = %d (failure=%v)", r.ExitCode, r.Failure)
	}
}

func TestRaceLosesUpdatesWithoutLock(t *testing.T) {
	// The same counter without the lock must lose updates under an
	// adversarial interleaving — this validates that the interpreter
	// actually interleaves at instruction granularity.
	src := `
global counter = 0
func worker() {
entry:
  %i = const 0
  jmp loop
loop:
  %v = loadg @counter
  yield
  %v2 = add %v, 1
  storeg @counter, %v2
  %i2 = add %i, 1
  %i = add %i2, 0
  %done = ge %i, 50
  br %done, out, loop
out:
  ret
}
func main() {
entry:
  %t1 = spawn worker()
  %t2 = spawn worker()
  join %t1
  join %t2
  %v = loadg @counter
  ret %v
}`
	r := run(t, src, Config{Sched: sched.NewRoundRobin(1, 7)})
	if !r.Completed {
		t.Fatalf("failure = %v", r.Failure)
	}
	if r.ExitCode >= 100 {
		t.Fatalf("expected lost updates, got %d", r.ExitCode)
	}
}

func TestDeadlockDetectedAsHang(t *testing.T) {
	src := `
global a = 0
global b = 0
func t1() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pa
  sleep 50
  lock %pb
  unlock %pb
  unlock %pa
  ret
}
func t2() {
entry:
  %pa = addrg @a
  %pb = addrg @b
  lock %pb
  sleep 50
  lock %pa
  unlock %pa
  unlock %pb
  ret
}
func main() {
entry:
  %x = spawn t1()
  %y = spawn t2()
  join %x
  join %y
  ret
}`
	r := run(t, src, Config{})
	if r.Completed || r.Failure == nil || r.Failure.Kind != mir.FailHang {
		t.Fatalf("deadlock result = %+v", r)
	}
}

func TestTimedLockTimesOut(t *testing.T) {
	src := `
global m = 0
func holder() {
entry:
  %p = addrg @m
  lock %p
  sleep 1000
  unlock %p
  ret
}
func main() {
entry:
  %t = spawn holder()
  sleep 10
  %p = addrg @m
  %got = timedlock %p, 50
  join %t
  ret %got
}`
	r := run(t, src, Config{})
	if !r.Completed || r.ExitCode != 0 {
		t.Fatalf("timedlock should time out: %+v", r)
	}
}

func TestTimedLockAcquires(t *testing.T) {
	src := `
global m = 0
func main() {
entry:
  %p = addrg @m
  %got = timedlock %p, 50
  unlock %p
  ret %got
}`
	r := run(t, src, Config{})
	if !r.Completed || r.ExitCode != 1 {
		t.Fatalf("timedlock should acquire: %+v", r)
	}
}

func TestCheckpointRollbackRecoversAssert(t *testing.T) {
	// Hand-transformed shape of Figure 6: thread 1 reads a flag set late
	// by thread 2; the rollback loop rereads until the assert passes.
	src := `
global flag = 0
func waiter() {
entry:
  checkpoint 1
  %v = loadg @flag
  br %v, pass, recover
recover:
  rollback 1, 1000000
  fail assert, "flag never set"
pass:
  ret %v
}
func main() {
entry:
  %t = spawn waiter()
  sleep 200
  storeg @flag, 1
  join %t
  ret
}`
	r := run(t, src, Config{})
	if !r.Completed {
		t.Fatalf("recovery failed: %v", r.Failure)
	}
	if r.Stats.Rollbacks == 0 {
		t.Error("expected rollbacks > 0")
	}
	if r.Stats.Checkpoints == 0 {
		t.Error("expected checkpoints > 0")
	}
}

func TestRollbackExhaustionFails(t *testing.T) {
	src := `
global flag = 0
func main() {
entry:
  checkpoint 1
  %v = loadg @flag
  br %v, pass, recover
recover:
  rollback 1, 3
  fail assert, "flag never set"
pass:
  ret %v
}`
	r := run(t, src, Config{})
	if r.Completed || r.Failure.Kind != mir.FailAssert {
		t.Fatalf("exhaustion result = %+v", r)
	}
	if r.Stats.Rollbacks != 3 {
		t.Errorf("rollbacks = %d, want 3", r.Stats.Rollbacks)
	}
}

func TestRollbackWithoutCheckpointFallsThrough(t *testing.T) {
	src := `
func main() {
entry:
  %v = const 0
  br %v, pass, recover
recover:
  rollback 1, 100
  fail assert, "no checkpoint"
pass:
  ret
}`
	r := run(t, src, Config{})
	if r.Completed || r.Failure.Kind != mir.FailAssert {
		t.Fatalf("want immediate failure, got %+v", r)
	}
	if r.Stats.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0", r.Stats.Rollbacks)
	}
}

func TestRollbackCompensatesLockAndAlloc(t *testing.T) {
	// The region acquires a lock and allocates; the failing check forces
	// one rollback, which must release both so the other thread can
	// proceed (HawkNL-style deadlock recovery, §4.1).
	src := `
global m = 0
global flag = 0
func main() {
entry:
  checkpoint 1
  %p = addrg @m
  lock %p
  %h = alloc 8
  %v = loadg @flag
  br %v, pass, recover
recover:
  rollback 1, 2
  fail assert, "never"
pass:
  unlock %p
  ret
}`
	m := mir.MustParse(src)
	vm := New(m, Config{Sched: sched.NewRandom(1), CollectOutput: true})
	// Set the flag only after the first rollback would have happened:
	// run a few steps manually by relying on the retry bound of 2 —
	// after the first rollback the region reexecutes, and we flip the
	// flag in memory directly before the second check.
	// Simpler: run to completion with flag flipped by a second thread is
	// covered elsewhere; here we only check compensation counters after
	// an exhausted run.
	r := vm.Run()
	if r.Completed {
		t.Fatal("expected failure after exhausted retries")
	}
	if r.Stats.CompUnlocks != 2 || r.Stats.CompFrees != 2 {
		t.Errorf("compensation: unlocks=%d frees=%d, want 2 and 2",
			r.Stats.CompUnlocks, r.Stats.CompFrees)
	}
}

func TestInterProceduralRollbackUnwindsFrames(t *testing.T) {
	// Checkpoint in the caller, failure check in the callee: rollback
	// must pop the callee frame and reexecute from the caller (the
	// MozillaXP pattern, §4.3).
	src := `
global ptr = 0
func getstate(%p) {
entry:
  %ok = gt %p, 10000
  br %ok, good, recover
recover:
  rollback 7, 1000000
  %v0 = load %p
  ret %v0
good:
  %v = load %p
  ret %v
}
func initthd() {
entry:
  sleep 300
  %h = alloc 4
  store %h, 123
  storeg @ptr, %h
  ret
}
func main() {
entry:
  %t = spawn initthd()
  checkpoint 7
  %p = loadg @ptr
  %s = call getstate(%p)
  join %t
  ret %s
}`
	r := run(t, src, Config{})
	if !r.Completed || r.ExitCode != 123 {
		t.Fatalf("interprocedural recovery: %+v", r)
	}
	if r.Stats.Rollbacks == 0 {
		t.Error("expected rollbacks")
	}
}

func TestReturnInvalidatesCheckpoint(t *testing.T) {
	// A checkpoint taken inside a function must not be a rollback target
	// after that function returns (setjmp semantics).
	src := `
func sub() {
entry:
  checkpoint 3
  ret
}
func main() {
entry:
  call sub()
  %v = const 0
  br %v, pass, recover
recover:
  rollback 3, 10
  fail assert, "dead checkpoint"
pass:
  ret
}`
	r := run(t, src, Config{})
	if r.Completed || r.Failure.Kind != mir.FailAssert {
		t.Fatalf("dead checkpoint result = %+v", r)
	}
	if r.Stats.Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0 (checkpoint was invalidated)", r.Stats.Rollbacks)
	}
}

func TestEpisodeTracking(t *testing.T) {
	src := `
global flag = 0
func waiter() {
entry:
  checkpoint 9
  %v = loadg @flag
  %c = eq %v, 1
  br %c, pass, recover
recover:
  rollback 9, 1000000
  fail assert, "never set"
pass:
  ret
}
func main() {
entry:
  %t = spawn waiter()
  sleep 100
  storeg @flag, 1
  join %t
  ret
}`
	// The pass branch is not site-tagged in this hand-written module, so
	// tag it to observe episode completion.
	m := mir.MustParse(src)
	wi := m.FuncIndex("waiter")
	f := &m.Functions[wi]
	br := &f.Blocks[0].Instrs[3]
	if br.Op != mir.OpBr {
		t.Fatalf("expected br, got %v", br.Op)
	}
	br.Site = 9
	r := RunModule(m, Config{Sched: sched.NewRandom(3)})
	if !r.Completed {
		t.Fatalf("failure: %v", r.Failure)
	}
	recs := r.RecoveredEpisodes()
	if len(recs) != 1 {
		t.Fatalf("episodes = %+v, want 1 recovered", r.Stats.Episodes)
	}
	e := recs[0]
	if e.Site != 9 || e.Retries == 0 || e.Duration() <= 0 {
		t.Errorf("episode = %+v", e)
	}
	if r.MaxEpisode() == nil || r.MaxEpisode().Site != 9 {
		t.Errorf("MaxEpisode = %+v", r.MaxEpisode())
	}
}

func TestHangOnStepLimit(t *testing.T) {
	src := `
func main() {
entry:
  jmp entry2
entry2:
  jmp entry
}`
	r := run(t, src, Config{MaxSteps: 1000})
	if r.Completed || r.Failure.Kind != mir.FailHang {
		t.Fatalf("expected hang, got %+v", r)
	}
}

func TestSleepRandBounded(t *testing.T) {
	src := `
func main() {
entry:
  sleeprand 10
  sleeprand 10
  ret
}`
	r := run(t, src, Config{})
	if !r.Completed {
		t.Fatalf("sleeprand run failed: %v", r.Failure)
	}
}

func TestDeterministicReplay(t *testing.T) {
	src := `
global c = 0
func w() {
entry:
  %v = loadg @c
  yield
  %v2 = add %v, 1
  storeg @c, %v2
  ret
}
func main() {
entry:
  %a = spawn w()
  %b = spawn w()
  %d = spawn w()
  join %a
  join %b
  join %d
  %v = loadg @c
  ret %v
}`
	m := mir.MustParse(src)
	first := RunModule(m, Config{Sched: sched.NewRandom(99)})
	for i := 0; i < 5; i++ {
		again := RunModule(m, Config{Sched: sched.NewRandom(99)})
		if again.ExitCode != first.ExitCode || again.Stats.Steps != first.Stats.Steps {
			t.Fatalf("run %d diverged: %d/%d vs %d/%d", i,
				again.ExitCode, again.Stats.Steps, first.ExitCode, first.Stats.Steps)
		}
	}
}

func TestMainReturnTerminatesProgram(t *testing.T) {
	// main returning ends the run even with a spawned thread still alive.
	src := `
func w() {
entry:
  sleep 100000
  ret
}
func main() {
entry:
  %t = spawn w()
  ret 5
}`
	r := run(t, src, Config{})
	if !r.Completed || r.ExitCode != 5 {
		t.Fatalf("result = %+v", r)
	}
	if r.Stats.Steps > 1000 {
		t.Errorf("program should end at main's return, took %d steps", r.Stats.Steps)
	}
}
