package interp_test

import (
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// This file pins the wait-rollback rule documented on mir.Classify: a
// completed wait consumes a delivered signal, so no recovery rollback may
// ever cross it — the checkpoint serving any later failure site is
// planted immediately past the wait, and a recovery retry therefore
// re-reads shared state without re-arming the wait and stealing a signal
// meant for another waiter.
//
// The scenario: two consumers block on one condvar-guarded item queue. A
// producer publishes item 1, then (late) the item's payload, then item 2.
// The "checked" consumer asserts the payload is visible while still
// holding the queue lock, with no idempotency-destroying instruction
// between its wait and the assert — so the wait itself is the nearest
// destroyer and the assert's recovery checkpoint must sit directly after
// it. If a rollback could cross the wait, the retry would re-arm it and
// consume the second consumer's signal.

// waitRollbackModule builds the two-consumer scenario.
func waitRollbackModule() *mir.Module {
	b := mir.NewBuilder("waitrollback")
	items := b.Global("items", 0)
	data := b.Global("data", 0)
	cv := b.Global("cv", 0)
	mtx := b.Global("mtx", 0)

	consumer := func(name string, checked bool) {
		f := b.Func(name)
		mp := f.AddrG("mp", mtx)
		cp := f.AddrG("cp", cv)
		f.Lock(mp)
		loop := f.Label("loop")
		i := f.LoadG("i", items)
		take := f.NewBlock("take")
		arm := f.NewBlock("arm")
		f.Br(i, take, arm)
		f.SetBlock(arm)
		f.Wait(cp, mp)
		f.Jmp(loop)
		f.SetBlock(take)
		if checked {
			d := f.LoadG("d", data)
			f.Assert(d, "item consumed before its payload was published")
		}
		left := f.Bin("left", mir.BinSub, i, mir.Imm(1))
		f.StoreG(items, left)
		f.Unlock(mp)
		f.Ret(mir.None)
	}
	consumer("checked", true)
	consumer("plain", false)

	p := b.Func("producer")
	mp := p.AddrG("mp", mtx)
	cp := p.AddrG("cp", cv)
	produce := func() {
		p.Lock(mp)
		n := p.LoadG("n", items)
		n1 := p.Bin("n1", mir.BinAdd, n, mir.Imm(1))
		p.StoreG(items, n1)
		p.Signal(cp)
		p.Unlock(mp)
	}
	produce()
	// The forced race: item 1 is announced above, its payload lands late.
	p.Sleep(mir.Imm(80))
	p.StoreG(data, mir.Imm(1))
	produce()
	p.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "checked")
	t2 := m.Spawn("t2", "plain")
	t3 := m.Spawn("t3", "producer")
	m.Join(t1)
	m.Join(t2)
	m.Join(t3)
	left := m.LoadG("left", items)
	m.Output("items", left)
	d := m.LoadG("d", data)
	m.Output("data", d)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// TestWaitRollbackNeverConsumesSecondSignal is the white-box pin of the
// wait-rollback rule, in two parts.
//
// Structurally, every wait in the hardened module must be followed by a
// checkpoint before any other instruction executes (the timed wait's own
// site branch may intervene): rollbacks land past the wait, never before.
//
// Behaviourally, every schedule must complete with both items consumed
// (items drains to 0) and the payload observable intact — if a recovery
// retry of the checked consumer's assert could re-arm its wait, it would
// steal the second signal and the accounting (or the plain consumer)
// would break. The sweep must also actually exercise the assert's
// recovery path on some schedule, or it proves nothing.
func TestWaitRollbackNeverConsumesSecondSignal(t *testing.T) {
	raw := waitRollbackModule()
	h, err := core.Harden(raw, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Part 1: checkpoints sit immediately past every wait. A hardened
	// (timed) wait writes its success flag and branches on it; the
	// checkpoint then must be the first instruction on the success arm.
	waits := 0
	for fi := range h.Module.Functions {
		fn := &h.Module.Functions[fi]
		for bi := range fn.Blocks {
			blk := &fn.Blocks[bi]
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				if in.Op != mir.OpWait {
					continue
				}
				waits++
				next := blk.Instrs[ii+1]
				switch next.Op {
				case mir.OpCheckpoint:
					// Plain wait: checkpoint planted directly after.
				case mir.OpBr:
					cont := &fn.Blocks[next.Then]
					if len(cont.Instrs) == 0 || cont.Instrs[0].Op != mir.OpCheckpoint {
						t.Errorf("%s: timed wait's success arm %q does not start with a checkpoint",
							fn.Name, cont.Name)
					}
				default:
					t.Errorf("%s: wait followed by %v, want a checkpoint past the wait",
						fn.Name, next.Op)
				}
			}
		}
	}
	if waits == 0 {
		t.Fatal("hardened module contains no waits; the scenario is broken")
	}

	// Part 2: schedule sweep with exact consumption accounting. A run that
	// completes must always have drained both items with the payload intact;
	// a stolen signal would instead strand the plain consumer in its wait
	// and surface as a hang, which no schedule may ever produce.
	//
	// An assert site's recovery loop has no backoff (only deadlock sites
	// sleep between retries), so an adversarial PCT schedule can starve the
	// producer while the checked consumer spins, exhausting the bounded
	// MaxRetry budget and re-raising the original assert — the paper's
	// bounded-recovery semantics, not a rollback crossing the wait. Random
	// schedules never starve the producer, so they must all complete; PCT
	// schedules may end in the budgeted assert, and nothing else.
	recovered := false
	run := func(label string, seed int64, s sched.Scheduler, allowBudgetedAssert bool) {
		r := interp.RunModule(h.Module, interp.Config{
			Sched: s, MaxSteps: 20_000_000, CollectOutput: true,
		})
		if !r.Completed {
			if allowBudgetedAssert && r.Failure != nil && r.Failure.Kind == mir.FailAssert {
				return // recovery budget exhausted under starvation; see above
			}
			t.Fatalf("%s seed %d: hardened run did not complete: %v (a stolen signal "+
				"starves a consumer)", label, seed, r.Failure)
		}
		if len(r.Output) != 2 ||
			r.Output[0].Text != "items" || r.Output[0].Value != 0 ||
			r.Output[1].Text != "data" || r.Output[1].Value != 1 {
			t.Fatalf("%s seed %d: consumption accounting broken: %+v", label, seed, r.Output)
		}
		if len(r.RecoveredEpisodes()) > 0 {
			recovered = true
		}
	}
	for seed := int64(0); seed < 60; seed++ {
		run("random", seed, sched.NewRandom(seed), false)
	}
	for seed := int64(0); seed < 60; seed++ {
		run("pct", seed, sched.NewPCT(seed, 3, 64), true)
	}
	if !recovered {
		t.Fatal("no schedule exercised the assert's recovery path past the wait")
	}
}
