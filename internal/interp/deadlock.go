package interp

// Wait-for-graph deadlock detection. The paper (§3.1.1) notes that ConAir
// can work with any deadlock-detection mechanism — timeout-based (what the
// transformation plants, following MySQL's practice) or cycle detection in
// the run-time resource-acquisition graph (the Dimmunix-style approach it
// cites). The interpreter implements the latter for *unprotected*
// programs, so a deadlock among a subset of threads is reported as a hang
// immediately even while unrelated threads keep running, instead of only
// when the whole process quiesces or hits the step limit.
//
// A cycle only counts when every edge is an untimed acquisition: a timed
// lock in the cycle resolves itself by timing out, which is exactly how
// hardened programs escape (the recovery then releases locks through
// compensation).

// deadlockCycle returns the thread ids forming a wait-for cycle through
// start, or nil. start must have just blocked on an untimed lock.
func (vm *VM) deadlockCycle(start *thread) []int {
	var path []int
	cur := start
	for range vm.threads { // bounded walk: a cycle is at most all threads
		if cur.status != statusBlockedLock || cur.blockTimeout > 0 {
			return nil
		}
		mu := vm.lcks.get(cur.blockAddr)
		if !mu.held {
			return nil
		}
		path = append(path, cur.id)
		holder := vm.threadByID(mu.holder)
		if holder == nil || holder.status == statusDone {
			return nil
		}
		if holder.id == start.id {
			return path
		}
		cur = holder
	}
	return nil
}
