package interp

import (
	"os"
	"path/filepath"
	"testing"

	"conair/internal/mir"
	"conair/internal/mirgen"
)

// sbAllowed is the test's own copy of the scheduling-irrelevant opcode
// set. It is deliberately NOT derived from sbEligible: widening the
// eligible set (say, to batch global loads) must fail here and force a
// conscious review of the observation-equivalence argument, because a
// wrongly-admitted opcode silently breaks schedule bit-identity.
var sbAllowed = map[cop]bool{
	cConst:  true,
	cBinRR:  true,
	cBinRI:  true,
	cBinIR:  true,
	cLoadS:  true,
	cStoreS: true,
	cAddrG:  true,
	cNop:    true,
	cYield:  true,
	cJmp:    true,
	cBr:     true, // only when site == 0, checked separately
}

// checkSuperblocks asserts the compile-time superblock invariants for one
// compiled module:
//
//   - a slot is closure-backed (run != nil) exactly when sbEligible says
//     so, and only for opcodes in the independent allowlist above;
//   - a br closure exists only at site 0 — site-tagged branches close
//     recovery episodes and must stay on the dispatch switch;
//   - sbLen describes maximal contiguous closure-backed runs that never
//     cross a basic-block boundary or a scheduling-relevant slot.
func checkSuperblocks(t *testing.T, name string, p *Program) {
	t.Helper()
	for fi := range p.funcs {
		fc := &p.funcs[fi]
		if len(fc.sbLen) != len(fc.code) {
			t.Fatalf("%s func %d: sbLen has %d entries for %d slots",
				name, fi, len(fc.sbLen), len(fc.code))
		}
		for pc := range fc.code {
			c := &fc.code[pc]
			if (c.run != nil) != sbEligible(c) {
				t.Fatalf("%s func %d pc %d: run=%v but sbEligible=%v (op %d)",
					name, fi, pc, c.run != nil, sbEligible(c), c.op)
			}
			if c.run != nil {
				if !sbAllowed[c.op] {
					t.Fatalf("%s func %d pc %d: op %d is closure-backed but not in the allowlist",
						name, fi, pc, c.op)
				}
				if c.op == cBr && c.site != 0 {
					t.Fatalf("%s func %d pc %d: site-tagged br (site %d) is closure-backed",
						name, fi, pc, c.site)
				}
			}
			if (fc.sbLen[pc] > 0) != (c.run != nil) {
				t.Fatalf("%s func %d pc %d: sbLen=%d but run=%v",
					name, fi, pc, fc.sbLen[pc], c.run != nil)
			}
		}

		// Walk each basic-block span and re-derive the partition.
		nb := len(fc.blockStart)
		for b := 0; b < nb; b++ {
			start := int(fc.blockStart[b])
			end := len(fc.code)
			if b+1 < nb {
				end = int(fc.blockStart[b+1])
			}
			for pc := start; pc < end; {
				if fc.code[pc].run == nil {
					pc++
					continue
				}
				// pc is a run head: either the block's first slot or
				// preceded by a scheduling-relevant slot.
				L := int(fc.sbLen[pc])
				if pc+L > end {
					t.Fatalf("%s func %d pc %d: superblock of length %d crosses block end %d",
						name, fi, pc, L, end)
				}
				for k := 0; k < L; k++ {
					if fc.code[pc+k].run == nil {
						t.Fatalf("%s func %d pc %d: scheduling-relevant slot inside superblock [%d,%d)",
							name, fi, pc+k, pc, pc+L)
					}
					if got, want := int(fc.sbLen[pc+k]), L-k; got != want {
						t.Fatalf("%s func %d pc %d: sbLen=%d, want %d (suffix of run at %d)",
							name, fi, pc+k, got, want, pc)
					}
				}
				if pc+L < end && fc.code[pc+L].run != nil {
					t.Fatalf("%s func %d pc %d: superblock of length %d is not maximal",
						name, fi, pc, L)
				}
				pc += L
			}
		}
	}
}

// TestSuperblockBoundaries verifies the partition invariants over the
// compile-test module, the checked-in hardened golden module (checkpoint,
// rollback, timedlock, fail and recovery-block shapes), a site-tagged
// branch variant, and a sweep of generated programs.
func TestSuperblockBoundaries(t *testing.T) {
	mods := map[string]*mir.Module{
		"compiletest": compileTestModule(t),
	}

	src, err := os.ReadFile(filepath.Join("..", "transform", "testdata", "golden_transform.mir"))
	if err != nil {
		t.Fatalf("reading hardened golden module: %v", err)
	}
	golden, err := mir.Parse(string(src))
	if err != nil {
		t.Fatalf("parsing hardened golden module: %v", err)
	}
	mods["golden_transform"] = golden

	// Site-tagged branches only appear via the transform pass; tag every
	// register branch the way transform does so the site-br boundary rule
	// is exercised directly.
	tagged := compileTestModule(t)
	n := 0
	for fi := range tagged.Functions {
		f := &tagged.Functions[fi]
		for b := range f.Blocks {
			for i := range f.Blocks[b].Instrs {
				in := &f.Blocks[b].Instrs[i]
				if in.Op == mir.OpBr && in.A.Kind == mir.OperandReg {
					n++
					in.Site = n
				}
			}
		}
	}
	if n == 0 {
		t.Fatal("no register branches found to site-tag")
	}
	mods["site-tagged"] = tagged

	bugs := []mirgen.BugKind{
		mirgen.BugNone, mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
	}
	for i := 0; i < 25; i++ {
		cfg := mirgen.Config{Seed: int64(i), Threads: i % 4, Bug: bugs[i%len(bugs)]}
		mods[cfg.Bug.String()+"/"+string(rune('a'+i))] = mirgen.Gen(cfg)
	}

	sawRun := false
	for name, m := range mods {
		p := Compile(m)
		checkSuperblocks(t, name, p)
		for fi := range p.funcs {
			for _, l := range p.funcs[fi].sbLen {
				if l >= 2 {
					sawRun = true
				}
			}
		}
	}
	if !sawRun {
		t.Fatal("no superblock of length >= 2 anywhere in the corpus; batching never engages")
	}
}
