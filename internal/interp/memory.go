package interp

import "conair/internal/mir"

// memory is the shared flat address space: globals at GlobalBase + index,
// heap blocks bump-allocated from HeapBase. Uninitialized heap words read
// as zero, which is how the order-violation reconstructions observe a
// shared pointer "before it is initialized".
type memory struct {
	globals []mir.Word
	blocks  []heapBlock // sorted by base (bump allocation keeps them sorted)
	nextAdr mir.Word
	// lastIdx caches the block hit by the previous findBlock. Heap access
	// is strongly block-local (a workload loop walks one buffer), so the
	// cache turns the common case into one bounds check instead of a
	// binary search. It is an index hint only: every hit revalidates
	// against the block's bounds, so staleness cannot change a result.
	lastIdx int
	// globalEnd is GlobalBase + len(globals), precomputed for the
	// load/store fast path.
	globalEnd mir.Word
}

type heapBlock struct {
	base  mir.Word
	data  []mir.Word
	freed bool
}

func newMemory(m *mir.Module) *memory {
	mem := &memory{
		globals:   make([]mir.Word, len(m.Globals)),
		nextAdr:   HeapBase,
		lastIdx:   -1,
		globalEnd: GlobalBase + mir.Word(len(m.Globals)),
	}
	for i, g := range m.Globals {
		mem.globals[i] = g.Init
	}
	return mem
}

// alloc creates a zeroed heap block of size words (minimum 1) and returns
// its base address.
func (mem *memory) alloc(size mir.Word) mir.Word {
	if size < 1 {
		size = 1
	}
	b := heapBlock{base: mem.nextAdr, data: make([]mir.Word, size)}
	mem.blocks = append(mem.blocks, b)
	// Pad with one guard word so adjacent blocks never touch; dereferencing
	// one-past-the-end is then a fault rather than silent corruption.
	mem.nextAdr += size + 1
	return b.base
}

// free marks the block based at addr freed. Freeing an invalid or already
// freed address is reported by the second return value; double frees are a
// memory bug outside ConAir's scope, so the interpreter tolerates them.
func (mem *memory) free(addr mir.Word) bool {
	i := mem.findBlock(addr)
	if i < 0 || mem.blocks[i].base != addr || mem.blocks[i].freed {
		return false
	}
	mem.blocks[i].freed = true
	return true
}

// findBlock returns the index of the block containing addr, or -1. The
// last-hit cache short-circuits the binary search on block-local access
// patterns; a miss falls through to an open-coded binary search (manual
// rather than sort.Search so the comparison inlines).
func (mem *memory) findBlock(addr mir.Word) int {
	if i := mem.lastIdx; i >= 0 && i < len(mem.blocks) {
		b := &mem.blocks[i]
		if addr >= b.base && addr < b.base+mir.Word(len(b.data)) {
			return i
		}
	}
	// Binary search for the last block with base <= addr.
	lo, hi := 0, len(mem.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if mem.blocks[mid].base > addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return -1
	}
	b := &mem.blocks[lo-1]
	if addr < b.base+mir.Word(len(b.data)) {
		mem.lastIdx = lo - 1
		return lo - 1
	}
	return -1
}

// load reads the word at addr; ok is false on a segmentation fault
// (address at or below LowerBound, unmapped, or in a freed block).
func (mem *memory) load(addr mir.Word) (mir.Word, bool) {
	if addr <= LowerBound {
		return 0, false
	}
	if addr >= GlobalBase && addr < mem.globalEnd {
		return mem.globals[addr-GlobalBase], true
	}
	if i := mem.findBlock(addr); i >= 0 && !mem.blocks[i].freed {
		b := &mem.blocks[i]
		return b.data[addr-b.base], true
	}
	return 0, false
}

// store writes the word at addr; ok is false on a segmentation fault.
func (mem *memory) store(addr, v mir.Word) bool {
	if addr <= LowerBound {
		return false
	}
	if addr >= GlobalBase && addr < mem.globalEnd {
		mem.globals[addr-GlobalBase] = v
		return true
	}
	if i := mem.findBlock(addr); i >= 0 && !mem.blocks[i].freed {
		b := &mem.blocks[i]
		b.data[addr-b.base] = v
		return true
	}
	return false
}

// globalAddr returns the flat address of global index gi.
func globalAddr(gi int) mir.Word { return GlobalBase + mir.Word(gi) }

// snapshot deep-copies the memory; the whole-program-checkpoint baseline
// (Figure 4 ablation) uses it.
func (mem *memory) snapshot() *memory {
	cp := &memory{
		globals:   append([]mir.Word(nil), mem.globals...),
		blocks:    make([]heapBlock, len(mem.blocks)),
		nextAdr:   mem.nextAdr,
		lastIdx:   -1,
		globalEnd: mem.globalEnd,
	}
	for i, b := range mem.blocks {
		cp.blocks[i] = heapBlock{
			base:  b.base,
			data:  append([]mir.Word(nil), b.data...),
			freed: b.freed,
		}
	}
	return cp
}

// mutex is the lock state attached to an address used by lock/unlock.
type mutex struct {
	held   bool
	holder int // thread id when held
}

// locks tracks every address used as a mutex.
type locks struct {
	byAddr map[mir.Word]*mutex
}

func newLocks() *locks { return &locks{byAddr: map[mir.Word]*mutex{}} }

func (l *locks) get(addr mir.Word) *mutex {
	mu := l.byAddr[addr]
	if mu == nil {
		mu = &mutex{}
		l.byAddr[addr] = mu
	}
	return mu
}

// snapshot deep-copies lock state for the whole-program-checkpoint baseline.
func (l *locks) snapshot() *locks {
	cp := newLocks()
	for a, mu := range l.byAddr {
		c := *mu
		cp.byAddr[a] = &c
	}
	return cp
}
