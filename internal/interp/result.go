package interp

import (
	"fmt"
	"sync/atomic"

	"conair/internal/mir"
)

// Process-wide cumulative counters, maintained by every finished run.
// They cost one atomic add per run (not per step) and feed the
// throughput numbers (runs/sec, steps/sec) in conair-bench -json.
var (
	totalRuns     atomic.Int64
	totalSteps    atomic.Int64
	totalSBQuanta atomic.Int64
	totalSBSaved  atomic.Int64
)

// Totals reports how many interpreter runs have finished in this process
// and how many instructions they executed in aggregate.
func Totals() (runs, steps int64) {
	return totalRuns.Load(), totalSteps.Load()
}

// SuperblockTotals reports, across all finished runs in this process, how
// many superblock quanta were executed and how many dispatch round-trips
// they saved (instructions retired inside quanta minus quanta entered —
// the scheduler still consumed one decision per instruction either way).
func SuperblockTotals() (quanta, saved int64) {
	return totalSBQuanta.Load(), totalSBSaved.Load()
}

// ResetTotals zeroes the process-wide run/step counters. Tests and bench
// sections that assert on Totals deltas call it so counts never leak
// across test cases or sections.
func ResetTotals() {
	totalRuns.Store(0)
	totalSteps.Store(0)
	totalSBQuanta.Store(0)
	totalSBSaved.Store(0)
}

// Failure describes why a run failed.
type Failure struct {
	Kind   mir.FailKind
	Pos    mir.Pos
	Site   int // transformed failure-site id, 0 if none
	Thread int
	Step   int64
	Msg    string
}

// Error renders the failure for logs.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s failure at %s (thread %d, step %d): %s",
		f.Kind, f.Pos, f.Thread, f.Step, f.Msg)
}

// OutputEvent is one output instruction execution.
type OutputEvent struct {
	Text   string
	Value  mir.Word
	Thread int
	Step   int64
}

// Episode records one recovery episode at a failure site: the span from
// the first rollback to the step at which the site was finally passed (or
// the run ended). Table 7's recovery time and retry count come from here.
type Episode struct {
	Site      int
	Thread    int
	Start     int64 // step of the first rollback
	End       int64 // step when the site passed; -1 if never
	Retries   int64 // rollbacks performed in this episode
	Recovered bool
}

// Duration returns the episode length in interpreter steps, or -1 when
// the episode never completed — distinguishing "never recovered" from a
// genuine zero-length episode (a site that passed at the very step of its
// first rollback).
func (e *Episode) Duration() int64 {
	if !e.Recovered {
		return -1
	}
	return e.End - e.Start
}

// Stats aggregates run counters.
type Stats struct {
	// Steps is the total number of executed instructions.
	Steps int64
	// Checkpoints counts dynamic reexecution-point executions (Table 5's
	// "Dynamic" column).
	Checkpoints int64
	// CheckpointExecs counts executions per checkpoint id — Table 6
	// splits dynamic reexecution points by the site class they serve.
	CheckpointExecs map[int]int64
	// Rollbacks counts executed rollback longjmps.
	Rollbacks int64
	// CompFrees and CompUnlocks count compensation actions at rollbacks.
	CompFrees, CompUnlocks int64
	// Episodes lists completed and pending recovery episodes.
	Episodes []Episode
	// ThreadsSpawned counts threads ever created (including main).
	ThreadsSpawned int
}

// Result is the outcome of one interpreter run.
type Result struct {
	// Completed reports that main returned without failure.
	Completed bool
	// Failure is non-nil when the run ended in a detected failure.
	Failure *Failure
	// ExitCode is main's return value when Completed.
	ExitCode mir.Word
	// Output holds output events when Config.CollectOutput is set.
	Output []OutputEvent
	Stats  Stats
}

// RecoveredEpisodes returns only the episodes that completed successfully.
func (r *Result) RecoveredEpisodes() []Episode {
	var out []Episode
	for _, e := range r.Stats.Episodes {
		if e.Recovered {
			out = append(out, e)
		}
	}
	return out
}

// MaxEpisode returns the longest recovered episode, or nil.
func (r *Result) MaxEpisode() *Episode {
	var best *Episode
	for i := range r.Stats.Episodes {
		e := &r.Stats.Episodes[i]
		if !e.Recovered {
			continue
		}
		if best == nil || e.Duration() > best.Duration() {
			best = e
		}
	}
	return best
}
