package interp

import (
	"conair/internal/mir"
)

// This file exposes the stepping and whole-state snapshot hooks used by
// the traditional rollback-recovery baselines (internal/baseline). ConAir
// itself never needs them — that is the point of the comparison: ConAir's
// checkpoint is a register image, the baseline's is the entire program
// state.

// StepOnce executes one scheduling decision plus one instruction. It
// returns false once the run has ended (completion, failure, or nothing
// left to schedule). Mixing StepOnce with Run is not supported.
//
// Single-stepping runs the same compiled dispatch loop as Run with fusion
// disabled, so exactly one instruction retires per call — the fused slot's
// tail executes on the next call.
func (vm *VM) StepOnce() bool {
	return vm.runLoop(vm.cfg.maxSteps(), true)
}

// Finish builds the result after StepOnce-driven execution.
func (vm *VM) Finish() *Result { return vm.result() }

// Steps reports instructions executed so far.
func (vm *VM) Steps() int64 { return vm.step }

// CurrentFailure returns the failure detected so far, or nil.
func (vm *VM) CurrentFailure() *Failure { return vm.failure }

// AdvanceSteps charges extra virtual time to the run — the baselines use
// it to model checkpointing cost (copying W words of state is not free on
// any real system; the baseline charges it at a configurable rate).
func (vm *VM) AdvanceSteps(n int64) {
	if n > 0 {
		vm.step += n
	}
}

// StateWords reports the current size of the mutable program state in
// words (globals + live heap + thread frames): what a whole-program
// checkpoint must copy.
func (vm *VM) StateWords() int64 {
	n := int64(len(vm.mem.globals))
	for i := range vm.mem.blocks {
		if !vm.mem.blocks[i].freed {
			n += int64(len(vm.mem.blocks[i].data))
		}
	}
	for _, t := range vm.threads {
		for fi := range t.frames {
			n += int64(len(t.frames[fi].regs) + len(t.frames[fi].slots))
		}
	}
	return n
}

// PerturbThread forces thread tid to sleep for delay steps — the
// baseline's stand-in for Rx-style environment/timing perturbation during
// reexecution, so the restored run takes a different interleaving. It
// reports whether the perturbation was applied; a thread that does not
// exist yet (the rollback may predate its spawn) or is not runnable cannot
// be delayed, and the caller retries later.
func (vm *VM) PerturbThread(tid int, delay int64) bool {
	t := vm.threadByID(tid)
	if t == nil || delay <= 0 {
		return false
	}
	// Only a runnable thread can be put to sleep directly; a blocked
	// thread is already delayed by whatever blocks it.
	if t.status == statusRunnable {
		vm.setStatus(t, statusSleeping)
		t.wakeAt = vm.step + delay
		return true
	}
	return false
}

// NumThreads reports how many threads have ever been spawned.
func (vm *VM) NumThreads() int { return len(vm.threads) }

// Snapshot is a deep copy of the whole mutable program state.
type Snapshot struct {
	step    int64
	mem     *memory
	lcks    *locks
	conds   *condvars
	chans   *channels
	threads []*thread
	nextTID int
	done    bool
	exit    mir.Word
	nOut    int
	// Words is the state size that was copied, for cost accounting.
	Words int64
}

// TakeSnapshot deep-copies the program state (memory, locks, threads).
func (vm *VM) TakeSnapshot() *Snapshot {
	s := &Snapshot{
		step:    vm.step,
		mem:     vm.mem.snapshot(),
		lcks:    vm.lcks.snapshot(),
		conds:   vm.conds.snapshot(),
		chans:   vm.chans.snapshot(),
		nextTID: vm.nextTID,
		done:    vm.done,
		exit:    vm.exit,
		nOut:    len(vm.output),
	}
	s.threads = make([]*thread, len(vm.threads))
	for i, t := range vm.threads {
		s.threads[i] = cloneThread(t)
	}
	s.Words = vm.StateWords()
	return s
}

// RestoreSnapshot rewinds the program to the snapshot. The failure flag is
// cleared (that is what the rollback is for); output produced after the
// snapshot is discarded, modeling the baseline's required output
// buffering. Virtual time is NOT rewound: recovery costs time.
func (vm *VM) RestoreSnapshot(s *Snapshot) {
	vm.mem = s.mem.snapshot()
	vm.lcks = s.lcks.snapshot()
	vm.conds = s.conds.snapshot()
	vm.chans = s.chans.snapshot()
	vm.threads = make([]*thread, len(s.threads))
	for i, t := range s.threads {
		vm.threads[i] = cloneThread(t)
	}
	vm.nextTID = s.nextTID
	vm.done = s.done
	vm.exit = s.exit
	vm.failure = nil
	vm.rebuildLive()
	if len(vm.output) > s.nOut {
		vm.output = vm.output[:s.nOut]
	}
	// Blocked/sleeping deadlines recorded in absolute steps would lie in
	// the past after a long recovery; clamp them to now.
	for _, t := range vm.threads {
		if t.status == statusSleeping && t.wakeAt < vm.step {
			t.wakeAt = vm.step
		}
		switch t.status {
		case statusBlockedLock, statusBlockedCond, statusBlockedSend, statusBlockedRecv:
			if t.blockedSince > vm.step {
				t.blockedSince = vm.step
			}
		}
	}
}

func cloneThread(t *thread) *thread {
	c := *t
	c.frames = make([]frame, len(t.frames))
	for i, fr := range t.frames {
		nf := fr
		nf.regs = append([]mir.Word(nil), fr.regs...)
		nf.slots = append([]mir.Word(nil), fr.slots...)
		c.frames[i] = nf
	}
	if t.jmp != nil {
		j := *t.jmp
		j.regs = append([]mir.Word(nil), t.jmp.regs...)
		c.jmp = &j
	}
	c.comp = append([]compEntry(nil), t.comp...)
	if t.retries != nil {
		c.retries = make(map[int]int64, len(t.retries))
		for k, v := range t.retries {
			c.retries[k] = v
		}
	}
	if t.episodes != nil {
		c.episodes = make(map[int]*Episode, len(t.episodes))
		for k, v := range t.episodes {
			e := *v
			c.episodes[k] = &e
		}
	}
	return &c
}
