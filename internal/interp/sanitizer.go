package interp

import "conair/internal/mir"

// Sanitizer receives the interpreter's synchronization and shared-memory
// events: thread lifecycle edges, lock requests/acquisitions/releases, and
// every global or heap access. It is the attachment point for dynamic
// analyses such as the happens-before race detector and the lock-order
// deadlock predictor in internal/sanitizer; the interface lives here so
// the interpreter does not depend on any particular detector.
//
// The contract mirrors Config.Sink: observation must be passive. A
// sanitized run must be bit-identical to an unsanitized one — callbacks
// may not mutate interpreter state, consume scheduler randomness, or
// block. When Config.Sanitizer is nil (the default), every hook site pays
// one pointer comparison and allocates nothing.
//
// Callback order follows execution order on the virtual-time step counter:
//
//   - ThreadSpawn(parent, child) fires when child is created; the main
//     thread is announced as ThreadSpawn(-1, main) before the run starts.
//   - ThreadJoin(waiter, target) fires when the waiter proceeds past a
//     join — i.e. once target has exited, never while still blocked.
//   - LockRequest fires at most once per blocking acquisition attempt,
//     when the thread first transitions to the blocked state. A successful
//     immediate acquisition fires only LockAcquire.
//   - LockAcquire fires on every successful acquisition (timed reports
//     timed=true). LockRelease fires on every release, including the
//     compensation releases performed by rollback.
//   - Access fires after every successful shared-memory read or write:
//     globals (loadg/storeg) and heap or global words reached through
//     pointers (load/store). Stack slots and registers are thread-local
//     and are not reported. Faulting accesses do not fire.
//   - A wait fires LockRelease for its mutex when it arms, and — only on
//     the signalled completion path — LockAcquire for the re-acquired
//     mutex followed by CondWake, so the detector's held-lock set always
//     matches the interpreter's. A timed-out wait fires neither (it
//     consumed no signal and left the mutex released).
//   - CondSignal fires once per executed signal/broadcast, including lost
//     ones with no waiters. ChanSend/ChanRecv/ChanClose fire once per
//     completed channel operation — never for the blocked re-executions —
//     with a closed-and-drained receive still firing ChanRecv (it is
//     ordered after the close). AtomicCAS fires once per executed cas
//     with its success outcome; the shadow read (and, on success, write)
//     are the detector's to derive — the interpreter does not emit
//     separate Access events for cas.
type Sanitizer interface {
	ThreadSpawn(parent, child int)
	ThreadJoin(waiter, target int)
	LockRequest(tid int, addr mir.Word, timed bool, pos mir.Pos)
	LockAcquire(tid int, addr mir.Word, timed bool, pos mir.Pos)
	LockRelease(tid int, addr mir.Word)
	Access(tid int, addr mir.Word, write bool, pos mir.Pos)
	CondSignal(tid int, cv mir.Word, broadcast bool, pos mir.Pos)
	CondWake(tid int, cv mir.Word, pos mir.Pos)
	ChanSend(tid int, ch mir.Word, pos mir.Pos)
	ChanRecv(tid int, ch mir.Word, pos mir.Pos)
	ChanClose(tid int, ch mir.Word, pos mir.Pos)
	AtomicCAS(tid int, addr mir.Word, success bool, pos mir.Pos)
}
