package interp

import "conair/internal/mir"

// threadStatus enumerates thread scheduler states.
type threadStatus uint8

const (
	statusRunnable threadStatus = iota
	statusBlockedLock
	statusBlockedJoin
	statusSleeping
	// statusBlockedCond: parked on a condition variable, waiting for a
	// signal/broadcast (or the timed wait's timeout). A signal moves the
	// thread to statusBlockedLock on the wait's mutex — the re-acquire
	// phase — so the ordinary lock wake machinery applies.
	statusBlockedCond
	// statusBlockedSend / statusBlockedRecv: parked on a full (resp.
	// empty) bounded channel; woken by pickThread when the operation may
	// complete, then the instruction re-executes like a blocked lock.
	statusBlockedSend
	statusBlockedRecv
	statusDone
)

// frame is one activation record: the register image plus stack slots and
// the program counter within a function. pc is a flat index into the
// function's compiled code stream (see compile.go); pc 0 is the first
// instruction of the entry block, so the zero value starts at the top.
type frame struct {
	fn     int
	regs   []mir.Word
	slots  []mir.Word
	pc     int
	retDst int // destination register in the caller, -1 for none
}

// jmpbuf is the thread-local jump buffer written by checkpoint and read by
// rollback — the stand-in for the paper's setjmp register image. It records
// which frame the checkpoint executed in (so inter-procedural rollback can
// unwind callee frames), the flat program counter just past the checkpoint,
// and a copy of the frame's virtual registers.
type jmpbuf struct {
	frameDepth int
	pc         int
	regs       []mir.Word
	regionCtr  int64
}

// compKind tags compensation-log entries (paper §4.1).
type compKind uint8

const (
	compAlloc compKind = iota
	compLock
)

// compEntry records a resource acquired inside a reexecution region so a
// rollback can release it: heap allocations are freed, locks unlocked.
type compEntry struct {
	kind compKind
	addr mir.Word
	ctr  int64 // region counter at acquisition
}

// thread is one virtual thread.
type thread struct {
	id     int
	status threadStatus
	frames []frame
	result mir.Word

	// Blocking state.
	blockAddr    mir.Word // lock/condvar/channel address while blocked
	blockedSince int64
	blockTimeout int64 // steps; 0 = wait forever (plain lock)
	blockDst     int   // destination register for timedlock result
	joinTarget   int
	wakeAt       int64

	// Condition-variable wait state machine (see the cWait dispatch case).
	// condArmed: parked in the condvar's waiter queue. condSignaled: a
	// signal was consumed, the wait is re-acquiring its mutex; once set,
	// the wait can no longer time out — the no-double-consume half of the
	// wait-rollback rule (mir/class.go).
	condArmed    bool
	condSignaled bool
	waitMutex    mir.Word // mutex to re-acquire when the wait completes

	// ConAir recovery state.
	jmp       *jmpbuf
	regionCtr int64
	retries   map[int]int64 // per failure-site retry counters
	comp      []compEntry

	// Open recovery episodes, one per site.
	episodes map[int]*Episode
}

func (t *thread) top() *frame { return &t.frames[len(t.frames)-1] }

func (t *thread) retryCount(site int) int64 {
	if t.retries == nil {
		return 0
	}
	return t.retries[site]
}

func (t *thread) bumpRetry(site int) {
	if t.retries == nil {
		t.retries = map[int]int64{}
	}
	t.retries[site]++
}

// pushComp records a compensable acquisition under the current region
// counter. Entries from older regions are dropped first, mirroring the
// paper's "clean the vector if the counter changed" bookkeeping.
func (t *thread) pushComp(kind compKind, addr mir.Word) {
	if len(t.comp) > 0 && t.comp[0].ctr != t.regionCtr {
		t.comp = t.comp[:0]
	}
	t.comp = append(t.comp, compEntry{kind: kind, addr: addr, ctr: t.regionCtr})
}

// takeComp removes and returns the entries recorded under the current
// region counter (the resources a rollback must release).
func (t *thread) takeComp() []compEntry {
	if len(t.comp) == 0 || t.comp[0].ctr != t.regionCtr {
		t.comp = t.comp[:0]
		return nil
	}
	out := t.comp
	t.comp = nil
	return out
}

// beginEpisode opens (or continues) the recovery episode for site at step.
func (t *thread) beginEpisode(site int, step int64) *Episode {
	if t.episodes == nil {
		t.episodes = map[int]*Episode{}
	}
	e := t.episodes[site]
	if e == nil {
		e = &Episode{Site: site, Thread: t.id, Start: step, End: -1}
		t.episodes[site] = e
	}
	e.Retries++
	return e
}

// endEpisode closes the open episode for site, if any, marking recovery.
func (t *thread) endEpisode(site int, step int64) *Episode {
	e := t.episodes[site]
	if e == nil {
		return nil
	}
	delete(t.episodes, site)
	e.End = step
	e.Recovered = true
	return e
}
