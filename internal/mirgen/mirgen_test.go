package mirgen

import (
	"fmt"
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
	"conair/internal/transform"
)

func run(m *mir.Module, seed int64) *interp.Result {
	return interp.RunModule(m, interp.Config{
		Sched: sched.NewRandom(seed), MaxSteps: 20_000_000, CollectOutput: true,
	})
}

// Generated programs must be deterministic per seed and failure-free.
func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m := Gen(Config{Seed: seed})
		if err := mir.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := run(m, 1)
		if !r.Completed {
			t.Fatalf("seed %d: generated program failed: %v\n%s", seed, r.Failure, mir.Print(m))
		}
		// Same config generates the same program.
		if mir.Print(Gen(Config{Seed: seed})) != mir.Print(m) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

// Generated programs round-trip through the textual syntax.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := Gen(Config{Seed: seed, Threads: int(seed % 3)})
		text := mir.Print(m)
		m2, err := mir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if mir.Print(m2) != text {
			t.Fatalf("seed %d: print not a fixed point", seed)
		}
	}
}

// The paper's correctness property, checked differentially: hardening a
// failure-free single-threaded program must preserve its exact observable
// behaviour — every output event (text and value, in order), the exit
// code — and must never roll back.
func TestDifferentialSemanticPreservationSingleThreaded(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		m := Gen(Config{Seed: seed})
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: harden: %v", seed, err)
		}
		if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
			t.Fatalf("seed %d: invariants: %v", seed, err)
		}
		orig := run(m, 1)
		hard := run(h.Module, 1)
		if !orig.Completed || !hard.Completed {
			t.Fatalf("seed %d: orig=%v hard=%v", seed, orig.Failure, hard.Failure)
		}
		if orig.ExitCode != hard.ExitCode {
			t.Fatalf("seed %d: exit %d vs %d", seed, orig.ExitCode, hard.ExitCode)
		}
		if err := sameOutput(orig, hard); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, mir.Print(m))
		}
		if hard.Stats.Rollbacks != 0 {
			t.Fatalf("seed %d: failure-free run rolled back %d times", seed, hard.Stats.Rollbacks)
		}
	}
}

// Multi-threaded generated programs have interleaving-independent
// observables; hardened runs must reproduce them under every scheduler
// seed even though hardening perturbs the interleaving.
func TestDifferentialSemanticPreservationMultiThreaded(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := Gen(Config{Seed: seed, Threads: 2 + int(seed%3)})
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: harden: %v", seed, err)
		}
		ref := run(m, 1)
		if !ref.Completed {
			t.Fatalf("seed %d: reference run failed: %v", seed, ref.Failure)
		}
		for _, schedSeed := range []int64{1, 7, 99} {
			hard := run(h.Module, schedSeed)
			if !hard.Completed {
				t.Fatalf("seed %d/%d: hardened failed: %v", seed, schedSeed, hard.Failure)
			}
			if hard.ExitCode != ref.ExitCode {
				t.Fatalf("seed %d/%d: exit %d, want %d", seed, schedSeed, hard.ExitCode, ref.ExitCode)
			}
			if err := sameOutput(ref, hard); err != nil {
				t.Fatalf("seed %d/%d: %v", seed, schedSeed, err)
			}
		}
	}
}

// Fix mode on a generated program: pick each assertion in main as the fix
// site; hardening must still preserve behaviour.
func TestDifferentialFixMode(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := Gen(Config{Seed: seed})
		pos, err := firstSite(m)
		if err != nil {
			continue // no sites in this program: nothing to fix
		}
		h, err := core.Harden(m, core.FixOptions(pos))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig := run(m, 1)
		hard := run(h.Module, 1)
		if !hard.Completed || hard.ExitCode != orig.ExitCode {
			t.Fatalf("seed %d: fix-mode divergence: %v", seed, hard.Failure)
		}
		if err := sameOutput(orig, hard); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Recovery fuzzing: random programs with an injected order violation fail
// unprotected and must recover once hardened, in both survival and fix
// mode, across scheduler seeds.
func TestRecoveryFuzzInjectedBug(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := Gen(Config{Seed: seed, InjectBug: true})
		plain := run(m, 1)
		if plain.Completed || plain.Failure.Kind != mir.FailAssert {
			t.Fatalf("seed %d: injected bug did not manifest: %+v", seed, plain.Failure)
		}

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
			t.Fatalf("seed %d: invariants: %v", seed, err)
		}
		for _, s := range []int64{1, 13} {
			r := run(h.Module, s)
			if !r.Completed {
				t.Fatalf("seed %d/%d: survival hardening did not recover: %v\n%s",
					seed, s, r.Failure, mir.Print(m))
			}
			if r.Stats.Rollbacks == 0 {
				t.Fatalf("seed %d/%d: recovery without rollbacks?", seed, s)
			}
		}

		// Fix mode on the injected assert.
		ri := m.FuncIndex("bugreader")
		f := &m.Functions[ri]
		var pos mir.Pos
		found := false
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				if f.Blocks[bi].Instrs[ii].Op == mir.OpAssert {
					pos = mir.Pos{Fn: ri, Block: bi, Index: ii}
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("seed %d: injected assert not found", seed)
		}
		hf, err := core.Harden(m, core.FixOptions(pos))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r := run(hf.Module, 1); !r.Completed {
			t.Fatalf("seed %d: fix hardening did not recover: %v", seed, r.Failure)
		}
	}
}

func sameOutput(a, b *interp.Result) error {
	if len(a.Output) != len(b.Output) {
		return fmt.Errorf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i].Text != b.Output[i].Text || a.Output[i].Value != b.Output[i].Value {
			return fmt.Errorf("output[%d]: %q=%d vs %q=%d", i,
				a.Output[i].Text, a.Output[i].Value, b.Output[i].Text, b.Output[i].Value)
		}
	}
	return nil
}

// firstSite finds any failure site in main to use as a fix target.
func firstSite(m *mir.Module) (mir.Pos, error) {
	mi := m.Main()
	f := &m.Functions[mi]
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			switch f.Blocks[bi].Instrs[ii].Op {
			case mir.OpAssert, mir.OpLoad, mir.OpStore, mir.OpLock:
				return mir.Pos{Fn: mi, Block: bi, Index: ii}, nil
			}
		}
	}
	return mir.Pos{}, fmt.Errorf("no sites")
}
