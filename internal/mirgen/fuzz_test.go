package mirgen

import (
	"testing"

	"conair/internal/mir"
)

// FuzzGen drives generator configurations through Verify and a
// print/parse round trip: every configuration in the supported range
// must produce a well-formed module whose printed text re-parses.
func FuzzGen(f *testing.F) {
	f.Add(int64(1), 3, 12, 0, uint8(0))
	f.Add(int64(7), 1, 4, 2, uint8(1))
	f.Add(int64(42), 6, 24, 4, uint8(2))
	f.Add(int64(-5), 0, 0, 1, uint8(3))

	f.Fuzz(func(t *testing.T, seed int64, funcs, stmts, threads int, bug uint8) {
		if funcs < 0 || funcs > 8 || stmts < 0 || stmts > 48 || threads < 0 || threads > 8 {
			t.Skip("out of supported range")
		}
		cfg := Config{
			Seed:         seed,
			Funcs:        funcs,
			StmtsPerFunc: stmts,
			Threads:      threads,
			Bug:          BugKind(bug % 8),
		}
		m := Gen(cfg)
		if err := mir.Verify(m); err != nil {
			t.Fatalf("generated module fails verification: %v\n%s", err, mir.Print(m))
		}
		m2, err := mir.Parse(mir.Print(m))
		if err != nil {
			t.Fatalf("generated module does not round-trip: %v", err)
		}
		if mir.Print(m2) != mir.Print(m) {
			t.Fatal("generated module print is not a fixed point")
		}
	})
}
