package mirgen

import (
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sanitizer"
	"conair/internal/sched"
	"conair/internal/transform"
)

// Soak runs: a wider sweep of the differential and recovery fuzzers, for
// CI-style long runs. Skipped with -short.
func TestSoakDifferentialAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	// Differential sweep over bigger programs.
	for seed := int64(1000); seed < 1250; seed++ {
		m := Gen(Config{Seed: seed, Funcs: 5, StmtsPerFunc: 24})
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig := run(m, 1)
		hard := run(h.Module, 1)
		if !orig.Completed || !hard.Completed || orig.ExitCode != hard.ExitCode {
			t.Fatalf("seed %d: divergence (orig %v/%d, hard %v/%d)", seed,
				orig.Completed, orig.ExitCode, hard.Completed, hard.ExitCode)
		}
		if err := sameOutput(orig, hard); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, mir.Print(m))
		}
	}
	// Recovery sweep.
	for seed := int64(2000); seed < 2100; seed++ {
		m := Gen(Config{Seed: seed, InjectBug: true, StmtsPerFunc: 20})
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r := run(h.Module, 1); !r.Completed {
			t.Fatalf("seed %d: not recovered: %v", seed, r.Failure)
		}
	}
	// Safe-site pruning must never prune a site that can actually fault:
	// hardened-with-pruning still completes and behaves identically.
	for seed := int64(3000); seed < 3100; seed++ {
		m := Gen(Config{Seed: seed, StmtsPerFunc: 20})
		opts := core.DefaultOptions()
		opts.PruneSafeSites = true
		h, err := core.Harden(m, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig := run(m, 1)
		hard := run(h.Module, 1)
		if !hard.Completed || hard.ExitCode != orig.ExitCode {
			t.Fatalf("seed %d: safe-pruned divergence: %v", seed, hard.Failure)
		}
	}
}

// TestSoakSanitizerCleanPrograms pins the sanitizer's false-positive rate
// at zero: 200 failure-free generator seeds — half single-threaded, half
// with worker threads — run under the sanitizer with no reports. Generated
// programs are race-free by construction (globals are read-only while
// workers run; counters are lock-protected; heap blocks are frame-private)
// and take locks in ascending order only, so any report is a sanitizer
// false positive.
func TestSoakSanitizerCleanPrograms(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		cfg := Config{Seed: seed}
		if seed%2 == 1 {
			cfg.Threads = 1 + int(seed%4)
		}
		m := Gen(cfg)
		san := sanitizer.New(m)
		r := interp.RunModule(m, interp.Config{
			Sched:     sched.NewRandom(seed),
			MaxSteps:  20_000_000,
			Sanitizer: san,
		})
		if !r.Completed {
			t.Fatalf("seed %d: clean program failed: %v", seed, r.Failure)
		}
		if rs := san.Reports(); len(rs) != 0 {
			t.Fatalf("seed %d (threads=%d): sanitizer false positive: %v\n%s",
				seed, cfg.Threads, rs, mir.Print(m))
		}
	}
}
