package mirgen

import (
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
	"conair/internal/transform"
)

// runPCT executes m under a PCT schedule, the searcher used to manifest
// the probabilistic bug templates.
func runPCT(m *mir.Module, seed int64) *interp.Result {
	return interp.RunModule(m, interp.Config{
		Sched: sched.NewPCT(seed, 3, 64), MaxSteps: 2_000_000, CollectOutput: true,
	})
}

func TestBugTemplatesWellFormedAndLabeled(t *testing.T) {
	want := map[BugKind]BugInfo{
		BugOrder:         {Kind: BugOrder, Global: "bug_flag", ThreadFns: [2]string{"bugreader", "bugwriter"}},
		BugAtomicity:     {Kind: BugAtomicity, Global: "bug_val", ThreadFns: [2]string{"bugchecker", "bugmutator"}},
		BugLockInversion:   {Kind: BugLockInversion, LockA: "bug_lka", LockB: "bug_lkb", ThreadFns: [2]string{"bugleft", "bugright"}},
		BugLostSignal:      {Kind: BugLostSignal, Global: "bug_ready", ThreadFns: [2]string{"bugwaiter", "bugsignaler"}},
		BugMissedBroadcast: {Kind: BugMissedBroadcast, Global: "bug_stage", ThreadFns: [2]string{"bugwaiters", "bugcaster"}},
		BugChannelDeadlock: {Kind: BugChannelDeadlock, Global: "bug_stop", ThreadFns: [2]string{"bugsender", "bugreceiver"}},
		BugCASABA:          {Kind: BugCASABA, Global: "bug_acc", ThreadFns: [2]string{"bugcaschecker", "bugcasmutator"}},
	}
	for kind, wi := range want {
		for seed := int64(0); seed < 20; seed++ {
			m, info := GenWithInfo(Config{Seed: seed, Bug: kind})
			if err := mir.Verify(m); err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			if info == nil || *info != wi {
				t.Fatalf("%v seed %d: info = %+v, want %+v", kind, seed, info, wi)
			}
			if mir.Print(Gen(Config{Seed: seed, Bug: kind})) != mir.Print(m) {
				t.Fatalf("%v seed %d: generation not deterministic", kind, seed)
			}
			for _, fn := range info.ThreadFns {
				if m.FuncIndex(fn) < 0 {
					t.Fatalf("%v seed %d: missing thread fn %s", kind, seed, fn)
				}
			}
		}
	}
}

// InjectBug must keep selecting the order-violation template so existing
// configs generate byte-identical programs.
func TestInjectBugAliasesBugOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := mir.Print(Gen(Config{Seed: seed, InjectBug: true}))
		b := mir.Print(Gen(Config{Seed: seed, Bug: BugOrder}))
		if a != b {
			t.Fatalf("seed %d: InjectBug and BugOrder diverge", seed)
		}
	}
}

// manifest searches PCT schedules for one that triggers the template's
// failure kind, returning the first failing seed.
func manifest(t *testing.T, m *mir.Module, kind mir.FailKind, budget int64) int64 {
	t.Helper()
	for s := int64(0); s < budget; s++ {
		r := runPCT(m, s)
		if r.Failure != nil {
			if r.Failure.Kind != kind {
				t.Fatalf("schedule %d: failed with %v, want %v", s, r.Failure.Kind, kind)
			}
			return s
		}
	}
	t.Fatalf("no PCT schedule in %d manifested a %v failure", budget, kind)
	return -1
}

func TestBugAtomicityManifestsAndRecovers(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := Gen(Config{Seed: seed, Bug: BugAtomicity})
		manifest(t, m, mir.FailAssert, 200)

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
			t.Fatalf("seed %d: invariants: %v", seed, err)
		}
		for s := int64(0); s < 50; s++ {
			r := runPCT(h.Module, s)
			if !r.Completed {
				t.Fatalf("seed %d/%d: hardened atomicity bug not recovered: %v",
					seed, s, r.Failure)
			}
			if len(r.Output) != 1 || r.Output[0].Text != "bug" || r.Output[0].Value != 2 {
				t.Fatalf("seed %d/%d: observable changed: %+v", seed, s, r.Output)
			}
		}
	}
}

// TestSyncBugTemplatesManifestAndRecover covers the condvar, channel and
// cas templates: each must fail with its designed symptom on some PCT
// schedule, and its hardened twin must complete on every schedule with
// the template's post-join observable intact.
func TestSyncBugTemplatesManifestAndRecover(t *testing.T) {
	cases := []struct {
		kind    BugKind
		symptom mir.FailKind
		bugOut  int64
	}{
		{BugLostSignal, mir.FailHang, 1},
		{BugMissedBroadcast, mir.FailHang, 1},
		{BugChannelDeadlock, mir.FailHang, 1},
		{BugCASABA, mir.FailAssert, 2},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				m := Gen(Config{Seed: seed, Bug: tc.kind})
				manifest(t, m, tc.symptom, 200)

				h, err := core.Harden(m, core.DefaultOptions())
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
					t.Fatalf("seed %d: invariants: %v", seed, err)
				}
				for s := int64(0); s < 30; s++ {
					r := runPCT(h.Module, s)
					if !r.Completed {
						t.Fatalf("seed %d/%d: hardened %v not recovered: %v",
							seed, s, tc.kind, r.Failure)
					}
					if len(r.Output) != 1 || r.Output[0].Text != "bug" || r.Output[0].Value != mir.Word(tc.bugOut) {
						t.Fatalf("seed %d/%d: observable changed: %+v", seed, s, r.Output)
					}
				}
			}
		})
	}
}

func TestBugLockInversionManifestsAndRecovers(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := Gen(Config{Seed: seed, Bug: BugLockInversion})
		// Wait-for cycles surface as the paper's "hang" symptom (the
		// convention internal/bugs uses for its deadlock benchmarks too).
		manifest(t, m, mir.FailHang, 200)

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for s := int64(0); s < 50; s++ {
			r := runPCT(h.Module, s)
			if !r.Completed {
				t.Fatalf("seed %d/%d: hardened inversion not recovered: %v",
					seed, s, r.Failure)
			}
			if len(r.Output) != 1 || r.Output[0].Text != "bug" || r.Output[0].Value != 2 {
				t.Fatalf("seed %d/%d: observable changed: %+v", seed, s, r.Output)
			}
		}
	}
}
