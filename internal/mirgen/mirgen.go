// Package mirgen generates random, well-formed, terminating, failure-free
// MIR programs for differential testing of the ConAir pipeline.
//
// The generated programs exercise every instruction class the analyses
// reason about — register arithmetic, stack slots, globals, heap blocks,
// always-true assertions, outputs, nested and lone locks, calls, bounded
// loops and branches, and optionally worker threads — while guaranteeing
// that an unhardened run never fails and always terminates. That makes
// them ideal oracles for the paper's correctness property ("ConAir
// guarantees that program semantics remain unchanged"): the hardened
// program must complete with identical observable results.
//
// Multi-threaded programs are generated so their observable results are
// interleaving-independent (workers mutate disjoint or lock-protected
// state; outputs happen after joins), since hardening legitimately
// perturbs scheduling.
package mirgen

import (
	"fmt"
	"math/rand"

	"conair/internal/mir"
)

// Config sizes a generated program.
type Config struct {
	Seed int64
	// Funcs is the number of helper functions (callable from main and
	// each other, acyclically). Default 3.
	Funcs int
	// StmtsPerFunc is the approximate statement budget per function.
	// Default 12.
	StmtsPerFunc int
	// Threads is the number of worker threads main spawns. 0 generates a
	// single-threaded program whose outputs must match exactly under
	// hardening. Default 0.
	Threads int
	// Globals is the shared-cell pool size. Default 6.
	Globals int
	// InjectBug embeds a forced order violation: a reader thread asserts
	// on an initialization flag that a second thread publishes late. The
	// unhardened program then fails deterministically, and a hardened one
	// must recover — the recovery-fuzzing counterpart to the
	// semantics-preservation properties. Equivalent to Bug: BugOrder.
	InjectBug bool
	// Bug selects an injected bug template with ground-truth labels (see
	// BugKind); BugNone generates the failure-free program. Takes
	// precedence over InjectBug.
	Bug BugKind
}

// BugKind enumerates the injectable bug templates. Each corresponds to one
// of the paper's bug classes and carries a ground-truth label (BugInfo) so
// sanitizer verdicts and recovery outcomes are machine-checkable.
type BugKind int

const (
	// BugNone injects nothing: the program is failure-free and race-free
	// by construction.
	BugNone BugKind = iota
	// BugOrder is an order violation: a reader asserts on a flag the
	// writer publishes late, so the unhardened program fails on every
	// schedule.
	BugOrder
	// BugAtomicity is an atomicity violation in the MySQL2 shape: a
	// checker double-reads a global with a preemption window between the
	// reads while a mutator rewrites it non-atomically; some schedules
	// observe a torn pair and fail.
	BugAtomicity
	// BugLockInversion is a lock-order-inversion deadlock: two threads
	// take the same lock pair in opposite orders around a sleep, so some
	// schedules deadlock.
	BugLockInversion
	// BugLostSignal is a lost condition-variable signal: the producer
	// publishes the predicate and signals without holding the mutex (the
	// labelled race), so a signal delivered inside the waiter's window
	// between the locked predicate check and the wait wakes nobody and
	// the waiter blocks forever.
	BugLostSignal
	// BugMissedBroadcast wakes one of two waiters with signal where
	// broadcast is needed; whenever both waiters are parked the unwoken
	// one blocks forever. The predicate publish is unlocked, giving the
	// template a detectable ground-truth race as well.
	BugMissedBroadcast
	// BugChannelDeadlock is a producer looping sends into a capacity-1
	// channel whose consumer drains a single value and stops; the
	// producer's unlocked read of the consumer's stop flag is the
	// labelled race, and schedules that miss the flag send into the full
	// channel forever.
	BugChannelDeadlock
	// BugCASABA retires and restores a cell via cas (A→B→A) while a
	// checker double-reads it with plain loads: the mixed atomic/plain
	// access is the labelled race, and schedules that land the transient
	// B inside the checker's window fail its equality assert.
	BugCASABA
)

// String implements fmt.Stringer.
func (k BugKind) String() string {
	switch k {
	case BugNone:
		return "none"
	case BugOrder:
		return "order"
	case BugAtomicity:
		return "atomicity"
	case BugLockInversion:
		return "lock-inversion"
	case BugLostSignal:
		return "lost-signal"
	case BugMissedBroadcast:
		return "missed-broadcast"
	case BugChannelDeadlock:
		return "channel-deadlock"
	case BugCASABA:
		return "cas-aba"
	}
	return fmt.Sprintf("BugKind(%d)", int(k))
}

// BugInfo is the ground-truth label for an injected bug.
type BugInfo struct {
	Kind BugKind
	// Global is the racy global (BugOrder, BugAtomicity).
	Global string
	// LockA, LockB are the inverted lock pair (BugLockInversion).
	LockA, LockB string
	// ThreadFns are the two injected thread bodies.
	ThreadFns [2]string
}

func (c Config) withDefaults() Config {
	if c.Funcs <= 0 {
		c.Funcs = 3
	}
	if c.StmtsPerFunc <= 0 {
		c.StmtsPerFunc = 12
	}
	if c.Globals <= 0 {
		c.Globals = 6
	}
	if c.Bug == BugNone && c.InjectBug {
		c.Bug = BugOrder
	}
	return c
}

// Gen builds a random program for the configuration. Identical configs
// generate identical programs.
func Gen(cfg Config) *mir.Module {
	m, _ := GenWithInfo(cfg)
	return m
}

// GenWithInfo builds a random program plus the ground-truth label of its
// injected bug (nil when cfg injects none).
func GenWithInfo(cfg Config) (*mir.Module, *BugInfo) {
	cfg = cfg.withDefaults()
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   mir.NewBuilder(fmt.Sprintf("gen-%d", cfg.Seed)),
	}
	return g.module(), g.info
}

type gen struct {
	cfg  Config
	rng  *rand.Rand
	b    *mir.Builder
	gids []int // data globals
	lids []int // lock globals (lockable in ascending order only)
	// counterGids are globals reserved for lock-protected worker updates.
	counterGids []int
	funcNames   []string
	nreg        int
	info        *BugInfo
	// bugOut is the global whose post-join value is the injected
	// template's deterministic observable.
	bugOut int
}

func (g *gen) module() *mir.Module {
	for i := 0; i < g.cfg.Globals; i++ {
		g.gids = append(g.gids, g.b.Global(fmt.Sprintf("g%d", i), int64(g.rng.Intn(50))))
	}
	for i := 0; i < 3; i++ {
		g.lids = append(g.lids, g.b.Global(fmt.Sprintf("lk%d", i), 0))
	}
	for i := 0; i < 2; i++ {
		g.counterGids = append(g.counterGids, g.b.Global(fmt.Sprintf("cnt%d", i), 0))
	}

	// Helper functions, generated leaf-first so calls are acyclic.
	for i := 0; i < g.cfg.Funcs; i++ {
		name := fmt.Sprintf("helper%d", i)
		f := g.b.Func(name, "p0")
		g.body(f, i, false)
		v := g.value(f)
		f.Ret(v)
		g.funcNames = append(g.funcNames, name)
	}

	if g.cfg.Threads > 0 {
		// Worker: lock-protected counter updates plus private work; the
		// observable effect (counter increments) commutes across any
		// interleaving.
		w := g.b.Func("worker", "n")
		g.body(w, 0, true) // no calls, no outputs, no unprotected writes
		lk := w.AddrG("lkp", g.lids[0])
		w.Lock(lk)
		c := w.LoadG("c", g.counterGids[0])
		c1 := w.Bin("c1", mir.BinAdd, c, w.R("n"))
		w.StoreG(g.counterGids[0], c1)
		w.Unlock(lk)
		w.Ret(mir.None)
	}

	switch g.cfg.Bug {
	case BugOrder:
		bugFlag := g.b.Global("bug_flag", 0)

		// The failing thread: reads the flag somewhere inside otherwise
		// ordinary work and asserts it is set.
		rd := g.b.Func("bugreader")
		g.body(rd, 0, true)
		fv := rd.LoadG("fv", bugFlag)
		rd.Assert(fv, "injected: flag read before initialization")
		rd.Ret(mir.None)

		// The late initializer.
		wr := g.b.Func("bugwriter")
		wr.Sleep(mir.Imm(mir.Word(150 + g.rng.Intn(400))))
		wr.StoreG(bugFlag, mir.Imm(1))
		wr.Ret(mir.None)
		g.info = &BugInfo{Kind: BugOrder, Global: "bug_flag",
			ThreadFns: [2]string{"bugreader", "bugwriter"}}

	case BugAtomicity:
		// MySQL2 shape: the checker's two reads of bug_val must see the
		// same value, but the mutator rewrites it non-atomically (a
		// transient 0 between the two stores), so a preemption inside the
		// checker's window tears the pair.
		bugVal := g.b.Global("bug_val", 2)

		ck := g.b.Func("bugchecker")
		a := ck.LoadG("a", bugVal)
		ck.Const("wi", 0)
		loop := ck.Label("window")
		ck.Yield()
		ck.Bin("wi", mir.BinAdd, ck.R("wi"), mir.Imm(1))
		wc := ck.Bin("wc", mir.BinLt, ck.R("wi"), mir.Imm(40))
		after := ck.NewBlock("window_end")
		ck.Br(wc, loop, after)
		ck.SetBlock(after)
		bv := ck.LoadG("b", bugVal)
		eq := ck.Bin("eq", mir.BinEq, a, bv)
		ck.Assert(eq, "injected: non-atomic double read")
		// Random filler after the racy window keeps generator variety
		// without desynchronizing the checker from the mutator's stores.
		g.body(ck, 0, true)
		ck.Ret(mir.None)

		mu := g.b.Func("bugmutator")
		mu.Sleep(mir.Imm(mir.Word(5 + g.rng.Intn(30))))
		mu.StoreG(bugVal, mir.Imm(0))
		mu.Yield()
		mu.StoreG(bugVal, mir.Imm(2))
		mu.Ret(mir.None)
		g.bugOut = bugVal
		g.info = &BugInfo{Kind: BugAtomicity, Global: "bug_val",
			ThreadFns: [2]string{"bugchecker", "bugmutator"}}

	case BugLockInversion:
		// Two threads take the same lock pair in opposite orders around a
		// sleep; the shared counter under both locks keeps the observable
		// output schedule-independent.
		lka := g.b.Global("bug_lka", 0)
		lkb := g.b.Global("bug_lkb", 0)
		cnt := g.b.Global("bug_cnt", 0)
		half := func(name string, first, second int) {
			f := g.b.Func(name)
			g.body(f, 0, true)
			p1 := f.AddrG("p1", first)
			f.Lock(p1)
			f.Sleep(mir.Imm(mir.Word(20 + g.rng.Intn(60))))
			p2 := f.AddrG("p2", second)
			f.Lock(p2)
			c := f.LoadG("c", cnt)
			c1 := f.Bin("c1", mir.BinAdd, c, mir.Imm(1))
			f.StoreG(cnt, c1)
			f.Unlock(p2)
			f.Unlock(p1)
			f.Ret(mir.None)
		}
		half("bugleft", lka, lkb)
		half("bugright", lkb, lka)
		g.bugOut = cnt
		g.info = &BugInfo{Kind: BugLockInversion, LockA: "bug_lka", LockB: "bug_lkb",
			ThreadFns: [2]string{"bugleft", "bugright"}}

	case BugLostSignal:
		// The signaler stores the predicate and signals without taking the
		// mutex; the waiter's yield window between its locked predicate
		// check and the wait lets whole-signaler schedules slip in, after
		// which the wait can never be woken.
		ready := g.b.Global("bug_ready", 0)
		cv := g.b.Global("bug_cv", 0)
		mtx := g.b.Global("bug_mtx", 0)

		wt := g.b.Func("bugwaiter")
		g.body(wt, 0, true)
		g.condWait(wt, cv, mtx, ready)
		wt.Ret(mir.None)

		sg := g.b.Func("bugsignaler")
		sg.Sleep(mir.Imm(mir.Word(5 + g.rng.Intn(30))))
		sg.StoreG(ready, mir.Imm(1))
		cp := sg.AddrG("cp", cv)
		sg.Signal(cp)
		sg.Ret(mir.None)
		g.bugOut = ready
		g.info = &BugInfo{Kind: BugLostSignal, Global: "bug_ready",
			ThreadFns: [2]string{"bugwaiter", "bugsignaler"}}

	case BugMissedBroadcast:
		// Two waiters park on the same condvar; the caster wakes them with
		// signal where broadcast is needed, so whenever both are parked one
		// stays asleep forever. The unlocked predicate store doubles as the
		// ground-truth race.
		stage := g.b.Global("bug_stage", 0)
		cv := g.b.Global("bug_cv", 0)
		mtx := g.b.Global("bug_mtx", 0)

		inner := g.b.Func("bugwaitinner")
		g.condWait(inner, cv, mtx, stage)
		inner.Ret(mir.None)

		outer := g.b.Func("bugwaiters")
		ti := outer.Spawn("ti", "bugwaitinner")
		g.body(outer, 0, true)
		g.condWait(outer, cv, mtx, stage)
		outer.Join(ti)
		outer.Ret(mir.None)

		ca := g.b.Func("bugcaster")
		ca.Sleep(mir.Imm(mir.Word(5 + g.rng.Intn(30))))
		ca.StoreG(stage, mir.Imm(1))
		cp := ca.AddrG("cp", cv)
		ca.Signal(cp) // the bug: wakes at most one of the two waiters
		ca.Ret(mir.None)
		g.bugOut = stage
		g.info = &BugInfo{Kind: BugMissedBroadcast, Global: "bug_stage",
			ThreadFns: [2]string{"bugwaiters", "bugcaster"}}

	case BugChannelDeadlock:
		// The channel cell's initial value is its capacity (read once at
		// creation): a capacity-1 channel. The receiver drains one value
		// and publishes a stop flag without synchronization; a sender
		// schedule that misses the flag blocks on the full channel forever
		// (two sends can complete — one drained, one buffered — the third
		// never can).
		ch := g.b.Global("bug_ch", 1)
		stop := g.b.Global("bug_stop", 0)

		sd := g.b.Func("bugsender")
		chp := sd.AddrG("chp", ch)
		sd.Const("i", 0)
		loop := sd.Label("sendloop")
		s := sd.LoadG("s", stop)
		sdone := sd.NewBlock("sdone")
		sbody := sd.NewBlock("sbody")
		sd.Br(s, sdone, sbody)
		sd.SetBlock(sbody)
		sd.ChSend(chp, sd.R("i"))
		sd.Bin("i", mir.BinAdd, sd.R("i"), mir.Imm(1))
		c := sd.Bin("c", mir.BinLt, sd.R("i"), mir.Imm(6))
		sd.Br(c, loop, sdone)
		sd.SetBlock(sdone)
		sd.Ret(mir.None)

		rc := g.b.Func("bugreceiver")
		chp2 := rc.AddrG("chp", ch)
		rc.ChRecv("v", chp2)
		rc.StoreG(stop, mir.Imm(1))
		rc.Ret(mir.None)
		g.bugOut = stop
		g.info = &BugInfo{Kind: BugChannelDeadlock, Global: "bug_stop",
			ThreadFns: [2]string{"bugsender", "bugreceiver"}}

	case BugCASABA:
		// The mutator takes the cell A→B→A with two cas ops; the checker's
		// plain double-read can observe the transient B and fail, and the
		// plain-vs-atomic access pair is the labelled race (cas-vs-cas
		// pairs are ordered by the detector, plain loads are not).
		acc := g.b.Global("bug_acc", 2)

		ck := g.b.Func("bugcaschecker")
		a := ck.LoadG("a", acc)
		ck.Const("wi", 0)
		loop := ck.Label("window")
		ck.Yield()
		ck.Bin("wi", mir.BinAdd, ck.R("wi"), mir.Imm(1))
		wc := ck.Bin("wc", mir.BinLt, ck.R("wi"), mir.Imm(40))
		after := ck.NewBlock("window_end")
		ck.Br(wc, loop, after)
		ck.SetBlock(after)
		bv := ck.LoadG("b", acc)
		eq := ck.Bin("eq", mir.BinEq, a, bv)
		ck.Assert(eq, "injected: cas mutator tore plain double read")
		g.body(ck, 0, true)
		ck.Ret(mir.None)

		mu := g.b.Func("bugcasmutator")
		mu.Sleep(mir.Imm(mir.Word(5 + g.rng.Intn(30))))
		mp := mu.AddrG("mp", acc)
		mu.CAS("r1", mp, mir.Imm(2), mir.Imm(0))
		mu.Yield()
		mu.CAS("r2", mp, mir.Imm(0), mir.Imm(2))
		mu.Ret(mir.None)
		g.bugOut = acc
		g.info = &BugInfo{Kind: BugCASABA, Global: "bug_acc",
			ThreadFns: [2]string{"bugcaschecker", "bugcasmutator"}}
	}

	m := g.b.Func("main")
	if g.cfg.Bug == BugOrder {
		tw := m.Spawn("bw", "bugwriter")
		tr := m.Spawn("br", "bugreader")
		// Main keeps doing concurrent-safe work while the race unfolds.
		g.body(m, len(g.funcNames), true)
		m.Join(tr)
		m.Join(tw)
		m.Ret(mir.Imm(0))
		return g.b.MustModule()
	}
	if g.cfg.Bug != BugNone {
		t1 := m.Spawn("b1", g.info.ThreadFns[0])
		t2 := m.Spawn("b2", g.info.ThreadFns[1])
		// Main keeps doing concurrent-safe work while the bug unfolds.
		g.body(m, len(g.funcNames), true)
		m.Join(t1)
		m.Join(t2)
		// Deterministic observable after both joins: the template global
		// has a schedule-independent final value (bug_val settles to 2,
		// bug_cnt to the number of injected threads).
		v := m.LoadG("bugout", g.bugOut)
		m.Output("bug", v)
		m.Ret(mir.Imm(0))
		return g.b.MustModule()
	}
	if g.cfg.Threads > 0 {
		var tids []mir.Operand
		for i := 0; i < g.cfg.Threads; i++ {
			tids = append(tids, m.Spawn(fmt.Sprintf("t%d", i), "worker", mir.Imm(int64(i+1))))
		}
		g.body(m, len(g.funcNames), true)
		for _, t := range tids {
			m.Join(t)
		}
		// Deterministic observables after all joins.
		sum := m.LoadG("sum", g.counterGids[0])
		m.Output("counter", sum)
		m.Ret(sum)
	} else {
		g.body(m, len(g.funcNames), false)
		// Output every data global: the full observable state.
		for i, gid := range g.gids {
			v := m.LoadG(fmt.Sprintf("out%d", i), gid)
			m.Output(fmt.Sprintf("g%d", i), v)
		}
		ret := g.value(m)
		m.Ret(ret)
	}
	return g.b.MustModule()
}

// reg returns a fresh register name.
func (g *gen) reg() string {
	g.nreg++
	return fmt.Sprintf("r%d", g.nreg)
}

// value produces an operand: an immediate or a register computed from
// prior state.
func (g *gen) value(f *mir.FuncBuilder) mir.Operand {
	switch g.rng.Intn(3) {
	case 0:
		return mir.Imm(int64(g.rng.Intn(100)))
	case 1:
		return f.LoadG(g.reg(), g.gids[g.rng.Intn(len(g.gids))])
	default:
		a := mir.Imm(int64(g.rng.Intn(50)))
		b := f.LoadG(g.reg(), g.gids[g.rng.Intn(len(g.gids))])
		ops := []mir.BinOp{mir.BinAdd, mir.BinSub, mir.BinMul, mir.BinXor, mir.BinAnd, mir.BinOr}
		return f.Bin(g.reg(), ops[g.rng.Intn(len(ops))], a, b)
	}
}

// condWait emits the canonical guarded wait loop
//
//	lock m; while (!flag) wait cv, m; unlock m
//
// with a bounded yield window between the predicate check and the wait.
// The window is the bug's preemption point: a peer that stores the flag
// and signals entirely inside it (without the mutex — that unlocked store
// is the template's labelled race) wakes nobody, and the subsequent wait
// can then block forever. Hardened programs convert the wait to its timed
// form, whose timeout rolls back past the (compensated) lock and re-reads
// the flag, which the peer has set by then.
func (g *gen) condWait(f *mir.FuncBuilder, cv, mtx, flag int) {
	mp := f.AddrG("mp", mtx)
	cp := f.AddrG("cvp", cv)
	f.Lock(mp)
	loop := f.Label("cvloop")
	r := f.LoadG("rdy", flag)
	done := f.NewBlock("cvdone")
	slow := f.NewBlock("cvslow")
	f.Br(r, done, slow)
	f.SetBlock(slow)
	f.Const("cwi", 0)
	w := f.Label("cvwindow")
	f.Yield()
	f.Bin("cwi", mir.BinAdd, f.R("cwi"), mir.Imm(1))
	wc := f.Bin("cwc", mir.BinLt, f.R("cwi"), mir.Imm(40))
	arm := f.NewBlock("cvarm")
	f.Br(wc, w, arm)
	f.SetBlock(arm)
	f.Wait(cp, mp)
	f.Jmp(loop)
	f.SetBlock(done)
	f.Unlock(mp)
}

// body emits a random statement sequence. mt suppresses statements whose
// observable effect would depend on thread interleaving (outputs and
// shared-global writes while workers run).
func (g *gen) body(f *mir.FuncBuilder, callBudget int, mt bool) {
	n := g.cfg.StmtsPerFunc/2 + g.rng.Intn(g.cfg.StmtsPerFunc)
	for i := 0; i < n; i++ {
		g.stmt(f, callBudget, mt)
	}
}

func (g *gen) stmt(f *mir.FuncBuilder, callBudget int, mt bool) {
	const kinds = 10
	switch k := g.rng.Intn(kinds); k {
	case 0: // register arithmetic
		a := g.value(f)
		b := g.value(f)
		f.Bin(g.reg(), mir.BinAdd, a, b)

	case 1: // global write (single-threaded only: workers race otherwise)
		if mt {
			f.Nop()
			return
		}
		f.StoreG(g.gids[g.rng.Intn(len(g.gids))], g.value(f))

	case 2: // stack slot round trip
		slot := fmt.Sprintf("s%d", g.rng.Intn(3))
		f.StoreS(slot, g.value(f))
		f.LoadS(g.reg(), slot)

	case 3: // heap block: alloc, store, load, free (private to the frame)
		size := int64(2 + g.rng.Intn(4))
		p := f.Alloc(g.reg(), mir.Imm(size))
		idx := mir.Imm(int64(g.rng.Intn(int(size))))
		addr := f.Bin(g.reg(), mir.BinAdd, p, idx)
		f.Store(addr, g.value(f))
		f.Load(g.reg(), addr)
		if g.rng.Intn(2) == 0 {
			f.Free(p)
		}

	case 4: // always-true assertion (three shapes)
		v := g.value(f)
		switch g.rng.Intn(3) {
		case 0:
			c := f.Bin(g.reg(), mir.BinEq, v, v)
			f.Assert(c, "gen: v == v")
		case 1:
			c := f.Bin(g.reg(), mir.BinOr, v, mir.Imm(1))
			f.Assert(c, "gen: v|1 != 0")
		default:
			masked := f.Bin(g.reg(), mir.BinAnd, v, mir.Imm(255))
			c := f.Bin(g.reg(), mir.BinGe, masked, mir.Imm(0))
			f.Assert(c, "gen: (v&255) >= 0")
		}

	case 5: // output (single-threaded only: ordering is observable)
		if mt {
			f.Yield()
			return
		}
		f.Output("gen", g.value(f))

	case 6: // nested or lone lock over a protected update, ascending order
		li := g.rng.Intn(len(g.lids) - 1)
		outer := f.AddrG(g.reg(), g.lids[li])
		f.Lock(outer)
		if g.rng.Intn(2) == 0 {
			inner := f.AddrG(g.reg(), g.lids[li+1])
			f.Lock(inner)
			c := f.LoadG(g.reg(), g.counterGids[1])
			c1 := f.Bin(g.reg(), mir.BinAdd, c, mir.Imm(1))
			f.StoreG(g.counterGids[1], c1)
			f.Unlock(inner)
		}
		f.Unlock(outer)

	case 7: // call a helper (acyclic: only lower-numbered helpers).
		// Concurrent contexts never call helpers: helper bodies contain
		// outputs and unprotected global writes, which are only safe on
		// the main thread.
		if callBudget <= 0 || mt {
			f.Nop()
			return
		}
		callee := g.funcNames[g.rng.Intn(min(callBudget, len(g.funcNames)))]
		f.Call(g.reg(), callee, g.value(f))

	case 8: // bounded loop: fixed trip count over register work
		trips := int64(2 + g.rng.Intn(6))
		iv := g.reg()
		f.Const(iv, 0)
		loop := f.Label(fmt.Sprintf("loop%d", g.nreg))
		acc := g.value(f)
		f.Bin(g.reg(), mir.BinAdd, acc, mir.Imm(1))
		f.Bin(iv, mir.BinAdd, f.R(iv), mir.Imm(1))
		c := f.Bin(g.reg(), mir.BinLt, f.R(iv), mir.Imm(trips))
		after := f.NewBlock(fmt.Sprintf("after%d", g.nreg))
		f.Br(c, loop, after)
		f.SetBlock(after)

	default: // if/else diamond on an arbitrary condition
		c := g.value(f)
		then := f.NewBlock(fmt.Sprintf("then%d", g.nreg))
		els := f.NewBlock(fmt.Sprintf("else%d", g.nreg))
		join := f.NewBlock(fmt.Sprintf("join%d", g.nreg))
		f.Br(c, then, els)
		f.SetBlock(then)
		if !mt {
			f.StoreG(g.gids[g.rng.Intn(len(g.gids))], g.value(f))
		} else {
			f.Bin(g.reg(), mir.BinAdd, g.value(f), mir.Imm(1))
		}
		f.Jmp(join)
		f.SetBlock(els)
		f.Bin(g.reg(), mir.BinXor, g.value(f), mir.Imm(3))
		f.Jmp(join)
		f.SetBlock(join)
	}
}
