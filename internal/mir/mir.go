// Package mir defines a small SSA-flavoured intermediate representation
// ("MIR") that stands in for the LLVM bitcode ConAir operates on.
//
// MIR preserves exactly the instruction taxonomy that ConAir's analyses are
// defined over:
//
//   - virtual registers: per-frame mutable word-sized values whose writes are
//     idempotency-safe, because the recovery checkpoint saves the whole
//     register image (the stand-in for setjmp + -no-stack-slot-sharing);
//   - stack slots: per-frame named locals not held in registers; writes to
//     them are idempotency-destroying;
//   - globals and the heap: shared memory, addressed through a flat 64-bit
//     address space; writes are idempotency-destroying and loads through an
//     arbitrary pointer are potential segmentation-fault sites;
//   - calls, I/O (output), free and unlock: idempotency-destroying;
//   - alloc and lock/timedlock: permitted inside reexecution regions with
//     compensation (ConAir §4.1);
//   - condition variables (wait/signal/broadcast), bounded channels
//     (chsend/chrecv/chclose) and atomic compare-and-swap (cas): the
//     richer synchronization surface; all idempotency-destroying (each
//     consumes or publishes communication that reexecution cannot
//     replay), see class.go for the per-op rules.
//
// A module holds globals and functions; a function holds basic blocks of
// instructions, terminated by a branch, jump or return. Programs can be
// built with the Builder, parsed from the textual syntax (see parser.go) and
// printed back (see print.go). The interpreter in internal/interp executes
// modules directly; the transformer in internal/transform rewrites them.
package mir

import "fmt"

// Word is the machine word of the MIR virtual machine. Every register,
// stack slot, global and heap cell holds one Word. Pointers are Words too:
// addresses index the interpreter's flat address space, where values below
// interp.LowerBound are invalid to dereference (mirroring ConAir's pointer
// sanity check, Figure 5c of the paper).
type Word = int64

// Op enumerates MIR instruction opcodes.
type Op uint8

const (
	// OpConst: dst = Imm.
	OpConst Op = iota
	// OpBin: dst = A <BinOp> B.
	OpBin
	// OpLoadG: dst = *global (a shared-memory read).
	OpLoadG
	// OpStoreG: *global = A (a shared-memory write; idempotency-destroying).
	OpStoreG
	// OpAddrG: dst = &global (address-of; safe).
	OpAddrG
	// OpLoad: dst = *(A) through a pointer; a potential segfault site.
	OpLoad
	// OpStore: *(A) = B through a pointer; destroying and a potential
	// segfault site.
	OpStore
	// OpLoadS: dst = stack slot Slot (safe to reexecute).
	OpLoadS
	// OpStoreS: stack slot Slot = A (idempotency-destroying: the slot is
	// not part of the saved register image).
	OpStoreS
	// OpAlloc: dst = address of a fresh heap block of A words. Permitted in
	// reexecution regions; compensated by an implicit free on rollback.
	OpAlloc
	// OpFree: free the heap block at A (idempotency-destroying).
	OpFree
	// OpLock: acquire the mutex at address A; blocks until acquired.
	// Permitted in reexecution regions; compensated by unlock on rollback.
	OpLock
	// OpTimedLock: dst = 1 if the mutex at address A was acquired within
	// Timeout interpreter steps, 0 on timeout. Emitted by the transformer
	// when it converts lock acquisitions into deadlock failure sites.
	OpTimedLock
	// OpUnlock: release the mutex at address A (idempotency-destroying).
	OpUnlock
	// OpCall: dst = Callee(Args...). Idempotency-destroying in the basic
	// design (ConAir §3.2.1).
	OpCall
	// OpSpawn: dst = thread id of a new thread running Callee(Args...).
	OpSpawn
	// OpJoin: block until thread A exits.
	OpJoin
	// OpOutput: emit A to the program output stream, tagged with Text.
	// I/O is idempotency-destroying and a potential wrong-output site.
	OpOutput
	// OpAssert: fail the program with an assertion failure if A == 0.
	// Kind Oracle marks a developer-provided output-correctness condition
	// (Figure 5b); Plain marks an ordinary assert (Figure 5a).
	OpAssert
	// OpYield: scheduler hint; semantically a no-op and safe to reexecute.
	OpYield
	// OpSleep: block this thread for A interpreter steps. Used by the
	// benchmarks the way the paper uses injected sleeps to force
	// failure-inducing interleavings. Safe to reexecute.
	OpSleep
	// OpNop: no operation.
	OpNop
	// OpWait: condition-variable wait. A is the condvar address, B the
	// mutex address; the calling thread must hold the mutex. Atomically
	// releases the mutex and blocks until a signal/broadcast is delivered,
	// then re-acquires the mutex before returning (Mesa semantics).
	//
	// The timed form (Timeout > 0, Dst set) is emitted by the transformer
	// when it hardens a wait as a deadlock failure site: dst = 1 when the
	// wait was signalled (mutex re-acquired), 0 when Timeout interpreter
	// steps elapsed un-signalled. On timeout the mutex is deliberately
	// LEFT RELEASED: the recovery path rolls back to a checkpoint planted
	// before the mutex acquisition (wait is idempotency-destroying, so the
	// region of any later site starts after it, and its own region reaches
	// back across the compensated lock), and reexecution re-acquires the
	// mutex and re-reads the predicate. A wait that already consumed a
	// signal never times out — otherwise a rollback could re-arm the wait
	// and consume a second signal (see the idempotent-region rule in
	// class.go).
	OpWait
	// OpSignal: wake exactly one waiter of the condvar at address A (the
	// longest-blocked one). A signal with no waiter is lost — exactly the
	// lost-signal bug shape. Idempotency-destroying.
	OpSignal
	// OpBroadcast: wake every waiter of the condvar at address A.
	// Idempotency-destroying.
	OpBroadcast
	// OpChSend: send value B into the bounded channel at address A;
	// blocks while the channel is full. Sending on a closed channel is a
	// program failure (panic). Channel state is created lazily at the
	// first channel operation on an address; its capacity is the value
	// stored in the addressed cell at that moment, clamped to >= 1.
	//
	// The timed form (Timeout > 0, Dst set) is the transformer's hardened
	// deadlock-site form: dst = 1 when the value was sent, 0 when Timeout
	// steps elapsed with the channel full (nothing sent).
	OpChSend
	// OpChRecv: dst = next value from the bounded channel at address A;
	// blocks while the channel is empty and open. Receiving from a closed,
	// drained channel yields 0 without blocking. Idempotency-destroying
	// (the consumed value cannot be re-received).
	OpChRecv
	// OpChClose: close the channel at address A, waking blocked
	// receivers (they drain the buffer, then read 0) and failing blocked
	// senders. Closing twice is a program failure. Idempotency-destroying.
	OpChClose
	// OpCAS: atomic compare-and-swap. dst = 1 and *(A) = Args[0] if
	// *(A) == B, else dst = 0. A single scheduling step: no other thread
	// can intervene between the compare and the swap. A potential
	// segmentation-fault site (it dereferences A) and, when it succeeds,
	// a shared-memory write; always idempotency-destroying.
	OpCAS

	// Instructions below are emitted only by the ConAir transformer.

	// OpCheckpoint: a reexecution point. Saves the current frame's register
	// image, program counter and frame depth into the thread-local jump
	// buffer and bumps the thread's region counter (the paper's setjmp plus
	// counter increment, §3.3/§4.1).
	OpCheckpoint
	// OpRollback: a recovery attempt at failure site Site. If the site's
	// thread-local retry count is below MaxRetry and a checkpoint is
	// active, it runs compensation (frees region allocations, releases
	// region locks) and longjmps to the most recent checkpoint; otherwise
	// execution falls through to the next instruction (the real failure).
	OpRollback
	// OpFail: unconditionally report a failure of kind FailKind. The
	// transformer plants this after exhausted recovery attempts
	// (the paper's call of assert_fail after the retry loop, Figure 6).
	OpFail
	// OpSleepRand: block for a scheduler-chosen duration in [0, A] steps.
	// Planted at deadlock failure sites to break recovery livelock (§3.3).
	OpSleepRand

	// OpBr: terminator; branch to Then if A != 0 else to Else.
	OpBr
	// OpJmp: terminator; jump to Then.
	OpJmp
	// OpRet: terminator; return A (or 0 if A is OperandNone) to the caller.
	// Returning from a thread's entry function exits the thread.
	OpRet
)

var opNames = [...]string{
	OpConst:      "const",
	OpBin:        "bin",
	OpLoadG:      "loadg",
	OpStoreG:     "storeg",
	OpAddrG:      "addrg",
	OpLoad:       "load",
	OpStore:      "store",
	OpLoadS:      "loads",
	OpStoreS:     "stores",
	OpAlloc:      "alloc",
	OpFree:       "free",
	OpLock:       "lock",
	OpTimedLock:  "timedlock",
	OpUnlock:     "unlock",
	OpCall:       "call",
	OpSpawn:      "spawn",
	OpJoin:       "join",
	OpOutput:     "output",
	OpAssert:     "assert",
	OpYield:      "yield",
	OpSleep:      "sleep",
	OpNop:        "nop",
	OpWait:       "wait",
	OpSignal:     "signal",
	OpBroadcast:  "broadcast",
	OpChSend:     "chsend",
	OpChRecv:     "chrecv",
	OpChClose:    "chclose",
	OpCAS:        "cas",
	OpCheckpoint: "checkpoint",
	OpRollback:   "rollback",
	OpFail:       "fail",
	OpSleepRand:  "sleeprand",
	OpBr:         "br",
	OpJmp:        "jmp",
	OpRet:        "ret",
}

// String returns the textual mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether the opcode ends a basic block. OpFail is a
// terminator because it never falls through: it reports the failure and
// ends the run.
func (op Op) IsTerminator() bool {
	switch op {
	case OpBr, OpJmp, OpRet, OpFail:
		return true
	}
	return false
}

// BinOp enumerates the arithmetic and comparison operators of OpBin.
type BinOp uint8

// Binary operators. Comparisons yield 1 or 0.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = [...]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinMod: "mod", BinAnd: "and", BinOr: "or", BinXor: "xor",
	BinShl: "shl", BinShr: "shr", BinEq: "eq", BinNe: "ne",
	BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
}

// String returns the textual mnemonic of the operator.
func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("binop(%d)", uint8(b))
}

// Eval applies the operator to two words. Division and modulus by zero
// yield 0 rather than trapping: MIR models concurrency failures, not
// arithmetic ones.
func (b BinOp) Eval(x, y Word) Word {
	switch b {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		if y == 0 {
			return 0
		}
		return x / y
	case BinMod:
		if y == 0 {
			return 0
		}
		return x % y
	case BinAnd:
		return x & y
	case BinOr:
		return x | y
	case BinXor:
		return x ^ y
	case BinShl:
		return x << (uint64(y) & 63)
	case BinShr:
		return x >> (uint64(y) & 63)
	case BinEq:
		return bool2w(x == y)
	case BinNe:
		return bool2w(x != y)
	case BinLt:
		return bool2w(x < y)
	case BinLe:
		return bool2w(x <= y)
	case BinGt:
		return bool2w(x > y)
	case BinGe:
		return bool2w(x >= y)
	}
	return 0
}

func bool2w(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// ParseBinOp maps a mnemonic back to its operator.
func ParseBinOp(s string) (BinOp, bool) {
	for i, n := range binNames {
		if n == s {
			return BinOp(i), true
		}
	}
	return 0, false
}

// OperandKind discriminates Operand payloads.
type OperandKind uint8

// Operand kinds.
const (
	// OperandNone marks an absent operand (e.g. a bare "ret").
	OperandNone OperandKind = iota
	// OperandReg names a virtual register by per-function index.
	OperandReg
	// OperandImm is an immediate constant.
	OperandImm
)

// Operand is a register reference or immediate value.
type Operand struct {
	Kind OperandKind
	Reg  int  // register index when Kind == OperandReg
	Imm  Word // constant when Kind == OperandImm
}

// None is the absent operand.
var None = Operand{Kind: OperandNone}

// Reg returns a register operand.
func Reg(i int) Operand { return Operand{Kind: OperandReg, Reg: i} }

// Imm returns an immediate operand.
func Imm(v Word) Operand { return Operand{Kind: OperandImm, Imm: v} }

// IsReg reports whether the operand is a register reference.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// AssertKind distinguishes ordinary assertions from output oracles.
type AssertKind uint8

// Assertion kinds.
const (
	// AssertPlain is an ordinary developer assertion (Figure 5a).
	AssertPlain AssertKind = iota
	// AssertOracle is a developer-specified output-correctness condition
	// guarding an output statement (Figure 5b). Its failure is a
	// wrong-output failure rather than an assertion failure.
	AssertOracle
)

// FailKind enumerates the failure classes of the paper's evaluation:
// assertion violations, wrong outputs, segmentation faults and deadlocks
// (plus Hang for undetected deadlocks in unhardened programs).
type FailKind uint8

// Failure kinds.
const (
	FailAssert FailKind = iota
	FailWrongOutput
	FailSegfault
	FailDeadlock
	FailHang
	// FailPanic marks a run whose host goroutine panicked (an interpreter
	// or harness defect, not a modeled program failure). The runner's
	// per-job recovery converts such panics into failed results carrying
	// the stack, so one bad job never takes a batch down.
	FailPanic
)

var failNames = [...]string{
	FailAssert:      "assert",
	FailWrongOutput: "wrong-output",
	FailSegfault:    "segfault",
	FailDeadlock:    "deadlock",
	FailHang:        "hang",
	FailPanic:       "panic",
}

// String returns the failure-kind name used in reports.
func (k FailKind) String() string {
	if int(k) < len(failNames) {
		return failNames[k]
	}
	return fmt.Sprintf("failkind(%d)", uint8(k))
}

// Instr is one MIR instruction. Which fields are meaningful depends on Op;
// the zero value of unused fields is ignored. Instructions are stored by
// value inside blocks: analyses address them as (function, block, index)
// positions rather than by pointer identity.
type Instr struct {
	Op  Op
	Bin BinOp // operator for OpBin

	Dst int // destination register index, or -1 when there is none

	A, B Operand // generic operands

	Global int // global index for OpLoadG/OpStoreG/OpAddrG
	Slot   int // stack-slot index for OpLoadS/OpStoreS
	Callee int // function index for OpCall/OpSpawn
	Args   []Operand

	Then, Else int // successor block indices for OpBr/OpJmp

	Imm Word // constant for OpConst

	AssertKind AssertKind // for OpAssert
	FailKind   FailKind   // for OpFail

	Timeout  int   // steps, for OpTimedLock and timed OpWait/OpChSend
	Site     int   // failure-site id, for OpRollback/OpFail/transformed sites
	MaxRetry int64 // retry bound, for OpRollback

	Text string // message for OpAssert/OpOutput/OpFail; label for debugging
}

// HasDst reports whether the instruction defines a register.
func (in *Instr) HasDst() bool { return in.Dst >= 0 }

// Uses returns the register indices the instruction reads. The result is
// appended to buf to avoid allocation in hot analysis loops.
func (in *Instr) Uses(buf []int) []int {
	add := func(o Operand) {
		if o.Kind == OperandReg {
			buf = append(buf, o.Reg)
		}
	}
	add(in.A)
	add(in.B)
	for _, a := range in.Args {
		add(a)
	}
	return buf
}

// Block is a basic block: a straight-line instruction sequence whose last
// instruction is a terminator.
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction. It panics on an empty
// block; the verifier rejects those before anything else runs.
func (b *Block) Terminator() *Instr {
	return &b.Instrs[len(b.Instrs)-1]
}

// Function is a MIR function: named registers (parameters first), named
// stack slots, and basic blocks with block 0 as entry.
type Function struct {
	Name      string
	NumParams int
	// RegNames holds one name per virtual register; registers are addressed
	// by index everywhere else.
	RegNames []string
	// SlotNames holds one name per stack slot.
	SlotNames []string
	Blocks    []Block
}

// NumRegs returns the size of the function's virtual register file.
func (f *Function) NumRegs() int { return len(f.RegNames) }

// Entry returns the entry block index (always 0).
func (f *Function) Entry() int { return 0 }

// BlockIndex returns the index of the named block, or -1.
func (f *Function) BlockIndex(name string) int {
	for i := range f.Blocks {
		if f.Blocks[i].Name == name {
			return i
		}
	}
	return -1
}

// Global is a module-level shared cell (one word), optionally used as a
// mutex by lock/unlock instructions.
type Global struct {
	Name string
	Init Word
}

// Module is a complete MIR program: globals plus functions. Function 0 need
// not be main; the entry function is located by name.
type Module struct {
	Name      string
	Globals   []Global
	Functions []Function
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	for i := range m.Functions {
		if m.Functions[i].Name == name {
			return i
		}
	}
	return -1
}

// GlobalIndex returns the index of the named global, or -1.
func (m *Module) GlobalIndex(name string) int {
	for i := range m.Globals {
		if m.Globals[i].Name == name {
			return i
		}
	}
	return -1
}

// Main returns the index of the "main" function, or -1.
func (m *Module) Main() int { return m.FuncIndex("main") }

// NumInstrs counts every instruction in the module; the benchmarks report
// it as the reconstruction-size analogue of the paper's per-app LOC.
func (m *Module) NumInstrs() int {
	n := 0
	for i := range m.Functions {
		for j := range m.Functions[i].Blocks {
			n += len(m.Functions[i].Blocks[j].Instrs)
		}
	}
	return n
}

// Pos addresses one instruction as (function, block, index-within-block).
type Pos struct {
	Fn, Block, Index int
}

// String renders the position as fn:block:index.
func (p Pos) String() string { return fmt.Sprintf("%d:%d:%d", p.Fn, p.Block, p.Index) }

// Less orders positions lexicographically; used for deterministic reports.
func (p Pos) Less(q Pos) bool {
	if p.Fn != q.Fn {
		return p.Fn < q.Fn
	}
	if p.Block != q.Block {
		return p.Block < q.Block
	}
	return p.Index < q.Index
}

// At returns the instruction at position p.
func (m *Module) At(p Pos) *Instr {
	return &m.Functions[p.Fn].Blocks[p.Block].Instrs[p.Index]
}

// Clone returns a deep copy of the module, so transformation never mutates
// the caller's original program.
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name}
	out.Globals = append([]Global(nil), m.Globals...)
	out.Functions = make([]Function, len(m.Functions))
	for i := range m.Functions {
		f := &m.Functions[i]
		nf := Function{
			Name:      f.Name,
			NumParams: f.NumParams,
			RegNames:  append([]string(nil), f.RegNames...),
			SlotNames: append([]string(nil), f.SlotNames...),
			Blocks:    make([]Block, len(f.Blocks)),
		}
		for j := range f.Blocks {
			b := &f.Blocks[j]
			nb := Block{Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
			for k := range b.Instrs {
				in := b.Instrs[k]
				if in.Args != nil {
					in.Args = append([]Operand(nil), in.Args...)
				}
				nb.Instrs[k] = in
			}
			nf.Blocks[j] = nb
		}
		out.Functions[i] = nf
	}
	return out
}
