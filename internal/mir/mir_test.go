package mir

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleSrc = `
module sample
global counter = 0
global mtx = 0

func main() {
entry:
  %t = spawn worker(7)
  %x = loadg @counter
  %y = add %x, 1
  storeg @counter, %y
  br %y, done, more
more:
  %p = addrg @mtx
  lock %p
  unlock %p
  join %t
  jmp done
done:
  output "count", %y
  ret 0
}

func worker(%n) {
entry:
  %m = mul %n, 2
  assert %m, "worker arg"
  stores $tmp, %m
  %z = loads $tmp
  ret %z
}
`

func TestParsePrintRoundTrip(t *testing.T) {
	m, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse printed module: %v\n%s", err, text)
	}
	if Print(m2) != text {
		t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", text, Print(m2))
	}
}

func TestParsedShape(t *testing.T) {
	m := MustParse(sampleSrc)
	if m.Name != "sample" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Globals) != 2 || m.GlobalIndex("mtx") != 1 {
		t.Errorf("globals parsed wrong: %+v", m.Globals)
	}
	mi := m.Main()
	if mi < 0 {
		t.Fatal("no main")
	}
	f := &m.Functions[mi]
	if len(f.Blocks) != 3 {
		t.Fatalf("main has %d blocks, want 3", len(f.Blocks))
	}
	wi := m.FuncIndex("worker")
	if wi < 0 || m.Functions[wi].NumParams != 1 {
		t.Fatalf("worker not parsed correctly")
	}
	spawn := &f.Blocks[0].Instrs[0]
	if spawn.Op != OpSpawn || spawn.Callee != wi || len(spawn.Args) != 1 {
		t.Errorf("spawn parsed wrong: %+v", spawn)
	}
	if m.Functions[wi].SlotNames[0] != "tmp" {
		t.Errorf("slot names: %v", m.Functions[wi].SlotNames)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown instr":    "func main() {\nentry:\n  frobnicate %x\n}",
		"unknown global":   "func main() {\nentry:\n  %x = loadg @nope\n  ret\n}",
		"unknown block":    "func main() {\nentry:\n  jmp nowhere\n}",
		"unknown callee":   "func main() {\nentry:\n  call nope()\n  ret\n}",
		"redeclared block": "func main() {\nentry:\n  ret\nentry:\n  ret\n}",
		"main with params": "func main(%x) {\nentry:\n  ret\n}",
		"no terminator":    "func main() {\nentry:\n  %x = const 1\n}",
		"instr after term": "func main() {\nentry:\n  ret\n  %x = const 1\n}",
		"bad arity":        "func f(%a, %b) {\nentry:\n  ret\n}\nfunc main() {\nentry:\n  call f(1)\n  ret\n}",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse/verify error, got none", name)
		}
	}
}

func TestBuilderProducesVerifiedModule(t *testing.T) {
	b := NewBuilder("built")
	g := b.Global("g", 5)
	f := b.Func("main")
	x := f.LoadG("x", g)
	one := f.Const("one", 1)
	y := f.Bin("y", BinAdd, x, one)
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	f.Br(y, thenB, elseB)
	f.SetBlock(thenB)
	f.Output("val", y)
	f.Ret(Imm(0))
	f.SetBlock(elseB)
	f.Ret(Imm(1))
	m, err := b.Module()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	if got := m.NumInstrs(); got != 7 {
		t.Errorf("NumInstrs = %d, want 7", got)
	}
	// Round-trip through text too.
	if _, err := Parse(Print(m)); err != nil {
		t.Fatalf("builder output does not reparse: %v\n%s", err, Print(m))
	}
}

func TestBuilderForwardCall(t *testing.T) {
	b := NewBuilder("fwd")
	f := b.Func("main")
	f.Call("", "helper")
	f.Ret(None)
	h := b.Func("helper")
	h.Ret(None)
	m, err := b.Module()
	if err != nil {
		t.Fatalf("forward call: %v", err)
	}
	call := &m.Functions[0].Blocks[0].Instrs[0]
	if call.Callee != m.FuncIndex("helper") {
		t.Errorf("forward call not fixed up: callee=%d", call.Callee)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	f.Call("", "missing")
	f.Ret(None)
	if _, err := b.Module(); err == nil {
		t.Error("undeclared callee should fail")
	}

	b2 := NewBuilder("bad2")
	b2.Global("g", 0)
	b2.Global("g", 1)
	f2 := b2.Func("main")
	f2.Ret(None)
	if _, err := b2.Module(); err == nil {
		t.Error("duplicate global should fail")
	}
}

func TestBuilderAutoTerminates(t *testing.T) {
	b := NewBuilder("auto")
	f := b.Func("main")
	f.Const("x", 1)
	m, err := b.Module()
	if err != nil {
		t.Fatalf("auto-terminate: %v", err)
	}
	blk := &m.Functions[0].Blocks[0]
	if blk.Terminator().Op != OpRet {
		t.Errorf("expected implicit ret, got %v", blk.Terminator().Op)
	}
}

func TestCFG(t *testing.T) {
	m := MustParse(`
func main() {
a:
  %x = const 1
  br %x, b, c
b:
  jmp d
c:
  jmp d
d:
  br %x, a, e
e:
  ret
}
func dead() {
x:
  ret
}`)
	f := &m.Functions[0]
	c := BuildCFG(f)
	if len(c.Succs[0]) != 2 {
		t.Errorf("block a succs = %v", c.Succs[0])
	}
	d := f.BlockIndex("d")
	if len(c.Preds[d]) != 2 {
		t.Errorf("block d preds = %v", c.Preds[d])
	}
	a := f.BlockIndex("a")
	if len(c.Preds[a]) != 1 {
		t.Errorf("block a preds = %v (loop edge expected)", c.Preds[a])
	}
	if c.RPO[0] != 0 {
		t.Errorf("RPO must start at entry, got %v", c.RPO)
	}
	for b := range f.Blocks {
		if !c.Reachable[b] {
			t.Errorf("block %d should be reachable", b)
		}
	}
	e := f.BlockIndex("e")
	if !c.ReachesWithout(a, e, nil) {
		t.Error("a should reach e")
	}
	if c.ReachesWithout(a, e, map[int]bool{d: true}) {
		t.Error("a should not reach e when d is a barrier")
	}
}

func TestCallSites(t *testing.T) {
	m := MustParse(`
func callee(%x) {
e:
  ret %x
}
func one() {
e:
  %a = call callee(1)
  ret
}
func two() {
e:
  %a = call callee(2)
  %b = spawn callee(3)
  ret
}`)
	sites := CallSites(m, m.FuncIndex("callee"))
	if len(sites) != 3 {
		t.Fatalf("CallSites = %v, want 3", sites)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in    Instr
		basic DestroyClass
		ext   DestroyClass
	}{
		{Instr{Op: OpConst}, DestroyNone, DestroyNone},
		{Instr{Op: OpBin}, DestroyNone, DestroyNone},
		{Instr{Op: OpLoadG}, DestroyNone, DestroyNone},
		{Instr{Op: OpLoad}, DestroyNone, DestroyNone},
		{Instr{Op: OpLoadS}, DestroyNone, DestroyNone},
		{Instr{Op: OpStoreG}, DestroySharedWrite, DestroySharedWrite},
		{Instr{Op: OpStore}, DestroySharedWrite, DestroySharedWrite},
		{Instr{Op: OpStoreS}, DestroyLocalWrite, DestroyLocalWrite},
		{Instr{Op: OpOutput}, DestroyIO, DestroyIO},
		{Instr{Op: OpFree}, DestroyRelease, DestroyRelease},
		{Instr{Op: OpUnlock}, DestroyRelease, DestroyRelease},
		{Instr{Op: OpCall}, DestroyCall, DestroyCall},
		{Instr{Op: OpAlloc}, DestroyCall, DestroyNone},
		{Instr{Op: OpLock}, DestroyCall, DestroyNone},
		{Instr{Op: OpTimedLock}, DestroyCall, DestroyNone},
		{Instr{Op: OpYield}, DestroyNone, DestroyNone},
		{Instr{Op: OpSleep}, DestroyNone, DestroyNone},
	}
	for _, c := range cases {
		if got := Classify(&c.in, PolicyBasic); got != c.basic {
			t.Errorf("Classify(%v, basic) = %v, want %v", c.in.Op, got, c.basic)
		}
		if got := Classify(&c.in, PolicyExtended); got != c.ext {
			t.Errorf("Classify(%v, extended) = %v, want %v", c.in.Op, got, c.ext)
		}
	}
}

func TestBinOpEval(t *testing.T) {
	cases := []struct {
		op      BinOp
		x, y, w Word
	}{
		{BinAdd, 2, 3, 5},
		{BinSub, 2, 3, -1},
		{BinMul, 4, 3, 12},
		{BinDiv, 7, 2, 3},
		{BinDiv, 7, 0, 0},
		{BinMod, 7, 3, 1},
		{BinMod, 7, 0, 0},
		{BinAnd, 6, 3, 2},
		{BinOr, 6, 3, 7},
		{BinXor, 6, 3, 5},
		{BinShl, 1, 4, 16},
		{BinShr, 16, 4, 1},
		{BinEq, 3, 3, 1},
		{BinEq, 3, 4, 0},
		{BinNe, 3, 4, 1},
		{BinLt, 3, 4, 1},
		{BinLe, 4, 4, 1},
		{BinGt, 5, 4, 1},
		{BinGe, 4, 5, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.w {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.w)
		}
	}
}

func TestBinOpMnemonicsRoundTrip(t *testing.T) {
	for op := BinAdd; op <= BinGe; op++ {
		got, ok := ParseBinOp(op.String())
		if !ok || got != op {
			t.Errorf("ParseBinOp(%q) = %v,%v", op.String(), got, ok)
		}
	}
	if _, ok := ParseBinOp("nope"); ok {
		t.Error("ParseBinOp accepted garbage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := MustParse(sampleSrc)
	c := m.Clone()
	c.Globals[0].Init = 99
	c.Functions[0].Blocks[0].Instrs[0].Op = OpNop
	c.Functions[1].Blocks[0].Instrs[0].Args = nil
	if m.Globals[0].Init == 99 {
		t.Error("clone shares globals")
	}
	if m.Functions[0].Blocks[0].Instrs[0].Op == OpNop {
		t.Error("clone shares instructions")
	}
}

func TestVerifyCatchesBadIndices(t *testing.T) {
	m := MustParse(sampleSrc)
	m.Functions[0].Blocks[0].Instrs[0].Callee = 99
	if err := Verify(m); err == nil {
		t.Error("verify should reject out-of-range callee")
	}

	m2 := MustParse(sampleSrc)
	m2.Functions[0].Blocks[0].Instrs[1].Global = -1
	if err := Verify(m2); err == nil {
		t.Error("verify should reject out-of-range global")
	}

	m3 := MustParse(sampleSrc)
	m3.Functions[0].Blocks[0].Instrs[1].Dst = 999
	if err := Verify(m3); err == nil {
		t.Error("verify should reject out-of-range dst")
	}
}

// Property: Eval of comparison operators always returns 0 or 1, and
// add/sub are inverses.
func TestQuickBinOpProperties(t *testing.T) {
	cmp := func(x, y Word) bool {
		for _, op := range []BinOp{BinEq, BinNe, BinLt, BinLe, BinGt, BinGe} {
			v := op.Eval(x, y)
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(cmp, nil); err != nil {
		t.Errorf("comparison range property: %v", err)
	}
	inverse := func(x, y Word) bool {
		return BinSub.Eval(BinAdd.Eval(x, y), y) == x
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Errorf("add/sub inverse property: %v", err)
	}
}

// Property: Pos ordering is a strict total order consistent with equality.
func TestQuickPosOrdering(t *testing.T) {
	prop := func(a, b Pos) bool {
		less, greater := a.Less(b), b.Less(a)
		if a == b {
			return !less && !greater
		}
		return less != greater
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("pos ordering property: %v", err)
	}
}

func TestUses(t *testing.T) {
	in := Instr{Op: OpCall, A: Reg(1), B: Imm(3), Args: []Operand{Reg(2), Imm(4), Reg(5)}}
	got := in.Uses(nil)
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Uses = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Uses = %v, want %v", got, want)
		}
	}
}

func TestPrintContainsStrings(t *testing.T) {
	m := MustParse(sampleSrc)
	text := Print(m)
	for _, want := range []string{
		"module sample", "global counter = 0", "func worker(%n)",
		`output "count", %y`, `assert %m, "worker arg"`, "stores $tmp, %m",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}
