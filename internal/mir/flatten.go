package mir

// Read-only lowering helpers for ahead-of-time compilers over MIR (the
// interpreter's flat code stream in internal/interp/compile.go). A
// function's flattened form is the concatenation of its blocks' instruction
// slices in block order; a flat index ("pc") addresses one instruction the
// same way a (block, index) pair does.

// NumInstrs counts the instructions in the function — the length of its
// flattened instruction stream.
func (f *Function) NumInstrs() int {
	n := 0
	for i := range f.Blocks {
		n += len(f.Blocks[i].Instrs)
	}
	return n
}

// BlockOffsets returns, for each block, the flat index of its first
// instruction in the function's flattened instruction stream. The offset of
// block b plus an instruction's index within b is the instruction's flat
// position; branch targets lower to BlockOffsets()[target].
func (f *Function) BlockOffsets() []int32 {
	offs := make([]int32, len(f.Blocks))
	pc := int32(0)
	for i := range f.Blocks {
		offs[i] = pc
		pc += int32(len(f.Blocks[i].Instrs))
	}
	return offs
}

// FlatPos maps a flat instruction index back to its (function, block,
// index) position. fn is the function's index in its module; pc must be in
// [0, NumInstrs()).
func (f *Function) FlatPos(fn int, pc int) Pos {
	for b := range f.Blocks {
		n := len(f.Blocks[b].Instrs)
		if pc < n {
			return Pos{Fn: fn, Block: b, Index: pc}
		}
		pc -= n
	}
	panic("mir: flat index out of range")
}
