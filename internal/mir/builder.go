package mir

import "fmt"

// Builder constructs a Module programmatically. It resolves register,
// slot, block, global and function names to indices as it goes, so the
// produced module is ready for the verifier and interpreter without a
// separate resolution pass.
//
// Usage:
//
//	b := mir.NewBuilder("prog")
//	g := b.Global("counter", 0)
//	f := b.Func("main")
//	r := f.Const("r", 1)
//	f.StoreG(g, r)
//	f.Ret(mir.None)
//	m, err := b.Module()
type Builder struct {
	m      *Module
	fns    []*FuncBuilder
	errs   []error
	fixups []calleeFixup
}

// calleeFixup records a call/spawn whose callee was named before being
// declared; Module resolves these once every function exists.
type calleeFixup struct {
	fn, blk, idx int
	name         string
}

// NewBuilder returns an empty module builder.
func NewBuilder(name string) *Builder {
	return &Builder{m: &Module{Name: name}}
}

// Global declares a global cell with an initial value and returns its
// index. Redeclaring a name is an error surfaced by Module.
func (b *Builder) Global(name string, init Word) int {
	if b.m.GlobalIndex(name) >= 0 {
		b.errs = append(b.errs, fmt.Errorf("global %q redeclared", name))
	}
	b.m.Globals = append(b.m.Globals, Global{Name: name, Init: init})
	return len(b.m.Globals) - 1
}

// Func starts a new function with the given parameter names and returns its
// builder. Parameters become the first registers.
func (b *Builder) Func(name string, params ...string) *FuncBuilder {
	if b.m.FuncIndex(name) >= 0 {
		b.errs = append(b.errs, fmt.Errorf("function %q redeclared", name))
	}
	f := Function{Name: name, NumParams: len(params)}
	f.RegNames = append(f.RegNames, params...)
	b.m.Functions = append(b.m.Functions, f)
	fb := &FuncBuilder{
		b:    b,
		fi:   len(b.m.Functions) - 1,
		regs: map[string]int{},
	}
	for i, p := range params {
		if _, dup := fb.regs[p]; dup {
			b.errs = append(b.errs, fmt.Errorf("%s: duplicate parameter %q", name, p))
		}
		fb.regs[p] = i
	}
	fb.Label("entry")
	b.fns = append(b.fns, fb)
	return fb
}

// Module finalizes the program: every open function gets its pending block
// closed, forward callee references are resolved, and accumulated errors
// are reported. The verifier is run so that builder output is always
// executable.
func (b *Builder) Module() (*Module, error) {
	for _, fb := range b.fns {
		fb.finish()
	}
	for _, fx := range b.fixups {
		ci := b.m.FuncIndex(fx.name)
		if ci < 0 {
			b.errs = append(b.errs, fmt.Errorf("call to undeclared function %q", fx.name))
			continue
		}
		b.m.Functions[fx.fn].Blocks[fx.blk].Instrs[fx.idx].Callee = ci
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("builder: %w (and %d more)", b.errs[0], len(b.errs)-1)
	}
	if err := Verify(b.m); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustModule is Module but panics on error; intended for the benchmark
// programs, whose construction is deterministic.
func (b *Builder) MustModule() *Module {
	m, err := b.Module()
	if err != nil {
		panic(err)
	}
	return m
}

// FuncBuilder appends instructions to one function.
type FuncBuilder struct {
	b    *Builder
	fi   int
	regs map[string]int
	cur  int // index of the open block, -1 if none
	done bool
}

func (fb *FuncBuilder) fn() *Function { return &fb.b.m.Functions[fb.fi] }

// Index returns the function's index in the module.
func (fb *FuncBuilder) Index() int { return fb.fi }

// Reg returns (declaring on first use) the register with the given name.
func (fb *FuncBuilder) Reg(name string) int {
	if i, ok := fb.regs[name]; ok {
		return i
	}
	f := fb.fn()
	f.RegNames = append(f.RegNames, name)
	i := len(f.RegNames) - 1
	fb.regs[name] = i
	return i
}

// Slot declares (or returns) the stack slot with the given name.
func (fb *FuncBuilder) Slot(name string) int {
	f := fb.fn()
	for i, n := range f.SlotNames {
		if n == name {
			return i
		}
	}
	f.SlotNames = append(f.SlotNames, name)
	return len(f.SlotNames) - 1
}

// NewBlock reserves a new (empty) basic block and returns its index without
// moving the insertion point. Use it to create branch targets ahead of the
// branch, then SetBlock to fill them in.
func (fb *FuncBuilder) NewBlock(name string) int {
	f := fb.fn()
	if f.BlockIndex(name) >= 0 {
		fb.b.errs = append(fb.b.errs, fmt.Errorf("%s: block %q redeclared", f.Name, name))
	}
	f.Blocks = append(f.Blocks, Block{Name: name})
	return len(f.Blocks) - 1
}

// SetBlock moves the insertion point to block i.
func (fb *FuncBuilder) SetBlock(i int) {
	f := fb.fn()
	if i < 0 || i >= len(f.Blocks) {
		fb.b.errs = append(fb.b.errs, fmt.Errorf("%s: SetBlock(%d) out of range", f.Name, i))
		return
	}
	fb.cur = i
}

// Label opens a new basic block, moves the insertion point to it, and — if
// the previous insertion block lacks a terminator — appends a fall-through
// jump to it, which keeps straight-line program text natural.
func (fb *FuncBuilder) Label(name string) int {
	f := fb.fn()
	ni := fb.NewBlock(name)
	if ni > 0 {
		prev := &f.Blocks[fb.cur]
		if len(prev.Instrs) == 0 || !prev.Terminator().Op.IsTerminator() {
			prev.Instrs = append(prev.Instrs, Instr{Op: OpJmp, Dst: -1, Then: ni})
		}
	}
	fb.cur = ni
	return ni
}

func (fb *FuncBuilder) emit(in Instr) {
	f := fb.fn()
	if len(f.Blocks) == 0 {
		fb.Label("entry")
	}
	blk := &f.Blocks[fb.cur]
	if len(blk.Instrs) > 0 && blk.Terminator().Op.IsTerminator() {
		fb.b.errs = append(fb.b.errs, fmt.Errorf("%s/%s: instruction after terminator", f.Name, blk.Name))
		return
	}
	blk.Instrs = append(blk.Instrs, in)
}

func (fb *FuncBuilder) finish() {
	if fb.done {
		return
	}
	fb.done = true
	f := fb.fn()
	if len(f.Blocks) == 0 {
		fb.Label("entry")
	}
	cur := &f.Blocks[fb.cur]
	if len(cur.Instrs) == 0 || !cur.Terminator().Op.IsTerminator() {
		cur.Instrs = append(cur.Instrs, Instr{Op: OpRet, Dst: -1, A: None})
	}
}

// R is shorthand for a register operand by name.
func (fb *FuncBuilder) R(name string) Operand { return Reg(fb.Reg(name)) }

// Const emits dst = v and returns dst's operand.
func (fb *FuncBuilder) Const(dst string, v Word) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpConst, Dst: d, Imm: v})
	return Reg(d)
}

// Bin emits dst = a op b and returns dst's operand.
func (fb *FuncBuilder) Bin(dst string, op BinOp, a, b Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpBin, Bin: op, Dst: d, A: a, B: b})
	return Reg(d)
}

// LoadG emits dst = *global.
func (fb *FuncBuilder) LoadG(dst string, global int) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpLoadG, Dst: d, Global: global})
	return Reg(d)
}

// StoreG emits *global = v.
func (fb *FuncBuilder) StoreG(global int, v Operand) {
	fb.emit(Instr{Op: OpStoreG, Dst: -1, Global: global, A: v})
}

// AddrG emits dst = &global.
func (fb *FuncBuilder) AddrG(dst string, global int) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpAddrG, Dst: d, Global: global})
	return Reg(d)
}

// Load emits dst = *(addr).
func (fb *FuncBuilder) Load(dst string, addr Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpLoad, Dst: d, A: addr})
	return Reg(d)
}

// Store emits *(addr) = v.
func (fb *FuncBuilder) Store(addr, v Operand) {
	fb.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: v})
}

// LoadS emits dst = slot.
func (fb *FuncBuilder) LoadS(dst, slot string) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpLoadS, Dst: d, Slot: fb.Slot(slot)})
	return Reg(d)
}

// StoreS emits slot = v.
func (fb *FuncBuilder) StoreS(slot string, v Operand) {
	fb.emit(Instr{Op: OpStoreS, Dst: -1, Slot: fb.Slot(slot), A: v})
}

// Alloc emits dst = alloc(size).
func (fb *FuncBuilder) Alloc(dst string, size Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpAlloc, Dst: d, A: size})
	return Reg(d)
}

// Free emits free(addr).
func (fb *FuncBuilder) Free(addr Operand) {
	fb.emit(Instr{Op: OpFree, Dst: -1, A: addr})
}

// Lock emits lock(addr).
func (fb *FuncBuilder) Lock(addr Operand) {
	fb.emit(Instr{Op: OpLock, Dst: -1, A: addr})
}

// Unlock emits unlock(addr).
func (fb *FuncBuilder) Unlock(addr Operand) {
	fb.emit(Instr{Op: OpUnlock, Dst: -1, A: addr})
}

// Wait emits a condition-variable wait: release the mutex at mtx, block
// until signalled on the condvar at cv, re-acquire mtx.
func (fb *FuncBuilder) Wait(cv, mtx Operand) {
	fb.emit(Instr{Op: OpWait, Dst: -1, A: cv, B: mtx})
}

// Signal emits a wake-one on the condvar at cv.
func (fb *FuncBuilder) Signal(cv Operand) {
	fb.emit(Instr{Op: OpSignal, Dst: -1, A: cv})
}

// Broadcast emits a wake-all on the condvar at cv.
func (fb *FuncBuilder) Broadcast(cv Operand) {
	fb.emit(Instr{Op: OpBroadcast, Dst: -1, A: cv})
}

// ChSend emits a bounded-channel send of v into the channel at ch.
func (fb *FuncBuilder) ChSend(ch, v Operand) {
	fb.emit(Instr{Op: OpChSend, Dst: -1, A: ch, B: v})
}

// ChRecv emits dst = receive from the channel at ch.
func (fb *FuncBuilder) ChRecv(dst string, ch Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpChRecv, Dst: d, A: ch})
	return Reg(d)
}

// ChClose emits a close of the channel at ch.
func (fb *FuncBuilder) ChClose(ch Operand) {
	fb.emit(Instr{Op: OpChClose, Dst: -1, A: ch})
}

// CAS emits dst = (1 if *(addr) == expect then *(addr) = repl else 0).
func (fb *FuncBuilder) CAS(dst string, addr, expect, repl Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpCAS, Dst: d, A: addr, B: expect, Args: []Operand{repl}})
	return Reg(d)
}

// LockG is a convenience for locking a global used as a mutex.
func (fb *FuncBuilder) LockG(global int) {
	p := fb.AddrG(fmt.Sprintf(".mtx%d", global), global)
	fb.Lock(p)
}

// UnlockG releases a global mutex.
func (fb *FuncBuilder) UnlockG(global int) {
	p := fb.AddrG(fmt.Sprintf(".mtx%d", global), global)
	fb.Unlock(p)
}

// callee resolves a callee name immediately when possible and otherwise
// records a fixup against the instruction the caller is about to emit.
func (fb *FuncBuilder) callee(name string) int {
	if i := fb.b.m.FuncIndex(name); i >= 0 {
		return i
	}
	blk := &fb.fn().Blocks[fb.cur]
	fb.b.fixups = append(fb.b.fixups, calleeFixup{
		fn: fb.fi, blk: fb.cur, idx: len(blk.Instrs), name: name,
	})
	return -1
}

// Call emits dst = callee(args...); dst may be "" for a void call. The
// callee may be declared later in the same builder.
func (fb *FuncBuilder) Call(dst, callee string, args ...Operand) Operand {
	d := -1
	if dst != "" {
		d = fb.Reg(dst)
	}
	fb.emit(Instr{Op: OpCall, Dst: d, Callee: fb.callee(callee), Args: args})
	if d < 0 {
		return None
	}
	return Reg(d)
}

// Spawn emits dst = spawn callee(args...) and returns the thread id operand.
func (fb *FuncBuilder) Spawn(dst, callee string, args ...Operand) Operand {
	d := fb.Reg(dst)
	fb.emit(Instr{Op: OpSpawn, Dst: d, Callee: fb.callee(callee), Args: args})
	return Reg(d)
}

// Join emits join(tid).
func (fb *FuncBuilder) Join(tid Operand) {
	fb.emit(Instr{Op: OpJoin, Dst: -1, A: tid})
}

// Output emits output(v) tagged with text.
func (fb *FuncBuilder) Output(text string, v Operand) {
	fb.emit(Instr{Op: OpOutput, Dst: -1, A: v, Text: text})
}

// Assert emits assert(cond).
func (fb *FuncBuilder) Assert(cond Operand, msg string) {
	fb.emit(Instr{Op: OpAssert, Dst: -1, A: cond, AssertKind: AssertPlain, Text: msg})
}

// OracleAssert emits a developer output-correctness oracle.
func (fb *FuncBuilder) OracleAssert(cond Operand, msg string) {
	fb.emit(Instr{Op: OpAssert, Dst: -1, A: cond, AssertKind: AssertOracle, Text: msg})
}

// Yield emits a scheduler hint.
func (fb *FuncBuilder) Yield() { fb.emit(Instr{Op: OpYield, Dst: -1}) }

// Sleep emits sleep(steps).
func (fb *FuncBuilder) Sleep(steps Operand) {
	fb.emit(Instr{Op: OpSleep, Dst: -1, A: steps})
}

// Nop emits a no-op.
func (fb *FuncBuilder) Nop() { fb.emit(Instr{Op: OpNop, Dst: -1}) }

// Fail emits an unconditional failure terminator.
func (fb *FuncBuilder) Fail(kind FailKind, msg string) {
	fb.emit(Instr{Op: OpFail, Dst: -1, FailKind: kind, Text: msg})
}

// Br emits a conditional branch to block indices then/else.
func (fb *FuncBuilder) Br(cond Operand, then, els int) {
	fb.emit(Instr{Op: OpBr, Dst: -1, A: cond, Then: then, Else: els})
}

// Jmp emits an unconditional jump to block index then.
func (fb *FuncBuilder) Jmp(then int) {
	fb.emit(Instr{Op: OpJmp, Dst: -1, Then: then})
}

// Ret emits a return; pass mir.None for a void return.
func (fb *FuncBuilder) Ret(v Operand) {
	fb.emit(Instr{Op: OpRet, Dst: -1, A: v})
}
