package mir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual MIR syntax emitted by Print. The grammar is
// line-oriented:
//
//	module NAME
//	global NAME = INT
//	func NAME(%p0, %p1) {
//	label:
//	  %dst = OP ...
//	  OP ...
//	}
//
// Comments run from ';' or '//' to end of line. Operands are registers
// (%name) or integer immediates; globals are @name, stack slots $name,
// branch targets are block labels. Parse verifies the module before
// returning it.
func Parse(src string) (*Module, error) {
	p := &parser{m: &Module{Name: "module"}}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("mir parse: line %d: %w", ln+1, err)
		}
	}
	if p.f != nil {
		return nil, fmt.Errorf("mir parse: unterminated function %q", p.f.Name)
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if err := Verify(p.m); err != nil {
		return nil, err
	}
	return p.m, nil
}

// MustParse is Parse but panics on error; for tests and fixed fixtures.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// validIdent reports whether s can be used as a module, function,
// global, block, register, or slot name and survive a print/re-parse
// round trip: non-empty and free of whitespace and the delimiter
// characters the grammar uses (commas, quotes, parens, '%', '@', ...).
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_', c == '.', c == '$', c == '-':
		default:
			return false
		}
	}
	return true
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

type blockFixup struct {
	fn, blk, idx int
	then, els    string // block names; els empty for jmp
}

type calleeFixupP struct {
	fn, blk, idx int
	name         string
}

type parser struct {
	m   *Module
	f   *Function // open function, nil at top level
	fi  int
	cur int // open block index
	// register and slot name tables for the open function
	regs  map[string]int
	bfix  []blockFixup
	cfix  []calleeFixupP
	sawBr bool
}

func (p *parser) line(line string) error {
	if p.f == nil {
		return p.topLevel(line)
	}
	if line == "}" {
		if len(p.f.Blocks) == 0 {
			return fmt.Errorf("function %q has no blocks", p.f.Name)
		}
		p.m.Functions[p.fi] = *p.f
		p.f = nil
		return nil
	}
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		name := strings.TrimSuffix(line, ":")
		if !validIdent(name) {
			return fmt.Errorf("bad block label %q", name)
		}
		for _, b := range p.f.Blocks {
			if b.Name == name {
				return fmt.Errorf("block %q redeclared", name)
			}
		}
		p.f.Blocks = append(p.f.Blocks, Block{Name: name})
		p.cur = len(p.f.Blocks) - 1
		return nil
	}
	if len(p.f.Blocks) == 0 {
		return fmt.Errorf("instruction before first block label")
	}
	in, err := p.instr(line)
	if err != nil {
		return err
	}
	p.f.Blocks[p.cur].Instrs = append(p.f.Blocks[p.cur].Instrs, in)
	return nil
}

func (p *parser) topLevel(line string) error {
	switch {
	case strings.HasPrefix(line, "module "):
		name := strings.TrimSpace(strings.TrimPrefix(line, "module "))
		if !validIdent(name) {
			return fmt.Errorf("bad module name %q", name)
		}
		p.m.Name = name
		return nil
	case strings.HasPrefix(line, "global "):
		rest := strings.TrimPrefix(line, "global ")
		name, val, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("global needs '= value'")
		}
		name = strings.TrimSpace(name)
		if !validIdent(name) {
			return fmt.Errorf("bad global name %q", name)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return fmt.Errorf("global %s: %w", name, err)
		}
		if p.m.GlobalIndex(name) >= 0 {
			return fmt.Errorf("global %q redeclared", name)
		}
		p.m.Globals = append(p.m.Globals, Global{Name: name, Init: v})
		return nil
	case strings.HasPrefix(line, "func "):
		rest := strings.TrimPrefix(line, "func ")
		if !strings.HasSuffix(rest, "{") {
			return fmt.Errorf("func line must end with '{'")
		}
		rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
		open := strings.Index(rest, "(")
		close := strings.LastIndex(rest, ")")
		if open < 0 || close < open {
			return fmt.Errorf("malformed func header")
		}
		name := strings.TrimSpace(rest[:open])
		if !validIdent(name) {
			return fmt.Errorf("bad function name %q", name)
		}
		if p.m.FuncIndex(name) >= 0 {
			return fmt.Errorf("function %q redeclared", name)
		}
		f := Function{Name: name}
		p.regs = map[string]int{}
		params := strings.TrimSpace(rest[open+1 : close])
		if params != "" {
			for _, prm := range strings.Split(params, ",") {
				prm = strings.TrimSpace(prm)
				if !strings.HasPrefix(prm, "%") {
					return fmt.Errorf("parameter %q must start with %%", prm)
				}
				rn := prm[1:]
				if !validIdent(rn) {
					return fmt.Errorf("bad parameter name %q", rn)
				}
				if _, dup := p.regs[rn]; dup {
					return fmt.Errorf("duplicate parameter %q", rn)
				}
				p.regs[rn] = len(f.RegNames)
				f.RegNames = append(f.RegNames, rn)
			}
		}
		f.NumParams = len(f.RegNames)
		p.m.Functions = append(p.m.Functions, Function{Name: name})
		p.fi = len(p.m.Functions) - 1
		p.f = &f
		return nil
	}
	return fmt.Errorf("unexpected top-level line %q", line)
}

// reg returns the index of register name, declaring it on first use.
func (p *parser) reg(name string) int {
	if i, ok := p.regs[name]; ok {
		return i
	}
	i := len(p.f.RegNames)
	p.f.RegNames = append(p.f.RegNames, name)
	p.regs[name] = i
	return i
}

func (p *parser) slot(name string) int {
	for i, n := range p.f.SlotNames {
		if n == name {
			return i
		}
	}
	p.f.SlotNames = append(p.f.SlotNames, name)
	return len(p.f.SlotNames) - 1
}

func (p *parser) operand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" || tok == "_" {
		return None, nil
	}
	if strings.HasPrefix(tok, "%") {
		if !validIdent(tok[1:]) {
			return None, fmt.Errorf("bad register name %q", tok[1:])
		}
		return Reg(p.reg(tok[1:])), nil
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return None, fmt.Errorf("bad operand %q", tok)
	}
	return Imm(v), nil
}

func (p *parser) global(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "@") {
		return 0, fmt.Errorf("expected @global, got %q", tok)
	}
	i := p.m.GlobalIndex(tok[1:])
	if i < 0 {
		return 0, fmt.Errorf("unknown global %q", tok[1:])
	}
	return i, nil
}

// splitArgs splits on top-level commas, leaving quoted strings intact.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

// cutSiteTag strips a trailing " !site N" recovery-site annotation as
// emitted by FormatInstr. A "!site" not followed by a bare integer to the
// end of the line (e.g. inside a quoted string, which always closes with
// a quote) is left alone.
func cutSiteTag(line string) (body string, site int, ok bool) {
	i := strings.LastIndex(line, "!site")
	if i < 0 {
		return line, 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(line[i+len("!site"):]))
	if err != nil {
		return line, 0, false
	}
	return strings.TrimSpace(line[:i]), n, true
}

func (p *parser) instr(line string) (Instr, error) {
	body, site, tagged := cutSiteTag(line)
	in, err := p.instrBody(body)
	if err == nil && tagged {
		in.Site = site
	}
	return in, err
}

func (p *parser) instrBody(line string) (Instr, error) {
	in := Instr{Dst: -1}
	rest := line
	if strings.HasPrefix(line, "%") {
		dst, r, ok := strings.Cut(line, "=")
		if !ok {
			return in, fmt.Errorf("register line without '='")
		}
		dst = strings.TrimSpace(dst)
		rn := strings.TrimPrefix(dst, "%")
		if !validIdent(rn) {
			return in, fmt.Errorf("bad register name %q", rn)
		}
		in.Dst = p.reg(rn)
		rest = strings.TrimSpace(r)
	}
	op, args, _ := strings.Cut(rest, " ")
	args = strings.TrimSpace(args)
	parts := splitArgs(args)
	need := func(n int) error {
		if len(parts) != n {
			return fmt.Errorf("%s expects %d operand(s), got %d", op, n, len(parts))
		}
		return nil
	}
	switch op {
	case "const":
		if err := need(1); err != nil {
			return in, err
		}
		v, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return in, err
		}
		in.Op, in.Imm = OpConst, v
		return in, nil
	case "loadg", "storeg", "addrg":
		want := 1
		if op == "storeg" {
			want = 2
		}
		if err := need(want); err != nil {
			return in, err
		}
		g, err := p.global(parts[0])
		if err != nil {
			return in, err
		}
		in.Global = g
		switch op {
		case "loadg":
			in.Op = OpLoadG
		case "addrg":
			in.Op = OpAddrG
		default:
			in.Op = OpStoreG
			in.A, err = p.operand(parts[1])
		}
		return in, err
	case "load", "free", "lock", "unlock", "join", "sleep", "sleeprand", "alloc":
		if err := need(1); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		in.A = a
		switch op {
		case "load":
			in.Op = OpLoad
		case "free":
			in.Op = OpFree
		case "lock":
			in.Op = OpLock
		case "unlock":
			in.Op = OpUnlock
		case "join":
			in.Op = OpJoin
		case "sleep":
			in.Op = OpSleep
		case "sleeprand":
			in.Op = OpSleepRand
		case "alloc":
			in.Op = OpAlloc
		}
		return in, nil
	case "store":
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.A, err = p.operand(parts[0]); err != nil {
			return in, err
		}
		in.B, err = p.operand(parts[1])
		in.Op = OpStore
		return in, err
	case "loads", "stores":
		want := 1
		if op == "stores" {
			want = 2
		}
		if err := need(want); err != nil {
			return in, err
		}
		if !strings.HasPrefix(parts[0], "$") {
			return in, fmt.Errorf("expected $slot, got %q", parts[0])
		}
		sn := parts[0][1:]
		if !validIdent(sn) {
			return in, fmt.Errorf("bad slot name %q", sn)
		}
		in.Slot = p.slot(sn)
		if op == "loads" {
			in.Op = OpLoadS
			return in, nil
		}
		in.Op = OpStoreS
		var err error
		in.A, err = p.operand(parts[1])
		return in, err
	case "signal", "broadcast", "chrecv", "chclose":
		if err := need(1); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		in.A = a
		switch op {
		case "signal":
			in.Op = OpSignal
		case "broadcast":
			in.Op = OpBroadcast
		case "chrecv":
			in.Op = OpChRecv
		case "chclose":
			in.Op = OpChClose
		}
		return in, nil
	case "wait", "chsend":
		// Two operands, plus an optional trailing timeout integer for the
		// transformer's timed forms.
		if len(parts) != 2 && len(parts) != 3 {
			return in, fmt.Errorf("%s expects 2 or 3 operand(s), got %d", op, len(parts))
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		b, err := p.operand(parts[1])
		if err != nil {
			return in, err
		}
		if len(parts) == 3 {
			t, err := strconv.Atoi(parts[2])
			if err != nil {
				return in, err
			}
			in.Timeout = t
		}
		in.A, in.B = a, b
		if op == "wait" {
			in.Op = OpWait
		} else {
			in.Op = OpChSend
		}
		return in, nil
	case "cas":
		if err := need(3); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		b, err := p.operand(parts[1])
		if err != nil {
			return in, err
		}
		c, err := p.operand(parts[2])
		if err != nil {
			return in, err
		}
		in.Op, in.A, in.B, in.Args = OpCAS, a, b, []Operand{c}
		return in, nil
	case "timedlock":
		if err := need(2); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		t, err := strconv.Atoi(parts[1])
		if err != nil {
			return in, err
		}
		in.Op, in.A, in.Timeout = OpTimedLock, a, t
		return in, nil
	case "call", "spawn":
		open := strings.Index(args, "(")
		close := strings.LastIndex(args, ")")
		if open < 0 || close < open {
			return in, fmt.Errorf("%s needs callee(args)", op)
		}
		name := strings.TrimSpace(args[:open])
		in.Callee = -1
		p.cfix = append(p.cfix, calleeFixupP{p.fi, p.cur, len(p.f.Blocks[p.cur].Instrs), name})
		for _, atok := range splitArgs(args[open+1 : close]) {
			if atok == "" {
				continue
			}
			a, err := p.operand(atok)
			if err != nil {
				return in, err
			}
			in.Args = append(in.Args, a)
		}
		if op == "call" {
			in.Op = OpCall
		} else {
			in.Op = OpSpawn
		}
		return in, nil
	case "output", "assert", "oracle", "fail":
		if err := need(2); err != nil {
			return in, err
		}
		switch op {
		case "output":
			s, err := strconv.Unquote(parts[0])
			if err != nil {
				return in, fmt.Errorf("output text: %w", err)
			}
			in.Text = s
			in.Op = OpOutput
			in.A, err = p.operand(parts[1])
			return in, err
		case "fail":
			kind, ok := parseFailKind(parts[0])
			if !ok {
				return in, fmt.Errorf("unknown failure kind %q", parts[0])
			}
			s, err := strconv.Unquote(parts[1])
			if err != nil {
				return in, fmt.Errorf("fail text: %w", err)
			}
			in.Op, in.FailKind, in.Text = OpFail, kind, s
			return in, nil
		default:
			a, err := p.operand(parts[0])
			if err != nil {
				return in, err
			}
			s, err := strconv.Unquote(parts[1])
			if err != nil {
				return in, fmt.Errorf("%s text: %w", op, err)
			}
			in.Op, in.A, in.Text = OpAssert, a, s
			if op == "oracle" {
				in.AssertKind = AssertOracle
			}
			return in, nil
		}
	case "yield":
		in.Op = OpYield
		return in, need(0)
	case "nop":
		in.Op = OpNop
		return in, need(0)
	case "checkpoint":
		if err := need(1); err != nil {
			return in, err
		}
		site, err := strconv.Atoi(parts[0])
		if err != nil {
			return in, err
		}
		in.Op, in.Site = OpCheckpoint, site
		return in, nil
	case "rollback":
		if err := need(2); err != nil {
			return in, err
		}
		site, err := strconv.Atoi(parts[0])
		if err != nil {
			return in, err
		}
		maxRetry, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return in, err
		}
		in.Op, in.Site, in.MaxRetry = OpRollback, site, maxRetry
		return in, nil
	case "br":
		if err := need(3); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		in.Op, in.A = OpBr, a
		p.bfix = append(p.bfix, blockFixup{p.fi, p.cur, len(p.f.Blocks[p.cur].Instrs), parts[1], parts[2]})
		return in, nil
	case "jmp":
		if err := need(1); err != nil {
			return in, err
		}
		in.Op = OpJmp
		p.bfix = append(p.bfix, blockFixup{p.fi, p.cur, len(p.f.Blocks[p.cur].Instrs), parts[0], ""})
		return in, nil
	case "ret":
		in.Op = OpRet
		if len(parts) == 0 {
			in.A = None
			return in, nil
		}
		if err := need(1); err != nil {
			return in, err
		}
		var err error
		in.A, err = p.operand(parts[0])
		return in, err
	}
	if bop, ok := ParseBinOp(op); ok {
		if err := need(2); err != nil {
			return in, err
		}
		a, err := p.operand(parts[0])
		if err != nil {
			return in, err
		}
		b, err := p.operand(parts[1])
		if err != nil {
			return in, err
		}
		in.Op, in.Bin, in.A, in.B = OpBin, bop, a, b
		return in, nil
	}
	return in, fmt.Errorf("unknown instruction %q", op)
}

func parseFailKind(s string) (FailKind, bool) {
	for i, n := range failNames {
		if n == s {
			return FailKind(i), true
		}
	}
	return 0, false
}

func (p *parser) resolve() error {
	for _, fx := range p.bfix {
		f := &p.m.Functions[fx.fn]
		in := &f.Blocks[fx.blk].Instrs[fx.idx]
		ti := f.BlockIndex(fx.then)
		if ti < 0 {
			return fmt.Errorf("mir parse: %s: unknown block %q", f.Name, fx.then)
		}
		in.Then = ti
		if fx.els != "" {
			ei := f.BlockIndex(fx.els)
			if ei < 0 {
				return fmt.Errorf("mir parse: %s: unknown block %q", f.Name, fx.els)
			}
			in.Else = ei
		}
	}
	for _, fx := range p.cfix {
		ci := p.m.FuncIndex(fx.name)
		if ci < 0 {
			return fmt.Errorf("mir parse: call to unknown function %q", fx.name)
		}
		p.m.Functions[fx.fn].Blocks[fx.blk].Instrs[fx.idx].Callee = ci
	}
	return nil
}
