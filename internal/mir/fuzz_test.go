package mir

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse checks the parser never panics and that Parse/Print reach a
// fixed point: anything that parses must print to text that re-parses to
// the identical printout. Seeded from the checked-in testdata programs.
func FuzzParse(f *testing.F) {
	for _, pattern := range []string{
		filepath.Join("..", "..", "testdata", "*.mir"),
		// The checked-in real-bug corpus models exercise the condvar,
		// channel and cas instructions on realistic programs.
		filepath.Join("..", "bugs", "testdata", "*.mir"),
	} {
		files, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, fn := range files {
			src, err := os.ReadFile(fn)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("module m\nfunc main() {\nentry:\n  ret 0\n}\n")
	f.Add("global g = 1\nfunc main() {\nentry:\n  %v = loadg @g\n  ret %v\n}\n")
	f.Add("func main() {\nentry:\n  %t = spawn w()\n  join %t\n  ret 0\n}\nfunc w() {\nentry:\n  yield\n  ret 0\n}\n")
	f.Add("loadg")
	f.Add("func main() {\nentry:\n  loads $\n}\n")
	// Synchronization-primitive seeds: plain and timed (hardened) forms.
	f.Add("global cv = 0\nglobal m = 0\nfunc main() {\nentry:\n  %c = addrg @cv\n  %m = addrg @m\n  lock %m\n  wait %c, %m\n  signal %c\n  broadcast %c\n  unlock %m\n  ret 0\n}\n")
	f.Add("global cv = 0\nglobal m = 0\nfunc main() {\nentry:\n  %c = addrg @cv\n  %m = addrg @m\n  lock %m\n  %ok = wait %c, %m, 400\n  unlock %m\n  ret %ok\n}\n")
	f.Add("global ch = 2\nfunc main() {\nentry:\n  %p = addrg @ch\n  chsend %p, 7\n  %v = chrecv %p\n  chclose %p\n  ret %v\n}\n")
	f.Add("global ch = 1\nfunc main() {\nentry:\n  %p = addrg @ch\n  %ok = chsend %p, 7, 400\n  ret %ok\n}\n")
	f.Add("global n = 2\nfunc main() {\nentry:\n  %p = addrg @n\n  %old = cas %p, 2, 0\n  ret %old\n}\n")
	f.Add("wait %c")
	f.Add("func main() {\nentry:\n  cas $\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input: only panics are failures here
		}
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n%s", err, text)
		}
		if again := Print(m2); again != text {
			t.Fatalf("print is not a fixed point\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
