package mir

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse checks the parser never panics and that Parse/Print reach a
// fixed point: anything that parses must print to text that re-parses to
// the identical printout. Seeded from the checked-in testdata programs.
func FuzzParse(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mir"))
	if err != nil {
		f.Fatal(err)
	}
	for _, fn := range files {
		src, err := os.ReadFile(fn)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("module m\nfunc main() {\nentry:\n  ret 0\n}\n")
	f.Add("global g = 1\nfunc main() {\nentry:\n  %v = loadg @g\n  ret %v\n}\n")
	f.Add("func main() {\nentry:\n  %t = spawn w()\n  join %t\n  ret 0\n}\nfunc w() {\nentry:\n  yield\n  ret 0\n}\n")
	f.Add("loadg")
	f.Add("func main() {\nentry:\n  loads $\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input: only panics are failures here
		}
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n%s", err, text)
		}
		if again := Print(m2); again != text {
			t.Fatalf("print is not a fixed point\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
