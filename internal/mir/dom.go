package mir

// Dominator analysis over a function's CFG, using the Cooper–Harvey–
// Kennedy iterative algorithm. The transformation verifier uses it to
// check ConAir's central structural invariant: every recovery branch is
// dominated by a checkpoint, so a rollback always has a valid jump buffer
// (the most-recent-checkpoint argument of paper §3.3).
type DomTree struct {
	// IDom[b] is the immediate dominator of block b; the entry block's
	// IDom is itself, and unreachable blocks have IDom -1.
	IDom []int
	rpo  []int
	rpoN []int // rpoN[b] = position of b in RPO, -1 if unreachable
}

// BuildDomTree computes the dominator tree of f.
func BuildDomTree(f *Function, cfg *CFG) *DomTree {
	n := len(f.Blocks)
	d := &DomTree{
		IDom: make([]int, n),
		rpo:  cfg.RPO,
		rpoN: make([]int, n),
	}
	for i := range d.IDom {
		d.IDom[i] = -1
		d.rpoN[i] = -1
	}
	for i, b := range cfg.RPO {
		d.rpoN[b] = i
	}
	if n == 0 {
		return d
	}
	d.IDom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for d.rpoN[a] > d.rpoN[b] {
				a = d.IDom[a]
			}
			for d.rpoN[b] > d.rpoN[a] {
				b = d.IDom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range cfg.Preds[b] {
				if d.IDom[p] < 0 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && d.IDom[b] != newIdom {
				d.IDom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b. Every block
// dominates itself; unreachable blocks dominate nothing and are dominated
// by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if d.IDom[b] < 0 || d.IDom[a] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = d.IDom[b]
	}
}

// DominatesPos reports whether the instruction at position p executes
// before the instruction at position q on every path from function entry
// to q (block dominance plus intra-block ordering).
func (d *DomTree) DominatesPos(p, q Pos) bool {
	if p.Block == q.Block {
		return p.Index <= q.Index && d.IDom[p.Block] >= 0
	}
	return d.Dominates(p.Block, q.Block)
}
