package mir

// This file encodes the instruction taxonomy that ConAir's region
// identification is defined over (paper §3.2.1 and §4.1).

// DestroyClass says why (or whether) an instruction ends an idempotent
// reexecution region when walking backward across it.
type DestroyClass uint8

// Destroy classes.
const (
	// DestroyNone: the instruction may appear inside a reexecution region.
	DestroyNone DestroyClass = iota
	// DestroySharedWrite: write to a global or through a pointer.
	DestroySharedWrite
	// DestroyLocalWrite: write to a stack slot (a local not held in a
	// virtual register, hence outside the saved register image).
	DestroyLocalWrite
	// DestroyIO: an output operation.
	DestroyIO
	// DestroyCall: a function call (in the basic design every call
	// destroys idempotency; §4.1 re-admits alloc and lock specifically).
	DestroyCall
	// DestroyRelease: free or unlock — releasing a resource that may have
	// been acquired before the region started can never be compensated
	// (§4.1), so these always destroy.
	DestroyRelease
)

// String names the class for reports.
func (c DestroyClass) String() string {
	switch c {
	case DestroyNone:
		return "none"
	case DestroySharedWrite:
		return "shared-write"
	case DestroyLocalWrite:
		return "local-write"
	case DestroyIO:
		return "io"
	case DestroyCall:
		return "call"
	case DestroyRelease:
		return "release"
	}
	return "unknown"
}

// RegionPolicy selects which instructions may appear inside a reexecution
// region. Basic is the paper's §3.2 design; Extended is §4.1, which admits
// memory-allocation and lock-acquisition calls under compensation.
type RegionPolicy uint8

// Region policies.
const (
	PolicyBasic RegionPolicy = iota
	PolicyExtended
)

// Classify returns the destroy class of in under the given policy.
//
// The synchronization extensions (condvars, channels, CAS) are always
// idempotency-destroying; in particular this encodes the wait-rollback
// rule the interpreter's recovery relies on:
//
//	A wait consumes a signal and releases a mutex, neither of which
//	reexecution can replay — delivered signals are gone and the mutex
//	may have been taken by another thread. wait therefore DESTROYS
//	idempotency, so the reexecution region of every later failure site
//	begins after it and a checkpoint is planted immediately past the
//	wait: a recovery rollback can never cross a completed wait, hence
//	can never make it consume a second signal. The wait's own hardened
//	(timed) form re-arms on rollback instead: on timeout the wait
//	leaves the condvar queue with the mutex released, rolls back to a
//	checkpoint preceding the compensated mutex acquisition, and
//	re-executes lock + predicate check + wait from scratch — and a
//	wait that already consumed a signal never takes the timeout path,
//	so re-arming cannot double-consume (pinned by
//	TestWaitRollbackNeverConsumesSecondSignal).
//
// Channel sends/receives/closes and successful CAS publish or consume
// communication the same way (a re-executed send would duplicate a
// value, a re-executed recv would steal one), so all destroy.
func Classify(in *Instr, policy RegionPolicy) DestroyClass {
	switch in.Op {
	case OpStoreG, OpStore:
		return DestroySharedWrite
	case OpStoreS:
		return DestroyLocalWrite
	case OpOutput:
		return DestroyIO
	case OpFree, OpUnlock:
		return DestroyRelease
	case OpWait, OpSignal, OpBroadcast, OpChClose:
		// Signal delivery and the wait's mutex release are
		// un-reexecutable communication (see the rule above).
		return DestroyRelease
	case OpChSend, OpChRecv:
		// Transferred values cannot be un-sent or re-received.
		return DestroyRelease
	case OpCAS:
		// A successful CAS is a shared write; whether it succeeded cannot
		// be known statically, so classify conservatively.
		return DestroySharedWrite
	case OpCall, OpSpawn, OpJoin:
		return DestroyCall
	case OpAlloc, OpLock, OpTimedLock:
		if policy == PolicyExtended {
			// Compensated at rollback: allocations are freed, acquired
			// locks released (§4.1).
			return DestroyNone
		}
		return DestroyCall
	default:
		return DestroyNone
	}
}

// Destroys reports whether in terminates a backward region walk under the
// given policy.
func Destroys(in *Instr, policy RegionPolicy) bool {
	return Classify(in, policy) != DestroyNone
}

// IsSharedRead reports whether the instruction reads shared (global or
// heap) memory. The pruning optimization (§4.2) requires a reexecution
// region to contain at least one shared read on the failure site's backward
// slice; note that a pointer dereference is itself a shared read, which is
// why segmentation-fault sites are never pruned (§6.2).
func IsSharedRead(in *Instr) bool {
	switch in.Op {
	case OpLoadG, OpLoad:
		return true
	case OpTimedLock, OpLock:
		// Lock acquisition observes shared state, but the pruning pass
		// treats lock sites separately (deadlock rule), so they do not
		// count as slice-feeding shared reads.
		return false
	}
	return false
}

// IsLockAcquire reports whether the instruction acquires a mutex. The
// deadlock pruning rule (§4.2) requires at least one acquisition inside the
// region so that rolling back releases something another thread may need.
func IsLockAcquire(in *Instr) bool {
	return in.Op == OpLock || in.Op == OpTimedLock
}
