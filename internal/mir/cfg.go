package mir

// CFG holds the control-flow graph of one function: successor and
// predecessor block lists plus a reverse-postorder numbering. ConAir's
// reexecution-point search (§3.2.2) is a backward depth-first walk over
// predecessors, so predecessor lists are the workhorse here.
type CFG struct {
	Succs [][]int
	Preds [][]int
	// RPO is a reverse-postorder of the reachable blocks starting at entry.
	RPO []int
	// Reachable[b] reports whether block b is reachable from entry.
	Reachable []bool
}

// BuildCFG computes the CFG of f.
func BuildCFG(f *Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		Succs:     make([][]int, n),
		Preds:     make([][]int, n),
		Reachable: make([]bool, n),
	}
	for bi := range f.Blocks {
		t := f.Blocks[bi].Terminator()
		switch t.Op {
		case OpBr:
			c.Succs[bi] = appendUnique(c.Succs[bi], t.Then)
			c.Succs[bi] = appendUnique(c.Succs[bi], t.Else)
		case OpJmp:
			c.Succs[bi] = appendUnique(c.Succs[bi], t.Then)
		case OpRet:
			// no successors
		}
	}
	for bi, ss := range c.Succs {
		for _, s := range ss {
			c.Preds[s] = append(c.Preds[s], bi)
		}
	}
	// Postorder DFS from entry; reversed gives RPO.
	var post []int
	visited := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		c.Reachable[b] = true
		for _, s := range c.Succs[b] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	c.RPO = make([]int, len(post))
	for i, b := range post {
		c.RPO[len(post)-1-i] = b
	}
	return c
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ReachesWithout reports whether block `from` can reach block `to` along
// CFG edges without passing through any block in `barrier`. `from` and
// `to` themselves are not treated as barriers. Used by the inter-procedural
// analysis to reason about paths between function entry and a failure site.
func (c *CFG) ReachesWithout(from, to int, barrier map[int]bool) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(c.Succs))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Succs[b] {
			if s == to {
				return true
			}
			if !seen[s] && !barrier[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// CallSites returns the positions of every call or spawn of callee fi
// within module m. Used by the inter-procedural recovery analysis to find
// the callers of a function (§4.3).
func CallSites(m *Module, fi int) []Pos {
	var out []Pos
	for cf := range m.Functions {
		f := &m.Functions[cf]
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if (in.Op == OpCall || in.Op == OpSpawn) && in.Callee == fi {
					out = append(out, Pos{Fn: cf, Block: bi, Index: ii})
				}
			}
		}
	}
	return out
}
