package mir

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a module in the textual MIR syntax accepted by Parse. The
// round trip Parse(Print(m)) reproduces m up to register numbering.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s = %d\n", g.Name, g.Init)
	}
	for fi := range m.Functions {
		f := &m.Functions[fi]
		sb.WriteString("\nfunc ")
		sb.WriteString(f.Name)
		sb.WriteByte('(')
		for i := 0; i < f.NumParams; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('%')
			sb.WriteString(f.RegNames[i])
		}
		sb.WriteString(") {\n")
		for bi := range f.Blocks {
			blk := &f.Blocks[bi]
			fmt.Fprintf(&sb, "%s:\n", blk.Name)
			for ii := range blk.Instrs {
				sb.WriteString("  ")
				sb.WriteString(FormatInstr(m, f, &blk.Instrs[ii]))
				sb.WriteByte('\n')
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// FormatInstr renders one instruction in textual syntax. Instructions
// tagged with a recovery site (the transform annotates the guarded
// branch, fail, timedlock and dereference at each failure site) carry a
// trailing "!site N" annotation, except checkpoint/rollback whose syntax
// already encodes the site.
func FormatInstr(m *Module, f *Function, in *Instr) string {
	s := formatInstrBody(m, f, in)
	if in.Site != 0 && in.Op != OpCheckpoint && in.Op != OpRollback {
		s += " !site " + strconv.Itoa(in.Site)
	}
	return s
}

func formatInstrBody(m *Module, f *Function, in *Instr) string {
	opnd := func(o Operand) string {
		switch o.Kind {
		case OperandReg:
			return "%" + f.RegNames[o.Reg]
		case OperandImm:
			return strconv.FormatInt(o.Imm, 10)
		}
		return "_"
	}
	dst := func() string {
		return "%" + f.RegNames[in.Dst] + " = "
	}
	gname := func() string { return "@" + m.Globals[in.Global].Name }
	sname := func() string { return "$" + f.SlotNames[in.Slot] }
	callArgs := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = opnd(a)
		}
		return m.Functions[in.Callee].Name + "(" + strings.Join(parts, ", ") + ")"
	}
	blk := func(i int) string { return f.Blocks[i].Name }

	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%sconst %d", dst(), in.Imm)
	case OpBin:
		return fmt.Sprintf("%s%s %s, %s", dst(), in.Bin, opnd(in.A), opnd(in.B))
	case OpLoadG:
		return fmt.Sprintf("%sloadg %s", dst(), gname())
	case OpStoreG:
		return fmt.Sprintf("storeg %s, %s", gname(), opnd(in.A))
	case OpAddrG:
		return fmt.Sprintf("%saddrg %s", dst(), gname())
	case OpLoad:
		return fmt.Sprintf("%sload %s", dst(), opnd(in.A))
	case OpStore:
		return fmt.Sprintf("store %s, %s", opnd(in.A), opnd(in.B))
	case OpLoadS:
		return fmt.Sprintf("%sloads %s", dst(), sname())
	case OpStoreS:
		return fmt.Sprintf("stores %s, %s", sname(), opnd(in.A))
	case OpAlloc:
		return fmt.Sprintf("%salloc %s", dst(), opnd(in.A))
	case OpFree:
		return fmt.Sprintf("free %s", opnd(in.A))
	case OpLock:
		return fmt.Sprintf("lock %s", opnd(in.A))
	case OpTimedLock:
		return fmt.Sprintf("%stimedlock %s, %d", dst(), opnd(in.A), in.Timeout)
	case OpUnlock:
		return fmt.Sprintf("unlock %s", opnd(in.A))
	case OpCall:
		if in.HasDst() {
			return dst() + "call " + callArgs()
		}
		return "call " + callArgs()
	case OpSpawn:
		return dst() + "spawn " + callArgs()
	case OpJoin:
		return fmt.Sprintf("join %s", opnd(in.A))
	case OpOutput:
		return fmt.Sprintf("output %q, %s", in.Text, opnd(in.A))
	case OpAssert:
		kw := "assert"
		if in.AssertKind == AssertOracle {
			kw = "oracle"
		}
		return fmt.Sprintf("%s %s, %q", kw, opnd(in.A), in.Text)
	case OpYield:
		return "yield"
	case OpSleep:
		return fmt.Sprintf("sleep %s", opnd(in.A))
	case OpNop:
		return "nop"
	case OpWait:
		if in.Timeout > 0 {
			return fmt.Sprintf("%swait %s, %s, %d", dst(), opnd(in.A), opnd(in.B), in.Timeout)
		}
		return fmt.Sprintf("wait %s, %s", opnd(in.A), opnd(in.B))
	case OpSignal:
		return fmt.Sprintf("signal %s", opnd(in.A))
	case OpBroadcast:
		return fmt.Sprintf("broadcast %s", opnd(in.A))
	case OpChSend:
		if in.Timeout > 0 {
			return fmt.Sprintf("%schsend %s, %s, %d", dst(), opnd(in.A), opnd(in.B), in.Timeout)
		}
		return fmt.Sprintf("chsend %s, %s", opnd(in.A), opnd(in.B))
	case OpChRecv:
		return fmt.Sprintf("%schrecv %s", dst(), opnd(in.A))
	case OpChClose:
		return fmt.Sprintf("chclose %s", opnd(in.A))
	case OpCAS:
		return fmt.Sprintf("%scas %s, %s, %s", dst(), opnd(in.A), opnd(in.B), opnd(in.Args[0]))
	case OpCheckpoint:
		return fmt.Sprintf("checkpoint %d", in.Site)
	case OpRollback:
		return fmt.Sprintf("rollback %d, %d", in.Site, in.MaxRetry)
	case OpFail:
		return fmt.Sprintf("fail %s, %q", in.FailKind, in.Text)
	case OpSleepRand:
		return fmt.Sprintf("sleeprand %s", opnd(in.A))
	case OpBr:
		return fmt.Sprintf("br %s, %s, %s", opnd(in.A), blk(in.Then), blk(in.Else))
	case OpJmp:
		return fmt.Sprintf("jmp %s", blk(in.Then))
	case OpRet:
		if in.A.Kind == OperandNone {
			return "ret"
		}
		return fmt.Sprintf("ret %s", opnd(in.A))
	}
	return fmt.Sprintf("<%s?>", in.Op)
}
