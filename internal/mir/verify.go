package mir

import (
	"errors"
	"fmt"
	"strings"
)

// VerifyError collects every structural problem found in a module so a
// caller can fix them in one pass.
type VerifyError struct {
	Problems []string
}

// Error joins the problems, one per line.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("mir verify: %d problem(s):\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// Verify checks the structural well-formedness of a module: blocks are
// non-empty and end in exactly one terminator, operand/register/global/
// slot/function/block indices are in range, destination registers exist
// where required, and a "main" function, if present, takes no parameters.
// The interpreter and the analyses assume a verified module.
func Verify(m *Module) error {
	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	for fi := range m.Functions {
		f := &m.Functions[fi]
		if f.Name == "" {
			bad("function #%d has no name", fi)
		}
		if f.NumParams > len(f.RegNames) {
			bad("%s: %d params but %d registers", f.Name, f.NumParams, len(f.RegNames))
		}
		if len(f.Blocks) == 0 {
			bad("%s: no blocks", f.Name)
			continue
		}
		if f.Name == "main" && f.NumParams != 0 {
			bad("main must take no parameters, has %d", f.NumParams)
		}
		for bi := range f.Blocks {
			blk := &f.Blocks[bi]
			where := func(ii int) string {
				return fmt.Sprintf("%s/%s[%d]", f.Name, blk.Name, ii)
			}
			if len(blk.Instrs) == 0 {
				bad("%s/%s: empty block", f.Name, blk.Name)
				continue
			}
			for ii := range blk.Instrs {
				in := &blk.Instrs[ii]
				isLast := ii == len(blk.Instrs)-1
				if in.Op.IsTerminator() != isLast {
					if isLast {
						bad("%s: block does not end in a terminator", where(ii))
					} else {
						bad("%s: terminator %s in the middle of a block", where(ii), in.Op)
					}
				}
				checkOperand := func(o Operand, what string) {
					if o.Kind == OperandReg && (o.Reg < 0 || o.Reg >= len(f.RegNames)) {
						bad("%s: %s register %d out of range", where(ii), what, o.Reg)
					}
				}
				checkOperand(in.A, "A")
				checkOperand(in.B, "B")
				for ai, a := range in.Args {
					checkOperand(a, fmt.Sprintf("arg%d", ai))
				}
				if in.Dst >= len(f.RegNames) {
					bad("%s: dst register %d out of range", where(ii), in.Dst)
				}
				switch in.Op {
				case OpConst, OpBin, OpLoadG, OpAddrG, OpLoad, OpLoadS,
					OpAlloc, OpTimedLock, OpSpawn, OpChRecv, OpCAS:
					if in.Dst < 0 {
						bad("%s: %s requires a destination register", where(ii), in.Op)
					}
				case OpWait, OpChSend:
					// The timed forms return a success flag; the plain forms
					// have no result.
					if in.Timeout > 0 && in.Dst < 0 {
						bad("%s: timed %s requires a destination register", where(ii), in.Op)
					}
					if in.Timeout <= 0 && in.Dst >= 0 {
						bad("%s: untimed %s must not have a destination register", where(ii), in.Op)
					}
				}
				switch in.Op {
				case OpLoadG, OpStoreG, OpAddrG:
					if in.Global < 0 || in.Global >= len(m.Globals) {
						bad("%s: global %d out of range", where(ii), in.Global)
					}
				case OpLoadS, OpStoreS:
					if in.Slot < 0 || in.Slot >= len(f.SlotNames) {
						bad("%s: slot %d out of range", where(ii), in.Slot)
					}
				case OpCall, OpSpawn:
					if in.Callee < 0 || in.Callee >= len(m.Functions) {
						bad("%s: callee %d out of range", where(ii), in.Callee)
					} else if want := m.Functions[in.Callee].NumParams; want != len(in.Args) {
						bad("%s: %s %s expects %d args, got %d",
							where(ii), in.Op, m.Functions[in.Callee].Name, want, len(in.Args))
					}
				case OpBr:
					if in.A.Kind == OperandNone {
						bad("%s: br without condition", where(ii))
					}
					if in.Then < 0 || in.Then >= len(f.Blocks) {
						bad("%s: br then-target %d out of range", where(ii), in.Then)
					}
					if in.Else < 0 || in.Else >= len(f.Blocks) {
						bad("%s: br else-target %d out of range", where(ii), in.Else)
					}
				case OpJmp:
					if in.Then < 0 || in.Then >= len(f.Blocks) {
						bad("%s: jmp target %d out of range", where(ii), in.Then)
					}
				case OpAssert:
					if in.A.Kind == OperandNone {
						bad("%s: assert without condition", where(ii))
					}
				case OpTimedLock:
					if in.Timeout <= 0 {
						bad("%s: timedlock with non-positive timeout", where(ii))
					}
				case OpRollback:
					if in.MaxRetry <= 0 {
						bad("%s: rollback with non-positive retry bound", where(ii))
					}
				case OpWait:
					if in.A.Kind == OperandNone || in.B.Kind == OperandNone {
						bad("%s: wait needs a condvar and a mutex operand", where(ii))
					}
				case OpChSend:
					if in.A.Kind == OperandNone || in.B.Kind == OperandNone {
						bad("%s: chsend needs a channel and a value operand", where(ii))
					}
				case OpCAS:
					if in.A.Kind == OperandNone || in.B.Kind == OperandNone {
						bad("%s: cas needs an address and an expected-value operand", where(ii))
					}
					if len(in.Args) != 1 {
						bad("%s: cas needs exactly one new-value argument, got %d", where(ii), len(in.Args))
					}
				}
			}
		}
	}
	if len(probs) == 0 {
		return nil
	}
	return &VerifyError{Problems: probs}
}

// ErrNoMain is returned by entry-point lookups on modules without main.
var ErrNoMain = errors.New("mir: module has no main function")
