package mir

import "testing"

func TestDomTreeDiamond(t *testing.T) {
	m := MustParse(`
func main() {
a:
  %x = const 1
  br %x, b, c
b:
  jmp d
c:
  jmp d
d:
  ret
}`)
	f := &m.Functions[0]
	cfg := BuildCFG(f)
	dom := BuildDomTree(f, cfg)
	a, b, c, d := 0, 1, 2, 3
	if !dom.Dominates(a, d) {
		t.Error("entry must dominate the join")
	}
	if dom.Dominates(b, d) || dom.Dominates(c, d) {
		t.Error("neither branch arm dominates the join")
	}
	if dom.IDom[d] != a {
		t.Errorf("idom(d) = %d, want a", dom.IDom[d])
	}
	if !dom.Dominates(b, b) {
		t.Error("blocks dominate themselves")
	}
}

func TestDomTreeLoop(t *testing.T) {
	m := MustParse(`
func main() {
entry:
  jmp head
head:
  %x = const 1
  br %x, body, exit
body:
  jmp head
exit:
  ret
}`)
	f := &m.Functions[0]
	dom := BuildDomTree(f, BuildCFG(f))
	head := f.BlockIndex("head")
	body := f.BlockIndex("body")
	exit := f.BlockIndex("exit")
	if !dom.Dominates(head, body) || !dom.Dominates(head, exit) {
		t.Error("loop header must dominate body and exit")
	}
	if dom.Dominates(body, exit) {
		t.Error("loop body must not dominate exit")
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	m := MustParse(`
func main() {
entry:
  ret
island:
  jmp island
}`)
	f := &m.Functions[0]
	dom := BuildDomTree(f, BuildCFG(f))
	island := f.BlockIndex("island")
	if dom.IDom[island] != -1 {
		t.Errorf("unreachable block got idom %d", dom.IDom[island])
	}
	if dom.Dominates(0, island) || dom.Dominates(island, 0) {
		t.Error("unreachable blocks take part in no dominance relation")
	}
}

func TestDominatesPos(t *testing.T) {
	m := MustParse(`
func main() {
a:
  %x = const 1
  %y = const 2
  br %x, b, c
b:
  jmp d
c:
  jmp d
d:
  ret
}`)
	f := &m.Functions[0]
	dom := BuildDomTree(f, BuildCFG(f))
	p0 := Pos{Block: 0, Index: 0}
	p1 := Pos{Block: 0, Index: 1}
	inB := Pos{Block: 1, Index: 0}
	inD := Pos{Block: 3, Index: 0}
	if !dom.DominatesPos(p0, p1) {
		t.Error("earlier instruction dominates later in same block")
	}
	if dom.DominatesPos(p1, p0) {
		t.Error("later instruction does not dominate earlier")
	}
	if !dom.DominatesPos(p0, inD) {
		t.Error("entry instruction dominates the join")
	}
	if dom.DominatesPos(inB, inD) {
		t.Error("branch arm does not dominate the join")
	}
}
