// Package report renders experiment results as aligned text tables, the
// format the bench harness (cmd/conair-bench) prints for side-by-side
// comparison with the paper's tables.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	all := make([][]string, 0, len(t.rows)+1)
	if len(t.header) > 0 {
		all = append(all, t.header)
	}
	all = append(all, t.rows...)
	// Column widths.
	var widths []int
	for _, row := range all {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	write := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.header) > 0 {
		write(t.header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", max(total-2, 1)))
		sb.WriteByte('\n')
	}
	for _, row := range t.rows {
		write(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (RFC 4180 quoting),
// header first; the title becomes a leading comment line.
func (t *Table) CSV() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# ")
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// VerdictCell renders a sanitizer verdict as a table cell: the empty
// verdict and "none" become "-", anything else passes through.
func VerdictCell(v string) string {
	if v == "" || v == "none" {
		return "-"
	}
	return v
}

// Check renders the paper's X / Xc / - markers.
func Check(ok, conditional bool) string {
	switch {
	case ok && conditional:
		return "yes*"
	case ok:
		return "yes"
	}
	return "no"
}
