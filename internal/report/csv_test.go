package report

import (
	"strings"
	"testing"
)

func TestCSVRendering(t *testing.T) {
	tb := NewTable("Title Here", "a", "b")
	tb.Row("plain", 1)
	tb.Row("needs,quote", `has "quotes"`)
	out := tb.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "# Title Here" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "a,b" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[2] != "plain,1" {
		t.Errorf("row 1 = %q", lines[2])
	}
	if lines[3] != `"needs,quote","has ""quotes"""` {
		t.Errorf("row 2 = %q", lines[3])
	}
}

func TestCSVNoTitleNoHeader(t *testing.T) {
	tb := NewTable("")
	tb.Row("x", "y")
	if got := tb.CSV(); got != "x,y\n" {
		t.Errorf("csv = %q", got)
	}
}
