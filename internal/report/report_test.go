package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("My Title", "App", "Value")
	tb.Row("short", 1)
	tb.Row("a-much-longer-name", 123456)
	out := tb.String()
	if !strings.Contains(out, "My Title") || !strings.Contains(out, "====") {
		t.Errorf("missing title/underline:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var appCol []int
	for _, l := range lines {
		if strings.Contains(l, "123456") || strings.Contains(l, "short") {
			appCol = append(appCol, strings.Index(l, strings.Fields(l)[1]))
		}
	}
	// The second column must start at the same offset in every data row.
	if len(appCol) != 2 || appCol[0] != appCol[1] {
		t.Errorf("columns not aligned: %v\n%s", appCol, out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.Row(3.14159)
	if !strings.Contains(tb.String(), "3.14") {
		t.Errorf("float not formatted: %s", tb.String())
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := NewTable("")
	tb.Row("a", "b")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("separator without header:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.256); got != "25.60%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCheck(t *testing.T) {
	cases := []struct {
		ok, cond bool
		want     string
	}{
		{true, false, "yes"},
		{true, true, "yes*"},
		{false, false, "no"},
		{false, true, "no"},
	}
	for _, c := range cases {
		if got := Check(c.ok, c.cond); got != c.want {
			t.Errorf("Check(%v,%v) = %q, want %q", c.ok, c.cond, got, c.want)
		}
	}
}

func TestVerdictCell(t *testing.T) {
	cases := map[string]string{
		"":                      "-",
		"none":                  "-",
		"race(log_state)":       "race(log_state)",
		"deadlock(nlock,slock)": "deadlock(nlock,slock)",
	}
	for in, want := range cases {
		if got := VerdictCell(in); got != want {
			t.Errorf("VerdictCell(%q) = %q, want %q", in, got, want)
		}
	}
}
