package experiments

import (
	"conair/internal/interp"
	"conair/internal/obs"
	"conair/internal/replay"
)

// reg is the process-wide metrics registry every experiment sweep reports
// into: the engine contributes batch/job/queue-depth/worker-utilization
// metrics, the interpreter per-run aggregates (runs, steps, rollbacks per
// site, episode histograms). conair-bench's per-section progress lines
// and its -metrics exposition read from here.
var reg = obs.NewRegistry()

func init() {
	eng.Reg = reg
	interp.SetMetricsRegistry(reg)
	replay.SetMetricsRegistry(reg)
}

// Registry exposes the experiment metrics registry.
func Registry() *obs.Registry { return reg }
