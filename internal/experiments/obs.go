package experiments

import (
	"conair/internal/interp"
	"conair/internal/obs"
	"conair/internal/replay"
)

// reg is the process-wide metrics registry every experiment sweep reports
// into: the engine contributes batch/job/queue-depth/worker-utilization
// metrics, the interpreter per-run aggregates (runs, steps, rollbacks per
// site, episode histograms). conair-bench's per-section progress lines
// and its -metrics exposition read from here.
var reg = obs.NewRegistry()

func init() {
	eng.Reg = reg
	interp.SetMetricsRegistry(reg)
	replay.SetMetricsRegistry(reg)
	// Pre-describe the sanitizer performance counters so a -metrics dump
	// (or a scrape of the serve endpoint backed by this registry) is
	// self-documenting the first time they appear.
	for name, help := range map[string]string{
		"sanitizer_fastpath_hits_total":         "accesses resolved on the owned-cell epoch fast path (no foreign clock entry consulted)",
		"sanitizer_vc_joins_total":              "full vector-clock join operations (spawn/join edges plus release-clock acquisitions)",
		"sanitize_search_seeds_cancelled_total": "PCT search seeds skipped or interrupted after a lower seed flagged",
	} {
		reg.SetHelp(name, help)
	}
}

// Registry exposes the experiment metrics registry.
func Registry() *obs.Registry { return reg }
