package experiments

import "testing"

// Each design choice must be load-bearing for the bugs that exercise it.
func TestAblations(t *testing.T) {
	rows := Ablations(3)
	get := func(cfg, app string) AblationRow {
		t.Helper()
		for _, r := range rows {
			if r.Config == cfg && r.App == app {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", cfg, app)
		return AblationRow{}
	}
	def := "default(extended+interproc+optimize)"
	basic := "basic-regions(no-§4.1)"
	noIP := "no-interproc(no-§4.3)"
	noOpt := "no-optimize(no-§4.2)"

	// The default configuration recovers everything.
	for _, app := range ablationApps {
		if !get(def, app).Recovered {
			t.Errorf("default config must recover %s", app)
		}
	}

	// Basic regions cannot recover deadlocks (no lock fits in a region).
	if get(basic, "HawkNL").Recovered {
		t.Error("basic-region policy must not recover the HawkNL deadlock")
	}
	// But it still recovers the RAR atomicity violation (read-only region).
	if !get(basic, "MySQL2").Recovered {
		t.Error("basic-region policy should still recover MySQL2")
	}

	// Without inter-procedural recovery the parameter-dependent bugs are
	// unrecoverable (the reexecuted region sees the same stale argument).
	for _, app := range []string{"MozillaXP", "Transmission"} {
		if get(noIP, app).Recovered {
			t.Errorf("no-interproc must not recover %s", app)
		}
		if !get(def, app).Recovered {
			t.Errorf("default must recover %s", app)
		}
	}
	// The deadlock does not need inter-procedural recovery.
	if !get(noIP, "HawkNL").Recovered {
		t.Error("HawkNL should recover without interproc")
	}

	// Disabling the optimization never loses recovery, but plants at
	// least as many reexecution points.
	for _, app := range ablationApps {
		if !get(noOpt, app).Recovered {
			t.Errorf("no-optimize must still recover %s", app)
		}
		if get(noOpt, app).StaticPoints < get(def, app).StaticPoints {
			t.Errorf("%s: optimization should only remove points (%d < %d)",
				app, get(noOpt, app).StaticPoints, get(def, app).StaticPoints)
		}
	}
}
