package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/sanitizer"
)

// The differential sweep pins the epoch Sanitizer against the Reference
// detector: same module, same PCT schedule, two sanitized runs — the run
// results must match bit-for-bit (passivity: neither detector perturbs
// execution) and the report lists, truncation and access/sync counters
// must be identical. The fast sanitizer is a single instance recycled
// with Reset across every program in the sweep, so the sweep also pins
// Reset's state clearing: any residue from a previous program would show
// up as a report difference.

// sanDiffKinds is every mirgen bug template kind.
var sanDiffKinds = []mirgen.BugKind{
	mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
	mirgen.BugLostSignal, mirgen.BugMissedBroadcast,
	mirgen.BugChannelDeadlock, mirgen.BugCASABA,
}

// sameReports compares report lists element-wise (nil and empty agree:
// the recycled fast sanitizer holds a zero-length list with capacity
// where a fresh Reference holds nil).
func sameReports(a, b []sanitizer.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// diffSanitize runs mod under the PCT schedule for each seed with both
// detectors attached and fails on any divergence. fast is reused via
// Reset.
func diffSanitize(t *testing.T, fast *sanitizer.Sanitizer, name string, mod *mir.Module, seeds []int64, maxSteps int64) {
	t.Helper()
	for _, seed := range seeds {
		fast.Reset(mod)
		cfgA := pctCfg(seed, maxSteps)
		cfgA.Sanitizer = fast
		rA := interp.RunModule(mod, cfgA)

		ref := sanitizer.NewReference(mod)
		cfgB := pctCfg(seed, maxSteps)
		cfgB.Sanitizer = ref
		rB := interp.RunModule(mod, cfgB)

		if !reflect.DeepEqual(rA, rB) {
			t.Fatalf("%s seed %d: sanitized runs diverged between detectors (passivity violated)\nepoch: %+v\nref:   %+v",
				name, seed, rA, rB)
		}
		if !sameReports(fast.Reports(), ref.Reports()) {
			t.Fatalf("%s seed %d: reports differ\nepoch: %v\nref:   %v",
				name, seed, fast.Reports(), ref.Reports())
		}
		if fast.Truncated() != ref.Truncated() {
			t.Fatalf("%s seed %d: truncated %d, ref %d", name, seed, fast.Truncated(), ref.Truncated())
		}
		if fast.Accesses() != ref.Accesses() || fast.SyncOps() != ref.SyncOps() {
			t.Fatalf("%s seed %d: counters differ: accesses %d/%d, syncOps %d/%d",
				name, seed, fast.Accesses(), ref.Accesses(), fast.SyncOps(), ref.SyncOps())
		}
	}
}

// TestSanitizerDifferentialTestdata sweeps every checked-in .mir program —
// raw and hardened — under both detectors.
func TestSanitizerDifferentialTestdata(t *testing.T) {
	var files []string
	for _, pattern := range []string{"../../testdata/*.mir", "../bugs/testdata/*.mir"} {
		fs, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	fast := sanitizer.New(nil)
	seeds := []int64{0, 1, 7}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mir.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := filepath.Base(path)
		diffSanitize(t, fast, name, m, seeds, 2_000_000)

		h, err := core.Harden(m, hardenOpts())
		if err != nil {
			t.Fatalf("%s: harden: %v", path, err)
		}
		diffSanitize(t, fast, name+"+hardened", h.Module, seeds, 2_000_000)
	}
}

// TestSanitizerDifferentialCorpus sweeps the paper benchmarks and the
// real-bug corpus: the forced buggy build, its survival hardening, and the
// failure-free twin.
func TestSanitizerDifferentialCorpus(t *testing.T) {
	fast := sanitizer.New(nil)
	seeds := []int64{0, 1}
	all := append(append([]*bugs.Bug(nil), bugs.All()...), bugs.Corpus()...)
	for _, b := range all {
		p := prep(b)
		diffSanitize(t, fast, b.Name+"/forced", p.forced, seeds, expMaxSteps)
		diffSanitize(t, fast, b.Name+"/forced-surv", p.forcedSurv.Module, seeds, expMaxSteps)
		diffSanitize(t, fast, b.Name+"/light-clean", p.lightClean, seeds, expMaxSteps)
	}
}

// TestSanitizerDifferentialMirgen sweeps 50 generator seeds per bug
// template kind (hardened legs on a subset: Harden dominates runtime).
func TestSanitizerDifferentialMirgen(t *testing.T) {
	fast := sanitizer.New(nil)
	seeds := []int64{0, 1}
	for _, kind := range sanDiffKinds {
		for genSeed := int64(0); genSeed < 50; genSeed++ {
			cfg := mirgen.Config{Seed: genSeed, Threads: int(genSeed % 4), Bug: kind}
			m := mirgen.Gen(cfg)
			name := kind.String()
			diffSanitize(t, fast, name, m, seeds, 2_000_000)

			if genSeed%10 == 0 {
				h, err := core.Harden(m, hardenOpts())
				if err != nil {
					t.Fatalf("%s seed %d: harden: %v", name, genSeed, err)
				}
				diffSanitize(t, fast, name+"+hardened", h.Module, seeds, 2_000_000)
			}
		}
	}
}

// TestSanitizeSearchMatchesSequentialRef pins the parallel search's
// first-hit determinism: with a 4-worker pool, SanitizeSearch must return
// the same (seed, reports) pair as the sequential Reference-detector walk
// for every benchmark, every corpus model and every template kind.
func TestSanitizeSearchMatchesSequentialRef(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)

	check := func(name string, mod *mir.Module, maxSteps int64) {
		t.Helper()
		gotSeed, gotReports := SanitizeSearch(mod, sanitizeBudget, maxSteps)
		wantSeed, wantReports := SanitizeSearchRef(mod, sanitizeBudget, maxSteps)
		if gotSeed != wantSeed {
			t.Errorf("%s: parallel search hit seed %d, sequential reference %d", name, gotSeed, wantSeed)
			return
		}
		if !sameReports(gotReports, wantReports) {
			t.Errorf("%s: winning reports differ at seed %d\nparallel:   %v\nsequential: %v",
				name, gotSeed, gotReports, wantReports)
		}
	}

	all := append(append([]*bugs.Bug(nil), bugs.All()...), bugs.Corpus()...)
	for _, b := range all {
		p := prep(b)
		mod := p.forcedSurv.Module
		if b.Symptom == mir.FailHang {
			mod = p.forced
		}
		check(b.Name, mod, expMaxSteps)
	}
	for _, kind := range sanDiffKinds {
		mod := mirgen.Gen(mirgen.Config{Seed: 2, Bug: kind})
		check(kind.String(), mod, 20_000_000)
	}
}

// TestSanitizeSearchMetricsExposition checks the new performance counters
// flow through the experiment registry into a valid Prometheus text
// exposition.
func TestSanitizeSearchMetricsExposition(t *testing.T) {
	b := bugs.All()[0]
	p := prep(b)
	if seed, _ := SanitizeSearch(p.forcedSurv.Module, sanitizeBudget, expMaxSteps); seed < 0 {
		t.Fatalf("%s: search found nothing", b.Name)
	}
	snap := Registry().Snapshot()
	if snap["sanitizer_fastpath_hits_total"] <= 0 {
		t.Error("sanitizer_fastpath_hits_total did not grow")
	}
	if snap["sanitizer_vc_joins_total"] <= 0 {
		t.Error("sanitizer_vc_joins_total did not grow")
	}
	var buf strings.Builder
	if err := Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"sanitizer_fastpath_hits_total",
		"sanitizer_vc_joins_total",
		"sanitize_search_seeds_cancelled_total",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
	if err := obs.ValidateExposition([]byte(buf.String())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// BenchmarkSanitizeSearch measures a full no-hit seed sweep (the search's
// worst case: every seed in the budget runs to completion) on a
// benchmark's failure-free light build. The epoch leg is the production
// path — pooled sanitizer, engine fan-out; the reference leg replicates
// the pre-epoch implementation exactly: a sequential engine walk with a
// fresh map-based detector per seed. Both legs pay the same interpreter
// and engine costs, so the delta is the detector.
func BenchmarkSanitizeSearch(b *testing.B) {
	mod := prep(bugs.All()[0]).lightClean
	const budget, maxSteps = 5, 20_000_000
	b.Run("epoch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if seed, _ := SanitizeSearch(mod, budget, maxSteps); seed != -1 {
				b.Fatalf("unexpected hit at seed %d", seed)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for seed := int64(0); seed < budget; seed++ {
				san := sanitizer.NewReference(mod)
				cfg := pctCfg(seed, maxSteps)
				cfg.Sanitizer = san
				eng.RunJob(mod, cfg, replay.Meta{Label: mod.Name + "-sanitize", Seed: seed})
				if len(san.Reports()) > 0 {
					b.Fatalf("unexpected hit at seed %d", seed)
				}
			}
		}
	})
	// plain is the floor: the identical sweep with no sanitizer attached.
	// epoch-vs-plain is the residual detection overhead the tentpole is
	// chasing; reference-vs-plain is what it used to cost.
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for seed := int64(0); seed < budget; seed++ {
				eng.RunJob(mod, pctCfg(seed, maxSteps),
					replay.Meta{Label: mod.Name + "-plain", Seed: seed})
			}
		}
	})
}
