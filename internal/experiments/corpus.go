package experiments

import (
	"fmt"

	"conair/internal/bugs"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/replay"
	"conair/internal/runner"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

// This file extends Table 3 to the labelled real-bug corpus
// (internal/bugs.Corpus): hand-written MIR models of shipped concurrency
// bugs, each carrying the same three-way oracle as the mirgen templates —
// sanitizer detection with zero false positives, a report-free fixed
// twin, and hardened recovery with the observable output intact.

// CorpusRow is one corpus entry in Table 3's recovery/detection format.
// The corpus models carry no paper numbers, so the overhead columns are
// omitted; the fixed twin is the shipped upstream fix rather than a
// timing-reversed variant, which is what FixedTwinClean certifies.
type CorpusRow struct {
	Name, AppType, RootCause string
	// Symptom is the designed failure kind of the buggy build.
	Symptom string
	// RecoveredFix / RecoveredSurvival: all forced runs completed.
	RecoveredFix, RecoveredSurvival bool
	// FixedTwinClean: the modelled upstream fix completed every run with
	// zero sanitizer reports.
	FixedTwinClean bool
	// Runs is how many forced runs each mode was tested with.
	Runs int
	// Sanitizer is the detection verdict from the PCT search.
	Sanitizer string
}

// corpusTruth is the corpus ground truth the cross-check matches reports
// and outputs against: the one documented racy global per model and the
// schedule-independent post-join observable.
var corpusTruth = map[string]struct {
	Global string
	Out    interp.OutputEvent
}{
	"LGResults":    {"ctx_cancel", interp.OutputEvent{Text: "cancelled", Value: 1}},
	"LGFrontier":   {"frontier", interp.OutputEvent{Text: "frontier", Value: 7}},
	"LGCompletion": {"wf_result", interp.OutputEvent{Text: "result", Value: 42}},
}

// Table3Corpus regenerates the corpus extension of Table 3. runs is the
// number of forced-failure runs per hardening mode, as in Table3.
func Table3Corpus(runs int) []CorpusRow {
	bs := bugs.Corpus()
	return runner.Map(eng, len(bs), func(bi int) CorpusRow {
		b := bs[bi]
		p := prep(b)
		row := CorpusRow{
			Name:      b.Name,
			AppType:   b.AppType,
			RootCause: b.RootCause,
			Symptom:   b.Symptom.String(),
			Runs:      runs,
			Sanitizer: SanitizerVerdict(b, sanitizeBudget),
		}
		row.RecoveredFix = eng.AllComplete(p.forcedFix.Module, runs, expMaxSteps)
		row.RecoveredSurvival = eng.AllComplete(p.forcedSurv.Module, runs, expMaxSteps)
		row.FixedTwinClean = CrossCheckCorpus(b, int64(min(runs, 10))) == nil
		return row
	})
}

// CrossCheckCorpus validates one corpus model the same three ways
// CrossCheckTemplate validates a mirgen template, returning the first
// violation:
//
//  1. detection — some PCT schedule in the budget makes the sanitizer
//     flag the model's documented racy global, and every report across
//     the search names that global (no false positives, no spurious
//     deadlock predictions). Assert-symptom models are searched through
//     their survival-hardened build: the assert kills the raw run before
//     the racing write, so only recovery lets both sides execute.
//  2. fixed twin — the modelled upstream fix completes under every
//     schedule with zero sanitizer reports.
//  3. recovery — the survival-hardened buggy build completes under every
//     random schedule in the budget with the post-join observable
//     intact. Random schedules for the same reason as the template
//     cross-check: an assert site's recovery loop has no backoff, so an
//     adversarial PCT schedule can starve the racing writer past the
//     bounded MaxRetry budget.
func CrossCheckCorpus(b *bugs.Bug, budget int64) error {
	truth, ok := corpusTruth[b.Name]
	if !ok {
		return fmt.Errorf("%s: corpus model has no ground-truth label", b.Name)
	}
	p := prep(b)

	// Leg 1: detection with zero false positives. One pooled sanitizer
	// serves the whole sweep; reports are consumed before the next Reset.
	san := sanPool.Get().(*sanitizer.Sanitizer)
	defer sanPool.Put(san)
	searchMod := p.forcedSurv.Module
	if b.Symptom == mir.FailHang {
		searchMod = p.forced
	}
	found := false
	for seed := int64(0); seed < budget; seed++ {
		sanitizePooled(san, searchMod, pctCfg(seed, expMaxSteps))
		for _, r := range san.Reports() {
			if r.Kind == sanitizer.KindDeadlock {
				return fmt.Errorf("%s, schedule %d: spurious deadlock prediction (%s,%s)",
					b.Name, seed, r.LockA, r.LockB)
			}
			if r.Global != truth.Global {
				return fmt.Errorf("%s, schedule %d: false positive: race on %q, want %q",
					b.Name, seed, r.Location(), truth.Global)
			}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%s: no PCT schedule in %d flagged the documented race on %q",
			b.Name, budget, truth.Global)
	}

	// Leg 2: the modelled upstream fix soaks clean.
	for seed := int64(0); seed < budget; seed++ {
		r := sanitizePooled(san, p.clean, pctCfg(seed, expMaxSteps))
		if !r.Completed {
			return fmt.Errorf("%s fixed twin, schedule %d: failed: %v", b.Name, seed, r.Failure)
		}
		if rs := san.Reports(); len(rs) > 0 {
			return fmt.Errorf("%s fixed twin, schedule %d: false positive: %v",
				b.Name, seed, rs[0])
		}
	}

	// Leg 3: hardened recovery preserves the observable output.
	for seed := int64(0); seed < budget; seed++ {
		r := eng.RunJob(p.forcedSurv.Module, interp.Config{
			Sched:         sched.NewRandom(seed),
			MaxSteps:      expMaxSteps,
			CollectOutput: true,
		}, replay.Meta{Label: b.Name + "-corpus", Seed: seed})
		if !r.Completed {
			return fmt.Errorf("%s, schedule %d: hardened build did not recover: %v",
				b.Name, seed, r.Failure)
		}
		if len(r.Output) != 1 || r.Output[0].Text != truth.Out.Text ||
			r.Output[0].Value != truth.Out.Value {
			return fmt.Errorf("%s, schedule %d: observable changed: %+v, want %s=%d",
				b.Name, seed, r.Output, truth.Out.Text, truth.Out.Value)
		}
	}
	return nil
}
