package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mirgen"
	"conair/internal/sanitizer"
)

// TestCrossCheckAllTemplates is the tentpole oracle: for every injected
// bug template and several generator seeds, (1) the sanitizer flags the
// injected bug under some PCT schedule with no false positives, (2) the
// failure-free twin stays report-free, and (3) the survival-hardened
// program recovers with its observable output intact.
func TestCrossCheckAllTemplates(t *testing.T) {
	kinds := []mirgen.BugKind{mirgen.BugOrder, mirgen.BugAtomicity, mirgen.BugLockInversion,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock, mirgen.BugCASABA}
	for _, kind := range kinds {
		for _, genSeed := range []int64{1, 2, 13} {
			cfg := mirgen.Config{Seed: genSeed, Bug: kind}
			if err := CrossCheckTemplate(cfg, 25); err != nil {
				t.Errorf("seed %d: %v", genSeed, err)
			}
		}
	}
}

// TestSanitizedGoldenSweepPassivity reruns the golden sweep's forced
// (light) variants with a sanitizer attached and checks the fingerprints
// against the same 140-entry snapshot the unsanitized sweep is pinned to:
// attaching the sanitizer must not perturb execution by a single step.
// (The full-workload clean variants are excluded only for test runtime;
// the hooks they execute are the same.)
func TestSanitizedGoldenSweepPassivity(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden snapshot missing: %v", err)
	}
	var want map[string]fingerprint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	checked := 0
	for _, b := range bugs.All() {
		p := prep(b)
		for _, v := range []struct {
			name string
			h    *core.Hardened
		}{
			{"forced-fix", p.forcedFix},
			{"forced-surv", p.forcedSurv},
		} {
			for _, seed := range []int64{0, 1, 2, 7} {
				key := fmt.Sprintf("%s/%s/seed=%d", b.Name, v.name, seed)
				w, ok := want[key]
				if !ok {
					t.Fatalf("%s: missing from golden snapshot", key)
				}
				cfg := runCfg(seed)
				cfg.Sanitizer = sanitizer.New(v.h.Module)
				got := fingerprintOf(interp.RunModule(v.h.Module, cfg))
				if !reflect.DeepEqual(got, w) {
					t.Errorf("%s: sanitized run drifted from golden\n got %+v\nwant %+v", key, got, w)
				}
				checked++
			}
		}
	}
	if checked != 80 {
		t.Fatalf("checked %d fingerprints, want 80", checked)
	}
}

// TestSanitizerMetricsRecorded checks the sanitizer counters flow into the
// experiment registry the -metrics flag exposes.
func TestSanitizerMetricsRecorded(t *testing.T) {
	mod := mirgen.Gen(mirgen.Config{Seed: 5, Threads: 2})
	before := Registry().Snapshot()
	san, r := SanitizeRun(mod, runCfg(1))
	if r.Failure != nil {
		t.Fatalf("clean run failed: %v", r.Failure)
	}
	if len(san.Reports()) != 0 {
		t.Fatalf("clean run reported: %v", san.Reports())
	}
	after := Registry().Snapshot()
	if after["sanitizer_runs_total"] != before["sanitizer_runs_total"]+1 {
		t.Fatalf("sanitizer_runs_total not incremented: %v -> %v",
			before["sanitizer_runs_total"], after["sanitizer_runs_total"])
	}
	if after["sanitizer_accesses_total"] <= before["sanitizer_accesses_total"] {
		t.Fatal("sanitizer_accesses_total did not grow")
	}
	var buf strings.Builder
	if err := Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"sanitizer_runs_total", "sanitizer_reports_total",
		"sanitizer_races_total", "sanitizer_deadlocks_total",
		"sanitizer_accesses_total", "sanitizer_sync_ops_total",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}

// TestSanitizerVerdictsOnBenchmarks pins the Table 3 detection column:
// every race benchmark's verdict names its documented racy global, every
// deadlock benchmark's verdict names its documented lock pair.
func TestSanitizerVerdictsOnBenchmarks(t *testing.T) {
	want := map[string]string{
		"FFT":          "race(End)",
		"MySQL1":       "race(log_state)",
		"MySQL2":       "race(proc_info)",
		"Transmission": "race(gband)",
		"HTTrack":      "race(gopt)",
		"MozillaXP":    "race(mThd)",
		"ZSNES":        "race(video_init)",
		"HawkNL":       "deadlock(nlock,slock)",
		"MozillaJS":    "deadlock(gc_lock,rt_lock)",
		"SQLite":       "deadlock(db_lock,journal_lock)",
	}
	for _, b := range bugs.All() {
		w, ok := want[b.Name]
		if !ok {
			t.Errorf("%s: no expected verdict recorded in this test", b.Name)
			continue
		}
		got := SanitizerVerdict(b, 5)
		// The primary classification must match; extra reports on the same
		// program (e.g. a second racy pair in the same window) may append
		// a [+N] suffix.
		if got != w && !strings.HasPrefix(got, w+"[+") {
			t.Errorf("%s: verdict %q, want %q", b.Name, got, w)
		}
	}
}
