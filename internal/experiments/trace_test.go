package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"conair/internal/bugs"
	"conair/internal/interp"
	"conair/internal/obs"
)

// TestTracingDoesNotPerturbExecution is the guard for the tracing fast
// path's passivity: the full golden sweep (every bug, every hardening
// variant, every pinned seed — the 140-entry set in testdata) must
// produce bit-identical fingerprints with a trace sink attached. Any
// emit-site that mutates interpreter state, consumes scheduler
// randomness, or shifts virtual time moves at least one fingerprint.
func TestTracingDoesNotPerturbExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced golden sweep is slow; skipped in -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden snapshot missing: %v", err)
	}
	var want map[string]fingerprint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	got := goldenSweep(func(seed int64) interp.Config {
		cfg := runCfg(seed)
		// A small ring: constant memory even on 100M-step runs, and
		// wrap-around must be just as passive as recording.
		cfg.Sink = obs.NewTracer(1 << 12)
		return cfg
	})

	if len(got) != len(want) {
		t.Errorf("fingerprint count = %d, golden has %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from traced sweep", key)
			continue
		}
		if g != w {
			t.Errorf("%s: tracing perturbed the run\n got %+v\nwant %+v", key, g, w)
		}
	}
}

// TestChromeTraceMatchesStats replays one (bug, seed) pair with tracing
// on, exports the Chrome trace, parses it back, and reconciles the
// exported rollback/checkpoint events against the run's Stats — the
// acceptance check that the trace is a faithful record, not a sample.
func TestChromeTraceMatchesStats(t *testing.T) {
	for _, name := range []string{"MySQL1", "MozillaXP"} {
		b := bugs.ByName(name)
		if b == nil {
			t.Fatalf("unknown bug %s", name)
		}
		p := prep(b)
		tr := obs.NewTracer(1 << 20)
		cfg := runCfg(7)
		cfg.Sink = tr
		r := interp.RunModule(p.forcedFix.Module, cfg)

		if tr.Dropped() != 0 {
			t.Fatalf("%s: ring dropped %d events; enlarge the buffer", name, tr.Dropped())
		}
		if got := tr.Count(obs.KindCheckpoint); got != r.Stats.Checkpoints {
			t.Errorf("%s: tracer counted %d checkpoints, stats say %d", name, got, r.Stats.Checkpoints)
		}
		if got := tr.Count(obs.KindRollback); got != r.Stats.Rollbacks {
			t.Errorf("%s: tracer counted %d rollbacks, stats say %d", name, got, r.Stats.Rollbacks)
		}
		// Note: Stats.Steps is virtual time, which pickThread warps past
		// sleeping periods, so it can exceed the sched-pick count; the
		// pick count must never exceed it though.
		if got := tr.Count(obs.KindSchedPick); got > r.Stats.Steps {
			t.Errorf("%s: tracer counted %d sched picks, more than %d steps", name, got, r.Stats.Steps)
		}

		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		ct, err := obs.ReadChromeTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := ct.CountName("checkpoint"); int64(got) != r.Stats.Checkpoints {
			t.Errorf("%s: chrome trace has %d checkpoint events, stats say %d",
				name, got, r.Stats.Checkpoints)
		}
		if got := ct.CountName("rollback"); int64(got) != r.Stats.Rollbacks {
			t.Errorf("%s: chrome trace has %d rollback events, stats say %d",
				name, got, r.Stats.Rollbacks)
		}

		// The reconstructed timeline must agree with the run's episodes.
		sum := obs.Summarize(tr.Events())
		if len(sum.Episodes) != len(r.Stats.Episodes) {
			t.Errorf("%s: timeline has %d episodes, stats have %d",
				name, len(sum.Episodes), len(r.Stats.Episodes))
		}
		for i := range sum.Episodes {
			if i >= len(r.Stats.Episodes) {
				break
			}
			se, re := sum.Episodes[i], r.Stats.Episodes[i]
			if se.Start != re.Start || se.Retries != re.Retries ||
				se.Recovered != re.Recovered || int(se.Site) != re.Site {
				t.Errorf("%s: episode %d mismatch: trace %+v vs stats %+v", name, i, se, re)
			}
		}
	}
}

// TestEngineMetricsRegistered checks that experiment sweeps populate the
// package registry: engine job counters and interpreter run counters must
// advance when a table regenerates.
func TestEngineMetricsRegistered(t *testing.T) {
	jobs0 := Registry().Counter("engine_jobs_total").Value()
	runs0 := Registry().Counter("interp_runs_total").Value()
	Table5()
	if got := Registry().Counter("engine_jobs_total").Value(); got <= jobs0 {
		t.Errorf("engine_jobs_total did not advance: %d -> %d", jobs0, got)
	}
	if got := Registry().Counter("interp_runs_total").Value(); got <= runs0 {
		t.Errorf("interp_runs_total did not advance: %d -> %d", runs0, got)
	}
	if Registry().Gauge("engine_queue_depth").Value() != 0 {
		t.Errorf("engine_queue_depth should rest at 0, got %d",
			Registry().Gauge("engine_queue_depth").Value())
	}
}
