package experiments

import (
	"reflect"
	"testing"
)

// withWorkers runs fn twice — once on the sequential reference engine,
// once on a 4-worker pool — and returns both results for comparison.
func withWorkers[T any](t *testing.T, fn func() T) (seq, par T) {
	t.Helper()
	prev := SetWorkers(1)
	seq = fn()
	SetWorkers(4)
	par = fn()
	SetWorkers(prev)
	return seq, par
}

// TestTable3ParallelMatchesSequential is the engine-determinism pin for
// the heaviest table: fanning the seed sweeps across workers must yield
// rows bit-for-bit identical (floats included) to the sequential path.
func TestTable3ParallelMatchesSequential(t *testing.T) {
	seq, par := withWorkers(t, func() []Table3Row { return Table3(8, 3) })
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Table3 parallel != sequential\n seq %+v\n par %+v", seq, par)
	}
}

// TestFigure4ParallelMatchesSequential pins the Figure 4 design-space
// sweep, whose checkpoint-baseline points run one per worker.
func TestFigure4ParallelMatchesSequential(t *testing.T) {
	seq, par := withWorkers(t, func() []Figure4Row { return Figure4() })
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Figure4 parallel != sequential\n seq %+v\n par %+v", seq, par)
	}
}

// TestAblationsParallelMatchesSequential pins the design-choice ablation
// grid (one cell per worker) against the historical nested-loop order.
func TestAblationsParallelMatchesSequential(t *testing.T) {
	seq, par := withWorkers(t, func() []AblationRow { return Ablations(3) })
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Ablations parallel != sequential\n seq %+v\n par %+v", seq, par)
	}
}

// TestTable5ParallelMatchesSequential covers the per-bug fan-out tables
// (Table 5 reads both hardening reports and dynamic run stats).
func TestTable5ParallelMatchesSequential(t *testing.T) {
	seq, par := withWorkers(t, func() []Table5Row { return Table5() })
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Table5 parallel != sequential\n seq %+v\n par %+v", seq, par)
	}
}
