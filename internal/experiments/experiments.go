// Package experiments regenerates every table and figure of the ConAir
// evaluation (paper §5–§6) from the reconstructed benchmarks:
//
//	Table 2  — applications and bugs
//	Table 3  — recovery success and run-time overhead (fix & survival)
//	Table 4  — static failure sites hardened, by category
//	Table 5  — reexecution points, static and dynamic, survival & fix
//	Table 6  — fraction of reexecution points removed by the optimization
//	Table 7  — recovery time, retries, and restart comparison
//	Figure 2 — the four atomicity-violation patterns
//	Figure 4 — the reexecution-region design-space trade-off
//	§6.4     — static analysis time (with and without inter-procedural)
//
// Measurements are deterministic: virtual time is interpreter steps, and
// schedulers are seeded. Wall-clock conversions use each run's own
// measured step rate.
package experiments

import (
	"sync"
	"time"

	"conair/internal/analysis"
	"conair/internal/baseline"
	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/runner"
	"conair/internal/sched"
)

// runCfg returns the standard interpreter config for experiment runs.
func runCfg(seed int64) interp.Config {
	return interp.Config{Sched: sched.NewRandom(seed), MaxSteps: 200_000_000}
}

// hardenOpts is the paper's evaluated configuration; the deadlock timeout
// and backoff are the transform defaults.
func hardenOpts() core.Options { return core.DefaultOptions() }

// mustHarden memoizes core.Harden by (module pointer, options): several
// sections harden the same prepared module under the paper's default
// configuration (Table 5/6, §6.4), and hardening is pure — same module,
// same options, same result — so duplicates reuse the first Hardened.
// Sharing is safe because no caller mutates a Hardened. A sync.Once per
// key keeps concurrent pool workers from hardening the same pair twice.
// Note for §6.4: a cache hit still reports a genuine measurement, since
// Report.AnalysisTime is recorded inside the original core.Harden call.
type hardenKey struct {
	m    *mir.Module
	opts core.Options
}

type hardenEntry struct {
	once sync.Once
	h    *core.Hardened
	err  error
}

var (
	hardenMu    sync.Mutex
	hardenCache = map[hardenKey]*hardenEntry{}
)

func mustHarden(m *mir.Module, opts core.Options) *core.Hardened {
	k := hardenKey{m, opts}
	hardenMu.Lock()
	e := hardenCache[k]
	if e == nil {
		e = &hardenEntry{}
		hardenCache[k] = e
	}
	hardenMu.Unlock()
	e.once.Do(func() {
		e.h, e.err = core.Harden(m, opts)
	})
	if e.err != nil {
		panic(e.err)
	}
	return e.h
}

// ---------------------------------------------------------------- Table 2

// Table2Row describes one application (paper Table 2).
type Table2Row struct {
	Name      string
	AppType   string
	PaperLOC  string
	MIRInstrs int // reconstruction size, the analogue of LOC
	Failure   string
	Cause     string
}

// Table2 regenerates Table 2.
func Table2() []Table2Row {
	bs := bugs.All()
	return runner.Map(eng, len(bs), func(i int) Table2Row {
		b := bs[i]
		return Table2Row{
			Name:      b.Name,
			AppType:   b.AppType,
			PaperLOC:  b.Paper.LOC,
			MIRInstrs: prep(b).forcedFull.NumInstrs(),
			Failure:   b.Symptom.String(),
			Cause:     b.RootCause,
		}
	})
}

// ---------------------------------------------------------------- Table 3

// Table3Row reports recovery success and overhead for one app.
type Table3Row struct {
	Name string
	// RecoveredFix / RecoveredSurvival: all forced runs completed.
	RecoveredFix, RecoveredSurvival bool
	// Conditional marks the wrong-output bugs whose recovery needed the
	// developer oracle (the paper's "Xc").
	Conditional bool
	// Runs is how many forced runs each mode was tested with;
	// OverheadSeeds how many scheduler seeds the overheads average over
	// (the paper averages 20 wall-clock runs).
	Runs, OverheadSeeds int
	// Overheads are step-count ratios measured on failure-free full-scale
	// runs (hardened vs original), averaged per seed.
	OverheadFixPct, OverheadSurvivalPct float64
	// PaperOverheadPct is the published survival overhead.
	PaperOverheadPct float64
	// Sanitizer is the detection verdict ("race(global)",
	// "deadlock(la,lb)") from the dynamic sanitizer's PCT search.
	Sanitizer string
}

// Table3 regenerates Table 3. runs is the number of forced-failure runs
// per mode (the paper used 1000); overheadSeeds the number of scheduler
// seeds overhead is averaged over (the paper used 20 runs).
func Table3(runs, overheadSeeds int) []Table3Row {
	if overheadSeeds < 1 {
		overheadSeeds = 1
	}
	bs := bugs.All()
	// Parallel over apps, and the engine further fans out each app's seed
	// sweeps (runs per mode, overheadSeeds triples). Rows land in bug order
	// and every row's floats accumulate in seed order within that row, so
	// the table is bit-identical to the sequential sweep at any worker
	// count.
	return runner.Map(eng, len(bs), func(bi int) Table3Row {
		b := bs[bi]
		p := prep(b)
		row := Table3Row{
			Name:             b.Name,
			Conditional:      b.NeedsOracle,
			Runs:             runs,
			OverheadSeeds:    overheadSeeds,
			PaperOverheadPct: b.Paper.OverheadPct,
			Sanitizer:        SanitizerVerdict(b, sanitizeBudget),
		}

		// Recovery: forced, light workload (recovery behaviour does not
		// depend on workload volume), `runs` seeds per mode.
		row.RecoveredFix = eng.AllComplete(p.forcedFix.Module, runs, expMaxSteps)
		row.RecoveredSurvival = eng.AllComplete(p.forcedSurv.Module, runs, expMaxSteps)

		// Overhead: failure-free, full workload, deterministic steps,
		// averaged over scheduler seeds. Each seed's percentages come from
		// integer step counts, so parallel execution changes nothing; the
		// sums accumulate in seed order to keep float results bit-stable.
		type pcts struct{ fix, surv float64 }
		per := runner.Map(eng, overheadSeeds, func(i int) pcts {
			seed := int64(i + 1)
			orig := interp.RunModule(p.clean, runCfg(seed)).Stats.Steps
			fixed := interp.RunModule(p.cleanFix.Module, runCfg(seed)).Stats.Steps
			surv := interp.RunModule(p.cleanSurv.Module, runCfg(seed)).Stats.Steps
			return pcts{
				fix:  100 * float64(fixed-orig) / float64(orig),
				surv: 100 * float64(surv-orig) / float64(orig),
			}
		})
		var fixSum, survSum float64
		for _, q := range per {
			fixSum += q.fix
			survSum += q.surv
		}
		row.OverheadFixPct = fixSum / float64(overheadSeeds)
		row.OverheadSurvivalPct = survSum / float64(overheadSeeds)
		return row
	})
}

// ---------------------------------------------------------------- Table 4

// Table4Row is the per-app failure-site census.
type Table4Row struct {
	Name string
	// Measured counts: assert/wrong-output/segfault are identified sites;
	// Deadlock counts sites kept after the §4.2 pruning (the paper's
	// table counts hardened deadlock sites).
	Assert, WrongOutput, Segfault, Deadlock, Total int
	Paper                                          analysis.Census
}

// Table4 regenerates Table 4.
func Table4() []Table4Row {
	bs := bugs.All()
	return runner.Map(eng, len(bs), func(i int) Table4Row {
		b := bs[i]
		res, err := analysis.Analyze(prep(b).forced, analysis.DefaultOptions())
		if err != nil {
			panic(err)
		}
		keptDeadlock := 0
		for i := range res.Sites {
			if res.Sites[i].Site.Kind == analysis.SiteDeadlock && res.Sites[i].Recovers() {
				keptDeadlock++
			}
		}
		return Table4Row{
			Name:        b.Name,
			Assert:      res.Census.Assert,
			WrongOutput: res.Census.WrongOutput,
			Segfault:    res.Census.Segfault,
			Deadlock:    keptDeadlock,
			Total:       res.Census.Assert + res.Census.WrongOutput + res.Census.Segfault + keptDeadlock,
			Paper:       b.Paper.Sites,
		}
	})
}

// ---------------------------------------------------------------- Table 5

// Table5Row reports reexecution points per app.
type Table5Row struct {
	Name string
	// Static: checkpoints planted. Dynamic: checkpoint executions in a
	// failure-free full-workload run.
	SurvivalStatic, FixStatic   int
	SurvivalDynamic, FixDynamic int64
	PaperStatic                 int
	PaperDynamic                int
}

// Table5 regenerates Table 5.
func Table5() []Table5Row {
	bs := bugs.All()
	return runner.Map(eng, len(bs), func(i int) Table5Row {
		b := bs[i]
		p := prep(b)
		rs := interp.RunModule(p.cleanSurv.Module, runCfg(1))
		rf := interp.RunModule(p.cleanFix.Module, runCfg(1))
		return Table5Row{
			Name:            b.Name,
			SurvivalStatic:  p.cleanSurv.Report.StaticReexecPoints,
			FixStatic:       p.cleanFix.Report.StaticReexecPoints,
			SurvivalDynamic: rs.Stats.Checkpoints,
			FixDynamic:      rf.Stats.Checkpoints,
			PaperStatic:     b.Paper.ReexecStatic,
			PaperDynamic:    b.Paper.ReexecDynamic,
		}
	})
}

// ---------------------------------------------------------------- Table 6

// Table6Row reports the optimization's effect on reexecution points.
type Table6Row struct {
	Name string
	// Percentages of reexecution points removed by the §4.2 pruning,
	// split by the site class a point serves; -1 when the unoptimized
	// count is zero (the paper's N/A).
	NonDeadlockStaticPct, NonDeadlockDynamicPct float64
	DeadlockStaticPct, DeadlockDynamicPct       float64
}

// Table6 regenerates Table 6 by hardening each app with the optimization
// on and off and comparing static plants and dynamic executions.
func Table6() []Table6Row {
	bs := bugs.All()
	return runner.Map(eng, len(bs), func(i int) Table6Row {
		b := bs[i]
		m := prep(b).lightClean
		optOn := hardenOpts()
		optOff := hardenOpts()
		optOff.Optimize = false
		hOn := mustHarden(m, optOn)
		hOff := mustHarden(m, optOff)

		staticOnD, staticOnN := hOn.Report.StaticDeadlockPoints, hOn.Report.StaticNonDeadlockPoints
		staticOffD, staticOffN := hOff.Report.StaticDeadlockPoints, hOff.Report.StaticNonDeadlockPoints

		dynOnD, dynOnN := dynamicByClass(hOn, 1)
		dynOffD, dynOffN := dynamicByClass(hOff, 1)

		return Table6Row{
			Name:                  b.Name,
			NonDeadlockStaticPct:  removedPct(staticOffN, staticOnN),
			NonDeadlockDynamicPct: removedPct64(dynOffN, dynOnN),
			DeadlockStaticPct:     removedPct(staticOffD, staticOnD),
			DeadlockDynamicPct:    removedPct64(dynOffD, dynOnD),
		}
	})
}

func removedPct(off, on int) float64 {
	if off == 0 {
		return -1
	}
	return 100 * float64(off-on) / float64(off)
}

func removedPct64(off, on int64) float64 {
	if off == 0 {
		return -1
	}
	return 100 * float64(off-on) / float64(off)
}

// dynamicByClass runs the hardened module and splits checkpoint
// executions by the class of sites each checkpoint serves.
func dynamicByClass(h *core.Hardened, seed int64) (deadlock, nonDeadlock int64) {
	r := interp.RunModule(h.Module, runCfg(seed))
	for _, cp := range h.Report.Analysis.Checkpoints {
		n := r.Stats.CheckpointExecs[cp.ID]
		if cp.ServesDeadlock {
			deadlock += n
		}
		if cp.ServesNonDeadlock {
			nonDeadlock += n
		}
	}
	return deadlock, nonDeadlock
}

// ---------------------------------------------------------------- Table 7

// Table7Row reports failure recovery cost versus whole-program restart.
type Table7Row struct {
	Name string
	// RecoverySteps is the longest recovered episode in the forced run
	// (virtual steps); Retries its rollback count.
	RecoverySteps int64
	Retries       int64
	// RestartSteps is work-lost-plus-rerun for restart recovery on the
	// full workload.
	RestartSteps int64
	// Speedup = RestartSteps / RecoverySteps.
	Speedup float64
	// Paper comparison (microseconds / retries / microseconds).
	PaperRecoveryMicros, PaperRetries, PaperRestartMicros int64
}

// Table7 regenerates Table 7.
func Table7() []Table7Row {
	bs := bugs.All()
	return runner.Map(eng, len(bs), func(i int) Table7Row {
		b := bs[i]
		p := prep(b)
		// Recovery: forced light run under fix-mode hardening.
		r := interp.RunModule(p.forcedFix.Module, runCfg(7))
		var recSteps, retries int64
		if e := r.MaxEpisode(); e != nil {
			recSteps, retries = e.Duration(), e.Retries
		}

		// Restart: full-workload forced failure + full clean rerun.
		rr := baseline.Restart(p.forcedFull, p.clean, 7, expMaxSteps)

		row := Table7Row{
			Name:                b.Name,
			RecoverySteps:       recSteps,
			Retries:             retries,
			RestartSteps:        rr.TotalSteps,
			PaperRecoveryMicros: b.Paper.RecoveryMicros,
			PaperRetries:        b.Paper.Retries,
			PaperRestartMicros:  b.Paper.RestartMicros,
		}
		if recSteps > 0 {
			row.Speedup = float64(rr.TotalSteps) / float64(recSteps)
		}
		return row
	})
}

// ---------------------------------------------------------------- Figure 2

// Figure2Row reports one atomicity-violation pattern.
type Figure2Row struct {
	Pattern string
	// FailsUnprotected: the forced interleaving breaks the plain program.
	FailsUnprotected bool
	// ConAirRecovered / PaperSaysRecoverable: measured vs §2.2 taxonomy.
	ConAirRecovered      bool
	PaperSaysRecoverable bool
	// CheckpointRecovered: the whole-state baseline's result.
	CheckpointRecovered bool
}

// Figure2 regenerates the Figure 2 pattern study.
func Figure2() []Figure2Row {
	patterns := bugs.Figure2Patterns()
	return runner.Map(eng, len(patterns), func(i int) Figure2Row {
		p := patterns[i]
		m := p.Build()
		row := Figure2Row{Pattern: p.Name, PaperSaysRecoverable: p.ConAirRecovers}
		row.FailsUnprotected = !interp.RunModule(m, runCfg(1)).Completed

		h := mustHarden(m, hardenOpts())
		// The per-seed verdicts are independent; All's early exit on a
		// failing seed changes only the work done, never the boolean.
		row.ConAirRecovered = eng.All(10, func(seed int) bool {
			return interp.RunModule(h.Module, runCfg(int64(seed))).Completed
		})
		cb := baseline.RunCheckpointed(m, baseline.CheckpointConfig{
			Interval: 25, Seed: 5, PerturbBound: 400, MaxSteps: 5_000_000,
		})
		row.CheckpointRecovered = cb.Completed
		return row
	})
}

// ---------------------------------------------------------------- Figure 4

// Figure4Row is one point on the reexecution-region design spectrum.
type Figure4Row struct {
	Design string
	// OverheadPct on a failure-free run.
	OverheadPct float64
	// RecoverySteps to survive the forced failure (0 = not recovered).
	RecoverySteps int64
	Recovered     bool
}

// Figure4 measures the trade-off sketched in the paper's Figure 4 on one
// representative app (ZSNES): ConAir's idempotent regions at the cheap
// end, whole-program checkpointing at several intervals, and restart.
func Figure4() []Figure4Row {
	p := prep(bugs.ByName("ZSNES"))
	origSteps := interp.RunModule(p.clean, runCfg(1)).Stats.Steps

	var out []Figure4Row

	// ConAir.
	hardSteps := interp.RunModule(p.cleanSurv.Module, runCfg(1)).Stats.Steps
	rf := interp.RunModule(p.forcedSurv.Module, runCfg(7))
	var rec int64
	if e := rf.MaxEpisode(); e != nil {
		rec = e.Duration()
	}
	out = append(out, Figure4Row{
		Design:        "conair-idempotent-regions",
		OverheadPct:   100 * float64(hardSteps-origSteps) / float64(origSteps),
		RecoverySteps: rec,
		Recovered:     rf.Completed,
	})

	// Whole-program checkpointing at decreasing density, one design point
	// per worker (the snapshot-heavy baseline dominates Figure 4's cost).
	intervals := []int64{1_000, 10_000, 100_000}
	out = append(out, runner.Map(eng, len(intervals), func(i int) Figure4Row {
		cfg := baseline.CheckpointConfig{Interval: intervals[i], Seed: 5, PerturbBound: 1200, MaxSteps: 100_000_000}
		cb := baseline.RunCheckpointed(p.clean, cfg)
		fb := baseline.RunCheckpointed(p.forced, cfg)
		return Figure4Row{
			Design:        "full-checkpoint-every-" + itoa(intervals[i]),
			OverheadPct:   100 * float64(cb.Steps-origSteps) / float64(origSteps),
			RecoverySteps: fb.RecoverySteps,
			Recovered:     fb.Completed,
		}
	})...)

	// Whole-program restart.
	rr := baseline.Restart(p.forcedFull, p.clean, 7, expMaxSteps)
	out = append(out, Figure4Row{
		Design:        "whole-program-restart",
		OverheadPct:   0,
		RecoverySteps: rr.TotalSteps,
		Recovered:     rr.Recovered,
	})
	return out
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ------------------------------------------------------------- §6.4 times

// AnalysisTimeRow reports static-analysis wall time per app.
type AnalysisTimeRow struct {
	Name      string
	Intra     time.Duration // interprocedural analysis disabled
	Full      time.Duration // the default configuration
	Transform time.Duration
}

// AnalysisTimes regenerates the §6.4 analysis-time measurements. The
// sweep stays sequential on purpose: it measures wall-clock hardening
// time, and parallel workers contending for cores would inflate every
// sample.
func AnalysisTimes() []AnalysisTimeRow {
	var out []AnalysisTimeRow
	for _, b := range bugs.All() {
		m := prep(b).lightClean
		intraOpts := hardenOpts()
		intraOpts.Interproc = false
		hIntra := mustHarden(m, intraOpts)
		hFull := mustHarden(m, hardenOpts())
		out = append(out, AnalysisTimeRow{
			Name:      b.Name,
			Intra:     hIntra.Report.AnalysisTime,
			Full:      hFull.Report.AnalysisTime,
			Transform: hFull.Report.TransformTime,
		})
	}
	return out
}
