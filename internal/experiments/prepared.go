package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/replay"
	"conair/internal/runner"
)

// eng is the worker pool every experiment sweep fans out on. The zero
// value runs on GOMAXPROCS workers; SetWorkers overrides (1 pins the
// sequential reference path the determinism tests compare against).
var eng runner.Engine

// SetWorkers sets the worker-pool size for all experiment sweeps; n <= 0
// restores the GOMAXPROCS default. Returns the previous setting.
func SetWorkers(n int) int {
	prev := eng.Workers
	eng.Workers = n
	return prev
}

// SetAutoRecord attaches (or, with nil, detaches) an auto-recorder: every
// failing run the experiment engine executes is then written to disk as a
// replayable schedule artifact. Returns the previous recorder. Not safe
// to call while sweeps are in flight.
func SetAutoRecord(a *replay.AutoRecorder) *replay.AutoRecorder {
	prev := eng.Recorder
	eng.Recorder = a
	return prev
}

// SetStop installs the engine's graceful-drain flag: once the flag reads
// true, running jobs finish and queued jobs are skipped. conair-bench's
// SIGINT handler sets it.
func SetStop(f *atomic.Bool) { eng.Stop = f }

// SetJobTimeout arms a per-run wall-clock watchdog on every engine job;
// 0 disables. Returns the previous setting.
func SetJobTimeout(d time.Duration) time.Duration {
	prev := eng.JobTimeout
	eng.JobTimeout = d
	return prev
}

// SetRunHook installs (or, with nil, removes) an observer called after
// every engine job — the feed for the live telemetry server's run
// registry. The hook must be safe for concurrent workers. Not safe to
// call while sweeps are in flight.
func SetRunHook(h runner.RunHook) { eng.RunHook = h }

// SetFlightLimit arms the always-on flight recorder on every engine job
// with the given ring capacity (runner.DefaultFlightLimit when n < 0, off
// when 0). Ignored for jobs while an auto-recorder is attached, which
// captures full schedules instead. Not safe to call while sweeps are in
// flight.
func SetFlightLimit(n int) {
	if n < 0 {
		n = runner.DefaultFlightLimit
	}
	eng.FlightLimit = n
}

// preparedBug caches every program variant and default hardening of one
// bug, so each is built once per process instead of once per table. All
// construction is deterministic and the interpreter never mutates a
// module, so sharing prepared modules across tables — and across worker
// goroutines — cannot change any result.
type preparedBug struct {
	bug  *bugs.Bug
	once sync.Once

	forced     *mir.Module    // light workload, forced failure
	forcedFull *mir.Module    // full workload, forced failure
	clean      *mir.Module    // full workload, failure-free
	lightClean *mir.Module    // light workload, failure-free
	forcedFix  *core.Hardened // forced, fix-mode hardened
	forcedSurv *core.Hardened // forced, survival hardened
	cleanFix   *core.Hardened
	cleanSurv  *core.Hardened
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*preparedBug{}
)

// prep returns the cached preparation for b, building it on first use.
// The per-entry once lets distinct bugs build concurrently while repeat
// callers block only on their own bug.
func prep(b *bugs.Bug) *preparedBug {
	prepMu.Lock()
	p, ok := prepCache[b.Name]
	if !ok {
		p = &preparedBug{bug: b}
		prepCache[b.Name] = p
	}
	prepMu.Unlock()
	p.once.Do(p.build)
	return p
}

func (p *preparedBug) build() {
	b := p.bug
	p.forced = b.Program(bugs.Config{Light: true, ForceBug: true})
	p.forcedFull = b.Program(bugs.Config{ForceBug: true})
	p.clean = b.Program(bugs.Config{})
	p.lightClean = b.Program(bugs.Config{Light: true})

	fPos, err := b.FixSite(p.forced)
	if err != nil {
		panic(err)
	}
	cPos, err := b.FixSite(p.clean)
	if err != nil {
		panic(err)
	}
	p.forcedFix = mustHarden(p.forced, core.FixOptions(fPos))
	p.forcedSurv = mustHarden(p.forced, hardenOpts())
	p.cleanFix = mustHarden(p.clean, core.FixOptions(cPos))
	p.cleanSurv = mustHarden(p.clean, hardenOpts())

	// Warm the interpreter's compiled-program cache while we hold this
	// bug's once: sweeps then start from a hit instead of racing worker
	// goroutines through the first compile of each variant.
	for _, m := range []*mir.Module{
		p.forced, p.forcedFull, p.clean, p.lightClean,
		p.forcedFix.Module, p.forcedSurv.Module,
		p.cleanFix.Module, p.cleanSurv.Module,
	} {
		interp.Compile(m)
	}
}

// expMaxSteps is the step cutoff shared by all experiment runs (matches
// runCfg).
const expMaxSteps = 200_000_000
