package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/replay"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

// This file is the sanitizer's experiment harness: schedule search for
// injected-bug detection, benchmark verdicts for Table 3, and the
// three-way cross-check that ties the mirgen bug templates, the sanitizer
// and ConAir hardening together into one ground-truth oracle.

// SanitizeRun executes mod once under cfg with a fresh sanitizer attached,
// recording the sanitizer's counters in the experiment metrics registry.
// The run goes through the engine's hardened job path, so when
// auto-recording is on (conair-bench -record) every failing sanitize-search
// run lands on disk as a replayable schedule artifact.
func SanitizeRun(mod *mir.Module, cfg interp.Config) (*sanitizer.Sanitizer, *interp.Result) {
	san := sanitizer.New(mod)
	cfg.Sanitizer = san
	r := eng.RunJob(mod, cfg, replay.Meta{Label: mod.Name + "-sanitize"})
	san.RecordMetrics(reg)
	return san, r
}

// pctCfg is the adversarial-schedule config the sanitizer search uses;
// the PCT parameters match internal/bugs' bug-finding tests.
func pctCfg(seed, maxSteps int64) interp.Config {
	return interp.Config{
		Sched:         sched.NewPCT(seed, 3, 64),
		MaxSteps:      maxSteps,
		CollectOutput: true,
	}
}

// sanPool recycles sanitizers across search seeds (and searches): Reset
// hands each run a clean detector that reuses every map bucket, shadow
// cell, clock slice and arena region from previous runs, so a seed sweep
// over one program shape is allocation-free after the first seed.
var sanPool = sync.Pool{New: func() any { return sanitizer.New(nil) }}

// SanitizeSearch runs mod under PCT schedule seeds 0..budget-1, returning
// the first schedule seed whose sanitized run produced reports together
// with those reports, or (-1, nil) when the whole budget stayed clean.
//
// Seeds fan out over the engine's worker pool, with deterministic
// first-hit semantics: the lowest flagging seed wins regardless of
// completion order. The engine dispatches seeds in ascending order, so
// when a seed flags, every lower seed is already in flight and runs to
// completion uninterrupted — only higher seeds are cancelled (via
// interp.Config.Interrupt) or skipped, and a later hit at a lower seed
// simply lowers the watermark. The winning seed's run is therefore always
// a complete deterministic run, and its reports are identical to what the
// sequential walk returns. With a single worker the engine degenerates to
// exactly that sequential walk.
func SanitizeSearch(mod *mir.Module, budget, maxSteps int64) (int64, []sanitizer.Report) {
	n := int(budget)
	if n <= 0 {
		return -1, nil
	}
	reports := make([][]sanitizer.Report, n)
	cancels := make([]atomic.Bool, n)
	// best is the lowest flagging seed so far; n means "none yet".
	var best atomic.Int64
	best.Store(int64(n))
	cancelled := reg.Counter("sanitize_search_seeds_cancelled_total")
	eng.All(n, func(i int) bool {
		if best.Load() < int64(i) {
			// A lower seed already flagged; this seed cannot win.
			cancelled.Inc()
			return false
		}
		san := sanPool.Get().(*sanitizer.Sanitizer)
		san.Reset(mod)
		cfg := pctCfg(int64(i), maxSteps)
		cfg.Sanitizer = san
		cfg.Interrupt = &cancels[i]
		// Supplying Interrupt suppresses the engine's own watchdog, so arm
		// an equivalent one on the shared flag.
		var watchdog *time.Timer
		if d := eng.JobTimeout; d > 0 {
			watchdog = time.AfterFunc(d, func() { cancels[i].Store(true) })
		}
		eng.RunJob(mod, cfg, replay.Meta{Label: mod.Name + "-sanitize", Seed: int64(i)})
		if watchdog != nil {
			watchdog.Stop()
		}
		san.RecordMetrics(reg)
		if rs := san.Reports(); len(rs) > 0 {
			// Copy out: san goes back to the pool and the next Reset
			// recycles its report storage.
			reports[i] = append([]sanitizer.Report(nil), rs...)
		}
		sanPool.Put(san)
		if best.Load() < int64(i) {
			// Lost to a lower seed, possibly after being interrupted
			// mid-run; the (possibly partial) verdict is discarded.
			reports[i] = nil
			cancelled.Inc()
			return false
		}
		if reports[i] == nil {
			return true
		}
		for {
			cur := best.Load()
			if int64(i) >= cur {
				break
			}
			if best.CompareAndSwap(cur, int64(i)) {
				for j := i + 1; j < n; j++ {
					cancels[j].Store(true)
				}
				break
			}
		}
		return false
	})
	if w := best.Load(); w < int64(n) {
		return w, reports[w]
	}
	return -1, nil
}

// sanitizePooled is the recycled-sanitizer variant of SanitizeRun for
// tight sweep loops: san must come from sanPool (or New) and its reports
// are only valid until the caller's next Reset. Same engine job path and
// metrics flow as SanitizeRun.
func sanitizePooled(san *sanitizer.Sanitizer, mod *mir.Module, cfg interp.Config) *interp.Result {
	san.Reset(mod)
	cfg.Sanitizer = san
	r := eng.RunJob(mod, cfg, replay.Meta{Label: mod.Name + "-sanitize"})
	san.RecordMetrics(reg)
	return r
}

// SanitizeSearchRef is the sequential oracle for SanitizeSearch: the same
// seed walk with a fresh Reference detector per seed, no engine, no
// cancellation. The parallel-determinism tests pin SanitizeSearch's
// (seed, reports) pair against it.
func SanitizeSearchRef(mod *mir.Module, budget, maxSteps int64) (int64, []sanitizer.Report) {
	for seed := int64(0); seed < budget; seed++ {
		san := sanitizer.NewReference(mod)
		cfg := pctCfg(seed, maxSteps)
		cfg.Sanitizer = san
		interp.RunModule(mod, cfg)
		if rs := san.Reports(); len(rs) > 0 {
			return seed, rs
		}
	}
	return -1, nil
}

// sanitizeBudget is the PCT-schedule budget Table 3's detection column
// searches per bug; every benchmark's bug surfaces well within it.
const sanitizeBudget = 5

// SanitizerVerdict classifies one benchmark bug for the Table 3 detection
// column, searching up to budget schedules.
//
// Deadlock bugs are predicted on the unhardened forced program: the
// lock-order edges are collected whether or not the schedule actually
// deadlocks. Race bugs are observed on the survival-hardened forced
// program: an order-violation failure kills the unhardened run after the
// premature read and before the late write, so only recovery — rolling the
// reader back until the writer lands — lets both sides of the race execute
// in one trace.
func SanitizerVerdict(b *bugs.Bug, budget int64) string {
	p := prep(b)
	mod := p.forcedSurv.Module
	if b.Symptom == mir.FailHang {
		mod = p.forced
	}
	_, rs := SanitizeSearch(mod, budget, expMaxSteps)
	return sanitizer.Verdict(rs)
}

// matchesInfo checks one sanitizer report against a template's
// ground-truth label; any mismatch is a false positive.
func matchesInfo(r sanitizer.Report, info *mirgen.BugInfo) error {
	switch info.Kind {
	case mirgen.BugOrder, mirgen.BugAtomicity,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast,
		mirgen.BugChannelDeadlock, mirgen.BugCASABA:
		// The synchronization templates are labelled by a data race too:
		// the predicate/stop-flag publish (or the cas cell's plain reads)
		// is deliberately unsynchronized, and no other report kind is
		// acceptable.
		if r.Kind == sanitizer.KindDeadlock {
			return fmt.Errorf("deadlock report for a %v template", info.Kind)
		}
		if r.Global != info.Global {
			return fmt.Errorf("race on %q, want %q", r.Location(), info.Global)
		}
	case mirgen.BugLockInversion:
		if r.Kind != sanitizer.KindDeadlock {
			return fmt.Errorf("%v report for a lock-inversion template", r.Kind)
		}
		got := map[string]bool{r.LockA: true, r.LockB: true}
		if !got[info.LockA] || !got[info.LockB] {
			return fmt.Errorf("deadlock on (%s,%s), want (%s,%s)",
				r.LockA, r.LockB, info.LockA, info.LockB)
		}
	default:
		return fmt.Errorf("unexpected template kind %v", info.Kind)
	}
	return nil
}

// wantOutputs is the template's schedule-independent observable.
func wantOutputs(info *mirgen.BugInfo) []interp.OutputEvent {
	switch info.Kind {
	case mirgen.BugAtomicity, mirgen.BugLockInversion, mirgen.BugCASABA:
		return []interp.OutputEvent{{Text: "bug", Value: 2}}
	case mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock:
		return []interp.OutputEvent{{Text: "bug", Value: 1}}
	}
	return nil
}

// CrossCheckTemplate validates one injected-bug generator configuration
// three ways, returning the first violation:
//
//  1. detection — some PCT schedule in the budget makes the sanitizer flag
//     the injected bug, and every report across the whole search matches
//     the ground-truth label (no false positives). Order violations kill
//     the unhardened run before the late write, so when the plain search
//     comes up empty the survival-hardened program — whose recovery lets
//     both accesses execute — is searched too.
//  2. clean twin — the same generator configuration without the injected
//     bug completes under every schedule with zero sanitizer reports.
//  3. recovery — the survival-hardened program completes under every
//     schedule in the budget with the template's observable output intact.
//     This leg uses random schedules: the adversarial PCT scheduler can
//     starve the order template's writer thread past the bounded MaxRetry
//     rollback budget, which is the paper's bounded-recovery semantics at
//     work rather than a recovery failure.
func CrossCheckTemplate(genCfg mirgen.Config, budget int64) error {
	const maxSteps = 20_000_000
	mod, info := mirgen.GenWithInfo(genCfg)
	if info == nil {
		return fmt.Errorf("configuration injects no bug")
	}
	h, err := core.Harden(mod, hardenOpts())
	if err != nil {
		return fmt.Errorf("harden: %w", err)
	}

	// Leg 1: detection with zero false positives. One pooled sanitizer
	// serves the whole sweep; reports are consumed before the next Reset.
	san := sanPool.Get().(*sanitizer.Sanitizer)
	defer sanPool.Put(san)
	found := false
	for seed := int64(0); seed < budget; seed++ {
		sanitizePooled(san, mod, pctCfg(seed, maxSteps))
		for _, r := range san.Reports() {
			if err := matchesInfo(r, info); err != nil {
				return fmt.Errorf("%v template, schedule %d: false positive: %v", info.Kind, seed, err)
			}
			found = true
		}
	}
	if !found {
		for seed := int64(0); seed < budget; seed++ {
			sanitizePooled(san, h.Module, pctCfg(seed, maxSteps))
			for _, r := range san.Reports() {
				if err := matchesInfo(r, info); err != nil {
					return fmt.Errorf("%v template, hardened schedule %d: false positive: %v",
						info.Kind, seed, err)
				}
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("%v template: no PCT schedule in %d flagged the injected bug",
			info.Kind, budget)
	}

	// Leg 2: the failure-free twin stays clean.
	cleanCfg := genCfg
	cleanCfg.Bug = mirgen.BugNone
	cleanCfg.InjectBug = false
	cleanMod := mirgen.Gen(cleanCfg)
	for seed := int64(0); seed < budget; seed++ {
		r := sanitizePooled(san, cleanMod, pctCfg(seed, maxSteps))
		if r.Failure != nil {
			return fmt.Errorf("clean twin, schedule %d: failed: %v", seed, r.Failure)
		}
		if rs := san.Reports(); len(rs) > 0 {
			return fmt.Errorf("clean twin, schedule %d: false positive: %v", seed, rs[0])
		}
	}

	// Leg 3: hardened recovery preserves the observable output.
	want := wantOutputs(info)
	for seed := int64(0); seed < budget; seed++ {
		r := interp.RunModule(h.Module, interp.Config{
			Sched:         sched.NewRandom(seed),
			MaxSteps:      maxSteps,
			CollectOutput: true,
		})
		if !r.Completed {
			return fmt.Errorf("%v template, schedule %d: hardened run did not recover: %v",
				info.Kind, seed, r.Failure)
		}
		if len(r.Output) != len(want) {
			return fmt.Errorf("%v template, schedule %d: %d outputs, want %d",
				info.Kind, seed, len(r.Output), len(want))
		}
		for i := range want {
			if r.Output[i].Text != want[i].Text || r.Output[i].Value != want[i].Value {
				return fmt.Errorf("%v template, schedule %d: output[%d] = %q=%d, want %q=%d",
					info.Kind, seed, i, r.Output[i].Text, r.Output[i].Value,
					want[i].Text, want[i].Value)
			}
		}
	}
	return nil
}
