package experiments

import (
	"fmt"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/mirgen"
	"conair/internal/replay"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

// This file is the sanitizer's experiment harness: schedule search for
// injected-bug detection, benchmark verdicts for Table 3, and the
// three-way cross-check that ties the mirgen bug templates, the sanitizer
// and ConAir hardening together into one ground-truth oracle.

// SanitizeRun executes mod once under cfg with a fresh sanitizer attached,
// recording the sanitizer's counters in the experiment metrics registry.
// The run goes through the engine's hardened job path, so when
// auto-recording is on (conair-bench -record) every failing sanitize-search
// run lands on disk as a replayable schedule artifact.
func SanitizeRun(mod *mir.Module, cfg interp.Config) (*sanitizer.Sanitizer, *interp.Result) {
	san := sanitizer.New(mod)
	cfg.Sanitizer = san
	r := eng.RunJob(mod, cfg, replay.Meta{Label: mod.Name + "-sanitize"})
	san.RecordMetrics(reg)
	return san, r
}

// pctCfg is the adversarial-schedule config the sanitizer search uses;
// the PCT parameters match internal/bugs' bug-finding tests.
func pctCfg(seed, maxSteps int64) interp.Config {
	return interp.Config{
		Sched:         sched.NewPCT(seed, 3, 64),
		MaxSteps:      maxSteps,
		CollectOutput: true,
	}
}

// SanitizeSearch runs mod under PCT schedule seeds 0..budget-1, returning
// the first schedule seed whose sanitized run produced reports together
// with those reports, or (-1, nil) when the whole budget stayed clean.
func SanitizeSearch(mod *mir.Module, budget, maxSteps int64) (int64, []sanitizer.Report) {
	for seed := int64(0); seed < budget; seed++ {
		san, _ := SanitizeRun(mod, pctCfg(seed, maxSteps))
		if rs := san.Reports(); len(rs) > 0 {
			return seed, rs
		}
	}
	return -1, nil
}

// sanitizeBudget is the PCT-schedule budget Table 3's detection column
// searches per bug; every benchmark's bug surfaces well within it.
const sanitizeBudget = 5

// SanitizerVerdict classifies one benchmark bug for the Table 3 detection
// column, searching up to budget schedules.
//
// Deadlock bugs are predicted on the unhardened forced program: the
// lock-order edges are collected whether or not the schedule actually
// deadlocks. Race bugs are observed on the survival-hardened forced
// program: an order-violation failure kills the unhardened run after the
// premature read and before the late write, so only recovery — rolling the
// reader back until the writer lands — lets both sides of the race execute
// in one trace.
func SanitizerVerdict(b *bugs.Bug, budget int64) string {
	p := prep(b)
	mod := p.forcedSurv.Module
	if b.Symptom == mir.FailHang {
		mod = p.forced
	}
	_, rs := SanitizeSearch(mod, budget, expMaxSteps)
	return sanitizer.Verdict(rs)
}

// matchesInfo checks one sanitizer report against a template's
// ground-truth label; any mismatch is a false positive.
func matchesInfo(r sanitizer.Report, info *mirgen.BugInfo) error {
	switch info.Kind {
	case mirgen.BugOrder, mirgen.BugAtomicity,
		mirgen.BugLostSignal, mirgen.BugMissedBroadcast,
		mirgen.BugChannelDeadlock, mirgen.BugCASABA:
		// The synchronization templates are labelled by a data race too:
		// the predicate/stop-flag publish (or the cas cell's plain reads)
		// is deliberately unsynchronized, and no other report kind is
		// acceptable.
		if r.Kind == sanitizer.KindDeadlock {
			return fmt.Errorf("deadlock report for a %v template", info.Kind)
		}
		if r.Global != info.Global {
			return fmt.Errorf("race on %q, want %q", r.Location(), info.Global)
		}
	case mirgen.BugLockInversion:
		if r.Kind != sanitizer.KindDeadlock {
			return fmt.Errorf("%v report for a lock-inversion template", r.Kind)
		}
		got := map[string]bool{r.LockA: true, r.LockB: true}
		if !got[info.LockA] || !got[info.LockB] {
			return fmt.Errorf("deadlock on (%s,%s), want (%s,%s)",
				r.LockA, r.LockB, info.LockA, info.LockB)
		}
	default:
		return fmt.Errorf("unexpected template kind %v", info.Kind)
	}
	return nil
}

// wantOutputs is the template's schedule-independent observable.
func wantOutputs(info *mirgen.BugInfo) []interp.OutputEvent {
	switch info.Kind {
	case mirgen.BugAtomicity, mirgen.BugLockInversion, mirgen.BugCASABA:
		return []interp.OutputEvent{{Text: "bug", Value: 2}}
	case mirgen.BugLostSignal, mirgen.BugMissedBroadcast, mirgen.BugChannelDeadlock:
		return []interp.OutputEvent{{Text: "bug", Value: 1}}
	}
	return nil
}

// CrossCheckTemplate validates one injected-bug generator configuration
// three ways, returning the first violation:
//
//  1. detection — some PCT schedule in the budget makes the sanitizer flag
//     the injected bug, and every report across the whole search matches
//     the ground-truth label (no false positives). Order violations kill
//     the unhardened run before the late write, so when the plain search
//     comes up empty the survival-hardened program — whose recovery lets
//     both accesses execute — is searched too.
//  2. clean twin — the same generator configuration without the injected
//     bug completes under every schedule with zero sanitizer reports.
//  3. recovery — the survival-hardened program completes under every
//     schedule in the budget with the template's observable output intact.
//     This leg uses random schedules: the adversarial PCT scheduler can
//     starve the order template's writer thread past the bounded MaxRetry
//     rollback budget, which is the paper's bounded-recovery semantics at
//     work rather than a recovery failure.
func CrossCheckTemplate(genCfg mirgen.Config, budget int64) error {
	const maxSteps = 20_000_000
	mod, info := mirgen.GenWithInfo(genCfg)
	if info == nil {
		return fmt.Errorf("configuration injects no bug")
	}
	h, err := core.Harden(mod, hardenOpts())
	if err != nil {
		return fmt.Errorf("harden: %w", err)
	}

	// Leg 1: detection with zero false positives.
	found := false
	for seed := int64(0); seed < budget; seed++ {
		san, _ := SanitizeRun(mod, pctCfg(seed, maxSteps))
		for _, r := range san.Reports() {
			if err := matchesInfo(r, info); err != nil {
				return fmt.Errorf("%v template, schedule %d: false positive: %v", info.Kind, seed, err)
			}
			found = true
		}
	}
	if !found {
		for seed := int64(0); seed < budget; seed++ {
			san, _ := SanitizeRun(h.Module, pctCfg(seed, maxSteps))
			for _, r := range san.Reports() {
				if err := matchesInfo(r, info); err != nil {
					return fmt.Errorf("%v template, hardened schedule %d: false positive: %v",
						info.Kind, seed, err)
				}
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("%v template: no PCT schedule in %d flagged the injected bug",
			info.Kind, budget)
	}

	// Leg 2: the failure-free twin stays clean.
	cleanCfg := genCfg
	cleanCfg.Bug = mirgen.BugNone
	cleanCfg.InjectBug = false
	cleanMod := mirgen.Gen(cleanCfg)
	for seed := int64(0); seed < budget; seed++ {
		san, r := SanitizeRun(cleanMod, pctCfg(seed, maxSteps))
		if r.Failure != nil {
			return fmt.Errorf("clean twin, schedule %d: failed: %v", seed, r.Failure)
		}
		if rs := san.Reports(); len(rs) > 0 {
			return fmt.Errorf("clean twin, schedule %d: false positive: %v", seed, rs[0])
		}
	}

	// Leg 3: hardened recovery preserves the observable output.
	want := wantOutputs(info)
	for seed := int64(0); seed < budget; seed++ {
		r := interp.RunModule(h.Module, interp.Config{
			Sched:         sched.NewRandom(seed),
			MaxSteps:      maxSteps,
			CollectOutput: true,
		})
		if !r.Completed {
			return fmt.Errorf("%v template, schedule %d: hardened run did not recover: %v",
				info.Kind, seed, r.Failure)
		}
		if len(r.Output) != len(want) {
			return fmt.Errorf("%v template, schedule %d: %d outputs, want %d",
				info.Kind, seed, len(r.Output), len(want))
		}
		for i := range want {
			if r.Output[i].Text != want[i].Text || r.Output[i].Value != want[i].Value {
				return fmt.Errorf("%v template, schedule %d: output[%d] = %q=%d, want %q=%d",
					info.Kind, seed, i, r.Output[i].Text, r.Output[i].Value,
					want[i].Text, want[i].Value)
			}
		}
	}
	return nil
}
