package experiments

import "testing"

// The experiment runners are exercised end-to-end by cmd/conair-bench;
// these tests pin the cheap invariants so refactors cannot silently break
// the harness. The heavyweight sweeps (Tables 3/5/7 on full workloads)
// are covered by the benchmarks.

func TestTable2Complete(t *testing.T) {
	rows := Table2()
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.MIRInstrs <= 0 || r.Name == "" || r.Failure == "" || r.Cause == "" {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	// Relative app sizes must track the paper's: MySQL biggest, FFT and
	// HawkNL smallest.
	size := map[string]int{}
	for _, r := range rows {
		size[r.Name] = r.MIRInstrs
	}
	if size["MySQL1"] < size["HTTrack"] || size["HTTrack"] < size["ZSNES"] ||
		size["ZSNES"] < size["HawkNL"] {
		t.Errorf("size ordering broken: %v", size)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	for _, r := range Table4() {
		if r.Assert != r.Paper.Assert || r.WrongOutput != r.Paper.WrongOutput ||
			r.Segfault != r.Paper.Segfault || r.Deadlock != r.Paper.Deadlock {
			t.Errorf("%s: census %d/%d/%d/%d, paper %d/%d/%d/%d",
				r.Name, r.Assert, r.WrongOutput, r.Segfault, r.Deadlock,
				r.Paper.Assert, r.Paper.WrongOutput, r.Paper.Segfault, r.Paper.Deadlock)
		}
	}
}

func TestFigure2MatchesTaxonomy(t *testing.T) {
	for _, r := range Figure2() {
		if !r.FailsUnprotected {
			t.Errorf("%s: must fail unprotected", r.Pattern)
		}
		if r.ConAirRecovered != r.PaperSaysRecoverable {
			t.Errorf("%s: recovered=%v, taxonomy=%v",
				r.Pattern, r.ConAirRecovered, r.PaperSaysRecoverable)
		}
		if !r.CheckpointRecovered {
			t.Errorf("%s: the whole-checkpoint baseline must recover it", r.Pattern)
		}
	}
}

func TestAnalysisTimesPositive(t *testing.T) {
	rows := AnalysisTimes()
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Full <= 0 || r.Intra <= 0 || r.Transform <= 0 {
			t.Errorf("%s: non-positive times: %+v", r.Name, r)
		}
	}
}

func TestTable6Structure(t *testing.T) {
	rows := Table6()
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// Percentages in range (or the N/A marker).
		for _, v := range []float64{r.NonDeadlockStaticPct, r.NonDeadlockDynamicPct,
			r.DeadlockStaticPct, r.DeadlockDynamicPct} {
			if v != -1 && (v < 0 || v > 100) {
				t.Errorf("%s: percentage out of range: %+v", r.Name, r)
			}
		}
	}
	// The paper's headline: MySQL's deadlock points are overwhelmingly
	// optimized away (88% / 91%).
	if byName["MySQL1"].DeadlockStaticPct < 80 {
		t.Errorf("MySQL1 deadlock static = %.1f, want ~88", byName["MySQL1"].DeadlockStaticPct)
	}
	if byName["MySQL2"].DeadlockStaticPct < 85 {
		t.Errorf("MySQL2 deadlock static = %.1f, want ~91", byName["MySQL2"].DeadlockStaticPct)
	}
	// Apps with no deadlock sites report N/A.
	if byName["FFT"].DeadlockStaticPct != -1 {
		t.Errorf("FFT deadlock should be N/A: %+v", byName["FFT"])
	}
}
