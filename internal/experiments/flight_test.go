package experiments

import (
	"encoding/json"
	"os"
	"testing"

	"conair/internal/interp"
	"conair/internal/sched"
)

// TestFlightRecorderDoesNotPerturbExecution is the passivity guard for
// the always-on flight recorder: the full golden sweep (every bug, every
// hardening variant, every pinned seed — the 140-entry set in testdata)
// must produce bit-identical fingerprints with every run's scheduler
// wrapped in a bounded flight ring. The ring here is deliberately tiny,
// so long runs wrap it constantly — eviction must be exactly as passive
// as recording. Any draw the wrapper consumes, any decision it reorders,
// moves at least one fingerprint.
func TestFlightRecorderDoesNotPerturbExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("full flight-recorded golden sweep is slow; skipped in -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden snapshot missing: %v", err)
	}
	var want map[string]fingerprint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	got := goldenSweep(func(seed int64) interp.Config {
		cfg := runCfg(seed)
		cfg.Sched = sched.NewFlightRecorder(cfg.Sched, 1<<10)
		return cfg
	})

	if len(got) != len(want) {
		t.Errorf("fingerprint count = %d, golden has %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from flight-recorded sweep", key)
			continue
		}
		if g != w {
			t.Errorf("%s: flight recorder perturbed the run\n got %+v\nwant %+v", key, g, w)
		}
	}
}
