package experiments

import (
	"strings"
	"testing"

	"conair/internal/bugs"
)

// TestCrossCheckCorpus runs the three-way oracle over every corpus model:
// detection on the documented global with zero false positives, a
// report-free fixed twin, and hardened recovery with the observable
// intact.
func TestCrossCheckCorpus(t *testing.T) {
	corpus := bugs.Corpus()
	if len(corpus) != 3 {
		t.Fatalf("corpus has %d models, want 3", len(corpus))
	}
	for _, b := range corpus {
		if err := CrossCheckCorpus(b, 10); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestTable3CorpusRows pins the corpus extension of Table 3: every model
// recovers in both hardening modes, its fixed twin soaks clean, and the
// sanitizer verdict names the documented racy global.
func TestTable3CorpusRows(t *testing.T) {
	want := map[string]string{
		"LGResults":    "race(ctx_cancel)",
		"LGFrontier":   "race(frontier)",
		"LGCompletion": "race(wf_result)",
	}
	rows := Table3Corpus(10)
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w := want[row.Name]
		if w == "" {
			t.Errorf("%s: unexpected corpus row", row.Name)
			continue
		}
		if !row.RecoveredFix || !row.RecoveredSurvival {
			t.Errorf("%s: recovery fix=%v survival=%v, want both", row.Name,
				row.RecoveredFix, row.RecoveredSurvival)
		}
		if !row.FixedTwinClean {
			t.Errorf("%s: fixed twin did not soak clean", row.Name)
		}
		// The primary classification must match; a second report on the
		// same racy global may append a [+N] suffix.
		if row.Sanitizer != w && !strings.HasPrefix(row.Sanitizer, w+"[+") {
			t.Errorf("%s: verdict %q, want %q", row.Name, row.Sanitizer, w)
		}
	}
}
