package experiments

import (
	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/runner"
)

// Ablations measures what each ConAir design choice buys, on the bugs
// that depend on it:
//
//   - the EXTENDED region policy (§4.1, locks/allocs in regions with
//     compensation) is what makes deadlock recovery possible at all: under
//     the BASIC policy every region stops at the first lock acquisition,
//     no region contains a lock, and every deadlock site is pruned as
//     unrecoverable;
//   - INTER-PROCEDURAL recovery (§4.3) is what recovers the two bugs whose
//     failure depends only on a function parameter: without it the stale
//     parameter makes every reexecution fail identically;
//   - the PRUNING optimization (§4.2) trades nothing for fewer reexecution
//     points: recovery capability is unchanged and overhead drops.
type AblationRow struct {
	Config string
	App    string
	// Recovered: all forced runs completed.
	Recovered bool
	// StaticPoints: planted checkpoints under this configuration.
	StaticPoints int
	// OverheadPct on the failure-free full workload.
	OverheadPct float64
}

// ablationApps are the bugs whose recovery exercises each design choice.
var ablationApps = []string{"HawkNL", "MozillaXP", "Transmission", "MySQL2"}

// Ablations runs the sweep. runs forced runs decide "recovered".
func Ablations(runs int) []AblationRow {
	configs := []struct {
		name string
		mk   func() core.Options
	}{
		{"default(extended+interproc+optimize)", core.DefaultOptions},
		{"basic-regions(no-§4.1)", func() core.Options {
			o := core.DefaultOptions()
			o.Policy = mir.PolicyBasic
			return o
		}},
		{"no-interproc(no-§4.3)", func() core.Options {
			o := core.DefaultOptions()
			o.Interproc = false
			return o
		}},
		{"no-optimize(no-§4.2)", func() core.Options {
			o := core.DefaultOptions()
			o.Optimize = false
			return o
		}},
	}

	// One grid cell per (configuration, app) pair, fanned across the
	// worker pool; the result slice is indexed by cell, so row order is
	// identical to the historical nested loop.
	n := len(ablationApps)
	return runner.Map(eng, len(configs)*n, func(cell int) AblationRow {
		cfg, app := configs[cell/n], ablationApps[cell%n]
		b := bugs.ByName(app)
		p := prep(b)
		opts := cfg.mk()
		// Bound the useless-retry loops ablated configurations run
		// into, so "not recovered" is observed quickly rather than
		// after a million stale reexecutions.
		opts.Transform.MaxRetry = 20_000

		hForced := mustHarden(p.forced, opts)
		recovered := true
		for seed := 0; seed < runs; seed++ {
			if !interp.RunModule(hForced.Module, runCfg(int64(seed))).Completed {
				recovered = false
				break
			}
		}

		hClean := mustHarden(p.clean, opts)
		orig := interp.RunModule(p.clean, runCfg(1)).Stats.Steps
		hard := interp.RunModule(hClean.Module, runCfg(1)).Stats.Steps

		return AblationRow{
			Config:       cfg.name,
			App:          app,
			Recovered:    recovered,
			StaticPoints: hClean.Report.StaticReexecPoints,
			OverheadPct:  100 * float64(hard-orig) / float64(orig),
		}
	})
}
