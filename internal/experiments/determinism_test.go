package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
)

// fingerprint condenses one interpreter Result into every field that must
// stay bit-for-bit stable across interpreter and engine changes. If any
// optimization perturbs scheduling, memory semantics, or recovery
// bookkeeping, at least one of these numbers moves.
type fingerprint struct {
	Completed      bool         `json:"completed"`
	FailKind       mir.FailKind `json:"failKind,omitempty"`
	FailSite       int          `json:"failSite,omitempty"`
	FailStep       int64        `json:"failStep,omitempty"`
	ExitCode       mir.Word     `json:"exitCode"`
	Steps          int64        `json:"steps"`
	Checkpoints    int64        `json:"checkpoints"`
	Rollbacks      int64        `json:"rollbacks"`
	CompFrees      int64        `json:"compFrees"`
	CompUnlocks    int64        `json:"compUnlocks"`
	Episodes       int          `json:"episodes"`
	EpisodeRetries int64        `json:"episodeRetries"`
	EpisodeSteps   int64        `json:"episodeSteps"`
	ThreadsSpawned int          `json:"threadsSpawned"`
}

func fingerprintOf(r *interp.Result) fingerprint {
	fp := fingerprint{
		Completed:      r.Completed,
		ExitCode:       r.ExitCode,
		Steps:          r.Stats.Steps,
		Checkpoints:    r.Stats.Checkpoints,
		Rollbacks:      r.Stats.Rollbacks,
		CompFrees:      r.Stats.CompFrees,
		CompUnlocks:    r.Stats.CompUnlocks,
		Episodes:       len(r.Stats.Episodes),
		ThreadsSpawned: r.Stats.ThreadsSpawned,
	}
	if r.Failure != nil {
		fp.FailKind = r.Failure.Kind
		fp.FailSite = r.Failure.Site
		fp.FailStep = r.Failure.Step
	}
	for _, e := range r.Stats.Episodes {
		fp.EpisodeRetries += e.Retries
		if e.Recovered {
			// Unrecovered episodes have Duration() == -1; they contributed
			// 0 to the historical sum, so skip them to keep the golden
			// fingerprints byte-stable.
			fp.EpisodeSteps += e.Duration()
		}
	}
	return fp
}

// goldenSweep runs every bug in every evaluated configuration under fixed
// seeds and returns the fingerprints keyed "app/variant/seed=N". cfg
// builds the per-seed interpreter config; the default sweep uses runCfg,
// and the tracing guard test swaps in a Sink-carrying variant.
//
// Forced (light) variants exercise recovery — rollback, compensation,
// episodes; clean full-workload variants exercise the memory and
// scheduler hot paths at volume.
func goldenSweep(cfg func(seed int64) interp.Config) map[string]fingerprint {
	out := map[string]fingerprint{}
	for _, b := range bugs.All() {
		forced := b.Program(bugs.Config{Light: true, ForceBug: true})
		fPos, err := b.FixSite(forced)
		if err != nil {
			panic(err)
		}
		clean := b.Program(bugs.Config{})
		cPos, err := b.FixSite(clean)
		if err != nil {
			panic(err)
		}
		variants := []struct {
			name  string
			m     *mir.Module
			seeds []int64
		}{
			{"forced-fix", mustHarden(forced, core.FixOptions(fPos)).Module, []int64{0, 1, 2, 7}},
			{"forced-surv", mustHarden(forced, hardenOpts()).Module, []int64{0, 1, 2, 7}},
			{"clean-orig", clean, []int64{1, 2}},
			{"clean-fix", mustHarden(clean, core.FixOptions(cPos)).Module, []int64{1, 2}},
			{"clean-surv", mustHarden(clean, hardenOpts()).Module, []int64{1, 2}},
		}
		for _, v := range variants {
			for _, seed := range v.seeds {
				key := fmt.Sprintf("%s/%s/seed=%d", b.Name, v.name, seed)
				out[key] = fingerprintOf(interp.RunModule(v.m, cfg(seed)))
			}
		}
	}
	return out
}

const goldenPath = "testdata/determinism.json"

// TestInterpreterResultsMatchGolden pins the full internal/bugs suite's
// Results against a snapshot recorded before the interpreter hot-path
// optimizations (memory block cache, incremental runnable set, frame
// pooling) landed. Regenerate deliberately with:
//
//	CONAIR_REGEN=1 go test ./internal/experiments -run Golden
func TestInterpreterResultsMatchGolden(t *testing.T) {
	got := goldenSweep(runCfg)

	if os.Getenv("CONAIR_REGEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d fingerprints", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden snapshot missing (run with CONAIR_REGEN=1 to create): %v", err)
	}
	var want map[string]fingerprint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("fingerprint count = %d, golden has %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from sweep", key)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: result drifted\n got %+v\nwant %+v", key, g, w)
		}
	}
}
