// Package runner is the parallel batch-execution engine for seeded
// interpreter runs. The ConAir evaluation is embarrassingly parallel —
// every (module, seed) pair is an independent, deterministic run — so the
// engine fans jobs across a worker pool sized to GOMAXPROCS while keeping
// results in deterministic job order: Map's result slice is indexed by job,
// never by completion time, so a parallel sweep is bit-for-bit identical
// to the sequential one.
//
// Modules are shared read-only across workers (the interpreter never
// mutates its module), and each job constructs its own scheduler, so runs
// never share mutable state.
//
// The engine is also the process's robustness boundary: a panicking job
// becomes a failed result (mir.FailPanic) with its stack captured instead
// of killing the pool, per-job wall-clock watchdogs abort wedged runs via
// the interpreter's cooperative Interrupt flag, a Stop flag drains the
// pool gracefully (running jobs finish, queued jobs are skipped), and an
// attached replay.AutoRecorder turns every failing run into a replayable
// schedule artifact.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/sched"
)

// Engine executes batches of independent jobs on a fixed worker pool.
// The zero value is ready to use and runs on GOMAXPROCS workers.
type Engine struct {
	// Workers is the pool size; 0 or negative selects GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives engine metrics: batch and job counters,
	// queue depth, per-job latency histogram, and per-worker job/busy-time
	// counters (engine_worker_<k>_*) from which utilization is derived.
	// Instrumentation never affects job order or results.
	Reg *obs.Registry
	// Stop, when non-nil, is the graceful-drain flag: once it reads true
	// no further jobs are dispatched; jobs already running finish
	// normally. A stopped batch's results are partial — boolean verdicts
	// (All, AllComplete) from a stopped batch must not be trusted as
	// exhaustive. SIGINT handling in conair-bench sets it.
	Stop *atomic.Bool
	// JobTimeout, when positive, arms a per-run wall-clock watchdog on
	// every interpreter job the engine executes (Run, RunSeeds,
	// AllComplete, RunJob): the run is interrupted cooperatively via
	// interp.Config.Interrupt and comes back as a hang failure instead of
	// wedging a worker forever.
	JobTimeout time.Duration
	// Recorder, when non-nil, captures the schedule of every interpreter
	// job the engine executes and writes failing runs to disk as
	// replayable artifacts (see replay.AutoRecorder).
	Recorder *replay.AutoRecorder
	// RunHook, when non-nil, is called after every interpreter job the
	// engine executes (Run, RunSeeds, AllComplete, RunJob) with the run's
	// provenance, result, latency, and — when FlightLimit or Recorder is
	// set — its schedule recording. It is the telemetry feed: the live
	// run registry (internal/obs/serve) installs itself here. The hook
	// runs on worker goroutines and must be safe for concurrent use; it
	// observes results, never alters them.
	RunHook RunHook
	// FlightLimit, when positive, arms an always-on bounded flight
	// recorder on every job (a sched.FlightRecorder ring of at most
	// FlightLimit segments): any failing run yields a complete replayable
	// recording in its RunInfo without -record having been asked for,
	// while long healthy runs wrap the ring and cost only its memory.
	// Ignored when Recorder is set (a full capture is already being
	// taken). Use replay/sched defaults via DefaultFlightLimit.
	FlightLimit int
}

// DefaultFlightLimit is the flight-recorder ring bound engines should use
// unless they have a reason not to.
const DefaultFlightLimit = sched.DefaultFlightSegments

// RunInfo is one executed job's telemetry record, delivered to RunHook.
type RunInfo struct {
	// Label and Seed are the job's replay.Meta provenance (Label is the
	// bug or module name by convention).
	Label string
	Seed  int64
	// Sched names the job's scheduler ("random", "pct", ...).
	Sched string
	// Elapsed is the job's wall-clock latency.
	Elapsed time.Duration
	// Result is the run's outcome (never nil; a panicked job arrives as a
	// mir.FailPanic result).
	Result *interp.Result
	// Recording is the job's schedule recording: the full capture when
	// the engine has a Recorder, the flight-ring capture when FlightLimit
	// is set, nil otherwise — and nil when the flight ring wrapped (see
	// RecordingTruncated).
	Recording *replay.Recording
	// RecordingTruncated reports that a flight recording existed but
	// wrapped its ring, so no complete replayable stream survives.
	RecordingTruncated bool
	// RecordingPath is the on-disk artifact path when an AutoRecorder
	// wrote one ("" otherwise).
	RecordingPath string
}

// RunHook observes completed jobs; see Engine.RunHook.
type RunHook func(RunInfo)

// stopped reports whether the graceful-drain flag is set.
func (e Engine) stopped() bool { return e.Stop != nil && e.Stop.Load() }

// workers resolves the pool size.
func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) across the pool and returns the results in job
// order. fn must be safe for concurrent invocation on distinct indices.
func Map[T any](e Engine, n int, fn func(i int) T) []T {
	out := make([]T, n)
	e.each(n, func(i int) bool {
		out[i] = fn(i)
		return true
	})
	return out
}

// Each runs fn(0..n-1) across the pool for side effects (fn typically
// writes into disjoint elements of a caller-owned slice).
func (e Engine) Each(n int, fn func(i int)) {
	e.each(n, func(i int) bool {
		fn(i)
		return true
	})
}

// All runs pred(0..n-1) across the pool and reports whether every call
// returned true. A false result cancels jobs that have not started yet —
// the boolean is deterministic either way, so the early exit never changes
// an observable outcome, only the work done to reach it.
func (e Engine) All(n int, pred func(i int) bool) bool {
	ok := e.each(n, pred)
	return ok
}

// workerObs is one worker's metric handles.
type workerObs struct {
	jobs, busy *obs.Counter
}

// instr is the per-batch instrumentation state; nil when the engine has
// no registry, so the uninstrumented path costs one nil check per job.
type instr struct {
	jobs    *obs.Counter
	depth   *obs.Gauge
	latency *obs.Histogram
	workers []workerObs
	settled atomic.Int64 // jobs that individually left the queue
}

// newInstr registers the batch in reg and returns per-batch handles.
func newInstr(reg *obs.Registry, w, n int) *instr {
	reg.Counter("engine_batches_total").Inc()
	reg.Gauge("engine_workers").Set(int64(w))
	in := &instr{
		jobs:    reg.Counter("engine_jobs_total"),
		depth:   reg.Gauge("engine_queue_depth"),
		latency: reg.Histogram("engine_job_ns", obs.ExpBuckets(10_000, 10, 7)),
		workers: make([]workerObs, w),
	}
	in.depth.Add(int64(n))
	for k := 0; k < w; k++ {
		in.workers[k] = workerObs{
			jobs: reg.Counter(fmt.Sprintf("engine_worker_%d_jobs_total", k)),
			busy: reg.Counter(fmt.Sprintf("engine_worker_%d_busy_ns_total", k)),
		}
	}
	return in
}

// run executes one job under instrumentation (worker is the pool slot).
// The accounting is deferred so a job that panics still leaves the queue
// and still charges its worker for the time it burned.
func (in *instr) run(worker, i int, fn func(i int) bool) bool {
	start := time.Now()
	defer func() {
		ns := time.Since(start).Nanoseconds()
		in.jobs.Inc()
		in.depth.Add(-1)
		in.settled.Add(1)
		in.latency.Observe(ns)
		in.workers[worker].jobs.Inc()
		in.workers[worker].busy.Add(ns)
	}()
	return fn(i)
}

// each is the pool core: an atomic job cursor drained by w workers.
// Returning false from fn stops the dispatch of new jobs; each reports
// whether every executed fn returned true.
func (e Engine) each(n int, fn func(i int) bool) bool {
	if n <= 0 {
		return true
	}
	w := e.workers()
	if w > n {
		w = n
	}
	var in *instr
	if e.Reg != nil {
		in = newInstr(e.Reg, w, n)
		// Jobs that never run — cancelled by an early exit, the Stop flag,
		// or a panic — must still leave the queue-depth gauge. One deferred
		// reconciliation covers every exit path (including a re-raised
		// panic); on a full batch settled == n and this is a no-op.
		defer func() { in.depth.Add(-(int64(n) - in.settled.Load())) }()
	}
	call := fn
	if w == 1 {
		// Sequential fast path: no goroutines, same semantics.
		if in != nil {
			call = func(i int) bool { return in.run(0, i, fn) }
		}
		for i := 0; i < n; i++ {
			if e.stopped() {
				return false
			}
			if !call(i) {
				return false
			}
		}
		return true
	}
	var (
		cursor    atomic.Int64
		failed    atomic.Bool
		panicOnce sync.Once
		panicVal  any
	)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			// A panic in fn would otherwise kill the whole process (an
			// unrecovered goroutine panic is fatal). Capture the first one,
			// stop dispatching, let the other workers drain, and re-raise it
			// from the caller's goroutine after wg.Wait.
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
					failed.Store(true)
				}
			}()
			for !failed.Load() && !e.stopped() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				ok := false
				if in != nil {
					ok = in.run(worker, i, fn)
				} else {
					ok = fn(i)
				}
				if !ok {
					failed.Store(true)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return !failed.Load() && !e.stopped()
}

// Job is one seeded interpreter run.
type Job struct {
	Mod *mir.Module
	// Cfg builds the run's Config; it must return a fresh scheduler per
	// call (schedulers are stateful and must never be shared across runs).
	Cfg func() interp.Config
}

// RunJob executes one interpreter run with the engine's hardening
// attached: the wall-clock watchdog (JobTimeout), schedule capture
// (Recorder) and panic containment. A panic inside the interpreter comes
// back as a failed result of kind mir.FailPanic whose message carries the
// panic value and stack — the pool and the remaining jobs are unaffected.
func (e Engine) RunJob(mod *mir.Module, cfg interp.Config, meta replay.Meta) (res *interp.Result) {
	start := time.Now()
	schedName := "random"
	if cfg.Sched != nil {
		schedName = cfg.Sched.Name()
	}
	if e.JobTimeout > 0 && cfg.Interrupt == nil {
		var flag atomic.Bool
		cfg.Interrupt = &flag
		t := time.AfterFunc(e.JobTimeout, func() { flag.Store(true) })
		defer t.Stop()
	}
	var finish func(*interp.Result) *replay.Recording
	var flight *replay.FlightCapture
	if e.Recorder != nil {
		cfg, finish = replay.Capture(mod, cfg, meta)
	} else if e.FlightLimit > 0 {
		cfg, flight = replay.CaptureFlight(mod, cfg, meta, e.FlightLimit)
	}
	defer func() {
		if p := recover(); p != nil {
			res = &interp.Result{Failure: &interp.Failure{
				Kind: mir.FailPanic,
				Msg:  fmt.Sprintf("panic: %v\n%s", p, debug.Stack()),
			}}
		}
		if res == nil {
			return
		}
		var rec *replay.Recording
		truncated := false
		path := ""
		func() {
			// Building the artifact prints and hashes the module; a module
			// malformed enough to panic the interpreter can panic the printer
			// too. The contained FailPanic result must survive even when no
			// artifact can be built from it.
			defer func() {
				if recover() != nil {
					rec, truncated, path = nil, false, ""
				}
			}()
			switch {
			case finish != nil:
				// Even a panicked run's partial schedule is worth keeping: it
				// is the prefix that drove the interpreter into the panic.
				rec = finish(res)
				path = e.Recorder.Save(rec, res)
			case flight != nil:
				rec = flight.Finish(res)
				truncated = rec == nil
			}
		}()
		if e.RunHook != nil {
			e.RunHook(RunInfo{
				Label:              meta.Label,
				Seed:               meta.Seed,
				Sched:              schedName,
				Elapsed:            time.Since(start),
				Result:             res,
				Recording:          rec,
				RecordingTruncated: truncated,
				RecordingPath:      path,
			})
		}
	}()
	return interp.RunModule(mod, cfg)
}

// Run executes the jobs and returns results in job order.
func (e Engine) Run(jobs []Job) []*interp.Result {
	return Map(e, len(jobs), func(i int) *interp.Result {
		return e.RunJob(jobs[i].Mod, jobs[i].Cfg(), replay.Meta{Label: jobs[i].Mod.Name})
	})
}

// SeedConfig is the standard experiment configuration for one seed.
func SeedConfig(seed, maxSteps int64) interp.Config {
	return interp.Config{Sched: sched.NewRandom(seed), MaxSteps: maxSteps}
}

// RunSeeds executes mod once per seed and returns results in seed order.
func (e Engine) RunSeeds(mod *mir.Module, seeds []int64, maxSteps int64) []*interp.Result {
	return Map(e, len(seeds), func(i int) *interp.Result {
		return e.RunJob(mod, SeedConfig(seeds[i], maxSteps), replay.Meta{Seed: seeds[i], Label: mod.Name})
	})
}

// AllComplete runs mod under seeds 0..runs-1 and reports whether every run
// completed. A failing seed cancels not-yet-started runs; the verdict is
// identical to the sequential sweep's.
func (e Engine) AllComplete(mod *mir.Module, runs int, maxSteps int64) bool {
	return e.All(runs, func(i int) bool {
		return e.RunJob(mod, SeedConfig(int64(i), maxSteps), replay.Meta{Seed: int64(i), Label: mod.Name}).Completed
	})
}

// Seq returns an engine pinned to one worker — the reference sequential
// path the determinism tests compare against.
func Seq() Engine { return Engine{Workers: 1} }
