package runner

// Telemetry-surface tests: the engine_queue_depth gauge's three drain
// paths (normal completion, early exit, Stop) must each return the gauge
// to zero, and the RunHook/flight-recorder feed must observe runs without
// perturbing them.

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"conair/internal/bugs"
	"conair/internal/interp"
	"conair/internal/obs"
	"conair/internal/replay"
)

func queueDepth(reg *obs.Registry) int64 { return reg.Gauge("engine_queue_depth").Value() }

// TestQueueDepthReturnsToZeroAfterCompletion: the plain full-batch path,
// on both the sequential fast path and the pooled path.
func TestQueueDepthReturnsToZeroAfterCompletion(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		e := Engine{Workers: workers, Reg: reg}
		e.Each(257, func(i int) {})
		if d := queueDepth(reg); d != 0 {
			t.Errorf("workers=%d: queue depth %d after completion, want 0", workers, d)
		}
		if jobs := reg.Counter("engine_jobs_total").Value(); jobs != 257 {
			t.Errorf("workers=%d: jobs_total %d, want 257", workers, jobs)
		}
	}
}

// TestQueueDepthReturnsToZeroAfterEarlyExit: a failing predicate cancels
// not-yet-started jobs; the cancelled jobs must still leave the queue.
func TestQueueDepthReturnsToZeroAfterEarlyExit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		e := Engine{Workers: workers, Reg: reg}
		if e.All(10_000, func(i int) bool { return i != 37 }) {
			t.Fatalf("workers=%d: failing batch reported success", workers)
		}
		if d := queueDepth(reg); d != 0 {
			t.Errorf("workers=%d: queue depth %d after early exit, want 0", workers, d)
		}
	}
}

// TestQueueDepthReturnsToZeroAfterStopDrain: the graceful-drain flag skips
// queued jobs; they too must leave the queue-depth gauge.
func TestQueueDepthReturnsToZeroAfterStopDrain(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		var stop atomic.Bool
		e := Engine{Workers: workers, Reg: reg, Stop: &stop}
		e.Each(10_000, func(i int) {
			if i == 5 {
				stop.Store(true)
			}
		})
		if !stop.Load() {
			t.Fatalf("workers=%d: stop flag never set (job 5 did not run?)", workers)
		}
		if d := queueDepth(reg); d != 0 {
			t.Errorf("workers=%d: queue depth %d after stop drain, want 0", workers, d)
		}
	}
}

// TestQueueDepthReturnsToZeroAfterPanicDrain: a panicking job stops
// dispatch and re-raises from the caller; the jobs it cancelled must
// still drain from the gauge.
func TestQueueDepthReturnsToZeroAfterPanicDrain(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		e := Engine{Workers: workers, Reg: reg}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic did not propagate to the caller")
				}
			}()
			e.Each(10_000, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
		if d := queueDepth(reg); d != 0 {
			t.Errorf("workers=%d: queue depth %d after panic drain, want 0", workers, d)
		}
	}
}

// collectHook returns a RunHook appending into a mutex-guarded slice.
func collectHook() (RunHook, func() []RunInfo) {
	var mu sync.Mutex
	var infos []RunInfo
	hook := func(info RunInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	}
	return hook, func() []RunInfo {
		mu.Lock()
		defer mu.Unlock()
		return append([]RunInfo(nil), infos...)
	}
}

// TestRunHookObservesEveryJob: every engine job produces exactly one
// RunInfo with its provenance, result, and — under FlightLimit — a
// recording that replays to the same failure for failing runs.
func TestRunHookObservesEveryJob(t *testing.T) {
	b := bugs.ByName("ZSNES")
	mod := b.Program(bugs.Config{Light: true, ForceBug: true})
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7}

	hook, infos := collectHook()
	e := Engine{Workers: 4, RunHook: hook, FlightLimit: DefaultFlightLimit}
	results := e.RunSeeds(mod, seeds, 0)

	got := infos()
	if len(got) != len(seeds) {
		t.Fatalf("hook observed %d runs, want %d", len(got), len(seeds))
	}
	verified := false
	for _, info := range got {
		if info.Label != mod.Name {
			t.Errorf("info.Label = %q, want %q", info.Label, mod.Name)
		}
		if info.Sched != "random" {
			t.Errorf("info.Sched = %q, want random", info.Sched)
		}
		if info.Result == nil {
			t.Fatal("info.Result is nil")
		}
		if info.Elapsed <= 0 {
			t.Error("info.Elapsed not positive")
		}
		if info.RecordingTruncated {
			continue
		}
		if info.Recording == nil {
			t.Fatal("untruncated flight capture has no recording")
		}
		if got, want := info.Recording.Fingerprint, replay.FingerprintOf(info.Result); got != want {
			t.Errorf("recording fingerprint %+v != result fingerprint %+v", got, want)
		}
		if info.Result.Failure != nil {
			if err := replay.Verify(mod, info.Recording); err != nil {
				t.Errorf("seed %d: flight recording does not verify: %v", info.Seed, err)
			}
			verified = true
		}
	}
	if !verified {
		t.Log("no failing seed in the sweep; flight replay verification not exercised")
	}
	// The hook observed the same pointers the caller got back.
	seen := map[*interp.Result]bool{}
	for _, info := range got {
		seen[info.Result] = true
	}
	for i, r := range results {
		if !seen[r] {
			t.Errorf("result %d never reached the hook", i)
		}
	}
}

// TestFlightRecordingDoesNotPerturbResults: an engine with the flight
// recorder armed returns bit-identical results to a plain one.
func TestFlightRecordingDoesNotPerturbResults(t *testing.T) {
	b := bugs.ByName("MySQL1")
	mod := b.Program(bugs.Config{Light: true, ForceBug: true})
	seeds := []int64{0, 1, 2, 3, 4, 5}

	plain := Seq().RunSeeds(mod, seeds, 0)
	flight := Engine{Workers: 1, FlightLimit: DefaultFlightLimit, RunHook: func(RunInfo) {}}.
		RunSeeds(mod, seeds, 0)
	for i := range seeds {
		if !reflect.DeepEqual(normalize(plain[i]), normalize(flight[i])) {
			t.Errorf("seed %d: flight-recorded result differs from plain run", seeds[i])
		}
	}
}

// TestFlightRingTruncationReported: a ring far smaller than the schedule
// wraps, and the hook sees the truncation instead of a lying artifact.
func TestFlightRingTruncationReported(t *testing.T) {
	b := bugs.ByName("ZSNES")
	mod := b.Program(bugs.Config{Light: true, ForceBug: true})

	hook, infos := collectHook()
	e := Engine{Workers: 1, RunHook: hook, FlightLimit: 2}
	e.RunSeeds(mod, []int64{1}, 0)

	got := infos()
	if len(got) != 1 {
		t.Fatalf("hook observed %d runs, want 1", len(got))
	}
	if !got[0].RecordingTruncated {
		t.Fatal("2-segment ring did not truncate on a multi-thread run")
	}
	if got[0].Recording != nil {
		t.Fatal("truncated capture still produced a recording")
	}
}

// TestRunHookObservesPanickedJob: the hook sees the contained FailPanic
// result, not a missing run.
func TestRunHookObservesPanickedJob(t *testing.T) {
	hook, infos := collectHook()
	e := Engine{RunHook: hook, FlightLimit: DefaultFlightLimit}
	res := e.RunJob(panickingModule(), SeedConfig(1, 0), replay.Meta{Label: "bad", Seed: 1})
	if res.Failure == nil || res.Failure.Kind.String() != "panic" {
		t.Fatalf("panicked job result = %+v, want FailPanic", res)
	}
	got := infos()
	if len(got) != 1 || got[0].Result != res {
		t.Fatalf("hook observed %d runs (want 1 matching the returned result)", len(got))
	}
}
