package runner

import (
	"reflect"
	"sync/atomic"
	"testing"

	"conair/internal/bugs"
	"conair/internal/interp"
)

func TestMapOrderingDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(Engine{Workers: workers}, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(Engine{}, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestAllReportsFailureAndCancels(t *testing.T) {
	e := Engine{Workers: 4}
	if !e.All(50, func(i int) bool { return true }) {
		t.Fatal("all-true batch reported failure")
	}
	var executed atomic.Int64
	ok := e.All(10_000, func(i int) bool {
		executed.Add(1)
		return i != 3
	})
	if ok {
		t.Fatal("batch with failing job reported success")
	}
	if n := executed.Load(); n == 10_000 {
		t.Error("failure did not cancel pending jobs")
	}
}

func TestEachCoversEveryIndex(t *testing.T) {
	hit := make([]atomic.Bool, 257)
	Engine{Workers: 8}.Each(len(hit), func(i int) { hit[i].Store(true) })
	for i := range hit {
		if !hit[i].Load() {
			t.Fatalf("index %d never executed", i)
		}
	}
}

// TestParallelMatchesSequentialRuns is the engine-level determinism check:
// the same (module, seed) jobs through a parallel pool and through the
// sequential reference path must produce identical results.
func TestParallelMatchesSequentialRuns(t *testing.T) {
	b := bugs.ByName("ZSNES")
	mod := b.Program(bugs.Config{Light: true, ForceBug: true})
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7}

	seq := Seq().RunSeeds(mod, seeds, 0)
	par := Engine{Workers: 4}.RunSeeds(mod, seeds, 0)

	for i := range seeds {
		if !reflect.DeepEqual(normalize(seq[i]), normalize(par[i])) {
			t.Errorf("seed %d: parallel result differs from sequential", seeds[i])
		}
	}
}

// normalize strips map-typed stats (per-checkpoint counters compare fine
// with DeepEqual, but nil-vs-empty is an encoding detail, not a result).
func normalize(r *interp.Result) *interp.Result {
	cp := *r
	if len(cp.Stats.CheckpointExecs) == 0 {
		cp.Stats.CheckpointExecs = nil
	}
	return &cp
}

func TestAllCompleteMatchesSequentialVerdict(t *testing.T) {
	b := bugs.ByName("HawkNL")
	forced := b.Program(bugs.Config{Light: true, ForceBug: true})
	want := Seq().AllComplete(forced, 16, 0)
	got := Engine{Workers: 4}.AllComplete(forced, 16, 0)
	if got != want {
		t.Errorf("parallel verdict %v, sequential %v", got, want)
	}
}
