package runner

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"conair/internal/bugs"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/replay"
	"conair/internal/sched"
)

func TestMapOrderingDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(Engine{Workers: workers}, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(Engine{}, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestAllReportsFailureAndCancels(t *testing.T) {
	e := Engine{Workers: 4}
	if !e.All(50, func(i int) bool { return true }) {
		t.Fatal("all-true batch reported failure")
	}
	var executed atomic.Int64
	ok := e.All(10_000, func(i int) bool {
		executed.Add(1)
		return i != 3
	})
	if ok {
		t.Fatal("batch with failing job reported success")
	}
	if n := executed.Load(); n == 10_000 {
		t.Error("failure did not cancel pending jobs")
	}
}

func TestEachCoversEveryIndex(t *testing.T) {
	hit := make([]atomic.Bool, 257)
	Engine{Workers: 8}.Each(len(hit), func(i int) { hit[i].Store(true) })
	for i := range hit {
		if !hit[i].Load() {
			t.Fatalf("index %d never executed", i)
		}
	}
}

// TestParallelMatchesSequentialRuns is the engine-level determinism check:
// the same (module, seed) jobs through a parallel pool and through the
// sequential reference path must produce identical results.
func TestParallelMatchesSequentialRuns(t *testing.T) {
	b := bugs.ByName("ZSNES")
	mod := b.Program(bugs.Config{Light: true, ForceBug: true})
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7}

	seq := Seq().RunSeeds(mod, seeds, 0)
	par := Engine{Workers: 4}.RunSeeds(mod, seeds, 0)

	for i := range seeds {
		if !reflect.DeepEqual(normalize(seq[i]), normalize(par[i])) {
			t.Errorf("seed %d: parallel result differs from sequential", seeds[i])
		}
	}
}

// normalize strips map-typed stats (per-checkpoint counters compare fine
// with DeepEqual, but nil-vs-empty is an encoding detail, not a result).
func normalize(r *interp.Result) *interp.Result {
	cp := *r
	if len(cp.Stats.CheckpointExecs) == 0 {
		cp.Stats.CheckpointExecs = nil
	}
	return &cp
}

func TestAllCompleteMatchesSequentialVerdict(t *testing.T) {
	b := bugs.ByName("HawkNL")
	forced := b.Program(bugs.Config{Light: true, ForceBug: true})
	want := Seq().AllComplete(forced, 16, 0)
	got := Engine{Workers: 4}.AllComplete(forced, 16, 0)
	if got != want {
		t.Errorf("parallel verdict %v, sequential %v", got, want)
	}
}

// panickingModule builds a structurally valid module whose first
// instruction references a global the module does not declare, which
// panics the interpreter (RunModule does not re-verify) — the in-process
// stand-in for any interpreter bug a fuzzer might trip mid-sweep.
func panickingModule() *mir.Module {
	m := mir.MustParse(`
module bad
func main() {
entry:
  %x = const 1
  ret 0
}
`)
	in := &m.Functions[0].Blocks[0].Instrs[0]
	in.Op, in.Global = mir.OpLoadG, 99
	return m
}

func okModule() *mir.Module {
	return mir.MustParse(`
module ok
func main() {
entry:
  ret 0
}
`)
}

// TestRunJobContainsPanic pins the robustness boundary: a panic inside the
// interpreter comes back as a FailPanic result carrying the panic value
// and stack, not as a process crash.
func TestRunJobContainsPanic(t *testing.T) {
	res := Engine{}.RunJob(panickingModule(),
		interp.Config{Sched: sched.NewRandom(1), MaxSteps: 1000}, replay.Meta{})
	if res.Failure == nil || res.Failure.Kind != mir.FailPanic {
		t.Fatalf("result = %+v, want FailPanic failure", res)
	}
	if !strings.Contains(res.Failure.Msg, "panic:") {
		t.Errorf("failure message lacks panic value: %q", res.Failure.Msg)
	}
}

// TestPanickingJobDoesNotKillBatch injects one panicking job into a
// parallel batch: the pool must survive and every other job must complete
// and land at its own index.
func TestPanickingJobDoesNotKillBatch(t *testing.T) {
	bad, good := panickingModule(), okModule()
	jobs := make([]Job, 8)
	for i := range jobs {
		m := good
		if i == 3 {
			m = bad
		}
		jobs[i] = Job{Mod: m, Cfg: func() interp.Config {
			return interp.Config{Sched: sched.NewRandom(1), MaxSteps: 1000}
		}}
	}
	out := Engine{Workers: 4}.Run(jobs)
	for i, r := range out {
		if i == 3 {
			if r.Failure == nil || r.Failure.Kind != mir.FailPanic {
				t.Fatalf("job 3 = %+v, want FailPanic", r)
			}
			continue
		}
		if !r.Completed {
			t.Errorf("job %d did not complete after sibling panicked: %+v", i, r)
		}
	}
}

// TestEachRepanicsFromCaller: a panic in a raw pool callback (not routed
// through RunJob) is re-raised on the caller's goroutine after the pool
// drains, never silently swallowed and never fatal to the process.
func TestEachRepanicsFromCaller(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want the job's panic value", p)
		}
	}()
	Engine{Workers: 4}.Each(100, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	t.Fatal("Each returned normally despite a panicking job")
}

// TestJobTimeoutWatchdog: a wedged run (unbounded self-loop) under a
// JobTimeout engine is interrupted cooperatively and reported as a hang
// failure instead of occupying a worker forever.
func TestJobTimeoutWatchdog(t *testing.T) {
	loop := mir.MustParse(`
module spin
func main() {
entry:
  jmp entry
}
`)
	e := Engine{JobTimeout: 30 * time.Millisecond}
	res := e.RunJob(loop, interp.Config{Sched: sched.NewRandom(1)}, replay.Meta{})
	if res.Failure == nil || res.Failure.Kind != mir.FailHang {
		t.Fatalf("result = %+v, want FailHang from the watchdog", res)
	}
	if !strings.Contains(res.Failure.Msg, "interrupted") {
		t.Errorf("failure message %q does not mention the interrupt", res.Failure.Msg)
	}
}

// TestStopDrainsPool: once the graceful-drain flag is set, no further jobs
// are dispatched and the batch reports incompleteness.
func TestStopDrainsPool(t *testing.T) {
	var stop atomic.Bool
	stop.Store(true)
	var executed atomic.Int64
	e := Engine{Workers: 4, Stop: &stop}
	if e.All(1000, func(i int) bool { executed.Add(1); return true }) {
		t.Error("stopped batch reported a complete verdict")
	}
	if n := executed.Load(); n != 0 {
		t.Errorf("%d jobs dispatched after stop", n)
	}
}
