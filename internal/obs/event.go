// Package obs is the runtime observability layer: structured trace events
// recorded by the interpreter into a per-run ring buffer, exporters to
// JSONL and Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto), and a process-wide metrics registry (counters, gauges,
// histograms) fed by the interpreter and the parallel run engine.
//
// The package is a leaf: it depends on nothing inside the repository, so
// every layer (interp, runner, experiments, the CLIs) can use it without
// import cycles. Tracing is strictly passive — recording an event never
// mutates interpreter state — so a traced run is bit-identical to an
// untraced one, a property pinned by the golden-fingerprint guard test in
// internal/experiments.
package obs

// Kind enumerates the typed trace events the interpreter emits.
type Kind uint8

const (
	// KindSchedPick is one scheduling decision: thread TID was chosen to
	// execute the instruction at Step. Emitted once per interpreter step,
	// it dominates trace volume and becomes the per-thread execution
	// slices of the Chrome export.
	KindSchedPick Kind = iota
	// KindThreadSpawn marks creation of thread TID (including main).
	KindThreadSpawn
	// KindThreadExit marks thread TID returning from its root frame;
	// Arg is its result value.
	KindThreadExit
	// KindThreadBlock marks TID leaving the runnable set; Arg is one of
	// the Block* reason codes.
	KindThreadBlock
	// KindLockAcquire marks a successful lock or timed-lock acquisition;
	// Arg is the lock address.
	KindLockAcquire
	// KindLockTimeout marks a timed-lock acquisition reporting timeout;
	// Arg is the lock address.
	KindLockTimeout
	// KindCheckpoint is one reexecution-point execution (register-image
	// save); Site is the checkpoint id.
	KindCheckpoint
	// KindRollback is one recovery longjmp; Site is the failure site,
	// Arg the retry count so far in the episode.
	KindRollback
	// KindEpisodeBegin opens a recovery episode for Site on TID (the
	// first rollback at that site).
	KindEpisodeBegin
	// KindEpisodeEnd closes a recovery episode: the site finally passed.
	// Arg is the episode's total retry count.
	KindEpisodeEnd
	// KindFailure is a detected failure (assert, wrong output, segfault,
	// deadlock, hang); Text carries the message.
	KindFailure
	// KindOutput is one output-instruction execution; Text is the label,
	// Arg the value.
	KindOutput

	numKinds = int(KindOutput) + 1
)

// Block reason codes carried in the Arg of a KindThreadBlock event.
const (
	BlockSleep int64 = iota
	BlockLock
	BlockJoin
	// BlockCond: parked on a condition variable (wait).
	BlockCond
	// BlockChanSend / BlockChanRecv: parked on a full (resp. empty)
	// bounded channel.
	BlockChanSend
	BlockChanRecv
)

var kindNames = [numKinds]string{
	"sched-pick", "thread-spawn", "thread-exit", "thread-block",
	"lock-acquire", "lock-timeout", "checkpoint", "rollback",
	"episode-begin", "episode-end", "failure", "output",
}

// String returns the stable wire name of the kind (used in JSONL and as
// Chrome event names).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a wire name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// MarshalText renders the kind name, so JSONL events are self-describing.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	v, ok := KindFromString(string(b))
	if !ok {
		return &UnknownKindError{Name: string(b)}
	}
	*k = v
	return nil
}

// UnknownKindError reports an unrecognized kind name during decoding.
type UnknownKindError struct{ Name string }

func (e *UnknownKindError) Error() string { return "obs: unknown event kind " + e.Name }

// Event is one trace record. The struct is fixed-size apart from Text
// (only failure and output events carry one), so ring-buffer recording
// never allocates.
type Event struct {
	// Step is the interpreter's virtual time (executed-instruction count)
	// at which the event occurred.
	Step int64 `json:"step"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// TID is the thread the event belongs to.
	TID int32 `json:"tid"`
	// Site is the failure-site or checkpoint id, when applicable.
	Site int32 `json:"site,omitempty"`
	// Arg is the kind-specific payload (lock address, retry count, block
	// reason, output or exit value).
	Arg int64 `json:"arg,omitempty"`
	// Text is the failure message or output label.
	Text string `json:"text,omitempty"`
}
