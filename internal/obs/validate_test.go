package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWriteTextValidates: everything WriteText emits — help text,
// histograms, counters — must pass the validator.
func TestWriteTextValidates(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("runs_total", "total runs; escapes: back\\slash and\nnewline")
	r.Counter("runs_total").Add(7)
	r.SetHelp("depth", "current queue depth")
	r.Gauge("depth").Set(-2) // gauges may be negative
	h := r.Histogram("lat_ns", ExpBuckets(10, 10, 5))
	for _, v := range []int64{3, 30, 3_000, 3_000_000} {
		h.Observe(v)
	}
	r.Histogram("empty_hist", []int64{1, 2}) // declared, never observed

	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatalf("WriteText output rejected: %v\n%s", err, b.String())
	}
	text := b.String()
	for _, want := range []string{
		"# HELP runs_total total runs; escapes: back\\\\slash and\\nnewline\n",
		"# HELP depth current queue depth\n# TYPE depth gauge\ndepth -2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestValidateExpositionRejects walks the violations the validator
// exists to catch; each sample must be rejected with a non-nil error.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no trailing newline": "a 1",
		"empty line":          "a 1\n\nb 2\n",
		"bad metric name":     "1bad 1\n",
		"bad value":           "a one\n",
		"unknown comment":     "# COMMENT a b\n",
		"unknown type":        "# TYPE a flummox\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\na 1\n",
		"TYPE after samples":  "a 1\n# TYPE a counter\n",
		"negative counter":    "# TYPE a counter\na -1\n",
		"duplicate sample":    "a 1\na 2\n",
		"non-contiguous":      "a 1\nb 2\na 3\n",
		"malformed label":     "a{le=\"x} 1\n",
		"hist no buckets":     "# TYPE h histogram\nh_sum 1\nh_count 1\n",
		"hist no sum":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"hist no count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"hist no +Inf":        "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
		"hist le not ascending": "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"hist not cumulative": "# TYPE h histogram\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"20\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"hist inf != count": "# TYPE h histogram\nh_bucket{le=\"10\"} 1\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"bucket without le": "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bad help escape":   "# HELP a bad \\q escape\n# TYPE a counter\na 1\n",
	}
	for name, input := range cases {
		if err := ValidateExposition([]byte(input)); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, input)
		}
	}
}

// TestValidateExpositionAccepts covers valid corner spellings that a
// too-strict validator would wrongly reject.
func TestValidateExpositionAccepts(t *testing.T) {
	cases := map[string]string{
		"empty input":      "",
		"untyped sample":   "a 1\n",
		"negative gauge":   "# TYPE g gauge\ng -5\n",
		"float value":      "a 1.25\n",
		"scientific value": "a 1.5e+03\n",
		"labelled sample":  "a{job=\"bench\",run=\"7\"} 1\n",
		"escaped label":    "a{msg=\"say \\\"hi\\\"\"} 1\n",
		"counter named _count": "# TYPE jobs_count counter\njobs_count 3\n" +
			"# TYPE other gauge\nother 1\n",
	}
	for name, input := range cases {
		if err := ValidateExposition([]byte(input)); err != nil {
			t.Errorf("%s: validator rejected valid input: %v\n%s", name, err, input)
		}
	}
}

// TestRegistryHammer is the concurrency satellite: N goroutines hammer
// Inc/Add/Observe on shared metrics while the main goroutine loops
// Snapshot and WriteText; every exposition read mid-flight must validate,
// and the final totals must balance. Run under -race this doubles as the
// registry's data-race certificate.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("hammer_ops_total", "ops performed by the hammer goroutines")
	const (
		workers = 8
		iters   = 2_000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			h := r.Histogram("hammer_lat_ns", ExpBuckets(10, 10, 6))
			for i := 0; i < iters; i++ {
				r.Counter("hammer_ops_total").Inc()
				r.Gauge("hammer_inflight").Add(1)
				h.Observe(int64(i * (k + 1)))
				r.Gauge("hammer_inflight").Add(-1)
				// Also churn the name maps, not just the metric values.
				r.Counter("hammer_worker_ops_total").Inc()
				r.SetHelp("hammer_inflight", "ops currently in flight")
			}
		}(k)
	}

	// Reader loop: snapshot + exposition under fire until writers finish.
	readerDone := make(chan error, 1)
	go func() {
		var b bytes.Buffer
		for !stop.Load() {
			snap := r.Snapshot()
			if snap["hammer_ops_total"] < 0 {
				readerDone <- errorfNoFormat("negative counter in snapshot")
				return
			}
			b.Reset()
			if err := r.WriteText(&b); err != nil {
				readerDone <- err
				return
			}
			if err := ValidateExposition(b.Bytes()); err != nil {
				readerDone <- err
				return
			}
		}
		readerDone <- nil
	}()

	wg.Wait()
	stop.Store(true)
	if err := <-readerDone; err != nil {
		t.Fatalf("reader under fire: %v", err)
	}

	if got := r.Counter("hammer_ops_total").Value(); got != workers*iters {
		t.Errorf("hammer_ops_total = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("hammer_inflight").Value(); got != 0 {
		t.Errorf("hammer_inflight = %d after quiesce, want 0", got)
	}
	if got := r.Histogram("hammer_lat_ns", nil).Snapshot().Count; got != workers*iters {
		t.Errorf("hammer_lat_ns count = %d, want %d", got, workers*iters)
	}
}

// errorfNoFormat keeps the reader goroutine free of testing.T (which must
// not be used off the test goroutine after the test can finish).
func errorfNoFormat(msg string) error { return &readerErr{msg} }

type readerErr struct{ msg string }

func (e *readerErr) Error() string { return e.msg }
