package obs

// A hand-rolled validator for the Prometheus text exposition format, used
// by the WriteText tests and by `conair-bench -check-exposition` in CI so
// a scrape of a live server is checked against the same grammar a real
// Prometheus scraper applies. It deliberately covers only the subset this
// repo emits (no timestamps, integer-valued samples with optional
// float syntax, only the `le` label on histogram buckets) but checks that
// subset strictly.

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(?:\.[0-9]+)?(?:e[+-][0-9]+)?|[+-]Inf|NaN)$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// expoSeries accumulates one metric family's samples during validation.
type expoSeries struct {
	typ     string
	buckets []bucketSample // histogram _bucket samples in emission order
	sum     *float64
	count   *float64
	value   *float64 // counter/gauge sample
	done    bool     // a different family has been seen since
}

type bucketSample struct {
	le    float64
	count float64
}

// ValidateExposition parses a text exposition and returns the first
// violation found, or nil. Enforced rules:
//
//   - every line is a # HELP / # TYPE comment or a sample, with a
//     trailing newline on the final line;
//   - metric and label names match the exposition grammar, values parse
//     as floats, label values use valid escapes;
//   - at most one TYPE per family, appearing before its samples, with a
//     known metric type, and each family's samples are contiguous;
//   - counters are non-negative;
//   - histograms have ascending le bounds with non-decreasing cumulative
//     counts, a +Inf bucket, _sum and _count, and +Inf == _count.
func ValidateExposition(data []byte) error {
	text := string(data)
	if text == "" {
		return nil
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("exposition does not end in a newline")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")

	series := map[string]*expoSeries{}
	current := "" // family of the sample block being read
	at := func(i int) string { return fmt.Sprintf("line %d", i+1) }

	get := func(fam string) *expoSeries {
		s, ok := series[fam]
		if !ok {
			s = &expoSeries{}
			series[fam] = s
		}
		return s
	}
	// switchTo marks the previously-read family finished; returning to a
	// finished family means its samples were not contiguous.
	switchTo := func(fam string, i int) error {
		if fam == current {
			return nil
		}
		if current != "" {
			get(current).done = true
		}
		if get(fam).done {
			return fmt.Errorf("%s: samples for %q are not contiguous", at(i), fam)
		}
		current = fam
		return nil
	}

	for i, line := range lines {
		switch {
		case line == "":
			return fmt.Errorf("%s: empty line", at(i))
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok && name == "" {
				return fmt.Errorf("%s: malformed HELP line", at(i))
			}
			if !metricNameRe.MatchString(name) {
				return fmt.Errorf("%s: invalid metric name %q in HELP", at(i), name)
			}
			if err := validHelpEscapes(help); err != nil {
				return fmt.Errorf("%s: %v", at(i), err)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("%s: malformed TYPE line", at(i))
			}
			name, typ := fields[0], fields[1]
			if !metricNameRe.MatchString(name) {
				return fmt.Errorf("%s: invalid metric name %q in TYPE", at(i), name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("%s: unknown metric type %q", at(i), typ)
			}
			s := get(name)
			if s.typ != "" {
				return fmt.Errorf("%s: duplicate TYPE for %q", at(i), name)
			}
			if s.value != nil || s.sum != nil || s.count != nil || len(s.buckets) > 0 {
				return fmt.Errorf("%s: TYPE for %q after its samples", at(i), name)
			}
			s.typ = typ
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("%s: unknown comment form %q", at(i), line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("%s: malformed sample %q", at(i), line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			val, err := parseExpoValue(valStr)
			if err != nil {
				return fmt.Errorf("%s: %v", at(i), err)
			}
			fam, kind := familyOf(name, series)
			if err := switchTo(fam, i); err != nil {
				return err
			}
			s := get(fam)
			switch kind {
			case "bucket":
				le, err := bucketLE(labels)
				if err != nil {
					return fmt.Errorf("%s: %v", at(i), err)
				}
				s.buckets = append(s.buckets, bucketSample{le: le, count: val})
			case "sum":
				if s.sum != nil {
					return fmt.Errorf("%s: duplicate %s_sum", at(i), fam)
				}
				s.sum = &val
			case "count":
				if s.count != nil {
					return fmt.Errorf("%s: duplicate %s_count", at(i), fam)
				}
				if val < 0 {
					return fmt.Errorf("%s: negative count %v", at(i), val)
				}
				s.count = &val
			default:
				if labels != "" {
					if err := validLabels(labels); err != nil {
						return fmt.Errorf("%s: %v", at(i), err)
					}
				}
				if s.value != nil {
					return fmt.Errorf("%s: duplicate sample for %q", at(i), name)
				}
				if s.typ == "counter" && val < 0 {
					return fmt.Errorf("%s: counter %q is negative (%v)", at(i), name, val)
				}
				s.value = &val
			}
		}
	}

	for fam, s := range series {
		if err := checkFamily(fam, s); err != nil {
			return err
		}
	}
	return nil
}

// familyOf strips a histogram-sample suffix when the base name is a
// declared histogram family, so `foo_count` belongs to histogram `foo`
// but a plain counter named `jobs_count` stands alone.
func familyOf(name string, series map[string]*expoSeries) (fam, kind string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if s, ok := series[base]; ok && s.typ == "histogram" {
			return base, suf[1:]
		}
	}
	return name, ""
}

// checkFamily enforces the per-family invariants once all samples are in.
func checkFamily(fam string, s *expoSeries) error {
	if s.typ != "histogram" {
		if len(s.buckets) > 0 || s.sum != nil || s.count != nil {
			return fmt.Errorf("family %q: histogram samples on a %q metric", fam, s.typ)
		}
		if s.typ != "" && s.value == nil {
			return fmt.Errorf("family %q: TYPE declared but no sample", fam)
		}
		return nil
	}
	if len(s.buckets) == 0 {
		return fmt.Errorf("histogram %q: no _bucket samples", fam)
	}
	if s.sum == nil {
		return fmt.Errorf("histogram %q: missing _sum", fam)
	}
	if s.count == nil {
		return fmt.Errorf("histogram %q: missing _count", fam)
	}
	prev := math.Inf(-1)
	prevCount := 0.0
	for _, b := range s.buckets {
		if b.le <= prev {
			return fmt.Errorf("histogram %q: le bounds not ascending (%v after %v)", fam, b.le, prev)
		}
		if b.count < prevCount {
			return fmt.Errorf("histogram %q: cumulative count decreases at le=%v (%v < %v)",
				fam, b.le, b.count, prevCount)
		}
		prev, prevCount = b.le, b.count
	}
	last := s.buckets[len(s.buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %q: missing +Inf bucket", fam)
	}
	if last.count != *s.count {
		return fmt.Errorf("histogram %q: +Inf bucket %v != _count %v", fam, last.count, *s.count)
	}
	return nil
}

// bucketLE extracts the le bound from a _bucket label set.
func bucketLE(labels string) (float64, error) {
	if labels == "" {
		return 0, fmt.Errorf("_bucket sample without labels")
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, pair := range splitLabels(body) {
		m := labelRe.FindStringSubmatch(pair)
		if m == nil {
			return 0, fmt.Errorf("malformed label %q", pair)
		}
		if m[1] != "le" {
			continue
		}
		v, err := parseExpoValue(m[2])
		if err != nil {
			return 0, fmt.Errorf("bad le bound %q: %v", m[2], err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("_bucket sample without an le label")
}

// validLabels checks every pair in a {k="v",...} block.
func validLabels(labels string) error {
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if body == "" {
		return nil
	}
	for _, pair := range splitLabels(body) {
		if !labelRe.MatchString(pair) {
			return fmt.Errorf("malformed label %q", pair)
		}
	}
	return nil
}

// splitLabels splits k="v",k2="v2" on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// parseExpoValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings the format uses.
func parseExpoValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}

// validHelpEscapes rejects a bare backslash not forming \\ or \n.
func validHelpEscapes(s string) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
			return fmt.Errorf("invalid escape in HELP text at byte %d", i)
		}
		i++
	}
	return nil
}
