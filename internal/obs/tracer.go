package obs

// DefaultTracerCap is the ring capacity NewTracer uses for capacity <= 0:
// large enough to hold every event of a light forced-failure replay, small
// enough (~16 MiB of Event structs) to be cheap to allocate per run.
const DefaultTracerCap = 1 << 18

// Tracer is a per-run, ring-buffered event sink. It is single-writer by
// design — one interpreter run is one goroutine — and therefore does no
// locking; give each concurrent run its own Tracer.
//
// When the ring fills, the oldest events are overwritten, but per-kind
// counts keep the exact totals, so consumers can both inspect the recent
// window and reconcile full counts against interpreter Stats.
type Tracer struct {
	buf     []Event
	next    int  // next write index
	wrapped bool // buf has been fully written at least once
	counts  [numKinds]int64
}

// NewTracer returns a tracer holding the last capacity events
// (DefaultTracerCap if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends e, overwriting the oldest event when the ring is full.
func (t *Tracer) Record(e Event) {
	if int(e.Kind) < numKinds {
		t.counts[e.Kind]++
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.wrapped = true
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Events returns the retained events in chronological order. The slice is
// a copy; recording may continue afterwards.
func (t *Tracer) Events() []Event {
	if !t.wrapped {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Count reports how many events of kind k were recorded in total,
// including any that the ring has since overwritten.
func (t *Tracer) Count(k Kind) int64 {
	if int(k) < numKinds {
		return t.counts[k]
	}
	return 0
}

// Recorded reports the total number of events ever recorded.
func (t *Tracer) Recorded() int64 {
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// Dropped reports how many recorded events the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	return t.Recorded() - int64(len(t.buf))
}

// Reset clears the ring and the counts, keeping the allocated capacity.
func (t *Tracer) Reset() {
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
	t.counts = [numKinds]int64{}
}
