package obs

import (
	"fmt"
	"io"
	"sort"
)

// EpisodeSpan is a recovery episode reconstructed from the event stream.
type EpisodeSpan struct {
	Site      int32
	TID       int32
	Start     int64
	End       int64 // -1 when the episode never closed
	Retries   int64
	Recovered bool
}

// Duration returns the span length in steps, or -1 if it never closed.
func (s *EpisodeSpan) Duration() int64 {
	if !s.Recovered {
		return -1
	}
	return s.End - s.Start
}

// Summary condenses one run's event stream for human-readable reporting.
type Summary struct {
	// Counts is the per-kind event tally of the summarized window.
	Counts [numKinds]int64
	// Episodes holds reconstructed recovery episodes in start order.
	Episodes []EpisodeSpan
	// FirstStep and LastStep bound the summarized window.
	FirstStep, LastStep int64
	// Failures lists failure events (usually zero or one).
	Failures []Event
}

// Count returns the tally for kind k.
func (s *Summary) Count(k Kind) int64 {
	if int(k) < numKinds {
		return s.Counts[k]
	}
	return 0
}

// Summarize reconstructs episodes and tallies from a chronological event
// stream (as returned by Tracer.Events).
func Summarize(events []Event) *Summary {
	s := &Summary{}
	if len(events) > 0 {
		s.FirstStep = events[0].Step
		s.LastStep = events[len(events)-1].Step
	}
	type key struct {
		tid  int32
		site int32
	}
	open := map[key]*EpisodeSpan{}
	for i := range events {
		e := &events[i]
		if int(e.Kind) < numKinds {
			s.Counts[e.Kind]++
		}
		switch e.Kind {
		case KindEpisodeBegin:
			open[key{e.TID, e.Site}] = &EpisodeSpan{
				Site: e.Site, TID: e.TID, Start: e.Step, End: -1,
			}
		case KindRollback:
			if sp := open[key{e.TID, e.Site}]; sp != nil {
				sp.Retries++
			}
		case KindEpisodeEnd:
			k := key{e.TID, e.Site}
			sp := open[k]
			if sp == nil {
				sp = &EpisodeSpan{Site: e.Site, TID: e.TID, Start: e.Step}
			}
			delete(open, k)
			sp.End = e.Step
			sp.Recovered = true
			sp.Retries = e.Arg // the end event carries the exact total
			s.Episodes = append(s.Episodes, *sp)
		case KindFailure:
			s.Failures = append(s.Failures, *e)
		}
	}
	for _, sp := range open {
		s.Episodes = append(s.Episodes, *sp)
	}
	sort.Slice(s.Episodes, func(i, j int) bool {
		a, b := &s.Episodes[i], &s.Episodes[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Site < b.Site
	})
	return s
}

// WriteTimeline prints the human-readable recovery-episode timeline.
func (s *Summary) WriteTimeline(w io.Writer) {
	fmt.Fprintf(w, "steps %d..%d: %d sched decisions, %d checkpoints, %d rollbacks, %d lock acquisitions\n",
		s.FirstStep, s.LastStep, s.Count(KindSchedPick),
		s.Count(KindCheckpoint), s.Count(KindRollback), s.Count(KindLockAcquire))
	if len(s.Episodes) == 0 {
		fmt.Fprintln(w, "no recovery episodes")
	}
	for i := range s.Episodes {
		e := &s.Episodes[i]
		if e.Recovered {
			fmt.Fprintf(w, "episode site=%d thread=%d: steps %d..%d (%d steps, %d retries, recovered)\n",
				e.Site, e.TID, e.Start, e.End, e.Duration(), e.Retries)
		} else {
			fmt.Fprintf(w, "episode site=%d thread=%d: opened at step %d, never recovered (%d retries)\n",
				e.Site, e.TID, e.Start, e.Retries)
		}
	}
	for i := range s.Failures {
		f := &s.Failures[i]
		fmt.Fprintf(w, "failure at step %d on thread %d (site %d): %s\n",
			f.Step, f.TID, f.Site, f.Text)
	}
}
