package obs

import (
	"reflect"
	"testing"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Step: int64(i), Kind: KindSchedPick, TID: int32(i % 2)})
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	for i, e := range ev {
		if e.Step != int64(i) {
			t.Errorf("event %d has step %d", i, e.Step)
		}
	}
	if tr.Recorded() != 5 || tr.Dropped() != 0 {
		t.Errorf("recorded=%d dropped=%d, want 5/0", tr.Recorded(), tr.Dropped())
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Step: int64(i), Kind: KindCheckpoint})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	want := []int64{6, 7, 8, 9}
	for i, e := range ev {
		if e.Step != want[i] {
			t.Errorf("event %d has step %d, want %d", i, e.Step, want[i])
		}
	}
	if tr.Count(KindCheckpoint) != 10 {
		t.Errorf("count survived the ring: got %d, want 10", tr.Count(KindCheckpoint))
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Event{Kind: KindRollback})
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Recorded() != 0 || tr.Count(KindRollback) != 0 {
		t.Error("reset did not clear the tracer")
	}
	tr.Record(Event{Step: 42, Kind: KindFailure, Text: "boom"})
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Step != 42 {
		t.Errorf("tracer unusable after reset: %+v", ev)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Error("KindFromString accepted garbage")
	}
}

func TestSummarizeReconstructsEpisodes(t *testing.T) {
	events := []Event{
		{Step: 1, Kind: KindThreadSpawn, TID: 0},
		{Step: 10, Kind: KindEpisodeBegin, TID: 1, Site: 3},
		{Step: 10, Kind: KindRollback, TID: 1, Site: 3, Arg: 1},
		{Step: 14, Kind: KindRollback, TID: 1, Site: 3, Arg: 2},
		{Step: 20, Kind: KindEpisodeEnd, TID: 1, Site: 3, Arg: 2},
		{Step: 30, Kind: KindEpisodeBegin, TID: 2, Site: 5},
		{Step: 30, Kind: KindRollback, TID: 2, Site: 5, Arg: 1},
		{Step: 40, Kind: KindFailure, TID: 2, Site: 5, Text: "assert"},
	}
	s := Summarize(events)
	if len(s.Episodes) != 2 {
		t.Fatalf("got %d episodes, want 2", len(s.Episodes))
	}
	closed := s.Episodes[0]
	want := EpisodeSpan{Site: 3, TID: 1, Start: 10, End: 20, Retries: 2, Recovered: true}
	if !reflect.DeepEqual(closed, want) {
		t.Errorf("closed episode = %+v, want %+v", closed, want)
	}
	if d := closed.Duration(); d != 10 {
		t.Errorf("closed duration = %d, want 10", d)
	}
	openEp := s.Episodes[1]
	if openEp.Recovered || openEp.Retries != 1 || openEp.Site != 5 {
		t.Errorf("open episode = %+v", openEp)
	}
	if d := openEp.Duration(); d != -1 {
		t.Errorf("open duration = %d, want -1", d)
	}
	if len(s.Failures) != 1 || s.Failures[0].Text != "assert" {
		t.Errorf("failures = %+v", s.Failures)
	}
	if s.Count(KindRollback) != 3 {
		t.Errorf("rollback count = %d, want 3", s.Count(KindRollback))
	}
}
