package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("jobs") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1115 {
		t.Errorf("sum = %d, want 1115", s.Sum)
	}
	// Bucket counts are per-bucket (<= bound), last slot is the +Inf overflow.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []int64{10, 100}).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Gauge("depth").Set(2)
	h := r.Histogram("steps", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	snap := r.Snapshot()
	if snap["runs_total"] != 3 || snap["depth"] != 2 {
		t.Errorf("snapshot scalars wrong: %v", snap)
	}
	if snap["steps_count"] != 3 || snap["steps_sum"] != 5055 {
		t.Errorf("snapshot histogram aggregate wrong: %v", snap)
	}
	// Cumulative buckets.
	if snap["steps_bucket_le_10"] != 1 || snap["steps_bucket_le_100"] != 2 {
		t.Errorf("snapshot histogram buckets wrong: %v", snap)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 3",
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE steps histogram",
		`steps_bucket{le="10"} 1`,
		`steps_bucket{le="100"} 2`,
		`steps_bucket{le="+Inf"} 3`,
		"steps_sum 5055",
		"steps_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Deterministic output: two writes must be byte-identical.
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("WriteText is not deterministic")
	}
}
