package serve

import (
	"encoding/json"
	"sync"
)

// sseEvent is one formatted server-sent event ready to write to a client.
type sseEvent struct {
	name string
	data []byte // single-line JSON payload
}

// hub fans completed-run (and caller-published) events out to SSE
// subscribers. Each subscriber gets a bounded buffered channel; a
// subscriber that cannot keep up has events dropped (counted) rather than
// ever blocking the publisher — telemetry must not be able to stall the
// engine's RunHook path.
type hub struct {
	mu      sync.Mutex
	subs    map[chan sseEvent]struct{}
	dropped int64
	closed  bool
}

// subBuffer is the per-client event buffer; beyond it events are dropped
// for that client.
const subBuffer = 64

func newHub() *hub {
	return &hub{subs: map[chan sseEvent]struct{}{}}
}

// subscribe registers a client channel; the returned cancel removes it.
func (h *hub) subscribe() (<-chan sseEvent, func()) {
	ch := make(chan sseEvent, subBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// publish marshals payload and sends it to every subscriber without
// blocking; it reports how many clients dropped the event.
func (h *hub) publish(event string, payload any) int {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{"error":"unencodable payload"}`)
	}
	ev := sseEvent{name: event, data: data}
	drops := 0
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			drops++
			h.dropped++
		}
	}
	h.mu.Unlock()
	return drops
}

// close terminates every subscriber stream.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}
