// Package serve is the live half of internal/obs: an embeddable HTTP
// server that exposes the process's metrics registry, pprof, a bounded
// registry of recent interpreter runs (fed by runner.Engine via RunHook),
// per-run flight recordings and Chrome traces, and a server-sent-event
// stream of run completions. It depends only on the standard library and
// never drives execution — everything it serves is observational.
package serve

import (
	"fmt"
	"sync"

	"conair/internal/replay"
	"conair/internal/runner"
)

// DefaultRunCap bounds the run registry: a multi-hour sweep completes
// millions of jobs, but forensics only ever needs the recent window, so
// older records (and their retained flight recordings) are evicted FIFO.
const DefaultRunCap = 1024

// RunRecord is one completed job as the registry retains it; the JSON
// form is what /runs serves.
type RunRecord struct {
	ID    int64  `json:"id"`
	Label string `json:"label"`
	Seed  int64  `json:"seed"`
	Sched string `json:"sched"`

	Completed bool `json:"completed"`
	// Verdict is "ok" for completed runs, the failure kind otherwise
	// ("deadlock", "assert", "panic", ...).
	Verdict string `json:"verdict"`
	// FailureKey is the schedule-independent failure identity
	// (kind@pos#site), "completed" for clean runs.
	FailureKey string `json:"failureKey"`
	FailureMsg string `json:"failureMsg,omitempty"`

	Steps     int64 `json:"steps"`
	Episodes  int   `json:"episodes"`
	Rollbacks int64 `json:"rollbacks"`
	LatencyNS int64 `json:"latencyNs"`

	HasRecording       bool   `json:"hasRecording"`
	RecordingTruncated bool   `json:"recordingTruncated"`
	RecordingPath      string `json:"recordingPath,omitempty"`

	recording *replay.Recording // retained server-side for /recording and /trace
	flushed   bool              // already written to disk by FlushFlight
}

// RunRegistry is a bounded, concurrency-safe log of completed runs. IDs
// are assigned in completion order starting at 1 and never reused; Get by
// ID keeps working until the record is evicted.
type RunRegistry struct {
	mu      sync.Mutex
	cap     int
	nextID  int64
	evicted int64
	runs    []*RunRecord // insertion order, oldest first
}

// NewRunRegistry returns a registry keeping the most recent capacity runs
// (DefaultRunCap if capacity <= 0).
func NewRunRegistry(capacity int) *RunRegistry {
	if capacity <= 0 {
		capacity = DefaultRunCap
	}
	return &RunRegistry{cap: capacity, nextID: 1}
}

// Add records one completed job and returns its registry record.
func (rr *RunRegistry) Add(info runner.RunInfo) RunRecord {
	rec := &RunRecord{
		Label:              info.Label,
		Seed:               info.Seed,
		Sched:              info.Sched,
		LatencyNS:          info.Elapsed.Nanoseconds(),
		HasRecording:       info.Recording != nil,
		RecordingTruncated: info.RecordingTruncated,
		RecordingPath:      info.RecordingPath,
		recording:          info.Recording,
	}
	if r := info.Result; r != nil {
		fp := replay.FingerprintOf(r)
		rec.Completed = r.Completed
		rec.Verdict = "ok"
		if r.Failure != nil {
			rec.Verdict = r.Failure.Kind.String()
			rec.FailureMsg = r.Failure.Msg
		}
		rec.FailureKey = fp.FailureKey()
		rec.Steps = r.Stats.Steps
		rec.Episodes = len(r.Stats.Episodes)
		rec.Rollbacks = r.Stats.Rollbacks
	}

	rr.mu.Lock()
	rec.ID = rr.nextID
	rr.nextID++
	rr.runs = append(rr.runs, rec)
	if len(rr.runs) > rr.cap {
		over := len(rr.runs) - rr.cap
		rr.evicted += int64(over)
		rr.runs = append(rr.runs[:0:0], rr.runs[over:]...)
	}
	out := *rec
	rr.mu.Unlock()
	return out
}

// List returns the retained records oldest first, plus the total number
// of runs ever added and how many have been evicted.
func (rr *RunRegistry) List() (runs []RunRecord, total, evicted int64) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	runs = make([]RunRecord, len(rr.runs))
	for i, r := range rr.runs {
		runs[i] = *r
	}
	return runs, rr.nextID - 1, rr.evicted
}

// Get returns the record with the given ID, if still retained.
func (rr *RunRegistry) Get(id int64) (RunRecord, bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if r := rr.find(id); r != nil {
		return *r, true
	}
	return RunRecord{}, false
}

// Recording returns the retained flight (or auto-) recording for a run.
func (rr *RunRegistry) Recording(id int64) (*replay.Recording, bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if r := rr.find(id); r != nil {
		return r.recording, true
	}
	return nil, false
}

// find locates a record by ID; IDs are assigned in insertion order, so
// the slice is sorted and the offset from the oldest retained ID is the
// index. Caller holds the lock.
func (rr *RunRegistry) find(id int64) *RunRecord {
	if len(rr.runs) == 0 {
		return nil
	}
	i := id - rr.runs[0].ID
	if i < 0 || i >= int64(len(rr.runs)) {
		return nil
	}
	return rr.runs[i]
}

// FlushFlight writes every retained failing run's complete recording that
// has not already been flushed to dir as a .cnr artifact, returning the
// written paths. This is the SIGINT path: whatever failures the flight
// recorder caught survive the process.
func (rr *RunRegistry) FlushFlight(dir string) ([]string, error) {
	rr.mu.Lock()
	var pending []*RunRecord
	for _, r := range rr.runs {
		if r.recording != nil && !r.Completed && !r.flushed && r.RecordingPath == "" {
			pending = append(pending, r)
		}
	}
	rr.mu.Unlock()

	var paths []string
	for _, r := range pending {
		path := fmt.Sprintf("%s/flight-%06d-%s-seed%d.cnr", dir, r.ID, sanitizeName(r.Label), r.Seed)
		if err := replay.WriteFile(path, r.recording); err != nil {
			return paths, err
		}
		rr.mu.Lock()
		r.flushed = true
		r.RecordingPath = path
		rr.mu.Unlock()
		paths = append(paths, path)
	}
	return paths, nil
}

// sanitizeName strips path-hostile characters from a label used in a
// flushed artifact filename.
func sanitizeName(s string) string {
	if s == "" {
		return "run"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
