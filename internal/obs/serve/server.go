package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/runner"
)

// Server is the live telemetry endpoint: metrics, pprof, the run
// registry, flight recordings, on-demand traces and an SSE event stream,
// all on one mux. Construct with New, feed it via Hook, expose it with
// Start (or mount Handler yourself).
type Server struct {
	Reg  *obs.Registry
	Runs *RunRegistry

	hub *hub
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// New builds a server around reg (a fresh registry if nil) with a
// default-capacity run registry.
func New(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		Reg:  reg,
		Runs: NewRunRegistry(0),
		hub:  newHub(),
		mux:  http.NewServeMux(),
	}
	describeMetrics(reg)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /runs/{id}/recording", s.handleRecording)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// describeMetrics attaches HELP text to the metrics this process family
// exposes, so a scrape is self-documenting.
func describeMetrics(reg *obs.Registry) {
	for name, help := range map[string]string{
		"engine_batches_total":         "batches dispatched by runner.Engine",
		"engine_jobs_total":            "jobs executed across all batches",
		"engine_queue_depth":           "jobs currently queued or running (rests at 0)",
		"engine_workers":               "worker pool size of the most recent batch",
		"engine_job_ns":                "per-job wall-clock latency in nanoseconds",
		"serve_runs_total":             "runs observed by the telemetry hook",
		"serve_runs_failed_total":      "observed runs that ended in a failure",
		"serve_flight_total":           "runs with a complete flight recording retained",
		"serve_flight_truncated_total": "runs whose flight ring wrapped (no replayable tape)",
		"serve_sse_dropped_total":      "SSE events dropped on slow subscribers",
	} {
		reg.SetHelp(name, help)
	}
}

// Hook returns the runner.RunHook that feeds this server: each completed
// job is added to the run registry, counted in the metrics registry, and
// fanned out to SSE subscribers as a "run" event. The hook is safe for
// concurrent workers and never blocks on slow telemetry consumers.
func (s *Server) Hook() runner.RunHook {
	runs := s.Reg.Counter("serve_runs_total")
	failed := s.Reg.Counter("serve_runs_failed_total")
	flight := s.Reg.Counter("serve_flight_total")
	truncated := s.Reg.Counter("serve_flight_truncated_total")
	dropped := s.Reg.Counter("serve_sse_dropped_total")
	return func(info runner.RunInfo) {
		rec := s.Runs.Add(info)
		runs.Inc()
		if !rec.Completed {
			failed.Inc()
		}
		if rec.HasRecording {
			flight.Inc()
		}
		if rec.RecordingTruncated {
			truncated.Inc()
		}
		dropped.Add(int64(s.hub.publish("run", rec)))
	}
}

// Publish fans an application event (bench section boundaries, sweep
// progress, ...) out to SSE subscribers.
func (s *Server) Publish(event string, payload any) {
	s.Reg.Counter("serve_sse_dropped_total").Add(int64(s.hub.publish(event, payload)))
}

// FlushFlight writes retained failing-run recordings to dir (see
// RunRegistry.FlushFlight).
func (s *Server) FlushFlight(dir string) ([]string, error) {
	return s.Runs.FlushFlight(dir)
}

// Handler returns the server's mux for mounting into an existing server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// in a background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Close stops the listener and terminates SSE streams. Safe to call when
// Start was never called.
func (s *Server) Close() error {
	s.hub.close()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Render to a buffer first so a mid-write snapshot error cannot emit a
	// half exposition with a 200 status.
	var b bytes.Buffer
	if err := s.Reg.WriteText(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs, total, evicted := s.Runs.List()
	writeJSON(w, map[string]any{
		"total":    total,
		"evicted":  evicted,
		"retained": len(runs),
		"runs":     runs,
	})
}

// runID parses the {id} path value; a helper shared by the per-run routes.
func runID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, err := runID(r)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	rec, ok := s.Runs.Get(id)
	if !ok {
		http.Error(w, "no such run (evicted or never completed)", http.StatusNotFound)
		return
	}
	detail := map[string]any{"run": rec}
	if recording, _ := s.Runs.Recording(id); recording != nil {
		detail["recording"] = map[string]any{
			"picks":      recording.Picks(),
			"switches":   recording.Switches(),
			"segments":   len(recording.Segments),
			"moduleHash": recording.ModuleHash,
			"sched":      recording.SchedName,
		}
	}
	writeJSON(w, detail)
}

func (s *Server) handleRecording(w http.ResponseWriter, r *http.Request) {
	id, err := runID(r)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	rec, ok := s.Runs.Get(id)
	if !ok {
		http.Error(w, "no such run (evicted or never completed)", http.StatusNotFound)
		return
	}
	recording, _ := s.Runs.Recording(id)
	if recording == nil {
		msg := "run has no recording (engine ran without a flight recorder)"
		if rec.RecordingTruncated {
			msg = "flight ring wrapped: only the schedule tail survives, which cannot replay"
		}
		http.Error(w, msg, http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="flight-%06d-%s-seed%d.cnr"`, rec.ID, sanitizeName(rec.Label), rec.Seed))
	_, _ = w.Write(replay.Encode(recording))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := runID(r)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	recording, ok := s.Runs.Recording(id)
	if !ok {
		http.Error(w, "no such run (evicted or never completed)", http.StatusNotFound)
		return
	}
	if recording == nil {
		http.Error(w, "run has no replayable recording to trace", http.StatusConflict)
		return
	}
	mod, err := recording.Module()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// Re-execute the recorded schedule with a trace sink attached; the
	// replay is deterministic, so the trace faithfully depicts the
	// original run without the original having paid for tracing.
	tracer := obs.NewTracer(0)
	_, _ = replay.Run(mod, recording, replay.RunOptions{Sink: tracer})
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w, tracer.Events()); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": conair telemetry stream\n\n")
	flusher.Flush()

	events, cancel := s.hub.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			flusher.Flush()
		}
	}
}

// writeJSON renders v indented with a correct content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
