package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"conair/internal/bugs"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/runner"
)

// newServedEngine wires a server-fed engine the way the CLIs do: shared
// metrics registry, run hook, always-on flight recorder.
func newServedEngine() (*Server, runner.Engine) {
	srv := New(obs.NewRegistry())
	return srv, runner.Engine{
		Workers:     2,
		Reg:         srv.Reg,
		RunHook:     srv.Hook(),
		FlightLimit: runner.DefaultFlightLimit,
	}
}

// sweep drives a forced-bug sweep through the engine and returns the
// module it ran.
func sweep(e runner.Engine) *mir.Module {
	mod := bugs.ByName("ZSNES").Program(bugs.Config{Light: true, ForceBug: true})
	e.RunSeeds(mod, []int64{0, 1, 2, 3}, 0)
	return mod
}

// get fetches a path from the test server and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

// runsIndex is the /runs response shape.
type runsIndex struct {
	Total    int64       `json:"total"`
	Evicted  int64       `json:"evicted"`
	Retained int         `json:"retained"`
	Runs     []RunRecord `json:"runs"`
}

// TestServeEndToEnd is the acceptance path: a sweep with failures under
// an always-on flight recorder, then every artifact retrieved over HTTP —
// runs index, run detail, a .cnr that verifies bit-identically against
// the module, a Chrome trace, and a validator-clean /metrics exposition.
func TestServeEndToEnd(t *testing.T) {
	srv, e := newServedEngine()
	defer srv.Close()
	mod := sweep(e)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, ts, "/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs = %d", code)
	}
	var idx runsIndex
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("/runs JSON: %v", err)
	}
	if idx.Total != 4 || idx.Retained != 4 || idx.Evicted != 0 {
		t.Fatalf("/runs totals = %+v, want 4 runs retained", idx)
	}
	var failed *RunRecord
	for i := range idx.Runs {
		r := &idx.Runs[i]
		if r.Label != mod.Name || r.Sched != "random" {
			t.Errorf("run %d provenance = %q/%q", r.ID, r.Label, r.Sched)
		}
		if !r.Completed && r.HasRecording && failed == nil {
			failed = r
		}
	}
	if failed == nil {
		t.Fatal("forced-bug sweep produced no failed run with a flight recording")
	}
	if failed.Verdict == "ok" || failed.FailureKey == "completed" {
		t.Fatalf("failed run has clean verdict: %+v", failed)
	}

	// Run detail includes recording metadata.
	code, body = get(t, ts, fmt.Sprintf("/runs/%d", failed.ID))
	if code != http.StatusOK {
		t.Fatalf("/runs/%d = %d", failed.ID, code)
	}
	var detail struct {
		Run       RunRecord      `json:"run"`
		Recording map[string]any `json:"recording"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("run detail JSON: %v", err)
	}
	if detail.Run.ID != failed.ID || detail.Recording == nil {
		t.Fatalf("run detail = %+v", detail)
	}

	// The flight .cnr replays bit-identically: same failure fingerprint.
	code, body = get(t, ts, fmt.Sprintf("/runs/%d/recording", failed.ID))
	if code != http.StatusOK {
		t.Fatalf("/runs/%d/recording = %d: %s", failed.ID, code, body)
	}
	rec, err := replay.Decode(body)
	if err != nil {
		t.Fatalf("served .cnr does not decode: %v", err)
	}
	if err := replay.Verify(mod, rec); err != nil {
		t.Fatalf("served .cnr does not verify: %v", err)
	}
	if rec.Fingerprint.FailureKey() != failed.FailureKey {
		t.Fatalf("recording failure key %q != registry %q",
			rec.Fingerprint.FailureKey(), failed.FailureKey)
	}

	// On-demand Chrome trace of the recorded schedule.
	code, body = get(t, ts, fmt.Sprintf("/runs/%d/trace", failed.ID))
	if code != http.StatusOK {
		t.Fatalf("/runs/%d/trace = %d: %s", failed.ID, code, body)
	}
	trace, err := obs.ReadChromeTrace(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("served trace invalid: %v", err)
	}
	if trace.CountName("failure") == 0 {
		t.Error("trace of a failing run carries no failure instant")
	}

	// /metrics validates and reflects the sweep.
	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"serve_runs_total 4",
		"# HELP engine_queue_depth",
		"engine_queue_depth 0",
		"# TYPE engine_job_ns histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeErrorPaths pins the failure-mode status codes.
func TestServeErrorPaths(t *testing.T) {
	srv, e := newServedEngine()
	defer srv.Close()

	// One clean run (no failure, but flight recording exists) and one
	// truncated run.
	ok := mir.MustParse("module ok\nfunc main() {\nentry:\n  ret 0\n}\n")
	e.RunJob(ok, runner.SeedConfig(1, 0), replay.Meta{Label: "clean", Seed: 1})
	tiny := e
	tiny.FlightLimit = 2
	mod := bugs.ByName("ZSNES").Program(bugs.Config{Light: true, ForceBug: true})
	tiny.RunJob(mod, runner.SeedConfig(1, 0), replay.Meta{Label: "wrapped", Seed: 1})
	bare := e
	bare.FlightLimit = 0
	bare.RunJob(ok, runner.SeedConfig(2, 0), replay.Meta{Label: "bare", Seed: 2})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/runs/abc", http.StatusBadRequest},
		{"/runs/999", http.StatusNotFound},
		{"/runs/999/recording", http.StatusNotFound},
		{"/runs/2/recording", http.StatusConflict}, // truncated ring
		{"/runs/3/recording", http.StatusConflict}, // no flight recorder
		{"/runs/3/trace", http.StatusConflict},
		{"/nope", http.StatusNotFound},
	} {
		if code, _ := get(t, ts, tc.path); code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.want)
		}
	}
}

// TestServeEvents subscribes to the SSE stream and checks both hook-fed
// run events and caller-published events arrive, framed correctly.
func TestServeEvents(t *testing.T) {
	srv, e := newServedEngine()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The subscription registers shortly after the handler's hello
	// comment; publish until the subscriber sees something, then drive a
	// run through the engine and expect its event too.
	done := make(chan struct{})
	defer close(done)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				srv.Publish("tick", map[string]int{"i": i})
			}
		}
	}()
	go func() {
		// One failing run, fed once the stream is live; send a few in case
		// the first lands before the subscription.
		for i := 0; i < 3; i++ {
			select {
			case <-done:
				return
			case <-time.After(20 * time.Millisecond):
				sweep(e)
			}
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(10 * time.Second)
	sawTick, sawRun := false, false
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-done:
				return
			}
		}
	}()
	var event string
	for !(sawTick && sawRun) {
		select {
		case <-deadline:
			t.Fatalf("SSE stream: tick=%v run=%v after 10s", sawTick, sawRun)
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				payload := strings.TrimPrefix(line, "data: ")
				switch event {
				case "tick":
					sawTick = true
				case "run":
					var rec RunRecord
					if err := json.Unmarshal([]byte(payload), &rec); err != nil {
						t.Fatalf("run event payload: %v", err)
					}
					if rec.ID == 0 || rec.Label == "" {
						t.Fatalf("run event incomplete: %+v", rec)
					}
					sawRun = true
				}
			}
		}
	}
}

// TestFlushFlight writes retained failing recordings to disk exactly
// once, and the flushed .cnr round-trips through the decoder and
// verifier.
func TestFlushFlight(t *testing.T) {
	srv, e := newServedEngine()
	defer srv.Close()
	mod := sweep(e)

	dir := t.TempDir()
	paths, err := srv.FlushFlight(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no flight artifacts flushed from a forced-bug sweep")
	}
	for _, p := range paths {
		rec, err := replay.ReadFile(p)
		if err != nil {
			t.Fatalf("flushed %s does not read back: %v", p, err)
		}
		if err := replay.Verify(mod, rec); err != nil {
			t.Fatalf("flushed %s does not verify: %v", p, err)
		}
	}
	// The registry now reports the on-disk path.
	runs, _, _ := srv.Runs.List()
	flushed := 0
	for _, r := range runs {
		if r.RecordingPath != "" {
			flushed++
		}
	}
	if flushed != len(paths) {
		t.Errorf("%d runs report a recording path, %d were flushed", flushed, len(paths))
	}
	// Idempotent: nothing left to flush.
	again, err := srv.FlushFlight(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("second flush wrote %d files, want 0", len(again))
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != len(paths) {
		t.Errorf("dir has %d files, want %d", len(entries), len(paths))
	}
}

// TestRunRegistryEviction pins the bounded-window semantics: IDs keep
// growing, old records (and their recordings) fall off, Get misses
// evicted IDs.
func TestRunRegistryEviction(t *testing.T) {
	rr := NewRunRegistry(3)
	for seed := int64(1); seed <= 5; seed++ {
		rr.Add(runner.RunInfo{Label: "x", Seed: seed, Sched: "random"})
	}
	runs, total, evicted := rr.List()
	if total != 5 || evicted != 2 || len(runs) != 3 {
		t.Fatalf("List = %d runs, total %d, evicted %d", len(runs), total, evicted)
	}
	if runs[0].ID != 3 || runs[2].ID != 5 {
		t.Fatalf("retained window = %d..%d, want 3..5", runs[0].ID, runs[2].ID)
	}
	if _, ok := rr.Get(2); ok {
		t.Error("evicted run still retrievable")
	}
	if got, ok := rr.Get(4); !ok || got.Seed != 4 {
		t.Errorf("Get(4) = %+v, %v", got, ok)
	}
	if _, ok := rr.Get(6); ok {
		t.Error("future run id retrievable")
	}
}
