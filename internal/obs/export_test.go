package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleEvents is a miniature but representative run trace: two threads,
// an execution slice each, one closed recovery episode, one failure.
func sampleEvents() []Event {
	return []Event{
		{Step: 0, Kind: KindThreadSpawn, TID: 0},
		{Step: 0, Kind: KindSchedPick, TID: 0},
		{Step: 1, Kind: KindSchedPick, TID: 0},
		{Step: 2, Kind: KindThreadSpawn, TID: 1},
		{Step: 2, Kind: KindSchedPick, TID: 1},
		{Step: 3, Kind: KindCheckpoint, TID: 1, Site: 4},
		{Step: 3, Kind: KindSchedPick, TID: 1},
		{Step: 4, Kind: KindThreadBlock, TID: 1, Arg: BlockLock},
		{Step: 4, Kind: KindSchedPick, TID: 0},
		{Step: 5, Kind: KindEpisodeBegin, TID: 1, Site: 4},
		{Step: 5, Kind: KindRollback, TID: 1, Site: 4, Arg: 1},
		{Step: 6, Kind: KindLockAcquire, TID: 1, Arg: 128},
		{Step: 8, Kind: KindEpisodeEnd, TID: 1, Site: 4, Arg: 1},
		{Step: 9, Kind: KindOutput, TID: 0, Text: "done", Arg: 1},
		{Step: 9, Kind: KindFailure, TID: 0, Site: 2, Text: "assert failed"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSONL round trip drifted:\n got %+v\nwant %+v", got, want)
	}
}

// TestChromeTraceRoundTrip is the emit → parse → validate check the CI
// workflow runs by name: the exported JSON must decode back into an
// equivalent trace and pass schema validation.
func TestChromeTraceRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	ct, err := ReadChromeTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("round trip failed validation: %v", err)
	}

	built := BuildChromeTrace(events)
	if len(ct.TraceEvents) != len(built.TraceEvents) {
		t.Fatalf("round trip changed event count: %d vs %d",
			len(ct.TraceEvents), len(built.TraceEvents))
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}

	// One metadata entry per thread plus the process name.
	if got := ct.CountName("thread_name"); got != 2 {
		t.Errorf("thread_name metadata count = %d, want 2", got)
	}
	if got := ct.CountName("process_name"); got != 1 {
		t.Errorf("process_name metadata count = %d, want 1", got)
	}
	// Instants survive with exact counts.
	for name, want := range map[string]int{
		"checkpoint": 1, "rollback": 1, "thread-spawn": 2,
		"thread-block": 1, "lock-acquire": 1, "failure": 1, "output": 1,
	} {
		if got := ct.CountName(name); got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
	// The closed episode becomes a duration slice with its site in the name.
	if got := ct.CountName("recovery site 4"); got != 1 {
		t.Errorf("recovery slice count = %d, want 1", got)
	}
	for i := range ct.TraceEvents {
		e := &ct.TraceEvents[i]
		if e.Name == "recovery site 4" {
			if e.Ph != "X" || e.TS != 5 || e.Dur != 3 {
				t.Errorf("episode slice = %+v, want X ts=5 dur=3", e)
			}
		}
	}

	// Determinism: exporting the same events twice is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, events); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != raw {
		t.Error("chrome trace export is not deterministic")
	}
}

func TestChromeTraceExecSliceMerging(t *testing.T) {
	// Thread 0 runs steps 0-2, thread 1 steps 3-4, thread 0 again at 5:
	// three exec slices, never one per pick.
	events := []Event{
		{Step: 0, Kind: KindSchedPick, TID: 0},
		{Step: 1, Kind: KindSchedPick, TID: 0},
		{Step: 2, Kind: KindSchedPick, TID: 0},
		{Step: 3, Kind: KindSchedPick, TID: 1},
		{Step: 4, Kind: KindSchedPick, TID: 1},
		{Step: 5, Kind: KindSchedPick, TID: 0},
	}
	ct := BuildChromeTrace(events)
	var slices []ChromeEvent
	for _, e := range ct.TraceEvents {
		if e.Name == "exec" {
			slices = append(slices, e)
		}
	}
	want := []struct{ tid, ts, dur int64 }{{0, 0, 3}, {1, 3, 2}, {0, 5, 1}}
	if len(slices) != len(want) {
		t.Fatalf("got %d exec slices, want %d: %+v", len(slices), len(want), slices)
	}
	for i, w := range want {
		s := slices[i]
		if int64(s.TID) != w.tid || s.TS != w.ts || s.Dur != w.dur {
			t.Errorf("slice %d = tid=%d ts=%d dur=%d, want %+v", i, s.TID, s.TS, s.Dur, w)
		}
	}
}

func TestChromeTraceUnclosedEpisode(t *testing.T) {
	events := []Event{
		{Step: 1, Kind: KindEpisodeBegin, TID: 2, Site: 9},
		{Step: 1, Kind: KindRollback, TID: 2, Site: 9, Arg: 1},
		{Step: 7, Kind: KindFailure, TID: 2, Site: 9, Text: "stuck"},
	}
	ct := BuildChromeTrace(events)
	found := false
	for _, e := range ct.TraceEvents {
		if e.Name == "recovery site 9" {
			found = true
			if e.Dur != 6 {
				t.Errorf("unclosed episode dur = %d, want 6", e.Dur)
			}
			if rec, ok := e.Args["recovered"].(bool); !ok || rec {
				t.Errorf("unclosed episode args = %v, want recovered:false", e.Args)
			}
		}
	}
	if !found {
		t.Error("unclosed episode produced no slice")
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		ev   ChromeEvent
	}{
		{"empty name", ChromeEvent{Ph: "X"}},
		{"unknown phase", ChromeEvent{Name: "x", Ph: "B"}},
		{"metadata without args", ChromeEvent{Name: "x", Ph: "M"}},
		{"negative duration", ChromeEvent{Name: "x", Ph: "X", Dur: -1}},
		{"bad instant scope", ChromeEvent{Name: "x", Ph: "i", Scope: "z"}},
	}
	for _, c := range cases {
		tr := &ChromeTrace{TraceEvents: []ChromeEvent{c.ev}}
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid event %+v", c.name, c.ev)
		}
	}
}
