package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL writes one JSON object per event, in order. The format
// round-trips exactly through ReadJSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ChromeEvent is one entry of the Chrome trace_event format (the subset
// this package emits: M metadata, X complete slices, i instants).
// Timestamps are microseconds; the exporter maps one interpreter step to
// one microsecond.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace_event format, loadable
// in chrome://tracing and Perfetto.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tracePID is the single process id all tracks live under.
const tracePID = 1

// BuildChromeTrace converts raw events into trace_event entries:
//
//   - metadata naming the process and one track per thread;
//   - per-thread execution slices, built by merging consecutive
//     sched-pick events of the same thread (one slice per scheduling
//     quantum);
//   - recovery episodes as duration slices on their thread's track
//     (episode-begin .. episode-end; an episode still open at the end of
//     the trace is closed at the last event's step and marked
//     unrecovered);
//   - everything else (checkpoints, rollbacks, lock events, spawns,
//     exits, blocks, failures, outputs) as instant events.
func BuildChromeTrace(events []Event) *ChromeTrace {
	t := &ChromeTrace{DisplayTimeUnit: "ms"}
	t.TraceEvents = append(t.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "conair interpreter run"},
	})

	var lastStep int64
	threads := map[int32]bool{}
	for i := range events {
		if events[i].Step > lastStep {
			lastStep = events[i].Step
		}
		threads[events[i].TID] = true
	}
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, int(tid))
	}
	sort.Ints(tids)
	for _, tid := range tids {
		t.TraceEvents = append(t.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", tid)},
		})
	}

	// Merge consecutive sched-picks of one thread into execution slices.
	var execTID int32 = -1
	var execStart, execSteps int64
	flushExec := func() {
		if execSteps > 0 {
			t.TraceEvents = append(t.TraceEvents, ChromeEvent{
				Name: "exec", Cat: "sched", Ph: "X",
				TS: execStart, Dur: execSteps,
				PID: tracePID, TID: int(execTID),
			})
		}
		execSteps = 0
	}

	type episodeKey struct {
		tid  int32
		site int32
	}
	open := map[episodeKey]int64{} // open episode → start step

	instant := func(e *Event, name string, args map[string]any) ChromeEvent {
		return ChromeEvent{
			Name: name, Cat: "conair", Ph: "i", Scope: "t",
			TS: e.Step, PID: tracePID, TID: int(e.TID), Args: args,
		}
	}

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindSchedPick:
			if e.TID != execTID || execSteps == 0 || e.Step != execStart+execSteps {
				flushExec()
				execTID, execStart = e.TID, e.Step
			}
			execSteps = e.Step - execStart + 1
			continue
		case KindEpisodeBegin:
			open[episodeKey{e.TID, e.Site}] = e.Step
			continue
		case KindEpisodeEnd:
			k := episodeKey{e.TID, e.Site}
			start, ok := open[k]
			if !ok {
				start = e.Step // end without begin (begin fell out of the ring)
			}
			delete(open, k)
			t.TraceEvents = append(t.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("recovery site %d", e.Site), Cat: "recovery",
				Ph: "X", TS: start, Dur: e.Step - start,
				PID: tracePID, TID: int(e.TID),
				Args: map[string]any{"site": e.Site, "retries": e.Arg, "recovered": true},
			})
			continue
		case KindCheckpoint:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "checkpoint", map[string]any{"site": e.Site}))
		case KindRollback:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "rollback", map[string]any{"site": e.Site, "retry": e.Arg}))
		case KindThreadSpawn:
			t.TraceEvents = append(t.TraceEvents, instant(e, "thread-spawn", nil))
		case KindThreadExit:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "thread-exit", map[string]any{"result": e.Arg}))
		case KindThreadBlock:
			reason := "sleep"
			switch e.Arg {
			case BlockLock:
				reason = "lock"
			case BlockJoin:
				reason = "join"
			case BlockCond:
				reason = "cond"
			case BlockChanSend:
				reason = "chan-send"
			case BlockChanRecv:
				reason = "chan-recv"
			}
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "thread-block", map[string]any{"reason": reason}))
		case KindLockAcquire:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "lock-acquire", map[string]any{"addr": e.Arg}))
		case KindLockTimeout:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "lock-timeout", map[string]any{"addr": e.Arg}))
		case KindFailure:
			ev := instant(e, "failure", map[string]any{"site": e.Site, "msg": e.Text})
			ev.Scope = "g" // failures end the run: global scope
			t.TraceEvents = append(t.TraceEvents, ev)
		case KindOutput:
			t.TraceEvents = append(t.TraceEvents,
				instant(e, "output", map[string]any{"text": e.Text, "value": e.Arg}))
		}
	}
	flushExec()

	// Episodes never closed: extend to the end of the trace, unrecovered.
	unclosed := make([]episodeKey, 0, len(open))
	for k := range open {
		unclosed = append(unclosed, k)
	}
	sort.Slice(unclosed, func(i, j int) bool {
		if unclosed[i].tid != unclosed[j].tid {
			return unclosed[i].tid < unclosed[j].tid
		}
		return unclosed[i].site < unclosed[j].site
	})
	for _, k := range unclosed {
		start := open[k]
		t.TraceEvents = append(t.TraceEvents, ChromeEvent{
			Name: fmt.Sprintf("recovery site %d", k.site), Cat: "recovery",
			Ph: "X", TS: start, Dur: lastStep - start,
			PID: tracePID, TID: int(k.tid),
			Args: map[string]any{"site": k.site, "recovered": false},
		})
	}
	return t
}

// WriteChromeTrace renders events as trace_event JSON on w.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(BuildChromeTrace(events)); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadChromeTrace parses trace_event JSON written by WriteChromeTrace and
// validates its schema.
func ReadChromeTrace(r io.Reader) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the schema invariants Perfetto and chrome://tracing
// rely on: known phases, required fields per phase, non-negative
// timestamps and durations.
func (t *ChromeTrace) Validate() error {
	for i := range t.TraceEvents {
		e := &t.TraceEvents[i]
		if e.Name == "" {
			return fmt.Errorf("obs: trace event %d: empty name", i)
		}
		switch e.Ph {
		case "M":
			if e.Args == nil {
				return fmt.Errorf("obs: metadata event %d (%s): missing args", i, e.Name)
			}
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				return fmt.Errorf("obs: slice event %d (%s): negative ts/dur", i, e.Name)
			}
		case "i":
			if e.TS < 0 {
				return fmt.Errorf("obs: instant event %d (%s): negative ts", i, e.Name)
			}
			if e.Scope != "t" && e.Scope != "g" && e.Scope != "p" && e.Scope != "" {
				return fmt.Errorf("obs: instant event %d (%s): bad scope %q", i, e.Name, e.Scope)
			}
		default:
			return fmt.Errorf("obs: event %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	return nil
}

// CountName returns how many trace events carry the given name — the hook
// the round-trip tests use to reconcile exported traces against
// interpreter statistics.
func (t *ChromeTrace) CountName(name string) int {
	n := 0
	for i := range t.TraceEvents {
		if t.TraceEvents[i].Name == name {
			n++
		}
	}
	return n
}
