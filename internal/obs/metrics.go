package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets (plus a
// +Inf overflow bucket) and tracks sum and count, Prometheus-style.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending upper bounds
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []int64 // upper bounds; the implicit last bucket is +Inf
	Counts []int64 // per-bucket counts, len(Bounds)+1
	Sum    int64
	Count  int64
}

// Snapshot copies the histogram state under the lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// ExpBuckets builds n exponentially growing upper bounds starting at
// start: start, start*factor, ... Convenient for step counts and
// nanosecond durations, which span many orders of magnitude.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	out := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		out = append(out, int64(v))
		v *= factor
	}
	return out
}

// Registry holds named metrics. Metrics are created on first use and live
// for the registry's lifetime; all accessors are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// SetHelp attaches a one-line description to a metric name; WriteText
// emits it as a # HELP line. Safe to call before or after the metric's
// first use.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if new (bounds are ignored on later calls).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Snapshot flattens every metric into a name→value map: counters and
// gauges directly, histograms as name_count, name_sum and
// name_bucket_le_<bound> entries.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := map[string]int64{}
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		s := h.Snapshot()
		out[k+"_count"] = s.Count
		out[k+"_sum"] = s.Sum
		cum := int64(0)
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			out[fmt.Sprintf("%s_bucket_le_%d", k, b)] = cum
		}
	}
	return out
}

// WriteText renders a deterministic, Prometheus-flavoured text exposition
// of every metric, sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	var names []string
	type entry struct {
		kind string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	all := map[string]entry{}
	for k, v := range r.counters {
		all[k] = entry{kind: "counter", c: v}
		names = append(names, k)
	}
	for k, v := range r.gauges {
		all[k] = entry{kind: "gauge", g: v}
		names = append(names, k)
	}
	for k, v := range r.hists {
		all[k] = entry{kind: "histogram", h: v}
		names = append(names, k)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(names)
	for _, name := range names {
		e := all[name]
		if h, ok := help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, e.kind); err != nil {
			return err
		}
		switch e.kind {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", name, e.c.Value())
		case "gauge":
			fmt.Fprintf(w, "%s %d\n", name, e.g.Value())
		case "histogram":
			s := e.h.Snapshot()
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
			fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		}
	}
	return nil
}

// escapeHelp applies the exposition-format escaping for HELP text:
// backslash and newline, in that order.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
