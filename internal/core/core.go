// Package core orchestrates the ConAir pipeline: failure-site
// identification, reexecution-point identification, optimization,
// inter-procedural selection (internal/analysis) and code transformation
// (internal/transform), producing a hardened module plus a machine-readable
// report. Every table of the paper's evaluation is a projection of these
// reports combined with interpreter run statistics.
package core

import (
	"fmt"
	"time"

	"conair/internal/analysis"
	"conair/internal/mir"
	"conair/internal/transform"
)

// Options configures a hardening run.
type Options struct {
	// Mode selects survival (harden everything) or fix (one known site).
	Mode analysis.Mode
	// FixSite names the failing statement in fix mode.
	FixSite mir.Pos
	// Policy selects basic (§3.2) or extended (§4.1) regions; the default
	// is extended, the paper's evaluated configuration.
	Policy mir.RegionPolicy
	// Optimize toggles §4.2 pruning (default on).
	Optimize bool
	// Interproc toggles §4.3 inter-procedural recovery (default on).
	Interproc bool
	// InterprocDepth bounds caller levels (default 3).
	InterprocDepth int
	// GuardOutputs pre-inserts an automatic output-correctness oracle
	// before every output of a register value (the paper's fputs null-
	// parameter guard, §3.4), making wrong-output sites recoverable
	// without developer annotations.
	GuardOutputs bool
	// PruneSafeSites drops dereference sites the static prover shows can
	// never fault (§3.4).
	PruneSafeSites bool
	// Transform tunes the planted recovery code.
	Transform transform.Options
}

// DefaultOptions is the paper's evaluated configuration in survival mode.
func DefaultOptions() Options {
	return Options{
		Mode:           analysis.Survival,
		Policy:         mir.PolicyExtended,
		Optimize:       true,
		Interproc:      true,
		InterprocDepth: analysis.DefaultInterprocDepth,
	}
}

// FixOptions is the paper's configuration in fix mode for one site.
func FixOptions(site mir.Pos) Options {
	o := DefaultOptions()
	o.Mode = analysis.Fix
	o.FixSite = site
	return o
}

// Report summarizes what hardening did — the static-side numbers of
// Tables 4, 5 and 6 and §6.4.
type Report struct {
	Module string
	Mode   analysis.Mode
	// Census is the per-kind potential-failure-site count (Table 4).
	Census analysis.Census
	// StaticReexecPoints is the number of planted checkpoints (Table 5,
	// "Static").
	StaticReexecPoints int
	// StaticDeadlockPoints / StaticNonDeadlockPoints classify planted
	// checkpoints by the site kinds they serve (a shared point can count
	// in both; Table 6 reports the two classes separately).
	StaticDeadlockPoints    int
	StaticNonDeadlockPoints int
	// RecoverySites counts sites with planted recovery code.
	RecoverySites int
	// PrunedSites counts sites removed by the §4.2 optimization.
	PrunedSites int
	// InterprocSites counts sites recovered inter-procedurally.
	InterprocSites int
	// AnalysisTime is the static-analysis wall time (§6.4).
	AnalysisTime time.Duration
	// TransformTime is the rewrite wall time.
	TransformTime time.Duration
	// Analysis retains the full per-site results for drill-down.
	Analysis *analysis.Result
}

// Hardened bundles the transformed module with its report.
type Hardened struct {
	Module *mir.Module
	Report Report
}

// Harden runs the full ConAir pipeline on m. The input module is not
// modified.
func Harden(m *mir.Module, opts Options) (*Hardened, error) {
	if err := mir.Verify(m); err != nil {
		return nil, fmt.Errorf("conair: input module invalid: %w", err)
	}
	if opts.GuardOutputs {
		// The guard pass inserts oracle assertions, shifting positions;
		// it is incompatible with a fix-mode site named against the
		// unguarded program.
		if opts.Mode == analysis.Fix {
			return nil, fmt.Errorf("conair: GuardOutputs is a survival-mode option (fix-mode sites are positions in the unguarded program)")
		}
		m = transform.GuardOutputs(m)
	}
	aopts := analysis.Options{
		Mode:           opts.Mode,
		FixSite:        opts.FixSite,
		Policy:         opts.Policy,
		Optimize:       opts.Optimize,
		Interproc:      opts.Interproc,
		InterprocDepth: opts.InterprocDepth,
		PruneSafeSites: opts.PruneSafeSites,
	}
	res, err := analysis.Analyze(m, aopts)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	out := transform.Apply(m, res, opts.Transform)
	transformTime := time.Since(t0)

	if err := mir.Verify(out); err != nil {
		return nil, fmt.Errorf("conair: transformed module invalid (internal error): %w", err)
	}

	rep := Report{
		Module:             m.Name,
		Mode:               opts.Mode,
		Census:             res.Census,
		StaticReexecPoints: res.StaticReexecPoints(),
		PrunedSites:        res.PrunedSites,
		InterprocSites:     res.InterprocSites,
		AnalysisTime:       res.Duration,
		TransformTime:      transformTime,
		Analysis:           res,
	}
	for _, cp := range res.Checkpoints {
		if cp.ServesDeadlock {
			rep.StaticDeadlockPoints++
		}
		if cp.ServesNonDeadlock {
			rep.StaticNonDeadlockPoints++
		}
	}
	for i := range res.Sites {
		if res.Sites[i].Recovers() {
			rep.RecoverySites++
		}
	}
	return &Hardened{Module: out, Report: rep}, nil
}
