package core

import (
	"strings"
	"testing"

	"conair/internal/analysis"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

const racy = `
global flag = 0
func reader() {
entry:
  %v = loadg @flag
  assert %v, "too early"
  ret
}
func main() {
entry:
  %t = spawn reader()
  sleep 150
  storeg @flag, 1
  join %t
  ret 0
}
`

func TestHardenSurvivalPipeline(t *testing.T) {
	m := mir.MustParse(racy)
	h, err := Harden(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := h.Report
	if rep.Mode != analysis.Survival {
		t.Errorf("mode = %v", rep.Mode)
	}
	if rep.Census.Assert != 1 || rep.StaticReexecPoints != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.RecoverySites != 1 {
		t.Errorf("recovery sites = %d", rep.RecoverySites)
	}
	if rep.AnalysisTime <= 0 || rep.TransformTime <= 0 {
		t.Errorf("times not recorded: %+v", rep)
	}
	if rep.Analysis == nil || len(rep.Analysis.Sites) != 1 {
		t.Errorf("analysis drill-down missing")
	}
	r := interp.RunModule(h.Module, interp.Config{Sched: sched.NewRandom(1)})
	if !r.Completed {
		t.Fatalf("hardened run failed: %v", r.Failure)
	}
}

func TestHardenFixPipeline(t *testing.T) {
	m := mir.MustParse(racy)
	pos, err := analysis.FindSite(m, "reader", mir.OpAssert, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(m, FixOptions(pos))
	if err != nil {
		t.Fatal(err)
	}
	if h.Report.Mode != analysis.Fix || h.Report.Census.Total() != 1 {
		t.Errorf("report = %+v", h.Report)
	}
}

func TestHardenRejectsInvalidModule(t *testing.T) {
	m := mir.MustParse(racy)
	m.Functions[0].Blocks[0].Instrs[0].Global = 99
	if _, err := Harden(m, DefaultOptions()); err == nil {
		t.Fatal("invalid module must be rejected")
	}
}

func TestHardenRejectsBadFixSite(t *testing.T) {
	m := mir.MustParse(racy)
	if _, err := Harden(m, FixOptions(mir.Pos{Fn: 99})); err == nil {
		t.Fatal("bad fix site must be rejected")
	}
}

func TestHardenLeavesInputUntouched(t *testing.T) {
	m := mir.MustParse(racy)
	before := mir.Print(m)
	if _, err := Harden(m, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if mir.Print(m) != before {
		t.Fatal("Harden mutated the input module")
	}
}

func TestDeadlockPointClassification(t *testing.T) {
	m := mir.MustParse(`
global L0 = 0
global L = 0
global g = 1
func main() {
entry:
  %a = loadg @g
  assert %a, "a"
  %p0 = addrg @L0
  lock %p0
  %p = addrg @L
  lock %p
  unlock %p
  unlock %p0
  ret
}`)
	h, err := Harden(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.Report.StaticDeadlockPoints == 0 {
		t.Error("expected a deadlock-serving checkpoint")
	}
	if h.Report.StaticNonDeadlockPoints == 0 {
		t.Error("expected a non-deadlock-serving checkpoint")
	}
	if h.Report.PrunedSites == 0 {
		t.Error("the outer lock should have been pruned")
	}
	text := mir.Print(h.Module)
	if !strings.Contains(text, "timedlock") {
		t.Error("kept deadlock site should use a timed lock")
	}
}
