package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// MozillaJS — the SpiderMonkey JavaScript engine.
//
// Root cause: a deadlock between the garbage collector and a title-claim
// path that acquire the runtime lock and the GC lock in opposite orders.
//
// The GC thread takes the GC lock first and the runtime lock second with
// nothing idempotency-destroying in between, so its runtime-lock
// acquisition is a recoverable deadlock site: on timeout the rollback
// releases the GC lock (compensation) and reexecutes, letting the claim
// thread through. The claim thread calls a helper between its two
// acquisitions, so its site is pruned — exactly the asymmetric pattern of
// HawkNL at a different scale.
func init() {
	register(&Bug{
		Name:      "MozillaJS",
		AppType:   "JavaScript engine",
		RootCause: "deadlock",
		Symptom:   mir.FailHang,
		Paper: PaperNumbers{
			LOC:            "120K",
			Sites:          analysis.Census{Assert: 0, WrongOutput: 5, Segfault: 134, Deadlock: 6},
			ReexecStatic:   144,
			ReexecDynamic:  6,
			OverheadPct:    0.0,
			RecoveryMicros: 44,
			Retries:        1,
			RestartMicros:  472,
		},
		FixFunc: "jsgc",
		FixOp:   mir.OpLock,
		FixNth:  1, // the runtime-lock acquisition inside the GC
		build:   buildMozillaJS,
	})
}

func buildMozillaJS(cfg Config) *mir.Module {
	b := mir.NewBuilder("MozillaJS")
	gcLock := b.Global("gc_lock", 0)
	rtLock := b.Global("rt_lock", 0)
	gcCount := b.Global("gc_count", 0)
	titles := b.Global("titles", 0)

	// GC thread: gc_lock → rt_lock (recoverable at rt_lock).
	gc := b.Func("jsgc")
	pg := gc.AddrG("pg", gcLock)
	gc.Lock(pg)
	if cfg.ForceBug {
		gc.Sleep(mir.Imm(70))
	}
	pr := gc.AddrG("pr", rtLock)
	gc.Lock(pr)
	n := gc.LoadG("n", gcCount)
	n1 := gc.Bin("n1", mir.BinAdd, n, mir.Imm(1))
	gc.StoreG(gcCount, n1)
	gc.Unlock(pr)
	gc.Unlock(pg)
	gc.Ret(mir.None)

	// Title bookkeeping helper: the destroying call that makes the claim
	// thread's second acquisition unrecoverable.
	h := b.Func("scanhelper")
	if cfg.ForceBug {
		h.Sleep(mir.Imm(70))
	}
	t := h.LoadG("t", titles)
	t1 := h.Bin("t1", mir.BinAdd, t, mir.Imm(1))
	h.StoreG(titles, t1)
	h.Ret(mir.None)

	// Claim thread: rt_lock → helper() → gc_lock.
	cl := b.Func("jsclaim")
	pr2 := cl.AddrG("pr", rtLock)
	cl.Lock(pr2)
	cl.Call("", "scanhelper")
	pg2 := cl.AddrG("pg", gcLock)
	cl.Lock(pg2)
	cl.Unlock(pg2)
	cl.Unlock(pr2)
	cl.Ret(mir.None)

	// Engine workload: pointer-walking interpreter internals (Table 4:
	// 0/5/134/6). The core contributes 1 recoverable deadlock site; 5
	// filler nested pairs complete the row.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "js",
		Derefs: 134, Outputs: 5, LockPairs: 5, LoneLocks: 2,
		HotSites: 0, HotIters: scaleIters(cfg, 40), Inner: 200,
		ColdOnce: false,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		t1 := m.Spawn("t1", "jsgc")
		t2 := m.Spawn("t2", "jsclaim")
		m.Join(t1)
		m.Join(t2)
	} else {
		t1 := m.Spawn("t1", "jsgc")
		m.Join(t1)
		t2 := m.Spawn("t2", "jsclaim")
		m.Join(t2)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
