package bugs

import (
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// Recovery must be correct while unrelated threads keep the system busy:
// the failing thread's rollback may not disturb concurrent workers, and
// the workers' lock traffic may not confuse the compensation log. This is
// the production-server shape the paper targets (a failing MySQL worker
// among healthy ones).
func TestRecoveryUnderLoad(t *testing.T) {
	b := mir.NewBuilder("under-load")
	flag := b.Global("flag", 0)
	mtx := b.Global("mtx", 0)
	counter := b.Global("counter", 0)

	// Healthy workers: lock-protected increments.
	w := b.Func("worker")
	w.Const("i", 0)
	loop := w.Label("loop")
	p := w.AddrG("p", mtx)
	w.Lock(p)
	c := w.LoadG("c", counter)
	c1 := w.Bin("c1", mir.BinAdd, c, mir.Imm(1))
	w.StoreG(counter, c1)
	w.Unlock(p)
	w.Bin("i", mir.BinAdd, w.R("i"), mir.Imm(1))
	cond := w.Bin("cond", mir.BinLt, w.R("i"), mir.Imm(50))
	done := w.NewBlock("done")
	w.Br(cond, loop, done)
	w.SetBlock(done)
	w.Ret(mir.None)

	// The failing thread: order violation on the flag.
	r := b.Func("reader")
	v := r.LoadG("v", flag)
	r.Assert(v, "flag read too early")
	r.Ret(mir.None)

	ini := b.Func("initf")
	ini.Sleep(mir.Imm(400))
	ini.StoreG(flag, mir.Imm(1))
	ini.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "worker")
	t2 := m.Spawn("t2", "worker")
	t3 := m.Spawn("t3", "worker")
	t4 := m.Spawn("t4", "worker")
	ti := m.Spawn("ti", "initf")
	tr := m.Spawn("tr", "reader")
	for _, tid := range []mir.Operand{t1, t2, t3, t4, ti, tr} {
		m.Join(tid)
	}
	fin := m.LoadG("fin", counter)
	m.Output("counter", fin)
	m.Ret(fin)
	mod := b.MustModule()

	plain := interp.RunModule(mod, interp.Config{Sched: sched.NewRandom(1)})
	if plain.Completed {
		t.Fatal("unhardened program should fail")
	}

	h, err := core.Harden(mod, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		res := interp.RunModule(h.Module, interp.Config{
			Sched: sched.NewRandom(seed), CollectOutput: true, MaxSteps: 5_000_000,
		})
		if !res.Completed {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
		// The workers' effect must be intact: 4 workers x 50 increments.
		if res.ExitCode != 200 {
			t.Fatalf("seed %d: counter = %d, want 200 (recovery disturbed the workers)",
				seed, res.ExitCode)
		}
		if res.Stats.Rollbacks == 0 {
			t.Fatalf("seed %d: expected rollbacks in the failing thread", seed)
		}
	}
}

// Every registered bug carries complete paper metadata; the experiment
// harness relies on it.
func TestPaperNumbersComplete(t *testing.T) {
	for _, b := range All() {
		p := b.Paper
		if p.LOC == "" || p.Sites.Total() == 0 {
			t.Errorf("%s: missing Table 2/4 numbers", b.Name)
		}
		if p.ReexecStatic <= 0 || p.ReexecDynamic <= 0 {
			t.Errorf("%s: missing Table 5 numbers", b.Name)
		}
		if p.RecoveryMicros <= 0 || p.Retries <= 0 || p.RestartMicros <= 0 {
			t.Errorf("%s: missing Table 7 numbers", b.Name)
		}
		if b.AppType == "" || b.RootCause == "" || b.FixFunc == "" {
			t.Errorf("%s: missing descriptors", b.Name)
		}
		if p.RestartMicros <= p.RecoveryMicros {
			t.Errorf("%s: paper restart should exceed recovery", b.Name)
		}
	}
}
