package bugs_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sanitizer"
	"conair/internal/sched"
	"conair/internal/transform"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the corpus testdata models")

// The langgraph-go corpus ground truth: the racy global each buggy build
// fights over, and the post-join observable both builds must produce.
var corpusTruth = map[string]struct {
	global  string
	symptom mir.FailKind
	outText string
	outVal  mir.Word
}{
	"LGResults":    {"ctx_cancel", mir.FailHang, "cancelled", 1},
	"LGFrontier":   {"frontier", mir.FailAssert, "frontier", 7},
	"LGCompletion": {"wf_result", mir.FailAssert, "result", 42},
}

func corpusPCT(seed int64) interp.Config {
	return interp.Config{
		Sched: sched.NewPCT(seed, 3, 64), MaxSteps: 20_000_000, CollectOutput: true,
	}
}

// TestCorpusModelsWellFormed pins the corpus registry and the checked-in
// MIR models: both build variants verify, the fix site resolves in each,
// and the forced (buggy) build prints byte-identically to the testdata
// model, which itself survives a parse/print round trip.
func TestCorpusModelsWellFormed(t *testing.T) {
	corpus := bugs.Corpus()
	wantOrder := []string{"LGResults", "LGFrontier", "LGCompletion"}
	if len(corpus) != len(wantOrder) {
		t.Fatalf("corpus has %d bugs, want %d", len(corpus), len(wantOrder))
	}
	for i, b := range corpus {
		if b.Name != wantOrder[i] {
			t.Fatalf("corpus[%d] = %s, want %s", i, b.Name, wantOrder[i])
		}
		if bugs.ByName(b.Name) != b {
			t.Fatalf("%s: ByName does not resolve the corpus entry", b.Name)
		}
		forced := b.Program(bugs.Config{ForceBug: true})
		clean := b.Program(bugs.Config{})
		for _, m := range []*mir.Module{forced, clean} {
			if err := mir.Verify(m); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if _, err := b.FixSite(m); err != nil {
				t.Fatalf("%s: fix site: %v", b.Name, err)
			}
		}

		path := filepath.Join("testdata", b.Name+".mir")
		text := mir.Print(forced)
		if *updateCorpus {
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("corpus model updated: %s", path)
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing corpus model (run with -update-corpus): %v", b.Name, err)
		}
		if string(want) != text {
			t.Errorf("%s: builder output drifted from checked-in model %s", b.Name, path)
		}
		parsed, err := mir.Parse(string(want))
		if err != nil {
			t.Fatalf("%s: checked-in model does not parse: %v", b.Name, err)
		}
		if err := mir.Verify(parsed); err != nil {
			t.Fatalf("%s: checked-in model does not verify: %v", b.Name, err)
		}
		if mir.Print(parsed) != string(want) {
			t.Errorf("%s: checked-in model is not print-stable", b.Name)
		}
	}
}

// TestCorpusManifestsAndCleanTwinSilent checks both halves of the
// buggy/fixed differential: the forced build fails with its documented
// symptom on some PCT schedule, and the fixed build completes on every
// schedule with the observable intact.
func TestCorpusManifestsAndCleanTwinSilent(t *testing.T) {
	for _, b := range bugs.Corpus() {
		truth := corpusTruth[b.Name]
		forced := b.Program(bugs.Config{ForceBug: true})
		found := false
		for seed := int64(0); seed < 200 && !found; seed++ {
			r := interp.RunModule(forced, corpusPCT(seed))
			if r.Failure != nil {
				if r.Failure.Kind != truth.symptom {
					t.Fatalf("%s: schedule %d failed with %v, want %v",
						b.Name, seed, r.Failure.Kind, truth.symptom)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no PCT schedule in 200 manifested the bug", b.Name)
		}

		clean := b.Program(bugs.Config{})
		for seed := int64(0); seed < 30; seed++ {
			r := interp.RunModule(clean, corpusPCT(seed))
			if !r.Completed {
				t.Fatalf("%s: fixed build failed on schedule %d: %v", b.Name, seed, r.Failure)
			}
			checkCorpusOutput(t, b.Name, "fixed", seed, r, truth.outText, truth.outVal)
		}
	}
}

// TestCorpusRecovers checks the survival-hardened buggy build completes
// on every schedule with the post-join observable unchanged — the corpus
// analog of the paper's 1000-run recovery experiment. Like the
// experiments cross-check's recovery leg this uses random schedules: an
// assert site's recovery loop has no backoff, so the adversarial PCT
// scheduler can starve the racing writer past the bounded MaxRetry
// rollback budget — the paper's bounded-recovery semantics, not a
// recovery failure.
func TestCorpusRecovers(t *testing.T) {
	for _, b := range bugs.Corpus() {
		truth := corpusTruth[b.Name]
		forced := b.Program(bugs.Config{ForceBug: true})
		h, err := core.Harden(forced, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: harden: %v", b.Name, err)
		}
		if err := transform.CheckInvariants(h.Module, h.Report.Analysis); err != nil {
			t.Fatalf("%s: invariants: %v", b.Name, err)
		}
		for seed := int64(0); seed < 30; seed++ {
			r := interp.RunModule(h.Module, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 20_000_000, CollectOutput: true,
			})
			if !r.Completed {
				t.Fatalf("%s: hardened build did not recover on schedule %d: %v",
					b.Name, seed, r.Failure)
			}
			checkCorpusOutput(t, b.Name, "hardened", seed, r, truth.outText, truth.outVal)
		}
	}
}

func checkCorpusOutput(t *testing.T, name, variant string, seed int64,
	r *interp.Result, text string, val mir.Word) {
	t.Helper()
	if len(r.Output) != 1 || r.Output[0].Text != text || r.Output[0].Value != val {
		t.Fatalf("%s: %s build observable changed on schedule %d: %+v, want %s=%d",
			name, variant, seed, r.Output, text, val)
	}
}

// TestCorpusSanitizerGroundTruth checks every sanitizer report on the
// buggy builds names the documented racy global (no false positives),
// and the fixed builds soak with zero reports. Assert-symptom bugs are
// searched through their survival-hardened build: the assert kills the
// raw run before the racing write, so only recovery lets both sides of
// the race execute in one trace.
func TestCorpusSanitizerGroundTruth(t *testing.T) {
	for _, b := range bugs.Corpus() {
		truth := corpusTruth[b.Name]
		mod := b.Program(bugs.Config{ForceBug: true})
		if b.Symptom != mir.FailHang {
			h, err := core.Harden(mod, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: harden: %v", b.Name, err)
			}
			mod = h.Module
		}
		rs := sanSearch(t, mod, 10)
		if len(rs) == 0 {
			t.Errorf("%s: sanitizer found nothing in 10 schedules", b.Name)
			continue
		}
		for _, r := range rs {
			if r.Global != truth.global {
				t.Errorf("%s: report on %q, want race on %q", b.Name, r.Location(), truth.global)
			}
		}

		clean := b.Program(bugs.Config{})
		for seed := int64(0); seed < 10; seed++ {
			san := sanitizer.New(clean)
			cfg := corpusPCT(seed)
			cfg.Sanitizer = san
			if r := interp.RunModule(clean, cfg); !r.Completed {
				t.Fatalf("%s: fixed build failed on schedule %d: %v", b.Name, seed, r.Failure)
			}
			if rs := san.Reports(); len(rs) > 0 {
				t.Errorf("%s: fixed build false positive on schedule %d: %v", b.Name, seed, rs[0])
			}
		}
	}
}
