package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// FFT — scientific computing benchmark (SPLASH-2 FFT), paper Figure 9.
//
// Root cause: an order/atomicity violation on the shared timestamp End.
// Thread 1 prints the start time, reads End and prints the stop/total
// times; thread 2 is supposed to set End first but is not ordered with the
// reader. When thread 1 reads End too early it observes 0 and emits a
// wrong output. With the developer-supplied output-correctness condition
// (assert tmp > 0 before the print), ConAir rolls the reader back a few
// instructions — the region covers just the End load and the check — until
// thread 2 has written End.
func init() {
	register(&Bug{
		Name:        "FFT",
		AppType:     "Scientific computing",
		RootCause:   "A/O Vio.",
		Symptom:     mir.FailWrongOutput,
		NeedsOracle: true,
		Paper: PaperNumbers{
			LOC:            "1.2K",
			Sites:          analysis.Census{Assert: 5, WrongOutput: 34, Segfault: 14, Deadlock: 0},
			ReexecStatic:   56,
			ReexecDynamic:  24,
			OverheadPct:    0.0,
			RecoveryMicros: 907,
			Retries:        97,
			RestartMicros:  3189072,
		},
		FixFunc: "reporter",
		FixOp:   mir.OpAssert,
		FixNth:  0,
		build:   buildFFT,
	})
}

func buildFFT(cfg Config) *mir.Module {
	b := mir.NewBuilder("FFT")
	endG := b.Global("End", 0)
	initG := b.Global("Init", 3)

	// Thread 1 (Figure 9): prints Start, asserts the oracle on End, prints
	// Stop and Total.
	f := b.Func("reporter")
	iv := f.LoadG("iv", initG)
	f.Output("Start", iv)
	tmp := f.LoadG("tmp", endG)
	if !cfg.NoOracle {
		pos := f.Bin("pos", mir.BinGt, tmp, mir.Imm(0))
		f.OracleAssert(pos, "End must be positive before reporting")
	}
	f.Output("Stop", tmp)
	tot := f.Bin("tot", mir.BinSub, tmp, iv)
	f.Output("Total", tot)
	f.Ret(mir.None)

	// Thread 2: sets End "at the end of the computation". Forcing delays
	// the write so the reporter always reads too early.
	t := b.Func("timer")
	if cfg.ForceBug {
		t.Sleep(mir.Imm(520))
	}
	t.StoreG(endG, mir.Imm(1000))
	t.Ret(mir.None)

	// The FFT computation itself: a compute-heavy workload whose sites
	// are all outside the hot path (Table 4 row: 5/34/14/0). The core
	// contributes 1 oracle + 3 outputs to the wrong-output column.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "fft",
		Derefs: 14, Asserts: 5, PrunableAsserts: 1, Outputs: 30,
		HotSites: 0, HotIters: scaleIters(cfg, 400), Inner: 300,
		ColdOnce: true,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		t2 := m.Spawn("t2", "timer")
		t1 := m.Spawn("t1", "reporter")
		m.Join(t1)
		m.Join(t2)
	} else {
		// The failure-free ordering: the timer finishes before the
		// reporter starts (no sleeps inserted; §5's overhead methodology).
		t2 := m.Spawn("t2", "timer")
		m.Join(t2)
		t1 := m.Spawn("t1", "reporter")
		m.Join(t1)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// scaleIters adjusts hot-loop iteration counts: the Light configuration
// (used by the repeated-run recovery experiments, where workload volume is
// irrelevant) shrinks them ~20x, and Scale multiplies them for workload
// sweeps.
func scaleIters(cfg Config, full int) int {
	if cfg.Scale > 0 {
		full *= cfg.Scale
	}
	if cfg.Light {
		full /= 20
		if full < 2 {
			full = 2
		}
	}
	return full
}
