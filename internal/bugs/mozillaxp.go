package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// MozillaXP — the XPCOM cross-platform component model, paper Figure 10.
//
// Root cause: an order violation on the shared thread descriptor mThd.
// The main thread calls Get() → GetState(mThd), which dereferences the
// descriptor, while another thread initializes mThd; read too early, the
// null descriptor segfaults.
//
// This is one of the two bugs requiring INTER-PROCEDURAL reexecution
// (§4.3, §6.1.1): the dereference in GetState depends only on its
// parameter, and GetState's whole body is idempotent, so the reexecution
// point is pushed into the caller Get — right after Get's last
// idempotency-destroying operation, before it loads mThd. At run time the
// failing thread rolls back thousands of times (the paper observed more
// than 8000 retries) until the initializer publishes mThd, making this the
// slowest recovery in the suite.
func init() {
	register(&Bug{
		Name:           "MozillaXP",
		AppType:        "XPCOM component model",
		RootCause:      "O Vio.",
		Symptom:        mir.FailSegfault,
		NeedsInterproc: true,
		Paper: PaperNumbers{
			LOC:            "112K",
			Sites:          analysis.Census{Assert: 1, WrongOutput: 117, Segfault: 6791, Deadlock: 0},
			ReexecStatic:   3647,
			ReexecDynamic:  2170,
			OverheadPct:    0.0,
			RecoveryMicros: 17388,
			Retries:        8432,
			RestartMicros:  207041,
		},
		FixFunc: "getstate",
		FixOp:   mir.OpLoad,
		FixNth:  0,
		build:   buildMozillaXP,
	})
}

func buildMozillaXP(cfg Config) *mir.Module {
	b := mir.NewBuilder("MozillaXP")
	mThd := b.Global("mThd", 0)
	gstate := b.Global("gstate", 0)
	gcalls := b.Global("gcalls", 0)

	// GetState(thd) — Figure 10: returns thd->state & THREAD_DETACHED.
	// The whole function is idempotent and depends only on its parameter.
	gs := b.Func("getstate", "thd")
	v := gs.Load("v", gs.R("thd"))
	r := gs.Bin("r", mir.BinAnd, v, mir.Imm(1))
	gs.Ret(r)

	// Get() — the caller. The call-count update is the destroying
	// operation that anchors the inter-procedural reexecution point; the
	// mThd load after it is inside the caller-side region, so rollback
	// rereads the descriptor pointer.
	g := b.Func("get")
	n := g.LoadG("n", gcalls)
	n1 := g.Bin("n1", mir.BinAdd, n, mir.Imm(1))
	g.StoreG(gcalls, n1)
	p := g.LoadG("p", mThd)
	tmp := g.Call("tmp", "getstate", p)
	g.StoreG(gstate, tmp)
	g.Ret(mir.None)

	// InitThd() — Figure 10 right: publishes mThd, late under forcing.
	it := b.Func("initthd")
	if cfg.ForceBug {
		it.Sleep(mir.Imm(24000))
	}
	h := it.Alloc("h", mir.Imm(2))
	it.Store(h, mir.Imm(3))
	it.StoreG(mThd, h)
	it.Ret(mir.None)

	// XPCOM workload: a large pointer-dense codebase (Table 4: 6791
	// segfault sites). The hot path touches few sites; most of the
	// component code is cold, matching the paper's dynamic count being
	// below the static one. Core segfault sites: getstate's dereference
	// plus initthd's store.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "xp",
		Derefs: 6789, Asserts: 1, Outputs: 117,
		HotSites: 4, HotIters: scaleIters(cfg, 400), Inner: 1200,
		ColdOnce: false, ColdCalls: 4,
	})

	// The component's state is queried repeatedly (the paper's fix-mode
	// run executes its reexecution point 23 times); only the first query
	// can race initialization.
	getLoop := func(m *mir.FuncBuilder, times int64) {
		m.Const("q", 0)
		gl := m.Label("getloop")
		m.Call("", "get")
		m.Bin("q", mir.BinAdd, m.R("q"), mir.Imm(1))
		qc := m.Bin("qc", mir.BinLt, m.R("q"), mir.Imm(times))
		out := m.NewBlock("getdone")
		m.Br(qc, gl, out)
		m.SetBlock(out)
	}

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		ti := m.Spawn("ti", "initthd")
		getLoop(m, 8)
		m.Join(ti)
	} else {
		ti := m.Spawn("ti", "initthd")
		m.Join(ti)
		getLoop(m, 8)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
