package bugs

import (
	"testing"

	"conair/internal/analysis"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// The three case studies the paper walks through in §6.1.1, pinned in
// detail: Figure 9 (FFT), Figure 10 (MozillaXP) and Figure 11 (HawkNL).

// Figure 9: the FFT reporter reads End too early; with the oracle, ConAir
// inserts a setjmp right before the assert and recovery rolls back only a
// few instructions ("some failure recoveries only roll back a few
// instructions").
func TestFigure9FFTCaseStudy(t *testing.T) {
	b := ByName("FFT")
	m := b.Program(Config{Light: true, ForceBug: true})

	// The oracle's reexecution region is tiny: from the End load to the
	// check, within the reporter.
	pos, err := b.FixSite(m)
	if err != nil {
		t.Fatal(err)
	}
	site, err := analysis.IdentifyFix(m, pos)
	if err != nil {
		t.Fatal(err)
	}
	region := analysis.IdentifyRegion(m, site, mir.PolicyExtended)
	if len(region.Members) > 4 {
		t.Errorf("FFT oracle region has %d members; the paper rolls back 'a few instructions'", len(region.Members))
	}
	if region.OnlyEntryPoint {
		t.Error("the region must stop at the Start output, not reach reporter entry")
	}

	// Recovered output must include the initialized End value (1000) —
	// the wrong-output failure is not just survived but corrected.
	h, err := core.Harden(m, core.FixOptions(pos))
	if err != nil {
		t.Fatal(err)
	}
	r := interp.RunModule(h.Module, interp.Config{Sched: sched.NewRandom(2), CollectOutput: true})
	if !r.Completed {
		t.Fatalf("FFT not recovered: %v", r.Failure)
	}
	var stop mir.Word = -1
	for _, o := range r.Output {
		if o.Text == "Stop" {
			stop = o.Value
		}
	}
	if stop != 1000 {
		t.Errorf("Stop output = %d, want the initialized timestamp 1000", stop)
	}
}

// Figure 10: MozillaXP's GetState dereference recovers inter-procedurally
// — the reexecution point lands inside Get, before the mThd load — and
// takes thousands of rollbacks while waiting for InitThd.
func TestFigure10MozillaXPCaseStudy(t *testing.T) {
	b := ByName("MozillaXP")
	m := b.Program(Config{Light: true, ForceBug: true})
	pos, err := b.FixSite(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := analysis.DefaultOptions()
	opts.Mode = analysis.Fix
	opts.FixSite = pos
	res, err := analysis.Analyze(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	sa := res.Sites[0]
	if !sa.Interproc.Selected {
		t.Fatal("GetState's dereference must recover inter-procedurally")
	}
	gi := m.FuncIndex("get")
	if len(sa.Points) != 1 || sa.Points[0].Fn != gi {
		t.Fatalf("reexecution point = %v, want inside get()", sa.Points)
	}
	// The point must sit after get's statistics update (the destroying
	// store) and before its mThd load.
	f := &m.Functions[gi]
	in := &f.Blocks[sa.Points[0].Block].Instrs[sa.Points[0].Index]
	if in.Op != mir.OpLoadG {
		t.Errorf("checkpoint precedes %v, want the mThd load", in.Op)
	}

	// The forced run needs thousands of retries (paper: >8000).
	h, err := core.Harden(m, core.FixOptions(pos))
	if err != nil {
		t.Fatal(err)
	}
	r := interp.RunModule(h.Module, interp.Config{Sched: sched.NewRandom(3)})
	if !r.Completed {
		t.Fatalf("MozillaXP not recovered: %v", r.Failure)
	}
	e := r.MaxEpisode()
	if e == nil || e.Retries < 1000 {
		t.Errorf("episode = %+v; the paper's order-violation wait takes thousands of retries", e)
	}
}

// Figure 11: HawkNL's deadlock. ConAir prunes the close() thread's slock
// acquisition (its region, cut short by the driver call, contains no lock)
// and keeps shutdown()'s nlock acquisition (its region reaches back across
// the slock acquisition); at run time thread 2 times out, releases slock
// via compensation and reexecutes a large chunk of shutdown.
func TestFigure11HawkNLCaseStudy(t *testing.T) {
	b := ByName("HawkNL")
	m := b.Program(Config{Light: true, ForceBug: true})
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	closeFn := m.FuncIndex("close")
	shutdownFn := m.FuncIndex("shutdown")
	var closeSites, shutdownKept, shutdownPruned int
	for i := range res.Sites {
		sa := &res.Sites[i]
		if sa.Site.Kind != analysis.SiteDeadlock {
			continue
		}
		switch sa.Site.Pos.Fn {
		case closeFn:
			closeSites++
			if !sa.Verdict.Pruned() {
				t.Errorf("close() lock at %v should be pruned (Figure 7a)", sa.Site.Pos)
			}
		case shutdownFn:
			if sa.Verdict.Pruned() {
				shutdownPruned++
			} else {
				shutdownKept++
				if !sa.Region.HasLockAcquire {
					t.Error("the kept shutdown site must have a lock acquisition in its region")
				}
			}
		}
	}
	if closeSites != 2 {
		t.Errorf("close() deadlock sites = %d, want 2", closeSites)
	}
	if shutdownKept != 1 || shutdownPruned != 1 {
		t.Errorf("shutdown(): kept=%d pruned=%d, want 1 and 1", shutdownKept, shutdownPruned)
	}

	// Run time: one retry, with a compensating unlock of slock.
	h, err := core.Harden(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := interp.RunModule(h.Module, interp.Config{Sched: sched.NewRandom(4), MaxSteps: 5_000_000})
	if !r.Completed {
		t.Fatalf("HawkNL not recovered: %v", r.Failure)
	}
	if r.Stats.CompUnlocks == 0 {
		t.Error("recovery must release slock via compensation")
	}
	e := r.MaxEpisode()
	if e == nil || e.Retries != 1 {
		t.Errorf("episode = %+v, want exactly 1 retry (paper Table 7)", e)
	}
}
