package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// HawkNL — network library, paper Figure 11.
//
// Root cause: a deadlock from reversed lock ordering. nlClose acquires
// nlock, calls the driver's close routine, then acquires slock; nlShutdown
// acquires slock and, while walking the socket table, acquires nlock.
//
// ConAir's analysis mirrors the paper exactly: the slock acquisition in
// close() has a tiny reexecution region (the driver call destroys
// idempotency) with no enclosed lock acquisition, so it is pruned as
// unrecoverable; the nlock acquisition in shutdown() has a region reaching
// back across the slock acquisition to the function entry, so it is kept.
// At run time shutdown's timed lock expires, the rollback releases slock
// via compensation and reexecutes a large chunk of shutdown, letting close
// finish — resolving the deadlock.
func init() {
	register(&Bug{
		Name:      "HawkNL",
		AppType:   "Network library",
		RootCause: "deadlock",
		Symptom:   mir.FailHang,
		Paper: PaperNumbers{
			LOC:            "10K",
			Sites:          analysis.Census{Assert: 0, WrongOutput: 0, Segfault: 5, Deadlock: 2},
			ReexecStatic:   7,
			ReexecDynamic:  7,
			OverheadPct:    0.0,
			RecoveryMicros: 59,
			Retries:        1,
			RestartMicros:  943,
		},
		FixFunc: "shutdown",
		FixOp:   mir.OpLock,
		FixNth:  1, // the inner nlock acquisition
		build:   buildHawkNL,
	})
}

func buildHawkNL(cfg Config) *mir.Module {
	b := mir.NewBuilder("HawkNL")
	nlock := b.Global("nlock", 0)
	slock := b.Global("slock", 0)
	nSockets := b.Global("nSockets", 1)
	closed := b.Global("closed", 0)

	// driver->Close(): the call that cuts close()'s reexecution region.
	d := b.Func("driverclose")
	if cfg.ForceBug {
		// Hold nlock long enough for shutdown to take slock.
		d.Sleep(mir.Imm(80))
	}
	d.StoreG(closed, mir.Imm(1))
	d.Ret(mir.None)

	// Thread 1 (Figure 11 left): Close().
	c := b.Func("close")
	pn := c.AddrG("pn", nlock)
	c.Lock(pn)
	c.Call("", "driverclose")
	ps := c.AddrG("ps", slock)
	c.Lock(ps)
	c.Unlock(ps)
	c.Unlock(pn)
	c.Ret(mir.None)

	// Thread 2 (Figure 11 right): Shutdown().
	s := b.Func("shutdown")
	ps2 := s.AddrG("ps", slock)
	s.Lock(ps2)
	ns := s.LoadG("ns", nSockets)
	inner := s.NewBlock("inner")
	out := s.NewBlock("out")
	s.Br(ns, inner, out)
	s.SetBlock(inner)
	pn2 := s.AddrG("pn", nlock)
	s.Lock(pn2)
	s.Unlock(pn2)
	s.Jmp(out)
	s.SetBlock(out)
	s.Unlock(ps2)
	s.Ret(mir.None)

	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "nl",
		Derefs: 5, LockPairs: 1,
		HotSites: 0, HotIters: scaleIters(cfg, 50), Inner: 100,
		ColdOnce: true,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		t1 := m.Spawn("t1", "close")
		t2 := m.Spawn("t2", "shutdown")
		m.Join(t1)
		m.Join(t2)
	} else {
		t1 := m.Spawn("t1", "close")
		m.Join(t1)
		t2 := m.Spawn("t2", "shutdown")
		m.Join(t2)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
