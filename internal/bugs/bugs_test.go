package bugs

import (
	"testing"

	"conair/internal/analysis"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
	"conair/internal/transform"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registered %d bugs, want 10", len(all))
	}
	names := map[string]bool{}
	for _, b := range all {
		if names[b.Name] {
			t.Errorf("duplicate bug %s", b.Name)
		}
		names[b.Name] = true
	}
	if ByName("nope") != nil {
		t.Error("ByName should return nil for unknown")
	}
}

func TestProgramsBuildAndVerify(t *testing.T) {
	for _, b := range All() {
		for _, cfg := range []Config{{}, {ForceBug: true}, {Light: true, ForceBug: true}} {
			m := b.Program(cfg)
			if err := mir.Verify(m); err != nil {
				t.Errorf("%s %+v: %v", b.Name, cfg, err)
			}
			if _, err := b.FixSite(m); err != nil {
				t.Errorf("%s: fix site not found: %v", b.Name, err)
			}
		}
	}
}

// The survival-mode failure-site census must reproduce each app's Table 4
// row: assert / wrong-output / segfault columns exactly, and the deadlock
// column as the number of sites kept after the §4.2 pruning (the paper
// counts hardened deadlock sites).
func TestCensusMatchesTable4(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		res, err := analysis.Analyze(m, analysis.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		got := res.Census
		want := b.Paper.Sites
		if got.Assert != want.Assert {
			t.Errorf("%s: assert sites = %d, want %d", b.Name, got.Assert, want.Assert)
		}
		if got.WrongOutput != want.WrongOutput {
			t.Errorf("%s: wrong-output sites = %d, want %d", b.Name, got.WrongOutput, want.WrongOutput)
		}
		if got.Segfault != want.Segfault {
			t.Errorf("%s: segfault sites = %d, want %d", b.Name, got.Segfault, want.Segfault)
		}
		keptDeadlock := 0
		for i := range res.Sites {
			sa := &res.Sites[i]
			if sa.Site.Kind == analysis.SiteDeadlock && sa.Recovers() {
				keptDeadlock++
			}
		}
		if keptDeadlock != want.Deadlock {
			t.Errorf("%s: hardened deadlock sites = %d, want %d (raw %d)",
				b.Name, keptDeadlock, want.Deadlock, got.Deadlock)
		}
	}
}

// Unhardened forced programs must fail with the paper's symptom with ~100%
// probability (§5's methodology).
func TestForcedFailureSymptom(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		for seed := int64(0); seed < 10; seed++ {
			r := interp.RunModule(m, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 5_000_000,
			})
			if r.Completed {
				t.Errorf("%s seed %d: forced run completed; bug did not manifest", b.Name, seed)
				continue
			}
			if r.Failure.Kind != b.Symptom {
				t.Errorf("%s seed %d: failure = %v, want %v (%s)",
					b.Name, seed, r.Failure.Kind, b.Symptom, r.Failure.Msg)
			}
		}
	}
}

// The failure-free variant must complete under any seed (§5: "software
// never fails during the run-time overhead measurement").
func TestUnforcedVariantCompletes(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true})
		for seed := int64(0); seed < 5; seed++ {
			r := interp.RunModule(m, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 20_000_000,
			})
			if !r.Completed {
				t.Errorf("%s seed %d: unforced run failed: %v", b.Name, seed, r.Failure)
			}
		}
	}
}

func hardenBug(t *testing.T, b *Bug, m *mir.Module, fix bool) *mir.Module {
	t.Helper()
	opts := core.DefaultOptions()
	if fix {
		pos, err := b.FixSite(m)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		opts = core.FixOptions(pos)
	}
	// Shorten the deadlock livelock backoff for test speed; the default
	// values are exercised by the bench harness.
	opts.Transform = transform.Options{LockTimeout: 200, LivelockBackoff: 16}
	h, err := core.Harden(m, opts)
	if err != nil {
		t.Fatalf("%s: harden: %v", b.Name, err)
	}
	return h.Module
}

// Table 3: every bug recovers in fix mode (the oracle bugs carry their
// oracle, so they are the paper's "conditionally recovered" rows).
func TestFixModeRecovery(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		hardened := hardenBug(t, b, m, true)
		for seed := int64(0); seed < 20; seed++ {
			r := interp.RunModule(hardened, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 10_000_000,
			})
			if !r.Completed {
				t.Errorf("%s seed %d (fix): not recovered: %v", b.Name, seed, r.Failure)
			}
		}
	}
}

// Table 3: every bug also recovers in survival mode, where ConAir knows
// nothing about the bug.
func TestSurvivalModeRecovery(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		hardened := hardenBug(t, b, m, false)
		for seed := int64(0); seed < 10; seed++ {
			r := interp.RunModule(hardened, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 20_000_000,
			})
			if !r.Completed {
				t.Errorf("%s seed %d (survival): not recovered: %v", b.Name, seed, r.Failure)
			}
		}
	}
}

// Table 3's conditional recovery (§6.5): without the developer oracle, the
// two wrong-output bugs complete while producing a wrong output, and even
// hardened software cannot recover — there is no condition to check.
func TestNoOracleIsNotRecovered(t *testing.T) {
	checks := map[string]string{"FFT": "Stop", "MySQL1": "binlog"}
	for name, tag := range checks {
		b := ByName(name)
		if !b.NeedsOracle {
			t.Fatalf("%s should be oracle-dependent", name)
		}
		m := b.Program(Config{Light: true, ForceBug: true, NoOracle: true})
		wrongOutput := func(r *interp.Result) bool {
			for _, o := range r.Output {
				if o.Text == tag && o.Value == 0 {
					return true
				}
			}
			return false
		}
		plain := interp.RunModule(m, interp.Config{
			Sched: sched.NewRandom(1), CollectOutput: true, MaxSteps: 10_000_000,
		})
		if !plain.Completed || !wrongOutput(plain) {
			t.Errorf("%s (no oracle): expected silent wrong output, got %+v", name, plain.Failure)
		}
		hardened := hardenBug(t, b, m, false)
		hard := interp.RunModule(hardened, interp.Config{
			Sched: sched.NewRandom(1), CollectOutput: true, MaxSteps: 20_000_000,
		})
		if !hard.Completed || !wrongOutput(hard) {
			t.Errorf("%s (no oracle, hardened): recovery should be impossible, got %+v",
				name, hard.Failure)
		}
	}
}

// The two inter-procedural bugs must actually be selected for
// inter-procedural recovery (§6.1.1), and only those two.
func TestInterprocSelection(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		pos, err := b.FixSite(m)
		if err != nil {
			t.Fatal(err)
		}
		opts := analysis.DefaultOptions()
		opts.Mode = analysis.Fix
		opts.FixSite = pos
		res, err := analysis.Analyze(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := res.InterprocSites > 0
		if got != b.NeedsInterproc {
			t.Errorf("%s: interproc selected = %v, want %v", b.Name, got, b.NeedsInterproc)
		}
	}
}

// Recovery must actually roll back (not just happen to pass) and episodes
// must be recorded for Table 7.
func TestRecoveryEpisodesRecorded(t *testing.T) {
	for _, b := range All() {
		m := b.Program(Config{Light: true, ForceBug: true})
		hardened := hardenBug(t, b, m, true)
		r := interp.RunModule(hardened, interp.Config{
			Sched: sched.NewRandom(7), MaxSteps: 10_000_000,
		})
		if !r.Completed {
			t.Fatalf("%s: %v", b.Name, r.Failure)
		}
		if r.Stats.Rollbacks == 0 {
			t.Errorf("%s: no rollbacks during forced recovery", b.Name)
		}
		recs := r.RecoveredEpisodes()
		if len(recs) == 0 {
			t.Errorf("%s: no recovered episodes recorded", b.Name)
			continue
		}
		e := r.MaxEpisode()
		if e.Retries <= 0 || e.Duration() <= 0 {
			t.Errorf("%s: degenerate episode %+v", b.Name, e)
		}
	}
}
