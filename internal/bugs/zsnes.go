package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// ZSNES — SNES game console emulator.
//
// Root cause: an order violation on the video-initialization flag. The
// render thread asserts the video subsystem is initialized; under the
// buggy interleaving the init thread has not yet set the flag. Recovery
// rolls the render thread back over the flag read until initialization
// lands.
func init() {
	register(&Bug{
		Name:      "ZSNES",
		AppType:   "Game console emulator",
		RootCause: "O Vio.",
		Symptom:   mir.FailAssert,
		Paper: PaperNumbers{
			LOC:            "37K",
			Sites:          analysis.Census{Assert: 1, WrongOutput: 50, Segfault: 331, Deadlock: 0},
			ReexecStatic:   321,
			ReexecDynamic:  32,
			OverheadPct:    0.0,
			RecoveryMicros: 1022,
			Retries:        123,
			RestartMicros:  8643,
		},
		FixFunc: "renderer",
		FixOp:   mir.OpAssert,
		FixNth:  0,
		build:   buildZSNES,
	})
}

func buildZSNES(cfg Config) *mir.Module {
	b := mir.NewBuilder("ZSNES")
	ginit := b.Global("video_init", 0)
	frames := b.Global("frames", 0)

	// Render thread: requires the video subsystem.
	r := b.Func("renderer")
	v := r.LoadG("v", ginit)
	r.Assert(v, "video must be initialized before rendering")
	n := r.LoadG("n", frames)
	n1 := r.Bin("n1", mir.BinAdd, n, mir.Imm(1))
	r.StoreG(frames, n1)
	r.Ret(mir.None)

	// Video init thread.
	iv := b.Func("initvideo")
	if cfg.ForceBug {
		iv.Sleep(mir.Imm(620))
	}
	iv.StoreG(ginit, mir.Imm(1))
	iv.Ret(mir.None)

	// Emulator workload (Table 4: 1/50/331/0; the single assert is the
	// renderer's own).
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "zs",
		Derefs: 331, Outputs: 50,
		HotSites: 0, HotIters: scaleIters(cfg, 120), Inner: 250,
		ColdOnce: false,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		ti := m.Spawn("ti", "initvideo")
		tr := m.Spawn("tr", "renderer")
		m.Join(tr)
		m.Join(ti)
	} else {
		ti := m.Spawn("ti", "initvideo")
		m.Join(ti)
		tr := m.Spawn("tr", "renderer")
		m.Join(tr)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
