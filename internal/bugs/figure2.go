package bugs

import "conair/internal/mir"

// Figure 2 of the paper: the four common atomicity-violation patterns and
// how single-threaded rollback relates to them. Each micro-program fails
// under the forced interleaving; the paper's taxonomy (§2.2) says which of
// them ConAir's idempotent reexecution can recover:
//
//   - WAW (Figure 2a): the FAILING thread only reads; rolling it back and
//     rereading recovers. ConAir recovers this.
//   - RAW (Figure 2b): recovery requires reexecuting the failing thread's
//     own shared-variable WRITE (ptr = aptr), which idempotent regions
//     exclude. ConAir does not recover this; whole-state rollback does.
//   - RAR (Figure 2c): two reads expected atomic; rereading recovers.
//     ConAir recovers this.
//   - WAR (Figure 2d): recovery requires reexecuting the failing thread's
//     shared write (cnt += deposit1). ConAir does not recover this.
//
// These programs power the Figure 2 tests and benchmarks, including the
// comparison against the whole-program-checkpoint baseline, which recovers
// all four at much higher cost (Figure 4's trade-off).

// Figure2WAW builds the Figure 2a pattern: thread 1 performs CLOSE;OPEN on
// the shared log state; thread 2 observes the transient CLOSE and fails.
// The failing thread (2) is recoverable by rereading.
func Figure2WAW() *mir.Module {
	b := mir.NewBuilder("figure2a-waw")
	logG := b.Global("log", 1)

	w := b.Func("writer")
	w.StoreG(logG, mir.Imm(0)) // log = CLOSE
	w.Sleep(mir.Imm(120))      // forced atomicity-violation window
	w.StoreG(logG, mir.Imm(1)) // log = OPEN
	w.Ret(mir.None)

	r := b.Func("reader")
	r.Sleep(mir.Imm(20)) // land inside the window
	v := r.LoadG("v", logG)
	r.OracleAssert(v, "log != OPEN: output failure")
	r.Output("log-state", v)
	r.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "writer")
	t2 := m.Spawn("t2", "reader")
	m.Join(t1)
	m.Join(t2)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// Figure2RAW builds the Figure 2b pattern: thread 1 publishes ptr = aptr
// then dereferences it; thread 2 nulls ptr in between. The failing thread
// would have to reexecute its own shared write to recover — beyond
// idempotent regions.
func Figure2RAW() *mir.Module {
	b := mir.NewBuilder("figure2b-raw")
	ptr := b.Global("ptr", 0)
	aptr := b.Global("aptr", 0)

	i := b.Func("initobj")
	h := i.Alloc("h", mir.Imm(2))
	i.Store(h, mir.Imm(11))
	i.StoreG(aptr, h)
	i.Ret(mir.None)

	t1 := b.Func("user")
	a := t1.LoadG("a", aptr)
	t1.StoreG(ptr, a) // ptr = aptr  (shared write: region boundary)
	t1.Sleep(mir.Imm(120))
	p := t1.LoadG("p", ptr)
	v := t1.Load("v", p) // tmp = *ptr → segfault when ptr was nulled
	t1.StoreG(aptr, v)
	t1.Ret(mir.None)

	t2 := b.Func("nuller")
	t2.Sleep(mir.Imm(20))
	t2.StoreG(ptr, mir.Imm(0)) // ptr = NULL
	t2.Ret(mir.None)

	m := b.Func("main")
	m.Call("", "initobj")
	x := m.Spawn("x", "user")
	y := m.Spawn("y", "nuller")
	m.Join(x)
	m.Join(y)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// Figure2RAR builds the Figure 2c pattern: thread 1 checks ptr then uses
// it; thread 2 nulls it in between. Rolling thread 1 back rereads the
// pointer — both reads are in one idempotent region — and recovers.
func Figure2RAR() *mir.Module {
	b := mir.NewBuilder("figure2c-rar")
	ptr := b.Global("ptr", 0)
	out := b.Global("outv", 0)

	i := b.Func("initobj")
	h := i.Alloc("h", mir.Imm(2))
	i.Store(h, mir.Imm(22))
	i.StoreG(ptr, h)
	i.Ret(mir.None)

	reinit := b.Func("reinit")
	r2 := reinit.Alloc("h2", mir.Imm(2))
	reinit.Store(r2, mir.Imm(33))
	reinit.StoreG(ptr, r2)
	reinit.Ret(mir.None)

	t1 := b.Func("user")
	p1 := t1.LoadG("p1", ptr) // if (ptr) — first read
	chk := t1.NewBlock("deref")
	done := t1.NewBlock("done")
	t1.Br(p1, chk, done)
	t1.SetBlock(chk)
	t1.Sleep(mir.Imm(120)) // forced window between the two reads
	p2 := t1.LoadG("p2", ptr)
	v := t1.Load("v", p2) // fputs(ptr) — second read + dereference
	t1.StoreG(out, v)
	t1.Jmp(done)
	t1.SetBlock(done)
	t1.Ret(mir.None)

	t2 := b.Func("nuller")
	t2.Sleep(mir.Imm(20))
	t2.StoreG(ptr, mir.Imm(0)) // ptr = NULL
	t2.Sleep(mir.Imm(300))
	t2.Call("", "reinit") // the pointer becomes valid again later
	t2.Ret(mir.None)

	m := b.Func("main")
	m.Call("", "initobj")
	x := m.Spawn("x", "user")
	y := m.Spawn("y", "nuller")
	m.Join(x)
	m.Join(y)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// Figure2WAR builds the Figure 2d pattern: thread 1 adds its deposit and
// reports the balance, expecting the two to be atomic; thread 2's deposit
// lands in between, so the reported balance is stale. Recovery would
// require reexecuting thread 1's own shared write.
func Figure2WAR() *mir.Module {
	b := mir.NewBuilder("figure2d-war")
	cnt := b.Global("cnt", 0)

	t1 := b.Func("teller1")
	v := t1.LoadG("v", cnt)
	v1 := t1.Bin("v1", mir.BinAdd, v, mir.Imm(100))
	t1.StoreG(cnt, v1) // cnt += deposit1 (shared write: region boundary)
	t1.Sleep(mir.Imm(120))
	bal := t1.LoadG("bal", cnt)
	ok := t1.Bin("ok", mir.BinEq, bal, v1)
	t1.OracleAssert(ok, "printed balance omits concurrent deposit")
	t1.Output("Balance", bal)
	t1.Ret(mir.None)

	t2 := b.Func("teller2")
	t2.Sleep(mir.Imm(20))
	w := t2.LoadG("w", cnt)
	w1 := t2.Bin("w1", mir.BinAdd, w, mir.Imm(50))
	t2.StoreG(cnt, w1) // cnt += deposit2
	t2.Ret(mir.None)

	m := b.Func("main")
	x := m.Spawn("x", "teller1")
	y := m.Spawn("y", "teller2")
	m.Join(x)
	m.Join(y)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// Figure2Pattern bundles one pattern with the paper's expectation.
type Figure2Pattern struct {
	Name  string
	Build func() *mir.Module
	// ConAirRecovers is the paper's §2.2 taxonomy: idempotent
	// single-threaded reexecution suffices for WAW and RAR, but not for
	// RAW and WAR (those need shared-write reexecution).
	ConAirRecovers bool
}

// Figure2Patterns returns the four patterns in the paper's order.
func Figure2Patterns() []Figure2Pattern {
	return []Figure2Pattern{
		{"WAW", Figure2WAW, true},
		{"RAW", Figure2RAW, false},
		{"RAR", Figure2RAR, true},
		{"WAR", Figure2WAR, false},
	}
}
