// Package bugs reconstructs the 10 real-world concurrency bugs of the
// ConAir evaluation (paper Table 2) as MIR programs.
//
// Each reconstruction reproduces the published root-cause pattern, failure
// symptom, calling structure and recovery mechanism of its bug —
// Figure 9 (FFT), Figure 10 (MozillaXP), Figure 11 (HawkNL) give three of
// the shapes explicitly — embedded in a synthetic workload sized so the
// static failure-site census matches the app's Table 4 row and the dynamic
// behaviour (reexecution-point executions, recovery retries, restart cost)
// reproduces the paper's ordering. Workloads are scaled down ~10x from the
// paper's dynamic counts so a full experiment sweep runs in seconds; the
// scale factor is uniform, preserving every relative comparison.
//
// A Bug builds two program variants:
//
//   - ForceBug: sleeps are inserted into the buggy code regions so the
//     failure-inducing interleaving occurs with ~100% probability — the
//     paper's evaluation methodology (§5);
//   - !ForceBug: the same program with the timing reversed so the bug
//     never manifests, used for overhead measurement ("no sleep is
//     inserted and software never fails during the run-time overhead
//     measurement").
package bugs

import (
	"fmt"

	"conair/internal/analysis"
	"conair/internal/mir"
)

// Config selects the program variant.
type Config struct {
	// ForceBug inserts the failure-forcing sleeps.
	ForceBug bool
	// Light shrinks the hot workload by ~20x. Recovery behaviour (root
	// cause, retries, episode length) is independent of workload volume,
	// so the 1000-run recovery experiments use Light programs; overhead
	// and restart measurements use the full workload.
	Light bool
	// Scale additionally multiplies hot-loop iterations (0 = 1); used by
	// benchmarks that sweep workload size.
	Scale int
	// NoOracle omits the developer output-correctness annotation from the
	// wrong-output bugs (FFT, MySQL1). Without it the buggy run completes
	// while emitting a wrong output and ConAir cannot recover — Table 3's
	// "conditionally recovered" distinction (§6.5).
	NoOracle bool
}

// PaperNumbers holds the figures the paper reports for one app, for
// side-by-side comparison in EXPERIMENTS.md.
type PaperNumbers struct {
	// Table 2.
	LOC string
	// Table 4 (static failure sites hardened).
	Sites analysis.Census
	// Table 5 (survival mode reexecution points).
	ReexecStatic, ReexecDynamic int
	// Table 3 (survival-mode overhead, %).
	OverheadPct float64
	// Table 7.
	RecoveryMicros int64
	Retries        int64
	RestartMicros  int64
}

// Bug is one reconstructed benchmark.
type Bug struct {
	// Name matches the paper's app name (MySQL1, HawkNL, ...).
	Name string
	// AppType is Table 2's application-type column.
	AppType string
	// RootCause is Table 2's cause column (e.g. "A Vio.", "O Vio.",
	// "deadlock").
	RootCause string
	// Symptom is Table 2's failure column.
	Symptom mir.FailKind
	// NeedsOracle marks the two wrong-output bugs (FFT, MySQL1) that are
	// only conditionally recoverable: recovery requires the developer
	// output-correctness annotation (Table 3's "Xc").
	NeedsOracle bool
	// NeedsInterproc marks the two bugs requiring inter-procedural
	// reexecution (MozillaXP, Transmission; §6.1.1).
	NeedsInterproc bool
	// Paper holds the published numbers.
	Paper PaperNumbers

	// FixFunc/FixOp/FixNth name the failure site for fix mode: the Nth
	// instruction of the given opcode in the named function.
	FixFunc string
	FixOp   mir.Op
	FixNth  int

	// build constructs the program.
	build func(cfg Config) *mir.Module
}

// Program builds the bug's MIR program.
func (b *Bug) Program(cfg Config) *mir.Module { return b.build(cfg) }

// FixSite locates the fix-mode failure site in a built program.
func (b *Bug) FixSite(m *mir.Module) (mir.Pos, error) {
	return analysis.FindSite(m, b.FixFunc, b.FixOp, b.FixNth)
}

// registry is populated by the per-app files' init functions in a fixed
// order (the paper's table order).
var registry []*Bug

func register(b *Bug) {
	registry = append(registry, b)
}

// All returns the 10 bugs in the paper's table order.
func All() []*Bug {
	ordered := []string{
		"FFT", "HawkNL", "HTTrack", "MozillaXP", "MozillaJS",
		"MySQL1", "MySQL2", "SQLite", "Transmission", "ZSNES",
	}
	out := make([]*Bug, 0, len(ordered))
	for _, name := range ordered {
		b := ByName(name)
		if b == nil {
			panic(fmt.Sprintf("bugs: %s not registered", name))
		}
		out = append(out, b)
	}
	return out
}

// corpusRegistry holds the labelled real-bug corpus: hand-written MIR
// models of shipped concurrency bugs from open-source Go projects, kept
// separate from the paper's 10 benchmarks so All() — and every golden
// sweep pinned to it — is unchanged by corpus growth.
var corpusRegistry []*Bug

func registerCorpus(b *Bug) {
	corpusRegistry = append(corpusRegistry, b)
}

// Corpus returns the real-bug corpus in registration order.
func Corpus() []*Bug {
	out := make([]*Bug, len(corpusRegistry))
	copy(out, corpusRegistry)
	return out
}

// ByName returns the named bug — paper benchmark or corpus entry — or nil.
func ByName(name string) *Bug {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	for _, b := range corpusRegistry {
		if b.Name == name {
			return b
		}
	}
	return nil
}
