package bugs

import (
	"testing"

	"conair/internal/baseline"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/sched"
)

// Figure 2 / §2.2: every pattern fails unprotected; ConAir's idempotent
// single-threaded reexecution recovers WAW and RAR but not RAW and WAR
// (whose recovery would reexecute the failing thread's own shared writes).
func TestFigure2Taxonomy(t *testing.T) {
	for _, p := range Figure2Patterns() {
		m := p.Build()
		plain := interp.RunModule(m, interp.Config{
			Sched: sched.NewRandom(1), MaxSteps: 2_000_000,
		})
		if plain.Completed {
			t.Errorf("figure2 %s: unprotected run should fail", p.Name)
			continue
		}

		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("figure2 %s: %v", p.Name, err)
		}
		recovered := true
		for seed := int64(0); seed < 10; seed++ {
			r := interp.RunModule(h.Module, interp.Config{
				Sched: sched.NewRandom(seed), MaxSteps: 5_000_000,
			})
			if !r.Completed {
				recovered = false
				break
			}
		}
		if recovered != p.ConAirRecovers {
			t.Errorf("figure2 %s: ConAir recovered=%v, paper taxonomy says %v",
				p.Name, recovered, p.ConAirRecovers)
		}
	}
}

// The whole-program-checkpoint baseline recovers all four patterns — the
// other end of Figure 4's design spectrum.
func TestFigure2CheckpointBaselineRecoversAll(t *testing.T) {
	for _, p := range Figure2Patterns() {
		m := p.Build()
		r := baseline.RunCheckpointed(m, baseline.CheckpointConfig{
			Interval: 25, Seed: 5, PerturbBound: 400, MaxSteps: 5_000_000,
		})
		if !r.Completed {
			t.Errorf("figure2 %s: checkpoint baseline failed to recover", p.Name)
		}
	}
}
