package bugs_test

import (
	"testing"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

// Ground truth for the sanitizer on the ten paper benchmarks: the racy
// global each race bug fights over, and the inverted lock pair behind
// each deadlock bug (Symptom == FailHang), as documented in each bug's
// builder.
var racyGlobal = map[string]string{
	"FFT":          "End",
	"MySQL1":       "log_state",
	"MySQL2":       "proc_info",
	"Transmission": "gband",
	"HTTrack":      "gopt",
	"MozillaXP":    "mThd",
	"ZSNES":        "video_init",
}

var lockPair = map[string][2]string{
	"HawkNL":    {"nlock", "slock"},
	"MozillaJS": {"gc_lock", "rt_lock"},
	"SQLite":    {"db_lock", "journal_lock"},
}

// sanSearch runs mod under PCT schedule seeds until the sanitizer
// reports something, returning the first non-empty report set.
func sanSearch(t *testing.T, mod *mir.Module, budget int64) []sanitizer.Report {
	t.Helper()
	for seed := int64(0); seed < budget; seed++ {
		san := sanitizer.New(mod)
		interp.RunModule(mod, interp.Config{
			Sched:     sched.NewPCT(seed, 3, 64),
			MaxSteps:  200_000_000,
			Sanitizer: san,
		})
		if rs := san.Reports(); len(rs) > 0 {
			return rs
		}
	}
	return nil
}

// TestSanitizerClassifiesAllBenchmarks checks the sanitizer's verdict on
// every paper bug: race bugs are flagged as races on their documented
// racy global, deadlock bugs are flagged by the lockset predictor on
// their documented lock pair — and nothing else is reported.
//
// Race bugs are observed on the survival-hardened forced program: an
// order-violation run dies after the premature read and before the late
// write, so only recovery lets both sides of the race appear in one
// trace. Deadlock bugs are predicted on the unhardened forced program,
// since hardening's timed inner locks neutralize the inversion — which
// the predictor correctly treats as not-a-deadlock.
func TestSanitizerClassifiesAllBenchmarks(t *testing.T) {
	for _, b := range bugs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			forced := b.Program(bugs.Config{Light: true, ForceBug: true})

			if pair, ok := lockPair[b.Name]; ok {
				if b.Symptom != mir.FailHang {
					t.Fatalf("deadlock bug has symptom %v, want %v", b.Symptom, mir.FailHang)
				}
				rs := sanSearch(t, forced, 5)
				if len(rs) == 0 {
					t.Fatal("no sanitizer report on forced deadlock program")
				}
				for _, r := range rs {
					if r.Kind != sanitizer.KindDeadlock {
						t.Fatalf("unexpected %v report: %v", r.Kind, r)
					}
					got := map[string]bool{r.LockA: true, r.LockB: true}
					if !got[pair[0]] || !got[pair[1]] {
						t.Fatalf("deadlock on (%s,%s), want (%s,%s)",
							r.LockA, r.LockB, pair[0], pair[1])
					}
				}
				return
			}

			global, ok := racyGlobal[b.Name]
			if !ok {
				t.Fatalf("benchmark missing from this test's ground truth")
			}
			h, err := core.Harden(forced, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rs := sanSearch(t, h.Module, 5)
			if len(rs) == 0 {
				t.Fatal("no sanitizer report on hardened forced race program")
			}
			// Pointer-publication bugs (HTTrack, MozillaXP) race on the
			// pointer global and on the heap block it publishes — both
			// sides of the same order violation — so heap reports are
			// legitimate companions; the documented global must appear.
			sawGlobal := false
			for _, r := range rs {
				if r.Kind == sanitizer.KindDeadlock {
					t.Fatalf("race bug misclassified as deadlock: %v", r)
				}
				switch {
				case r.Global == global:
					sawGlobal = true
				case r.Global == "":
					// heap block race: companion report
				default:
					t.Fatalf("race on %q, want %q (report: %v)", r.Location(), global, r)
				}
			}
			if !sawGlobal {
				t.Fatalf("no race on documented global %q; got %v", global, rs)
			}
		})
	}
}

// TestSanitizerCleanOnFailureFreeVariants pins the false-positive rate on
// the benchmarks themselves: the non-forced variants run with the bug's
// window closed, and the sanitizer must stay quiet on the deadlock bugs'
// clean variants, whose lock acquisitions are ordered by timing. (Race
// bugs' clean variants still contain the racy pair — timing hides the
// failure, not the race — so a report there is correct, not a false
// positive; they are exercised by the zero-FP mirgen soak instead.)
func TestSanitizerCleanOnFailureFreeVariants(t *testing.T) {
	for _, b := range bugs.All() {
		if _, ok := lockPair[b.Name]; !ok {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			clean := b.Program(bugs.Config{Light: true})
			san := sanitizer.New(clean)
			r := interp.RunModule(clean, interp.Config{
				Sched:     sched.NewRandom(1),
				MaxSteps:  200_000_000,
				Sanitizer: san,
			})
			if !r.Completed {
				t.Fatalf("clean variant failed: %v", r.Failure)
			}
			for _, rep := range san.Reports() {
				if rep.Kind == sanitizer.KindDeadlock {
					t.Fatalf("false deadlock prediction on clean variant: %v", rep)
				}
			}
		})
	}
}
