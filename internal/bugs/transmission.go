package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// Transmission — BitTorrent client.
//
// Root cause: an order violation on the shared bandwidth object. The peer
// loop passes the object to a checking helper that asserts it is non-null;
// under the buggy interleaving the session initializer has not yet
// published it.
//
// Like MozillaXP, this bug requires INTER-PROCEDURAL reexecution (§6.1.1):
// the assert in the helper depends only on the helper's parameter and the
// helper body is fully idempotent, so the reexecution point is pushed into
// the peer loop, right after its last destroying operation and before the
// load of the shared pointer — rolling back there rereads the pointer.
func init() {
	register(&Bug{
		Name:           "Transmission",
		AppType:        "BitTorrent client",
		RootCause:      "O Vio.",
		Symptom:        mir.FailAssert,
		NeedsInterproc: true,
		Paper: PaperNumbers{
			LOC:            "95K",
			Sites:          analysis.Census{Assert: 430, WrongOutput: 190, Segfault: 2151, Deadlock: 0},
			ReexecStatic:   2568,
			ReexecDynamic:  4425,
			OverheadPct:    0.2,
			RecoveryMicros: 6476,
			Retries:        761,
			RestartMicros:  553109,
		},
		FixFunc: "assertband",
		FixOp:   mir.OpAssert,
		FixNth:  0,
		build:   buildTransmission,
	})
}

func buildTransmission(cfg Config) *mir.Module {
	b := mir.NewBuilder("Transmission")
	gband := b.Global("gband", 0)
	tstat := b.Global("tstat", 0)

	// The checking helper: assert(band != NULL) on the parameter.
	ab := b.Func("assertband", "band")
	ok := ab.Bin("ok", mir.BinNe, ab.R("band"), mir.Imm(0))
	ab.Assert(ok, "bandwidth object must be initialized")
	ab.Ret(mir.None)

	// The peer loop: bumps its statistics (destroying — anchors the
	// caller-side reexecution point), loads the shared pointer, checks it.
	pl := b.Func("peerloop")
	s := pl.LoadG("s", tstat)
	s1 := pl.Bin("s1", mir.BinAdd, s, mir.Imm(1))
	pl.StoreG(tstat, s1)
	band := pl.LoadG("band", gband)
	pl.Call("", "assertband", band)
	pl.Ret(mir.None)

	// Session initializer: publishes the bandwidth object.
	bi := b.Func("bandinit")
	if cfg.ForceBug {
		bi.Sleep(mir.Imm(4500))
	}
	h := bi.Alloc("h", mir.Imm(2))
	bi.Store(h, mir.Imm(5))
	bi.StoreG(gband, h)
	bi.Ret(mir.None)

	// Client workload (Table 4: 430/190/2151/0). Core sites: the helper's
	// assert and the initializer's store.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "tr",
		Derefs: 2150, Asserts: 429, PrunableAsserts: 60, Outputs: 190,
		HotSites: 10, HotIters: scaleIters(cfg, 300), Inner: 1300,
		ColdOnce: true,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		ti := m.Spawn("ti", "bandinit")
		m.Call("", "peerloop")
		m.Join(ti)
	} else {
		ti := m.Spawn("ti", "bandinit")
		m.Join(ti)
		m.Call("", "peerloop")
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
