package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// HTTrack — web crawler.
//
// Root cause: an order violation on a shared options/back-channel pointer.
// A crawler worker dereferences the shared pointer assuming the background
// initializer has already published it; under the buggy interleaving the
// pointer is still null and the worker segfaults.
//
// Recovery: the dereference is a potential segmentation-fault site; the
// planted pointer sanity check fails, and the rollback rereads the shared
// pointer until the initializer has run. HTTrack's census is dominated by
// the many assertions its developers left in the code (Table 4: 657
// assertion sites).
func init() {
	register(&Bug{
		Name:      "HTTrack",
		AppType:   "Web crawler",
		RootCause: "O Vio.",
		Symptom:   mir.FailSegfault,
		Paper: PaperNumbers{
			LOC:            "55K",
			Sites:          analysis.Census{Assert: 657, WrongOutput: 504, Segfault: 3146, Deadlock: 0},
			ReexecStatic:   3570,
			ReexecDynamic:  12995,
			OverheadPct:    0.0,
			RecoveryMicros: 4237,
			Retries:        474,
			RestartMicros:  10776,
		},
		FixFunc: "crawler",
		FixOp:   mir.OpLoad,
		FixNth:  0,
		build:   buildHTTrack,
	})
}

func buildHTTrack(cfg Config) *mir.Module {
	b := mir.NewBuilder("HTTrack")
	gopt := b.Global("gopt", 0)
	hresult := b.Global("hresult", 0)

	// The failing thread: dereferences the shared back-channel pointer.
	c := b.Func("crawler")
	p := c.LoadG("p", gopt)
	v := c.Load("v", p)
	c.StoreG(hresult, v)
	c.Ret(mir.None)

	// The background initializer publishes the pointer late under the
	// buggy interleaving.
	i := b.Func("backinit")
	if cfg.ForceBug {
		i.Sleep(mir.Imm(2400))
	}
	h := i.Alloc("h", mir.Imm(4))
	i.Store(h, mir.Imm(7))
	a1 := i.Bin("a1", mir.BinAdd, h, mir.Imm(1))
	i.Store(a1, mir.Imm(9))
	i.StoreG(gopt, h)
	i.Ret(mir.None)

	// Crawl workload: a hot fetch/parse loop with pointer-heavy cold
	// helpers; the census tops up to Table 4's 657/504/3146/0. The core
	// contributes 3 segfault sites (the crawler dereference plus the two
	// initializing stores).
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "ht",
		Derefs: 3143, Asserts: 657, PrunableAsserts: 600, Outputs: 504,
		HotSites: 12, HotIters: scaleIters(cfg, 300), Inner: 1400,
		ColdOnce: true,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		ti := m.Spawn("ti", "backinit")
		tc := m.Spawn("tc", "crawler")
		m.Join(tc)
		m.Join(ti)
	} else {
		ti := m.Spawn("ti", "backinit")
		m.Join(ti)
		tc := m.Spawn("tc", "crawler")
		m.Join(tc)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
