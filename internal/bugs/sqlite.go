package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// SQLite — embedded database engine.
//
// Root cause: a deadlock between a writer committing (database lock, then
// — after flushing — the journal lock) and a checkpointing thread taking
// the same two locks in the opposite order with nothing destroying in
// between. The checkpointer's second acquisition is the one recoverable
// site (Table 4 reports a single deadlock site for SQLite): its timed lock
// expires, the rollback releases the journal lock, the writer finishes,
// and the checkpointer reexecutes successfully — one retry, like the
// paper.
func init() {
	register(&Bug{
		Name:      "SQLite",
		AppType:   "Database engine",
		RootCause: "deadlock",
		Symptom:   mir.FailHang,
		Paper: PaperNumbers{
			LOC:            "67K",
			Sites:          analysis.Census{Assert: 0, WrongOutput: 25, Segfault: 47, Deadlock: 1},
			ReexecStatic:   142,
			ReexecDynamic:  7,
			OverheadPct:    0.0,
			RecoveryMicros: 86,
			Retries:        1,
			RestartMicros:  1443,
		},
		FixFunc: "checkpointer",
		FixOp:   mir.OpLock,
		FixNth:  1, // the db-lock acquisition after the journal lock
		build:   buildSQLite,
	})
}

func buildSQLite(cfg Config) *mir.Module {
	b := mir.NewBuilder("SQLite")
	dbLock := b.Global("db_lock", 0)
	jLock := b.Global("journal_lock", 0)
	committed := b.Global("committed", 0)

	// The flush between the writer's two acquisitions: a destroying call,
	// making the writer's journal-lock site unrecoverable (pruned).
	fl := b.Func("flush")
	if cfg.ForceBug {
		fl.Sleep(mir.Imm(90))
	}
	n := fl.LoadG("n", committed)
	n1 := fl.Bin("n1", mir.BinAdd, n, mir.Imm(1))
	fl.StoreG(committed, n1)
	fl.Ret(mir.None)

	// Writer: db_lock → flush() → journal_lock.
	w := b.Func("writer")
	pd := w.AddrG("pd", dbLock)
	w.Lock(pd)
	w.Call("", "flush")
	pj := w.AddrG("pj", jLock)
	w.Lock(pj)
	w.Unlock(pj)
	w.Unlock(pd)
	w.Ret(mir.None)

	// Checkpointer: journal_lock → db_lock, back-to-back (recoverable).
	cp := b.Func("checkpointer")
	pj2 := cp.AddrG("pj", jLock)
	cp.Lock(pj2)
	if cfg.ForceBug {
		cp.Sleep(mir.Imm(40))
	}
	pd2 := cp.AddrG("pd", dbLock)
	cp.Lock(pd2)
	cp.Unlock(pd2)
	cp.Unlock(pj2)
	cp.Ret(mir.None)

	// Engine workload (Table 4: 0/25/47/1 — the single deadlock site is
	// the checkpointer's, so no filler lock pairs).
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "sq",
		Derefs: 47, Outputs: 25,
		HotSites: 0, HotIters: scaleIters(cfg, 60), Inner: 150,
		ColdOnce: false,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		t1 := m.Spawn("t1", "writer")
		t2 := m.Spawn("t2", "checkpointer")
		m.Join(t1)
		m.Join(t2)
	} else {
		t1 := m.Spawn("t1", "writer")
		m.Join(t1)
		t2 := m.Spawn("t2", "checkpointer")
		m.Join(t2)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
