package bugs

import (
	"conair/internal/analysis"
	"conair/internal/mir"
)

// MySQL1 — database server, bug 1 (wrong output from a WAW atomicity
// violation, the Figure 2a pattern).
//
// The log-rotation path closes and reopens the binlog with two writes to
// the shared log state that are meant to be atomic; a concurrent logging
// thread observing the transient CLOSED state emits a wrong "log disabled"
// result. With the developer oracle (the log must be OPEN when writing),
// ConAir rolls the logging thread back until the rotation's second write
// lands.
func init() {
	register(&Bug{
		Name:        "MySQL1",
		AppType:     "Database server",
		RootCause:   "A Vio.",
		Symptom:     mir.FailWrongOutput,
		NeedsOracle: true,
		Paper: PaperNumbers{
			LOC:            "681K",
			Sites:          analysis.Census{Assert: 119, WrongOutput: 3256, Segfault: 15791, Deadlock: 19},
			ReexecStatic:   12494,
			ReexecDynamic:  215218,
			OverheadPct:    0.1,
			RecoveryMicros: 6014,
			Retries:        575,
			RestartMicros:  26308,
		},
		FixFunc: "logwrite",
		FixOp:   mir.OpAssert,
		FixNth:  0,
		build:   buildMySQL1,
	})
}

func buildMySQL1(cfg Config) *mir.Module {
	b := mir.NewBuilder("MySQL1")
	logState := b.Global("log_state", 1) // 1 = OPEN
	logLines := b.Global("log_lines", 0)

	// Rotation thread: CLOSE then OPEN, non-atomically (Figure 2a).
	rot := b.Func("logrotate")
	rot.StoreG(logState, mir.Imm(0)) // CLOSE
	if cfg.ForceBug {
		rot.Sleep(mir.Imm(2900))
	}
	rot.StoreG(logState, mir.Imm(1)) // OPEN
	rot.Ret(mir.None)

	// Logging thread: checks the oracle, then writes the line.
	lw := b.Func("logwrite")
	v := lw.LoadG("v", logState)
	if !cfg.NoOracle {
		lw.OracleAssert(v, "binlog must be open when writing")
	}
	lw.Output("binlog", v)
	n := lw.LoadG("n", logLines)
	n1 := lw.Bin("n1", mir.BinAdd, n, mir.Imm(1))
	lw.StoreG(logLines, n1)
	lw.Ret(mir.None)

	// Server workload: the largest census in the suite (Table 4:
	// 119/3256/15791/19) with a query-processing hot loop. Core
	// wrong-output sites: the oracle plus the binlog output.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "my1",
		Derefs: 15791, Asserts: 119, PrunableAsserts: 119, Outputs: 3254,
		LockPairs: 19, LoneLocks: 140,
		HotSites: 48, HotIters: scaleIters(cfg, 450), Inner: 3000,
		HotPrunableAsserts: 4,
		ColdOnce:           false, ColdCalls: 40,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		// Let the rotation's CLOSE land before the writer starts, so the
		// writer always observes the transient closed state.
		tr := m.Spawn("tr", "logrotate")
		m.Sleep(mir.Imm(120))
		tw := m.Spawn("tw", "logwrite")
		m.Join(tw)
		m.Join(tr)
	} else {
		tr := m.Spawn("tr", "logrotate")
		m.Join(tr)
		tw := m.Spawn("tw", "logwrite")
		m.Join(tw)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// MySQL2 — database server, bug 2 (assertion violation from a
// read-after-read atomicity violation, the Figure 2c pattern).
//
// A monitoring thread reads the shared per-thread proc_info twice assuming
// atomicity; a concurrent state change between the reads trips the
// consistency assertion. This is the paper's fastest recovery: one
// rollback rereads both values and the assertion passes immediately (8µs
// in the paper) — while a whole-program restart replays the server's
// entire startup (836ms), the largest restart/recovery gap in the suite.
func init() {
	register(&Bug{
		Name:      "MySQL2",
		AppType:   "Database server",
		RootCause: "A Vio.",
		Symptom:   mir.FailAssert,
		Paper: PaperNumbers{
			LOC:            "693K",
			Sites:          analysis.Census{Assert: 518, WrongOutput: 2853, Segfault: 15498, Deadlock: 21},
			ReexecStatic:   13031,
			ReexecDynamic:  82394,
			OverheadPct:    0.0,
			RecoveryMicros: 8,
			Retries:        1,
			RestartMicros:  836177,
		},
		FixFunc: "checker",
		FixOp:   mir.OpAssert,
		FixNth:  0,
		build:   buildMySQL2,
	})
}

func buildMySQL2(cfg Config) *mir.Module {
	b := mir.NewBuilder("MySQL2")
	procInfo := b.Global("proc_info", 1)

	// Monitoring thread: two reads of proc_info expected to be atomic
	// (RAR). The yield loop between them is the race window the paper's
	// evaluation widens with injected sleeps.
	ck := b.Func("checker")
	a := ck.LoadG("a", procInfo)
	ck.Const("i", 0)
	loop := ck.Label("window")
	ck.Yield()
	ck.Bin("i", mir.BinAdd, ck.R("i"), mir.Imm(1))
	c := ck.Bin("c", mir.BinLt, ck.R("i"), mir.Imm(40))
	after := ck.NewBlock("after")
	ck.Br(c, loop, after)
	ck.SetBlock(after)
	bb := ck.LoadG("b", procInfo)
	same := ck.Bin("same", mir.BinEq, a, bb)
	ck.Assert(same, "proc_info must not change mid-report")
	ck.Ret(mir.None)

	// State-change thread: flips proc_info inside the window when forced.
	mu := b.Func("mutator")
	if cfg.ForceBug {
		mu.Sleep(mir.Imm(15))
	}
	mu.StoreG(procInfo, mir.Imm(0))
	mu.Yield()
	mu.StoreG(procInfo, mir.Imm(2))
	mu.Ret(mir.None)

	// Server workload: comparable census to MySQL1 (Table 4:
	// 518/2853/15498/21) but a much heavier startup/run volume — the
	// source of the paper's 836ms restart cost.
	drive := GenWorkload(b, WorkloadSpec{
		Prefix: "my2",
		Derefs: 15498, Asserts: 517, PrunableAsserts: 50, Outputs: 2853,
		LockPairs: 21, LoneLocks: 210,
		HotSites: 32, HotIters: scaleIters(cfg, 800), Inner: 2500,
		HotPrunableAsserts: 6,
		ColdOnce:           false, ColdCalls: 40,
	})

	m := b.Func("main")
	m.Call("", drive)
	if cfg.ForceBug {
		tm := m.Spawn("tm", "mutator")
		tc := m.Spawn("tc", "checker")
		m.Join(tc)
		m.Join(tm)
	} else {
		tm := m.Spawn("tm", "mutator")
		m.Join(tm)
		tc := m.Spawn("tc", "checker")
		m.Join(tc)
	}
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
