package bugs

import (
	"fmt"
	"testing"

	"conair/internal/analysis"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// buildWorkload wraps a spec in a minimal main.
func buildWorkload(t *testing.T, spec WorkloadSpec) *mir.Module {
	t.Helper()
	b := mir.NewBuilder("wl-test")
	drive := GenWorkload(b, spec)
	m := b.Func("main")
	m.Call("", drive)
	m.Ret(mir.Imm(0))
	mod, err := b.Module()
	if err != nil {
		t.Fatalf("spec %+v: %v", spec, err)
	}
	return mod
}

// The generator must hit its static site budgets exactly — the whole
// Table 4 reproduction rests on this arithmetic.
func TestWorkloadCensusExact(t *testing.T) {
	specs := []WorkloadSpec{
		{Prefix: "a", Derefs: 10, Asserts: 3, Outputs: 2},
		{Prefix: "b", Derefs: 100, Asserts: 20, PrunableAsserts: 5, Outputs: 17, LockPairs: 3},
		{Prefix: "c", Derefs: 5, LockPairs: 1, LoneLocks: 4},
		{Prefix: "d", Derefs: 0, Asserts: 7, Outputs: 0},
		{Prefix: "e", Derefs: 33, Asserts: 0, Outputs: 50, LoneLocks: 2},
		{Prefix: "f", Derefs: 400, Asserts: 40, PrunableAsserts: 40, Outputs: 12,
			LockPairs: 6, LoneLocks: 9, HotSites: 8, HotIters: 3, HotPrunableAsserts: 4},
		{Prefix: "g", Derefs: 1, Asserts: 1, Outputs: 1},
	}
	for i, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("spec%d", i), func(t *testing.T) {
			m := buildWorkload(t, spec)
			var c analysis.Census
			for _, s := range analysis.IdentifySurvival(m) {
				c.Add(s.Kind)
			}
			if c.Segfault != spec.Derefs {
				t.Errorf("segfault sites = %d, want %d", c.Segfault, spec.Derefs)
			}
			if c.Assert != spec.Asserts {
				t.Errorf("assert sites = %d, want %d", c.Assert, spec.Asserts)
			}
			if c.WrongOutput != spec.Outputs {
				t.Errorf("output sites = %d, want %d", c.WrongOutput, spec.Outputs)
			}
			wantLocks := 2*spec.LockPairs + spec.LoneLocks
			if c.Deadlock != wantLocks {
				t.Errorf("raw deadlock sites = %d, want %d", c.Deadlock, wantLocks)
			}
		})
	}
}

// Exactly one deadlock site per nested pair survives pruning; lone locks
// are all pruned.
func TestWorkloadDeadlockPruning(t *testing.T) {
	spec := WorkloadSpec{Prefix: "w", Derefs: 30, LockPairs: 4, LoneLocks: 7}
	m := buildWorkload(t, spec)
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i := range res.Sites {
		if res.Sites[i].Site.Kind == analysis.SiteDeadlock && res.Sites[i].Recovers() {
			kept++
		}
	}
	if kept != spec.LockPairs {
		t.Errorf("kept deadlock sites = %d, want %d (one per pair)", kept, spec.LockPairs)
	}
}

// Prunable asserts really are pruned, and only they.
func TestWorkloadPrunableAsserts(t *testing.T) {
	spec := WorkloadSpec{Prefix: "w", Derefs: 10, Asserts: 12, PrunableAsserts: 5}
	m := buildWorkload(t, spec)
	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for i := range res.Sites {
		sa := &res.Sites[i]
		if sa.Site.Kind == analysis.SiteAssert && sa.Verdict == analysis.PruneNoSharedRead {
			pruned++
		}
	}
	if pruned != spec.PrunableAsserts {
		t.Errorf("pruned asserts = %d, want %d", pruned, spec.PrunableAsserts)
	}
}

// The generated workload must run cleanly (it is the overhead baseline),
// and its dynamic checkpoint count must equal HotIters*(HotSites+
// HotPrunableAsserts... without optimization the prunable ones count too)
// in the hot loop plus the cold-once contribution.
func TestWorkloadRunsCleanAndHotDynamics(t *testing.T) {
	spec := WorkloadSpec{
		Prefix: "w", Derefs: 40, Asserts: 4, Outputs: 3,
		HotSites: 6, HotIters: 10, Inner: 20, ColdOnce: true,
	}
	m := buildWorkload(t, spec)
	r := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
	if !r.Completed {
		t.Fatalf("workload run failed: %v", r.Failure)
	}

	res, err := analysis.Analyze(m, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	h := hardenModule(t, m)
	hr := interp.RunModule(h, interp.Config{Sched: sched.NewRandom(1)})
	if !hr.Completed {
		t.Fatalf("hardened workload failed: %v", hr.Failure)
	}
	// Each hot dereference owns a checkpoint executed once per iteration.
	minHot := int64(spec.HotIters * spec.HotSites)
	if hr.Stats.Checkpoints < minHot {
		t.Errorf("dynamic checkpoints = %d, want >= %d from the hot loop",
			hr.Stats.Checkpoints, minHot)
	}
	if hr.Stats.Rollbacks != 0 {
		t.Errorf("clean workload rolled back %d times", hr.Stats.Rollbacks)
	}
}

func hardenModule(t *testing.T, m *mir.Module) *mir.Module {
	t.Helper()
	h, err := core.Harden(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return h.Module
}

// ColdCalls limits which cold functions execute.
func TestWorkloadColdCalls(t *testing.T) {
	specAll := WorkloadSpec{Prefix: "w", Derefs: 120, ColdOnce: true}
	specNone := WorkloadSpec{Prefix: "w", Derefs: 120, ColdOnce: false}
	specSome := WorkloadSpec{Prefix: "w", Derefs: 120, ColdOnce: false, ColdCalls: 2}

	steps := func(spec WorkloadSpec) int64 {
		m := buildWorkload(t, spec)
		r := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1)})
		if !r.Completed {
			t.Fatalf("run failed: %v", r.Failure)
		}
		return r.Stats.Steps
	}
	all, none, some := steps(specAll), steps(specNone), steps(specSome)
	if !(none < some && some < all) {
		t.Errorf("cold execution ordering broken: none=%d some=%d all=%d", none, some, all)
	}
}
