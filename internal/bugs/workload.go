package bugs

import (
	"fmt"

	"conair/internal/mir"
)

// WorkloadSpec sizes the synthetic workload surrounding a bug's core. The
// static knobs (Derefs, Asserts, Outputs, LockPairs, PrunableAsserts)
// control the failure-site census so each app reproduces its Table 4 row;
// the dynamic knobs (HotIters, HotSites, Inner) control how many
// reexecution points execute per run (Table 5) and the overhead ratio
// (Table 3): every hot-path site costs a checkpoint plus a guard, so the
// inner pure-compute work between sites sets the overhead.
type WorkloadSpec struct {
	// Prefix distinguishes multiple workloads in one module.
	Prefix string

	// Derefs is the number of pointer-dereference (potential segfault)
	// sites to generate, including buffer-initialization stores.
	Derefs int
	// Asserts is the number of plain assertion sites; PrunableAsserts of
	// them depend only on register values (no shared read on the slice)
	// and are removed by the §4.2 optimization.
	Asserts         int
	PrunableAsserts int
	// Outputs is the number of oracle-less output sites.
	Outputs int
	// LockPairs is the number of nested lock acquisitions; each pair
	// yields one recoverable deadlock site (the inner lock) and one
	// pruned one (the outer lock), mirroring the paper's observation that
	// only locks enclosed by other locks are recoverable.
	LockPairs int
	// LoneLocks is the number of un-nested lock acquisitions. Each is a
	// deadlock site with its own reexecution point and no lock inside its
	// region, so the §4.2 optimization removes both — the dominant case
	// in the paper's Table 6 (up to 91% of deadlock points pruned).
	LoneLocks int

	// SitesPerFunc splits the sites across generated functions (default
	// 24) — many small functions, like real code.
	SitesPerFunc int

	// HotIters is how many times the hot function set runs per drive
	// call; HotSites is how many dereference sites the hot path touches
	// per iteration; Inner is the register-only compute per iteration
	// (steps of useful work between checkpoints).
	HotIters int
	HotSites int
	Inner    int
	// HotPrunableAsserts places some of the prunable assertions on the
	// hot path, so the optimization's effect is visible dynamically as
	// well as statically (Table 6's dynamic columns). Counted against the
	// Asserts and PrunableAsserts budgets.
	HotPrunableAsserts int
	// ColdOnce runs every generated cold function once per drive call
	// (program startup shape) when true; otherwise ColdCalls of them are
	// run once (partially exercised code, like a server start-up path).
	ColdOnce  bool
	ColdCalls int
}

func (s *WorkloadSpec) defaults() {
	if s.Prefix == "" {
		s.Prefix = "wl"
	}
	if s.SitesPerFunc <= 0 {
		s.SitesPerFunc = 24
	}
	if s.HotIters < 0 {
		s.HotIters = 0
	}
	if s.Inner <= 0 {
		s.Inner = 64
	}
}

// GenWorkload emits the workload into the builder and returns the name of
// the generated driver function, which takes no parameters and executes
// the whole workload when called. The caller wires it into the app's main
// (or worker threads).
//
// Layout:
//
//	<p>_init()         allocates and fills the data buffer
//	<p>_hot()          the hot loop: Inner compute + HotSites derefs/iter
//	<p>_cold_<i>()     the cold functions carrying the remaining sites
//	<p>_drive()        init + cold calls (once) + HotIters hot iterations
func GenWorkload(b *mir.Builder, spec WorkloadSpec) string {
	spec.defaults()
	p := spec.Prefix

	bufG := b.Global(p+"_buf", 0)
	sinkG := b.Global(p+"_sink", 0)

	// --- init: allocate the buffer, fill the first cells.
	// Every store-through-pointer is a segfault site, so init absorbs
	// bufInitStores of the Derefs budget.
	bufWords := 16
	bufInitStores := min(spec.Derefs/4+1, bufWords)
	derefsLeft := spec.Derefs - bufInitStores
	if derefsLeft < 0 {
		bufInitStores += derefsLeft
		derefsLeft = 0
	}

	f := b.Func(p + "_init")
	h := f.Alloc("h", mir.Imm(mir.Word(bufWords)))
	for i := 0; i < bufInitStores; i++ {
		addr := f.Bin(fmt.Sprintf("a%d", i), mir.BinAdd, h, mir.Imm(mir.Word(i%bufWords)))
		f.Store(addr, mir.Imm(mir.Word(i+1)))
	}
	f.StoreG(bufG, h)
	f.Ret(mir.None)

	// --- hot loop function: Inner register-only compute, then HotSites
	// dereferences. The compute loop models the real work between shared
	// accesses; its length sets the overhead ratio.
	hot := b.Func(p + "_hot")
	// inner compute: acc = acc*3+i over Inner iterations (6 instrs/iter).
	hot.Const("acc", 1)
	hot.Const("i", 0)
	loop := hot.Label("loop")
	t1 := hot.Bin("t1", mir.BinMul, hot.R("acc"), mir.Imm(3))
	hot.Bin("acc", mir.BinAdd, t1, hot.R("i"))
	hot.Bin("i", mir.BinAdd, hot.R("i"), mir.Imm(1))
	cond := hot.Bin("c", mir.BinLt, hot.R("i"), mir.Imm(mir.Word(spec.Inner)))
	body2 := hot.NewBlock("sites")
	hot.Br(cond, loop, body2)
	hot.SetBlock(body2)
	hotDerefs := min(spec.HotSites, derefsLeft)
	base := hot.LoadG("base", bufG)
	for i := 0; i < hotDerefs; i++ {
		addr := hot.Bin(fmt.Sprintf("p%d", i), mir.BinAdd, base, mir.Imm(mir.Word(i%bufWords)))
		v := hot.Load(fmt.Sprintf("v%d", i), addr)
		hot.Bin("acc", mir.BinXor, hot.R("acc"), v)
		// Publish the running value: real hot loops interleave shared
		// writes with their reads, which is what gives each dereference
		// its own reexecution point (and hence one dynamic checkpoint per
		// site per iteration, the shape of the paper's Table 5).
		hot.StoreG(sinkG, hot.R("acc"))
	}
	derefsLeft -= hotDerefs
	for i := 0; i < spec.HotPrunableAsserts; i++ {
		c := hot.Bin(fmt.Sprintf("hp%d", i), mir.BinOr, mir.Imm(1), mir.Imm(0))
		hot.Assert(c, "wl hot invariant (local)")
		hot.StoreG(sinkG, hot.R("acc"))
	}
	hot.StoreG(sinkG, hot.R("acc"))
	hot.Ret(mir.None)

	// --- cold functions: distribute the remaining static sites.
	assertsLeft := spec.Asserts - spec.HotPrunableAsserts
	prunableLeft := spec.PrunableAsserts - spec.HotPrunableAsserts
	outputsLeft := spec.Outputs
	locksLeft := spec.LockPairs
	lonesLeft := spec.LoneLocks

	var coldNames []string
	ci := 0
	for derefsLeft > 0 || assertsLeft > 0 || outputsLeft > 0 || locksLeft > 0 || lonesLeft > 0 {
		name := fmt.Sprintf("%s_cold_%d", p, ci)
		coldNames = append(coldNames, name)
		cf := b.Func(name)
		budget := spec.SitesPerFunc
		base := cf.LoadG("base", bufG)
		var v mir.Operand
		if derefsLeft > 0 {
			v = cf.Load("v", base)
			budget-- // the base dereference above is itself a site
			derefsLeft--
		} else {
			// No dereference budget left: feed the asserts from a global
			// read instead (loadg is not a failure site).
			v = cf.LoadG("v", sinkG)
		}
		k := 0
		emitAssert := func() {
			if prunableLeft > 0 {
				// Register-only condition with its own reexecution point
				// (shared writes on both sides): no shared read on the
				// slice, so the §4.2 optimization removes both the
				// recovery code and the point (Figure 7c shape).
				cf.StoreG(sinkG, v)
				c := cf.Bin(fmt.Sprintf("pa%d", k), mir.BinOr, mir.Imm(1), mir.Imm(0))
				cf.Assert(c, "wl invariant (local)")
				cf.StoreG(sinkG, v)
				prunableLeft--
			} else {
				// Depends on a fresh shared read, so the read is inside
				// the assert's own reexecution region regardless of
				// earlier shared writes: kept (Figure 7d).
				kv := cf.LoadG(fmt.Sprintf("kv%d", k), sinkG)
				c := cf.Bin(fmt.Sprintf("ka%d", k), mir.BinOr, kv, mir.Imm(1))
				cf.Assert(c, "wl invariant")
			}
			assertsLeft--
		}
		for budget > 0 && (derefsLeft > 0 || assertsLeft > 0 || outputsLeft > 0 || locksLeft > 0 || lonesLeft > 0) {
			if derefsLeft == 0 && assertsLeft == 0 && outputsLeft == 0 && lonesLeft == 0 && budget < 2 {
				break // only lock pairs remain and they need budget 2
			}
			// Interleave site kinds the way real code mixes them: a few
			// asserts, outputs and lock operations scattered among the
			// pointer work, rather than phase-separated. The modulus
			// gates fire periodically; exhausted kinds fall through to
			// whatever remains.
			switch {
			case assertsLeft > 0 && k%3 == 1:
				emitAssert()
				budget--
			case outputsLeft > 0 && k%5 == 2:
				cf.Output("wl", v)
				outputsLeft--
				budget--
			case lonesLeft > 0 && k%7 == 3:
				cf.StoreG(sinkG, v)
				mu := b.Global(fmt.Sprintf("%s_lkT_%d", p, lonesLeft), 0)
				pl := cf.AddrG(fmt.Sprintf("pt%d", k), mu)
				cf.Lock(pl)
				cf.Unlock(pl)
				lonesLeft--
				budget--
			case locksLeft > 0 && budget >= 2:
				// Anchor the pair behind a shared write so the outer
				// lock's region stops here (it is then pruned as
				// unrecoverable, and being short it is also never
				// selected for inter-procedural recovery) while the
				// inner lock stays recoverable — the realistic nested-
				// lock shape the paper's Table 4 deadlock column counts.
				cf.StoreG(sinkG, v)
				outer := b.Global(fmt.Sprintf("%s_lkA_%d", p, locksLeft), 0)
				inner := b.Global(fmt.Sprintf("%s_lkB_%d", p, locksLeft), 0)
				po := cf.AddrG(fmt.Sprintf("po%d", k), outer)
				pi := cf.AddrG(fmt.Sprintf("pi%d", k), inner)
				cf.Lock(po)
				cf.Lock(pi)
				cf.Unlock(pi)
				cf.Unlock(po)
				locksLeft--
				budget -= 2
			case lonesLeft > 0:
				// An un-nested acquisition: its exclusive reexecution
				// point (after the anchoring write) serves a site with no
				// lock in its region, so the optimization removes both —
				// the dominant deadlock-point case of Table 6.
				cf.StoreG(sinkG, v)
				mu := b.Global(fmt.Sprintf("%s_lkS_%d", p, lonesLeft), 0)
				pl := cf.AddrG(fmt.Sprintf("pl%d", k), mu)
				cf.Lock(pl)
				cf.Unlock(pl)
				lonesLeft--
				budget--
			case derefsLeft > 0:
				addr := cf.Bin(fmt.Sprintf("q%d", k), mir.BinAdd, base, mir.Imm(mir.Word(k%bufWords)))
				vv := cf.Load(fmt.Sprintf("w%d", k), addr)
				cf.Bin("v", mir.BinXor, v, vv)
				if k%2 == 1 {
					// Interleaved shared writes split dereference runs
					// into separate reexecution regions, approximating
					// the paper's static point-per-site ratio.
					cf.StoreG(sinkG, v)
				}
				derefsLeft--
				budget--
			case assertsLeft > 0:
				emitAssert()
				budget--
			case outputsLeft > 0:
				cf.Output("wl", v)
				outputsLeft--
				budget--
			}
			k++
		}
		cf.StoreG(sinkG, v)
		cf.Ret(mir.None)
		ci++
	}

	// --- driver.
	d := b.Func(p + "_drive")
	d.Call("", p+"_init")
	coldRun := len(coldNames)
	if !spec.ColdOnce {
		coldRun = min(spec.ColdCalls, len(coldNames))
	}
	for _, cn := range coldNames[:coldRun] {
		d.Call("", cn)
	}
	if spec.HotIters > 0 {
		d.Const("n", 0)
		dl := d.Label("dloop")
		d.Call("", p+"_hot")
		d.Bin("n", mir.BinAdd, d.R("n"), mir.Imm(1))
		dc := d.Bin("dc", mir.BinLt, d.R("n"), mir.Imm(mir.Word(spec.HotIters)))
		out := d.NewBlock("dout")
		d.Br(dc, dl, out)
		d.SetBlock(out)
	}
	d.Ret(mir.None)
	return p + "_drive"
}
