package bugs

import (
	"conair/internal/mir"
)

// This file is the labelled real-bug corpus: hand-written MIR models of
// three concurrency bugs shipped (and later fixed) in langgraph-go, a Go
// graph-workflow engine. Each model reproduces the published root-cause
// pattern and failure symptom in a few dozen MIR instructions, small
// enough that the sanitizer's report, the recovery region and the
// minimized failure schedule can all be read by hand.
//
// Unlike the paper benchmarks — where the !ForceBug variant merely
// reverses timing — each corpus model's !ForceBug variant is the shipped
// FIX: the synchronization structure the upstream patch introduced. The
// forced/clean pair therefore doubles as a buggy/fixed differential for
// the three-way cross-check: the buggy build must be flagged by the
// sanitizer on exactly the documented global and must recover under
// hardening, while the fixed build must soak clean with zero reports.
//
// The corpus registers through registerCorpus, not register: bugs.All()
// and every golden fingerprint pinned to it are untouched.

// LGResults — results-channel deadlock (langgraph-go BUG-001).
//
// Workers send node results into a bounded results channel; on the error
// path the collector stops draining after the first result and flips a
// cancellation flag. The flag is checked without synchronization, so a
// worker that passed its check while the channel was already at capacity
// blocks in send forever: the workflow hangs with the error undelivered.
//
// The shipped fix sized the channel so every send completes
// (MaxConcurrentNodes*2) and moved cancellation onto a synchronized
// path; the clean variant models both.
//
// ConAir's recovery needs neither: the hardened send times out, rolls
// back past the cancellation-flag load (sends are idempotency-destroying,
// so the checkpoint sits just after the previous send) and re-executes
// the check — now observing the cancellation and exiting the loop.
func init() {
	registerCorpus(&Bug{
		Name:      "LGResults",
		AppType:   "Graph workflow engine",
		RootCause: "deadlock",
		Symptom:   mir.FailHang,
		FixFunc:   "lgr_worker",
		FixOp:     mir.OpChSend,
		FixNth:    0,
		build:     buildLGResults,
	})
}

func buildLGResults(cfg Config) *mir.Module {
	b := mir.NewBuilder("LGResults")
	// A channel global's initial value is its capacity. The buggy build
	// bounds the channel below the worker's send count; the fixed build
	// sizes it so every send completes without a consumer.
	capacity := mir.Word(1)
	if !cfg.ForceBug {
		capacity = 8
	}
	results := b.Global("results", capacity)
	cancel := b.Global("ctx_cancel", 0)
	cmtx := b.Global("cancel_mtx", 0)

	// Worker: emit up to 4 node results unless cancelled.
	w := b.Func("lgr_worker")
	chp := w.AddrG("chp", results)
	w.Const("i", 0)
	loop := w.Label("sendloop")
	if cfg.ForceBug {
		// The bug: the cancellation flag is read with no synchronization.
		w.LoadG("c", cancel)
	} else {
		w.LockG(cmtx)
		w.LoadG("c", cancel)
		w.UnlockG(cmtx)
	}
	done := w.NewBlock("wdone")
	send := w.NewBlock("wsend")
	w.Br(w.R("c"), done, send)
	w.SetBlock(send)
	if cfg.ForceBug {
		// Widen the check-to-send window so the collector's cancellation
		// lands between them (§5 forcing methodology).
		w.Sleep(mir.Imm(40))
	}
	w.ChSend(chp, w.R("i"))
	w.Bin("i", mir.BinAdd, w.R("i"), mir.Imm(1))
	k := w.Bin("k", mir.BinLt, w.R("i"), mir.Imm(4))
	w.Br(k, loop, done)
	w.SetBlock(done)
	w.Ret(mir.None)

	// Collector: take the first result, treat it as the error path, stop
	// draining and cancel the workflow.
	c := b.Func("lgr_collect")
	chp2 := c.AddrG("chp", results)
	c.ChRecv("v", chp2)
	if cfg.ForceBug {
		// Hold the cancellation long enough for the worker to commit to
		// another send against the full channel.
		c.Sleep(mir.Imm(300))
		c.StoreG(cancel, mir.Imm(1))
	} else {
		c.LockG(cmtx)
		c.StoreG(cancel, mir.Imm(1))
		c.UnlockG(cmtx)
	}
	c.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "lgr_worker")
	t2 := m.Spawn("t2", "lgr_collect")
	m.Join(t1)
	m.Join(t2)
	out := m.LoadG("out", cancel)
	m.Output("cancelled", out)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// LGFrontier — frontier notification/heap desynchronization (langgraph-go
// BUG-003).
//
// The scheduler kept ready work in two places: a priority heap and a
// channel used to wake the dispatcher. The buggy enqueue notified the
// channel before publishing the item to the heap, so a woken dispatcher
// could pop an empty/stale frontier — an ordering violation observed as
// items dequeued out of OrderKey order.
//
// The shipped fix made the channel notification-only and strictly
// push-then-notify, with the heap as the single source of truth; the
// clean variant models that ordering. The model collapses the heap to
// one slot and the ordering oracle to an assert that a notification
// never observes an empty frontier.
//
// Recovery: the dispatcher's failed assert rolls back to the checkpoint
// after its chrecv (a receive destroys idempotency) and re-reads the
// frontier slot, which by then holds the published item.
func init() {
	registerCorpus(&Bug{
		Name:      "LGFrontier",
		AppType:   "Graph workflow engine",
		RootCause: "O Vio.",
		Symptom:   mir.FailAssert,
		FixFunc:   "lgf_consume",
		FixOp:     mir.OpAssert,
		FixNth:    0,
		build:     buildLGFrontier,
	})
}

func buildLGFrontier(cfg Config) *mir.Module {
	b := mir.NewBuilder("LGFrontier")
	note := b.Global("frontier_note", 2) // notification channel, cap 2
	frontier := b.Global("frontier", 0)  // the heap's top slot; 0 = empty

	p := b.Func("lgf_produce")
	np := p.AddrG("np", note)
	if cfg.ForceBug {
		// The bug: notify first, publish to the heap second.
		p.ChSend(np, mir.Imm(1))
		p.Sleep(mir.Imm(60))
		p.StoreG(frontier, mir.Imm(7))
	} else {
		// The fix: heap push strictly before the notification.
		p.StoreG(frontier, mir.Imm(7))
		p.ChSend(np, mir.Imm(1))
	}
	p.Ret(mir.None)

	c := b.Func("lgf_consume")
	np2 := c.AddrG("np", note)
	c.ChRecv("n", np2)
	item := c.LoadG("item", frontier)
	c.Assert(item, "frontier: notification delivered before heap push")
	c.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "lgf_produce")
	t2 := m.Spawn("t2", "lgf_consume")
	m.Join(t1)
	m.Join(t2)
	out := m.LoadG("out", frontier)
	m.Output("frontier", out)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}

// LGCompletion — completion-detection race (langgraph-go BUG-004).
//
// With workers completing at different rates, the engine's completion
// detector could fire before the final work item's result was published:
// the worker signalled "done" on the completion condvar and only then
// wrote its result, so the monitor woke, declared the workflow complete
// and read a missing result.
//
// The condvar protocol itself is textbook-correct in both variants
// (flag and signal under one mutex, wait re-checked in a loop), so the
// model isolates the one shipped defect: publication ordered after the
// completion signal. The fix publishes the result before signalling.
//
// Recovery: the monitor's failed assert rolls back to the checkpoint
// after its mutex release and re-reads the result slot until the
// worker's late write lands.
func init() {
	registerCorpus(&Bug{
		Name:      "LGCompletion",
		AppType:   "Graph workflow engine",
		RootCause: "O Vio.",
		Symptom:   mir.FailAssert,
		FixFunc:   "lgc_monitor",
		FixOp:     mir.OpAssert,
		FixNth:    0,
		build:     buildLGCompletion,
	})
}

func buildLGCompletion(cfg Config) *mir.Module {
	b := mir.NewBuilder("LGCompletion")
	done := b.Global("wf_done", 0)
	result := b.Global("wf_result", 0)
	cv := b.Global("wf_cv", 0)
	mtx := b.Global("wf_mtx", 0)

	w := b.Func("lgc_worker")
	if !cfg.ForceBug {
		// The fix: publish the result before announcing completion.
		w.StoreG(result, mir.Imm(42))
	}
	mp := w.AddrG("mp", mtx)
	cp := w.AddrG("cp", cv)
	w.Lock(mp)
	w.StoreG(done, mir.Imm(1))
	w.Signal(cp)
	w.Unlock(mp)
	if cfg.ForceBug {
		// The bug: the completion signal is already out; the result lands
		// a beat later.
		w.Sleep(mir.Imm(60))
		w.StoreG(result, mir.Imm(42))
	}
	w.Ret(mir.None)

	mo := b.Func("lgc_monitor")
	mp2 := mo.AddrG("mp", mtx)
	cp2 := mo.AddrG("cp", cv)
	mo.Lock(mp2)
	loop := mo.Label("waitloop")
	d := mo.LoadG("d", done)
	fin := mo.NewBlock("finished")
	wait := mo.NewBlock("waitarm")
	mo.Br(d, fin, wait)
	mo.SetBlock(wait)
	mo.Wait(cp2, mp2)
	mo.Jmp(loop)
	mo.SetBlock(fin)
	mo.Unlock(mp2)
	r := mo.LoadG("r", result)
	mo.Assert(r, "completion: workflow declared done before final result")
	mo.Ret(mir.None)

	m := b.Func("main")
	t1 := m.Spawn("t1", "lgc_worker")
	t2 := m.Spawn("t2", "lgc_monitor")
	m.Join(t1)
	m.Join(t2)
	out := m.LoadG("out", result)
	m.Output("result", out)
	m.Ret(mir.Imm(0))
	return b.MustModule()
}
