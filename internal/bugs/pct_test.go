package bugs

import (
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

// An UNFORCED check-then-use race (no injected sleeps): whether it
// manifests depends entirely on the scheduler landing the nulling write
// inside the two-instruction window.
const unforcedRace = `
global ptr = 0
func initp() {
entry:
  %h = alloc 2
  store %h, 7
  storeg @ptr, %h
  ret
}
func user() {
entry:
  %p1 = loadg @ptr
  br %p1, use, out
use:
  %p2 = loadg @ptr
  %v = load %p2
  storeg @ptr, %p2
  jmp out
out:
  ret
}
func nuller() {
entry:
  storeg @ptr, 0
  %i = const 0
  jmp work
work:
  %i2 = add %i, 1
  %i = add %i2, 0
  %c = lt %i, 25
  br %c, work, reinit
reinit:
  %h2 = alloc 2
  store %h2, 9
  storeg @ptr, %h2
  ret
}
func main() {
entry:
  call initp()
  %a = spawn user()
  %b = spawn nuller()
  join %a
  join %b
  ret 0
}
`

// PCT-style priority scheduling must expose the race within a modest seed
// budget, and ConAir-hardened code must survive every one of those
// adversarial schedules.
func TestPCTFindsUnforcedRaceAndHardenedSurvivesIt(t *testing.T) {
	m := mir.MustParse(unforcedRace)

	found := 0
	for seed := int64(0); seed < 200; seed++ {
		r := interp.RunModule(m, interp.Config{
			Sched: sched.NewPCT(seed, 3, 64), MaxSteps: 100_000,
		})
		if !r.Completed {
			if r.Failure.Kind != mir.FailSegfault {
				t.Fatalf("seed %d: unexpected failure %v", seed, r.Failure)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("PCT never exposed the race; the bug-finding scheduler is broken")
	}
	t.Logf("PCT exposed the race in %d/200 seeds", found)

	h, err := core.Harden(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 200; seed++ {
		r := interp.RunModule(h.Module, interp.Config{
			Sched: sched.NewPCT(seed, 3, 64), MaxSteps: 1_000_000,
		})
		if !r.Completed {
			t.Fatalf("seed %d: hardened program failed under adversarial schedule: %v",
				seed, r.Failure)
		}
	}
}
