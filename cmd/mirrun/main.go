// Command mirrun executes a MIR program under the deterministic
// multi-threaded interpreter.
//
// Usage:
//
//	mirrun [-seed N] [-sched random|rr] [-quantum N] [-max-steps N]
//	       [-stats] [-trace] [-trace-json out.json] [-sanitize] prog.mir
//
// The exit status is the program's exit code on completion, or 1 on a
// detected failure (which is printed to stderr). With -sanitize the run
// is watched by the dynamic race/deadlock sanitizer; reports go to
// stderr and force exit status 1 even when the program itself succeeds.
package main

import (
	"flag"
	"fmt"
	"os"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 1, "scheduler seed")
	schedName := flag.String("sched", "random", "scheduler: random or rr")
	quantum := flag.Int64("quantum", 1, "round-robin quantum (with -sched rr)")
	maxSteps := flag.Int64("max-steps", 0, "step limit (0 = default)")
	stats := flag.Bool("stats", false, "print run statistics")
	trace := flag.Bool("trace", false, "trace every executed instruction to stderr (slow)")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace_event JSON file of the run")
	sanitize := flag.Bool("sanitize", false, "attach the dynamic race/deadlock sanitizer")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mirrun [flags] prog.mir")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := mir.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if m.Main() < 0 {
		fatal(fmt.Errorf("%s: no main function", flag.Arg(0)))
	}

	var s sched.Scheduler
	switch *schedName {
	case "random":
		s = sched.NewRandom(*seed)
	case "rr":
		s = sched.NewRoundRobin(*quantum, *seed)
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *schedName))
	}

	cfg := interp.Config{Sched: s, MaxSteps: *maxSteps, CollectOutput: true}
	if *trace {
		cfg.Trace = os.Stderr
	}
	var sink *obs.Tracer
	if *traceJSON != "" {
		sink = obs.NewTracer(obs.DefaultTracerCap)
		cfg.Sink = sink
	}
	var san *sanitizer.Sanitizer
	if *sanitize {
		san = sanitizer.New(m)
		cfg.Sanitizer = san
	}
	r := interp.RunModule(m, cfg)
	if sink != nil {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, sink.Events()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if d := sink.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mirrun: trace ring dropped %d early events\n", d)
		}
	}
	for _, o := range r.Output {
		fmt.Printf("%s: %d\n", o.Text, o.Value)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps=%d threads=%d checkpoints=%d rollbacks=%d\n",
			r.Stats.Steps, r.Stats.ThreadsSpawned, r.Stats.Checkpoints, r.Stats.Rollbacks)
		for _, e := range r.RecoveredEpisodes() {
			fmt.Fprintf(os.Stderr, "recovered site %d on thread %d: %d retries, %d steps\n",
				e.Site, e.Thread, e.Retries, e.Duration())
		}
	}
	sanFailed := false
	if san != nil {
		for _, rep := range san.Reports() {
			fmt.Fprintln(os.Stderr, "mirrun: sanitizer:", rep)
			sanFailed = true
		}
		if n := san.Truncated(); n > 0 {
			fmt.Fprintf(os.Stderr, "mirrun: sanitizer: %d further reports truncated\n", n)
		}
	}
	if r.Failure != nil {
		fmt.Fprintln(os.Stderr, r.Failure.Error())
		os.Exit(1)
	}
	if sanFailed {
		os.Exit(1)
	}
	os.Exit(int(r.ExitCode & 0x7f))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirrun:", err)
	os.Exit(2)
}
