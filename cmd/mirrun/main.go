// Command mirrun executes a MIR program under the deterministic
// multi-threaded interpreter.
//
// Usage:
//
//	mirrun [-seed N] [-sched random|rr] [-quantum N] [-max-steps N]
//	       [-stats] [-trace] [-trace-json out.json] [-sanitize]
//	       [-record out.cnr] prog.mir
//	mirrun -replay rec.cnr [flags] [prog.mir]
//
// The exit status is the program's exit code on completion, or 1 on a
// detected failure (which is printed to stderr). With -sanitize the run
// is watched by the dynamic race/deadlock sanitizer; reports go to
// stderr and force exit status 1 even when the program itself succeeds.
//
// -record captures the run's scheduler decision stream as a replayable
// artifact; -replay reproduces such an artifact bit-identically (the
// program comes from the artifact itself unless a prog.mir is given) and
// warns on any divergence from the recorded fingerprint.
//
// -serve ADDR exposes the live telemetry plane (/metrics, /runs,
// /events, /healthz, /debug/pprof/). The run lands in the run registry
// with its schedule recording — live runs are armed with the always-on
// flight recorder, so a failure is downloadable as a replayable .cnr at
// /runs/1/recording even without -record — and the server keeps serving
// after the program finishes until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/runner"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 1, "scheduler seed")
	schedName := flag.String("sched", "random", "scheduler: random or rr")
	quantum := flag.Int64("quantum", 1, "round-robin quantum (with -sched rr)")
	maxSteps := flag.Int64("max-steps", 0, "step limit (0 = default)")
	stats := flag.Bool("stats", false, "print run statistics")
	trace := flag.Bool("trace", false, "trace every executed instruction to stderr (slow)")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace_event JSON file of the run")
	sanitize := flag.Bool("sanitize", false, "attach the dynamic race/deadlock sanitizer")
	record := flag.String("record", "", "write a replayable schedule recording (.cnr) of the run")
	replayPath := flag.String("replay", "", "replay a schedule recording (.cnr) instead of running live")
	serveAddr := flag.String("serve", "", "serve live telemetry on host:port (keeps serving after the run completes; ^C to exit)")
	flag.Parse()

	if *serveAddr != "" {
		startTelemetry(*serveAddr)
	}

	var (
		m   *mir.Module
		rec *replay.Recording
		err error
	)
	switch {
	case *replayPath != "":
		if rec, err = replay.ReadFile(*replayPath); err != nil {
			fatal(err)
		}
		if flag.NArg() > 1 {
			fatal(fmt.Errorf("-replay takes at most one prog.mir argument"))
		}
		if flag.NArg() == 1 {
			if m = loadModule(flag.Arg(0)); m != nil {
				if err := rec.CheckModule(m); err != nil {
					fatal(err)
				}
			}
		} else if m, err = rec.Module(); err != nil {
			fatal(err)
		}
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: mirrun [flags] prog.mir")
		flag.PrintDefaults()
		os.Exit(2)
	default:
		m = loadModule(flag.Arg(0))
	}
	if m.Main() < 0 {
		fatal(fmt.Errorf("%s: no main function", m.Name))
	}

	var (
		s  sched.Scheduler
		sr *sched.SegmentReplay
	)
	if rec != nil {
		sr = sched.NewSegmentReplay(rec.Segments, rec.Intns)
		s = sr
	} else {
		switch *schedName {
		case "random":
			s = sched.NewRandom(*seed)
		case "rr":
			s = sched.NewRoundRobin(*quantum, *seed)
		default:
			fatal(fmt.Errorf("unknown scheduler %q", *schedName))
		}
	}

	cfg := interp.Config{Sched: s, MaxSteps: *maxSteps, CollectOutput: true}
	if rec != nil {
		// Replay under the recorded knobs; CollectOutput stays on (it is
		// observation-only and lets the replay print the program's output).
		cfg.MaxSteps = rec.MaxSteps
		cfg.MaxThreads = rec.MaxThreads
		cfg.NoDeadlockCycles = rec.NoDeadlockCycles
	}
	var finish func(*interp.Result) *replay.Recording
	if *record != "" {
		if rec != nil {
			fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
		}
		cfg, finish = replay.Capture(m, cfg, replay.Meta{Seed: *seed, Label: "mirrun"})
	}
	// Under -serve a live run without an explicit recording is armed with
	// the always-on flight recorder, so a failure still yields a
	// replayable artifact at /runs/1/recording.
	var flight *replay.FlightCapture
	if telemetry != nil && finish == nil && rec == nil {
		cfg, flight = replay.CaptureFlight(m, cfg, replay.Meta{Seed: *seed, Label: m.Name}, runner.DefaultFlightLimit)
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	var sink *obs.Tracer
	if *traceJSON != "" {
		sink = obs.NewTracer(obs.DefaultTracerCap)
		cfg.Sink = sink
	}
	var san *sanitizer.Sanitizer
	if *sanitize {
		san = sanitizer.New(m)
		cfg.Sanitizer = san
	}
	start := time.Now()
	r := interp.RunModule(m, cfg)
	elapsed := time.Since(start)
	var captured *replay.Recording
	if finish != nil {
		captured = finish(r)
		if err := replay.WriteFile(*record, captured); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mirrun: recorded %d picks, %d switches, outcome %s -> %s\n",
			captured.Picks(), captured.Switches(), captured.Fingerprint.FailureKey(), *record)
	}
	if telemetry != nil {
		regRec, seedVal, schedLabel := captured, *seed, *schedName
		if flight != nil && regRec == nil {
			regRec = flight.Finish(r)
		}
		if rec != nil {
			regRec, seedVal, schedLabel = rec, rec.Seed, rec.SchedName
		}
		registerRun(runner.RunInfo{
			Label: m.Name, Seed: seedVal, Sched: schedLabel,
			Elapsed: elapsed, Result: r, Recording: regRec,
			RecordingTruncated: flight != nil && regRec == nil,
		})
	}
	if sr != nil {
		if d := sr.Diverged(); d > 0 && !rec.Minimized {
			fmt.Fprintf(os.Stderr, "mirrun: replay diverged on %d decisions\n", d)
		} else if got := replay.FingerprintOf(r); got != rec.Fingerprint {
			fmt.Fprintf(os.Stderr, "mirrun: replay fingerprint mismatch (got %s, recorded %s)\n",
				got.FailureKey(), rec.Fingerprint.FailureKey())
		} else if *stats {
			fmt.Fprintln(os.Stderr, "mirrun: replay verified: bit-identical to the recorded run")
		}
	}
	if sink != nil {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, sink.Events()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if d := sink.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mirrun: trace ring dropped %d early events\n", d)
		}
	}
	for _, o := range r.Output {
		fmt.Printf("%s: %d\n", o.Text, o.Value)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps=%d threads=%d checkpoints=%d rollbacks=%d\n",
			r.Stats.Steps, r.Stats.ThreadsSpawned, r.Stats.Checkpoints, r.Stats.Rollbacks)
		for _, e := range r.RecoveredEpisodes() {
			fmt.Fprintf(os.Stderr, "recovered site %d on thread %d: %d retries, %d steps\n",
				e.Site, e.Thread, e.Retries, e.Duration())
		}
	}
	sanFailed := false
	if san != nil {
		for _, rep := range san.Reports() {
			fmt.Fprintln(os.Stderr, "mirrun: sanitizer:", rep)
			sanFailed = true
		}
		if n := san.Truncated(); n > 0 {
			fmt.Fprintf(os.Stderr, "mirrun: sanitizer: %d further reports truncated\n", n)
		}
	}
	code := int(r.ExitCode & 0x7f)
	if r.Failure != nil {
		fmt.Fprintln(os.Stderr, r.Failure.Error())
		code = 1
	} else if sanFailed {
		code = 1
	}
	waitTelemetry()
	os.Exit(code)
}

// loadModule reads and parses a .mir file, exiting on error.
func loadModule(path string) *mir.Module {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	m, err := mir.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirrun:", err)
	os.Exit(2)
}
