package main

// -serve wiring: mirrun can expose the live telemetry plane for its one
// run. The run lands in the server's run registry (with its schedule
// recording when one exists — explicit -record, replayed artifact, or the
// always-on flight capture armed automatically under -serve), and the
// server keeps serving after the program finishes until ^C.

import (
	"fmt"
	"os"
	"os/signal"

	"conair/internal/interp"
	"conair/internal/obs"
	"conair/internal/obs/serve"
	"conair/internal/replay"
	"conair/internal/runner"
)

// telemetry is the live server when -serve is set (nil otherwise);
// telemetryHook is its run-registry feed.
var (
	telemetry     *serve.Server
	telemetryHook runner.RunHook
)

// startTelemetry brings up the live endpoint and routes the interpreter
// and replay metric streams into its registry.
func startTelemetry(addr string) {
	reg := obs.NewRegistry()
	interp.SetMetricsRegistry(reg)
	replay.SetMetricsRegistry(reg)
	telemetry = serve.New(reg)
	telemetryHook = telemetry.Hook()
	bound, err := telemetry.Start(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mirrun: telemetry serving on http://%s (/metrics /runs /events /healthz /debug/pprof/)\n", bound)
}

// registerRun feeds the completed run into the telemetry run registry; a
// no-op when -serve is off.
func registerRun(info runner.RunInfo) {
	if telemetryHook != nil {
		telemetryHook(info)
	}
}

// waitTelemetry keeps the server alive after the run completes until
// SIGINT, then shuts it down. A no-op when -serve is off.
func waitTelemetry() {
	if telemetry == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mirrun: run done, telemetry still serving; ^C to exit")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	telemetry.Close()
	telemetry = nil
}
