package main

import (
	"fmt"
	"os"
	"time"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/obs"
	"conair/internal/runner"
	"conair/internal/sched"
)

// traceOpts configures a -trace replay.
type traceOpts struct {
	bug      string // benchmark bug name (bugs.ByName)
	seed     int64  // scheduler seed
	mode     string // survival or fix hardening
	clean    bool   // replay the clean full workload instead of forced-light
	out      string // Chrome trace_event JSON path
	jsonl    string // optional raw JSONL event path
	bufCap   int    // tracer ring capacity
	maxSteps int64
	quiet    bool
}

// runTrace replays one (bug, seed) pair with the trace sink attached,
// writes the Chrome trace (and optionally the raw JSONL events), and
// prints the reconstructed recovery-episode timeline. The replay is
// deterministic: the same bug, mode and seed always produce the same
// trace, byte for byte.
func runTrace(o traceOpts) error {
	b := bugs.ByName(o.bug)
	if b == nil {
		names := ""
		for _, x := range bugs.All() {
			names += " " + x.Name
		}
		return fmt.Errorf("unknown bug %q (have:%s)", o.bug, names)
	}

	bcfg := bugs.Config{Light: true, ForceBug: true}
	if o.clean {
		bcfg = bugs.Config{}
	}
	prog := b.Program(bcfg)

	opts := core.DefaultOptions()
	switch o.mode {
	case "survival":
	case "fix":
		pos, err := b.FixSite(prog)
		if err != nil {
			return err
		}
		opts = core.FixOptions(pos)
	default:
		return fmt.Errorf("unknown mode %q (want survival or fix)", o.mode)
	}
	h, err := core.Harden(prog, opts)
	if err != nil {
		return err
	}

	tr := obs.NewTracer(o.bufCap)
	cfg := interp.Config{
		Sched:    sched.NewRandom(o.seed),
		MaxSteps: o.maxSteps,
		Sink:     tr,
	}
	start := time.Now()
	r := interp.RunModule(h.Module, cfg)
	registerRun(runner.RunInfo{
		Label: b.Name + "-trace", Seed: o.seed, Sched: "random",
		Elapsed: time.Since(start), Result: r,
	})

	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr.Events()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if o.jsonl != "" {
		f, err := os.Create(o.jsonl)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, tr.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if o.quiet {
		return nil
	}
	fmt.Printf("replayed %s (%s mode, seed %d): %d steps, completed=%v\n",
		b.Name, o.mode, o.seed, r.Stats.Steps, r.Completed)
	if r.Failure != nil {
		fmt.Printf("failure: %s at step %d\n", r.Failure, r.Failure.Step)
	}
	fmt.Printf("trace: %d events recorded, %d in ring, %d dropped -> %s\n",
		tr.Recorded(), len(tr.Events()), tr.Dropped(), o.out)
	fmt.Printf("stats: %d checkpoints, %d rollbacks, %d episodes\n",
		r.Stats.Checkpoints, r.Stats.Rollbacks, len(r.Stats.Episodes))
	fmt.Println()
	obs.Summarize(tr.Events()).WriteTimeline(os.Stdout)
	return nil
}
