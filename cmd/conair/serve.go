package main

// -serve wiring: every conair mode can expose the live telemetry plane.
// The one-shot modes (record, replay, minimize, trace, sanitize) register
// their runs in the server's run registry and then keep serving until ^C,
// so a finished command can still be scraped, profiled, and post-mortemed:
//
//	conair -serve :9090 -sanitize prog.mir
//	curl localhost:9090/runs              # every schedule searched
//	curl localhost:9090/runs/3/recording  # replayable .cnr of a failure
//
// Sanitize runs are armed with the always-on flight recorder, so the
// schedule that triggered a report arrives as a downloadable artifact
// even though -record was never passed.

import (
	"fmt"
	"os"
	"os/signal"

	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/obs/serve"
	"conair/internal/replay"
	"conair/internal/runner"
)

// telemetry is the live server when -serve is set (nil otherwise);
// telemetryHook is its run-registry feed.
var (
	telemetry     *serve.Server
	telemetryHook runner.RunHook
)

// startTelemetry brings up the live endpoint and routes the interpreter
// and replay metric streams into its registry, so even one-shot CLI modes
// expose a real /metrics scrape.
func startTelemetry(addr string) {
	reg := obs.NewRegistry()
	interp.SetMetricsRegistry(reg)
	replay.SetMetricsRegistry(reg)
	telemetry = serve.New(reg)
	telemetryHook = telemetry.Hook()
	bound, err := telemetry.Start(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "conair: telemetry serving on http://%s (/metrics /runs /events /healthz /debug/pprof/)\n", bound)
}

// registerRun feeds one completed run into the telemetry run registry; a
// no-op when -serve is off.
func registerRun(info runner.RunInfo) {
	if telemetryHook != nil {
		telemetryHook(info)
	}
}

// flightConfig arms cfg with the always-on bounded flight recorder when
// the telemetry server is up, so any failing run yields a replayable
// artifact at /runs/{id}/recording without -record. The returned capture
// is nil when -serve is off.
func flightConfig(mod *mir.Module, cfg interp.Config, meta replay.Meta) (interp.Config, *replay.FlightCapture) {
	if telemetry == nil {
		return cfg, nil
	}
	return replay.CaptureFlight(mod, cfg, meta, runner.DefaultFlightLimit)
}

// waitTelemetry keeps the server alive after the command's work completes
// until SIGINT, then shuts it down. A no-op when -serve is off.
func waitTelemetry() {
	if telemetry == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "conair: work done, telemetry still serving; ^C to exit")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	telemetry.Close()
	telemetry = nil
}
