// Command conair hardens a MIR program with ConAir's rollback-recovery
// transformation and writes the transformed program.
//
// Usage:
//
//	conair [-mode survival|fix] [-site func:op:nth] [-o out.mir]
//	       [-no-opt] [-no-interproc] [-policy extended|basic]
//	       [-max-retry N] [-lock-timeout N] prog.mir
//
// In fix mode, -site names the failing statement as function:opcode:index,
// e.g. -site "reporter:assert:0" for the first assert in reporter, or
// "worker:load:2" for its third pointer dereference.
//
// Trace mode replays one benchmark (bug, seed) pair deterministically with
// the observability sink attached, writes a Chrome trace_event JSON file
// (loadable in chrome://tracing or https://ui.perfetto.dev), and prints the
// recovery-episode timeline:
//
//	conair -trace out.json -bug MySQL1 [-seed 7] [-mode survival|fix]
//	       [-clean] [-trace-jsonl events.jsonl] [-trace-buf N]
//
// Sanitize mode searches adversarial PCT schedules with the dynamic
// race/deadlock sanitizer attached and prints every report — the
// detect-before-recover front-end to the hardening transformation:
//
//	conair -sanitize [-sanitize-budget N] [-max-steps N] prog.mir
//
// It exits 1 when the sanitizer reports anything, 0 when the whole
// schedule budget stays clean.
//
// With -serve ADDR every mode also exposes the live telemetry plane
// (/metrics, /runs, /events, /healthz, /debug/pprof/): completed runs
// land in the run registry, sanitize schedules carry always-on flight
// recordings (a failing schedule is downloadable as a replayable .cnr at
// /runs/{id}/recording), and the server keeps serving after the work
// completes until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"conair/internal/analysis"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/replay"
	"conair/internal/runner"
	"conair/internal/sanitizer"
	"conair/internal/sched"
)

func main() {
	mode := flag.String("mode", "survival", "survival or fix")
	site := flag.String("site", "", "fix-mode failure site: func:op:nth (op: assert, output, load, store, lock)")
	out := flag.String("o", "", "output file (default: stdout)")
	noOpt := flag.Bool("no-opt", false, "disable the unrecoverable-site pruning (paper §4.2)")
	noInterproc := flag.Bool("no-interproc", false, "disable inter-procedural recovery (paper §4.3)")
	policy := flag.String("policy", "extended", "region policy: extended (§4.1) or basic (§3.2)")
	maxRetry := flag.Int64("max-retry", 0, "recovery retry bound (default one million)")
	lockTimeout := flag.Int("lock-timeout", 0, "timed-lock timeout in steps")
	guardOutputs := flag.Bool("guard-outputs", false, "auto-insert output-correctness oracles (paper §3.4)")
	pruneSafe := flag.Bool("prune-safe-sites", false, "drop provably-safe dereference sites (paper §3.4)")
	quiet := flag.Bool("q", false, "suppress the report")
	trace := flag.String("trace", "", "trace mode: write a Chrome trace_event JSON file and exit")
	bug := flag.String("bug", "", "trace mode: benchmark bug to replay (e.g. MySQL1)")
	seed := flag.Int64("seed", 7, "trace mode: scheduler seed")
	clean := flag.Bool("clean", false, "trace mode: replay the clean full workload instead of the forced-failure light one")
	traceJSONL := flag.String("trace-jsonl", "", "trace mode: also write raw events as JSONL")
	traceBuf := flag.Int("trace-buf", 1<<20, "trace mode: event ring-buffer capacity")
	traceMaxSteps := flag.Int64("trace-max-steps", 200_000_000, "trace mode: interpreter step budget")
	sanitize := flag.Bool("sanitize", false, "sanitize mode: hunt for races/deadlocks under PCT schedules instead of hardening")
	sanitizeBudget := flag.Int64("sanitize-budget", 20, "sanitize mode: number of PCT schedule seeds to search")
	sanitizeMaxSteps := flag.Int64("max-steps", 20_000_000, "sanitize mode: interpreter step budget per schedule")
	record := flag.String("record", "", "record mode: write a replayable schedule recording (.cnr) of one run of -bug or prog.mir")
	recordSched := flag.String("record-sched", "random", "record mode: scheduler (random or pct)")
	recordSearch := flag.Int64("record-search", 1, "record mode: try up to N seeds from -seed, keep the first failing run")
	recordHardened := flag.Bool("record-hardened", false, "record mode: record the survival-hardened program")
	recordMaxSteps := flag.Int64("rec-max-steps", 200_000_000, "record mode: interpreter step budget")
	replayPath := flag.String("replay", "", "replay mode: reproduce a schedule recording (.cnr) and verify bit-identity")
	minimize := flag.String("minimize", "", "minimize mode: ddmin-shrink a failing recording (.cnr) to a minimal schedule")
	probeBudget := flag.Int("probe-budget", 0, "minimize mode: probe replay budget (0 = default)")
	minTrace := flag.String("min-trace", "", "replay/minimize mode: write a Chrome trace of the (minimized) schedule")
	serveAddr := flag.String("serve", "", "serve live telemetry on host:port (keeps serving after the work completes; ^C to exit)")
	flag.Parse()

	if *serveAddr != "" {
		startTelemetry(*serveAddr)
		defer waitTelemetry()
	}

	if *record != "" || *replayPath != "" || *minimize != "" {
		modFile := ""
		if flag.NArg() == 1 {
			modFile = flag.Arg(0)
		} else if flag.NArg() > 1 {
			fatal(fmt.Errorf("record/replay/minimize modes take at most one prog.mir argument"))
		}
		var err error
		switch {
		case *record != "":
			if *bug == "" && modFile == "" {
				fatal(fmt.Errorf("-record needs -bug NAME or a prog.mir argument"))
			}
			err = runRecord(recordOpts{
				out: *record, bug: *bug, file: modFile, hardened: *recordHardened,
				schedN: *recordSched, seed: *seed, search: *recordSearch,
				maxSteps: *recordMaxSteps, quiet: *quiet,
			})
		case *replayPath != "":
			err = runReplay(*replayPath, modFile, *minTrace, *quiet)
		default:
			err = runMinimize(*minimize, modFile, *out, *minTrace, *probeBudget, *quiet)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	if *trace != "" || *bug != "" {
		if *trace == "" || *bug == "" {
			fatal(fmt.Errorf("trace mode needs both -trace out.json and -bug NAME"))
		}
		// The hardening default is survival; fix mode replays the
		// bug-specific hardened variant the evaluation tables use.
		if err := runTrace(traceOpts{
			bug: *bug, seed: *seed, mode: *mode, clean: *clean,
			out: *trace, jsonl: *traceJSONL, bufCap: *traceBuf,
			maxSteps: *traceMaxSteps, quiet: *quiet,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: conair [flags] prog.mir")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := mir.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *sanitize {
		if runSanitize(m, *sanitizeBudget, *sanitizeMaxSteps, *quiet) {
			waitTelemetry()
			os.Exit(1)
		}
		return
	}

	opts := core.DefaultOptions()
	opts.Optimize = !*noOpt
	opts.Interproc = !*noInterproc
	switch *policy {
	case "extended":
		opts.Policy = mir.PolicyExtended
	case "basic":
		opts.Policy = mir.PolicyBasic
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	opts.Transform.MaxRetry = *maxRetry
	opts.Transform.LockTimeout = *lockTimeout
	opts.GuardOutputs = *guardOutputs
	opts.PruneSafeSites = *pruneSafe

	switch *mode {
	case "survival":
	case "fix":
		pos, err := parseSite(m, *site)
		if err != nil {
			fatal(err)
		}
		opts.Mode = analysis.Fix
		opts.FixSite = pos
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	h, err := core.Harden(m, opts)
	if err != nil {
		fatal(err)
	}

	text := mir.Print(h.Module)
	if *out == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}

	if !*quiet {
		r := &h.Report
		fmt.Fprintf(os.Stderr,
			"conair: %s mode, %d failure sites (%d assert, %d wrong-output, %d segfault, %d deadlock)\n",
			r.Mode, r.Census.Total(), r.Census.Assert, r.Census.WrongOutput,
			r.Census.Segfault, r.Census.Deadlock)
		fmt.Fprintf(os.Stderr,
			"conair: %d reexecution points planted, %d sites with recovery, %d pruned, %d inter-procedural\n",
			r.StaticReexecPoints, r.RecoverySites, r.PrunedSites, r.InterprocSites)
		fmt.Fprintf(os.Stderr, "conair: analysis %v, transform %v\n",
			r.AnalysisTime, r.TransformTime)
	}
}

// runSanitize searches PCT schedule seeds 0..budget-1 with the sanitizer
// attached and prints every distinct report. Reports whether anything was
// found (the caller exits 1). With -serve, each schedule runs under the
// flight recorder and lands in the run registry, so the schedule behind a
// report is downloadable as a replayable .cnr.
func runSanitize(m *mir.Module, budget, maxSteps int64, quiet bool) bool {
	seen := map[string]bool{}
	runs := int64(0)
	san := sanitizer.New(m)
	for seed := int64(0); seed < budget; seed++ {
		san.Reset(m)
		cfg := interp.Config{
			Sched:     sched.NewPCT(seed, 3, 64),
			MaxSteps:  maxSteps,
			Sanitizer: san,
		}
		cfg, flight := flightConfig(m, cfg, replay.Meta{Seed: seed, Label: m.Name + "-sanitize"})
		start := time.Now()
		r := interp.RunModule(m, cfg)
		var rec *replay.Recording
		if flight != nil {
			rec = flight.Finish(r)
		}
		registerRun(runner.RunInfo{
			Label: m.Name + "-sanitize", Seed: seed, Sched: "pct",
			Elapsed: time.Since(start), Result: r,
			Recording:          rec,
			RecordingTruncated: flight != nil && rec == nil,
		})
		runs++
		for _, rep := range san.Reports() {
			s := rep.String()
			if !seen[s] {
				seen[s] = true
				fmt.Printf("schedule %d: %s\n", seed, s)
			}
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "conair: sanitize: %d schedules searched, %d distinct reports\n",
			runs, len(seen))
	}
	return len(seen) > 0
}

// parseSite resolves "func:op:nth".
func parseSite(m *mir.Module, s string) (mir.Pos, error) {
	if s == "" {
		return mir.Pos{}, fmt.Errorf("fix mode requires -site func:op:nth")
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return mir.Pos{}, fmt.Errorf("bad -site %q: want func:op:nth", s)
	}
	var op mir.Op
	switch parts[1] {
	case "assert", "oracle":
		op = mir.OpAssert
	case "output":
		op = mir.OpOutput
	case "load":
		op = mir.OpLoad
	case "store":
		op = mir.OpStore
	case "lock":
		op = mir.OpLock
	default:
		return mir.Pos{}, fmt.Errorf("bad -site opcode %q", parts[1])
	}
	nth, err := strconv.Atoi(parts[2])
	if err != nil {
		return mir.Pos{}, fmt.Errorf("bad -site index %q: %v", parts[2], err)
	}
	return analysis.FindSite(m, parts[0], op, nth)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conair:", err)
	os.Exit(2)
}
