package main

import (
	"os"
	"path/filepath"
	"testing"

	"conair/internal/obs"
)

// TestRunTraceRoundTrip drives the full -trace path: replay a small
// bug, then parse and schema-validate both output files.
func TestRunTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "events.jsonl")
	err := runTrace(traceOpts{
		bug: "FFT", seed: 7, mode: "fix",
		out: out, jsonl: jsonl, bufCap: 1 << 20,
		maxSteps: 200_000_000, quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ct, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty")
	}
	if ct.CountName("process_name") != 1 {
		t.Error("missing process_name metadata")
	}

	ef, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	events, err := obs.ReadJSONL(ef)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("jsonl event stream is empty")
	}
}

func TestRunTraceRejectsUnknownBug(t *testing.T) {
	err := runTrace(traceOpts{
		bug: "NoSuchBug", seed: 1, mode: "fix",
		out: filepath.Join(t.TempDir(), "x.json"), bufCap: 16,
	})
	if err == nil {
		t.Fatal("expected an error for an unknown bug")
	}
}
