package main

import (
	"os"
	"testing"

	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/sched"
)

func loadTestdata(t *testing.T, name string) *mir.Module {
	t.Helper()
	src, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseSite(t *testing.T) {
	m := loadTestdata(t, "orderviolation.mir")
	pos, err := parseSite(m, "reader:assert:0")
	if err != nil {
		t.Fatal(err)
	}
	if m.At(pos).Op != mir.OpAssert {
		t.Errorf("resolved %v, not an assert", m.At(pos).Op)
	}
	for _, bad := range []string{
		"", "reader:assert", "reader:frob:0", "reader:assert:x",
		"nosuch:assert:0", "reader:assert:9",
	} {
		if _, err := parseSite(m, bad); err == nil {
			t.Errorf("parseSite(%q) should fail", bad)
		}
	}
	// All opcode spellings resolve.
	for _, s := range []string{"reader:output:0", "main:assert:0"} {
		_, err := parseSite(m, s)
		if s == "main:assert:0" && err == nil {
			t.Errorf("main has no assert; %q should fail", s)
		}
		if s == "reader:output:0" && err != nil {
			t.Errorf("parseSite(%q): %v", s, err)
		}
	}
}

// The testdata programs behave as documented: they fail raw and recover
// after hardening — the CLI round trip in library form.
func TestTestdataPrograms(t *testing.T) {
	cases := []struct {
		file string
		kind mir.FailKind
	}{
		{"orderviolation.mir", mir.FailAssert},
		{"deadlock.mir", mir.FailHang},
	}
	for _, c := range cases {
		m := loadTestdata(t, c.file)
		r := interp.RunModule(m, interp.Config{Sched: sched.NewRandom(1), MaxSteps: 1_000_000})
		if r.Completed || r.Failure.Kind != c.kind {
			t.Fatalf("%s: want %v failure, got %+v", c.file, c.kind, r)
		}
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		hr := interp.RunModule(h.Module, interp.Config{Sched: sched.NewRandom(1), MaxSteps: 5_000_000})
		if !hr.Completed {
			t.Fatalf("%s: hardened run failed: %v", c.file, hr.Failure)
		}
		// The hardened text round-trips through the parser, which is what
		// the -o flag writes.
		if _, err := mir.Parse(mir.Print(h.Module)); err != nil {
			t.Fatalf("%s: hardened module does not reparse: %v", c.file, err)
		}
	}
}
