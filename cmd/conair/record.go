package main

// Record-and-replay forensics modes:
//
//	conair -record out.cnr -bug MySQL1 [-record-hardened] [-seed N]
//	       [-record-search N] [-record-sched random|pct] [-rec-max-steps N]
//	conair -record out.cnr [flags] prog.mir
//	conair -replay rec.cnr [prog.mir] [-min-trace out.json]
//	conair -minimize rec.cnr [-o min.cnr] [-probe-budget N]
//	       [-min-trace out.json]
//
// -record captures one run's scheduler decision stream as a replayable
// artifact (searching seeds until a failing run is found when
// -record-search > 1). -replay reproduces an artifact bit-identically and
// verifies it against the recorded fingerprint. -minimize ddmin-shrinks a
// failing artifact to a minimal schedule — the few context switches that
// actually matter — and can emit a Chrome trace of the minimized run.

import (
	"fmt"
	"os"
	"time"

	"conair/internal/bugs"
	"conair/internal/core"
	"conair/internal/interp"
	"conair/internal/mir"
	"conair/internal/obs"
	"conair/internal/replay"
	"conair/internal/runner"
	"conair/internal/sched"
)

// recordOpts configures a -record capture.
type recordOpts struct {
	out      string // artifact path
	bug      string // benchmark bug name ("" = positional prog.mir)
	file     string // positional .mir path when bug == ""
	hardened bool   // record the survival-hardened program
	schedN   string // random or pct
	seed     int64
	search   int64 // try seeds seed..seed+search-1, keep first failing run
	maxSteps int64
	quiet    bool
}

// recordModule resolves the program a -record run executes.
func recordModule(o recordOpts) (*mir.Module, error) {
	var m *mir.Module
	if o.bug != "" {
		b := bugs.ByName(o.bug)
		if b == nil {
			names := ""
			for _, x := range bugs.All() {
				names += " " + x.Name
			}
			return nil, fmt.Errorf("unknown bug %q (have:%s)", o.bug, names)
		}
		m = b.Program(bugs.Config{Light: true, ForceBug: true})
	} else {
		src, err := os.ReadFile(o.file)
		if err != nil {
			return nil, err
		}
		m, err = mir.Parse(string(src))
		if err != nil {
			return nil, err
		}
	}
	if o.hardened {
		h, err := core.Harden(m, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		m = h.Module
	}
	return m, nil
}

func newSched(name string, seed int64) (sched.Scheduler, error) {
	switch name {
	case "random":
		return sched.NewRandom(seed), nil
	case "pct":
		return sched.NewPCT(seed, 3, 64), nil
	}
	return nil, fmt.Errorf("unknown scheduler %q (want random or pct)", name)
}

// runRecord captures a run and writes the artifact. With search > 1 it
// records seed after seed until one fails, keeping the failing run — the
// common "give me a reproducer" workflow.
func runRecord(o recordOpts) error {
	m, err := recordModule(o)
	if err != nil {
		return err
	}
	if o.search < 1 {
		o.search = 1
	}
	label := o.bug
	if label == "" {
		label = m.Name
	}
	var (
		res *interp.Result
		rec *replay.Recording
	)
	for i := int64(0); i < o.search; i++ {
		seed := o.seed + i
		s, err := newSched(o.schedN, seed)
		if err != nil {
			return err
		}
		cfg := interp.Config{Sched: s, MaxSteps: o.maxSteps}
		start := time.Now()
		res, rec = replay.Record(m, cfg, replay.Meta{Seed: seed, Label: o.bug})
		registerRun(runner.RunInfo{
			Label: label, Seed: seed, Sched: o.schedN,
			Elapsed: time.Since(start), Result: res, Recording: rec,
		})
		if res.Failure != nil {
			break
		}
	}
	if res.Failure == nil && o.search > 1 {
		return fmt.Errorf("no failing run in %d seeds starting at %d; recording the last completed run instead would lie — aborting", o.search, o.seed)
	}
	if err := replay.WriteFile(o.out, rec); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Printf("recorded %s under %s seed %d: %d steps, %d picks, %d switches -> %s (%d bytes)\n",
			rec.ModuleName, rec.SchedName, rec.Seed, rec.Fingerprint.Steps,
			rec.Picks(), rec.Switches(), o.out, len(replay.Encode(rec)))
		fmt.Printf("outcome: %s\n", rec.Fingerprint.FailureKey())
	}
	return nil
}

// loadArtifact reads an artifact and resolves its module, preferring an
// explicit .mir override (hash-checked) over the embedded text.
func loadArtifact(path, modFile string) (*replay.Recording, *mir.Module, error) {
	rec, err := replay.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var m *mir.Module
	if modFile != "" {
		src, err := os.ReadFile(modFile)
		if err != nil {
			return nil, nil, err
		}
		if m, err = mir.Parse(string(src)); err != nil {
			return nil, nil, err
		}
		if err := rec.CheckModule(m); err != nil {
			return nil, nil, err
		}
	} else if m, err = rec.Module(); err != nil {
		return nil, nil, err
	}
	return rec, m, nil
}

// writeTrace replays rec with the trace sink attached and writes a Chrome
// trace of the schedule.
func writeTrace(m *mir.Module, rec *replay.Recording, out string) error {
	tr := obs.NewTracer(obs.DefaultTracerCap)
	replay.Run(m, rec, replay.RunOptions{Sink: tr})
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runReplay reproduces an artifact and verifies bit-identity.
func runReplay(path, modFile, traceOut string, quiet bool) error {
	rec, m, err := loadArtifact(path, modFile)
	if err != nil {
		return err
	}
	start := time.Now()
	r, sr := replay.Run(m, rec, replay.RunOptions{})
	registerRun(runner.RunInfo{
		Label: rec.ModuleName, Seed: rec.Seed, Sched: rec.SchedName,
		Elapsed: time.Since(start), Result: r, Recording: rec,
	})
	if !quiet {
		min := ""
		if rec.Minimized {
			min = " (minimized)"
		}
		fmt.Printf("replayed %s%s: %d steps, %d picks, %d switches\n",
			rec.ModuleName, min, r.Stats.Steps, rec.Picks(), rec.Switches())
		fmt.Printf("outcome: %s\n", replay.FingerprintOf(r).FailureKey())
	}
	if traceOut != "" {
		if err := writeTrace(m, rec, traceOut); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("trace -> %s\n", traceOut)
		}
	}
	// A minimized artifact's stream is edited and leans on the replay
	// scheduler's deterministic fallbacks, so divergences are expected
	// there; raw recordings must replay divergence-free.
	if d := sr.Diverged(); d > 0 && !rec.Minimized {
		return fmt.Errorf("replay diverged on %d decisions", d)
	}
	if got := replay.FingerprintOf(r); got != rec.Fingerprint {
		return fmt.Errorf("fingerprint mismatch:\n got %+v\nwant %+v", got, rec.Fingerprint)
	}
	if !quiet {
		fmt.Println("verified: bit-identical to the recorded run")
	}
	return nil
}

// runMinimize ddmin-shrinks a failing artifact.
func runMinimize(path, modFile, out, traceOut string, budget int, quiet bool) error {
	rec, m, err := loadArtifact(path, modFile)
	if err != nil {
		return err
	}
	min, err := replay.Minimize(m, rec, replay.MinimizeOptions{ProbeBudget: budget})
	if err != nil {
		return err
	}
	if telemetry != nil {
		// One verification replay of the minimized artifact puts it in the
		// run registry, downloadable alongside the original.
		start := time.Now()
		r, _ := replay.Run(m, min.Rec, replay.RunOptions{})
		registerRun(runner.RunInfo{
			Label: min.Rec.ModuleName + "-minimized", Seed: min.Rec.Seed, Sched: min.Rec.SchedName,
			Elapsed: time.Since(start), Result: r, Recording: min.Rec,
		})
	}
	if !quiet {
		fmt.Println(min)
		fmt.Printf("failure: %s\n", min.Rec.Fingerprint.FailureKey())
	}
	if out != "" {
		if err := replay.WriteFile(out, min.Rec); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("minimized artifact -> %s\n", out)
		}
	}
	if traceOut != "" {
		if err := writeTrace(m, min.Rec, traceOut); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("minimized trace -> %s\n", traceOut)
		}
	}
	return nil
}
