package main

import (
	"log/slog"
	"os"
	"sync/atomic"

	"conair/internal/experiments"
	"conair/internal/obs"
	"conair/internal/obs/serve"
	"conair/internal/runner"
)

// logger is the structured stderr logger all bench status output goes
// through (tables still go to stdout, so -json and piped table output are
// unaffected). The handler drops the time attribute: with wall-clock out
// of the line, the emitted keys are deterministic and greppable, and two
// runs differ only in the measured values.
var logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
	ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
		if len(groups) == 0 && a.Key == slog.TimeKey {
			return slog.Attr{}
		}
		return a
	},
}))

// telemetry is the live server when -serve is set; nil otherwise. track()
// publishes section events through it, and the exit path flushes its
// flight recordings.
var telemetry *serve.Server

// startTelemetry brings up the live server on addr, arms the always-on
// flight recorder, and routes every engine job into the server's run
// registry.
func startTelemetry(addr string) {
	telemetry = serve.New(experiments.Registry())
	experiments.SetRunHook(telemetry.Hook())
	experiments.SetFlightLimit(runner.DefaultFlightLimit)
	bound, err := telemetry.Start(addr)
	if err != nil {
		logger.Error("telemetry server failed to start", "addr", addr, "err", err)
		os.Exit(1)
	}
	logger.Info("telemetry serving", "addr", bound.String(),
		"endpoints", "/metrics /runs /events /healthz /debug/pprof/")
}

// finishTelemetry is the -serve exit path: with -serve-wait it keeps the
// server up after the sections complete until SIGINT (so CI and humans
// can scrape a finished sweep), and on interrupt it flushes the retained
// flight recordings of failing runs to flightDir.
func finishTelemetry(wait bool, flightDir string, interrupted <-chan struct{}, stop *atomic.Bool) {
	if telemetry == nil {
		return
	}
	if wait && !stop.Load() {
		logger.Info("serve-wait: sections done, telemetry still serving; ^C to exit")
		<-interrupted
	}
	if stop.Load() && flightDir != "" {
		if err := os.MkdirAll(flightDir, 0o755); err != nil {
			logger.Error("flight flush", "err", err)
		} else {
			paths, err := telemetry.FlushFlight(flightDir)
			if err != nil {
				logger.Error("flight flush", "err", err)
			}
			logger.Info("flight recordings flushed", "count", len(paths), "dir", flightDir)
		}
	}
	telemetry.Close()
}

// runCheckExposition validates a Prometheus text exposition file (the
// -check-exposition mode CI uses on scraped /metrics output) and exits.
func runCheckExposition(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		logger.Error("check-exposition", "err", err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(data); err != nil {
		logger.Error("check-exposition: invalid exposition", "file", path, "err", err)
		os.Exit(1)
	}
	logger.Info("check-exposition: exposition valid", "file", path, "bytes", len(data))
}
