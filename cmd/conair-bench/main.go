// Command conair-bench regenerates the tables and figures of the ConAir
// evaluation (paper §5–§6) from the reconstructed benchmarks and prints
// them next to the paper's published numbers.
//
// Usage:
//
//	conair-bench -all               # everything at paper scale (1000 runs, 20 seeds)
//	conair-bench -all -quick        # fast settings (100 runs, 3 seeds)
//	conair-bench -table 3 -runs 1000
//	conair-bench -figure 4
//	conair-bench -analysis-time
//	conair-bench -all -quick -json > BENCH_0.json
//
// Seeded runs fan out across a worker pool (-workers, default GOMAXPROCS)
// with deterministic results: the same flags produce the same tables at
// any worker count. -json emits a machine-readable document including
// throughput (runs/sec, steps/sec) for perf-trajectory tracking.
//
// Measured "time" is deterministic interpreter steps; the workloads are
// scaled ~10x down from the paper's dynamic volumes (see DESIGN.md), so
// compare shapes and ratios, not absolute values.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"

	"conair/internal/experiments"
	"conair/internal/replay"
	"conair/internal/report"
)

// emit renders a table in the selected format.
var emit = func(t *report.Table) { fmt.Println(t) }

// quick's fast settings (the historical defaults, for development loops).
const (
	quickRuns  = 100
	quickSeeds = 3
	paperRuns  = 1000
	paperSeeds = 20
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-7)")
	figure := flag.Int("figure", 0, "regenerate one figure (2 or 4)")
	analysisTime := flag.Bool("analysis-time", false, "regenerate the §6.4 analysis-time measurements")
	ablation := flag.Bool("ablation", false, "design-choice ablation (region policy, interproc, optimization)")
	runs := flag.Int("runs", paperRuns, "forced-failure runs per mode for Table 3 (paper: 1000)")
	overheadSeeds := flag.Int("overhead-seeds", paperSeeds, "scheduler seeds overhead is averaged over (paper: 20 runs)")
	quick := flag.Bool("quick", false, fmt.Sprintf("fast settings: -runs %d -overhead-seeds %d (unless set explicitly)", quickRuns, quickSeeds))
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel-engine worker count (results are identical at any count)")
	all := flag.Bool("all", false, "regenerate everything")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one JSON document with table data and throughput (runs/sec, steps/sec)")
	progress := flag.Bool("progress", true, "print per-section progress (runs, runs/sec) to stderr")
	metrics := flag.Bool("metrics", false, "dump the full metrics registry to stderr after the run (and into -json output)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (pprof format)")
	recordDir := flag.String("record", "", "write every failing run as a replayable .cnr schedule recording into this directory")
	jobTimeout := flag.Duration("job-timeout", 0, "per-run wall-clock watchdog (0 = off); wedged runs come back as hang failures")
	serveAddr := flag.String("serve", "", "serve live telemetry on this address (/metrics, /runs, /events, /healthz, /debug/pprof/) and arm the always-on flight recorder")
	serveWait := flag.Bool("serve-wait", false, "with -serve: keep the telemetry server up after the sections finish, until SIGINT")
	flightDir := flag.String("flight-dir", "conair-flight", "with -serve: directory flight recordings of failing runs are flushed into on interrupt")
	checkExposition := flag.String("check-exposition", "", "validate a Prometheus text exposition file (e.g. a scraped /metrics) and exit")
	flag.Parse()

	if *checkExposition != "" {
		runCheckExposition(*checkExposition)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *quick {
		// Explicitly-set flags win over -quick's bundle.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["runs"] {
			*runs = quickRuns
		}
		if !set["overhead-seeds"] {
			*overheadSeeds = quickSeeds
		}
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	// The bench is a short-lived batch process on a machine with ample
	// memory: trading heap headroom for fewer GC cycles is a straight win
	// (the sweep allocates heavily in hardening and module cloning).
	debug.SetGCPercent(800)
	experiments.SetWorkers(*workers)
	experiments.SetJobTimeout(*jobTimeout)
	progressOn = *progress

	var recorder *replay.AutoRecorder
	if *recordDir != "" {
		recorder = replay.NewAutoRecorder(*recordDir)
		experiments.SetAutoRecord(recorder)
		defer func() {
			// All recordings are written synchronously by the workers; by the
			// time the sections return (or the drain completes) everything is
			// flushed — this just reports the forensics haul.
			logger.Info("schedule recordings written",
				"count", len(recorder.Written()), "dir", recorder.Dir)
			if err := recorder.Err(); err != nil {
				logger.Error("recording error", "err", err)
			}
		}()
	}

	// Graceful SIGINT: the first ^C drains the worker pool — jobs already
	// running finish (and flush their recordings), queued jobs are skipped,
	// partial tables still print. A second ^C kills the process normally.
	stop := &atomic.Bool{}
	experiments.SetStop(stop)
	interrupted := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		stop.Store(true)
		logger.Warn("interrupt: draining workers; results will be partial (^C again to kill)")
		signal.Stop(sigc)
		close(interrupted)
	}()
	defer func() {
		if stop.Load() {
			logger.Warn("interrupted; results are partial")
		}
	}()
	if *serveAddr != "" {
		startTelemetry(*serveAddr)
		defer finishTelemetry(*serveWait, *flightDir, interrupted, stop)
	}
	// The header records the effective worker count (the -json config block
	// captures the same value), so BENCH_*.json snapshots are attributable.
	logger.Info("start", "workers", *workers,
		"gomaxprocs", runtime.GOMAXPROCS(0), "go", runtime.Version())
	if *csvOut {
		emit = func(t *report.Table) { fmt.Print(t.CSV()) }
	}

	sel := selection{
		table:        *table,
		figure:       *figure,
		analysisTime: *analysisTime,
		ablation:     *ablation,
		all:          *all,
		runs:         *runs,
		seeds:        *overheadSeeds,
		workers:      *workers,
		quick:        *quick,
		metrics:      *metrics,
	}
	if *jsonOut {
		if !runJSON(os.Stdout, sel) {
			usageExit()
		}
		if *metrics {
			dumpMetrics()
		}
		return
	}

	ran := false
	want := sel.want

	if want(1) {
		printTable1()
		ran = true
	}
	if want(2) {
		track("table2", printTable2)
		ran = true
	}
	if want(3) {
		track("table3", func() { printTable3(*runs, *overheadSeeds) })
		ran = true
	}
	if want(4) && *figure != 4 {
		track("table4", printTable4)
		ran = true
	}
	if want(5) {
		track("table5", printTable5)
		ran = true
	}
	if want(6) {
		track("table6", printTable6)
		ran = true
	}
	if want(7) {
		track("table7", printTable7)
		ran = true
	}
	if sel.wantFigure(2) {
		track("figure2", printFigure2)
		ran = true
	}
	if sel.wantFigure(4) {
		track("figure4", printFigure4)
		ran = true
	}
	if *all || *analysisTime {
		track("analysis-times", printAnalysisTimes)
		ran = true
	}
	if *all || *ablation {
		track("ablation", func() { printAblations(min(*runs, 10)) })
		ran = true
	}
	if !ran {
		usageExit()
	}
	if *metrics {
		dumpMetrics()
	}
}

// selection is which sections to regenerate, and at what scale.
type selection struct {
	table, figure          int
	analysisTime, ablation bool
	all                    bool
	runs, seeds            int
	workers                int
	quick                  bool
	metrics                bool
}

func (s selection) want(t int) bool       { return s.all || s.table == t }
func (s selection) wantFigure(f int) bool { return s.all || s.figure == f }
func (s selection) anySelected() bool {
	return s.all || s.table != 0 || s.figure != 0 || s.analysisTime || s.ablation
}

func usageExit() {
	fmt.Fprintln(os.Stderr, "nothing selected; use -all, -table N, -figure N or -analysis-time")
	flag.PrintDefaults()
	os.Exit(2)
}

// printTable1 renders the paper's qualitative technique comparison. The
// rollback-recovery column describes the traditional whole-program
// systems (Rx/ASSURE/Frost); this repository's internal/baseline package
// implements that family so Figure 4 can quantify the row.
func printTable1() {
	t := report.NewTable("Table 1: Concurrency-bug fixing and survival techniques (qualitative)",
		"Property", "Auto. fixing", "Prohibiting interleaving", "Rollback recovery", "ConAir")
	t.Row("Compatibility", "yes", "partial", "partial", "yes")
	t.Row("Correctness", "yes", "yes", "yes", "yes")
	t.Row("Generality", "no", "partial", "yes", "yes")
	t.Row("Performance", "yes", "partial", "partial", "yes")
	emit(t)
	fmt.Println("('partial' marks the paper's *: the properties cannot all hold at once.)")
	fmt.Println()
}

func printTable2() {
	t := report.NewTable("Table 2: Applications and Bugs",
		"App", "Type", "Paper LOC", "MIR instrs", "Failure", "Cause")
	for _, r := range experiments.Table2() {
		t.Row(r.Name, r.AppType, r.PaperLOC, r.MIRInstrs, r.Failure, r.Cause)
	}
	emit(t)
}

func printTable3(runs, overheadSeeds int) {
	t := report.NewTable(
		fmt.Sprintf("Table 3: Overall bug recovery results (%d forced runs/mode; overhead averaged over %d seeds; * = needs output oracle)", runs, overheadSeeds),
		"App", "Recovered(fix)", "Recovered(survival)", "Overhead fix", "Overhead survival", "Paper survival", "Sanitizer")
	for _, r := range experiments.Table3(runs, overheadSeeds) {
		t.Row(r.Name,
			report.Check(r.RecoveredFix, r.Conditional),
			report.Check(r.RecoveredSurvival, r.Conditional),
			fmt.Sprintf("%.3f%%", r.OverheadFixPct),
			fmt.Sprintf("%.3f%%", r.OverheadSurvivalPct),
			fmt.Sprintf("%.1f%%", r.PaperOverheadPct),
			report.VerdictCell(r.Sanitizer))
	}
	emit(t)

	c := report.NewTable(
		fmt.Sprintf("Table 3 (corpus): labelled real-bug models (%d forced runs/mode; fixed twin = modelled upstream fix)", runs),
		"Model", "Cause", "Symptom", "Recovered(fix)", "Recovered(survival)", "Fixed twin clean", "Sanitizer")
	for _, r := range experiments.Table3Corpus(runs) {
		c.Row(r.Name, r.RootCause, r.Symptom,
			report.Check(r.RecoveredFix, false),
			report.Check(r.RecoveredSurvival, false),
			report.Check(r.FixedTwinClean, false),
			report.VerdictCell(r.Sanitizer))
	}
	emit(c)
}

func printTable4() {
	t := report.NewTable("Table 4: Static failure sites hardened by ConAir (measured | paper)",
		"App", "Assert", "WrongOutput", "SegFault", "Deadlock", "Total")
	for _, r := range experiments.Table4() {
		p := r.Paper
		t.Row(r.Name,
			fmt.Sprintf("%d | %d", r.Assert, p.Assert),
			fmt.Sprintf("%d | %d", r.WrongOutput, p.WrongOutput),
			fmt.Sprintf("%d | %d", r.Segfault, p.Segfault),
			fmt.Sprintf("%d | %d", r.Deadlock, p.Deadlock),
			fmt.Sprintf("%d | %d", r.Total, p.Total()))
	}
	emit(t)
}

func printTable5() {
	t := report.NewTable("Table 5: Reexecution points (survival static/dynamic, fix static/dynamic; paper survival for reference)",
		"App", "Surv static", "Surv dynamic", "Fix static", "Fix dynamic", "Paper static", "Paper dynamic")
	for _, r := range experiments.Table5() {
		t.Row(r.Name, r.SurvivalStatic, r.SurvivalDynamic, r.FixStatic, r.FixDynamic,
			r.PaperStatic, r.PaperDynamic)
	}
	emit(t)
}

func printTable6() {
	t := report.NewTable("Table 6: Reexecution points removed by the optimization (§4.2)",
		"App", "Non-deadlock static", "Non-deadlock dynamic", "Deadlock static", "Deadlock dynamic")
	pct := func(v float64) string {
		if v < 0 {
			return "N/A"
		}
		return fmt.Sprintf("%.1f%%", v)
	}
	for _, r := range experiments.Table6() {
		t.Row(r.Name, pct(r.NonDeadlockStaticPct), pct(r.NonDeadlockDynamicPct),
			pct(r.DeadlockStaticPct), pct(r.DeadlockDynamicPct))
	}
	emit(t)
}

func printTable7() {
	t := report.NewTable("Table 7: Failure recovery vs whole-program restart (interpreter steps)",
		"App", "Recovery steps", "Retries", "Restart steps", "Speedup",
		"Paper recovery(us)", "Paper retries", "Paper restart(us)")
	for _, r := range experiments.Table7() {
		t.Row(r.Name, r.RecoverySteps, r.Retries, r.RestartSteps,
			fmt.Sprintf("%.0fx", r.Speedup),
			r.PaperRecoveryMicros, r.PaperRetries, r.PaperRestartMicros)
	}
	emit(t)
}

func printFigure2() {
	t := report.NewTable("Figure 2: Atomicity-violation patterns and single-threaded idempotent recovery",
		"Pattern", "Fails unprotected", "ConAir recovers", "Paper taxonomy", "Full-checkpoint recovers")
	for _, r := range experiments.Figure2() {
		t.Row(r.Pattern, r.FailsUnprotected, r.ConAirRecovered,
			r.PaperSaysRecoverable, r.CheckpointRecovered)
	}
	emit(t)
}

func printFigure4() {
	t := report.NewTable("Figure 4: Reexecution-region design-space trade-off (ZSNES)",
		"Design", "Overhead", "Recovery steps", "Recovered")
	for _, r := range experiments.Figure4() {
		t.Row(r.Design, fmt.Sprintf("%.3f%%", r.OverheadPct), r.RecoverySteps, r.Recovered)
	}
	emit(t)
}

func printAblations(runs int) {
	t := report.NewTable("Design-choice ablation (forced-failure recovery; overhead on clean runs)",
		"Configuration", "App", "Recovered", "Static points", "Overhead")
	for _, r := range experiments.Ablations(runs) {
		t.Row(r.Config, r.App, r.Recovered, r.StaticPoints, fmt.Sprintf("%.3f%%", r.OverheadPct))
	}
	emit(t)
}

func printAnalysisTimes() {
	t := report.NewTable("Static analysis time (§6.4)",
		"App", "Intra-only", "Full (with interproc)", "Transform")
	for _, r := range experiments.AnalysisTimes() {
		t.Row(r.Name, r.Intra.String(), r.Full.String(), r.Transform.String())
	}
	emit(t)
}
