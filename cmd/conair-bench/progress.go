package main

import (
	"fmt"
	"os"
	"time"

	"conair/internal/experiments"
)

// progressOn gates the per-section progress lines on stderr (the -progress
// flag; on by default, and harmless to pipe since tables go to stdout).
var progressOn = true

// track runs one section body and prints a progress line to stderr,
// driven by the experiment metrics registry: interpreter runs and steps
// completed during the section, plus throughput over its wall time.
func track(name string, fn func()) {
	if !progressOn {
		fn()
		return
	}
	reg := experiments.Registry()
	runs0 := reg.Counter("interp_runs_total").Value()
	steps0 := reg.Counter("interp_steps_total").Value()
	start := time.Now()
	fn()
	elapsed := time.Since(start).Seconds()
	runs := reg.Counter("interp_runs_total").Value() - runs0
	steps := reg.Counter("interp_steps_total").Value() - steps0
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	fmt.Fprintf(os.Stderr, "conair-bench: %s: %d runs, %s steps in %.2fs (%.0f runs/sec, %s steps/sec)\n",
		name, runs, siCount(steps), elapsed,
		float64(runs)/elapsed, siCount(int64(float64(steps)/elapsed)))
}

// siCount renders a count with an SI suffix for readability (steps run to
// the billions even in quick mode).
func siCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// dumpMetrics writes the full registry exposition to stderr (-metrics).
func dumpMetrics() {
	fmt.Fprintln(os.Stderr, "# conair-bench metrics exposition")
	if err := experiments.Registry().WriteText(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "conair-bench: writing metrics:", err)
	}
}
