package main

import (
	"fmt"
	"os"
	"time"

	"conair/internal/experiments"
)

// progressOn gates the per-section progress lines on stderr (the -progress
// flag; on by default, and harmless to pipe since tables go to stdout).
var progressOn = true

// track runs one section body and logs a structured progress line,
// driven by the experiment metrics registry: interpreter runs and steps
// completed during the section, plus throughput over its wall time. The
// same measurements are published as a "section" SSE event when the
// telemetry server is up, keyed identically.
func track(name string, fn func()) {
	if !progressOn && telemetry == nil {
		fn()
		return
	}
	reg := experiments.Registry()
	runs0 := reg.Counter("interp_runs_total").Value()
	steps0 := reg.Counter("interp_steps_total").Value()
	start := time.Now()
	fn()
	elapsed := time.Since(start).Seconds()
	runs := reg.Counter("interp_runs_total").Value() - runs0
	steps := reg.Counter("interp_steps_total").Value() - steps0
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	runsPerSec := float64(runs) / elapsed
	stepsPerSec := int64(float64(steps) / elapsed)
	if progressOn {
		logger.Info("section done", "section", name,
			"runs", runs, "steps", siCount(steps), "wallSecs", fmt.Sprintf("%.2f", elapsed),
			"runsPerSec", fmt.Sprintf("%.0f", runsPerSec), "stepsPerSec", siCount(stepsPerSec))
	}
	if telemetry != nil {
		telemetry.Publish("section", map[string]any{
			"section": name, "runs": runs, "steps": steps,
			"wallSecs": elapsed, "runsPerSec": runsPerSec, "stepsPerSec": stepsPerSec,
		})
	}
}

// siCount renders a count with an SI suffix for readability (steps run to
// the billions even in quick mode).
func siCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// dumpMetrics writes the full registry exposition to stderr (-metrics).
func dumpMetrics() {
	fmt.Fprintln(os.Stderr, "# conair-bench metrics exposition")
	if err := experiments.Registry().WriteText(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "conair-bench: writing metrics:", err)
	}
}
