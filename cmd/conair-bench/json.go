package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"conair/internal/experiments"
	"conair/internal/interp"
)

// benchDoc is the machine-readable output of -json: the selected sections'
// raw rows plus process throughput. Perf-trajectory snapshots
// (BENCH_*.json) are these documents, one per PR, regenerated with:
//
//	go run ./cmd/conair-bench -all -quick -json > BENCH_N.json
//
// Section data is deterministic (same flags → same bytes); only the perf
// block varies with the machine.
type benchDoc struct {
	Schema   int            `json:"schema"`
	Config   benchConfig    `json:"config"`
	Machine  benchMachine   `json:"machine"`
	Sections map[string]any `json:"sections"`
	Perf     benchPerf      `json:"perf"`
	// Metrics is the flattened registry snapshot (counters, gauges,
	// histogram aggregates), present when -metrics is set. Unlike the
	// section data it is NOT deterministic: it includes nanosecond
	// latency histograms and per-worker counters.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

type benchConfig struct {
	Runs          int  `json:"runs"`
	OverheadSeeds int  `json:"overheadSeeds"`
	Workers       int  `json:"workers"` // effective pool size (GOMAXPROCS when not set)
	Quick         bool `json:"quick"`
	All           bool `json:"all"`
}

type benchMachine struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type benchPerf struct {
	WallSeconds float64 `json:"wallSeconds"`
	// Runs and Steps are totals over every interpreter run the sweep
	// executed; RunsPerSec and StepsPerSec are the headline throughput.
	Runs        int64   `json:"runs"`
	Steps       int64   `json:"steps"`
	RunsPerSec  float64 `json:"runsPerSec"`
	StepsPerSec float64 `json:"stepsPerSec"`
}

// runJSON regenerates the selected sections and writes the document to w.
// It reports false when the selection is empty.
func runJSON(w io.Writer, sel selection) bool {
	if !sel.anySelected() {
		return false
	}
	doc := benchDoc{
		Schema: 1,
		Config: benchConfig{
			Runs:          sel.runs,
			OverheadSeeds: sel.seeds,
			Workers:       sel.workers,
			Quick:         sel.quick,
			All:           sel.all,
		},
		Machine: benchMachine{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Sections: map[string]any{},
	}

	runs0, steps0 := interp.Totals()
	start := time.Now()

	section := func(name string, fn func() any) {
		track(name, func() { doc.Sections[name] = fn() })
	}
	if sel.want(2) {
		section("table2", func() any { return experiments.Table2() })
	}
	if sel.want(3) {
		section("table3", func() any { return experiments.Table3(sel.runs, sel.seeds) })
		section("table3corpus", func() any { return experiments.Table3Corpus(sel.runs) })
	}
	if sel.want(4) && sel.figure != 4 {
		section("table4", func() any { return experiments.Table4() })
	}
	if sel.want(5) {
		section("table5", func() any { return experiments.Table5() })
	}
	if sel.want(6) {
		section("table6", func() any { return experiments.Table6() })
	}
	if sel.want(7) {
		section("table7", func() any { return experiments.Table7() })
	}
	if sel.wantFigure(2) {
		section("figure2", func() any { return experiments.Figure2() })
	}
	if sel.wantFigure(4) {
		section("figure4", func() any { return experiments.Figure4() })
	}
	if sel.all || sel.analysisTime {
		section("analysisTimes", func() any { return experiments.AnalysisTimes() })
	}
	if sel.all || sel.ablation {
		section("ablation", func() any { return experiments.Ablations(min(sel.runs, 10)) })
	}

	elapsed := time.Since(start).Seconds()
	runs1, steps1 := interp.Totals()
	doc.Perf = benchPerf{
		WallSeconds: elapsed,
		Runs:        runs1 - runs0,
		Steps:       steps1 - steps0,
	}
	if elapsed > 0 {
		doc.Perf.RunsPerSec = float64(doc.Perf.Runs) / elapsed
		doc.Perf.StepsPerSec = float64(doc.Perf.Steps) / elapsed
	}
	if sel.metrics {
		doc.Metrics = experiments.Registry().Snapshot()
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "conair-bench: encoding JSON:", err)
		os.Exit(1)
	}
	return true
}
