module conair

go 1.24
